# Tier-1 verification: build, vet, full test suite, and the experiment
# harness's worker pool under the race detector (see ROADMAP.md).
verify:
	go build ./...
	go vet ./...
	go test ./...
	go test -race ./internal/experiment/...

# Sequential-vs-parallel sweep benchmark (one full Quick() sweep each;
# results are bit-identical, only the wall clock differs).
bench-sweep:
	go test -bench=ExperimentQuick -benchtime=1x -run='^$$' .

.PHONY: verify bench-sweep

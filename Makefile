# Tier-1 verification: build, vet, staticcheck (when installed; CI installs
# it, local runs without it just print a notice), full test suite (property
# harness and examples included), and the concurrency-bearing packages plus
# the CCM core and property suites under the race detector (see ROADMAP.md).
# Set FUZZ=1 to also smoke the native fuzz targets (see fuzz-smoke).
verify:
	go build ./...
	go vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo staticcheck ./...; staticcheck ./...; \
	else \
		echo "verify: staticcheck not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi
	go test ./...
	go test -race ./internal/core/... ./internal/obs/... ./internal/simtest/... ./internal/experiment/... ./internal/serve/... ./internal/cluster/...
ifeq ($(FUZZ),1)
	$(MAKE) fuzz-smoke
endif

# Scale tier: the simtest differential oracles at 10^4–10^5 tags plus the
# million-tag smoke session (duration + live-heap budgets, bitmap held to
# DirectBitmap exactly). Opt-in via CCM_SCALE=1 so `go test ./...` stays
# fast; CI runs it as its own job with timeout headroom.
test-scale:
	CCM_SCALE=1 go test -run 'TestScale' -v -timeout 20m ./internal/simtest/

# End-to-end crash-resume smoke against a real ccmserve process: submit a
# sweep, kill -9 at ~50% of its points, restart on the same checkpoint dir,
# and assert the resumed result is byte-identical to an uninterrupted run.
serve-e2e:
	./scripts/serve_e2e.sh

# Telemetry load smoke against a real ccmserve process: gentle ccmload run
# gated on its p99/alert/series checks, then induced overload to watch the
# burn-rate alert fire and resolve (API, /metrics, and structured log).
load-smoke:
	./scripts/load_smoke.sh

# Cluster failover e2e: 3 ccmserve workers behind ccmrouter, a gentle
# ccmload gate through the router, then kill one worker mid-run — its
# breaker must trip (visible on /metrics and /api/v1/alerts), its keyspace
# re-route, and every re-executed job byte-match the single-node reference;
# finally the worker restarts and the breaker closes via half-open probes.
cluster-e2e:
	./scripts/cluster_e2e.sh

# Short coverage-guided runs of every native fuzz target, one at a time (the
# go tool accepts a single -fuzz pattern per package invocation). The
# checked-in corpora under */testdata/fuzz/ always run as plain tests; this
# target additionally mutates for FUZZTIME per target.
FUZZTIME ?= 10s
fuzz-smoke:
	go test -run '^$$' -fuzz '^FuzzBitmapOps$$' -fuzztime $(FUZZTIME) ./internal/bitmap/
	go test -run '^$$' -fuzz '^FuzzDeriveSeed$$' -fuzztime $(FUZZTIME) ./internal/prng/
	go test -run '^$$' -fuzz '^FuzzTopologyTiers$$' -fuzztime $(FUZZTIME) ./internal/topology/
	go test -run '^$$' -fuzz '^FuzzSession$$' -fuzztime $(FUZZTIME) ./internal/simtest/
	go test -run '^$$' -fuzz '^FuzzJobSpecKey$$' -fuzztime $(FUZZTIME) ./internal/serve/
	go test -run '^$$' -fuzz '^FuzzHashRing$$' -fuzztime $(FUZZTIME) ./internal/cluster/

# Sequential-vs-parallel sweep benchmark (one full Quick() sweep each;
# results are bit-identical, only the wall clock differs).
bench-sweep:
	go test -bench=ExperimentQuick -benchtime=1x -run='^$$' .

# The tracked benchmark suite: tracing overhead (core), the pooled session
# kernel at 10^4–10^6 tags plus arena reuse (allocs/op pinned at the small
# per-session constant — any per-round allocation regression multiplies it
# and trips the alloc gate), the bitmap OR-merge
# hot paths, sweep worker scaling, the -http Tracker bookkeeping, the serve
# layer's submission fast paths (content-address hashing, cache hits,
# warm-cache Submit), and the per-point execution path with observability
# off (pinned at zero allocs) and fully on. The raw `go test -bench` lines
# plus per-benchmark mean/min/max rollups land in BENCH_observability.json
# (recover a benchstat input with `jq -r '.benchmarks[].raw'`).
BENCH_PKGS    = ./internal/core/ ./internal/bitmap/ ./internal/experiment/ ./internal/serve/ ./internal/obs/timeseries/ ./internal/cluster/
BENCH_PATTERN = 'SessionTracer|SessionN|RunnerReuse|Bitmap|SweepWorkers|TrackerObserve|ServeSpecKey|ServeCacheGet|ServeSubmitHit|ServePointDone|Timeseries|ClusterRouteAdmit'
bench:
	go test -bench=$(BENCH_PATTERN) -benchmem -count=5 -run='^$$' $(BENCH_PKGS) \
		| tee /dev/stderr | go run ./internal/tools/benchjson > BENCH_observability.json

# Regression gate: re-run the suite and fail (exit 1) when any benchmark's
# mean ns/op or allocs/op regressed beyond tolerance against the committed
# baseline. Update the baseline deliberately with `make bench` (see
# DESIGN.md's baseline update policy), never as part of a failing run.
BENCH_COUNT           ?= 3
BENCH_TIME            ?= 0.3s
BENCH_TOLERANCE       ?= 0.50
BENCH_ALLOC_TOLERANCE ?= 0.10
bench-compare:
	go test -bench=$(BENCH_PATTERN) -benchmem -count=$(BENCH_COUNT) \
		-benchtime=$(BENCH_TIME) -run='^$$' $(BENCH_PKGS) \
		| go run ./internal/tools/benchjson compare \
			-baseline BENCH_observability.json \
			-tolerance $(BENCH_TOLERANCE) -alloc-tolerance $(BENCH_ALLOC_TOLERANCE)

.PHONY: verify test-scale serve-e2e load-smoke cluster-e2e fuzz-smoke bench bench-sweep bench-compare

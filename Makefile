# Tier-1 verification: build, vet, full test suite (property harness and
# examples included), and the concurrency-bearing packages plus the CCM core
# and property suites under the race detector (see ROADMAP.md). Set FUZZ=1
# to also smoke the native fuzz targets (see fuzz-smoke).
verify:
	go build ./...
	go vet ./...
	go test ./...
	go test -race ./internal/core/... ./internal/obs/... ./internal/simtest/... ./internal/experiment/...
ifeq ($(FUZZ),1)
	$(MAKE) fuzz-smoke
endif

# Short coverage-guided runs of every native fuzz target, one at a time (the
# go tool accepts a single -fuzz pattern per package invocation). The
# checked-in corpora under */testdata/fuzz/ always run as plain tests; this
# target additionally mutates for FUZZTIME per target.
FUZZTIME ?= 10s
fuzz-smoke:
	go test -run '^$$' -fuzz '^FuzzBitmapOps$$' -fuzztime $(FUZZTIME) ./internal/bitmap/
	go test -run '^$$' -fuzz '^FuzzDeriveSeed$$' -fuzztime $(FUZZTIME) ./internal/prng/
	go test -run '^$$' -fuzz '^FuzzTopologyTiers$$' -fuzztime $(FUZZTIME) ./internal/topology/
	go test -run '^$$' -fuzz '^FuzzSession$$' -fuzztime $(FUZZTIME) ./internal/simtest/

# Sequential-vs-parallel sweep benchmark (one full Quick() sweep each;
# results are bit-identical, only the wall clock differs).
bench-sweep:
	go test -bench=ExperimentQuick -benchtime=1x -run='^$$' .

# Tracing-overhead benchmark: a CCM session with a nil tracer versus a JSONL
# tracer. The raw `go test -bench` lines land in BENCH_observability.json
# (recover a benchstat input with `jq -r '.benchmarks[].raw'`).
bench:
	go test -bench=SessionTracer -benchmem -count=5 -run='^$$' ./internal/core/ \
		| tee /dev/stderr | go run ./internal/tools/benchjson > BENCH_observability.json

.PHONY: verify fuzz-smoke bench bench-sweep

# Tier-1 verification: build, vet, full test suite, and the experiment
# harness's worker pool under the race detector (see ROADMAP.md).
verify:
	go build ./...
	go vet ./...
	go test ./...
	go test -race ./internal/experiment/...

# Sequential-vs-parallel sweep benchmark (one full Quick() sweep each;
# results are bit-identical, only the wall clock differs).
bench-sweep:
	go test -bench=ExperimentQuick -benchtime=1x -run='^$$' .

# Tracing-overhead benchmark: a CCM session with a nil tracer versus a JSONL
# tracer. The raw `go test -bench` lines land in BENCH_observability.json
# (recover a benchstat input with `jq -r '.benchmarks[].raw'`).
bench:
	go test -bench=SessionTracer -benchmem -count=5 -run='^$$' ./internal/core/ \
		| tee /dev/stderr | go run ./internal/tools/benchjson > BENCH_observability.json

.PHONY: verify bench bench-sweep

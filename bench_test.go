// Benchmarks, one per table and figure of the paper's evaluation (§VI),
// plus ablations for the design choices DESIGN.md calls out. Each benchmark
// reports the experiment's metric via b.ReportMetric, so `go test -bench=.`
// regenerates the shape of every result. The deployments are scaled to
// n = 3,000 tags to keep bench time sane; cmd/ccmtables reproduces the
// full n = 10,000, 100-trial setting.
package netags_test

import (
	"fmt"
	"runtime"
	"testing"

	"netags"
	"netags/internal/experiment"
)

const benchTags = 3000

// benchRs are the inter-tag ranges benchmarked (the paper sweeps 2–10 m).
var benchRs = []float64{2, 6, 10}

func benchSystem(b *testing.B, r float64) *netags.System {
	b.Helper()
	sys, err := netags.NewSystem(netags.SystemOptions{
		Tags:          benchTags,
		InterTagRange: r,
		Seed:          1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

// gmleSession runs the §VI-B GMLE measurement session: f = 1671 with
// p = 1.59·f/n.
func gmleSession(b *testing.B, sys *netags.System, seed uint64) *netags.SessionResult {
	b.Helper()
	res, err := sys.CollectBitmap(netags.SessionOptions{
		FrameSize: 1671,
		Sampling:  1.59 * 1671 / benchTags,
		Seed:      seed,
	})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// trpSession runs the §VI-B TRP measurement session: f sized for the bench
// population (the paper's 3228 is sized for n = 10,000), p = 1.
func trpSession(b *testing.B, sys *netags.System, seed uint64) *netags.SessionResult {
	b.Helper()
	res, err := sys.CollectBitmap(netags.SessionOptions{
		FrameSize: 1100, // ≈ FrameSizeFor(3000, 15, 0.95)
		Sampling:  1,
		Seed:      seed,
	})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkFig3Tiers regenerates Fig. 3: the tier count versus the
// inter-tag range.
func BenchmarkFig3Tiers(b *testing.B) {
	for _, r := range benchRs {
		b.Run(fmt.Sprintf("r=%g", r), func(b *testing.B) {
			tiers := 0
			for i := 0; i < b.N; i++ {
				sys, err := netags.NewSystem(netags.SystemOptions{
					Tags:          benchTags,
					InterTagRange: r,
					Seed:          uint64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				tiers = sys.Tiers()
			}
			b.ReportMetric(float64(tiers), "tiers")
		})
	}
}

// BenchmarkFig4ExecutionTime regenerates Fig. 4: execution time in slots for
// SICP, GMLE-CCM and TRP-CCM.
func BenchmarkFig4ExecutionTime(b *testing.B) {
	for _, r := range benchRs {
		sys := benchSystem(b, r)
		b.Run(fmt.Sprintf("SICP/r=%g", r), func(b *testing.B) {
			var slots int64
			for i := 0; i < b.N; i++ {
				res, err := sys.CollectIDs(netags.CollectOptions{Seed: uint64(i)})
				if err != nil {
					b.Fatal(err)
				}
				slots = res.Cost.Slots
			}
			b.ReportMetric(float64(slots), "slots")
		})
		b.Run(fmt.Sprintf("GMLE-CCM/r=%g", r), func(b *testing.B) {
			var slots int64
			for i := 0; i < b.N; i++ {
				slots = gmleSession(b, sys, uint64(i)).Cost.Slots
			}
			b.ReportMetric(float64(slots), "slots")
		})
		b.Run(fmt.Sprintf("TRP-CCM/r=%g", r), func(b *testing.B) {
			var slots int64
			for i := 0; i < b.N; i++ {
				slots = trpSession(b, sys, uint64(i)).Cost.Slots
			}
			b.ReportMetric(float64(slots), "slots")
		})
	}
}

// benchTable factors the four energy tables: each regenerates one metric for
// the three protocols across the r sweep.
func benchTable(b *testing.B, metric string, pick func(netags.Cost) float64) {
	b.Helper()
	for _, r := range benchRs {
		sys := benchSystem(b, r)
		b.Run(fmt.Sprintf("SICP/r=%g", r), func(b *testing.B) {
			var v float64
			for i := 0; i < b.N; i++ {
				res, err := sys.CollectIDs(netags.CollectOptions{Seed: uint64(i)})
				if err != nil {
					b.Fatal(err)
				}
				v = pick(res.Cost)
			}
			b.ReportMetric(v, metric)
		})
		b.Run(fmt.Sprintf("GMLE-CCM/r=%g", r), func(b *testing.B) {
			var v float64
			for i := 0; i < b.N; i++ {
				v = pick(gmleSession(b, sys, uint64(i)).Cost)
			}
			b.ReportMetric(v, metric)
		})
		b.Run(fmt.Sprintf("TRP-CCM/r=%g", r), func(b *testing.B) {
			var v float64
			for i := 0; i < b.N; i++ {
				v = pick(trpSession(b, sys, uint64(i)).Cost)
			}
			b.ReportMetric(v, metric)
		})
	}
}

// BenchmarkTableIMaxSent regenerates Table I: maximum bits sent per tag.
func BenchmarkTableIMaxSent(b *testing.B) {
	benchTable(b, "bits_sent_max", func(c netags.Cost) float64 { return float64(c.MaxBitsSent) })
}

// BenchmarkTableIIMaxReceived regenerates Table II: maximum bits received
// per tag.
func BenchmarkTableIIMaxReceived(b *testing.B) {
	benchTable(b, "bits_recv_max", func(c netags.Cost) float64 { return float64(c.MaxBitsReceived) })
}

// BenchmarkTableIIIAvgSent regenerates Table III: average bits sent per tag.
func BenchmarkTableIIIAvgSent(b *testing.B) {
	benchTable(b, "bits_sent_avg", func(c netags.Cost) float64 { return c.AvgBitsSent })
}

// BenchmarkTableIVAvgReceived regenerates Table IV: average bits received
// per tag.
func BenchmarkTableIVAvgReceived(b *testing.B) {
	benchTable(b, "bits_recv_avg", func(c netags.Cost) float64 { return c.AvgBitsReceived })
}

// BenchmarkAblationIndicatorVector quantifies §III-D: how much energy the
// indicator vector saves by stopping the "rolling snowball" flood.
func BenchmarkAblationIndicatorVector(b *testing.B) {
	sys := benchSystem(b, 6)
	for _, disabled := range []bool{false, true} {
		name := "with-indicator"
		if disabled {
			name = "flooding"
		}
		b.Run(name, func(b *testing.B) {
			var sent float64
			for i := 0; i < b.N; i++ {
				res, err := sys.CollectBitmap(netags.SessionOptions{
					FrameSize:              1100,
					Seed:                   uint64(i),
					DisableIndicatorVector: disabled,
				})
				if err != nil {
					b.Fatal(err)
				}
				sent = res.Cost.AvgBitsSent
			}
			b.ReportMetric(sent, "bits_sent_avg")
		})
	}
}

// BenchmarkAblationContention compares serialized SICP with contention-based
// CICP — the reason [16] (and the paper) prefer SICP.
func BenchmarkAblationContention(b *testing.B) {
	sys := benchSystem(b, 6)
	for _, contention := range []bool{false, true} {
		name := "SICP"
		if contention {
			name = "CICP"
		}
		b.Run(name, func(b *testing.B) {
			var slots int64
			for i := 0; i < b.N; i++ {
				res, err := sys.CollectIDs(netags.CollectOptions{Seed: uint64(i), Contention: contention})
				if err != nil {
					b.Fatal(err)
				}
				slots = res.Cost.Slots
			}
			b.ReportMetric(float64(slots), "slots")
		})
	}
}

// BenchmarkAblationEstimators compares the cardinality estimators the
// paper's §IV-A history discusses: the GMLE machinery versus the LoF sketch.
// Each reports its relative error and its air-time cost for the same
// deployment, making the accuracy-for-slots trade visible.
func BenchmarkAblationEstimators(b *testing.B) {
	sys := benchSystem(b, 6)
	truth := float64(sys.Reachable())
	run := func(b *testing.B, method netags.EstimateMethod) {
		var res *netags.EstimateResult
		var err error
		for i := 0; i < b.N; i++ {
			res, err = sys.EstimateCardinality(netags.EstimateOptions{
				Method: method,
				Seed:   uint64(i),
			})
			if err != nil {
				b.Fatal(err)
			}
		}
		relErr := (res.Estimate - truth) / truth
		if relErr < 0 {
			relErr = -relErr
		}
		b.ReportMetric(relErr*100, "pct_error")
		b.ReportMetric(float64(res.Cost.Slots), "slots")
	}
	b.Run("GMLE", func(b *testing.B) { run(b, netags.EstimateGMLE) })
	b.Run("LoF", func(b *testing.B) { run(b, netags.EstimateLoF) })
}

// benchSweep runs one full experiment.Run sweep on the Quick()
// configuration (n = 10,000, r ∈ {2, 6, 10}, 3 trials) with the given
// worker count. Sequential vs parallel report identical numbers; only the
// wall clock differs. Run with `go test -bench=ExperimentQuick -benchtime=1x`
// — one iteration is a full nine-deployment sweep (~15 s sequential).
func benchSweep(b *testing.B, workers int) {
	b.Helper()
	cfg := experiment.Quick()
	cfg.Workers = workers
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "cores")
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Run(cfg, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExperimentQuickSequential is the Workers: 1 baseline of the
// sweep runner.
func BenchmarkExperimentQuickSequential(b *testing.B) { benchSweep(b, 1) }

// BenchmarkExperimentQuickParallel fans the same sweep over all cores; the
// speedup over the sequential baseline is the worker pool's payoff, with
// bit-identical results (TestParallelMatchesSequential).
func BenchmarkExperimentQuickParallel(b *testing.B) { benchSweep(b, 0) }

// BenchmarkEstimationEndToEnd measures the full adaptive GMLE pipeline (the
// operation a deployed system would actually run).
func BenchmarkEstimationEndToEnd(b *testing.B) {
	sys := benchSystem(b, 6)
	for i := 0; i < b.N; i++ {
		if _, err := sys.EstimateCardinality(netags.EstimateOptions{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDetectionEndToEnd measures one full TRP execution.
func BenchmarkDetectionEndToEnd(b *testing.B) {
	sys := benchSystem(b, 6)
	inventory := sys.ReachableIDs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.DetectMissing(inventory, netags.DetectOptions{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// Command ccmanalyze compares the paper's closed-form performance model
// (§IV-C, equations (3)–(13)) against the slot-level simulation, printing
// predicted versus measured execution time and per-tag energy for each
// inter-tag range.
//
// Example:
//
//	ccmanalyze -n 10000 -r 2,4,6,8,10 -app trp
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"netags/internal/analysis"
	"netags/internal/core"
	"netags/internal/experiment"
	"netags/internal/geom"
	"netags/internal/gmle"
	"netags/internal/obs"
	"netags/internal/obs/httpserve"
	"netags/internal/topology"
	"netags/internal/trp"
)

func main() {
	if err := run(context.Background(), os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ccmanalyze:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("ccmanalyze", flag.ContinueOnError)
	var (
		n        = fs.Int("n", 10000, "number of tags")
		rList    = fs.String("r", "2,4,6,8,10", "comma-separated inter-tag ranges")
		app      = fs.String("app", "trp", "application parameters: trp | gmle")
		seed     = fs.Uint64("seed", 1, "deployment/request seed")
		byTier   = fs.Bool("tiers", false, "also print the per-tier energy breakdown (the load-balance view)")
		workers  = fs.Int("workers", 0, "parallel workers over r values (0 = all cores)")
		traceOut = fs.String("trace-out", "", "write every session's event stream to this JSONL file")
		metrics  = fs.String("metrics", "", "print a run metrics summary: text | json")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = fs.String("memprofile", "", "write a heap profile to this file")
		httpAddr = fs.String("http", "", "serve live introspection (/metrics, /progress, /events, /debug/pprof) on this address, e.g. :8080")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	instr, err := obs.StartInstrumentation(*traceOut, *metrics, *cpuProf, *memProf)
	if err != nil {
		return err
	}
	closed := false
	defer func() {
		if !closed {
			instr.Close(os.Stdout)
		}
	}()

	var frame int
	sampling := 1.0
	switch *app {
	case "trp":
		frame = trp.PaperFrameSize
	case "gmle":
		frame = gmle.PaperFrameSize
		sampling = gmle.SamplingFor(frame, float64(*n))
	default:
		return fmt.Errorf("unknown app %q", *app)
	}

	fmt.Printf("%s over CCM: model (eqs. 3–13) vs simulation, n=%d f=%d p=%.4f\n",
		strings.ToUpper(*app), *n, frame, sampling)
	fmt.Printf("%4s  %5s  %12s  %12s  %12s  %12s  %12s  %12s\n",
		"r", "K", "time(model)", "time(sim)", "sent(model)", "sent(sim)", "recv(model)", "recv(sim)")

	rs, err := parseFloats(*rList)
	if err != nil {
		return err
	}
	// Live introspection (-http): each completed r value feeds a Tracker so
	// /progress reports completed/total and ETA mid-run. Observe-only; with
	// the flag unset the tracer stays exactly instr.Tracer().
	var intro *httpserve.Server
	var observe func(experiment.Progress)
	if *httpAddr != "" {
		tracker := experiment.NewTracker()
		tracker.SetTotal(len(rs))
		intro, err = httpserve.Start(*httpAddr, httpserve.Options{
			Collector: obs.NewCollector(),
			Ring:      obs.NewRing(0),
			Progress:  tracker.ProgressJSON,
		})
		if err != nil {
			return err
		}
		defer intro.Close()
		fmt.Fprintf(os.Stderr, "introspection: http://%s\n", intro.Addr())
		observe = tracker.Wrap(nil)
	}
	tracer := obs.Multi(instr.Tracer(), intro.Tracer())
	// The deployment is built once and shared read-only; each r value's
	// topology build + session is independent, so they fan out over the
	// experiment package's worker pool and print in r order afterwards.
	d := geom.NewUniformDisk(*n, 30, *seed)
	out := make([]string, len(rs))
	err = experiment.ParallelFor(ctx, *workers, len(rs), func(ctx context.Context, i int) error {
		r := rs[i]
		start := time.Now()
		rg := topology.PaperRanges(r)
		nw, err := topology.Build(d, 0, rg)
		if err != nil {
			return err
		}
		// Reader labels the trace stream with the r index, so events from
		// concurrent r values stay distinguishable in the JSONL output.
		res, err := core.RunSession(nw, core.Config{
			FrameSize: frame, Seed: *seed, Sampling: sampling,
			Tracer: tracer, Reader: i,
		})
		if err != nil {
			return err
		}
		if observe != nil {
			observe(experiment.Progress{Sweep: "analyze", R: r, Trials: 1,
				Tiers: nw.K, Elapsed: time.Since(start)})
		}
		in := func(i int) bool { return nw.Tier[i] > 0 }
		sum := res.Meter.Summarize(in)

		m := analysis.Model{
			Ranges:    rg,
			Density:   float64(*n) / (math.Pi * 900),
			FrameSize: frame,
			Sampling:  sampling,
		}
		if err := m.Validate(); err != nil {
			return err
		}
		var b strings.Builder
		fmt.Fprintf(&b, "%4g  %2d/%-2d  %12.0f  %12d  %12.1f  %12.1f  %12.0f  %12.1f\n",
			r, m.Tiers(), nw.K,
			m.ExecutionTimeSlots(), res.Clock.Total(),
			m.AvgSentBits(), sum.AvgSent,
			m.AvgReceivedBits(), sum.AvgReceived)
		if *byTier {
			// §VI-B2's load-balance observation: per-tier max ≈ avg.
			perTier := res.Meter.SummarizeByTier(nw.Tier, nw.K)
			for k := 1; k <= nw.K; k++ {
				ts := perTier[k]
				predSent, predRecv := m.SentBits(k), m.ReceivedBits(k)
				fmt.Fprintf(&b, "        tier %d (%5d tags): sent avg %7.1f max %5d (model %7.1f)  recv avg %9.1f max %7d (model %9.0f)\n",
					k, ts.Count, ts.AvgSent, ts.MaxSent, predSent, ts.AvgReceived, ts.MaxReceived, predRecv)
			}
		}
		out[i] = b.String()
		return nil
	})
	if err != nil {
		return err
	}
	for _, s := range out {
		fmt.Print(s)
	}
	closed = true
	return instr.Close(os.Stdout)
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad r value %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	for _, app := range []string{"trp", "gmle"} {
		if err := run(context.Background(), []string{"-n", "500", "-r", "6", "-app", app}); err != nil {
			t.Errorf("app %s: %v", app, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(context.Background(), []string{"-app", "nope"}); err == nil {
		t.Error("unknown app accepted")
	}
	if err := run(context.Background(), []string{"-r", "x"}); err == nil {
		t.Error("bad r list accepted")
	}
}

func TestRunTierBreakdown(t *testing.T) {
	if err := run(context.Background(), []string{"-n", "400", "-r", "6", "-tiers"}); err != nil {
		t.Fatal(err)
	}
}

// TestRunObservabilityFlags checks the trace stream parses and carries the
// r-index as the reader label.
func TestRunObservabilityFlags(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.jsonl")
	mem := filepath.Join(dir, "mem.pprof")
	err := run(context.Background(), []string{
		"-n", "400", "-r", "4,8", "-trace-out", trace, "-metrics", "text", "-memprofile", mem,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	sawReader1 := false
	for i, line := range bytes.Split(bytes.TrimSpace(data), []byte("\n")) {
		if !json.Valid(line) {
			t.Fatalf("trace line %d is not valid JSON: %s", i+1, line)
		}
		if bytes.Contains(line, []byte(`"reader":1`)) {
			sawReader1 = true
		}
	}
	if !sawReader1 {
		t.Fatal("no event labeled with reader index 1 (second r value)")
	}
	if b, err := os.ReadFile(mem); err != nil || len(b) < 2 || b[0] != 0x1f || b[1] != 0x8b {
		t.Fatalf("heap profile not a gzip stream (err=%v)", err)
	}
}

// TestRunHTTPIntrospection: the -http flag starts on an ephemeral port and
// rejects bad addresses; the comparison itself is unchanged either way.
func TestRunHTTPIntrospection(t *testing.T) {
	if err := run(context.Background(), []string{
		"-n", "500", "-r", "6", "-app", "trp", "-http", "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{
		"-n", "500", "-r", "6", "-app", "trp", "-http", "not-an-address"}); err == nil {
		t.Fatal("bad -http address accepted")
	}
}

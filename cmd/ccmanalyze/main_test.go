package main

import (
	"context"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	for _, app := range []string{"trp", "gmle"} {
		if err := run(context.Background(), []string{"-n", "500", "-r", "6", "-app", app}); err != nil {
			t.Errorf("app %s: %v", app, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(context.Background(), []string{"-app", "nope"}); err == nil {
		t.Error("unknown app accepted")
	}
	if err := run(context.Background(), []string{"-r", "x"}); err == nil {
		t.Error("bad r list accepted")
	}
}

func TestRunTierBreakdown(t *testing.T) {
	if err := run(context.Background(), []string{"-n", "400", "-r", "6", "-tiers"}); err != nil {
		t.Fatal(err)
	}
}

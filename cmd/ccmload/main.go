// Command ccmload is an open-loop load generator for ccmserve: it submits
// sweep jobs at a target rate regardless of how fast the server completes
// them (so overload shows up as queue growth, backpressure rejections, and
// SLO burn — exactly what a closed-loop driver would hide), then reports
// end-to-end latency percentiles and checks the server's own verdicts.
//
//	ccmload -addr 127.0.0.1:8080 -rps 2 -duration 20s \
//	    -max-p99 10s -fail-on-alerts \
//	    -check-series serve_queue_len,sim_sessions_total,runtime_goroutines
//
// Exit codes: 0 success, 1 operational error (server unreachable, bad
// flags), 2 at least one SLO violation (-max-p99 exceeded, unfinished jobs
// under -max-p99, firing alerts under -fail-on-alerts, or a -check-series
// name missing/empty).
//
// 429 backpressure — a full worker queue or a cluster router shedding load
// — is not a hard failure: each shed submission retries after a jittered
// Retry-After wait until admitted or the drain deadline passes, and the
// summary reports the shed-rate separately. -report-json writes the whole
// summary machine-readably (a path, or "-" for stdout).
//
// The job mix: each submission is "small" or "large" (-large-ratio), and
// "interactive" or "bulk" (-bulk-ratio), drawn from a seeded PRNG so a
// given flag set replays the same schedule. Seeds vary per submission so
// every job is a genuine cache miss; pass -unique=false to let the result
// cache absorb repeats instead.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"netags/internal/serve"
)

func main() {
	violations, err := run(context.Background(), os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccmload:", err)
		os.Exit(1)
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "ccmload: VIOLATION:", v)
		}
		os.Exit(2)
	}
}

// jobSpec builds one submission's spec from the size class. The sizes are
// tuned so "small" computes in tens of milliseconds and "large" in high
// hundreds on one worker — enough spread to make a priority mix meaningful
// without making low-RPS smoke runs slow.
func jobSpec(large bool, seed uint64) serve.JobSpec {
	if large {
		return serve.JobSpec{N: 1200, Trials: 2, RValues: []float64{3, 5, 7, 9}, Seed: seed}
	}
	return serve.JobSpec{N: 400, Trials: 1, RValues: []float64{4, 6}, Seed: seed}
}

// result is one submission's outcome.
type result struct {
	rejected bool // shed to the end: never admitted before the deadline
	failed   bool // submit error or terminal failed/canceled
	finished bool
	e2e      time.Duration
}

type counters struct {
	mu        sync.Mutex
	submitted int
	results   []result
	// shed counts every 429 answer received, including ones later retried
	// into admission — the numerator of the reported shed-rate.
	shed atomic.Int64
}

func (c *counters) add(r result) {
	c.mu.Lock()
	c.results = append(c.results, r)
	c.mu.Unlock()
}

// percentile returns the nearest-rank p-quantile of sorted durations.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func run(ctx context.Context, args []string, out io.Writer) ([]string, error) {
	fs := flag.NewFlagSet("ccmload", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", "", "ccmserve address (host:port), required")
		rps          = fs.Float64("rps", 2, "target submissions per second (open loop)")
		duration     = fs.Duration("duration", 20*time.Second, "load generation window")
		drain        = fs.Duration("drain", 60*time.Second, "extra time to wait for in-flight jobs after generation ends")
		bulkRatio    = fs.Float64("bulk-ratio", 0.2, "fraction of submissions in the bulk priority class")
		largeRatio   = fs.Float64("large-ratio", 0.2, "fraction of submissions using the large job preset")
		clients      = fs.Int("clients", 4, "distinct client identities to spread submissions across")
		seed         = fs.Uint64("seed", 1, "base PRNG seed; per-job spec seeds derive from it")
		unique       = fs.Bool("unique", true, "give every job a distinct seed (cache miss); false exercises the result cache")
		maxP99       = fs.Duration("max-p99", 0, "fail (exit 2) when the completed-job e2e p99 exceeds this (0 = no bound)")
		failOnAlerts = fs.Bool("fail-on-alerts", false, "fail (exit 2) when /api/v1/alerts reports firing rules after the run")
		checkSeries  = fs.String("check-series", "", "comma-separated series names that must be non-empty on /api/v1/timeseries")
		reportJSON   = fs.String("report-json", "", "write the machine-readable summary to this path ('-' = stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if *addr == "" {
		return nil, errors.New("-addr is required")
	}
	if *rps <= 0 {
		return nil, errors.New("-rps must be > 0")
	}
	base := "http://" + *addr
	cl := &serve.Client{BaseURL: base}
	rng := rand.New(rand.NewPCG(*seed, 0xccb10ad))

	// One quick health probe so a typo'd address fails fast and clearly
	// instead of as a pile of per-job errors.
	if err := probe(ctx, base); err != nil {
		return nil, err
	}

	var (
		cnt     counters
		wg      sync.WaitGroup
		stopGen = time.After(*duration)
		tick    = time.NewTicker(time.Duration(float64(time.Second) / *rps))
	)
	defer tick.Stop()
	start := time.Now()
	fmt.Fprintf(out, "ccmload: driving %s at %.1f rps for %s (bulk %.0f%%, large %.0f%%)\n",
		*addr, *rps, *duration, *bulkRatio*100, *largeRatio*100)

	awaitCtx, cancelAwait := context.WithDeadline(ctx, start.Add(*duration+*drain))
	defer cancelAwait()

	i := 0
gen:
	for {
		select {
		case <-ctx.Done():
			break gen
		case <-stopGen:
			break gen
		case <-tick.C:
		}
		i++
		cnt.submitted++
		large := rng.Float64() < *largeRatio
		bulk := rng.Float64() < *bulkRatio
		specSeed := *seed
		if *unique {
			specSeed = *seed + uint64(i)
		}
		spec := jobSpec(large, specSeed)
		opts := serve.SubmitOptions{Client: fmt.Sprintf("load-%d", i%*clients)}
		if bulk {
			opts.Priority = serve.PriorityBulk
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			t0 := time.Now()
			sub, err := submitHonoringShed(awaitCtx, cl, &cnt, spec, opts)
			if err != nil {
				var busy *serve.ErrBusy
				if errors.As(err, &busy) {
					cnt.add(result{rejected: true})
				} else {
					cnt.add(result{failed: true})
				}
				return
			}
			st, err := cl.Wait(awaitCtx, sub.ID, 100*time.Millisecond)
			switch {
			case err != nil:
				cnt.add(result{}) // unfinished: deadline passed while queued/running
			case st.State == serve.StateDone:
				cnt.add(result{finished: true, e2e: time.Since(t0)})
			default:
				cnt.add(result{failed: true})
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Tally.
	var accepted, rejected, failed, finished, unfinished int
	var lats []time.Duration
	for _, r := range cnt.results {
		switch {
		case r.rejected:
			rejected++
		case r.failed:
			failed++
		case r.finished:
			accepted++
			finished++
			lats = append(lats, r.e2e)
		default:
			accepted++
			unfinished++
		}
	}
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	p50, p90, p99 := percentile(lats, 0.50), percentile(lats, 0.90), percentile(lats, 0.99)

	// Shed-rate: 429 answers over submission attempts (first tries plus the
	// retries those 429s triggered).
	sheds := cnt.shed.Load()
	shedRate := 0.0
	if attempts := int64(cnt.submitted) + sheds; attempts > 0 {
		shedRate = float64(sheds) / float64(attempts)
	}

	fmt.Fprintf(out, "ccmload: submitted=%d accepted=%d rejected=%d failed=%d finished=%d unfinished=%d in %s (%.2f rps achieved)\n",
		cnt.submitted, accepted, rejected, failed, finished, unfinished,
		elapsed.Round(time.Millisecond), float64(cnt.submitted)/elapsed.Seconds())
	fmt.Fprintf(out, "ccmload: shed responses=%d shed-rate=%.1f%% (429s retried with jittered Retry-After)\n",
		sheds, shedRate*100)
	fmt.Fprintf(out, "ccmload: e2e latency p50=%s p90=%s p99=%s (n=%d)\n",
		p50.Round(time.Millisecond), p90.Round(time.Millisecond), p99.Round(time.Millisecond), len(lats))

	var violations []string
	if *maxP99 > 0 {
		if unfinished > 0 {
			violations = append(violations,
				fmt.Sprintf("%d jobs still unfinished after drain — treat as p99 breach", unfinished))
		}
		if p99 > *maxP99 {
			violations = append(violations, fmt.Sprintf("e2e p99 %s exceeds bound %s", p99, *maxP99))
		}
	}
	if failed > 0 {
		violations = append(violations, fmt.Sprintf("%d jobs failed", failed))
	}

	if *failOnAlerts {
		firing, names, err := fetchAlerts(ctx, base)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(out, "ccmload: alerts firing=%d %v\n", firing, names)
		if firing > 0 {
			violations = append(violations, fmt.Sprintf("alerts firing after run: %v", names))
		}
	}
	if *checkSeries != "" {
		missing, err := checkTimeseries(ctx, base, strings.Split(*checkSeries, ","))
		if err != nil {
			return nil, err
		}
		if len(missing) > 0 {
			violations = append(violations, fmt.Sprintf("timeseries empty or missing: %v", missing))
		} else {
			fmt.Fprintf(out, "ccmload: timeseries check passed (%s)\n", *checkSeries)
		}
	}
	if *reportJSON != "" {
		rep := report{
			Submitted: cnt.submitted, Accepted: accepted, Rejected: rejected,
			Failed: failed, Finished: finished, Unfinished: unfinished,
			ShedResponses: sheds, ShedRate: shedRate,
			P50Ms:       float64(p50) / float64(time.Millisecond),
			P90Ms:       float64(p90) / float64(time.Millisecond),
			P99Ms:       float64(p99) / float64(time.Millisecond),
			ElapsedS:    elapsed.Seconds(),
			AchievedRPS: float64(cnt.submitted) / elapsed.Seconds(),
			Violations:  violations,
		}
		if err := writeReport(rep, *reportJSON, out); err != nil {
			return nil, fmt.Errorf("-report-json: %w", err)
		}
	}
	return violations, nil
}

// submitHonoringShed submits, treating every 429 as backpressure to wait
// out rather than a hard failure: it sleeps a jittered fraction of the
// server's Retry-After hint (full jitter, so a herd of shed clients does
// not re-converge on the recovery instant) and retries until admission or
// ctx's deadline. Every 429 received is counted toward the shed-rate; only
// a submission never admitted before the deadline comes back as ErrBusy.
func submitHonoringShed(ctx context.Context, cl *serve.Client, cnt *counters, spec serve.JobSpec, opts serve.SubmitOptions) (serve.SubmitResponse, error) {
	for {
		sub, err := cl.Submit(ctx, spec, opts)
		var busy *serve.ErrBusy
		if !errors.As(err, &busy) {
			return sub, err
		}
		cnt.shed.Add(1)
		hint := busy.RetryAfter
		if hint <= 0 {
			hint = time.Second
		}
		wait := time.Duration(rand.Float64() * float64(hint))
		if wait < 50*time.Millisecond {
			wait = 50 * time.Millisecond
		}
		t := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			t.Stop()
			return serve.SubmitResponse{}, busy
		case <-t.C:
		}
	}
}

// report is the -report-json document: the printed summary, machine-
// readable.
type report struct {
	Submitted     int      `json:"submitted"`
	Accepted      int      `json:"accepted"`
	Rejected      int      `json:"rejected"`
	Failed        int      `json:"failed"`
	Finished      int      `json:"finished"`
	Unfinished    int      `json:"unfinished"`
	ShedResponses int64    `json:"shed_responses"`
	ShedRate      float64  `json:"shed_rate"`
	P50Ms         float64  `json:"p50_ms"`
	P90Ms         float64  `json:"p90_ms"`
	P99Ms         float64  `json:"p99_ms"`
	ElapsedS      float64  `json:"elapsed_s"`
	AchievedRPS   float64  `json:"achieved_rps"`
	Violations    []string `json:"violations"`
}

// writeReport renders the report to path ("-" = out, the ccmload stdout).
func writeReport(rep report, path string, out io.Writer) error {
	if rep.Violations == nil {
		rep.Violations = []string{}
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "-" {
		_, err = out.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

func probe(ctx context.Context, base string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("server unreachable: %w", err)
	}
	resp.Body.Close()
	return nil
}

// fetchAlerts reads /api/v1/alerts and returns the firing count and names.
func fetchAlerts(ctx context.Context, base string) (int, []string, error) {
	var body struct {
		Firing int `json:"firing"`
		Alerts []struct {
			Rule   string `json:"rule"`
			Firing bool   `json:"firing"`
		} `json:"alerts"`
	}
	if err := getJSON(ctx, base+"/api/v1/alerts", &body); err != nil {
		return 0, nil, fmt.Errorf("alerts: %w", err)
	}
	var names []string
	for _, a := range body.Alerts {
		if a.Firing {
			names = append(names, a.Rule)
		}
	}
	return body.Firing, names, nil
}

// checkTimeseries verifies each named series exists with at least one
// point on /api/v1/timeseries.
func checkTimeseries(ctx context.Context, base string, names []string) ([]string, error) {
	var body struct {
		Series map[string][]struct {
			T int64   `json:"t"`
			V float64 `json:"v"`
		} `json:"series"`
	}
	if err := getJSON(ctx, base+"/api/v1/timeseries", &body); err != nil {
		return nil, fmt.Errorf("timeseries: %w", err)
	}
	var missing []string
	for _, n := range names {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		if pts := body.Series[n]; len(pts) == 0 {
			missing = append(missing, n)
		}
	}
	return missing, nil
}

func getJSON(ctx context.Context, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

package main

import (
	"context"
	"strings"
	"testing"
	"time"

	"netags/internal/obs"
	"netags/internal/obs/httpserve"
	"netags/internal/obs/timeseries"
	"netags/internal/serve"
)

func TestRunFlagValidation(t *testing.T) {
	if _, err := run(context.Background(), nil, &strings.Builder{}); err == nil {
		t.Fatal("expected error without -addr")
	}
	if _, err := run(context.Background(), []string{"-addr", "x", "-rps", "0"}, &strings.Builder{}); err == nil {
		t.Fatal("expected error for -rps 0")
	}
}

func TestRunUnreachableServer(t *testing.T) {
	// A port nothing listens on: the health probe must fail fast (exit 1
	// path), not degenerate into a full run of per-job errors.
	_, err := run(context.Background(), []string{"-addr", "127.0.0.1:1", "-duration", "1s"}, &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("want unreachable error, got %v", err)
	}
}

// TestRunAgainstLiveServer drives a real in-process ccmserve stack — manager,
// timeseries sampler, alert evaluator — exactly as cmd/ccmserve wires it,
// and asserts a short low-RPS run passes every check ccmload offers.
func TestRunAgainstLiveServer(t *testing.T) {
	collector := obs.NewCollector()
	m := serve.NewManager(serve.Config{
		QueueDepth: 64,
		Workers:    2,
		MaxJobs:    256,
		Tracer:     collector,
	})
	db := timeseries.New(50*time.Millisecond, time.Minute)
	eval := timeseries.NewEvaluator(db, serve.DefaultSLORules(), nil)
	sampler := timeseries.NewSampler(db,
		m.TimeseriesSource(),
		timeseries.CollectorSource(collector),
		timeseries.RuntimeSource(),
	)
	sampler.OnTick(eval.Evaluate)
	sampler.Start()
	defer sampler.Stop()

	srv, err := serve.StartServer("127.0.0.1:0", m,
		httpserve.Options{Collector: collector, Timeseries: db, Alerts: eval}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var out strings.Builder
	violations, err := run(context.Background(), []string{
		"-addr", srv.Addr(),
		"-rps", "20",
		"-duration", "500ms",
		"-drain", "20s",
		"-large-ratio", "0",
		"-max-p99", "30s",
		"-fail-on-alerts",
		"-check-series", "serve_queue_len,serve_jobs_executed_total,sim_sessions_total,runtime_goroutines",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if len(violations) != 0 {
		t.Fatalf("unexpected violations %v\noutput:\n%s", violations, out.String())
	}
	for _, want := range []string{"e2e latency", "alerts firing=0", "timeseries check passed"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestPercentile(t *testing.T) {
	d := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := percentile(d, 0.50); got != 5 {
		t.Errorf("p50 = %d, want 5", got)
	}
	if got := percentile(d, 0.99); got != 10 {
		t.Errorf("p99 = %d, want 10", got)
	}
	if got := percentile(nil, 0.99); got != 0 {
		t.Errorf("empty p99 = %d, want 0", got)
	}
}

package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"netags/internal/obs"
	"netags/internal/obs/httpserve"
	"netags/internal/obs/timeseries"
	"netags/internal/serve"
)

func TestRunFlagValidation(t *testing.T) {
	if _, err := run(context.Background(), nil, &strings.Builder{}); err == nil {
		t.Fatal("expected error without -addr")
	}
	if _, err := run(context.Background(), []string{"-addr", "x", "-rps", "0"}, &strings.Builder{}); err == nil {
		t.Fatal("expected error for -rps 0")
	}
}

func TestRunUnreachableServer(t *testing.T) {
	// A port nothing listens on: the health probe must fail fast (exit 1
	// path), not degenerate into a full run of per-job errors.
	_, err := run(context.Background(), []string{"-addr", "127.0.0.1:1", "-duration", "1s"}, &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("want unreachable error, got %v", err)
	}
}

// TestRunAgainstLiveServer drives a real in-process ccmserve stack — manager,
// timeseries sampler, alert evaluator — exactly as cmd/ccmserve wires it,
// and asserts a short low-RPS run passes every check ccmload offers.
func TestRunAgainstLiveServer(t *testing.T) {
	collector := obs.NewCollector()
	m := serve.NewManager(serve.Config{
		QueueDepth: 64,
		Workers:    2,
		MaxJobs:    256,
		Tracer:     collector,
	})
	db := timeseries.New(50*time.Millisecond, time.Minute)
	eval := timeseries.NewEvaluator(db, serve.DefaultSLORules(), nil)
	sampler := timeseries.NewSampler(db,
		m.TimeseriesSource(),
		timeseries.CollectorSource(collector),
		timeseries.RuntimeSource(),
	)
	sampler.OnTick(eval.Evaluate)
	sampler.Start()
	defer sampler.Stop()

	srv, err := serve.StartServer("127.0.0.1:0", m,
		httpserve.Options{Collector: collector, Timeseries: db, Alerts: eval}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var out strings.Builder
	violations, err := run(context.Background(), []string{
		"-addr", srv.Addr(),
		"-rps", "20",
		"-duration", "500ms",
		"-drain", "20s",
		"-large-ratio", "0",
		"-max-p99", "30s",
		"-fail-on-alerts",
		"-check-series", "serve_queue_len,serve_jobs_executed_total,sim_sessions_total,runtime_goroutines",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if len(violations) != 0 {
		t.Fatalf("unexpected violations %v\noutput:\n%s", violations, out.String())
	}
	for _, want := range []string{"e2e latency", "alerts firing=0", "timeseries check passed"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunShedRetryAndReportJSON drives ccmload against a stub API that
// sheds the first submissions with 429 + Retry-After: the generator must
// wait the (jittered) hint out and retry into admission — zero rejected,
// zero failed — and the -report-json document must carry the shed
// accounting.
func TestRunShedRetryAndReportJSON(t *testing.T) {
	var posts atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("POST /api/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		if posts.Add(1) <= 3 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprintln(w, `{"error":{"code":"shed_overload","message":"cluster admission"}}`)
			return
		}
		var req serve.SubmitRequest
		json.NewDecoder(r.Body).Decode(&req) //nolint:errcheck
		key, _ := req.Spec.Key()
		json.NewEncoder(w).Encode(serve.SubmitResponse{ID: key, Status: serve.OutcomeCached}) //nolint:errcheck
	})
	mux.HandleFunc("GET /api/v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(serve.JobStatus{ID: r.PathValue("id"), State: serve.StateDone}) //nolint:errcheck
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	reportPath := filepath.Join(t.TempDir(), "report.json")
	var out strings.Builder
	violations, err := run(context.Background(), []string{
		"-addr", strings.TrimPrefix(srv.URL, "http://"),
		"-rps", "50",
		"-duration", "100ms",
		"-drain", "10s",
		"-report-json", reportPath,
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if len(violations) != 0 {
		t.Fatalf("sheds escalated to violations: %v\noutput:\n%s", violations, out.String())
	}
	if !strings.Contains(out.String(), "shed responses=3") {
		t.Errorf("summary missing shed accounting:\n%s", out.String())
	}

	raw, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report not valid JSON: %v\n%s", err, raw)
	}
	if rep.ShedResponses != 3 {
		t.Errorf("report shed_responses = %d, want 3", rep.ShedResponses)
	}
	if rep.Rejected != 0 || rep.Failed != 0 {
		t.Errorf("report counts rejected=%d failed=%d, want 0/0 (sheds were retried)", rep.Rejected, rep.Failed)
	}
	if rep.Finished != rep.Submitted || rep.Finished == 0 {
		t.Errorf("report finished=%d submitted=%d, want all finished", rep.Finished, rep.Submitted)
	}
	if rep.ShedRate <= 0 || rep.ShedRate >= 1 {
		t.Errorf("report shed_rate = %g, want in (0,1)", rep.ShedRate)
	}
	if rep.Violations == nil || len(rep.Violations) != 0 {
		t.Errorf("report violations = %v, want empty array", rep.Violations)
	}
}

// TestWriteReportStdout pins the "-" path writing to the provided writer.
func TestWriteReportStdout(t *testing.T) {
	var out strings.Builder
	if err := writeReport(report{Submitted: 2}, "-", &out); err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("stdout report not valid JSON: %v\n%s", err, out.String())
	}
	if rep.Submitted != 2 {
		t.Fatalf("round-trip lost data: %+v", rep)
	}
}

func TestPercentile(t *testing.T) {
	d := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := percentile(d, 0.50); got != 5 {
		t.Errorf("p50 = %d, want 5", got)
	}
	if got := percentile(d, 0.99); got != 10 {
		t.Errorf("p99 = %d, want 10", got)
	}
	if got := percentile(nil, 0.99); got != 0 {
		t.Errorf("empty p99 = %d, want 0", got)
	}
}

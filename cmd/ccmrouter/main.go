// Command ccmrouter is the cluster front door over N ccmserve workers: a
// consistent-hash shard router with admission control and per-backend
// circuit breakers (see internal/cluster).
//
// Example (3-worker cluster):
//
//	ccmserve -addr :9081 & ccmserve -addr :9082 & ccmserve -addr :9083 &
//	ccmrouter -addr :9080 -backends localhost:9081,localhost:9082,localhost:9083
//	curl -s localhost:9080/api/v1/jobs -d '{"spec":{"n":10000,"trials":5,"r_values":[2,4,6,8,10]}}'
//	curl -s localhost:9080/api/v1/cluster | jq .   # ring/breaker/admission state
//
// Submissions shard by the JobSpec's SHA-256 content address, so one job's
// submit, stream, trace, and result all land on the worker that owns (and
// cached) it. A worker that dies trips its breaker and its keyspace
// re-routes to the next ring owner; results are content-addressed, so the
// re-executed jobs come back byte-identical. Overload is rejected at this
// edge — per-client token buckets and utilization shedding answer 429 with
// Retry-After before a worker queue ever deepens.
//
// Observability mirrors ccmserve: /metrics, /events, /api/v1/timeseries,
// /api/v1/alerts (cluster SLO rules built in), /api/v1/cluster, /debug/dash.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"netags/internal/cluster"
	"netags/internal/obs"
	"netags/internal/obs/httpserve"
	"netags/internal/obs/timeseries"
)

func main() {
	if err := run(context.Background(), os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "ccmrouter:", err)
		os.Exit(1)
	}
}

// newLogger builds the daemon logger from the -log-level/-log-format flags.
func newLogger(level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text|json)", format)
	}
}

// loadRules resolves the -slo-rules flag: "off" disables alerting, empty
// installs the router's built-in defaults, a leading '[' is inline JSON,
// anything else is read as a file path.
func loadRules(arg string) ([]timeseries.Rule, error) {
	arg = strings.TrimSpace(arg)
	switch arg {
	case "off", "none":
		return nil, nil
	case "":
		return cluster.DefaultSLORules(), nil
	}
	data := []byte(arg)
	if !strings.HasPrefix(arg, "[") {
		b, err := os.ReadFile(arg)
		if err != nil {
			return nil, fmt.Errorf("-slo-rules: %w", err)
		}
		data = b
	}
	return timeseries.ParseRules(data)
}

// run serves until ctx is canceled or a SIGINT/SIGTERM arrives. If ready
// is non-nil the bound address is sent on it once listening (test hook).
func run(ctx context.Context, args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("ccmrouter", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", ":9080", "listen address")
		backends = fs.String("backends", "", "comma-separated ccmserve worker addresses (host:port, required)")
		replicas = fs.Int("replicas", cluster.DefaultReplicas, "virtual nodes per backend on the hash ring")
		loadB    = fs.Float64("load-bound", 1.25, "bounded-load factor c (skip a backend over c×mean in-flight; 0 disables)")
		maxTries = fs.Int("max-attempts", 0, "distinct backends tried per request (0 = all)")

		rate       = fs.Float64("rate", 0, "per-client sustained submissions/second (0 disables rate limiting)")
		burst      = fs.Float64("burst", 0, "per-client token-bucket burst (0 = max(rate,1))")
		maxClients = fs.Int("max-clients", 4096, "client buckets tracked before falling back to a shared overflow bucket")
		maxInfl    = fs.Int("max-inflight", 0, "cluster-wide in-flight cap for utilization shedding (0 disables)")
		shedBulk   = fs.Float64("shed-bulk", 0.8, "utilization fraction at which bulk submissions shed (interactive sheds only at 1.0)")

		brkConsec   = fs.Int("breaker-consec", 5, "consecutive failures that trip a backend's breaker")
		brkRate     = fs.Float64("breaker-rate", 0.5, "windowed failure rate that trips the breaker")
		brkMin      = fs.Int("breaker-min", 10, "minimum windowed samples before the rate condition judges")
		brkWindow   = fs.Duration("breaker-window", 10*time.Second, "failure-rate observation window")
		brkCooldown = fs.Duration("breaker-cooldown", 5*time.Second, "open-state cooldown before half-open probes")
		probes      = fs.Int("probes", 1, "concurrent half-open probes per backend")
		probeOK     = fs.Int("probe-successes", 2, "probe successes that close a half-open breaker")

		events    = fs.Int("events", 512, "event ring capacity backing /events (0 disables)")
		logLevel  = fs.String("log-level", "info", "log verbosity: debug|info|warn|error")
		logFormat = fs.String("log-format", "text", "log encoding on stderr: text|json")
		tsRes     = fs.Duration("ts-resolution", time.Second, "timeseries sampling interval (0 disables the history engine, dashboard, and alerts)")
		tsRet     = fs.Duration("ts-retention", 15*time.Minute, "timeseries history window per series")
		sloRules  = fs.String("slo-rules", "", "SLO alert rules: a JSON file path, inline JSON ('[...]'), or 'off' (empty = built-in cluster defaults)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := newLogger(*logLevel, *logFormat)
	if err != nil {
		return err
	}
	var workerAddrs []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			workerAddrs = append(workerAddrs, b)
		}
	}
	if len(workerAddrs) == 0 {
		return fmt.Errorf("-backends is required (comma-separated worker addresses)")
	}

	var ring *obs.Ring
	if *events > 0 {
		ring = obs.NewRing(*events)
	}
	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Backends:    workerAddrs,
		Replicas:    *replicas,
		LoadBound:   *loadB,
		MaxAttempts: *maxTries,
		Admit: cluster.AdmitConfig{
			Rate: *rate, Burst: *burst, MaxClients: *maxClients,
			MaxInflight: *maxInfl, BulkShedFraction: *shedBulk,
		},
		Breaker: cluster.BreakerConfig{
			ConsecutiveFailures: *brkConsec, FailureRate: *brkRate,
			MinSamples: *brkMin, Window: *brkWindow, Cooldown: *brkCooldown,
			HalfOpenProbes: *probes, ProbeSuccesses: *probeOK,
		},
		Logger: logger,
		Tracer: ring,
	})
	if err != nil {
		return err
	}

	// Time-series engine + SLO evaluator over the router's own counters —
	// the same machinery ccmserve runs, fed by the cluster source.
	obsOpts := httpserve.Options{Ring: ring}
	var stopSampler func()
	if *tsRes > 0 {
		rules, err := loadRules(*sloRules)
		if err != nil {
			return err
		}
		db := timeseries.New(*tsRes, *tsRet)
		var eval *timeseries.Evaluator
		if len(rules) > 0 {
			eval = timeseries.NewEvaluator(db, rules, func(r timeseries.Rule, firing bool, measured float64) {
				state := "resolved"
				level := slog.LevelInfo
				if firing {
					state = "firing"
					level = slog.LevelWarn
				}
				logger.LogAttrs(context.Background(), level, "slo alert "+state,
					slog.String("rule", r.Name), slog.Float64("measured", measured),
					slog.Float64("window_s", r.WindowS))
				if ring != nil {
					ring.Trace(obs.Event{
						Kind: obs.KindAlert, Protocol: obs.ProtoSLO,
						Phase: r.Name + ":" + state, Value: measured,
					})
				}
			})
		}
		sampler := timeseries.NewSampler(db, rt.TimeseriesSource(), timeseries.RuntimeSource())
		if eval != nil {
			sampler.OnTick(eval.Evaluate)
		}
		sampler.Start()
		stopSampler = sampler.Stop
		obsOpts.Timeseries = db
		obsOpts.Alerts = eval
		logger.Info("timeseries sampler started",
			"resolution", tsRes.String(), "retention", tsRet.String(), "rules", len(rules))
	}
	if stopSampler != nil {
		defer stopSampler()
	}

	srv, err := httpStart(*addr, rt.Handler(obsOpts))
	if err != nil {
		return err
	}
	// The plain banner stays greppable for scripts (cluster_e2e.sh parses
	// the address out of it); everything after startup is structured.
	fmt.Fprintf(os.Stderr, "ccmrouter: listening on %s (backends=%d replicas=%d load-bound=%g)\n",
		srv.addr, len(workerAddrs), *replicas, *loadB)
	logger.Info("ccmrouter started",
		"addr", srv.addr, "backends", strings.Join(workerAddrs, ","),
		"replicas", *replicas, "load_bound", *loadB,
		"rate", *rate, "max_inflight", *maxInfl,
		"breaker_consec", *brkConsec, "breaker_cooldown", brkCooldown.String())
	if ready != nil {
		ready <- srv.addr
	}

	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	logger.Info("ccmrouter draining")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	logger.Info("ccmrouter drained cleanly")
	return nil
}

// httpSrv pairs a server with its bound address (":0" support for tests).
type httpSrv struct {
	srv  *http.Server
	addr string
}

func httpStart(addr string, h http.Handler) (*httpSrv, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("listen %s: %w", addr, err)
	}
	s := &httpSrv{
		srv:  &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second},
		addr: ln.Addr().String(),
	}
	go s.srv.Serve(ln) //nolint:errcheck // Serve always returns on Shutdown
	return s, nil
}

package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"netags/internal/obs/httpserve"
	"netags/internal/serve"
)

// startWorker boots a real in-process serve manager and returns its
// address.
func startWorker(t *testing.T) string {
	t.Helper()
	m := serve.NewManager(serve.Config{Workers: 1})
	srv, err := serve.StartServer("127.0.0.1:0", m, httpserve.Options{}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv.Addr()
}

// TestRouterEndToEnd boots the router daemon in-process over two real
// workers, runs a job through it with the serve.Client helper, and checks
// the cluster status endpoint — then drains it via context cancel.
func TestRouterEndToEnd(t *testing.T) {
	w1, w2 := startWorker(t), startWorker(t)
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-backends", w1 + "," + w2,
			"-ts-resolution", "50ms",
		}, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("router exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("router never became ready")
	}

	cl := &serve.Client{BaseURL: "http://" + addr}
	callCtx, callCancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer callCancel()
	spec := serve.JobSpec{N: 100, Trials: 1, RValues: []float64{6}, Seed: 3}
	sub, err := cl.Submit(callCtx, spec, serve.SubmitOptions{Workers: 1})
	if err != nil {
		t.Fatalf("submit through router: %v", err)
	}
	if st, err := cl.Wait(callCtx, sub.ID, 10*time.Millisecond); err != nil || st.State != serve.StateDone {
		t.Fatalf("wait = %+v, %v", st, err)
	}
	p1, err := cl.Result(callCtx, sub.ID)
	if err != nil || p1 == nil {
		t.Fatalf("result: %v", err)
	}
	// The resubmission is a cache hit on the owning shard — same id, same
	// bytes.
	again, err := cl.Submit(callCtx, spec, serve.SubmitOptions{Workers: 1})
	if err != nil || again.ID != sub.ID {
		t.Fatalf("resubmit = %+v, %v", again, err)
	}
	p2, err := cl.Result(callCtx, sub.ID)
	if err != nil || !bytes.Equal(p1, p2) {
		t.Fatalf("result unstable across reads: %v", err)
	}

	// Cluster status reflects the membership and the traffic.
	resp, err := http.Get("http://" + addr + "/api/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var status struct {
		Backends []struct {
			Addr  string `json:"addr"`
			State string `json:"state"`
		} `json:"backends"`
		Counters struct {
			Forwarded int64 `json:"forwarded"`
		} `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if len(status.Backends) != 2 {
		t.Fatalf("cluster status lists %d backends, want 2", len(status.Backends))
	}
	for _, b := range status.Backends {
		if b.State != "closed" {
			t.Fatalf("backend %s breaker %q, want closed", b.Addr, b.State)
		}
	}
	if status.Counters.Forwarded == 0 {
		t.Fatal("forwarded counter did not move")
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("router did not drain")
	}
}

func TestRouterBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-definitely-not-a-flag"}, nil); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run(context.Background(), nil, nil); err == nil {
		t.Fatal("missing -backends accepted")
	}
	if err := run(context.Background(), []string{"-backends", " , "}, nil); err == nil {
		t.Fatal("blank -backends accepted")
	}
	if err := run(context.Background(), []string{"-backends", "x:1", "-addr", "256.0.0.1:bad"}, nil); err == nil {
		t.Fatal("unbindable address accepted")
	}
	if err := run(context.Background(), []string{"-backends", "x:1", "-log-level", "noisy"}, nil); err == nil {
		t.Fatal("bad log level accepted")
	}
	if err := run(context.Background(), []string{"-backends", "x:1", "-slo-rules", "{not json"}, nil); err == nil {
		t.Fatal("bad slo rules accepted")
	}
}

// Command ccmserve runs the simulation-as-a-service daemon: a
// priority-aware job queue, worker pool, per-point checkpoint store, and
// content-addressed result cache over the experiment sweeps, exposed as a
// versioned HTTP API (/api/v1, with unversioned aliases) beside the live
// introspection endpoints (see internal/serve).
//
// Example:
//
//	ccmserve -addr :8080 -pool 2 -queue 64 -cache 256 -checkpoint-dir /var/lib/ccmserve
//	curl -s localhost:8080/api/v1/jobs -d '{"spec":{"n":10000,"trials":5,"r_values":[2,4,6,8,10]}}'
//	curl -sN localhost:8080/api/v1/jobs/<id>/stream   # NDJSON per-point tail
//	curl -s localhost:8080/api/v1/jobs/<id>/trace     # lifecycle timeline
//
// With -checkpoint-dir set, a killed daemon resumes half-finished sweeps:
// resubmitting the same spec after a restart recomputes only the points the
// checkpoint is missing and still produces byte-identical results. Add
// -checkpoint-ttl to garbage-collect checkpoint files that no process came
// back for.
//
// Observability: structured logs (-log-level, -log-format) on stderr with
// X-Request-ID correlation, job lifecycle timelines on /jobs/{id}/trace and
// mirrored into /events (-events bounds the ring), SLO histograms and
// per-class queue gauges on /metrics.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"netags/internal/obs"
	"netags/internal/obs/httpserve"
	"netags/internal/obs/timeseries"
	"netags/internal/serve"
)

// loadRules resolves the -slo-rules flag: "off" disables alerting, empty
// installs the built-in defaults, a leading '[' is inline JSON, anything
// else is read as a file path.
func loadRules(arg string) ([]timeseries.Rule, error) {
	arg = strings.TrimSpace(arg)
	switch arg {
	case "off", "none":
		return nil, nil
	case "":
		return serve.DefaultSLORules(), nil
	}
	data := []byte(arg)
	if !strings.HasPrefix(arg, "[") {
		b, err := os.ReadFile(arg)
		if err != nil {
			return nil, fmt.Errorf("-slo-rules: %w", err)
		}
		data = b
	}
	return timeseries.ParseRules(data)
}

func main() {
	if err := run(context.Background(), os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "ccmserve:", err)
		os.Exit(1)
	}
}

// newLogger builds the daemon logger from the -log-level/-log-format flags.
func newLogger(level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text|json)", format)
	}
}

// run serves until ctx is canceled or a SIGINT/SIGTERM arrives. If ready
// is non-nil the bound address is sent on it once listening (test hook).
func run(ctx context.Context, args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("ccmserve", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", ":8080", "listen address")
		queueDepth  = fs.Int("queue", 64, "bounded job queue depth (full queue answers 429)")
		pool        = fs.Int("pool", 2, "concurrent sweep jobs (worker pool size)")
		jobWorkers  = fs.Int("job-workers", 0, "per-job experiment worker cap (0 = cores/pool)")
		cacheCap    = fs.Int("cache", 256, "result cache capacity in entries (LRU; negative = unbounded)")
		maxJobs     = fs.Int("max-jobs", 1024, "terminal job records to retain for GET /jobs")
		ckptDir     = fs.String("checkpoint-dir", "", "persist per-point checkpoints here for crash-resumable sweeps (empty = memory only)")
		ckptTTL     = fs.Duration("checkpoint-ttl", 0, "purge checkpoint files unreferenced for this long (0 = never)")
		drain       = fs.Duration("drain", 10*time.Second, "graceful-shutdown budget for in-flight jobs")
		events      = fs.Int("events", 512, "event ring capacity backing /events (0 disables)")
		traceEvents = fs.Int("trace-events", 0, "lifecycle trace events retained per job (0 = default 256, negative disables /trace)")
		logLevel    = fs.String("log-level", "info", "log verbosity: debug|info|warn|error")
		logFormat   = fs.String("log-format", "text", "log encoding on stderr: text|json")
		tsRes       = fs.Duration("ts-resolution", time.Second, "timeseries sampling interval (0 disables the history engine, dashboard, and alerts)")
		tsRet       = fs.Duration("ts-retention", 15*time.Minute, "timeseries history window per series")
		sloRules    = fs.String("slo-rules", "", "SLO alert rules: a JSON file path, inline JSON ('[...]'), or 'off' (empty = built-in defaults)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := newLogger(*logLevel, *logFormat)
	if err != nil {
		return err
	}

	// The collector aggregates protocol metrics for /metrics; the ring holds
	// the most recent events for /events — serve lifecycle events included.
	collector := obs.NewCollector()
	var ring *obs.Ring
	sinks := []obs.Tracer{collector}
	if *events > 0 {
		ring = obs.NewRing(*events)
		sinks = append(sinks, ring)
	}

	m := serve.NewManager(serve.Config{
		QueueDepth:        *queueDepth,
		Workers:           *pool,
		JobWorkers:        *jobWorkers,
		CacheCapacity:     *cacheCap,
		MaxJobs:           *maxJobs,
		CheckpointDir:     *ckptDir,
		CheckpointTTL:     *ckptTTL,
		Tracer:            obs.Multi(sinks...),
		Logger:            logger,
		TraceEventsPerJob: *traceEvents,
	})
	// Time-series engine + SLO evaluator: a background sampler snapshots the
	// manager, the sim collector, and the Go runtime once per resolution;
	// the evaluator judges the rules on every tick. All observe-only — with
	// -ts-resolution 0 none of it exists and no goroutine runs.
	obsOpts := httpserve.Options{Collector: collector, Ring: ring}
	if *tsRes > 0 {
		rules, err := loadRules(*sloRules)
		if err != nil {
			return err
		}
		db := timeseries.New(*tsRes, *tsRet)
		var eval *timeseries.Evaluator
		if len(rules) > 0 {
			eval = timeseries.NewEvaluator(db, rules, func(r timeseries.Rule, firing bool, measured float64) {
				state := "resolved"
				level := slog.LevelInfo
				if firing {
					state = "firing"
					level = slog.LevelWarn
				}
				logger.LogAttrs(context.Background(), level, "slo alert "+state,
					slog.String("rule", r.Name), slog.Float64("measured", measured),
					slog.Float64("window_s", r.WindowS))
				if ring != nil {
					ring.Trace(obs.Event{
						Kind: obs.KindAlert, Protocol: obs.ProtoSLO,
						Phase: r.Name + ":" + state, Value: measured,
					})
				}
			})
		}
		sampler := timeseries.NewSampler(db,
			m.TimeseriesSource(),
			timeseries.CollectorSource(collector),
			timeseries.RuntimeSource(),
		)
		if eval != nil {
			sampler.OnTick(eval.Evaluate)
		}
		sampler.Start()
		defer sampler.Stop()
		obsOpts.Timeseries = db
		obsOpts.Alerts = eval
		logger.Info("timeseries sampler started",
			"resolution", tsRes.String(), "retention", tsRet.String(),
			"series_cap", db.SeriesCap(), "rules", len(rules))
	}

	srv, err := serve.StartServer(*addr, m, obsOpts, *drain)
	if err != nil {
		return err
	}
	// The plain banner stays greppable for scripts (serve_e2e.sh parses the
	// address out of it); everything after startup is structured.
	fmt.Fprintf(os.Stderr, "ccmserve: listening on %s (pool=%d queue=%d cache=%d)\n",
		srv.Addr(), *pool, *queueDepth, *cacheCap)
	logger.Info("ccmserve started",
		"addr", srv.Addr(), "pool", *pool, "queue", *queueDepth, "cache", *cacheCap,
		"checkpoint_dir", *ckptDir, "checkpoint_ttl", ckptTTL.String(),
		"ts_resolution", tsRes.String(), "log_level", *logLevel, "log_format", *logFormat)
	if ready != nil {
		ready <- srv.Addr()
	}

	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	logger.Info("ccmserve draining")
	if err := srv.Close(); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	logger.Info("ccmserve drained cleanly")
	return nil
}

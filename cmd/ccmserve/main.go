// Command ccmserve runs the simulation-as-a-service daemon: a
// priority-aware job queue, worker pool, per-point checkpoint store, and
// content-addressed result cache over the experiment sweeps, exposed as a
// versioned HTTP API (/api/v1, with unversioned aliases) beside the live
// introspection endpoints (see internal/serve).
//
// Example:
//
//	ccmserve -addr :8080 -pool 2 -queue 64 -cache 256 -checkpoint-dir /var/lib/ccmserve
//	curl -s localhost:8080/api/v1/jobs -d '{"spec":{"n":10000,"trials":5,"r_values":[2,4,6,8,10]}}'
//	curl -sN localhost:8080/api/v1/jobs/<id>/stream   # NDJSON per-point tail
//
// With -checkpoint-dir set, a killed daemon resumes half-finished sweeps:
// resubmitting the same spec after a restart recomputes only the points the
// checkpoint is missing and still produces byte-identical results.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"netags/internal/obs/httpserve"
	"netags/internal/serve"
)

func main() {
	if err := run(context.Background(), os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "ccmserve:", err)
		os.Exit(1)
	}
}

// run serves until ctx is canceled or a SIGINT/SIGTERM arrives. If ready
// is non-nil the bound address is sent on it once listening (test hook).
func run(ctx context.Context, args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("ccmserve", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8080", "listen address")
		queueDepth = fs.Int("queue", 64, "bounded job queue depth (full queue answers 429)")
		pool       = fs.Int("pool", 2, "concurrent sweep jobs (worker pool size)")
		jobWorkers = fs.Int("job-workers", 0, "per-job experiment worker cap (0 = cores/pool)")
		cacheCap   = fs.Int("cache", 256, "result cache capacity in entries (LRU; negative = unbounded)")
		maxJobs    = fs.Int("max-jobs", 1024, "terminal job records to retain for GET /jobs")
		ckptDir    = fs.String("checkpoint-dir", "", "persist per-point checkpoints here for crash-resumable sweeps (empty = memory only)")
		drain      = fs.Duration("drain", 10*time.Second, "graceful-shutdown budget for in-flight jobs")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	m := serve.NewManager(serve.Config{
		QueueDepth:    *queueDepth,
		Workers:       *pool,
		JobWorkers:    *jobWorkers,
		CacheCapacity: *cacheCap,
		MaxJobs:       *maxJobs,
		CheckpointDir: *ckptDir,
	})
	srv, err := serve.StartServer(*addr, m, httpserve.Options{}, *drain)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ccmserve: listening on %s (pool=%d queue=%d cache=%d)\n",
		srv.Addr(), *pool, *queueDepth, *cacheCap)
	if ready != nil {
		ready <- srv.Addr()
	}

	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	fmt.Fprintln(os.Stderr, "ccmserve: draining...")
	if err := srv.Close(); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	fmt.Fprintln(os.Stderr, "ccmserve: drained cleanly")
	return nil
}

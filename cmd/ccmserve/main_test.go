package main

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"netags/internal/serve"
)

// TestServeEndToEnd boots the daemon in-process on an ephemeral port and
// drives it with the serve.Client helper: concurrent identical submissions
// resolve to one content address with identical payloads, a resubmission
// is a cache hit, and canceling the context drains the server cleanly.
func TestServeEndToEnd(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-pool", "2", "-queue", "8", "-drain", "5s"}, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}

	cl := &serve.Client{BaseURL: "http://" + addr}
	spec := serve.JobSpec{N: 120, Trials: 1, RValues: []float64{4, 6}, Seed: 11}
	callCtx, callCancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer callCancel()

	// Concurrent identical submissions: all land on one job id.
	const submitters = 4
	subs := make([]serve.SubmitResponse, submitters)
	var wg sync.WaitGroup
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sub, err := cl.Submit(callCtx, spec, serve.SubmitOptions{Workers: 1})
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			subs[i] = sub
		}(i)
	}
	wg.Wait()
	for i := 1; i < submitters; i++ {
		if subs[i].ID != subs[0].ID {
			t.Fatalf("submitter %d got id %s, want %s", i, subs[i].ID, subs[0].ID)
		}
	}

	if st, err := cl.Wait(callCtx, subs[0].ID, 10*time.Millisecond); err != nil || st.State != serve.StateDone {
		t.Fatalf("wait = %+v, %v", st, err)
	}
	p1, err := cl.Result(callCtx, subs[0].ID)
	if err != nil || p1 == nil {
		t.Fatalf("result: %v", err)
	}
	p2, err := cl.Result(callCtx, subs[0].ID)
	if err != nil || !bytes.Equal(p1, p2) {
		t.Fatalf("result unstable across reads: %v", err)
	}

	// Resubmission after completion is a pure cache hit.
	again, err := cl.Submit(callCtx, spec, serve.SubmitOptions{Workers: 1})
	if err != nil || again.Status != serve.OutcomeCached || again.ID != subs[0].ID {
		t.Fatalf("resubmit = %+v, %v, want cached hit on %s", again, err, subs[0].ID)
	}

	// Context cancellation triggers the graceful drain path.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not drain")
	}
}

func TestServeBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-definitely-not-a-flag"}, nil); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run(context.Background(), []string{"-addr", "256.0.0.1:bad"}, nil); err == nil {
		t.Fatal("unbindable address accepted")
	}
	if err := run(context.Background(), []string{"-log-level", "noisy"}, nil); err == nil {
		t.Fatal("bad log level accepted")
	}
	if err := run(context.Background(), []string{"-log-format", "xml"}, nil); err == nil {
		t.Fatal("bad log format accepted")
	}
}

// Command ccmsim runs a single system-level operation over one simulated
// networked-tag deployment and prints the outcome with its costs.
//
// Examples:
//
//	ccmsim -op estimate -n 10000 -r 6
//	ccmsim -op detect -n 10000 -r 6 -missing 80
//	ccmsim -op search -n 5000 -r 4 -wanted 50
//	ccmsim -op collect -n 2000 -r 6
//	ccmsim -op bitmap -n 2000 -r 6 -frame 512 -trace
//	ccmsim -op estimate -trace-out trace.jsonl -metrics json -cpuprofile cpu.pprof
package main

import (
	"flag"
	"fmt"
	"os"

	"netags"
	"netags/internal/obs"
	"netags/internal/obs/httpserve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ccmsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ccmsim", flag.ContinueOnError)
	var (
		op       = fs.String("op", "estimate", "operation: estimate | detect | search | collect | bitmap")
		n        = fs.Int("n", 10000, "number of tags")
		r        = fs.Float64("r", 6, "inter-tag range in meters")
		seed     = fs.Uint64("seed", 1, "deployment + request seed")
		missing  = fs.Int("missing", 0, "tags to remove before a detect run")
		wanted   = fs.Int("wanted", 20, "wanted list size for a search run (half present, half absent)")
		frame    = fs.Int("frame", 512, "frame size for a raw bitmap run")
		loss     = fs.Float64("loss", 0, "per-reception loss probability")
		cicp     = fs.Bool("cicp", false, "use CICP instead of SICP for collect")
		trace    = fs.Bool("trace", false, "narrate the run's event stream (rounds, frames, merges) on stdout")
		lofEst   = fs.Bool("lof", false, "use the LoF sketch estimator instead of GMLE")
		traceOut = fs.String("trace-out", "", "write the structured event stream to this JSONL file")
		metrics  = fs.String("metrics", "", "print a run metrics summary: text | json")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = fs.String("memprofile", "", "write a heap profile to this file")
		httpAddr = fs.String("http", "", "serve live introspection (/metrics, /events, /debug/pprof) on this address, e.g. :8080")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	instr, err := obs.StartInstrumentation(*traceOut, *metrics, *cpuProf, *memProf)
	if err != nil {
		return err
	}
	closed := false
	defer func() {
		if !closed {
			instr.Close(os.Stdout)
		}
	}()

	// Live introspection (-http): observe-only, nil tracer when unset.
	var intro *httpserve.Server
	if *httpAddr != "" {
		intro, err = httpserve.Start(*httpAddr, httpserve.Options{
			Collector: obs.NewCollector(),
			Ring:      obs.NewRing(0),
		})
		if err != nil {
			return err
		}
		defer intro.Close()
		fmt.Fprintf(os.Stderr, "introspection: http://%s\n", intro.Addr())
	}

	sys, err := netags.NewSystem(netags.SystemOptions{Tags: *n, InterTagRange: *r, Seed: *seed})
	if err != nil {
		return err
	}
	tracer := obs.Multi(instr.Tracer(), intro.Tracer())
	if *trace {
		tracer = obs.Multi(tracer, obs.NewNarrator(os.Stdout))
	}
	sys = sys.WithTracer(tracer)
	fmt.Printf("system: %d tags, %d reachable, %d tiers, density %.2f tags/m²\n",
		sys.TagCount(), sys.Reachable(), sys.Tiers(), sys.Density())

	switch *op {
	case "estimate":
		method := netags.EstimateGMLE
		if *lofEst {
			method = netags.EstimateLoF
		}
		res, err := sys.EstimateCardinality(netags.EstimateOptions{Method: method, Seed: *seed, LossProb: *loss})
		if err != nil {
			return err
		}
		fmt.Printf("estimate: %.0f tags (true %d, error %+.2f%%) in %d frames, converged=%v\n",
			res.Estimate, sys.Reachable(),
			100*(res.Estimate-float64(sys.Reachable()))/float64(sys.Reachable()),
			res.Frames, res.Converged)
		printCost(res.Cost)

	case "detect":
		inventory := sys.ReachableIDs()
		target := sys
		if *missing > 0 {
			if *missing > len(inventory) {
				return fmt.Errorf("cannot remove %d of %d tags", *missing, len(inventory))
			}
			target, err = sys.RemoveTags(inventory[:*missing])
			if err != nil {
				return err
			}
			target = target.WithTracer(tracer) // RemoveTags drops the tracer
			fmt.Printf("removed %d tags before detection\n", *missing)
		}
		res, err := target.DetectMissing(inventory, netags.DetectOptions{Seed: *seed, LossProb: *loss})
		if err != nil {
			return err
		}
		fmt.Printf("detect: missing=%v, %d provably absent suspects, unknown tags=%v, %d rounds\n",
			res.Missing, len(res.Suspects), res.UnknownTags, res.Rounds)
		printCost(res.Cost)

	case "search":
		ids := sys.ReachableIDs()
		half := *wanted / 2
		if half > len(ids) {
			half = len(ids)
		}
		list := append([]uint64{}, ids[:half]...)
		for i := 0; i < *wanted-half; i++ {
			list = append(list, 10_000_000+uint64(i))
		}
		res, err := sys.SearchTags(list, netags.SearchOptions{Seed: *seed, LossProb: *loss})
		if err != nil {
			return err
		}
		fmt.Printf("search: %d/%d wanted IDs found, %d provably absent (analytic FP %.3f)\n",
			len(res.Found), len(list), len(res.Absent), res.ExpectedFalsePositiveRate)
		printCost(res.Cost)

	case "collect":
		res, err := sys.CollectIDs(netags.CollectOptions{Seed: *seed, Contention: *cicp})
		if err != nil {
			return err
		}
		name := "SICP"
		if *cicp {
			name = "CICP"
		}
		fmt.Printf("%s: collected %d IDs, tree depth %d\n", name, len(res.IDs), res.TreeDepth)
		printCost(res.Cost)

	case "bitmap":
		// Per-round convergence output now comes from the Narrator tracer
		// attached above (-trace), which works for every op, not just this
		// one; the ad-hoc OnRound printer it replaces rendered the same rows.
		sopts := netags.SessionOptions{FrameSize: *frame, Seed: *seed, LossProb: *loss}
		res, err := sys.CollectBitmap(sopts)
		if err != nil {
			return err
		}
		fmt.Printf("bitmap: %d/%d busy slots in %d rounds, truncated=%v\n",
			len(res.BusySlots), res.FrameSize, res.Rounds, res.Truncated)
		printCost(res.Cost)

	default:
		return fmt.Errorf("unknown operation %q", *op)
	}
	closed = true
	return instr.Close(os.Stdout)
}

func printCost(c netags.Cost) {
	fmt.Printf("cost: %d slots (%d short + %d long)\n", c.Slots, c.ShortSlots, c.LongSlots)
	fmt.Printf("      per-tag bits sent avg %.1f max %d, received avg %.1f max %d\n",
		c.AvgBitsSent, c.MaxBitsSent, c.AvgBitsReceived, c.MaxBitsReceived)
}

package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunAllOperations(t *testing.T) {
	base := []string{"-n", "400", "-r", "6", "-seed", "3"}
	cases := [][]string{
		append([]string{"-op", "estimate"}, base...),
		append([]string{"-op", "detect", "-missing", "20"}, base...),
		append([]string{"-op", "search", "-wanted", "10"}, base...),
		append([]string{"-op", "collect"}, base...),
		append([]string{"-op", "collect", "-cicp"}, base...),
		append([]string{"-op", "bitmap", "-frame", "128"}, base...),
	}
	for _, args := range cases {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-op", "nonsense", "-n", "50"}); err == nil {
		t.Error("unknown op accepted")
	}
	if err := run([]string{"-op", "detect", "-n", "50", "-missing", "9999"}); err == nil {
		t.Error("removing more tags than exist accepted")
	}
}

func TestRunVariantFlags(t *testing.T) {
	cases := [][]string{
		{"-op", "estimate", "-n", "400", "-r", "6", "-lof"},
		{"-op", "bitmap", "-n", "400", "-r", "6", "-frame", "64", "-trace"},
		{"-op", "detect", "-n", "400", "-r", "6", "-loss", "0.2"},
	}
	for _, args := range cases {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

// TestRunObservabilityArtifacts pins the acceptance criterion: the -trace-out
// JSONL is parseable line by line and the CPU/heap profiles are gzip streams.
func TestRunObservabilityArtifacts(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.jsonl")
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	err := run([]string{"-op", "estimate", "-n", "400", "-r", "6",
		"-trace-out", trace, "-metrics", "json", "-cpuprofile", cpu, "-memprofile", mem})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(data), []byte("\n"))
	if len(lines) == 0 {
		t.Fatal("trace file is empty")
	}
	sawKind := false
	for i, line := range lines {
		if !json.Valid(line) {
			t.Fatalf("trace line %d is not valid JSON: %s", i+1, line)
		}
		if bytes.Contains(line, []byte(`"kind":"session_start"`)) {
			sawKind = true
		}
	}
	if !sawKind {
		t.Fatal("trace has no session_start event")
	}
	for _, p := range []string{cpu, mem} {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(b) < 2 || b[0] != 0x1f || b[1] != 0x8b {
			t.Fatalf("%s is not a gzip stream (pprof profiles are gzipped)", p)
		}
	}
}

// TestRunTraceEveryOp pins the satellite: -trace narrates every operation,
// not just bitmap runs.
func TestRunTraceEveryOp(t *testing.T) {
	for _, op := range []string{"estimate", "detect", "search", "collect", "bitmap"} {
		if err := run([]string{"-op", op, "-n", "300", "-r", "6", "-trace"}); err != nil {
			t.Errorf("run(-op %s -trace): %v", op, err)
		}
	}
}

func TestRunBadMetricsMode(t *testing.T) {
	if err := run([]string{"-op", "estimate", "-n", "300", "-metrics", "bogus"}); err == nil {
		t.Fatal("bad metrics mode accepted")
	}
}

// TestRunHTTPIntrospection: the -http flag is opt-in, starts on an
// ephemeral port, and rejects bad addresses.
func TestRunHTTPIntrospection(t *testing.T) {
	if err := run([]string{"-op", "estimate", "-n", "400", "-r", "6", "-http", "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-op", "estimate", "-n", "400", "-r", "6", "-http", "not-an-address"}); err == nil {
		t.Fatal("bad -http address accepted")
	}
}

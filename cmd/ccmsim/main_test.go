package main

import "testing"

func TestRunAllOperations(t *testing.T) {
	base := []string{"-n", "400", "-r", "6", "-seed", "3"}
	cases := [][]string{
		append([]string{"-op", "estimate"}, base...),
		append([]string{"-op", "detect", "-missing", "20"}, base...),
		append([]string{"-op", "search", "-wanted", "10"}, base...),
		append([]string{"-op", "collect"}, base...),
		append([]string{"-op", "collect", "-cicp"}, base...),
		append([]string{"-op", "bitmap", "-frame", "128"}, base...),
	}
	for _, args := range cases {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-op", "nonsense", "-n", "50"}); err == nil {
		t.Error("unknown op accepted")
	}
	if err := run([]string{"-op", "detect", "-n", "50", "-missing", "9999"}); err == nil {
		t.Error("removing more tags than exist accepted")
	}
}

func TestRunVariantFlags(t *testing.T) {
	cases := [][]string{
		{"-op", "estimate", "-n", "400", "-r", "6", "-lof"},
		{"-op", "bitmap", "-n", "400", "-r", "6", "-frame", "64", "-trace"},
		{"-op", "detect", "-n", "400", "-r", "6", "-loss", "0.2"},
	}
	for _, args := range cases {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

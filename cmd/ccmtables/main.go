// Command ccmtables regenerates the tables and figures of the paper's
// evaluation section (§VI): Fig. 3 (tiers), Fig. 4 (execution time) and
// Tables I–IV (per-tag energy), for SICP, GMLE-CCM and TRP-CCM.
//
// Examples:
//
//	ccmtables -all                      # everything, scaled-down trials
//	ccmtables -all -trials 100          # the paper's full 100 trials
//	ccmtables -figure 4 -r 2,4,6,8,10
//	ccmtables -table 3 -csv out.csv
//	ccmtables -all -ablation            # CCM without the indicator vector
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"netags/internal/experiment"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ccmtables:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ccmtables", flag.ContinueOnError)
	var (
		n        = fs.Int("n", 10000, "number of tags")
		trials   = fs.Int("trials", 10, "trials per r value (paper uses 100)")
		rList    = fs.String("r", "2,3,4,5,6,7,8,9,10", "comma-separated inter-tag ranges")
		figure   = fs.Int("figure", 0, "render figure 3 or 4")
		table    = fs.Int("table", 0, "render table 1..4")
		all      = fs.Bool("all", false, "render every figure and table")
		seed     = fs.Uint64("seed", 1, "sweep seed")
		csvPath  = fs.String("csv", "", "also write all metrics to this CSV file")
		protos   = fs.String("protocols", "SICP,GMLE-CCM,TRP-CCM", "protocols to run")
		ablation = fs.Bool("ablation", false, "disable the indicator vector (flooding ablation)")
		loss     = fs.String("loss", "", "run the unreliable-channel sweep over these loss probabilities instead")
		density  = fs.String("density", "", "run the population sweep over these n values instead")
		quiet    = fs.Bool("quiet", false, "suppress progress output")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *density != "" {
		values, err := parseFloats(*density)
		if err != nil {
			return err
		}
		rs, err := parseFloats(*rList)
		if err != nil {
			return err
		}
		ns := make([]int, len(values))
		for i, v := range values {
			ns[i] = int(v)
		}
		res, err := experiment.RunDensitySweep(experiment.DensityConfig{
			NValues: ns,
			Radius:  30,
			R:       rs[0],
			Trials:  *trials,
			Seed:    *seed,
		})
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		return nil
	}
	if *loss != "" {
		values, err := parseFloats(*loss)
		if err != nil {
			return err
		}
		rs, err := parseFloats(*rList)
		if err != nil {
			return err
		}
		res, err := experiment.RunLossSweep(experiment.LossConfig{
			N:          *n,
			Radius:     30,
			R:          rs[0],
			Trials:     *trials,
			Seed:       *seed,
			LossValues: values,
		})
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		return nil
	}
	if !*all && *figure == 0 && *table == 0 {
		*all = true
	}

	cfg := experiment.Paper()
	cfg.N = *n
	cfg.Trials = *trials
	cfg.Seed = *seed
	cfg.DisableIndicatorVector = *ablation
	var err error
	if cfg.RValues, err = parseFloats(*rList); err != nil {
		return err
	}
	cfg.Protocols = nil
	for _, p := range strings.Split(*protos, ",") {
		cfg.Protocols = append(cfg.Protocols, experiment.Protocol(strings.TrimSpace(p)))
	}

	progress := func(s string) { fmt.Fprintln(os.Stderr, s) }
	if *quiet {
		progress = nil
	}
	res, err := experiment.Run(cfg, progress)
	if err != nil {
		return err
	}

	if *all || *figure == 3 {
		fmt.Println(res.RenderFig3())
	}
	if *all || *figure == 4 {
		fmt.Println(res.RenderFig4())
	}
	tables := []experiment.TableMetric{
		experiment.TableMaxSent, experiment.TableMaxReceived,
		experiment.TableAvgSent, experiment.TableAvgReceived,
	}
	for i, tm := range tables {
		if *all || *table == i+1 {
			fmt.Println(res.RenderTable(tm))
		}
	}
	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(res.CSV()), 0o644); err != nil {
			return fmt.Errorf("write csv: %w", err)
		}
		fmt.Fprintln(os.Stderr, "wrote", *csvPath)
	}
	return nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad r value %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

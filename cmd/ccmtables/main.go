// Command ccmtables regenerates the tables and figures of the paper's
// evaluation section (§VI): Fig. 3 (tiers), Fig. 4 (execution time) and
// Tables I–IV (per-tag energy), for SICP, GMLE-CCM and TRP-CCM.
//
// Examples:
//
//	ccmtables -all                      # everything, scaled-down trials
//	ccmtables -all -trials 100          # the paper's full 100 trials
//	ccmtables -all -workers 8           # same numbers, 8 trial workers
//	ccmtables -figure 4 -r 2,4,6,8,10
//	ccmtables -table 3 -csv out.csv
//	ccmtables -all -ablation            # CCM without the indicator vector
//
// Trials run in parallel over -workers goroutines (default: all cores);
// every worker count reports bit-identical numbers, because trial seeds are
// derived from the position (seed, r, trial), not from execution order.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"netags/internal/experiment"
	"netags/internal/obs"
	"netags/internal/obs/httpserve"
)

func main() {
	// Ctrl-C cancels the sweep instead of killing mid-write: the worker
	// pool drains and the first context error surfaces here.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ccmtables:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("ccmtables", flag.ContinueOnError)
	var (
		n        = fs.Int("n", 10000, "number of tags")
		trials   = fs.Int("trials", 10, "trials per r value (paper uses 100)")
		rList    = fs.String("r", "2,3,4,5,6,7,8,9,10", "comma-separated inter-tag ranges")
		figure   = fs.Int("figure", 0, "render figure 3 or 4")
		table    = fs.Int("table", 0, "render table 1..4")
		all      = fs.Bool("all", false, "render every figure and table")
		seed     = fs.Uint64("seed", 1, "sweep seed")
		csvPath  = fs.String("csv", "", "also write all metrics to this CSV file")
		protos   = fs.String("protocols", "SICP,GMLE-CCM,TRP-CCM", "protocols to run")
		ablation = fs.Bool("ablation", false, "disable the indicator vector (flooding ablation)")
		loss     = fs.String("loss", "", "run the unreliable-channel sweep over these loss probabilities instead")
		density  = fs.String("density", "", "run the population sweep over these n values instead")
		quiet    = fs.Bool("quiet", false, "suppress progress output (alias for -progress off)")
		workers  = fs.Int("workers", 0, "parallel trial workers (0 = all cores, 1 = sequential; results are identical)")
		progress = fs.String("progress", "text", "progress output on stderr: text | json | off")
		traceOut = fs.String("trace-out", "", "write every protocol run's event stream to this JSONL file")
		metrics  = fs.String("metrics", "", "print a sweep metrics summary: text | json")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = fs.String("memprofile", "", "write a heap profile to this file")
		httpAddr = fs.String("http", "", "serve live introspection (/metrics, /progress, /events, /debug/pprof) on this address, e.g. :8080")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *quiet {
		*progress = "off"
	}
	// Progress flows as structured experiment.Progress events; "text"
	// renders the legacy line, "json" one JSONL object per work item.
	var observe func(experiment.Progress)
	switch *progress {
	case "text":
		observe = func(p experiment.Progress) { fmt.Fprintln(os.Stderr, p.String()) }
	case "json":
		enc := json.NewEncoder(os.Stderr)
		observe = func(p experiment.Progress) { enc.Encode(p) }
	case "off":
	default:
		return fmt.Errorf("unknown -progress mode %q (want text, json, or off)", *progress)
	}
	// Per-point elapsed/throughput aggregation rides along on the same
	// event stream and prints to stderr after the sweep.
	timing := experiment.NewTiming()
	observe = timing.Wrap(observe)
	summarize := func() {
		if *progress != "off" {
			fmt.Fprint(os.Stderr, timing.String())
		}
	}

	instr, err := obs.StartInstrumentation(*traceOut, *metrics, *cpuProf, *memProf)
	if err != nil {
		return err
	}
	closed := false
	defer func() {
		if !closed {
			instr.Close(os.Stdout)
		}
	}()
	finish := func() error {
		summarize()
		closed = true
		return instr.Close(os.Stdout)
	}
	// Live introspection: -http starts an observe-only server whose
	// collector and ring ride the sweep's tracer, and whose /progress view
	// is fed by a Tracker stacked onto the observe chain. With the flag
	// unset, intro is nil, intro.Tracer() is nil, and nothing changes.
	var intro *httpserve.Server
	setTotal := func(int) {}
	if *httpAddr != "" {
		tracker := experiment.NewTracker()
		intro, err = httpserve.Start(*httpAddr, httpserve.Options{
			Collector: obs.NewCollector(),
			Ring:      obs.NewRing(0),
			Progress:  tracker.ProgressJSON,
		})
		if err != nil {
			return err
		}
		defer intro.Close()
		fmt.Fprintf(os.Stderr, "introspection: http://%s\n", intro.Addr())
		observe = tracker.Wrap(observe)
		setTotal = tracker.SetTotal
	}
	tracer := obs.Multi(instr.Tracer(), intro.Tracer())
	if *density != "" {
		values, err := parseFloats(*density)
		if err != nil {
			return err
		}
		rs, err := parseFloats(*rList)
		if err != nil {
			return err
		}
		ns := make([]int, len(values))
		for i, v := range values {
			ns[i] = int(v)
		}
		setTotal(len(ns) * *trials)
		res, err := experiment.RunDensitySweepContext(ctx, experiment.DensityConfig{
			BaseConfig: experiment.BaseConfig{
				Radius:  30,
				Trials:  *trials,
				Seed:    *seed,
				Workers: *workers,
				Tracer:  tracer,
			},
			NValues: ns,
			R:       rs[0],
		}, observe)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		return finish()
	}
	if *loss != "" {
		values, err := parseFloats(*loss)
		if err != nil {
			return err
		}
		rs, err := parseFloats(*rList)
		if err != nil {
			return err
		}
		setTotal(len(values) * *trials)
		res, err := experiment.RunLossSweepContext(ctx, experiment.LossConfig{
			BaseConfig: experiment.BaseConfig{
				N:       *n,
				Radius:  30,
				Trials:  *trials,
				Seed:    *seed,
				Workers: *workers,
				Tracer:  tracer,
			},
			R:          rs[0],
			LossValues: values,
		}, observe)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		return finish()
	}
	if !*all && *figure == 0 && *table == 0 {
		*all = true
	}

	cfg := experiment.Paper()
	cfg.N = *n
	cfg.Trials = *trials
	cfg.Seed = *seed
	cfg.Workers = *workers
	cfg.Tracer = tracer
	cfg.DisableIndicatorVector = *ablation
	if cfg.RValues, err = parseFloats(*rList); err != nil {
		return err
	}
	setTotal(len(cfg.RValues) * *trials)
	cfg.Protocols = nil
	for _, p := range strings.Split(*protos, ",") {
		cfg.Protocols = append(cfg.Protocols, experiment.Protocol(strings.TrimSpace(p)))
	}

	res, err := experiment.RunContext(ctx, cfg, observe)
	if err != nil {
		return err
	}

	if *all || *figure == 3 {
		fmt.Println(res.RenderFig3())
	}
	if *all || *figure == 4 {
		fmt.Println(res.RenderFig4())
	}
	tables := []experiment.TableMetric{
		experiment.TableMaxSent, experiment.TableMaxReceived,
		experiment.TableAvgSent, experiment.TableAvgReceived,
	}
	for i, tm := range tables {
		if *all || *table == i+1 {
			fmt.Println(res.RenderTable(tm))
		}
	}
	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(res.CSV()), 0o644); err != nil {
			return fmt.Errorf("write csv: %w", err)
		}
		fmt.Fprintln(os.Stderr, "wrote", *csvPath)
	}
	return finish()
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad r value %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseFloats(t *testing.T) {
	got, err := parseFloats("2, 4,6")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 4, 6}
	if len(got) != len(want) {
		t.Fatalf("parsed %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parsed %v, want %v", got, want)
		}
	}
	if _, err := parseFloats("2,x"); err == nil {
		t.Fatal("bad float accepted")
	}
}

func TestRunSmoke(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "out.csv")
	err := run(context.Background(), []string{
		"-n", "400", "-trials", "1", "-r", "6", "-all", "-quiet",
		"-csv", csv,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "r,protocol,metric,") {
		t.Fatalf("unexpected CSV: %s", data[:60])
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-r", "nope"}); err == nil {
		t.Fatal("bad r list accepted")
	}
	if err := run(context.Background(), []string{"-n", "100", "-trials", "1", "-r", "6", "-protocols", "bogus", "-quiet"}); err == nil {
		t.Fatal("bogus protocol accepted")
	}
}

func TestRunLossMode(t *testing.T) {
	if err := run(context.Background(), []string{"-n", "300", "-trials", "1", "-r", "6", "-loss", "0,0.5", "-quiet"}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-n", "300", "-trials", "1", "-r", "6", "-loss", "bogus"}); err == nil {
		t.Fatal("bad loss list accepted")
	}
}

func TestRunDensityMode(t *testing.T) {
	if err := run(context.Background(), []string{"-trials", "1", "-r", "6", "-density", "300,600", "-quiet"}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-trials", "1", "-r", "6", "-density", "x"}); err == nil {
		t.Fatal("bad density list accepted")
	}
}

// TestRunObservabilityFlags drives one small sweep with every observability
// sink attached and checks the artifacts parse.
func TestRunObservabilityFlags(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.jsonl")
	cpu := filepath.Join(dir, "cpu.pprof")
	err := run(context.Background(), []string{
		"-n", "300", "-trials", "1", "-r", "6", "-figure", "3",
		"-progress", "off", "-trace-out", trace, "-metrics", "json", "-cpuprofile", cpu,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	for i, line := range bytes.Split(bytes.TrimSpace(data), []byte("\n")) {
		if !json.Valid(line) {
			t.Fatalf("trace line %d is not valid JSON: %s", i+1, line)
		}
	}
	if b, err := os.ReadFile(cpu); err != nil || len(b) < 2 || b[0] != 0x1f || b[1] != 0x8b {
		t.Fatalf("cpu profile not a gzip stream (err=%v)", err)
	}
}

func TestRunProgressModes(t *testing.T) {
	for _, mode := range []string{"text", "json", "off"} {
		err := run(context.Background(), []string{
			"-n", "300", "-trials", "1", "-r", "6", "-figure", "3", "-progress", mode})
		if err != nil {
			t.Errorf("run(-progress %s): %v", mode, err)
		}
	}
	if err := run(context.Background(), []string{"-n", "300", "-trials", "1", "-r", "6", "-progress", "bogus"}); err == nil {
		t.Fatal("bad progress mode accepted")
	}
}

// TestRunHTTPIntrospection: -http on an ephemeral port starts, serves the
// sweep, and shuts down cleanly; a bad address is a startup error.
func TestRunHTTPIntrospection(t *testing.T) {
	err := run(context.Background(), []string{
		"-n", "300", "-trials", "1", "-r", "6", "-figure", "3", "-quiet",
		"-http", "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{
		"-n", "300", "-trials", "1", "-r", "6", "-figure", "3", "-quiet",
		"-http", "not-an-address"}); err == nil {
		t.Fatal("bad -http address accepted")
	}
}

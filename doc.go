// Package netags is a simulation library for system-level functions over
// state-free networked RFID tags, reproducing "Collision-resistant
// Communication Model for State-free Networked Tags" (Liu, Zhang, Chen,
// Chen, Chen — IEEE ICDCS 2019).
//
// Networked tags extend classic RFID with tag-to-tag links: a reader that
// cannot reach every tag directly can still run inventory-wide functions if
// tags relay for each other. The paper's contribution, the
// Collision-resistant Communication Model (CCM), relays one-bit "slot busy"
// marks tier by tier toward the reader, letting simultaneous transmissions
// merge instead of colliding destructively, and silences already-delivered
// slots with an indicator vector. This package exposes CCM and four
// system-level functions built on it or compared against it:
//
//   - EstimateCardinality — GMLE population estimation (paper §IV)
//   - DetectMissing — TRP missing-tag detection (paper §V)
//   - SearchTags — Bloom-style tag search (paper §III-B)
//   - CollectIDs — the SICP/CICP ID-collection baselines (paper §VI)
//
// Everything is a deterministic slot-level simulation: construct a System
// (a deployment of tags around one or more readers), then invoke operations
// on it. Costs are reported in the paper's units — slot counts for time,
// per-tag bits sent/received for energy.
//
// # Quick start
//
//	sys, err := netags.NewSystem(netags.SystemOptions{
//		Tags:          10000,
//		InterTagRange: 6,
//		Seed:          1,
//	})
//	if err != nil { ... }
//	est, err := sys.EstimateCardinality(netags.EstimateOptions{})
//	fmt.Printf("≈%.0f tags (true %d), %d slots of air time\n",
//		est.Estimate, sys.Reachable(), est.Cost.Slots)
//
// The cmd/ tools regenerate the paper's tables and figures; see DESIGN.md
// for the experiment index and EXPERIMENTS.md for measured results.
package netags

package netags

import "netags/internal/dutycycle"

// DutyCycleParams describes the sleep–wake contract of §II: state-free tags
// sleep between operations, wake to listen for a reader request, and are
// loosely re-synchronized by each request they catch. Time units are
// arbitrary but must be consistent (e.g. milliseconds).
type DutyCycleParams struct {
	// SleepPeriod is the nominal time a tag sleeps between listen windows.
	SleepPeriod float64
	// ListenWindow is how long a tag listens after waking before timing
	// out and sleeping again.
	ListenWindow float64
	// MaxDrift bounds each tag's clock-drift rate (fraction, e.g. 0.005).
	MaxDrift float64
	// BroadcastDelay is the worst-case request propagation delay.
	BroadcastDelay float64
}

// RequestInterval returns the paper's scheduling rule made concrete: the
// reader's next request goes out "a little later than the timeout period
// set by the tags" — SleepPeriod·(1+MaxDrift)+BroadcastDelay — so even the
// slowest-drifting tag is awake when it arrives.
func (p DutyCycleParams) RequestInterval() float64 {
	return dutycycle.Params(p).RequestInterval()
}

// Feasible reports whether any schedule can reach every tag: the listen
// window must absorb twice the per-period drift plus the broadcast delay.
func (p DutyCycleParams) Feasible() bool {
	return dutycycle.Params(p).Feasible()
}

// DutyCycleOutcome reports a simulated request schedule.
type DutyCycleOutcome struct {
	// AwakePerRequest[k] is the number of tags that caught request k.
	AwakePerRequest []int
	// MissedPerRequest[k] lists the tag indices that slept through request
	// k — temporarily outside the system for that operation.
	MissedPerRequest [][]int
	// AllCaught reports whether every tag caught every request.
	AllCaught bool
}

// SimulateDutyCycle runs nTags drifting tag clocks through nRequests reader
// requests spaced interval apart, reporting who was awake for each. Use it
// to validate a deployment's sleep schedule before trusting operation
// results: tags that miss the request are invisible to that operation, so
// estimation undercounts and detection false-alarms.
func SimulateDutyCycle(p DutyCycleParams, nTags, nRequests int, interval float64, seed uint64) (*DutyCycleOutcome, error) {
	out, err := dutycycle.Simulate(dutycycle.Params(p), nTags, nRequests, interval, seed)
	if err != nil {
		return nil, err
	}
	return &DutyCycleOutcome{
		AwakePerRequest:  out.AwakePerRequest,
		MissedPerRequest: out.MissedPerRequest,
		AllCaught:        out.AllCaught,
	}, nil
}

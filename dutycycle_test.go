package netags

import "testing"

func TestDutyCycleRule(t *testing.T) {
	p := DutyCycleParams{
		SleepPeriod:    10000,
		ListenWindow:   150,
		MaxDrift:       0.005,
		BroadcastDelay: 5,
	}
	if !p.Feasible() {
		t.Fatal("feasible schedule reported infeasible")
	}
	if got := p.RequestInterval(); got <= p.SleepPeriod {
		t.Fatalf("interval %v not later than the sleep period", got)
	}
	out, err := SimulateDutyCycle(p, 200, 50, p.RequestInterval(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !out.AllCaught {
		t.Fatal("paper's rule missed tags")
	}
	if len(out.AwakePerRequest) != 50 || len(out.MissedPerRequest) != 50 {
		t.Fatal("per-request reports incomplete")
	}
}

func TestDutyCycleMisprovisioned(t *testing.T) {
	p := DutyCycleParams{SleepPeriod: 10000, ListenWindow: 20, MaxDrift: 0.05}
	if p.Feasible() {
		t.Fatal("undersized window reported feasible")
	}
	out, err := SimulateDutyCycle(p, 200, 50, p.SleepPeriod, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out.AllCaught {
		t.Fatal("infeasible schedule caught everything (implausible)")
	}
}

func TestDutyCycleValidation(t *testing.T) {
	if _, err := SimulateDutyCycle(DutyCycleParams{}, 10, 10, 1, 1); err == nil {
		t.Fatal("invalid params accepted")
	}
}

// Dutycycle: the §II sleep–wake contract in action. State-free tags sleep
// between operations and wake briefly to listen for a request; each caught
// request re-synchronizes their drifting clocks. The paper prescribes that
// the reader time its next request "a little later than the timeout period
// set by the tags" — this example validates that rule and shows what a
// mis-provisioned schedule does to the system-level functions.
package main

import (
	"fmt"
	"log"

	"netags"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Tags sleep 10 s, wake for a 150 ms listen window; clocks drift up to
	// 0.5% per period; worst-case broadcast delay 5 ms.
	p := netags.DutyCycleParams{
		SleepPeriod:    10_000,
		ListenWindow:   150,
		MaxDrift:       0.005,
		BroadcastDelay: 5,
	}
	fmt.Printf("schedule feasible: %v; paper's rule says request every %.0f ms\n",
		p.Feasible(), p.RequestInterval())

	const tags = 5000
	good, err := netags.SimulateDutyCycle(p, tags, 100, p.RequestInterval(), 1)
	if err != nil {
		return err
	}
	fmt.Printf("with the rule: every request caught by all %d tags over 100 operations: %v\n",
		tags, good.AllCaught)

	// Now a mis-provisioned deployment: the integrator halves the listen
	// window to save energy and polls exactly every sleep period.
	bad := p
	bad.ListenWindow = 40
	fmt.Printf("\nshrunken 40 ms window feasible: %v\n", bad.Feasible())
	out, err := netags.SimulateDutyCycle(bad, tags, 100, bad.SleepPeriod, 2)
	if err != nil {
		return err
	}
	worst := tags
	for _, awake := range out.AwakePerRequest {
		if awake < worst {
			worst = awake
		}
	}
	fmt.Printf("worst request reached only %d/%d tags\n", worst, tags)

	// What that does to an operation: tags that missed the request are
	// invisible, so a missing-tag scan false-alarms on them.
	sys, err := netags.NewSystem(netags.SystemOptions{Tags: tags, InterTagRange: 6, Seed: 3})
	if err != nil {
		return err
	}
	inventory := sys.ReachableIDs()
	// Pick the worst request's sleepers and remove them for one operation.
	var sleepers []uint64
	ids := sys.IDs()
	for k, awake := range out.AwakePerRequest {
		if awake == worst {
			for _, idx := range out.MissedPerRequest[k] {
				sleepers = append(sleepers, ids[idx])
			}
			break
		}
	}
	if len(sleepers) == 0 {
		fmt.Println("(no sleepers this seed)")
		return nil
	}
	during, err := sys.RemoveTags(sleepers)
	if err != nil {
		return err
	}
	scan, err := during.DetectMissing(inventory, netags.DetectOptions{Seed: 4})
	if err != nil {
		return err
	}
	fmt.Printf("a scan during that request: missing=%v with %d tags accused — all of them just asleep\n",
		scan.Missing, len(scan.Suspects))
	fmt.Println("moral: provision the listen window and request interval per §II before trusting scans")
	return nil
}

// Estimation: how GMLE-over-CCM accuracy and cost trade off. Sweeps the
// error bound β and shows the frame count, air time, and achieved error —
// the requirement of eq. (2) in action, plus a look at how the inter-tag
// range changes the bill.
package main

import (
	"fmt"
	"log"
	"math"

	"netags"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys, err := netags.NewSystem(netags.SystemOptions{
		Tags:          10000,
		InterTagRange: 6,
		Seed:          7,
	})
	if err != nil {
		return err
	}
	truth := float64(sys.Reachable())
	fmt.Printf("population: %d reachable tags\n\n", sys.Reachable())

	fmt.Println("accuracy sweep (α = 95%):")
	fmt.Printf("%8s  %8s  %10s  %10s  %10s\n", "β", "frames", "slots", "est.", "error")
	for _, beta := range []float64{0.20, 0.10, 0.05, 0.02} {
		res, err := sys.EstimateCardinality(netags.EstimateOptions{Beta: beta, Seed: 3})
		if err != nil {
			return err
		}
		fmt.Printf("%7.0f%%  %8d  %10d  %10.0f  %+9.2f%%\n",
			beta*100, res.Frames, res.Cost.Slots, res.Estimate,
			100*(res.Estimate-truth)/truth)
		if res.Converged && math.Abs(res.Estimate-truth) > 3*beta*truth {
			return fmt.Errorf("estimate strayed far outside the requirement")
		}
	}

	fmt.Println("\nrange sweep (β = 5%): denser relays, fewer tiers, faster sessions:")
	fmt.Printf("%8s  %8s  %10s  %14s\n", "r (m)", "tiers", "slots", "bits recv/tag")
	for _, r := range []float64{2, 4, 6, 8, 10} {
		s, err := netags.NewSystem(netags.SystemOptions{Tags: 10000, InterTagRange: r, Seed: 7})
		if err != nil {
			return err
		}
		res, err := s.EstimateCardinality(netags.EstimateOptions{Seed: 3})
		if err != nil {
			return err
		}
		fmt.Printf("%8g  %8d  %10d  %14.0f\n", r, s.Tiers(), res.Cost.Slots, res.Cost.AvgBitsReceived)
	}
	return nil
}

// Multireader: the §III-G extension. A hall too large for one reader gets
// two; each runs CCM in its own round-robin window and the reader-side
// bitmaps merge with bitwise OR (eq. (1)). Tags in the overlap serve both
// readers; tags outside every reader's broadcast range are simply not in
// the system.
package main

import (
	"fmt"
	"log"

	"netags"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const tags = 6000
	// A 55 m-radius hall. One centered reader (30 m broadcast range)
	// cannot even talk to the periphery.
	single, err := netags.NewSystem(netags.SystemOptions{
		Tags:          tags,
		Radius:        55,
		InterTagRange: 6,
		Seed:          31,
	})
	if err != nil {
		return err
	}
	fmt.Printf("one reader:  %4d of %d tags in the system\n", single.Reachable(), tags)

	// Two readers spread across the hall: coverage union.
	double, err := netags.NewSystem(netags.SystemOptions{
		Tags:          tags,
		Radius:        55,
		InterTagRange: 6,
		Readers:       []netags.Position{{X: -27}, {X: 27}},
		Seed:          31,
	})
	if err != nil {
		return err
	}
	fmt.Printf("two readers: %4d of %d tags in the system\n", double.Reachable(), tags)

	// Every operation works transparently over the round-robin schedule.
	est, err := double.EstimateCardinality(netags.EstimateOptions{Beta: 0.1, Seed: 5})
	if err != nil {
		return err
	}
	fmt.Printf("estimated %.0f tags across both readers (truth %d), %d slots total air time\n",
		est.Estimate, double.Reachable(), est.Cost.Slots)

	inventory := double.ReachableIDs()
	after, err := double.RemoveTags(inventory[:45])
	if err != nil {
		return err
	}
	det, err := after.DetectMissing(inventory, netags.DetectOptions{Seed: 8})
	if err != nil {
		return err
	}
	fmt.Printf("after removing 45 tags: missing=%v, %d provably absent\n",
		det.Missing, len(det.Suspects))

	// The combined bitmap really is the OR of the per-reader views: a
	// search finds tags that only one of the two readers can reach.
	probe := inventory[:10]
	res, err := double.SearchTags(probe, netags.SearchOptions{Seed: 13})
	if err != nil {
		return err
	}
	fmt.Printf("search over both windows: %d/%d probed tags found\n", len(res.Found), len(probe))
	return nil
}

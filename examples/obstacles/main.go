// Obstacles: the scenario that motivates networked tags in the paper's
// introduction — "obstacles moving in or tagged objects piling up ...
// prevent signals from penetrating into every corner of the deployment,
// causing a reader to fail in reaching some of the tags. This problem will
// be solved if the tags can relay transmissions toward the
// otherwise-inaccessible reader."
//
// We drop shelving walls into a storeroom and compare what a traditional
// one-hop reader sees against what CCM's multi-hop relaying recovers.
package main

import (
	"fmt"
	"log"

	"netags"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Three long metal shelves around the reader. They stop the weak
	// tag-originated transmissions; the reader's high-power broadcast
	// still penetrates (the asymmetric link model).
	walls := []netags.Wall{
		{From: netags.Position{X: 6, Y: -14}, To: netags.Position{X: 6, Y: 14}},
		{From: netags.Position{X: -10, Y: -16}, To: netags.Position{X: -10, Y: 10}},
		{From: netags.Position{X: -6, Y: 12}, To: netags.Position{X: 14, Y: 12}},
	}

	blocked, err := netags.NewSystem(netags.SystemOptions{
		Tags:          6000,
		InterTagRange: 6,
		Seed:          404,
		Walls:         walls,
	})
	if err != nil {
		return err
	}
	open, err := netags.NewSystem(netags.SystemOptions{
		Tags:          6000,
		InterTagRange: 6,
		Seed:          404, // identical deployment, no walls
	})
	if err != nil {
		return err
	}

	fmt.Println("storeroom with three shelving walls, 6000 tags:")
	fmt.Printf("  open floor:   one-hop coverage %4d tags, with relaying %4d\n",
		open.DirectCoverage(), open.Reachable())
	fmt.Printf("  with shelves: one-hop coverage %4d tags, with relaying %4d\n",
		blocked.DirectCoverage(), blocked.Reachable())
	lost := open.DirectCoverage() - blocked.DirectCoverage()
	recovered := blocked.Reachable() - blocked.DirectCoverage()
	fmt.Printf("  the shelves cost %d tags of direct coverage; relays carry %d tags' data around them\n\n",
		lost, recovered)

	// The detours also deepen the network past the paper's empirical
	// checking-frame bound L_c = 2·(1+⌈(R−r')/r⌉), which assumes an open
	// floor. With the default bound, sessions truncate and a scan
	// false-alarms — results carry a Truncated warning.
	fmt.Printf("network depth: %d tiers with shelves vs %d on the open floor\n",
		blocked.Tiers(), open.Tiers())
	inventory := blocked.ReachableIDs()
	scan, err := blocked.DetectMissing(inventory, netags.DetectOptions{Seed: 5})
	if err != nil {
		return err
	}
	fmt.Printf("scan with the open-floor L_c: missing=%v truncated=%v (spurious — nothing is gone)\n",
		scan.Missing, scan.Truncated)

	// Re-provision the system with a checking frame sized for detours.
	tuned, err := netags.NewSystem(netags.SystemOptions{
		Tags:             6000,
		InterTagRange:    6,
		Seed:             404,
		Walls:            walls,
		CheckingFrameLen: 4 * blocked.Tiers(),
	})
	if err != nil {
		return err
	}
	scan, err = tuned.DetectMissing(inventory, netags.DetectOptions{Seed: 5})
	if err != nil {
		return err
	}
	fmt.Printf("scan with L_c = %d:          missing=%v truncated=%v (correct)\n",
		4*blocked.Tiers(), scan.Missing, scan.Truncated)

	// And cardinality estimation sees the whole room.
	est, err := tuned.EstimateCardinality(netags.EstimateOptions{Seed: 6})
	if err != nil {
		return err
	}
	fmt.Printf("estimated %.0f tags behind and around the shelves (truth %d)\n",
		est.Estimate, tuned.Reachable())
	return nil
}

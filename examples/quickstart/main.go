// Quickstart: build a networked tag system, collect a raw CCM bitmap, and
// estimate how many tags are out there — the two-minute tour of the public
// API.
package main

import (
	"fmt"
	"log"

	"netags"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 10,000 battery-powered tags in a 30 m disk, one reader at the center.
	// The reader's broadcast covers everything, but tags can only answer
	// from within 20 m — everyone further out depends on 6 m tag-to-tag
	// relays. This is the paper's §VI-A setting.
	sys, err := netags.NewSystem(netags.SystemOptions{
		Tags:          10000,
		InterTagRange: 6,
		Seed:          42,
	})
	if err != nil {
		return err
	}
	fmt.Printf("deployed %d tags, %d can reach the reader, %d tiers deep\n",
		sys.TagCount(), sys.Reachable(), sys.Tiers())

	// The CCM primitive: every tag marks one slot of a frame; busy slots
	// ripple to the reader tier by tier, with collisions merging benignly.
	bm, err := sys.CollectBitmap(netags.SessionOptions{FrameSize: 512, Seed: 7})
	if err != nil {
		return err
	}
	fmt.Printf("raw session: %d/%d slots busy after %d rounds, %d slots of air time\n",
		len(bm.BusySlots), bm.FrameSize, bm.Rounds, bm.Cost.Slots)

	// Cardinality estimation on top of CCM: ±5% at 95% confidence.
	est, err := sys.EstimateCardinality(netags.EstimateOptions{Seed: 1})
	if err != nil {
		return err
	}
	fmt.Printf("estimated %.0f tags (truth: %d) using %d frames\n",
		est.Estimate, sys.Reachable(), est.Frames)
	fmt.Printf("cost: %d slots of air time, %.0f bits received by an average tag\n",
		est.Cost.Slots, est.Cost.AvgBitsReceived)

	// The same job done by collecting every ID (the pre-CCM state of the
	// art) costs an order of magnitude more.
	col, err := sys.CollectIDs(netags.CollectOptions{Seed: 1})
	if err != nil {
		return err
	}
	fmt.Printf("ID collection baseline: %d slots (%.0fx slower), avg %.0f bits received per tag (%.0fx)\n",
		col.Cost.Slots,
		float64(col.Cost.Slots)/float64(est.Cost.Slots),
		col.Cost.AvgBitsReceived,
		col.Cost.AvgBitsReceived/est.Cost.AvgBitsReceived)
	return nil
}

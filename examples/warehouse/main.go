// Warehouse: the missing-tag detection story from the paper's introduction.
// A distribution center tags every pallet; obstacles keep the reader from
// seeing tags directly, so detection runs over multi-hop CCM. We simulate
// nightly scans, a theft, and the identification of what was stolen.
package main

import (
	"fmt"
	"log"

	"netags"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The warehouse floor: 8,000 tagged pallets, reachable only through
	// tag-to-tag relays beyond the reader's 20 m answer range.
	warehouse, err := netags.NewSystem(netags.SystemOptions{
		Tags:          8000,
		InterTagRange: 5,
		Seed:          2024,
	})
	if err != nil {
		return err
	}
	inventory := warehouse.ReachableIDs()
	fmt.Printf("warehouse: %d pallets on file, network is %d tiers deep\n",
		len(inventory), warehouse.Tiers())

	// Night 1: all quiet. A single detection execution costs a few
	// thousand 1-bit slots — cheap enough to run hourly.
	scan, err := warehouse.DetectMissing(inventory, netags.DetectOptions{Seed: 1})
	if err != nil {
		return err
	}
	fmt.Printf("night 1: missing=%v (%d slots of air time)\n", scan.Missing, scan.Cost.Slots)

	// Night 2: a pallet jack leaves with 60 pallets.
	stolen := inventory[100:160]
	after, err := warehouse.RemoveTags(stolen)
	if err != nil {
		return err
	}
	fmt.Printf("night 2: %d pallets quietly disappear...\n", len(stolen))

	// The protocol guarantees ≥95% single-scan detection when more than
	// 0.5% of the inventory is gone; repeated scans push that to ~100%.
	detected := false
	for seed := uint64(10); seed < 14; seed++ {
		scan, err := after.DetectMissing(inventory, netags.DetectOptions{Seed: seed})
		if err != nil {
			return err
		}
		fmt.Printf("  scan %d: missing=%v, %d pallets provably absent\n",
			seed-9, scan.Missing, len(scan.Suspects))
		if scan.Missing {
			detected = true
			// Confirm the suspects against what actually left: TRP never
			// accuses a pallet that is still present and reachable.
			gone := make(map[uint64]bool, len(stolen))
			for _, id := range stolen {
				gone[id] = true
			}
			confirmed := 0
			for _, s := range scan.Suspects {
				if gone[s] {
					confirmed++
				}
			}
			fmt.Printf("  -> %d/%d suspects confirmed stolen\n", confirmed, len(scan.Suspects))
			break
		}
	}
	if !detected {
		fmt.Println("  (no scan fired — statistically possible but rare)")
	}

	// Finally, check whether three specific high-value pallets are still
	// on the floor, without collecting a single full ID.
	probe := []uint64{stolen[0], inventory[0], inventory[1]}
	found, err := after.SearchTags(probe, netags.SearchOptions{Seed: 99})
	if err != nil {
		return err
	}
	fmt.Printf("spot check: %d of %d probed pallets present, %d provably gone\n",
		len(found.Found), len(probe), len(found.Absent))
	return nil
}

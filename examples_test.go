package netags_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestExamples go-runs every program under examples/ and asserts it exits 0
// with non-empty output — the examples double as end-to-end smoke tests of
// the public surface, and this keeps them from rotting as the APIs move.
// The full set takes ~45s of simulation on one core, so -short skips it
// (the tier-1 `make verify` run still covers it).
func TestExamples(t *testing.T) {
	if testing.Short() {
		t.Skip("examples take ~45s of simulation; run without -short")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no example programs found")
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			cmd := exec.Command("go", "run", "./"+filepath.Join("examples", name))
			cmd.Stdout = &stdout
			cmd.Stderr = &stderr
			if err := cmd.Run(); err != nil {
				t.Fatalf("go run failed: %v\nstderr:\n%s", err, stderr.String())
			}
			if stdout.Len() == 0 {
				t.Error("example produced no output")
			}
		})
	}
}

module netags

go 1.22

module netags

go 1.24

// Package analysis implements the paper's closed-form performance model of
// CCM (§IV-C, equations (3)–(13)): execution time, per-tag monitored slots
// and per-tag transmission slots for a tag at tier k of a uniformly dense
// deployment.
//
// The geometry mirrors Fig. 2: Γ_i is the tag set within i tag-hops of a
// given tag (a disk of radius i·r clipped to the deployment), Γ'_i the tag
// set whose information the reader has silenced by round i (a disk of
// radius r' + (i−1)·r around the reader), and their union determines how
// many slots a tag still monitors and relays. All areas reduce to
// circle–circle intersections, which geom.LensArea computes in one tested
// place rather than transcribing the paper's per-case trigonometry.
package analysis

import (
	"fmt"
	"math"

	"netags/internal/energy"
	"netags/internal/geom"
	"netags/internal/topology"
)

// Model evaluates the closed forms for one parameter setting.
type Model struct {
	// Ranges holds R, r', r.
	Ranges topology.Ranges
	// Density is ρ, tags per square meter.
	Density float64
	// FrameSize is f.
	FrameSize int
	// Sampling is p (1 for TRP).
	Sampling float64
}

// Validate reports whether the model parameters are usable.
func (m Model) Validate() error {
	if err := m.Ranges.Validate(); err != nil {
		return err
	}
	if m.Density <= 0 {
		return fmt.Errorf("analysis: density %v must be positive", m.Density)
	}
	if m.FrameSize <= 0 {
		return fmt.Errorf("analysis: frame size %d must be positive", m.FrameSize)
	}
	if m.Sampling <= 0 || m.Sampling > 1 {
		return fmt.Errorf("analysis: sampling %v outside (0,1]", m.Sampling)
	}
	return nil
}

// Tiers returns the analytical tier count K = 1 + ⌈(R−r')/r⌉.
func (m Model) Tiers() int { return m.Ranges.EstimatedTiers() }

// Chi is eq. (4): the expected number of distinct slots picked by nTags
// tags, χ(n') = f(1 − (1 − 1/f)^n').
func (m Model) Chi(nTags float64) float64 {
	f := float64(m.FrameSize)
	return f * (1 - math.Pow(1-1/f, nTags))
}

// tagDist returns the model's canonical distance from the reader for a tag
// at tier k: the outer edge r0 = r' + (k−1)·r used throughout §IV-C.
func (m Model) tagDist(k int) float64 {
	return m.Ranges.TagToReader + float64(k-1)*m.Ranges.TagToTag
}

// GammaPrime is |Γ'_i| (eq. (5)): the tags within the reader-silenced disk
// after i rounds. Γ'_0 is empty.
func (m Model) GammaPrime(i int) float64 {
	if i <= 0 {
		return 0
	}
	radius := m.Ranges.TagToReader + float64(i-1)*m.Ranges.TagToTag
	return m.Density * geom.DiskArea(radius)
}

// Gamma is |Γ_i| (eqs. (6)–(8)) for a tag at tier k: the tags within i
// tag-hops, i.e. a disk of radius i·r around the tag clipped to the
// deployment disk of radius R. Γ_0 is the tag itself.
func (m Model) Gamma(k, i int) float64 {
	if i <= 0 {
		return 1
	}
	return m.Density * geom.LensArea(float64(i)*m.Ranges.TagToTag, m.Ranges.ReaderToTag, m.tagDist(k))
}

// GammaUnion is |Γ_i ∪ Γ'_i| (eq. (10)): Γ's disk and Γ”s disk overlap
// once i > k/2; the lens area of the two disks (eq. (9)) removes the double
// count. LensArea returns 0 for disjoint disks, which reproduces the
// i ≤ k/2 case split automatically.
func (m Model) GammaUnion(k, i int) float64 {
	if i <= 0 {
		return 1
	}
	overlap := m.Density * geom.LensArea(
		float64(i)*m.Ranges.TagToTag,
		m.Ranges.TagToReader+float64(i-1)*m.Ranges.TagToTag,
		m.tagDist(k),
	)
	u := m.Gamma(k, i) + m.GammaPrime(i) - overlap
	if u < 1 {
		u = 1
	}
	return u
}

// indicatorSegments is ⌈f/96⌉.
func (m Model) indicatorSegments() float64 {
	return math.Ceil(float64(m.FrameSize) / energy.IDBits)
}

// MonitorSlots is N_r (eq. (11)): the expected number of slots a tier-k tag
// spends receiving — frame monitoring plus indicator-vector segments plus
// checking frames — over a K-round session.
//
// The per-round monitoring term follows the prose of §IV-C — the tag stays
// awake for f − χ(p·|Γ_i ∪ Γ'_i|) slots, i.e. f·(1−1/f)^(p·|Γ∪Γ'|) — with
// the sampling probability inside the exponent. Equation (11) as printed
// moves p outside (pf·(1−1/f)^|Γ∪Γ'|), which contradicts the text it
// summarizes and, for p < 1, the simulation: a tag cannot monitor fewer
// than f − (slots it knows about) slots. The two forms agree at p = 1.
func (m Model) MonitorSlots(k int) float64 {
	f := float64(m.FrameSize)
	kTiers := m.Tiers()
	sum := 0.0
	for i := 0; i < kTiers; i++ {
		sum += f * math.Pow(1-1/f, m.Sampling*m.GammaUnion(k, i))
	}
	lc := float64(m.Ranges.CheckingFrameLen())
	return sum + float64(kTiers)*m.indicatorSegments() + float64(kTiers)*lc
}

// ReceivedBits converts N_r to bits the way the simulator charges them:
// monitored frame slots and checking slots carry one bit, indicator-vector
// segments carry 96.
func (m Model) ReceivedBits(k int) float64 {
	f := float64(m.FrameSize)
	kTiers := m.Tiers()
	sum := 0.0
	for i := 0; i < kTiers; i++ {
		sum += f * math.Pow(1-1/f, m.Sampling*m.GammaUnion(k, i))
	}
	lc := float64(m.Ranges.CheckingFrameLen())
	return sum + float64(kTiers)*m.indicatorSegments()*energy.IDBits + float64(kTiers)*lc
}

// SentSlotsRound is N_{s,i} (eq. (12)): the expected transmission slots of a
// tier-k tag in round i (1-based). Round 1 is the tag's own (sampled) reply;
// later rounds relay the slots of tags first heard in round i−1 that the
// reader has not silenced.
func (m Model) SentSlotsRound(k, i int) float64 {
	f := float64(m.FrameSize)
	if i <= 1 {
		return m.Sampling
	}
	// Newly heard, not yet silenced: Γ_{i−1} − Γ_{i−2} − Γ'_{i−1}, computed
	// as the union growth between hops i−2 and i−1 against the same
	// silenced set.
	prevUnion := m.unionWith(k, i-2, i-1)
	curUnion := m.GammaUnion(k, i-1)
	mu := m.Sampling * math.Max(0, curUnion-prevUnion)
	known := m.Chi(m.Sampling * m.GammaUnion(k, i-1))
	return m.Chi(mu) * (1 - known/f)
}

// unionWith is |Γ_j ∪ Γ'_m|: the Γ disk after j hops against the silenced
// disk after m rounds.
func (m Model) unionWith(k, j, mRound int) float64 {
	if j <= 0 {
		return 1 + m.GammaPrime(mRound)
	}
	overlap := m.Density * geom.LensArea(
		float64(j)*m.Ranges.TagToTag,
		m.Ranges.TagToReader+float64(mRound-1)*m.Ranges.TagToTag,
		m.tagDist(k),
	)
	u := m.Gamma(k, j) + m.GammaPrime(mRound) - overlap
	if u < 1 {
		u = 1
	}
	return u
}

// SentBits is N_s (eq. (13)) in bits: the frame transmissions over all K
// rounds plus the checking-frame responses. The paper's prose bounds the
// checking-frame transmissions by one per round (a tag responds at most
// once per checking frame), which is what we use.
func (m Model) SentBits(k int) float64 {
	kTiers := m.Tiers()
	sum := 0.0
	for i := 1; i <= kTiers; i++ {
		sum += m.SentSlotsRound(k, i)
	}
	return sum + float64(kTiers)
}

// ExecutionTimeSlots is eq. (3) in slot counts: K rounds of an f-slot frame,
// ⌈f/96⌉ indicator segments and an L_c-slot checking frame.
func (m Model) ExecutionTimeSlots() float64 {
	kTiers := float64(m.Tiers())
	return kTiers * (float64(m.FrameSize) + m.indicatorSegments() + float64(m.Ranges.CheckingFrameLen()))
}

// TierProbability returns the fraction of deployed tags that sit at tier k
// under the model's ring geometry (tier 1 is the disk of radius r', tier
// k ≥ 2 the ring out to r' + (k−1)·r, clipped to the deployment radius R).
func (m Model) TierProbability(k int) float64 {
	if k < 1 || k > m.Tiers() {
		return 0
	}
	outer := math.Min(m.Ranges.TagToReader+float64(k-1)*m.Ranges.TagToTag, m.Ranges.ReaderToTag)
	inner := 0.0
	if k > 1 {
		inner = math.Min(m.Ranges.TagToReader+float64(k-2)*m.Ranges.TagToTag, m.Ranges.ReaderToTag)
	}
	total := geom.DiskArea(m.Ranges.ReaderToTag)
	return (geom.DiskArea(outer) - geom.DiskArea(inner)) / total
}

// AvgSentBits and AvgReceivedBits average the per-tier predictions over the
// tier distribution — the quantities Tables III and IV report.
func (m Model) AvgSentBits() float64 {
	sum := 0.0
	for k := 1; k <= m.Tiers(); k++ {
		sum += m.TierProbability(k) * m.SentBits(k)
	}
	return sum
}

// AvgReceivedBits is the tier-weighted mean of ReceivedBits.
func (m Model) AvgReceivedBits() float64 {
	sum := 0.0
	for k := 1; k <= m.Tiers(); k++ {
		sum += m.TierProbability(k) * m.ReceivedBits(k)
	}
	return sum
}

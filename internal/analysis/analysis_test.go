package analysis

import (
	"math"
	"testing"

	"netags/internal/geom"
	"netags/internal/topology"
	"netags/internal/trp"
)

// paperModel returns the §VI-A setting at the given inter-tag range, with
// TRP parameters (p = 1) unless overridden.
func paperModel(r float64) Model {
	return Model{
		Ranges:    topology.PaperRanges(r),
		Density:   10000 / (math.Pi * 900),
		FrameSize: trp.PaperFrameSize,
		Sampling:  1,
	}
}

func TestValidate(t *testing.T) {
	if err := paperModel(6).Validate(); err != nil {
		t.Fatalf("paper model invalid: %v", err)
	}
	bad := []Model{
		{Ranges: topology.PaperRanges(6), Density: 0, FrameSize: 10, Sampling: 1},
		{Ranges: topology.PaperRanges(6), Density: 1, FrameSize: 0, Sampling: 1},
		{Ranges: topology.PaperRanges(6), Density: 1, FrameSize: 10, Sampling: 0},
		{Ranges: topology.PaperRanges(6), Density: 1, FrameSize: 10, Sampling: 1.2},
		{Ranges: topology.Ranges{}, Density: 1, FrameSize: 10, Sampling: 1},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: invalid model accepted", i)
		}
	}
}

func TestChi(t *testing.T) {
	m := paperModel(6)
	if got := m.Chi(0); got != 0 {
		t.Fatalf("Chi(0) = %v, want 0", got)
	}
	// One tag picks exactly one slot.
	if got := m.Chi(1); math.Abs(got-1) > 1e-9 {
		t.Fatalf("Chi(1) = %v, want 1", got)
	}
	// Monotone and bounded by f.
	prev := 0.0
	for _, n := range []float64{10, 100, 1000, 10000, 1e6} {
		c := m.Chi(n)
		if c <= prev || c > float64(m.FrameSize) {
			t.Fatalf("Chi(%v) = %v not in (prev, f]", n, c)
		}
		prev = c
	}
}

func TestGammaPrimeGrowth(t *testing.T) {
	m := paperModel(6)
	if m.GammaPrime(0) != 0 {
		t.Fatal("Γ'_0 must be empty")
	}
	// Γ'_1 covers the r'-disk: ρπr'².
	want := m.Density * math.Pi * 400
	if got := m.GammaPrime(1); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Γ'_1 = %v, want %v", got, want)
	}
	for i := 1; i < 5; i++ {
		if m.GammaPrime(i+1) <= m.GammaPrime(i) {
			t.Fatalf("Γ' not growing at i=%d", i)
		}
	}
}

func TestGammaClippedByDeployment(t *testing.T) {
	m := paperModel(6)
	// A tier-1 tag's 1-hop disk lies fully inside the deployment: full area.
	full := m.Density * geom.DiskArea(6)
	if got := m.Gamma(1, 1); math.Abs(got-full) > 1e-6 {
		t.Fatalf("Γ_1 (tier 1) = %v, want full disk %v", got, full)
	}
	// A tier-3 tag sits at r0 = 20 + 2·6 = 32 > R = 30... the model places
	// it at the ring's outer edge, so its hop disk must be clipped.
	clipped := m.Gamma(3, 1)
	if clipped >= full {
		t.Fatalf("Γ_1 (tier 3) = %v not clipped below %v", clipped, full)
	}
	if clipped <= 0 {
		t.Fatalf("Γ_1 (tier 3) = %v must stay positive", clipped)
	}
}

func TestGammaUnionBounds(t *testing.T) {
	m := paperModel(6)
	for k := 1; k <= m.Tiers(); k++ {
		for i := 0; i < m.Tiers(); i++ {
			u := m.GammaUnion(k, i)
			g, gp := m.Gamma(k, i), m.GammaPrime(i)
			if u < math.Max(g, gp)-1e-9 {
				t.Fatalf("union %v below max component (k=%d i=%d)", u, k, i)
			}
			if u > g+gp+1e-9 {
				t.Fatalf("union %v above sum of components (k=%d i=%d)", u, k, i)
			}
		}
	}
}

func TestGammaUnionDisjointCaseSplit(t *testing.T) {
	// For i ≤ k/2 the disks are disjoint and the union is the plain sum
	// (eq. (10) upper case).
	m := paperModel(2) // K = 6: deep network, room for disjoint cases
	k, i := 6, 2       // i ≤ k/2
	u := m.GammaUnion(k, i)
	want := m.Gamma(k, i) + m.GammaPrime(i)
	if math.Abs(u-want) > 1e-9 {
		t.Fatalf("disjoint union = %v, want plain sum %v", u, want)
	}
	// For i > k/2 they overlap and the union must be strictly smaller.
	k, i = 2, 2
	if u := m.GammaUnion(k, i); u >= m.Gamma(k, i)+m.GammaPrime(i)-1e-9 {
		t.Fatalf("overlapping union %v not reduced below the sum", u)
	}
}

func TestExecutionTimeMatchesPaperValues(t *testing.T) {
	// Eq. (3) at the paper's parameters reproduces the §VI-B numbers:
	// r=6 → K=3, TRP f=3228: 3·(3228+34+6) = 9804 ≈ 9747 (Fig. 4);
	// GMLE f=1671: 3·(1671+18+6) = 5085 ≈ 5076.
	trpModel := paperModel(6)
	if got := trpModel.ExecutionTimeSlots(); math.Abs(got-9804) > 1 {
		t.Fatalf("TRP execution time = %v, want 9804", got)
	}
	gmleModel := trpModel
	gmleModel.FrameSize = 1671
	gmleModel.Sampling = 1.59 * 1671 / 10000
	if got := gmleModel.ExecutionTimeSlots(); math.Abs(got-5085) > 1 {
		t.Fatalf("GMLE execution time = %v, want 5085", got)
	}
}

func TestTierProbabilitySumsToOne(t *testing.T) {
	for _, r := range []float64{2, 4, 6, 8, 10} {
		m := paperModel(r)
		sum := 0.0
		for k := 1; k <= m.Tiers(); k++ {
			sum += m.TierProbability(k)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("r=%v: tier probabilities sum to %v", r, sum)
		}
	}
	if paperModel(6).TierProbability(0) != 0 || paperModel(6).TierProbability(99) != 0 {
		t.Fatal("out-of-range tiers must have probability 0")
	}
}

func TestMonitorAndSentPositive(t *testing.T) {
	m := paperModel(6)
	for k := 1; k <= m.Tiers(); k++ {
		if got := m.MonitorSlots(k); got <= 0 {
			t.Fatalf("MonitorSlots(%d) = %v", k, got)
		}
		if got := m.ReceivedBits(k); got <= 0 {
			t.Fatalf("ReceivedBits(%d) = %v", k, got)
		}
		if got := m.SentBits(k); got <= 0 {
			t.Fatalf("SentBits(%d) = %v", k, got)
		}
	}
}

func TestSentBitsRoundOne(t *testing.T) {
	m := paperModel(6)
	m.Sampling = 0.25
	if got := m.SentSlotsRound(2, 1); got != 0.25 {
		t.Fatalf("round-1 sent slots = %v, want p", got)
	}
}

// TestModelTracksSimulation compares the closed forms with actual CCM
// sessions at paper scale. The model idealizes (tags at ring edges, mean
// field), so we only demand agreement within a factor of 2 on averages —
// the same fidelity the paper's own Fig. 4 discussion implies.
func TestModelTracksSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale simulation")
	}
	const n = 10000
	d := geom.NewUniformDisk(n, 30, 5)
	for _, r := range []float64{4, 6} {
		nw, err := topology.Build(d, 0, topology.PaperRanges(r))
		if err != nil {
			t.Fatal(err)
		}
		res, err := trp.PaperSession(nw, 3)
		if err != nil {
			t.Fatal(err)
		}
		in := func(i int) bool { return nw.Tier[i] > 0 }
		sum := res.Meter.Summarize(in)

		m := paperModel(r)
		predSent, predRecv := m.AvgSentBits(), m.AvgReceivedBits()
		if ratio := sum.AvgSent / predSent; ratio < 0.5 || ratio > 2 {
			t.Errorf("r=%v: simulated avg sent %.1f vs model %.1f (ratio %.2f)",
				r, sum.AvgSent, predSent, ratio)
		}
		if ratio := sum.AvgReceived / predRecv; ratio < 0.5 || ratio > 2 {
			t.Errorf("r=%v: simulated avg received %.1f vs model %.1f (ratio %.2f)",
				r, sum.AvgReceived, predRecv, ratio)
		}
		simTime := float64(res.Clock.Total())
		if ratio := simTime / m.ExecutionTimeSlots(); ratio < 0.8 || ratio > 1.25 {
			t.Errorf("r=%v: simulated time %v vs model %v", r, simTime, m.ExecutionTimeSlots())
		}
	}
}

package bitmap

import (
	"fmt"
	"testing"
)

// The OR-merge is CCM's innermost loop: every relayed frame bitmap and
// indicator vector lands in one. Benchmarked at the paper's frame size (512)
// and two larger sizes to show the per-word scaling.
func BenchmarkBitmapOr(b *testing.B) {
	for _, n := range []int{512, 4096, 65536} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			dst := New(n)
			src := New(n)
			for i := 0; i < n; i += 3 {
				src.Set(i)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst.Or(src)
			}
		})
	}
}

func BenchmarkBitmapAndNot(b *testing.B) {
	for _, n := range []int{512, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			dst := New(n)
			src := New(n)
			for i := 0; i < n; i += 3 {
				dst.Set(i)
			}
			for i := 0; i < n; i += 7 {
				src.Set(i)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst.AndNot(src)
			}
		})
	}
}

func BenchmarkBitmapCount(b *testing.B) {
	for _, n := range []int{512, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			bm := New(n)
			for i := 0; i < n; i += 2 {
				bm.Set(i)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var sink int
			for i := 0; i < b.N; i++ {
				sink += bm.Count()
			}
			_ = sink
		})
	}
}

// ForEach backs Indices and every slot-iteration in the reader; half-full is
// the worst case for the branchy trailing-zeros walk.
func BenchmarkBitmapForEach(b *testing.B) {
	bm := New(512)
	for i := 0; i < 512; i += 2 {
		bm.Set(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		bm.ForEach(func(j int) { sink += j })
	}
	_ = sink
}

// Package bitmap implements the dense bitsets that carry all information in
// CCM: frame status bitmaps, indicator vectors, and per-tag slot-state masks.
//
// The paper's information model (§III-B) represents an f-slot time frame as
// an f-bit bitmap where bit i is 1 iff slot i was busy. Everything the reader
// learns — and everything tags relay — is unions (bitwise OR) of such
// bitmaps, so Or and the set-iteration helpers are the hot paths.
package bitmap

import (
	"math/bits"
	"strings"
)

const wordBits = 64

// Bitmap is a fixed-length bitset. The zero value is an empty bitmap of
// length 0; use New for a sized one.
type Bitmap struct {
	n     int
	words []uint64
}

// New returns an all-zero bitmap with n bits. n must be non-negative.
func New(n int) *Bitmap {
	if n < 0 {
		panic("bitmap: negative length")
	}
	return &Bitmap{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromIndices returns an n-bit bitmap with the given bits set.
func FromIndices(n int, idx []int) *Bitmap {
	b := New(n)
	for _, i := range idx {
		b.Set(i)
	}
	return b
}

// Len returns the number of bits.
func (b *Bitmap) Len() int { return b.n }

// Set sets bit i to 1.
func (b *Bitmap) Set(i int) {
	b.check(i)
	b.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear sets bit i to 0.
func (b *Bitmap) Clear(i int) {
	b.check(i)
	b.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Get reports whether bit i is 1.
func (b *Bitmap) Get(i int) bool {
	b.check(i)
	return b.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

func (b *Bitmap) check(i int) {
	if i < 0 || i >= b.n {
		panic("bitmap: index out of range")
	}
}

// Or sets b to b | other. The bitmaps must have equal length.
func (b *Bitmap) Or(other *Bitmap) {
	if b.n != other.n {
		panic("bitmap: length mismatch in Or")
	}
	for i, w := range other.words {
		b.words[i] |= w
	}
}

// AndNot sets b to b &^ other (clears every bit set in other). The bitmaps
// must have equal length.
func (b *Bitmap) AndNot(other *Bitmap) {
	if b.n != other.n {
		panic("bitmap: length mismatch in AndNot")
	}
	for i, w := range other.words {
		b.words[i] &^= w
	}
}

// Count returns the number of set bits.
func (b *Bitmap) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Zeros returns the number of clear bits (Len - Count). RFID estimators work
// off the fraction of zeros, so this gets a named helper.
func (b *Bitmap) Zeros() int { return b.n - b.Count() }

// Any reports whether at least one bit is set.
func (b *Bitmap) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether b and other have identical length and contents.
func (b *Bitmap) Equal(other *Bitmap) bool {
	if b.n != other.n {
		return false
	}
	for i, w := range b.words {
		if w != other.words[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy.
func (b *Bitmap) Clone() *Bitmap {
	c := &Bitmap{n: b.n, words: make([]uint64, len(b.words))}
	copy(c.words, b.words)
	return c
}

// CopyFrom overwrites b with other's contents in place — the allocation-free
// counterpart of Clone for pooled scratch bitmaps. The bitmaps must have
// equal length.
func (b *Bitmap) CopyFrom(other *Bitmap) {
	if b.n != other.n {
		panic("bitmap: length mismatch in CopyFrom")
	}
	copy(b.words, other.words)
}

// Reset clears every bit in place.
func (b *Bitmap) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// ForEach calls fn for every set bit in ascending order.
func (b *Bitmap) ForEach(fn func(i int)) {
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			fn(wi*wordBits + bit)
			w &= w - 1
		}
	}
}

// Indices returns the positions of all set bits in ascending order.
func (b *Bitmap) Indices() []int {
	return b.AppendIndices(make([]int, 0, b.Count()))
}

// AppendIndices appends the positions of all set bits to dst in ascending
// order and returns the extended slice. Callers that reuse dst across frames
// iterate set bits without the per-call allocation of Indices (and without a
// closure, which keeps the session hot path free of escape-analysis traps).
func (b *Bitmap) AppendIndices(dst []int) []int {
	for wi, w := range b.words {
		for w != 0 {
			dst = append(dst, wi*wordBits+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return dst
}

// ContainsAll reports whether every bit set in other is also set in b.
func (b *Bitmap) ContainsAll(other *Bitmap) bool {
	if b.n != other.n {
		return false
	}
	for i, w := range other.words {
		if b.words[i]&w != w {
			return false
		}
	}
	return true
}

// String renders the bitmap as a 0/1 string, most significant slot last —
// the natural reading order for a time frame. Long bitmaps are elided.
func (b *Bitmap) String() string {
	const maxRender = 128
	var sb strings.Builder
	n := b.n
	elided := false
	if n > maxRender {
		n = maxRender
		elided = true
	}
	sb.Grow(n + 16)
	for i := 0; i < n; i++ {
		if b.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	if elided {
		sb.WriteString("...")
	}
	return sb.String()
}

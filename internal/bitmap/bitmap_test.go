package bitmap

import (
	"testing"
	"testing/quick"

	"netags/internal/prng"
)

func TestNewEmpty(t *testing.T) {
	b := New(100)
	if b.Len() != 100 {
		t.Fatalf("Len = %d, want 100", b.Len())
	}
	if b.Count() != 0 || b.Any() {
		t.Fatal("new bitmap not empty")
	}
	if b.Zeros() != 100 {
		t.Fatalf("Zeros = %d, want 100", b.Zeros())
	}
}

func TestNewZeroLength(t *testing.T) {
	b := New(0)
	if b.Count() != 0 || b.Any() {
		t.Fatal("zero-length bitmap misbehaves")
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestSetGetClear(t *testing.T) {
	b := New(130) // crosses word boundaries
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if b.Get(i) {
			t.Fatalf("bit %d set before Set", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
		b.Clear(i)
		if b.Get(i) {
			t.Fatalf("bit %d set after Clear", i)
		}
	}
}

func TestSetIdempotent(t *testing.T) {
	b := New(10)
	b.Set(3)
	b.Set(3)
	if b.Count() != 1 {
		t.Fatalf("Count = %d after double Set, want 1", b.Count())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	b := New(10)
	for _, i := range []int{-1, 10, 1000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Get(%d) did not panic", i)
				}
			}()
			b.Get(i)
		}()
	}
}

func TestOr(t *testing.T) {
	a := FromIndices(100, []int{1, 50, 99})
	b := FromIndices(100, []int{1, 2, 64})
	a.Or(b)
	want := FromIndices(100, []int{1, 2, 50, 64, 99})
	if !a.Equal(want) {
		t.Fatalf("Or = %v, want %v", a, want)
	}
}

func TestOrLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Or with length mismatch did not panic")
		}
	}()
	New(10).Or(New(11))
}

func TestAndNot(t *testing.T) {
	a := FromIndices(100, []int{1, 2, 3, 64})
	b := FromIndices(100, []int{2, 64, 99})
	a.AndNot(b)
	want := FromIndices(100, []int{1, 3})
	if !a.Equal(want) {
		t.Fatalf("AndNot = %v, want %v", a, want)
	}
}

func TestCloneIndependent(t *testing.T) {
	a := FromIndices(100, []int{5})
	c := a.Clone()
	c.Set(6)
	if a.Get(6) {
		t.Fatal("Clone shares storage with original")
	}
	if !c.Get(5) {
		t.Fatal("Clone lost bits")
	}
}

func TestReset(t *testing.T) {
	a := FromIndices(100, []int{0, 50, 99})
	a.Reset()
	if a.Any() {
		t.Fatal("Reset left bits set")
	}
}

func TestForEachAndIndices(t *testing.T) {
	idx := []int{0, 7, 63, 64, 90}
	a := FromIndices(91, idx)
	got := a.Indices()
	if len(got) != len(idx) {
		t.Fatalf("Indices len = %d, want %d", len(got), len(idx))
	}
	for i := range idx {
		if got[i] != idx[i] {
			t.Fatalf("Indices[%d] = %d, want %d", i, got[i], idx[i])
		}
	}
}

func TestContainsAll(t *testing.T) {
	a := FromIndices(100, []int{1, 2, 3})
	b := FromIndices(100, []int{1, 3})
	if !a.ContainsAll(b) {
		t.Fatal("superset not detected")
	}
	if b.ContainsAll(a) {
		t.Fatal("subset wrongly reported as superset")
	}
	if a.ContainsAll(New(99)) {
		t.Fatal("length mismatch must not report containment")
	}
}

func TestEqualDifferentLengths(t *testing.T) {
	if New(64).Equal(New(65)) {
		t.Fatal("bitmaps of different lengths reported equal")
	}
}

func TestString(t *testing.T) {
	a := FromIndices(5, []int{0, 3})
	if got := a.String(); got != "10010" {
		t.Fatalf("String = %q, want 10010", got)
	}
	long := New(200)
	if got := long.String(); len(got) != 131 { // 128 bits + "..."
		t.Fatalf("long String length = %d, want 131", len(got))
	}
}

// Property: Count equals the number of distinct indices set.
func TestCountMatchesDistinctSets(t *testing.T) {
	f := func(raw []uint16) bool {
		const n = 1 << 16
		b := New(n)
		distinct := map[int]bool{}
		for _, r := range raw {
			i := int(r)
			b.Set(i)
			distinct[i] = true
		}
		return b.Count() == len(distinct)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Or is commutative and idempotent on random bitmaps.
func TestOrProperties(t *testing.T) {
	src := prng.New(11)
	randBitmap := func(n int) *Bitmap {
		b := New(n)
		for i := 0; i < n/3; i++ {
			b.Set(src.Intn(n))
		}
		return b
	}
	for trial := 0; trial < 50; trial++ {
		n := 64 + src.Intn(400)
		a, b := randBitmap(n), randBitmap(n)
		ab := a.Clone()
		ab.Or(b)
		ba := b.Clone()
		ba.Or(a)
		if !ab.Equal(ba) {
			t.Fatal("Or not commutative")
		}
		abb := ab.Clone()
		abb.Or(b)
		if !abb.Equal(ab) {
			t.Fatal("Or not idempotent")
		}
		if !ab.ContainsAll(a) || !ab.ContainsAll(b) {
			t.Fatal("Or result does not contain operands")
		}
	}
}

// Property: the union's zero count never exceeds either operand's.
func TestZerosMonotoneUnderOr(t *testing.T) {
	src := prng.New(13)
	for trial := 0; trial < 50; trial++ {
		n := 64 + src.Intn(200)
		a, b := New(n), New(n)
		for i := 0; i < n/4; i++ {
			a.Set(src.Intn(n))
			b.Set(src.Intn(n))
		}
		za := a.Zeros()
		a.Or(b)
		if a.Zeros() > za {
			t.Fatal("Or increased zero count")
		}
	}
}

func BenchmarkOr(b *testing.B) {
	x, y := New(3228), New(3228)
	for i := 0; i < 3228; i += 3 {
		y.Set(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Or(y)
	}
}

func BenchmarkForEach(b *testing.B) {
	x := New(3228)
	for i := 0; i < 3228; i += 5 {
		x.Set(i)
	}
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		x.ForEach(func(j int) { sink += j })
	}
	_ = sink
}

package bitmap

import (
	"sort"
	"testing"
)

// FuzzBitmapOps drives two bitmaps through an arbitrary op script while
// mirroring every mutation into map-based model sets, then checks that all
// queries agree with the model. The bitmap package is the substrate every
// protocol's state lives in, so a silent word-boundary bug here would
// corrupt everything above it.
func FuzzBitmapOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 0, 63, 1, 64, 2, 65}, uint16(130))
	f.Add([]byte{}, uint16(1))
	f.Add([]byte{3, 0, 3, 255, 4, 128}, uint16(64))
	f.Fuzz(func(t *testing.T, script []byte, nBits uint16) {
		n := 1 + int(nBits)%512
		a, b := New(n), New(n)
		ma, mb := map[int]bool{}, map[int]bool{}

		for pc := 0; pc+1 < len(script); pc += 2 {
			op, idx := script[pc]%6, int(script[pc+1])%n
			switch op {
			case 0:
				a.Set(idx)
				ma[idx] = true
			case 1:
				a.Clear(idx)
				delete(ma, idx)
			case 2:
				b.Set(idx)
				mb[idx] = true
			case 3:
				a.Or(b)
				for i := range mb {
					ma[i] = true
				}
			case 4:
				a.AndNot(b)
				for i := range mb {
					delete(ma, i)
				}
			case 5:
				b.Reset()
				mb = map[int]bool{}
			}
		}

		check := func(name string, bm *Bitmap, model map[int]bool) {
			if bm.Count() != len(model) {
				t.Fatalf("%s: Count=%d, model has %d", name, bm.Count(), len(model))
			}
			if bm.Zeros() != n-len(model) {
				t.Fatalf("%s: Zeros=%d, want %d", name, bm.Zeros(), n-len(model))
			}
			if bm.Any() != (len(model) > 0) {
				t.Fatalf("%s: Any=%v with %d model bits", name, bm.Any(), len(model))
			}
			for i := 0; i < n; i++ {
				if bm.Get(i) != model[i] {
					t.Fatalf("%s: Get(%d)=%v, model %v", name, i, bm.Get(i), model[i])
				}
			}
			want := make([]int, 0, len(model))
			for i := range model {
				want = append(want, i)
			}
			sort.Ints(want)
			got := bm.Indices()
			if len(got) != len(want) {
				t.Fatalf("%s: Indices has %d entries, want %d", name, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s: Indices[%d]=%d, want %d", name, i, got[i], want[i])
				}
			}
			if c := bm.Clone(); !c.Equal(bm) || !bm.Equal(c) {
				t.Fatalf("%s: clone not Equal", name)
			}
		}
		check("a", a, ma)
		check("b", b, mb)

		wantContains := true
		for i := range mb {
			if !ma[i] {
				wantContains = false
				break
			}
		}
		if a.ContainsAll(b) != wantContains {
			t.Fatalf("ContainsAll=%v, model says %v", a.ContainsAll(b), wantContains)
		}

		u := a.Clone()
		u.Or(b)
		if !u.ContainsAll(a) || !u.ContainsAll(b) {
			t.Fatal("a|b does not contain both operands")
		}
		d := u.Clone()
		d.AndNot(b)
		d.Or(b)
		if !d.Equal(u) {
			t.Fatal("(u &^ b) | b != u for u ⊇ b")
		}
	})
}

// Admission control ahead of routing: a per-client token bucket (rate
// limiting) and a utilization-based load shedder (reject when the
// cluster's in-flight count approaches capacity, bulk before interactive).
// Overload is turned away at the edge with a 429 + Retry-After instead of
// deepening a worker queue — the same backpressure contract the workers
// themselves speak, so clients need one retry loop for both layers.
package cluster

import (
	"sync"
	"sync/atomic"
	"time"
)

// Shed reasons reported in Decision.Reason, metrics labels, and logs.
const (
	ShedRateLimit = "ratelimit"
	ShedOverload  = "overload"
)

// AdmitConfig tunes the admission stage. The zero value admits everything
// (both mechanisms disabled).
type AdmitConfig struct {
	// Rate is the sustained per-client submission rate in tokens/second.
	// <= 0 disables rate limiting.
	Rate float64
	// Burst is the bucket capacity (momentary excursion above Rate).
	// <= 0 defaults to max(Rate, 1).
	Burst float64
	// MaxClients bounds the tracked client set (default 4096). Clients
	// beyond the cap share one overflow bucket — a full table degrades to
	// coarse fairness instead of unbounded memory.
	MaxClients int
	// MaxInflight is the cluster-wide in-flight submission bound. <= 0
	// disables utilization shedding.
	MaxInflight int
	// BulkShedFraction is the utilization at which bulk-class submissions
	// shed while interactive ones still pass (default 0.8). Interactive
	// sheds only at full MaxInflight, preserving interactive-over-bulk
	// end to end.
	BulkShedFraction float64
}

func (c AdmitConfig) withDefaults() AdmitConfig {
	if c.Burst <= 0 {
		c.Burst = c.Rate
		if c.Burst < 1 {
			c.Burst = 1
		}
	}
	if c.MaxClients <= 0 {
		c.MaxClients = 4096
	}
	if c.BulkShedFraction <= 0 || c.BulkShedFraction > 1 {
		c.BulkShedFraction = 0.8
	}
	return c
}

// Decision is one admission verdict.
type Decision struct {
	OK bool
	// Reason is ShedRateLimit or ShedOverload when !OK.
	Reason string
	// RetryAfter is the backoff hint for the 429 (>= 1s).
	RetryAfter time.Duration
}

// bucket is one client's token bucket. Tokens refill continuously at
// Rate/s up to Burst; one token admits one submission.
type bucket struct {
	mu     sync.Mutex
	tokens float64
	last   time.Time
}

// take refills by elapsed time and tries to spend one token. On refusal
// it returns how long until a token will be available.
func (b *bucket) take(now time.Time, rate, burst float64) (bool, time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * rate
	} else {
		b.tokens = burst
	}
	if b.tokens > burst {
		b.tokens = burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	deficit := 1 - b.tokens
	return false, time.Duration(deficit / rate * float64(time.Second))
}

// Admitter applies the configured policy. Safe for concurrent use; the
// warm path (known client, admitted) performs no allocations.
type Admitter struct {
	cfg AdmitConfig

	mu       sync.RWMutex
	buckets  map[string]*bucket
	overflow bucket

	admitted    atomic.Int64
	shedRate    atomic.Int64
	shedLoad    atomic.Int64
	overflowHit atomic.Int64
}

// NewAdmitter returns an admitter with cfg's defaults materialized.
func NewAdmitter(cfg AdmitConfig) *Admitter {
	return &Admitter{
		cfg:     cfg.withDefaults(),
		buckets: make(map[string]*bucket),
	}
}

// Admit decides one submission: client identifies the token bucket, bulk
// selects the lower shed threshold, inflight is the cluster's current
// in-flight submission count, and now is the decision time (passed in so
// tests drive the clock). Shedding is checked before the rate limiter so
// an overloaded cluster does not drain client budgets it cannot serve.
func (a *Admitter) Admit(client string, bulk bool, inflight int64, now time.Time) Decision {
	if a.cfg.MaxInflight > 0 {
		limit := int64(a.cfg.MaxInflight)
		if bulk {
			limit = int64(float64(a.cfg.MaxInflight) * a.cfg.BulkShedFraction)
			if limit < 1 {
				limit = 1
			}
		}
		if inflight >= limit {
			a.shedLoad.Add(1)
			// Monotone in pressure, like the workers' queue-length hint.
			wait := time.Duration(1+(inflight-limit)) * time.Second
			if wait > 30*time.Second {
				wait = 30 * time.Second
			}
			return Decision{Reason: ShedOverload, RetryAfter: wait}
		}
	}
	if a.cfg.Rate > 0 {
		b := a.bucketFor(client)
		ok, wait := b.take(now, a.cfg.Rate, a.cfg.Burst)
		if !ok {
			a.shedRate.Add(1)
			if wait < time.Second {
				wait = time.Second
			}
			return Decision{Reason: ShedRateLimit, RetryAfter: wait}
		}
	}
	a.admitted.Add(1)
	return Decision{OK: true}
}

// bucketFor returns the client's bucket, creating it under the cap and
// falling back to the shared overflow bucket beyond it.
func (a *Admitter) bucketFor(client string) *bucket {
	a.mu.RLock()
	b := a.buckets[client]
	a.mu.RUnlock()
	if b != nil {
		return b
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if b = a.buckets[client]; b != nil {
		return b
	}
	if len(a.buckets) >= a.cfg.MaxClients {
		a.overflowHit.Add(1)
		return &a.overflow
	}
	b = &bucket{}
	a.buckets[client] = b
	return b
}

// AdmitStats is the admission counters snapshot.
type AdmitStats struct {
	Admitted      int64
	ShedRateLimit int64
	ShedOverload  int64
	// Clients is the tracked client-bucket count.
	Clients int
	// OverflowHits counts admissions judged by the shared overflow bucket
	// because the client table was full.
	OverflowHits int64
}

// Stats snapshots the counters.
func (a *Admitter) Stats() AdmitStats {
	a.mu.RLock()
	clients := len(a.buckets)
	a.mu.RUnlock()
	return AdmitStats{
		Admitted:      a.admitted.Load(),
		ShedRateLimit: a.shedRate.Load(),
		ShedOverload:  a.shedLoad.Load(),
		Clients:       clients,
		OverflowHits:  a.overflowHit.Load(),
	}
}

package cluster

import (
	"fmt"
	"testing"
	"time"
)

func TestAdmitZeroConfigAdmitsEverything(t *testing.T) {
	a := NewAdmitter(AdmitConfig{})
	now := time.Unix(1_700_000_000, 0)
	for i := 0; i < 100; i++ {
		if dec := a.Admit("c", true, int64(i*1000), now); !dec.OK {
			t.Fatalf("zero-config admitter shed: %+v", dec)
		}
	}
	if st := a.Stats(); st.Admitted != 100 {
		t.Fatalf("admitted %d, want 100", st.Admitted)
	}
}

func TestAdmitTokenBucket(t *testing.T) {
	a := NewAdmitter(AdmitConfig{Rate: 1, Burst: 3})
	now := time.Unix(1_700_000_000, 0)
	for i := 0; i < 3; i++ {
		if dec := a.Admit("c1", false, 0, now); !dec.OK {
			t.Fatalf("burst admission %d shed: %+v", i, dec)
		}
	}
	dec := a.Admit("c1", false, 0, now)
	if dec.OK || dec.Reason != ShedRateLimit {
		t.Fatalf("4th immediate submit: %+v, want ratelimit shed", dec)
	}
	if dec.RetryAfter < time.Second {
		t.Fatalf("RetryAfter %s below the 1s floor", dec.RetryAfter)
	}
	// Another client has its own bucket.
	if dec := a.Admit("c2", false, 0, now); !dec.OK {
		t.Fatalf("independent client shed: %+v", dec)
	}
	// Refill restores c1 after enough simulated time.
	if dec := a.Admit("c1", false, 0, now.Add(2*time.Second)); !dec.OK {
		t.Fatalf("c1 still shed after refill: %+v", dec)
	}
	st := a.Stats()
	if st.ShedRateLimit != 1 || st.Clients != 2 {
		t.Fatalf("stats %+v, want 1 ratelimit shed over 2 clients", st)
	}
}

func TestAdmitOverloadShedsBulkFirst(t *testing.T) {
	a := NewAdmitter(AdmitConfig{MaxInflight: 10, BulkShedFraction: 0.8})
	now := time.Unix(1_700_000_000, 0)

	// At 8/10 utilization: bulk sheds, interactive passes.
	if dec := a.Admit("c", true, 8, now); dec.OK || dec.Reason != ShedOverload {
		t.Fatalf("bulk at 80%%: %+v, want overload shed", dec)
	}
	if dec := a.Admit("c", false, 8, now); !dec.OK {
		t.Fatalf("interactive at 80%% shed: %+v", dec)
	}
	// At 10/10 both shed.
	if dec := a.Admit("c", false, 10, now); dec.OK || dec.Reason != ShedOverload {
		t.Fatalf("interactive at 100%%: %+v, want overload shed", dec)
	}
	// Retry-After grows with the overload depth and caps at 30s.
	shallow := a.Admit("c", false, 10, now).RetryAfter
	deep := a.Admit("c", false, 25, now).RetryAfter
	if deep <= shallow {
		t.Fatalf("Retry-After not monotone in pressure: %s then %s", shallow, deep)
	}
	if got := a.Admit("c", false, 10_000, now).RetryAfter; got != 30*time.Second {
		t.Fatalf("Retry-After cap: %s, want 30s", got)
	}
}

func TestAdmitOverloadBeforeRateLimit(t *testing.T) {
	// An overloaded cluster must not drain the client's token budget.
	a := NewAdmitter(AdmitConfig{Rate: 1, Burst: 1, MaxInflight: 1})
	now := time.Unix(1_700_000_000, 0)
	for i := 0; i < 3; i++ {
		if dec := a.Admit("c", false, 5, now); dec.Reason != ShedOverload {
			t.Fatalf("shed %d reason %q, want overload", i, dec.Reason)
		}
	}
	// Load clears; the untouched bucket still admits.
	if dec := a.Admit("c", false, 0, now); !dec.OK {
		t.Fatalf("bucket was drained during overload: %+v", dec)
	}
}

func TestAdmitClientTableOverflow(t *testing.T) {
	a := NewAdmitter(AdmitConfig{Rate: 1000, Burst: 1000, MaxClients: 4})
	now := time.Unix(1_700_000_000, 0)
	for i := 0; i < 10; i++ {
		a.Admit(fmt.Sprintf("client-%d", i), false, 0, now)
	}
	st := a.Stats()
	if st.Clients != 4 {
		t.Fatalf("tracked %d clients, want cap 4", st.Clients)
	}
	if st.OverflowHits != 6 {
		t.Fatalf("overflow hits %d, want 6", st.OverflowHits)
	}
}

func TestAdmitWarmPathAllocFree(t *testing.T) {
	a := NewAdmitter(AdmitConfig{Rate: 1e9, Burst: 1e9, MaxInflight: 1 << 30})
	now := time.Unix(1_700_000_000, 0)
	a.Admit("client", false, 0, now) // create the bucket
	allocs := testing.AllocsPerRun(200, func() {
		a.Admit("client", false, 3, now)
	})
	if allocs != 0 {
		t.Fatalf("warm admit allocates %.1f/op, want 0", allocs)
	}
}

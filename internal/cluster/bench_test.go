package cluster

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkClusterRouteAdmit pins the router's per-submit decision path —
// admission (warm client bucket), ring owner-sequence walk, breaker
// admit+record, and the in-flight accounting — at zero allocations. This
// is everything the router adds ahead of the proxied request itself; a
// cache-hit submit therefore costs the backend round trip plus an
// alloc-free routing decision. The alloc count is enforced both here
// (ReportAllocs feeds the tracked baseline behind `make bench-compare`,
// which fails on any alloc regression) and by the hard assertion in
// TestClusterRouteAdmitZeroAlloc.
func BenchmarkClusterRouteAdmit(b *testing.B) {
	rt := newBenchRouter(b)
	key := fmt.Sprintf("%064x", 0xfeed)
	now := time.Unix(1_700_000_000, 0)
	sc := rt.scratch.Get().(*routeScratch)
	defer rt.scratch.Put(sc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		routeAdmitOnce(rt, key, now, sc)
	}
}

func newBenchRouter(tb testing.TB) *Router {
	tb.Helper()
	rt, err := NewRouter(RouterConfig{
		Backends:  []string{"10.0.0.1:9080", "10.0.0.2:9080", "10.0.0.3:9080"},
		LoadBound: 1.25,
		Admit:     AdmitConfig{Rate: 1e9, Burst: 1e9, MaxInflight: 1 << 30},
	})
	if err != nil {
		tb.Fatal(err)
	}
	// Warm the client bucket so the benchmark measures the steady state.
	rt.admit.Admit("bench-client", false, 0, time.Unix(1_700_000_000, 0))
	return rt
}

// routeAdmitOnce is the hot-path decision sequence the HTTP handler runs
// per submit, minus the proxied request: admit, walk the owner sequence,
// take the first backend whose breaker and load bound allow, account the
// attempt, record the outcome.
func routeAdmitOnce(rt *Router, key string, now time.Time, sc *routeScratch) int {
	dec := rt.admit.Admit("bench-client", false, rt.total.Load(), now)
	if !dec.OK {
		return -1
	}
	sc.seq = rt.ring.OwnerSeq(key, sc.seq)
	for pos, bi := range sc.seq {
		if pos < len(sc.seq)-1 && rt.overloaded(bi) {
			continue
		}
		ok, probe, gen := rt.breakers[bi].Allow(now)
		if !ok {
			continue
		}
		rt.inflight[bi].Add(1)
		rt.total.Add(1)
		rt.breakers[bi].Record(now, true, probe, gen)
		rt.inflight[bi].Add(-1)
		rt.total.Add(-1)
		return bi
	}
	return -1
}

// TestClusterRouteAdmitZeroAlloc is the benchmark's assertion twin: it
// fails the ordinary test run (not just the bench gate) if the decision
// path ever allocates.
func TestClusterRouteAdmitZeroAlloc(t *testing.T) {
	rt := newBenchRouter(t)
	key := fmt.Sprintf("%064x", 0xfeed)
	now := time.Unix(1_700_000_000, 0)
	sc := rt.scratch.Get().(*routeScratch)
	defer rt.scratch.Put(sc)
	allocs := testing.AllocsPerRun(500, func() {
		if routeAdmitOnce(rt, key, now, sc) < 0 {
			t.Fatal("decision path refused in steady state")
		}
	})
	if allocs != 0 {
		t.Fatalf("route+admit allocates %.1f/op, want 0", allocs)
	}
}

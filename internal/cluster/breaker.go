// Per-backend circuit breaker. Classic three-state machine — closed,
// open, half-open — with two trip conditions (a consecutive-failure count
// for hard-down backends, a windowed failure rate for flapping ones), a
// cooldown before probing, and a bounded number of concurrent half-open
// probes so a recovering backend is not stampeded.
//
// Every method takes the current time explicitly instead of reading a
// clock, so the state machine is a pure function of its call sequence:
// tests drive it with a hand-advanced timestamp and never sleep, and the
// failure window expires by timestamp comparison, not by timer.
package cluster

import (
	"fmt"
	"sync"
	"time"
)

// BreakerState is the circuit's position.
type BreakerState int32

// The breaker states. The zero value is closed (healthy).
const (
	BreakerClosed BreakerState = iota
	BreakerHalfOpen
	BreakerOpen
)

// String returns the lowercase state name used in logs, metrics, and the
// cluster status document.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	}
	return "unknown"
}

// BreakerConfig tunes one breaker. The zero value takes every default.
type BreakerConfig struct {
	// ConsecutiveFailures trips the breaker after this many failures in a
	// row (default 5; negative disables the condition).
	ConsecutiveFailures int
	// FailureRate trips the breaker when failures/total over the trailing
	// Window reaches this fraction with at least MinSamples outcomes
	// (default 0.5; 0 or negative disables the condition).
	FailureRate float64
	// MinSamples is the least windowed outcome count before FailureRate
	// can judge (default 10).
	MinSamples int
	// Window is the failure-rate observation window (default 10s). Counts
	// reset when a recorded outcome arrives more than Window after the
	// window opened — expiry is clock-comparison only, never a timer.
	Window time.Duration
	// Cooldown is how long an open breaker blocks before allowing
	// half-open probes (default 5s).
	Cooldown time.Duration
	// HalfOpenProbes caps concurrent in-flight probes while half-open
	// (default 1).
	HalfOpenProbes int
	// ProbeSuccesses is how many probe successes close the breaker
	// (default 2).
	ProbeSuccesses int
	// OnTransition, when non-nil, observes every state change. It is
	// invoked with the breaker's lock held: it must be fast and must not
	// call back into the breaker.
	OnTransition func(from, to BreakerState, now time.Time)
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.ConsecutiveFailures == 0 {
		c.ConsecutiveFailures = 5
	}
	if c.FailureRate == 0 {
		c.FailureRate = 0.5
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 10
	}
	if c.Window <= 0 {
		c.Window = 10 * time.Second
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	if c.ProbeSuccesses <= 0 {
		c.ProbeSuccesses = 2
	}
	return c
}

// Breaker is one backend's circuit. Safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu    sync.Mutex
	state BreakerState
	// gen increments on every state transition. Allow hands the current
	// generation to the caller; Record ignores outcomes from a stale
	// generation, so a request admitted before a trip (or a probe that
	// outlived a re-trip) cannot corrupt the new state's accounting.
	gen uint64

	consec   int       // consecutive failures while closed
	winStart time.Time // failure-rate window anchor
	winFails int
	winTotal int

	openedAt time.Time // when the breaker last opened
	probes   int       // in-flight half-open probes
	probeOK  int       // successes this half-open episode

	// Cumulative counters for metrics (guarded by mu).
	trips     uint64
	successes uint64
	failures  uint64
}

// NewBreaker returns a closed breaker with cfg's defaults materialized.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// Allow asks whether a request may proceed at time now. When ok, the
// caller must eventually call Record with the returned gen (and probe
// flag). probe marks half-open trial requests — they are capped at
// HalfOpenProbes concurrently and their outcomes drive the
// close-or-reopen decision.
func (b *Breaker) Allow(now time.Time) (ok, probe bool, gen uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true, false, b.gen
	case BreakerOpen:
		if now.Sub(b.openedAt) < b.cfg.Cooldown {
			return false, false, b.gen
		}
		b.transition(BreakerHalfOpen, now)
		fallthrough
	case BreakerHalfOpen:
		if b.probes >= b.cfg.HalfOpenProbes {
			return false, false, b.gen
		}
		b.probes++
		return true, true, b.gen
	}
	return false, false, b.gen
}

// Record reports the outcome of a request admitted by Allow. Outcomes
// from a generation older than the breaker's current one are dropped —
// the state that admitted them no longer exists.
func (b *Breaker) Record(now time.Time, success, probe bool, gen uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if gen != b.gen {
		return
	}
	if success {
		b.successes++
	} else {
		b.failures++
	}
	switch b.state {
	case BreakerClosed:
		if now.Sub(b.winStart) > b.cfg.Window {
			b.winStart = now
			b.winFails, b.winTotal = 0, 0
		}
		b.winTotal++
		if success {
			b.consec = 0
			return
		}
		b.consec++
		b.winFails++
		tripConsec := b.cfg.ConsecutiveFailures > 0 && b.consec >= b.cfg.ConsecutiveFailures
		tripRate := b.cfg.FailureRate > 0 && b.winTotal >= b.cfg.MinSamples &&
			float64(b.winFails)/float64(b.winTotal) >= b.cfg.FailureRate
		if tripConsec || tripRate {
			b.trip(now)
		}
	case BreakerHalfOpen:
		if probe && b.probes > 0 {
			b.probes--
		}
		if !success {
			// Any half-open failure — probe or a straggler from the same
			// generation — re-trips immediately.
			b.trip(now)
			return
		}
		if probe {
			b.probeOK++
			if b.probeOK >= b.cfg.ProbeSuccesses {
				b.transition(BreakerClosed, now)
			}
		}
	case BreakerOpen:
		// Same-generation records cannot arrive while open (opening bumps
		// the generation); nothing to do.
	}
}

// trip moves to open and resets all episode state. Caller holds mu.
func (b *Breaker) trip(now time.Time) {
	b.openedAt = now
	b.trips++
	b.transition(BreakerOpen, now)
}

// transition switches state, bumps the generation, and resets the
// episode-scoped counters of the state being entered. Caller holds mu.
func (b *Breaker) transition(to BreakerState, now time.Time) {
	from := b.state
	b.state = to
	b.gen++
	b.consec = 0
	b.winStart = now
	b.winFails, b.winTotal = 0, 0
	b.probes, b.probeOK = 0, 0
	if b.cfg.OnTransition != nil && from != to {
		b.cfg.OnTransition(from, to, now)
	}
}

// State reports the breaker's position at time now. An open breaker whose
// cooldown has elapsed still reports open until a request half-opens it —
// probing is driven by traffic, not by the clock alone.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// BreakerStats is a point-in-time snapshot for metrics and the cluster
// status document.
type BreakerStats struct {
	State     BreakerState
	Trips     uint64
	Successes uint64
	Failures  uint64
	// ConsecutiveFailures is the current closed-state failure run.
	ConsecutiveFailures int
	// WindowFailureRate is failures/total over the live window (0 when the
	// window is empty).
	WindowFailureRate float64
	// InFlightProbes is the current half-open probe count.
	InFlightProbes int
}

// Stats snapshots the breaker.
func (b *Breaker) Stats() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := BreakerStats{
		State:               b.state,
		Trips:               b.trips,
		Successes:           b.successes,
		Failures:            b.failures,
		ConsecutiveFailures: b.consec,
		InFlightProbes:      b.probes,
	}
	if b.winTotal > 0 {
		st.WindowFailureRate = float64(b.winFails) / float64(b.winTotal)
	}
	return st
}

// String describes the breaker state for logs.
func (b *Breaker) String() string {
	st := b.Stats()
	return fmt.Sprintf("breaker(%s trips=%d fails=%d)", st.State, st.Trips, st.Failures)
}

package cluster

import (
	"testing"
	"time"
)

// tick is a hand-advanced clock: breaker methods take explicit times, so
// these tests never sleep and cannot race the wall clock.
type tick struct{ now time.Time }

func newTick() *tick { return &tick{now: time.Unix(1_700_000_000, 0)} }

func (c *tick) advance(d time.Duration) time.Time {
	c.now = c.now.Add(d)
	return c.now
}

// failN drives n allowed failures through the breaker.
func failN(t *testing.T, b *Breaker, c *tick, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		ok, probe, gen := b.Allow(c.now)
		if !ok {
			t.Fatalf("failure %d: Allow refused in state %s", i, b.State())
		}
		b.Record(c.now, false, probe, gen)
	}
}

func TestBreakerTripsOnConsecutiveFailures(t *testing.T) {
	c := newTick()
	b := NewBreaker(BreakerConfig{ConsecutiveFailures: 3})
	failN(t, b, c, 2)
	if b.State() != BreakerClosed {
		t.Fatalf("tripped after 2 of 3 failures")
	}
	failN(t, b, c, 1)
	if b.State() != BreakerOpen {
		t.Fatalf("state %s after 3 consecutive failures, want open", b.State())
	}
	if ok, _, _ := b.Allow(c.now); ok {
		t.Fatalf("open breaker admitted during cooldown")
	}
}

func TestBreakerSuccessResetsConsecutive(t *testing.T) {
	c := newTick()
	b := NewBreaker(BreakerConfig{ConsecutiveFailures: 3})
	failN(t, b, c, 2)
	ok, probe, gen := b.Allow(c.now)
	if !ok {
		t.Fatal("Allow refused while closed")
	}
	b.Record(c.now, true, probe, gen)
	failN(t, b, c, 2)
	if b.State() != BreakerClosed {
		t.Fatalf("success did not reset the consecutive run (state %s)", b.State())
	}
}

func TestBreakerTripsOnFailureRate(t *testing.T) {
	c := newTick()
	b := NewBreaker(BreakerConfig{
		ConsecutiveFailures: -1, // disable the consecutive condition
		FailureRate:         0.5, MinSamples: 10, Window: 10 * time.Second,
	})
	// 5 successes, then failures interleaved under MinSamples: no trip yet.
	for i := 0; i < 5; i++ {
		_, probe, gen := b.Allow(c.now)
		b.Record(c.now, true, probe, gen)
	}
	failN(t, b, c, 4)
	if b.State() != BreakerClosed {
		t.Fatalf("tripped below MinSamples×rate")
	}
	// 10th sample makes 5/10 = 50%: trip.
	failN(t, b, c, 1)
	if b.State() != BreakerOpen {
		t.Fatalf("state %s at 50%% windowed failure rate, want open", b.State())
	}
}

func TestBreakerWindowExpiryIsClockComparison(t *testing.T) {
	c := newTick()
	b := NewBreaker(BreakerConfig{
		ConsecutiveFailures: -1,
		FailureRate:         0.5, MinSamples: 4, Window: 10 * time.Second,
	})
	// 3 failures late in one window...
	failN(t, b, c, 3)
	// ...then the next outcome lands past the window edge: counts reset, so
	// the 4th failure is 1/1 of a fresh window, not 4/4 of a stale one.
	c.advance(11 * time.Second)
	failN(t, b, c, 1)
	if b.State() != BreakerClosed {
		t.Fatalf("window did not expire by timestamp comparison (state %s)", b.State())
	}
	st := b.Stats()
	if st.WindowFailureRate != 1 {
		t.Fatalf("fresh window rate %.2f, want 1.0 (1 failure / 1 sample)", st.WindowFailureRate)
	}
}

func TestBreakerHalfOpenProbeCap(t *testing.T) {
	c := newTick()
	b := NewBreaker(BreakerConfig{
		ConsecutiveFailures: 2, Cooldown: 5 * time.Second,
		HalfOpenProbes: 2, ProbeSuccesses: 3,
	})
	failN(t, b, c, 2)
	c.advance(6 * time.Second)

	// First Allow half-opens and takes probe slot 1; second takes slot 2;
	// third must be refused — the cap bounds concurrent probes.
	ok1, probe1, gen1 := b.Allow(c.now)
	ok2, probe2, gen2 := b.Allow(c.now)
	ok3, _, _ := b.Allow(c.now)
	if !ok1 || !probe1 || !ok2 || !probe2 {
		t.Fatalf("half-open refused probes under the cap")
	}
	if ok3 {
		t.Fatalf("half-open admitted a 3rd concurrent probe over cap 2")
	}
	if got := b.Stats().InFlightProbes; got != 2 {
		t.Fatalf("in-flight probes %d, want 2", got)
	}

	// Finishing a probe frees its slot.
	b.Record(c.now, true, probe1, gen1)
	if ok, probe, _ := b.Allow(c.now); !ok || !probe {
		t.Fatalf("freed probe slot not reusable")
	}
	_ = gen2
}

func TestBreakerProbeSuccessesClose(t *testing.T) {
	c := newTick()
	b := NewBreaker(BreakerConfig{
		ConsecutiveFailures: 2, Cooldown: time.Second,
		HalfOpenProbes: 1, ProbeSuccesses: 2,
	})
	failN(t, b, c, 2)
	c.advance(2 * time.Second)
	for i := 0; i < 2; i++ {
		ok, probe, gen := b.Allow(c.now)
		if !ok || !probe {
			t.Fatalf("probe %d refused", i)
		}
		b.Record(c.now, true, probe, gen)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state %s after %d probe successes, want closed", b.State(), 2)
	}
}

func TestBreakerTripDuringProbe(t *testing.T) {
	c := newTick()
	b := NewBreaker(BreakerConfig{
		ConsecutiveFailures: 2, Cooldown: time.Second,
		HalfOpenProbes: 2, ProbeSuccesses: 2,
	})
	failN(t, b, c, 2)
	c.advance(2 * time.Second)

	// Two probes go out; the first fails and re-trips the breaker while the
	// second is still in flight.
	ok1, probe1, gen1 := b.Allow(c.now)
	ok2, probe2, gen2 := b.Allow(c.now)
	if !ok1 || !ok2 {
		t.Fatal("probes refused")
	}
	b.Record(c.now, false, probe1, gen1)
	if b.State() != BreakerOpen {
		t.Fatalf("probe failure did not re-trip (state %s)", b.State())
	}
	tripsBefore := b.Stats().Trips

	// The straggler probe's success belongs to a dead generation: it must
	// not close (or otherwise disturb) the newly opened breaker.
	b.Record(c.now, true, probe2, gen2)
	if b.State() != BreakerOpen {
		t.Fatalf("stale probe outcome changed state to %s", b.State())
	}
	if got := b.Stats().Trips; got != tripsBefore {
		t.Fatalf("stale probe outcome changed trip count %d -> %d", tripsBefore, got)
	}
	if got := b.Stats().InFlightProbes; got != 0 {
		t.Fatalf("stale probe left %d in-flight slots", got)
	}

	// After another cooldown the breaker half-opens cleanly with a full
	// probe budget.
	c.advance(2 * time.Second)
	if ok, probe, _ := b.Allow(c.now); !ok || !probe {
		t.Fatalf("breaker did not half-open after re-trip cooldown")
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	c := newTick()
	b := NewBreaker(BreakerConfig{ConsecutiveFailures: 1, Cooldown: time.Second})
	failN(t, b, c, 1)
	c.advance(2 * time.Second)
	ok, probe, gen := b.Allow(c.now)
	if !ok || !probe {
		t.Fatal("expected a half-open probe")
	}
	b.Record(c.now, false, probe, gen)
	if b.State() != BreakerOpen {
		t.Fatalf("state %s after failed probe, want open", b.State())
	}
	// And the new cooldown starts from the re-trip, not the original trip.
	if ok, _, _ := b.Allow(c.advance(500 * time.Millisecond)); ok {
		t.Fatal("admitted before the re-trip cooldown elapsed")
	}
}

func TestBreakerTransitionCallback(t *testing.T) {
	c := newTick()
	type hop struct{ from, to BreakerState }
	var hops []hop
	b := NewBreaker(BreakerConfig{
		ConsecutiveFailures: 1, Cooldown: time.Second, ProbeSuccesses: 1,
		OnTransition: func(from, to BreakerState, _ time.Time) {
			hops = append(hops, hop{from, to})
		},
	})
	failN(t, b, c, 1) // closed -> open
	c.advance(2 * time.Second)
	ok, probe, gen := b.Allow(c.now) // open -> half-open
	if !ok {
		t.Fatal("probe refused")
	}
	b.Record(c.now, true, probe, gen) // half-open -> closed
	want := []hop{
		{BreakerClosed, BreakerOpen},
		{BreakerOpen, BreakerHalfOpen},
		{BreakerHalfOpen, BreakerClosed},
	}
	if len(hops) != len(want) {
		t.Fatalf("got %d transitions %v, want %d", len(hops), hops, len(want))
	}
	for i, w := range want {
		if hops[i] != w {
			t.Fatalf("transition %d = %v, want %v", i, hops[i], w)
		}
	}
}

func TestBreakerStaleGenerationDropped(t *testing.T) {
	c := newTick()
	b := NewBreaker(BreakerConfig{ConsecutiveFailures: 2})
	// A request admitted while closed...
	ok, probe, gen := b.Allow(c.now)
	if !ok {
		t.Fatal("Allow refused while closed")
	}
	// ...the breaker trips underneath it...
	failN(t, b, c, 2)
	if b.State() != BreakerOpen {
		t.Fatal("setup: breaker should be open")
	}
	// ...and its late failure must not touch the open state's accounting.
	b.Record(c.now, false, probe, gen)
	st := b.Stats()
	if st.ConsecutiveFailures != 0 || st.WindowFailureRate != 0 {
		t.Fatalf("stale outcome leaked into new state: %+v", st)
	}
}

func TestBreakerStateStrings(t *testing.T) {
	if BreakerClosed.String() != "closed" || BreakerHalfOpen.String() != "half-open" ||
		BreakerOpen.String() != "open" || BreakerState(9).String() != "unknown" {
		t.Fatal("state strings changed — logs, metrics, and e2e greps depend on them")
	}
}

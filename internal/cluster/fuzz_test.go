package cluster

import (
	"fmt"
	"testing"
)

// FuzzHashRing drives a random add/remove/lookup script against the ring
// and asserts its two load-bearing invariants exactly (no statistical
// slack):
//
//  1. Determinism: a ring rebuilt from the same membership set — in any
//     insertion order — places every probed key identically, and OwnerSeq
//     is a permutation of all backends headed by the primary owner.
//  2. Minimal movement: adding a backend only moves keys TO it; removing
//     a backend only moves the keys it owned. No unrelated key changes
//     owner on any membership change.
//
// The script bytes decode as (op, backend-id) pairs: op&3 selects
// add/remove/toggle, the id picks one of 16 candidate backends.
func FuzzHashRing(f *testing.F) {
	f.Add([]byte{0x01, 0x12, 0x23, 0x05})
	f.Add([]byte{0x00, 0x10, 0x20, 0x30, 0x41, 0x52, 0x63, 0x74})
	f.Add([]byte{0xff, 0x00, 0x81, 0x42, 0xc3, 0x24, 0xa5, 0x66, 0x07})
	f.Add([]byte{})

	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("%064x", i*2654435761+17)
	}

	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 64 {
			script = script[:64]
		}
		members := map[string]bool{}
		ring := NewRing(nil, 16)
		for _, b := range script {
			backend := fmt.Sprintf("w%02d:9000", (b>>2)&0x0f)
			add := b&1 == 0
			if b&2 != 0 { // toggle
				add = !members[backend]
			}

			before := ring
			if add && !members[backend] {
				members[backend] = true
				ring = before.With(backend)
				// Minimal movement: every key that moved must now belong to
				// the arrival.
				for _, k := range keys {
					bo, ao := before.Owner(k), ring.Owner(k)
					if bo < 0 {
						continue
					}
					if before.Backends()[bo] != ring.Backends()[ao] &&
						ring.Backends()[ao] != backend {
						t.Fatalf("add %q moved key %s to unrelated %q",
							backend, k, ring.Backends()[ao])
					}
				}
			} else if !add && members[backend] {
				delete(members, backend)
				ring = before.Without(backend)
				// Minimal movement: only the departure's keys move.
				for _, k := range keys {
					bo := before.Owner(k)
					if bo < 0 || ring.Len() == 0 {
						continue
					}
					if before.Backends()[bo] != backend &&
						before.Backends()[bo] != ring.Backends()[ring.Owner(k)] {
						t.Fatalf("remove %q moved key %s owned by %q",
							backend, k, before.Backends()[bo])
					}
				}
			}

			// Determinism: a rebuild from the membership set in a rotated
			// order routes identically.
			list := make([]string, 0, len(members))
			for m := range members { // map order is deliberately random
				list = append(list, m)
			}
			rebuilt := NewRing(list, 16)
			var seq []int
			for _, k := range keys {
				o1, o2 := ring.Owner(k), rebuilt.Owner(k)
				if (o1 < 0) != (o2 < 0) {
					t.Fatalf("rebuild disagreed on emptiness for key %s", k)
				}
				if o1 < 0 {
					continue
				}
				if ring.Backends()[o1] != rebuilt.Backends()[o2] {
					t.Fatalf("rebuild moved key %s: %q vs %q",
						k, ring.Backends()[o1], rebuilt.Backends()[o2])
				}
				seq = ring.OwnerSeq(k, seq)
				if len(seq) != ring.Len() {
					t.Fatalf("OwnerSeq covers %d of %d backends", len(seq), ring.Len())
				}
				if seq[0] != o1 {
					t.Fatalf("OwnerSeq[0]=%d, Owner=%d", seq[0], o1)
				}
				seen := 0
				for _, o := range seq {
					if o < 0 || o >= ring.Len() {
						t.Fatalf("OwnerSeq out-of-range owner %d", o)
					}
					seen |= 1 << o
				}
				if seen != (1<<ring.Len())-1 {
					t.Fatalf("OwnerSeq %v not a permutation of %d backends", seq, ring.Len())
				}
			}
		}
	})
}

// Package cluster is the horizontal scale-out layer over internal/serve:
// a consistent-hash ring that routes content-addressed job keys across N
// stateless ccmserve workers, an admission-control stage (per-client token
// buckets + utilization load shedding) that rejects overload at the edge,
// and per-backend circuit breakers that re-route a sick shard's keyspace
// to the next ring owner.
//
// The design leans on the same property the whole repo does: a JobSpec
// fully determines its result bytes, and its SHA-256 content address is
// both job id and cache key. That makes the key a perfect shard key
// (submissions and reads for one job always land on the same worker, so
// the per-worker LRU cache and checkpoint store stay hot) and makes
// failover trivially safe: re-executing a job on a different worker
// produces byte-identical results by construction, so the router can
// re-route a tripped shard's keyspace without any state handoff — the
// serving-layer analogue of the paper's interchangeable state-free
// endpoints behind one collision-resistant reader.
package cluster

import (
	"fmt"
	"math"
	"sort"
	"strconv"
)

// DefaultReplicas is the virtual-node count per backend. 128 vnodes keeps
// the peak-to-mean keyspace imbalance under ~20% for small clusters while
// the ring stays a few KB.
const DefaultReplicas = 128

// maskBackends is the backend count up to which OwnerSeq runs
// allocation-free (a uint64 seen-mask). Larger rings still work; the
// distinct-owner walk just allocates its seen set.
const maskBackends = 64

// Ring is an immutable consistent-hash ring: each backend owns Replicas
// pseudo-random arcs of the 64-bit hash circle, and a key belongs to the
// first vnode clockwise of its hash. Placement is deterministic — it
// depends only on the membership set and replica count, never on
// insertion order or lookup history — so every router instance built from
// the same member list routes identically, and a rebuilt ring after a
// membership change moves only the keys the departed/arrived backend
// owns (~K/N of the keyspace).
//
// Membership changes return a new Ring (With/Without); the zero-cost
// immutability is what lets the router swap rings atomically without
// locking its hot path.
type Ring struct {
	replicas int
	backends []string // sorted, unique
	vhash    []uint64 // sorted vnode positions
	vowner   []int32  // vhash[i] belongs to backends[vowner[i]]
}

// NewRing builds a ring over the backend set. Duplicates collapse;
// replicas <= 0 takes DefaultReplicas. An empty backend list yields a
// ring whose lookups return -1.
func NewRing(backends []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	uniq := make([]string, 0, len(backends))
	seen := make(map[string]bool, len(backends))
	for _, b := range backends {
		if b == "" || seen[b] {
			continue
		}
		seen[b] = true
		uniq = append(uniq, b)
	}
	sort.Strings(uniq)

	r := &Ring{
		replicas: replicas,
		backends: uniq,
		vhash:    make([]uint64, 0, len(uniq)*replicas),
		vowner:   make([]int32, 0, len(uniq)*replicas),
	}
	type vnode struct {
		h     uint64
		owner int32
	}
	vns := make([]vnode, 0, len(uniq)*replicas)
	var buf []byte
	for i, b := range uniq {
		for v := 0; v < replicas; v++ {
			buf = buf[:0]
			buf = append(buf, b...)
			buf = append(buf, '#')
			buf = strconv.AppendInt(buf, int64(v), 10)
			vns = append(vns, vnode{h: hashBytes(buf), owner: int32(i)})
		}
	}
	// Ties (hash collisions between vnodes of different backends) break on
	// the sorted backend index, keeping placement a pure function of the
	// membership set.
	sort.Slice(vns, func(a, b int) bool {
		if vns[a].h != vns[b].h {
			return vns[a].h < vns[b].h
		}
		return vns[a].owner < vns[b].owner
	})
	for _, vn := range vns {
		r.vhash = append(r.vhash, vn.h)
		r.vowner = append(r.vowner, vn.owner)
	}
	return r
}

// With returns a new ring with the backend added (no-op copy if already a
// member).
func (r *Ring) With(backend string) *Ring {
	return NewRing(append(append([]string(nil), r.backends...), backend), r.replicas)
}

// Without returns a new ring with the backend removed (no-op copy if not
// a member).
func (r *Ring) Without(backend string) *Ring {
	keep := make([]string, 0, len(r.backends))
	for _, b := range r.backends {
		if b != backend {
			keep = append(keep, b)
		}
	}
	return NewRing(keep, r.replicas)
}

// Backends returns the sorted member list. Callers must not mutate it.
func (r *Ring) Backends() []string { return r.backends }

// Len returns the number of backends.
func (r *Ring) Len() int { return len(r.backends) }

// Replicas returns the virtual-node count per backend.
func (r *Ring) Replicas() int { return r.replicas }

// VNodes returns the total virtual-node count.
func (r *Ring) VNodes() int { return len(r.vhash) }

// Owner returns the index (into Backends) of the backend owning key, or
// -1 on an empty ring. Allocation-free.
func (r *Ring) Owner(key string) int {
	if len(r.vhash) == 0 {
		return -1
	}
	return int(r.vowner[r.slot(hashString(key))])
}

// OwnerSeq appends the distinct backends that own key, in ring
// (preference) order: the primary owner first, then each successive
// distinct owner clockwise — the failover sequence when earlier owners
// are tripped or overloaded. The result always contains every backend
// exactly once. seq is reused when its capacity suffices; with at most 64
// backends and adequate capacity the call is allocation-free.
func (r *Ring) OwnerSeq(key string, seq []int) []int {
	seq = seq[:0]
	n := len(r.backends)
	if n == 0 {
		return seq
	}
	start := r.slot(hashString(key))
	if n <= maskBackends {
		var seen uint64
		for i := 0; len(seq) < n; i++ {
			o := r.vowner[(start+i)%len(r.vhash)]
			if seen&(1<<uint(o)) == 0 {
				seen |= 1 << uint(o)
				seq = append(seq, int(o))
			}
		}
		return seq
	}
	seen := make([]bool, n)
	for i := 0; len(seq) < n; i++ {
		o := r.vowner[(start+i)%len(r.vhash)]
		if !seen[o] {
			seen[o] = true
			seq = append(seq, int(o))
		}
	}
	return seq
}

// slot returns the index of the first vnode clockwise of hash h
// (wrapping past the top of the circle back to vnode 0).
func (r *Ring) slot(h uint64) int {
	i := sort.Search(len(r.vhash), func(i int) bool { return r.vhash[i] >= h })
	if i == len(r.vhash) {
		return 0
	}
	return i
}

// Shares returns each backend's owned fraction of the hash circle, index-
// aligned with Backends. Fractions sum to 1 on a non-empty ring.
func (r *Ring) Shares() []float64 {
	out := make([]float64, len(r.backends))
	if len(r.vhash) == 0 {
		return out
	}
	prev := r.vhash[len(r.vhash)-1]
	for i, h := range r.vhash {
		// Arc (prev, h] belongs to vnode i; the wrap-around arc is the
		// complement of the distance walked forward.
		arc := h - prev // uint64 wrap-around arithmetic is exactly right here
		out[r.vowner[i]] += float64(arc) / math.MaxUint64
		prev = h
	}
	return out
}

// String describes the ring briefly (members and vnode count).
func (r *Ring) String() string {
	return fmt.Sprintf("ring(%d backends x %d vnodes)", len(r.backends), r.replicas)
}

// FNV-1a, inlined so hashing a key string never allocates (hash/fnv's
// New64a returns a heap object). The routing hot path calls this once per
// request.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func hashString(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

func hashBytes(b []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%064x", i*2654435761)
	}
	return keys
}

func TestRingDeterministicAcrossOrder(t *testing.T) {
	a := NewRing([]string{"w1:1", "w2:2", "w3:3"}, 64)
	b := NewRing([]string{"w3:3", "w1:1", "w2:2", "w2:2"}, 64)
	if a.Len() != 3 || b.Len() != 3 {
		t.Fatalf("len: got %d and %d, want 3", a.Len(), b.Len())
	}
	for _, k := range testKeys(500) {
		ao, bo := a.Owner(k), b.Owner(k)
		if a.Backends()[ao] != b.Backends()[bo] {
			t.Fatalf("key %s: order-dependent placement %q vs %q",
				k, a.Backends()[ao], b.Backends()[bo])
		}
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(nil, 0)
	if r.Owner("k") != -1 {
		t.Fatalf("empty ring Owner = %d, want -1", r.Owner("k"))
	}
	if seq := r.OwnerSeq("k", nil); len(seq) != 0 {
		t.Fatalf("empty ring OwnerSeq = %v, want empty", seq)
	}
	if got := r.Shares(); len(got) != 0 {
		t.Fatalf("empty ring Shares = %v", got)
	}
}

func TestRingMinimalMovementOnRemove(t *testing.T) {
	backends := []string{"a:1", "b:2", "c:3", "d:4", "e:5"}
	r := NewRing(backends, DefaultReplicas)
	smaller := r.Without("c:3")
	keys := testKeys(4000)
	moved := 0
	for _, k := range keys {
		before := r.Backends()[r.Owner(k)]
		after := smaller.Backends()[smaller.Owner(k)]
		if before != after {
			moved++
			// Only keys the departed backend owned may move.
			if before != "c:3" {
				t.Fatalf("key %s moved %q -> %q though its owner stayed", k, before, after)
			}
		}
	}
	// ~1/5 of the keyspace belonged to the removed backend.
	if moved < len(keys)/10 || moved > len(keys)/2 {
		t.Fatalf("moved %d of %d keys on 1-of-5 removal; want roughly 1/5", moved, len(keys))
	}
}

func TestRingMinimalMovementOnAdd(t *testing.T) {
	r := NewRing([]string{"a:1", "b:2", "c:3"}, DefaultReplicas)
	bigger := r.With("d:4")
	for _, k := range testKeys(4000) {
		before := r.Backends()[r.Owner(k)]
		after := bigger.Backends()[bigger.Owner(k)]
		if before != after && after != "d:4" {
			t.Fatalf("key %s moved %q -> %q, not to the new backend", k, before, after)
		}
	}
}

func TestRingOwnerSeqCoversAllDistinct(t *testing.T) {
	r := NewRing([]string{"a:1", "b:2", "c:3", "d:4"}, 32)
	var seq []int
	for _, k := range testKeys(200) {
		seq = r.OwnerSeq(k, seq)
		if len(seq) != 4 {
			t.Fatalf("key %s: OwnerSeq len %d, want 4", k, len(seq))
		}
		seen := map[int]bool{}
		for _, o := range seq {
			if seen[o] {
				t.Fatalf("key %s: duplicate owner %d in %v", k, o, seq)
			}
			seen[o] = true
		}
		if seq[0] != r.Owner(k) {
			t.Fatalf("key %s: OwnerSeq[0]=%d != Owner=%d", k, seq[0], r.Owner(k))
		}
	}
}

func TestRingOwnerSeqFailoverConsistency(t *testing.T) {
	// The next owner in the sequence must be the primary owner on the ring
	// without the first — that is what makes breaker re-routing land
	// exactly where a membership removal would.
	r := NewRing([]string{"a:1", "b:2", "c:3", "d:4"}, DefaultReplicas)
	for _, k := range testKeys(500) {
		seq := r.OwnerSeq(k, nil)
		first := r.Backends()[seq[0]]
		second := r.Backends()[seq[1]]
		without := r.Without(first)
		got := without.Backends()[without.Owner(k)]
		if got != second {
			t.Fatalf("key %s: OwnerSeq[1]=%q but ring-without-primary owner is %q",
				k, second, got)
		}
	}
}

func TestRingSharesBalanced(t *testing.T) {
	r := NewRing([]string{"a:1", "b:2", "c:3", "d:4"}, DefaultReplicas)
	shares := r.Shares()
	sum := 0.0
	for i, s := range shares {
		sum += s
		if s < 0.10 || s > 0.45 {
			t.Fatalf("backend %d share %.3f badly unbalanced", i, s)
		}
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("shares sum %.6f, want 1", sum)
	}
}

func TestRingOwnerMatchesShares(t *testing.T) {
	// Empirical key placement should roughly follow the analytic arc
	// fractions.
	r := NewRing([]string{"a:1", "b:2", "c:3"}, DefaultReplicas)
	counts := make([]int, r.Len())
	keys := testKeys(6000)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	for i, s := range r.Shares() {
		frac := float64(counts[i]) / float64(len(keys))
		if frac < s-0.1 || frac > s+0.1 {
			t.Fatalf("backend %d: empirical %.3f vs analytic share %.3f", i, frac, s)
		}
	}
}

func TestRingLargeMembershipOwnerSeq(t *testing.T) {
	// Above maskBackends the walk switches to the []bool seen set; behavior
	// must be identical.
	var backends []string
	for i := 0; i < maskBackends+8; i++ {
		backends = append(backends, fmt.Sprintf("w%03d:80", i))
	}
	r := NewRing(backends, 16)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("key-%d", rng.Int63())
		seq := r.OwnerSeq(k, nil)
		if len(seq) != len(backends) {
			t.Fatalf("OwnerSeq len %d, want %d", len(seq), len(backends))
		}
		if seq[0] != r.Owner(k) {
			t.Fatalf("OwnerSeq[0] mismatch")
		}
	}
}

func TestRingOwnerAllocFree(t *testing.T) {
	r := NewRing([]string{"a:1", "b:2", "c:3"}, DefaultReplicas)
	key := testKeys(1)[0]
	seq := make([]int, 0, maskBackends)
	allocs := testing.AllocsPerRun(200, func() {
		_ = r.Owner(key)
		seq = r.OwnerSeq(key, seq)
	})
	if allocs != 0 {
		t.Fatalf("Owner+OwnerSeq allocate %.1f/op, want 0", allocs)
	}
}

// The cluster router: one HTTP front door over N ccmserve workers.
//
// Request flow for a submission:
//
//	POST /api/v1/jobs
//	  → admission (per-client token bucket, utilization shedding; 429 +
//	    Retry-After at the edge, bulk shed before interactive)
//	  → key = SHA-256 content address of the canonicalized spec
//	  → ring.OwnerSeq(key): the owning shard, then each successive ring
//	    owner as the failover sequence
//	  → first backend whose breaker admits and whose in-flight count is
//	    under the bounded-load cap gets the proxied request; transport
//	    errors and 502/503/504 replies count against its breaker and fall
//	    through to the next owner
//
// Reads (/jobs/{id}, /result, /stream, /trace, DELETE) route by the id in
// the path — the id IS the shard key — so a job's whole lifecycle lands
// on the worker that owns (and cached, and checkpointed) it. When that
// worker trips its breaker the same sequence re-routes reads to the next
// owner; a resubmission of the spec re-executes there and is
// byte-identical by construction, so failover needs no state handoff.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"netags/internal/obs"
	"netags/internal/obs/httpserve"
	"netags/internal/serve"
)

// Error codes the router adds to the serve layer's envelope vocabulary.
const (
	// CodeShedRateLimit rejects a client exceeding its token bucket.
	CodeShedRateLimit = "shed_ratelimit"
	// CodeShedOverload rejects at high cluster utilization.
	CodeShedOverload = "shed_overload"
	// CodeNoBackend means every ring owner was tripped or unreachable.
	CodeNoBackend = "no_backend"
)

// maxBody bounds a proxied POST body (mirrors the serve layer's own cap).
const maxBody = 1 << 20

// RouterConfig wires a Router. Backends is required; everything else
// defaults sanely.
type RouterConfig struct {
	// Backends is the worker address list ("host:port"). The membership
	// set (not its order) determines placement.
	Backends []string
	// Replicas is the virtual-node count per backend (default 128).
	Replicas int
	// LoadBound is the bounded-load factor c: a backend is skipped (for
	// the next ring owner) while its in-flight count exceeds
	// c·(total+1)/healthy. <= 0 disables the bound; values <= 1 are
	// clamped to 1.25.
	LoadBound float64
	// MaxAttempts caps distinct backends tried per request (default: all).
	MaxAttempts int
	// Admit tunes the admission stage.
	Admit AdmitConfig
	// Breaker tunes every backend's circuit breaker. OnTransition is
	// overridden by the router (it logs and emits events itself).
	Breaker BreakerConfig
	// Transport performs the proxied requests (default: a dedicated
	// http.Transport with per-backend keep-alive pools).
	Transport http.RoundTripper
	// Logger receives breaker transitions and shed/forward warnings. nil
	// discards.
	Logger *slog.Logger
	// Tracer mirrors breaker transitions as obs.KindAlert events (the
	// /events ring). nil disables.
	Tracer obs.Tracer
}

// Router is the cluster front-end. Create with NewRouter, mount with
// Handler.
type Router struct {
	ring      *Ring
	breakers  []*Breaker
	inflight  []atomic.Int64 // per-backend in-flight proxied requests
	total     atomic.Int64   // cluster-wide in-flight proxied requests
	loadBound float64
	maxTries  int

	admit     *Admitter
	transport http.RoundTripper
	log       *slog.Logger
	tracer    obs.Tracer

	// Counters (atomics; exposed on /metrics and the timeseries source).
	requests     atomic.Int64 // proxied requests received (post-admission)
	submits      atomic.Int64 // submissions received (pre-admission)
	submitsOK    atomic.Int64 // submissions admitted
	forwarded    atomic.Int64 // requests answered by some backend
	forwardErrs  atomic.Int64 // attempts that failed (transport or 5xx gateway)
	failovers    atomic.Int64 // requests answered by a non-primary owner
	noBackend    atomic.Int64 // requests no backend could take
	perBackendOK []atomic.Int64
	perBackendKO []atomic.Int64

	scratch sync.Pool
}

// NewRouter validates cfg and builds the ring, breakers, and admitter.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Backends) == 0 {
		return nil, errors.New("cluster: no backends configured")
	}
	ring := NewRing(cfg.Backends, cfg.Replicas)
	if ring.Len() == 0 {
		return nil, errors.New("cluster: no usable backend addresses")
	}
	if ring.Len() > maskBackends {
		return nil, fmt.Errorf("cluster: %d backends exceed the supported %d", ring.Len(), maskBackends)
	}
	lb := cfg.LoadBound
	if lb > 0 && lb <= 1 {
		lb = 1.25
	}
	tries := cfg.MaxAttempts
	if tries <= 0 || tries > ring.Len() {
		tries = ring.Len()
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}
	transport := cfg.Transport
	if transport == nil {
		transport = &http.Transport{
			MaxIdleConnsPerHost:   16,
			IdleConnTimeout:       90 * time.Second,
			ResponseHeaderTimeout: 30 * time.Second,
		}
	}
	rt := &Router{
		ring:         ring,
		breakers:     make([]*Breaker, ring.Len()),
		inflight:     make([]atomic.Int64, ring.Len()),
		loadBound:    lb,
		maxTries:     tries,
		admit:        NewAdmitter(cfg.Admit),
		transport:    transport,
		log:          log,
		tracer:       cfg.Tracer,
		perBackendOK: make([]atomic.Int64, ring.Len()),
		perBackendKO: make([]atomic.Int64, ring.Len()),
	}
	rt.scratch.New = func() any { return &routeScratch{seq: make([]int, 0, maskBackends)} }
	for i, addr := range ring.Backends() {
		bcfg := cfg.Breaker
		addr := addr
		bcfg.OnTransition = func(from, to BreakerState, now time.Time) {
			// Called with the breaker lock held: log and mirror, nothing more.
			level := slog.LevelWarn
			if to == BreakerClosed {
				level = slog.LevelInfo
			}
			rt.log.LogAttrs(context.Background(), level, "breaker state",
				slog.String("backend", addr),
				slog.String("from", from.String()), slog.String("to", to.String()))
			if rt.tracer != nil {
				rt.tracer.Trace(obs.Event{
					Kind: obs.KindAlert, Protocol: obs.ProtoCluster,
					Phase: addr + ":" + to.String(),
				})
			}
		}
		rt.breakers[i] = NewBreaker(bcfg)
	}
	return rt, nil
}

// Ring returns the router's hash ring (immutable).
func (rt *Router) Ring() *Ring { return rt.ring }

// Breaker returns backend i's circuit breaker (for tests and status).
func (rt *Router) Breaker(i int) *Breaker { return rt.breakers[i] }

// Admitter returns the admission stage.
func (rt *Router) Admitter() *Admitter { return rt.admit }

type routeScratch struct{ seq []int }

// overloaded reports whether backend bi is past the bounded-load cap
// c·(total+1)/healthy. With the bound disabled it always returns false.
func (rt *Router) overloaded(bi int) bool {
	if rt.loadBound <= 0 {
		return false
	}
	healthy := 0
	for i := range rt.breakers {
		if rt.breakers[i].State() != BreakerOpen {
			healthy++
		}
	}
	if healthy == 0 {
		return false
	}
	cap64 := rt.loadBound * float64(rt.total.Load()+1) / float64(healthy)
	limit := int64(cap64)
	if float64(limit) < cap64 {
		limit++ // ceil
	}
	if limit < 1 {
		limit = 1
	}
	return rt.inflight[bi].Load() >= limit
}

// Handler builds the router's combined mux: the proxied jobs API under
// /api/v1 (with the same unversioned aliases the workers serve) plus the
// introspection endpoints from httpserve (/metrics, /api/v1/timeseries,
// /api/v1/alerts, /api/v1/cluster, /events, /healthz, /readyz, pprof).
// Unset obsOpts fields are wired to the router: ExtraMetrics to WriteProm
// (chained after any caller-provided hook) and Cluster to StatusJSON.
func (rt *Router) Handler(obsOpts httpserve.Options) http.Handler {
	if prev := obsOpts.ExtraMetrics; prev != nil {
		obsOpts.ExtraMetrics = func(w io.Writer) { prev(w); rt.WriteProm(w) }
	} else {
		obsOpts.ExtraMetrics = rt.WriteProm
	}
	if obsOpts.Cluster == nil {
		obsOpts.Cluster = rt.StatusJSON
	}
	mux := http.NewServeMux()
	mux.Handle("/", httpserve.NewHandler(obsOpts))
	for _, prefix := range []string{serve.APIPrefix, ""} {
		prefix := prefix
		mux.HandleFunc("POST "+prefix+"/jobs", func(w http.ResponseWriter, r *http.Request) {
			rt.handleSubmit(w, r)
		})
		mux.HandleFunc("GET "+prefix+"/jobs", func(w http.ResponseWriter, r *http.Request) {
			rt.handleList(w, r)
		})
		mux.HandleFunc(prefix+"/jobs/{rest...}", func(w http.ResponseWriter, r *http.Request) {
			rest := r.PathValue("rest")
			id, _, _ := strings.Cut(rest, "/")
			if id == "" {
				writeError(w, http.StatusNotFound, serve.CodeNotFound, "missing job id")
				return
			}
			rt.forward(w, r, id, nil)
		})
	}
	return mux
}

// handleSubmit runs admission, derives the shard key from the spec's
// content address, and proxies the submission to the owning shard.
func (rt *Router) handleSubmit(w http.ResponseWriter, r *http.Request) {
	rt.submits.Add(1)
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, serve.CodeBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	var req serve.SubmitRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, serve.CodeBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	client := req.Client
	if client == "" {
		if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
			client = host
		} else {
			client = r.RemoteAddr
		}
	}
	bulk := req.Priority == serve.PriorityBulk
	dec := rt.admit.Admit(client, bulk, rt.total.Load(), time.Now())
	if !dec.OK {
		code := CodeShedOverload
		if dec.Reason == ShedRateLimit {
			code = CodeShedRateLimit
		}
		secs := int(dec.RetryAfter / time.Second)
		if dec.RetryAfter%time.Second != 0 || secs < 1 {
			secs++
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		rt.log.Debug("submission shed",
			"client", client, "reason", dec.Reason, "retry_after_s", secs)
		writeError(w, http.StatusTooManyRequests, code,
			"cluster admission: "+dec.Reason+" — honor Retry-After")
		return
	}
	rt.submitsOK.Add(1)
	key, err := req.Spec.Key()
	if err != nil {
		writeError(w, http.StatusInternalServerError, serve.CodeInternal, err.Error())
		return
	}
	rt.forward(w, r, key, body)
}

// handleList fans GET /jobs out to every non-open backend and merges the
// job arrays — the one read that has no single owning shard.
func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) {
	rt.requests.Add(1)
	ctx, cancel := context.WithTimeout(r.Context(), 5*time.Second)
	defer cancel()
	var jobs []serve.JobStatus
	for i, addr := range rt.ring.Backends() {
		if rt.breakers[i].State() == BreakerOpen {
			continue
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet,
			"http://"+addr+serve.APIPrefix+"/jobs", nil)
		if err != nil {
			continue
		}
		resp, err := rt.transport.RoundTrip(req)
		if err != nil {
			rt.breakers[i].recordPlain(false)
			continue
		}
		var out struct {
			Jobs []serve.JobStatus `json:"jobs"`
		}
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err == nil && resp.StatusCode == http.StatusOK {
			jobs = append(jobs, out.Jobs...)
		}
	}
	if jobs == nil {
		jobs = []serve.JobStatus{}
	}
	writeJSON(w, http.StatusOK, struct {
		Jobs []serve.JobStatus `json:"jobs"`
	}{Jobs: jobs})
}

// recordPlain feeds a non-probe outcome with the current generation —
// used by the list fan-out, which bypasses Allow.
func (b *Breaker) recordPlain(success bool) {
	now := time.Now()
	b.mu.Lock()
	gen := b.gen
	b.mu.Unlock()
	b.Record(now, success, false, gen)
}

// forward proxies one request along key's owner sequence: the owning
// shard first, then each successive ring owner while earlier ones are
// tripped, over the bounded-load cap, or fail the attempt. A non-nil body
// replaces the (already consumed) request body on every attempt.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, key string, body []byte) {
	rt.requests.Add(1)
	sc := rt.scratch.Get().(*routeScratch)
	defer rt.scratch.Put(sc)
	sc.seq = rt.ring.OwnerSeq(key, sc.seq)

	backends := rt.ring.Backends()
	tried := 0
	for pos, bi := range sc.seq {
		if tried >= rt.maxTries {
			break
		}
		// Bounded load: while this owner is disproportionately busy, spill
		// to the next one — unless it is the last candidate standing.
		if pos < len(sc.seq)-1 && rt.overloaded(bi) {
			continue
		}
		ok, probe, gen := rt.breakers[bi].Allow(time.Now())
		if !ok {
			continue
		}
		tried++
		rt.inflight[bi].Add(1)
		rt.total.Add(1)
		resp, err := rt.do(r, backends[bi], body)
		failed := err != nil || isGatewayFailure(resp.StatusCode)
		rt.breakers[bi].Record(time.Now(), !failed, probe, gen)
		if failed {
			rt.inflight[bi].Add(-1)
			rt.total.Add(-1)
			rt.forwardErrs.Add(1)
			rt.perBackendKO[bi].Add(1)
			detail := ""
			if err != nil {
				detail = err.Error()
			} else {
				detail = resp.Status
				resp.Body.Close()
			}
			rt.log.Warn("forward attempt failed",
				"backend", backends[bi], "path", r.URL.Path, "err", detail)
			continue
		}
		rt.perBackendOK[bi].Add(1)
		rt.forwarded.Add(1)
		if pos > 0 {
			rt.failovers.Add(1)
		}
		rt.relay(w, resp, backends[bi])
		rt.inflight[bi].Add(-1)
		rt.total.Add(-1)
		return
	}
	rt.noBackend.Add(1)
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable, CodeNoBackend,
		"no healthy backend for this key — all ring owners tripped or unreachable")
}

// isGatewayFailure reports whether a backend reply should count against
// its breaker and fall through to the next owner. 502/503/504 are infra
// verdicts (draining, dead proxy hop); plain 4xx/5xx application answers
// — a failed job's 500, a 404, even 429 backpressure — are real answers
// from a live backend and pass through untouched.
func isGatewayFailure(status int) bool {
	switch status {
	case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// do performs one proxied attempt against backend.
func (rt *Router) do(r *http.Request, backend string, body []byte) (*http.Response, error) {
	out := r.Clone(r.Context())
	out.URL.Scheme = "http"
	out.URL.Host = backend
	out.RequestURI = ""
	out.Host = ""
	if body != nil {
		out.Body = io.NopCloser(bytes.NewReader(body))
		out.ContentLength = int64(len(body))
	} else {
		out.Body = http.NoBody
		out.ContentLength = 0
	}
	return rt.transport.RoundTrip(out)
}

// relay copies the backend reply to the client, flushing after every
// chunk so streamed NDJSON/SSE bodies pass through live.
func (rt *Router) relay(w http.ResponseWriter, resp *http.Response, backend string) {
	defer resp.Body.Close()
	h := w.Header()
	for k, vv := range resp.Header {
		h[k] = vv
	}
	h.Set(serve.BackendHeader, backend)
	w.WriteHeader(resp.StatusCode)
	rc := http.NewResponseController(w)
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			rc.Flush() //nolint:errcheck // best-effort; ends with the conn
		}
		if err != nil {
			return
		}
	}
}

// --- status, metrics ----------------------------------------------------

// BackendStatus is one worker's row in the cluster status document.
type BackendStatus struct {
	Addr     string  `json:"addr"`
	State    string  `json:"state"`
	Inflight int64   `json:"inflight"`
	Requests int64   `json:"requests"`
	Failures int64   `json:"failures"`
	Trips    uint64  `json:"trips"`
	Share    float64 `json:"keyspace_share"`
	Consec   int     `json:"consecutive_failures"`
	WinRate  float64 `json:"window_failure_rate"`
	Probes   int     `json:"inflight_probes"`
}

// ClusterStatus is the GET /api/v1/cluster document.
type ClusterStatus struct {
	Backends []BackendStatus `json:"backends"`
	Ring     struct {
		Backends int `json:"backends"`
		Replicas int `json:"replicas"`
		VNodes   int `json:"vnodes"`
	} `json:"ring"`
	Admission AdmitStats `json:"admission"`
	Inflight  int64      `json:"inflight"`
	Counters  struct {
		Requests        int64 `json:"requests"`
		Submits         int64 `json:"submits"`
		SubmitsAdmitted int64 `json:"submits_admitted"`
		Forwarded       int64 `json:"forwarded"`
		ForwardErrors   int64 `json:"forward_errors"`
		Failovers       int64 `json:"failovers"`
		NoBackend       int64 `json:"no_backend"`
	} `json:"counters"`
}

// Status snapshots the cluster state.
func (rt *Router) Status() ClusterStatus {
	var st ClusterStatus
	shares := rt.ring.Shares()
	for i, addr := range rt.ring.Backends() {
		bs := rt.breakers[i].Stats()
		st.Backends = append(st.Backends, BackendStatus{
			Addr:     addr,
			State:    bs.State.String(),
			Inflight: rt.inflight[i].Load(),
			Requests: rt.perBackendOK[i].Load(),
			Failures: rt.perBackendKO[i].Load(),
			Trips:    bs.Trips,
			Share:    shares[i],
			Consec:   bs.ConsecutiveFailures,
			WinRate:  bs.WindowFailureRate,
			Probes:   bs.InFlightProbes,
		})
	}
	st.Ring.Backends = rt.ring.Len()
	st.Ring.Replicas = rt.ring.Replicas()
	st.Ring.VNodes = rt.ring.VNodes()
	st.Admission = rt.admit.Stats()
	st.Inflight = rt.total.Load()
	st.Counters.Requests = rt.requests.Load()
	st.Counters.Submits = rt.submits.Load()
	st.Counters.SubmitsAdmitted = rt.submitsOK.Load()
	st.Counters.Forwarded = rt.forwarded.Load()
	st.Counters.ForwardErrors = rt.forwardErrs.Load()
	st.Counters.Failovers = rt.failovers.Load()
	st.Counters.NoBackend = rt.noBackend.Load()
	return st
}

// StatusJSON renders Status for the /api/v1/cluster endpoint.
func (rt *Router) StatusJSON() ([]byte, error) {
	return json.Marshal(rt.Status())
}

// OpenBreakers returns how many backends are currently tripped (open or
// half-open — either way their keyspace routes elsewhere first).
func (rt *Router) OpenBreakers() int {
	n := 0
	for _, b := range rt.breakers {
		if b.State() != BreakerClosed {
			n++
		}
	}
	return n
}

// WriteProm writes the router's metric families in Prometheus text
// exposition — mounted as httpserve's ExtraMetrics hook.
func (rt *Router) WriteProm(w io.Writer) {
	st := rt.Status()
	promGauge(w, "netags_cluster_backends", "Configured backend count.", float64(st.Ring.Backends))
	promGauge(w, "netags_cluster_ring_vnodes", "Virtual nodes on the hash ring.", float64(st.Ring.VNodes))
	promGauge(w, "netags_cluster_inflight", "Proxied requests currently in flight.", float64(st.Inflight))
	open := 0
	for _, b := range st.Backends {
		if b.State != "closed" {
			open++
		}
	}
	promGauge(w, "netags_cluster_breakers_open", "Backends whose breaker is not closed.", float64(open))
	promCounter(w, "netags_cluster_requests_total", "Proxied requests received.", st.Counters.Requests)
	promCounter(w, "netags_cluster_submits_total", "Submissions received (pre-admission).", st.Counters.Submits)
	promCounter(w, "netags_cluster_submits_admitted_total", "Submissions past admission control.", st.Counters.SubmitsAdmitted)
	promCounter(w, "netags_cluster_forwarded_total", "Requests answered by a backend.", st.Counters.Forwarded)
	promCounter(w, "netags_cluster_forward_errors_total", "Proxy attempts that failed (transport error or 502/503/504).", st.Counters.ForwardErrors)
	promCounter(w, "netags_cluster_failovers_total", "Requests served by a non-primary ring owner.", st.Counters.Failovers)
	promCounter(w, "netags_cluster_no_backend_total", "Requests no backend could take.", st.Counters.NoBackend)
	fmt.Fprint(w, "# HELP netags_cluster_shed_total Submissions rejected by admission control, by reason.\n# TYPE netags_cluster_shed_total counter\n")
	fmt.Fprintf(w, "netags_cluster_shed_total{reason=%q} %d\n", ShedRateLimit, st.Admission.ShedRateLimit)
	fmt.Fprintf(w, "netags_cluster_shed_total{reason=%q} %d\n", ShedOverload, st.Admission.ShedOverload)
	promGauge(w, "netags_cluster_admit_clients", "Client token buckets tracked.", float64(st.Admission.Clients))

	fmt.Fprint(w, "# HELP netags_cluster_breaker_state Breaker position per backend: 0 closed, 1 half-open, 2 open.\n# TYPE netags_cluster_breaker_state gauge\n")
	for _, b := range st.Backends {
		v := 0
		switch b.State {
		case "half-open":
			v = 1
		case "open":
			v = 2
		}
		fmt.Fprintf(w, "netags_cluster_breaker_state{backend=%q} %d\n", b.Addr, v)
	}
	fmt.Fprint(w, "# HELP netags_cluster_backend_inflight In-flight proxied requests per backend.\n# TYPE netags_cluster_backend_inflight gauge\n")
	for _, b := range st.Backends {
		fmt.Fprintf(w, "netags_cluster_backend_inflight{backend=%q} %d\n", b.Addr, b.Inflight)
	}
	fmt.Fprint(w, "# HELP netags_cluster_backend_requests_total Successful proxied requests per backend.\n# TYPE netags_cluster_backend_requests_total counter\n")
	for _, b := range st.Backends {
		fmt.Fprintf(w, "netags_cluster_backend_requests_total{backend=%q} %d\n", b.Addr, b.Requests)
	}
	fmt.Fprint(w, "# HELP netags_cluster_backend_failures_total Failed proxy attempts per backend.\n# TYPE netags_cluster_backend_failures_total counter\n")
	for _, b := range st.Backends {
		fmt.Fprintf(w, "netags_cluster_backend_failures_total{backend=%q} %d\n", b.Addr, b.Failures)
	}
	fmt.Fprint(w, "# HELP netags_cluster_breaker_trips_total Breaker trips per backend.\n# TYPE netags_cluster_breaker_trips_total counter\n")
	for _, b := range st.Backends {
		fmt.Fprintf(w, "netags_cluster_breaker_trips_total{backend=%q} %d\n", b.Addr, b.Trips)
	}
}

// --- small local JSON/prom helpers (the serve layer's are unexported) ---

func writeJSON(w http.ResponseWriter, code int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, serve.CodeInternal, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(b, '\n'))
}

// writeError speaks the serve layer's one error envelope so cluster and
// worker rejections are indistinguishable to clients.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	b, _ := json.Marshal(struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}{Error: struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	}{Code: code, Message: msg}})
	w.Write(append(b, '\n'))
}

func promCounter(w io.Writer, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

func promGauge(w io.Writer, name, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
}

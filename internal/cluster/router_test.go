package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"netags/internal/obs/httpserve"
	"netags/internal/serve"
)

// stubBackend is a fake worker that records hits and answers with a
// configurable status; its body echoes the backend's tag so tests can see
// who answered.
type stubBackend struct {
	*httptest.Server
	tag    string
	hits   atomic.Int64
	status atomic.Int32 // response status; 0 means 200
	closed atomic.Bool
}

func newStubBackend(tag string) *stubBackend {
	sb := &stubBackend{tag: tag}
	sb.Server = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sb.hits.Add(1)
		code := int(sb.status.Load())
		if code == 0 {
			code = http.StatusOK
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		fmt.Fprintf(w, `{"backend":%q,"path":%q}`, sb.tag, r.URL.Path)
	}))
	return sb
}

func (sb *stubBackend) addr() string { return sb.Listener.Addr().String() }

func newTestRouter(t *testing.T, cfg RouterConfig, backends ...*stubBackend) (*Router, *httptest.Server) {
	t.Helper()
	for _, sb := range backends {
		cfg.Backends = append(cfg.Backends, sb.addr())
	}
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(rt.Handler(httpserve.Options{}))
	t.Cleanup(srv.Close)
	return rt, srv
}

func submitBody(t *testing.T, seed uint64) ([]byte, string) {
	t.Helper()
	spec := serve.JobSpec{N: 100, Trials: 1, RValues: []float64{6}, Seed: seed}
	key, err := spec.Key()
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(serve.SubmitRequest{Spec: spec, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return b, key
}

func postJobs(t *testing.T, base string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(base+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestRouterRoutesByContentAddress(t *testing.T) {
	b1, b2, b3 := newStubBackend("w1"), newStubBackend("w2"), newStubBackend("w3")
	defer b1.Close()
	defer b2.Close()
	defer b3.Close()
	rt, srv := newTestRouter(t, RouterConfig{}, b1, b2, b3)

	stubs := map[string]*stubBackend{b1.addr(): b1, b2.addr(): b2, b3.addr(): b3}
	for seed := uint64(0); seed < 8; seed++ {
		body, key := submitBody(t, seed)
		wantAddr := rt.Ring().Backends()[rt.Ring().Owner(key)]

		resp := postJobs(t, srv.URL, body)
		var got struct {
			Backend string `json:"backend"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: status %d", seed, resp.StatusCode)
		}
		if got.Backend != stubs[wantAddr].tag {
			t.Fatalf("seed %d: answered by %s, ring owner is %s", seed, got.Backend, stubs[wantAddr].tag)
		}
		if hdr := resp.Header.Get(serve.BackendHeader); hdr != wantAddr {
			t.Fatalf("seed %d: %s header %q, want %q", seed, serve.BackendHeader, hdr, wantAddr)
		}

		// Reads for the same id land on the same shard (the id IS the key).
		getResp, err := http.Get(srv.URL + "/api/v1/jobs/" + key + "/result")
		if err != nil {
			t.Fatal(err)
		}
		getResp.Body.Close()
		if hdr := getResp.Header.Get(serve.BackendHeader); hdr != wantAddr {
			t.Fatalf("seed %d: read routed to %q, submit to %q", seed, hdr, wantAddr)
		}
	}
}

func TestRouterFailoverToNextOwner(t *testing.T) {
	b1, b2, b3 := newStubBackend("w1"), newStubBackend("w2"), newStubBackend("w3")
	defer b2.Close()
	defer b3.Close()
	rt, srv := newTestRouter(t, RouterConfig{}, b1, b2, b3)

	// Find a key whose primary owner is b1, then kill b1.
	var body []byte
	var key string
	for seed := uint64(0); ; seed++ {
		body, key = submitBody(t, seed)
		if rt.Ring().Backends()[rt.Ring().Owner(key)] == b1.addr() {
			break
		}
	}
	seq := rt.Ring().OwnerSeq(key, nil)
	wantNext := rt.Ring().Backends()[seq[1]]
	b1.Close()
	b1.closed.Store(true)

	resp := postJobs(t, srv.URL, body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d after failover, want 200", resp.StatusCode)
	}
	if hdr := resp.Header.Get(serve.BackendHeader); hdr != wantNext {
		t.Fatalf("failover landed on %q, want next ring owner %q", hdr, wantNext)
	}
	st := rt.Status()
	if st.Counters.Failovers != 1 || st.Counters.ForwardErrors != 1 {
		t.Fatalf("counters %+v, want 1 failover + 1 forward error", st.Counters)
	}
}

func TestRouterBreakerTripsAndSkipsDeadBackend(t *testing.T) {
	b1, b2 := newStubBackend("w1"), newStubBackend("w2")
	defer b1.Close()
	defer b2.Close()
	rt, srv := newTestRouter(t, RouterConfig{
		Breaker: BreakerConfig{ConsecutiveFailures: 2, Cooldown: time.Hour},
	}, b1, b2)

	// b1 answers 503 (draining): a gateway failure that trips its breaker.
	b1.status.Store(http.StatusServiceUnavailable)
	var deadIdx int
	for i, addr := range rt.Ring().Backends() {
		if addr == b1.addr() {
			deadIdx = i
		}
	}
	// Drive submissions owned by b1 until the breaker trips.
	tripped := false
	for seed := uint64(0); seed < 64 && !tripped; seed++ {
		body, key := submitBody(t, seed)
		if rt.Ring().Owner(key) != deadIdx {
			continue
		}
		resp := postJobs(t, srv.URL, body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: status %d (should have failed over)", seed, resp.StatusCode)
		}
		tripped = rt.Breaker(deadIdx).State() == BreakerOpen
	}
	if !tripped {
		t.Fatal("breaker never tripped")
	}

	// With the breaker open, b1 is skipped outright: no new hits.
	before := b1.hits.Load()
	for seed := uint64(0); seed < 16; seed++ {
		body, _ := submitBody(t, 1000+seed)
		resp := postJobs(t, srv.URL, body)
		resp.Body.Close()
	}
	if got := b1.hits.Load(); got != before {
		t.Fatalf("open breaker leaked %d requests to the dead backend", got-before)
	}
	if rt.OpenBreakers() != 1 {
		t.Fatalf("OpenBreakers = %d, want 1", rt.OpenBreakers())
	}
}

func TestRouterBreakerRecovery(t *testing.T) {
	b1, b2 := newStubBackend("w1"), newStubBackend("w2")
	defer b1.Close()
	defer b2.Close()
	rt, srv := newTestRouter(t, RouterConfig{
		Breaker: BreakerConfig{
			ConsecutiveFailures: 1, Cooldown: time.Millisecond,
			HalfOpenProbes: 1, ProbeSuccesses: 1,
		},
	}, b1, b2)

	var deadIdx int
	for i, addr := range rt.Ring().Backends() {
		if addr == b1.addr() {
			deadIdx = i
		}
	}
	b1.status.Store(http.StatusServiceUnavailable)
	var body []byte
	for seed := uint64(0); ; seed++ {
		var key string
		body, key = submitBody(t, seed)
		if rt.Ring().Owner(key) == deadIdx {
			break
		}
	}
	resp := postJobs(t, srv.URL, body)
	resp.Body.Close()
	if rt.Breaker(deadIdx).State() != BreakerOpen {
		t.Fatal("breaker did not trip")
	}

	// Backend heals; after the cooldown one probe goes through, succeeds,
	// and closes the breaker.
	b1.status.Store(0)
	time.Sleep(5 * time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for rt.Breaker(deadIdx).State() != BreakerClosed {
		if time.Now().After(deadline) {
			t.Fatalf("breaker stuck %s after heal", rt.Breaker(deadIdx).State())
		}
		resp := postJobs(t, srv.URL, body)
		resp.Body.Close()
		time.Sleep(2 * time.Millisecond)
	}
}

func TestRouterAdmissionShedsWithRetryAfter(t *testing.T) {
	b1 := newStubBackend("w1")
	defer b1.Close()
	_, srv := newTestRouter(t, RouterConfig{
		Admit: AdmitConfig{Rate: 0.001, Burst: 1},
	}, b1)

	body, _ := submitBody(t, 1)
	resp := postJobs(t, srv.URL, body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first submit status %d", resp.StatusCode)
	}
	resp = postJobs(t, srv.URL, body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After")
	}
	var env struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != CodeShedRateLimit {
		t.Fatalf("error code %q, want %q", env.Error.Code, CodeShedRateLimit)
	}
}

func TestRouterShedMapsToClientErrBusy(t *testing.T) {
	b1 := newStubBackend("w1")
	defer b1.Close()
	_, srv := newTestRouter(t, RouterConfig{
		Admit: AdmitConfig{Rate: 0.001, Burst: 1},
	}, b1)

	cl := &serve.Client{BaseURL: srv.URL}
	ctx := context.Background()
	spec := serve.JobSpec{N: 100, Trials: 1, RValues: []float64{6}}
	if _, err := cl.Submit(ctx, spec, serve.SubmitOptions{}); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	_, err := cl.Submit(ctx, spec, serve.SubmitOptions{})
	var busy *serve.ErrBusy
	if !errors.As(err, &busy) {
		t.Fatalf("router shed surfaced as %T %v, want *serve.ErrBusy", err, err)
	}
	if busy.RetryAfter < time.Second {
		t.Fatalf("ErrBusy.RetryAfter = %s, want >= 1s", busy.RetryAfter)
	}
}

func TestRouterNoBackendAvailable(t *testing.T) {
	b1 := newStubBackend("w1")
	rt, srv := newTestRouter(t, RouterConfig{
		Breaker: BreakerConfig{ConsecutiveFailures: 1, Cooldown: time.Hour},
	}, b1)
	b1.Close()

	body, _ := submitBody(t, 1)
	// First submit fails through to exhaustion and trips the breaker.
	resp := postJobs(t, srv.URL, body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	// Second is refused by the open breaker without an attempt.
	resp = postJobs(t, srv.URL, body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("no-backend 503 missing Retry-After")
	}
	var env struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != CodeNoBackend {
		t.Fatalf("error code %q, want %q", env.Error.Code, CodeNoBackend)
	}
	if rt.Status().Counters.NoBackend == 0 {
		t.Fatal("no_backend counter did not move")
	}
}

func TestRouterBadSubmitBody(t *testing.T) {
	b1 := newStubBackend("w1")
	defer b1.Close()
	_, srv := newTestRouter(t, RouterConfig{}, b1)
	resp, err := http.Post(srv.URL+"/api/v1/jobs", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	if b1.hits.Load() != 0 {
		t.Fatal("malformed submit reached a backend")
	}
}

func TestRouterClusterStatusEndpoint(t *testing.T) {
	b1, b2 := newStubBackend("w1"), newStubBackend("w2")
	defer b1.Close()
	defer b2.Close()
	rt, srv := newTestRouter(t, RouterConfig{}, b1, b2)

	body, _ := submitBody(t, 1)
	resp := postJobs(t, srv.URL, body)
	resp.Body.Close()

	stResp, err := http.Get(srv.URL + "/api/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer stResp.Body.Close()
	if stResp.StatusCode != http.StatusOK {
		t.Fatalf("/api/v1/cluster status %d", stResp.StatusCode)
	}
	var st ClusterStatus
	if err := json.NewDecoder(stResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.Backends) != 2 || st.Ring.Backends != 2 {
		t.Fatalf("status lists %d backends, want 2", len(st.Backends))
	}
	share := 0.0
	for _, b := range st.Backends {
		if b.State != "closed" {
			t.Fatalf("backend %s state %q, want closed", b.Addr, b.State)
		}
		share += b.Share
	}
	if share < 0.999 || share > 1.001 {
		t.Fatalf("keyspace shares sum to %.4f", share)
	}
	if st.Counters.Submits != 1 || st.Counters.Forwarded != 1 {
		t.Fatalf("counters %+v", st.Counters)
	}
	_ = rt
}

func TestRouterMetricsExposition(t *testing.T) {
	b1 := newStubBackend("w1")
	defer b1.Close()
	_, srv := newTestRouter(t, RouterConfig{}, b1)
	body, _ := submitBody(t, 1)
	resp := postJobs(t, srv.URL, body)
	resp.Body.Close()

	mResp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mResp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(mResp.Body)
	out := buf.String()
	for _, family := range []string{
		"netags_cluster_backends 1",
		"netags_cluster_submits_total 1",
		"netags_cluster_forwarded_total 1",
		"netags_cluster_breakers_open 0",
		"netags_cluster_breaker_state{backend=",
		"netags_cluster_shed_total{reason=\"ratelimit\"} 0",
	} {
		if !strings.Contains(out, family) {
			t.Fatalf("/metrics missing %q in:\n%s", family, out)
		}
	}
}

func TestRouterListFanOutMerges(t *testing.T) {
	mkListBackend := func(jobs string) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, `{"jobs":%s}`, jobs)
		}))
	}
	s1 := mkListBackend(`[{"id":"aaa"},{"id":"bbb"}]`)
	s2 := mkListBackend(`[{"id":"ccc"}]`)
	defer s1.Close()
	defer s2.Close()
	u1, _ := url.Parse(s1.URL)
	u2, _ := url.Parse(s2.URL)
	rt, err := NewRouter(RouterConfig{Backends: []string{u1.Host, u2.Host}})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(rt.Handler(httpserve.Options{}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/api/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Jobs []serve.JobStatus `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Jobs) != 3 {
		t.Fatalf("merged %d jobs, want 3", len(out.Jobs))
	}
}

// TestRouterEndToEndRealWorkers proxies a real submission through to real
// serve managers and byte-compares the result against a direct run — the
// in-process version of scripts/cluster_e2e.sh's identity check.
func TestRouterEndToEndRealWorkers(t *testing.T) {
	var workers []string
	for i := 0; i < 2; i++ {
		m := serve.NewManager(serve.Config{Workers: 1})
		srv, err := serve.StartServer("127.0.0.1:0", m, httpserve.Options{}, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		workers = append(workers, srv.Addr())
	}
	rt, err := NewRouter(RouterConfig{Backends: workers})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler(httpserve.Options{}))
	defer front.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	spec := serve.JobSpec{N: 100, Trials: 1, RValues: []float64{6}, Seed: 11}

	// Direct single-node reference.
	ref := serve.NewManager(serve.Config{Workers: 1})
	refSrv, err := serve.StartServer("127.0.0.1:0", ref, httpserve.Options{}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer refSrv.Close()
	refCl := &serve.Client{BaseURL: "http://" + refSrv.Addr()}
	refSub, err := refCl.Submit(ctx, spec, serve.SubmitOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := refCl.Wait(ctx, refSub.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	want, err := refCl.Result(ctx, refSub.ID)
	if err != nil {
		t.Fatal(err)
	}

	// Same spec through the router: submit, await over the proxied stream,
	// fetch the proxied result.
	cl := &serve.Client{BaseURL: front.URL}
	sub, err := cl.Submit(ctx, spec, serve.SubmitOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sub.ID != refSub.ID {
		t.Fatalf("content address differs across paths: %s vs %s", sub.ID, refSub.ID)
	}
	points := 0
	if _, err := cl.Await(ctx, sub.ID, func(serve.PointRecord) { points++ }); err != nil {
		t.Fatalf("await through router: %v", err)
	}
	if points == 0 {
		t.Fatal("proxied stream delivered no points")
	}
	got, err := cl.Result(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("routed result differs from single-node reference:\n%s\nvs\n%s", got, want)
	}
}

// Timeseries integration: the router publishes its counters as a sampler
// source and ships default SLO rules, mirroring what internal/serve does
// for a single worker — the same dashboard, alerts endpoint, and burn-rate
// machinery observe the cluster edge.
package cluster

import (
	"netags/internal/obs/timeseries"
)

// TimeseriesSource adapts the router's counters to a timeseries sampler
// source. Counter series carry the _total suffix (the evaluator's burn
// rules take rates over deltas); gauges are sampled as-is.
func (rt *Router) TimeseriesSource() timeseries.Source {
	return func(rec func(name string, v float64)) {
		st := rt.Status()
		rec("cluster_requests_total", float64(st.Counters.Requests))
		rec("cluster_submits_total", float64(st.Counters.Submits))
		rec("cluster_submits_admitted_total", float64(st.Counters.SubmitsAdmitted))
		rec("cluster_forwarded_total", float64(st.Counters.Forwarded))
		rec("cluster_forward_ok_total", float64(st.Counters.Forwarded))
		rec("cluster_forward_errors_total", float64(st.Counters.ForwardErrors))
		rec("cluster_failovers_total", float64(st.Counters.Failovers))
		rec("cluster_no_backend_total", float64(st.Counters.NoBackend))
		rec("cluster_shed_total", float64(st.Admission.ShedRateLimit+st.Admission.ShedOverload))
		rec("cluster_shed_ratelimit_total", float64(st.Admission.ShedRateLimit))
		rec("cluster_shed_overload_total", float64(st.Admission.ShedOverload))
		rec("cluster_inflight", float64(st.Inflight))
		open, healthy := 0, 0
		for _, b := range st.Backends {
			if b.State == "closed" {
				healthy++
			} else {
				open++
			}
		}
		rec("cluster_breakers_open", float64(open))
		rec("cluster_backends_healthy", float64(healthy))
	}
}

// DefaultSLORules returns the router's alerting policy:
//
//   - cluster_breaker_open: any backend breaker not closed. A threshold
//     rule, not a burn rule — one tripped shard is immediately actionable.
//   - admit_shed_burn: the admitted/submitted ratio burning through a 90%
//     admission objective — sustained shedding, not a momentary spike.
//   - forward_error_burn: forwarding success burning through 99% — the
//     cluster is failing requests faster than the error budget allows.
func DefaultSLORules() []timeseries.Rule {
	return []timeseries.Rule{
		{
			Name:    "cluster_breaker_open",
			Series:  "cluster_breakers_open",
			Op:      ">=",
			Value:   0.5,
			WindowS: 10,
		},
		{
			Name:      "admit_shed_burn",
			Good:      "cluster_submits_admitted_total",
			Total:     "cluster_submits_total",
			Objective: 0.90,
			Burn:      2,
			MinTotal:  5,
			WindowS:   60,
		},
		{
			Name:      "forward_error_burn",
			Good:      "cluster_forward_ok_total",
			Total:     "cluster_forwarded_total",
			Objective: 0.99,
			Burn:      2,
			MinTotal:  10,
			WindowS:   60,
		},
	}
}

package core

import (
	"testing"

	"netags/internal/energy"
)

// TestSessionRoundAllocs pins the session hot paths at exactly zero
// allocations per operation once the arena is warm. Per-SESSION allocations
// (the Result, its meter, the bitmap clone) are deliberately outside the
// measured closures — they happen once per run and are the caller's to keep;
// the per-ROUND and per-checking-frame paths are what a million-tag session
// executes thousands of times and must never touch the allocator.
func TestSessionRoundAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is load-sensitive; skipped in -short")
	}
	nw := diskNetwork(t, 2000, 5, 0xa110c)
	meter := energy.NewMeter(nw.N())

	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"reliable", Config{FrameSize: 128, Seed: 42, Sampling: 0.5}},
		{"lossy", Config{FrameSize: 128, Seed: 42, Sampling: 0.5, LossProb: 0.2, LossSeed: 7}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			if err := cfg.validate(nw); err != nil {
				t.Fatal(err)
			}
			maxRounds := cfg.maxRounds(nw)

			// Warm the arena to its session-wide high-water mark: one
			// complete session sizes every scratch buffer.
			var s session
			s.init(nw, cfg, meter)
			s.seedInitialPicks()
			s.run()

			t.Run("session-rounds", func(t *testing.T) {
				// The full round loop of run(), minus Result assembly.
				allocs := testing.AllocsPerRun(10, func() {
					s.init(nw, cfg, meter)
					s.seedInitialPicks()
					for round := 1; round <= maxRounds; round++ {
						s.runRound(round)
						if !s.runCheckingFrame(round) {
							break
						}
					}
				})
				if allocs != 0 {
					t.Errorf("warm session rounds allocated %v times per run, want 0", allocs)
				}
			})

			t.Run("steady-round", func(t *testing.T) {
				// The session above is drained, so each call is the
				// steady-state round skeleton: CSR fold, monitoring charge,
				// reader bookkeeping, indicator broadcast. The per-round
				// diagnostics are trimmed inside the closure because a real
				// session resets them once per run, not once per round.
				allocs := testing.AllocsPerRun(50, func() {
					s.newBusyPerRound = s.newBusyPerRound[:0]
					s.runRound(1)
				})
				if allocs != 0 {
					t.Errorf("steady round allocated %v times per run, want 0", allocs)
				}
			})

			t.Run("checking-frame", func(t *testing.T) {
				allocs := testing.AllocsPerRun(50, func() {
					s.checkSlotsPerRound = s.checkSlotsPerRound[:0]
					s.runCheckingFrame(1)
				})
				if allocs != 0 {
					t.Errorf("checking frame allocated %v times per run, want 0", allocs)
				}
			})
		})
	}
}

// Package core implements the paper's primary contribution: the
// Collision-resistant Communication Model (CCM, §III and Algorithm 1).
//
// A CCM session collects an f-bit bitmap from a multi-hop network of
// state-free tags. In each round the reader broadcasts a request, tags
// transmit one bit in the slots they must relay, every listening tag treats a
// busy slot as the bit 1 regardless of how many neighbors collided in it, the
// reader broadcasts a cumulative indicator vector to silence already-known
// slots, and a short checking frame decides whether another round is needed.
// Information moves one tier closer to the reader per round, and collisions
// merge data benignly instead of destroying it.
package core

import (
	"fmt"

	"netags/internal/obs"
	"netags/internal/topology"
)

// SlotPicker chooses the slots a tag sets in the information bitmap during
// the first round. tagIdx is the tag's index in the deployment and id its
// 96-bit identifier (truncated to 64 bits). Returning nil means the tag does
// not participate. The picker must be a pure function of its arguments so
// that the reader can reproduce tags' choices (Theorem 1 and TRP prediction
// both depend on this).
type SlotPicker func(tagIdx int, id uint64) []int

// Config parameterizes one CCM session.
type Config struct {
	// FrameSize is f, the number of slots (= bits) in each frame.
	FrameSize int

	// Seed identifies the request; tags hash their ID with it to pick slots.
	Seed uint64

	// Sampling is the participation probability p used by the default
	// single-slot picker (GMLE uses p < 1, TRP uses p = 1). Ignored when
	// Picker is set.
	Sampling float64

	// Picker overrides the default slot choice. Applications that set
	// multiple bits per tag (e.g. Bloom-style tag search) install their own.
	Picker SlotPicker

	// IDs holds per-tag identifiers. If nil, tag i has ID uint64(i)+1.
	IDs []uint64

	// DisableIndicatorVector turns off the §III-D silencing broadcast, for
	// the flooding ablation. The session still terminates (each tag
	// transmits a given slot at most once) but relays far more.
	DisableIndicatorVector bool

	// CheckingFrameLen overrides L_c; 0 means the paper's empirical
	// 2 × (1 + ⌈(R−r')/r⌉) from §III-E.
	CheckingFrameLen int

	// MaxRounds bounds the number of rounds; 0 means L_c, matching
	// Algorithm 1 line 3. Sessions that still have undelivered data at the
	// bound report Truncated.
	MaxRounds int

	// LossProb is the probability that a listener (tag or reader) fails to
	// sense a given busy slot — the unreliable-channel extension. 0 is the
	// paper's reliable model.
	LossProb float64

	// LossSeed seeds the loss process (only used when LossProb > 0).
	LossSeed uint64

	// Trace, if non-nil, receives one RoundTrace after each round's
	// checking frame — the live view of the tier-by-tier convergence.
	Trace func(RoundTrace)

	// Tracer, if non-nil, receives the session's structured event stream
	// (session_start, frame, indicator, check, round, session_end). Tracers
	// are observe-only: attaching one never changes the simulation, and a
	// nil Tracer costs nothing (see BenchmarkSessionTracer).
	Tracer obs.Tracer

	// Reader labels emitted events with the session's reader index, for
	// multi-reader runs and concurrent sweeps sharing one tracer. It does
	// not affect the simulation.
	Reader int
}

// RoundTrace describes one completed CCM round for observers.
type RoundTrace struct {
	// Round is 1-based.
	Round int
	// Transmitters is the number of tags that transmitted in the frame.
	Transmitters int
	// BitsSent is the number of frame bits transmitted this round.
	BitsSent int
	// NewBusy is the number of slots the reader first saw busy this round
	// (the information wave arriving from one more tier out).
	NewBusy int
	// KnownBusy is the reader's cumulative busy count.
	KnownBusy int
	// CheckSlots is the number of checking-frame slots executed.
	CheckSlots int
	// MorePending reports whether the checking frame found in-flight data
	// (i.e. another round follows).
	MorePending bool
}

func (c Config) validate(nw *topology.Network) error {
	if c.FrameSize <= 0 {
		return fmt.Errorf("core: frame size must be positive, got %d", c.FrameSize)
	}
	if c.Picker == nil && (c.Sampling < 0 || c.Sampling > 1) {
		return fmt.Errorf("core: sampling probability %v outside [0,1]", c.Sampling)
	}
	if c.IDs != nil && len(c.IDs) != nw.N() {
		return fmt.Errorf("core: %d IDs for %d tags", len(c.IDs), nw.N())
	}
	if c.LossProb < 0 || c.LossProb >= 1 {
		if c.LossProb != 0 {
			return fmt.Errorf("core: loss probability %v outside [0,1)", c.LossProb)
		}
	}
	if c.CheckingFrameLen < 0 || c.MaxRounds < 0 {
		return fmt.Errorf("core: negative frame length or round bound")
	}
	return nil
}

// id returns the identifier of tag i under the config.
func (c Config) id(i int) uint64 {
	if c.IDs != nil {
		return c.IDs[i]
	}
	return uint64(i) + 1
}

// checkingFrameLen resolves L_c for the given network.
func (c Config) checkingFrameLen(nw *topology.Network) int {
	if c.CheckingFrameLen > 0 {
		return c.CheckingFrameLen
	}
	return nw.Ranges.CheckingFrameLen()
}

// maxRounds resolves the round bound for the given network.
func (c Config) maxRounds(nw *topology.Network) int {
	if c.MaxRounds > 0 {
		return c.MaxRounds
	}
	return c.checkingFrameLen(nw)
}

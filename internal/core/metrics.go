package core

import "netags/internal/obs"

// MetricsFor builds an obs.Metrics snapshot from the completed session,
// restricting the per-tag bit distributions to tags for which include
// returns true (nil means all; callers typically pass a reachability
// filter, matching the paper's in-system statistics). Building metrics is
// on-demand and costs nothing during the session itself.
func (r *Result) MetricsFor(include func(i int) bool) obs.Metrics {
	var m obs.Metrics
	m.Sessions = 1
	m.Rounds = int64(r.Rounds)
	if r.Truncated {
		m.TruncatedSessions = 1
	}
	m.ShortSlots = r.Clock.ShortSlots
	m.LongSlots = r.Clock.LongSlots
	if r.Bitmap != nil {
		m.BusySlots = int64(r.Bitmap.Count())
	}
	for _, nb := range r.NewBusyPerRound {
		m.Waves.Observe(int64(nb))
	}
	for _, cs := range r.CheckSlotsPerRound {
		m.CheckSlots.Observe(int64(cs))
	}
	if r.Meter != nil {
		m.AddMeter(r.Meter, include)
	}
	return m
}

// Metrics is MetricsFor over every tag.
func (r *Result) Metrics() obs.Metrics { return r.MetricsFor(nil) }

package core

import (
	"fmt"

	"netags/internal/bitmap"
	"netags/internal/energy"
	"netags/internal/geom"
	"netags/internal/obs"
	"netags/internal/topology"
)

// MultiResult reports a multi-reader session (§III-G).
type MultiResult struct {
	// Bitmap is B = B_1 | B_2 | … | B_M (eq. (1)).
	Bitmap *bitmap.Bitmap
	// PerReader holds each reader's individual session result.
	PerReader []*Result
	// Clock is the total air time: the readers run round-robin, each in its
	// own window, so windows add up.
	Clock energy.Clock
	// Meter is the per-tag energy summed over every window a tag
	// participated in.
	Meter *energy.Meter
}

// RunMultiSession executes one CCM session per reader of the deployment,
// round-robin (the paper's conservative schedule that always avoids
// reader-to-reader collisions), and combines the bitmaps with bitwise OR.
// All sessions share the config; the deployment must have ≥ 1 reader.
func RunMultiSession(d *geom.Deployment, rg topology.Ranges, cfg Config) (*MultiResult, error) {
	if len(d.Readers) == 0 {
		return nil, fmt.Errorf("core: deployment has no readers")
	}
	if cfg.FrameSize <= 0 {
		return nil, fmt.Errorf("core: frame size must be positive, got %d", cfg.FrameSize)
	}
	mr := &MultiResult{
		Bitmap: bitmap.New(cfg.FrameSize),
		Meter:  energy.NewMeter(d.N()),
	}
	for ri := range d.Readers {
		nw, err := topology.Build(d, ri, rg)
		if err != nil {
			return nil, fmt.Errorf("reader %d: %w", ri, err)
		}
		rcfg := cfg
		rcfg.Reader = ri
		res, err := RunSession(nw, rcfg)
		if err != nil {
			return nil, fmt.Errorf("reader %d: %w", ri, err)
		}
		mr.PerReader = append(mr.PerReader, res)
		mr.Bitmap.Or(res.Bitmap)
		mr.Clock.Add(res.Clock)
		if err := mr.Meter.Merge(res.Meter); err != nil {
			return nil, fmt.Errorf("reader %d: %w", ri, err)
		}
		if t := cfg.Tracer; t != nil {
			t.Trace(obs.Event{
				Kind:      obs.KindReaderMerge,
				Protocol:  obs.ProtoCCM,
				Reader:    ri,
				Count:     res.Bitmap.Count(),
				KnownBusy: mr.Bitmap.Count(),
				Rounds:    res.Rounds,
			})
		}
	}
	return mr, nil
}

package core

import (
	"testing"

	"netags/internal/geom"
	"netags/internal/topology"
)

func TestMultiReaderCombinesBitmaps(t *testing.T) {
	// Two readers far apart, each with its own chain of tags; neither
	// reader alone covers both chains.
	d := &geom.Deployment{
		Tags: []geom.Point{
			{X: -45}, {X: -40}, // reachable only from reader 0 at -60
			{X: 45}, {X: 40}, // reachable only from reader 1 at +60
		},
		Readers: []geom.Point{{X: -60}, {X: 60}},
		Radius:  70,
	}
	rg := topology.Ranges{ReaderToTag: 30, TagToReader: 20, TagToTag: 6}
	cfg := Config{
		FrameSize: 16,
		Picker:    fixedPicker(map[int][]int{0: {1}, 1: {2}, 2: {3}, 3: {4}}),
	}
	mr, err := RunMultiSession(d, rg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, slot := range []int{1, 2, 3, 4} {
		if !mr.Bitmap.Get(slot) {
			t.Errorf("slot %d missing from combined bitmap", slot)
		}
	}
	if len(mr.PerReader) != 2 {
		t.Fatalf("per-reader results = %d, want 2", len(mr.PerReader))
	}
	// Each reader alone sees only its side.
	if mr.PerReader[0].Bitmap.Get(3) || mr.PerReader[1].Bitmap.Get(1) {
		t.Error("a reader saw bits from the other reader's side")
	}
	// Round-robin windows add up.
	wantClock := mr.PerReader[0].Clock
	wantClock.Add(mr.PerReader[1].Clock)
	if mr.Clock != wantClock {
		t.Errorf("clock = %+v, want %+v", mr.Clock, wantClock)
	}
}

func TestMultiReaderMatchesEquationOne(t *testing.T) {
	// B must equal B_1 | B_2 (eq. (1)) even when coverages overlap.
	d := geom.NewUniformDiskMultiReader(800, 30, []geom.Point{{X: -5}, {X: 5}}, 31)
	rg := topology.PaperRanges(5)
	cfg := Config{FrameSize: 256, Seed: 2, Sampling: 1}
	mr, err := RunMultiSession(d, rg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := mr.PerReader[0].Bitmap.Clone()
	want.Or(mr.PerReader[1].Bitmap)
	if !mr.Bitmap.Equal(want) {
		t.Fatal("combined bitmap is not the OR of per-reader bitmaps")
	}
}

func TestMultiReaderErrors(t *testing.T) {
	d := &geom.Deployment{Radius: 30}
	if _, err := RunMultiSession(d, topology.PaperRanges(6), Config{FrameSize: 8}); err == nil {
		t.Error("deployment without readers accepted")
	}
	d2 := geom.NewUniformDisk(10, 30, 1)
	if _, err := RunMultiSession(d2, topology.PaperRanges(6), Config{FrameSize: 0}); err == nil {
		t.Error("zero frame size accepted")
	}
	if _, err := RunMultiSession(d2, topology.Ranges{}, Config{FrameSize: 8}); err == nil {
		t.Error("invalid ranges accepted")
	}
}

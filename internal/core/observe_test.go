package core

import (
	"bytes"
	"encoding/json"
	"io"
	"testing"

	"netags/internal/obs"
)

// TestTracerObserveOnly is the golden test of the observability contract:
// attaching any tracer — in-memory or JSONL — leaves every reported number
// byte-identical to the untraced run.
func TestTracerObserveOnly(t *testing.T) {
	nw := diskNetwork(t, 400, 6, 7)
	base := Config{FrameSize: 128, Seed: 11}

	bare, err := RunSession(nw, base)
	if err != nil {
		t.Fatal(err)
	}

	mem := obs.NewMemory()
	memCfg := base
	memCfg.Tracer = mem
	var buf bytes.Buffer
	jl := obs.NewJSONL(&buf)
	jlCfg := base
	jlCfg.Tracer = jl

	for name, cfg := range map[string]Config{"memory": memCfg, "jsonl": jlCfg} {
		got, err := RunSession(nw, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !got.Bitmap.Equal(bare.Bitmap) {
			t.Errorf("%s: bitmap differs from untraced run", name)
		}
		if got.Rounds != bare.Rounds || got.Truncated != bare.Truncated {
			t.Errorf("%s: rounds/truncated = %d/%v, want %d/%v",
				name, got.Rounds, got.Truncated, bare.Rounds, bare.Truncated)
		}
		if got.Clock != bare.Clock {
			t.Errorf("%s: clock = %+v, want %+v", name, got.Clock, bare.Clock)
		}
		for i := 0; i < got.Meter.N(); i++ {
			if got.Meter.Sent(i) != bare.Meter.Sent(i) || got.Meter.Received(i) != bare.Meter.Received(i) {
				t.Fatalf("%s: tag %d meter differs", name, i)
			}
		}
		for i := range bare.NewBusyPerRound {
			if got.NewBusyPerRound[i] != bare.NewBusyPerRound[i] {
				t.Errorf("%s: NewBusyPerRound[%d] differs", name, i)
			}
			if got.CheckSlotsPerRound[i] != bare.CheckSlotsPerRound[i] {
				t.Errorf("%s: CheckSlotsPerRound[%d] differs", name, i)
			}
		}
	}

	if err := jl.Err(); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) < bare.Rounds+2 {
		t.Fatalf("JSONL trace has %d lines, want at least %d", len(lines), bare.Rounds+2)
	}
	for i, line := range lines {
		if !json.Valid(line) {
			t.Fatalf("JSONL line %d is not valid JSON: %s", i+1, line)
		}
	}

	// The event stream itself must agree with the result: one round event
	// per round, and the session_end carries the final busy count.
	kinds := mem.Kinds()
	if kinds[obs.KindRound] != bare.Rounds {
		t.Errorf("traced %d round events, want %d", kinds[obs.KindRound], bare.Rounds)
	}
	if kinds[obs.KindSessionStart] != 1 || kinds[obs.KindSessionEnd] != 1 {
		t.Errorf("session bracket events = %d/%d, want 1/1",
			kinds[obs.KindSessionStart], kinds[obs.KindSessionEnd])
	}
	events := mem.Events()
	last := events[len(events)-1]
	if last.Kind != obs.KindSessionEnd || last.KnownBusy != bare.Bitmap.Count() {
		t.Errorf("session_end known_busy = %d, want %d", last.KnownBusy, bare.Bitmap.Count())
	}
}

// TestResultRoundInvariants pins the per-round diagnostics: under a reliable
// channel every busy slot is reported exactly once, so the per-round waves
// sum to the final bitmap population, and both slices cover every round.
func TestResultRoundInvariants(t *testing.T) {
	for _, tc := range []struct {
		name string
		n    int
		r    float64
		seed uint64
	}{
		{"sparse", 200, 4, 3},
		{"dense", 800, 8, 5},
	} {
		t.Run(tc.name, func(t *testing.T) {
			nw := diskNetwork(t, tc.n, tc.r, tc.seed)
			res, err := RunSession(nw, Config{FrameSize: 256, Seed: tc.seed})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.NewBusyPerRound) != res.Rounds {
				t.Fatalf("len(NewBusyPerRound) = %d, want Rounds = %d",
					len(res.NewBusyPerRound), res.Rounds)
			}
			if len(res.CheckSlotsPerRound) != res.Rounds {
				t.Fatalf("len(CheckSlotsPerRound) = %d, want Rounds = %d",
					len(res.CheckSlotsPerRound), res.Rounds)
			}
			sum := 0
			for _, w := range res.NewBusyPerRound {
				if w < 0 {
					t.Fatalf("negative wave %d", w)
				}
				sum += w
			}
			if sum != res.Bitmap.Count() {
				t.Fatalf("waves sum to %d, bitmap has %d busy slots", sum, res.Bitmap.Count())
			}
			for i, c := range res.CheckSlotsPerRound {
				if c < 1 {
					t.Fatalf("round %d executed %d checking slots, want >= 1", i+1, c)
				}
			}
		})
	}
}

// TestResultMetrics checks the Result-to-Metrics bridge against the same
// invariants.
func TestResultMetrics(t *testing.T) {
	nw := diskNetwork(t, 300, 6, 9)
	res, err := RunSession(nw, Config{FrameSize: 128, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics()
	if m.Sessions != 1 || m.Rounds != int64(res.Rounds) {
		t.Fatalf("metrics sessions/rounds = %d/%d, want 1/%d", m.Sessions, m.Rounds, res.Rounds)
	}
	if m.BusySlots != int64(res.Bitmap.Count()) {
		t.Fatalf("metrics busy slots = %d, want %d", m.BusySlots, res.Bitmap.Count())
	}
	if m.Waves.Sum != int64(res.Bitmap.Count()) {
		t.Fatalf("waves histogram sums to %d, want %d", m.Waves.Sum, res.Bitmap.Count())
	}
	if m.TotalSlots() != res.Clock.Total() {
		t.Fatalf("metrics slots = %d, want %d", m.TotalSlots(), res.Clock.Total())
	}
}

// BenchmarkSessionTracer measures the tracing overhead: the nil-tracer run
// must stay within noise of the pre-observability hot path (the ≤2%
// contract), and the JSONL run bounds the cost of full tracing.
func BenchmarkSessionTracer(b *testing.B) {
	d := diskNetwork(b, 1000, 6, 7)
	for _, bc := range []struct {
		name   string
		tracer obs.Tracer
	}{
		{"nil", nil},
		{"jsonl", obs.NewJSONL(io.Discard)},
	} {
		b.Run(bc.name, func(b *testing.B) {
			cfg := Config{FrameSize: 512, Seed: 3, Tracer: bc.tracer}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := RunSession(d, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

package core

import (
	"netags/internal/bitmap"
	"netags/internal/topology"
)

// DirectBitmap computes the status bitmap a traditional RFID system would
// produce if every reachable tag sat in the reader's direct neighborhood:
// the OR of all tags' slot picks. Theorem 1 states that a CCM session yields
// exactly this bitmap; the test suite holds RunSession to it, and the
// estimator/detector packages use it as the semantic ground truth.
func DirectBitmap(nw *topology.Network, cfg Config) (*bitmap.Bitmap, error) {
	if err := cfg.validate(nw); err != nil {
		return nil, err
	}
	return directBitmap(nw, cfg), nil
}

func directBitmap(nw *topology.Network, cfg Config) *bitmap.Bitmap {
	b := bitmap.New(cfg.FrameSize)
	pick := cfg.Picker
	if pick == nil {
		pick = defaultPicker(cfg)
	}
	for i := 0; i < nw.N(); i++ {
		if nw.Tier[i] == 0 {
			continue
		}
		for _, slot := range pick(i, cfg.id(i)) {
			if slot >= 0 && slot < cfg.FrameSize {
				b.Set(slot)
			}
		}
	}
	return b
}

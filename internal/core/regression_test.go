package core

import (
	"testing"

	"netags/internal/geom"
	"netags/internal/topology"
)

// TestRegressionSeed0xda53caa1dd258d4 is the minimized repro of the first
// bug the simtest property harness surfaced (replay the original with
// simtest.NewScenario(0xda53caa1dd258d4), property CCMOutOfSystemTagsInert):
// tags with Tier == 0 are outside the system per §II, but the session still
// treated them as listeners — they were charged monitoring and
// indicator-vector energy every round, joined checking frames, and, when
// they sat within tag-to-tag range of reachable tags (possible as soon as a
// deployment spills past the reader's broadcast range R), even transmitted
// as phantom relays. The minimized topologies below pin the fixed behavior.
func TestRegressionSeed0xda53caa1dd258d4(t *testing.T) {
	t.Run("in-fov disconnected tag is uncharged", func(t *testing.T) {
		// Tag 0 is tier 1; tag 1 sits inside the field of view (25 < R=30)
		// but beyond r' = 20 and beyond r = 6 of tag 0: tier 0.
		d := &geom.Deployment{
			Tags:    []geom.Point{{X: 19}, {X: -25}},
			Readers: []geom.Point{{}},
			Radius:  30,
		}
		nw, err := topology.Build(d, 0, topology.PaperRanges(6))
		if err != nil {
			t.Fatal(err)
		}
		if nw.Tier[1] != 0 {
			t.Fatalf("fixture broken: tag 1 tier %d, want 0", nw.Tier[1])
		}
		res, err := RunSession(nw, Config{FrameSize: 128, Seed: 9, Sampling: 1})
		if err != nil {
			t.Fatal(err)
		}
		if s, r := res.Meter.Sent(1), res.Meter.Received(1); s != 0 || r != 0 {
			t.Errorf("out-of-system tag metered sent=%d recv=%d, want 0/0", s, r)
		}
	})

	t.Run("out-of-fov tag never phantom-relays", func(t *testing.T) {
		// A relay chain at x = 19, 24, 29 plus a tag at x = 34: outside the
		// broadcast range R = 30 (it can never hear the request) yet within
		// r = 6 of the chain's tail. Before the fix it transmitted relayed
		// slots and skewed the air-time clock; deleting it must change
		// nothing.
		d := &geom.Deployment{
			Tags:    []geom.Point{{X: 19}, {X: 24}, {X: 29}, {X: 34}},
			Readers: []geom.Point{{}},
			Radius:  40,
		}
		nw, err := topology.Build(d, 0, topology.PaperRanges(6))
		if err != nil {
			t.Fatal(err)
		}
		if nw.Tier[3] != 0 {
			t.Fatalf("fixture broken: tag 3 tier %d, want 0", nw.Tier[3])
		}
		cfg := Config{FrameSize: 8, Seed: 1, Sampling: 1, MaxRounds: 16, CheckingFrameLen: 16}
		res, err := RunSession(nw, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if s, r := res.Meter.Sent(3), res.Meter.Received(3); s != 0 || r != 0 {
			t.Errorf("out-of-fov tag metered sent=%d recv=%d, want 0/0", s, r)
		}

		trimmed, _ := d.Remove([]int{3})
		tnw, err := topology.Build(trimmed, 0, topology.PaperRanges(6))
		if err != nil {
			t.Fatal(err)
		}
		tres, err := RunSession(tnw, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !tres.Bitmap.Equal(res.Bitmap) || tres.Rounds != res.Rounds ||
			tres.Clock != res.Clock || tres.Truncated != res.Truncated {
			t.Errorf("deleting the out-of-fov tag changed the session: rounds %d→%d clock %+v→%+v",
				res.Rounds, tres.Rounds, res.Clock, tres.Clock)
		}
	})
}

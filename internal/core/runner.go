package core

import (
	"netags/internal/energy"
	"netags/internal/topology"
)

// Runner executes CCM sessions while retaining every piece of per-session
// scratch — the slot-state matrix, the CSR transmit view, the checking-frame
// wave buffers, the reader bitmaps — between runs. After the first session
// over a deployment of a given size, subsequent sessions of similar shape
// allocate only their Result (bitmap clone, meter, diagnostic copies); the
// per-round hot path allocates nothing at all (TestSessionRoundAllocs).
//
// A Runner is not safe for concurrent use; pool one per worker (see
// internal/experiment). Results are fully owned by the caller and remain
// valid after the Runner moves on to its next session, so pooling never
// constrains result lifetime.
type Runner struct {
	s session
}

// NewRunner returns an empty Runner. The arena is sized lazily by the first
// Run.
func NewRunner() *Runner {
	return &Runner{}
}

// Run executes one CCM session (Algorithm 1) over the network, reusing the
// Runner's scratch arena. It is behaviorally identical to RunSession —
// byte-identical Results for the same inputs, pinned by the simtest golden
// and no-state-bleed tests.
func (r *Runner) Run(nw *topology.Network, cfg Config) (*Result, error) {
	if err := cfg.validate(nw); err != nil {
		return nil, err
	}
	r.s.init(nw, cfg, energy.NewMeter(nw.N()))
	r.s.seedInitialPicks()
	return r.s.run(), nil
}

package core

import (
	"math"
	"sync"
	"testing"

	"netags/internal/geom"
	"netags/internal/topology"
)

// scaleNetworks caches built networks per size: `make bench` runs every
// benchmark function -count times, and rebuilding the million-tag adjacency
// (~4×10^7 edges) per count would dwarf the measured sessions. Networks are
// read-only during sessions, so sharing is safe.
var scaleNetworks sync.Map // n -> *topology.Network

// scaleNetwork builds a constant-density deployment: the disk area grows
// with n, so every size has the same local structure (~44 tag neighbors,
// ~11 tiers, L_c = 22). Benchmarks across sizes then measure how the kernel
// scales, not how the topology changes shape.
func scaleNetwork(tb testing.TB, n int) *topology.Network {
	tb.Helper()
	if v, ok := scaleNetworks.Load(n); ok {
		return v.(*topology.Network)
	}
	radius := 300 * math.Sqrt(float64(n)/1e6)
	d := geom.NewUniformDisk(n, radius, 0x5ca1e)
	nw, err := topology.Build(d, 0, topology.Ranges{
		ReaderToTag: radius,
		TagToReader: radius - 20,
		TagToTag:    2,
	})
	if err != nil {
		tb.Fatal(err)
	}
	scaleNetworks.Store(n, nw)
	return nw
}

// scaleConfig is the session shape used by the scale benchmarks and the
// simtest scale tier. Sampling scales inversely with n (~200 participating
// tags at every size) so the frame never saturates in round 1: ~26 of the
// sources sit in the outer ring, and their bits must relay tier by tier,
// which keeps the multi-round delivery path honest at every size.
func scaleConfig(n int) Config {
	return Config{FrameSize: 256, Seed: 9, Sampling: 200 / float64(n)}
}

func benchmarkSessionN(b *testing.B, n int) {
	nw := scaleNetwork(b, n)
	cfg := scaleConfig(n)
	r := NewRunner()
	// Warm the arena so the measured iterations are the steady state a
	// long-running sweep sees.
	if _, err := r.Run(nw, cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Run(nw, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Truncated {
			b.Fatal("scale session truncated; benchmark config no longer drains")
		}
	}
}

func BenchmarkSessionN1e4(b *testing.B) { benchmarkSessionN(b, 1e4) }
func BenchmarkSessionN1e5(b *testing.B) { benchmarkSessionN(b, 1e5) }
func BenchmarkSessionN1e6(b *testing.B) { benchmarkSessionN(b, 1e6) }

// BenchmarkRunnerReuse alternates two differently shaped configs (lossy and
// reliable, different seeds) through one Runner — the sweep-worker pattern —
// to pin the cost of arena re-initialization between heterogeneous sessions.
func BenchmarkRunnerReuse(b *testing.B) {
	nw := scaleNetwork(b, 1e4)
	cfgs := [2]Config{
		{FrameSize: 64, Seed: 9, Sampling: 0.001},
		{FrameSize: 64, Seed: 10, Sampling: 0.002, LossProb: 0.1, LossSeed: 3},
	}
	r := NewRunner()
	for _, cfg := range cfgs {
		if _, err := r.Run(nw, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(nw, cfgs[i%2]); err != nil {
			b.Fatal(err)
		}
	}
}

package core

import (
	"netags/internal/bitmap"
	"netags/internal/energy"
	"netags/internal/obs"
	"netags/internal/prng"
	"netags/internal/topology"
)

// Per-slot, per-tag state over the frame. A slot advances
// unknown → scheduled → transmitted, or is forced to silenced by the
// indicator vector at any point before transmission.
const (
	slotUnknown     uint8 = iota // tag listens here
	slotScheduled                // tag will transmit here next frame
	slotTransmitted              // tag already transmitted here; sleeps
	slotSilenced                 // reader announced the slot busy; sleeps
)

// Result reports everything a CCM session produced.
type Result struct {
	// Bitmap is the final information bitmap B (Algorithm 1's output).
	Bitmap *bitmap.Bitmap
	// Rounds is the number of full rounds executed.
	Rounds int
	// Clock is the session's execution time in slots.
	Clock energy.Clock
	// Meter holds per-tag energy (bits sent / received).
	Meter *energy.Meter
	// Truncated reports that the session ended with data still pending —
	// either the round bound was hit or the checking frame was too short
	// for the network's true tier count.
	Truncated bool
	// NewBusyPerRound[i] is the number of slots first reported busy to the
	// reader in round i+1 (diagnostic: the per-tier information waves).
	NewBusyPerRound []int
	// CheckSlotsPerRound[i] is the number of checking-frame slots executed
	// after round i+1.
	CheckSlotsPerRound []int
}

// session carries the mutable state of one run.
type session struct {
	nw  *topology.Network
	cfg Config
	f   int

	// state is the n×f slot-state matrix, row-major.
	state []uint8
	// scheduled[i] lists tag i's slots in state slotScheduled. Entries whose
	// state has moved on (silenced) are skipped when the list is drained.
	scheduled [][]int32
	// schedCount[i] is the number of state==slotScheduled entries of tag i,
	// i.e. whether the tag needs to transmit next round.
	schedCount []int32
	// unknownCount[i] is the number of state==slotUnknown slots of tag i,
	// i.e. how many slots it monitors per frame.
	unknownCount []int32
	// tier1 marks tags the reader can hear directly.
	tier1 []bool

	meter *energy.Meter
	clock energy.Clock

	// reader-side bitmaps
	known     *bitmap.Bitmap // V: all slots the reader knows are busy
	roundBusy *bitmap.Bitmap // busy slots heard by the reader this round

	loss *prng.Source // nil when the channel is reliable
}

// RunSession executes one CCM session (Algorithm 1) over the network.
func RunSession(nw *topology.Network, cfg Config) (*Result, error) {
	if err := cfg.validate(nw); err != nil {
		return nil, err
	}
	n := nw.N()
	s := &session{
		nw:           nw,
		cfg:          cfg,
		f:            cfg.FrameSize,
		state:        make([]uint8, n*cfg.FrameSize),
		scheduled:    make([][]int32, n),
		schedCount:   make([]int32, n),
		unknownCount: make([]int32, n),
		tier1:        make([]bool, n),
		meter:        energy.NewMeter(n),
		known:        bitmap.New(cfg.FrameSize),
		roundBusy:    bitmap.New(cfg.FrameSize),
	}
	if cfg.LossProb > 0 {
		s.loss = prng.New(cfg.LossSeed)
	}
	for i := 0; i < n; i++ {
		if nw.Tier[i] == 0 {
			// Tags that cannot reach the reader are outside the system
			// (§II) — out of the field of view they never hear the request,
			// and either way their data can never arrive. They hold no slot
			// state, never listen or relay, and consume no energy (the same
			// boundary sicp draws with its asleep set). Silencing their
			// whole row keeps the delivery loop branch-free.
			row := s.state[i*s.f : (i+1)*s.f]
			for j := range row {
				row[j] = slotSilenced
			}
			continue
		}
		s.unknownCount[i] = int32(s.f)
		s.tier1[i] = nw.Tier[i] == 1
	}
	s.seedInitialPicks()
	return s.run(), nil
}

// dropped reports whether a reception event is lost on the unreliable
// channel.
func (s *session) dropped() bool {
	return s.loss != nil && s.loss.Float64() < s.cfg.LossProb
}

// defaultPicker is the single-slot sampled choice of §IV/§V: participate
// with probability p, then hash ID and seed into one slot.
func defaultPicker(cfg Config) SlotPicker {
	seed, p, f := cfg.Seed, cfg.Sampling, cfg.FrameSize
	return func(_ int, id uint64) []int {
		if !prng.Participates(id, seed, p) {
			return nil
		}
		return []int{prng.SlotOf(id, seed, f)}
	}
}

// seedInitialPicks applies the slot picker: round 1 is the only round in
// which tags originate information (§III-C line 7).
func (s *session) seedInitialPicks() {
	pick := s.cfg.Picker
	if pick == nil {
		pick = defaultPicker(s.cfg)
	}
	for i := 0; i < s.nw.N(); i++ {
		if s.nw.Tier[i] == 0 {
			// Tags that cannot reach the reader are outside the system
			// (§II); in the paper's setting they also sit beyond every
			// neighbor, so they stay silent.
			continue
		}
		for _, slot := range pick(i, s.cfg.id(i)) {
			if slot < 0 || slot >= s.f {
				continue
			}
			if s.mark(i, slot, slotScheduled) {
				s.scheduled[i] = append(s.scheduled[i], int32(slot))
			}
		}
	}
}

// mark transitions tag i's slot to the given state if the slot is currently
// unknown, maintaining the counters. It reports whether the transition
// happened.
func (s *session) mark(i, slot int, st uint8) bool {
	idx := i*s.f + slot
	if s.state[idx] != slotUnknown {
		return false
	}
	s.state[idx] = st
	s.unknownCount[i]--
	if st == slotScheduled {
		s.schedCount[i]++
	}
	return true
}

func (s *session) run() *Result {
	res := &Result{Meter: s.meter}
	if t := s.cfg.Tracer; t != nil {
		t.Trace(obs.Event{
			Kind:      obs.KindSessionStart,
			Protocol:  obs.ProtoCCM,
			Reader:    s.cfg.Reader,
			FrameSize: s.f,
			Tags:      s.nw.N(),
			Tiers:     s.nw.K,
			Seed:      s.cfg.Seed,
		})
	}
	maxRounds := s.cfg.maxRounds(s.nw)
	for round := 1; round <= maxRounds; round++ {
		txTags, txBits := s.runRound(res, round)
		res.Rounds = round
		more := s.runCheckingFrame(res, round)
		if s.cfg.Trace != nil {
			s.cfg.Trace(RoundTrace{
				Round:        round,
				Transmitters: txTags,
				BitsSent:     txBits,
				NewBusy:      res.NewBusyPerRound[round-1],
				KnownBusy:    s.known.Count(),
				CheckSlots:   res.CheckSlotsPerRound[round-1],
				MorePending:  more,
			})
		}
		if t := s.cfg.Tracer; t != nil {
			t.Trace(obs.Event{
				Kind:         obs.KindRound,
				Protocol:     obs.ProtoCCM,
				Reader:       s.cfg.Reader,
				Round:        round,
				Transmitters: txTags,
				Bits:         int64(txBits),
				NewBusy:      res.NewBusyPerRound[round-1],
				KnownBusy:    s.known.Count(),
				CheckSlots:   res.CheckSlotsPerRound[round-1],
				Pending:      more,
			})
		}
		if !more {
			break // nothing pending anywhere the reader could hear
		}
	}
	res.Clock = s.clock
	res.Bitmap = s.known.Clone()
	for i := range s.schedCount {
		if s.schedCount[i] > 0 {
			res.Truncated = true
			break
		}
	}
	if t := s.cfg.Tracer; t != nil {
		sum := s.meter.Summarize(nil)
		t.Trace(obs.Event{
			Kind:        obs.KindSessionEnd,
			Protocol:    obs.ProtoCCM,
			Reader:      s.cfg.Reader,
			Rounds:      res.Rounds,
			KnownBusy:   res.Bitmap.Count(),
			ShortSlots:  res.Clock.ShortSlots,
			LongSlots:   res.Clock.LongSlots,
			Truncated:   res.Truncated,
			AvgSentBits: sum.AvgSent,
			AvgRecvBits: sum.AvgReceived,
			MaxSentBits: sum.MaxSent,
			MaxRecvBits: sum.MaxReceived,
		})
	}
	return res
}

// runRound executes the request broadcast, the f-slot frame, and the
// indicator-vector broadcast of one round. It returns the number of
// transmitting tags and the frame bits they sent (for tracing).
func (s *session) runRound(res *Result, round int) (txTags, txBits int) {
	n := s.nw.N()

	// Reader request broadcast: one 96-bit reader slot. (The paper's energy
	// model, eq. (11), does not charge tags for receiving it; we follow
	// suit, but it does occupy air time.)
	s.clock.LongSlots++

	// Capture this round's transmissions: every scheduled slot becomes a
	// transmitted slot. Slots silenced since they were scheduled are
	// dropped without cost.
	tx := make([][]int32, n)
	for i := 0; i < n; i++ {
		if len(s.scheduled[i]) == 0 {
			continue
		}
		keep := s.scheduled[i][:0]
		for _, slot := range s.scheduled[i] {
			idx := i*s.f + int(slot)
			if s.state[idx] == slotScheduled {
				s.state[idx] = slotTransmitted
				s.schedCount[i]--
				keep = append(keep, slot)
			}
		}
		tx[i] = keep
		s.scheduled[i] = nil
	}

	// Monitoring charge: a tag stays awake for exactly its unknown slots
	// (§III-D: it sleeps in transmitted and silenced slots, and is busy
	// transmitting in scheduled ones).
	for i := 0; i < n; i++ {
		s.meter.AddReceived(i, int64(s.unknownCount[i]))
	}

	// Deliver transmissions. A listener senses a busy slot iff it is
	// monitoring that slot (half duplex: a tag transmitting in the slot is
	// not). Collisions are benign: the first delivery marks the slot, later
	// deliveries find it already marked.
	s.roundBusy.Reset()
	for i := 0; i < n; i++ {
		if len(tx[i]) == 0 {
			continue
		}
		txTags++
		txBits += len(tx[i])
		s.meter.AddSent(i, int64(len(tx[i])))
		neighbors := s.nw.Neighbors(i)
		for _, slot := range tx[i] {
			for _, v := range neighbors {
				idx := int(v)*s.f + int(slot)
				if s.state[idx] != slotUnknown || s.dropped() {
					continue
				}
				s.state[idx] = slotScheduled
				s.unknownCount[v]--
				s.schedCount[v]++
				s.scheduled[v] = append(s.scheduled[v], slot)
			}
			if s.tier1[i] && !s.roundBusy.Get(int(slot)) && !s.dropped() {
				s.roundBusy.Set(int(slot))
			}
		}
	}
	s.clock.ShortSlots += int64(s.f)

	// Record what the reader learned this round.
	newBusy := s.roundBusy.Clone()
	newBusy.AndNot(s.known)
	res.NewBusyPerRound = append(res.NewBusyPerRound, newBusy.Count())
	s.known.Or(s.roundBusy)

	if t := s.cfg.Tracer; t != nil {
		t.Trace(obs.Event{
			Kind:         obs.KindFrame,
			Protocol:     obs.ProtoCCM,
			Reader:       s.cfg.Reader,
			Round:        round,
			FrameSize:    s.f,
			Slots:        int64(s.f),
			Transmitters: txTags,
			Bits:         int64(txBits),
			NewBusy:      newBusy.Count(),
			KnownBusy:    s.known.Count(),
		})
	}

	if s.cfg.DisableIndicatorVector {
		return txTags, txBits
	}

	// Indicator-vector broadcast: ⌈f/96⌉ reader slots; every tag in the
	// reader's one-hop coverage receives the full vector (eq. (11)'s
	// K⌈f/96⌉ term).
	segments := int64((s.f + energy.IDBits - 1) / energy.IDBits)
	s.clock.LongSlots += segments
	for i := 0; i < n; i++ {
		if s.nw.Tier[i] == 0 {
			continue // outside the system: receives nothing
		}
		s.meter.AddReceived(i, segments*energy.IDBits)
	}
	// Tags silence the newly announced slots: monitoring stops, and any
	// still-scheduled relay of them is cancelled (repetitive replies would
	// only re-produce a busy slot the reader already has).
	newBusy.ForEach(func(slot int) {
		for i := 0; i < n; i++ {
			idx := i*s.f + slot
			switch s.state[idx] {
			case slotUnknown:
				s.state[idx] = slotSilenced
				s.unknownCount[i]--
			case slotScheduled:
				s.state[idx] = slotSilenced
				s.schedCount[i]--
			}
		}
	})
	if t := s.cfg.Tracer; t != nil {
		t.Trace(obs.Event{
			Kind:     obs.KindIndicator,
			Protocol: obs.ProtoCCM,
			Reader:   s.cfg.Reader,
			Round:    round,
			Slots:    segments,
			Bits:     segments * energy.IDBits,
			Count:    newBusy.Count(),
		})
	}
	return txTags, txBits
}

// runCheckingFrame executes §III-E's termination probe and reports whether
// another round is needed. Tags with pending transmissions respond in C[1];
// a tag that hears a response in C[j] relays it once in C[j+1]; the reader
// stops the frame at the first busy slot it senses.
func (s *session) runCheckingFrame(res *Result, round int) bool {
	n := s.nw.N()
	lc := s.cfg.checkingFrameLen(s.nw)

	responded := make([]bool, n)
	var wave []int32 // tags transmitting in the current checking slot
	for i := 0; i < n; i++ {
		// Out-of-system tags (§II) neither monitor the checking frame nor
		// relay its wave; marking them responded keeps them silent and
		// uncharged for the whole frame.
		responded[i] = s.nw.Tier[i] == 0
		if s.schedCount[i] > 0 {
			responded[i] = true
			wave = append(wave, int32(i))
		}
	}

	heard := false
	slotsUsed := 0
	for j := 1; j <= lc; j++ {
		slotsUsed++
		// Transmitters pay one bit each. Everyone who has not responded yet
		// listens and pays one monitored bit; tags that already responded
		// sleep for the rest of the frame. (Current transmitters all carry
		// responded=true, so the listener loop skips them — half duplex.)
		for _, u := range wave {
			s.meter.AddSent(int(u), 1)
		}
		for i := 0; i < n; i++ {
			if !responded[i] {
				s.meter.AddReceived(i, 1)
			}
		}
		// Reader senses the slot.
		for _, u := range wave {
			if s.tier1[u] && !s.dropped() {
				heard = true
			}
		}
		if heard {
			break
		}
		// Propagate the wave one hop: listeners adjacent to a transmitter
		// respond in the next slot.
		var next []int32
		for _, u := range wave {
			for _, v := range s.nw.Neighbors(int(u)) {
				if responded[v] || s.dropped() {
					continue
				}
				responded[v] = true
				next = append(next, v)
			}
		}
		wave = next
		if len(wave) == 0 {
			// The wave died out (or there never was one): the rest of the
			// frame is guaranteed silent, but the reader cannot know that,
			// so it still sits through the remaining slots. Tags keep
			// monitoring too.
			for j2 := j + 1; j2 <= lc; j2++ {
				slotsUsed++
				for i := 0; i < n; i++ {
					if !responded[i] {
						s.meter.AddReceived(i, 1)
					}
				}
			}
			break
		}
	}
	s.clock.ShortSlots += int64(slotsUsed)
	res.CheckSlotsPerRound = append(res.CheckSlotsPerRound, slotsUsed)
	if t := s.cfg.Tracer; t != nil {
		t.Trace(obs.Event{
			Kind:     obs.KindCheck,
			Protocol: obs.ProtoCCM,
			Reader:   s.cfg.Reader,
			Round:    round,
			Slots:    int64(slotsUsed),
			Pending:  heard,
		})
	}
	return heard
}

package core

import (
	"slices"

	"netags/internal/bitmap"
	"netags/internal/energy"
	"netags/internal/obs"
	"netags/internal/prng"
	"netags/internal/topology"
)

// Per-slot, per-tag state over the frame. A slot advances
// unknown → scheduled → transmitted, or is forced to silenced by the
// indicator vector at any point before transmission.
const (
	slotUnknown     uint8 = iota // tag listens here
	slotScheduled                // tag will transmit here next frame
	slotTransmitted              // tag already transmitted here; sleeps
	slotSilenced                 // reader announced the slot busy; sleeps
)

// Result reports everything a CCM session produced. A Result is fully owned
// by the caller: it shares no storage with the session that produced it, so
// pooled Runners can be reused immediately.
type Result struct {
	// Bitmap is the final information bitmap B (Algorithm 1's output).
	Bitmap *bitmap.Bitmap
	// Rounds is the number of full rounds executed.
	Rounds int
	// Clock is the session's execution time in slots.
	Clock energy.Clock
	// Meter holds per-tag energy (bits sent / received).
	Meter *energy.Meter
	// Truncated reports that the session ended with data still pending —
	// either the round bound was hit or the checking frame was too short
	// for the network's true tier count.
	Truncated bool
	// NewBusyPerRound[i] is the number of slots first reported busy to the
	// reader in round i+1 (diagnostic: the per-tier information waves).
	NewBusyPerRound []int
	// CheckSlotsPerRound[i] is the number of checking-frame slots executed
	// after round i+1.
	CheckSlotsPerRound []int
}

// session carries the mutable state of one run. All of it is arena-style
// scratch owned by a Runner: every slice is sized on first use, retained
// across sessions, and re-initialized in O(n) (plus one O(n·f) state clear)
// by init — the per-round hot paths allocate nothing once the arena is warm
// (TestSessionRoundAllocs pins this at exactly zero).
type session struct {
	nw  *topology.Network
	cfg Config
	f   int
	n   int

	// state is the n×f slot-state matrix, row-major.
	state []uint8

	// Pending (tag, slot) transitions: slots that entered slotScheduled
	// since the last frame, in discovery order. Each round consumes them
	// into the CSR transmit view below and refills them during delivery.
	// A (tag, slot) pair enters at most once per session (the state machine
	// is monotone), so both buffers reach a session-wide high-water mark
	// and stop growing.
	pendTag  []int32
	pendSlot []int32

	// CSR transmit view of the current round, rebuilt from the pending
	// pairs each round in O(touched): tag t's transmissions are
	// txSlots[txOff[t] : txOff[t]+txLen[t]]. txOff and txLen are n-sized
	// but only entries of tags in touched are live; txLen doubles as the
	// first-touch detector and is restored to all-zero after every round.
	txSlots []int32
	txOff   []int32
	txLen   []int32
	// touched lists the tags with pending entries this round, sorted
	// ascending so delivery visits transmitters in the same tag order as a
	// dense scan (this pins the PRNG draw order of the lossy channel).
	touched []int32

	// schedCount[i] is the number of state==slotScheduled slots of tag i,
	// i.e. whether the tag needs to transmit next round.
	schedCount []int32
	// unknownCount[i] is the number of state==slotUnknown slots of tag i,
	// i.e. how many slots it monitors per frame.
	unknownCount []int32
	// tier1 marks tags the reader can hear directly; inSystem marks tags
	// with Tier > 0 (§II: the rest are outside the system entirely).
	tier1    []bool
	inSystem []bool

	meter *energy.Meter
	clock energy.Clock

	// reader-side bitmaps
	known     *bitmap.Bitmap // V: all slots the reader knows are busy
	roundBusy *bitmap.Bitmap // busy slots heard by the reader this round
	newBusy   *bitmap.Bitmap // scratch: roundBusy &^ known, reused per round
	// busyIdx is the expansion of newBusy into slot indices, reused per
	// round for the indicator-vector silencing sweep.
	busyIdx []int

	// Checking-frame scratch: responded flags are cleared in O(marked) via
	// respondedList after every frame; wave/waveNext double-buffer the
	// one-hop response wave.
	responded     []bool
	respondedList []int32
	wave          []int32
	waveNext      []int32

	// Per-round diagnostics, accumulated here and copied into the Result
	// once at session end so the round path never grows caller-visible
	// slices.
	newBusyPerRound    []int
	checkSlotsPerRound []int

	loss      *prng.Source // nil when the channel is reliable
	lossState prng.Source
}

// RunSession executes one CCM session (Algorithm 1) over the network with
// freshly allocated state. Callers running many sessions should reuse a
// Runner, which amortizes all scratch across runs.
func RunSession(nw *topology.Network, cfg Config) (*Result, error) {
	return NewRunner().Run(nw, cfg)
}

// grow returns s resized to n elements, reusing its backing array when the
// capacity allows. Recycled prefixes keep their old contents; callers that
// need zeroed memory clear explicitly.
func grow[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// init sizes and resets the arena for one session over nw. The config must
// already be validated. meter is taken over as the session's (and the
// eventual Result's) energy meter. Once the arena has seen a deployment of
// this size and frame, init performs no allocations.
func (s *session) init(nw *topology.Network, cfg Config, meter *energy.Meter) {
	n, f := nw.N(), cfg.FrameSize
	s.nw, s.cfg, s.f, s.n = nw, cfg, f, n
	s.meter = meter
	s.meter.Reset()
	s.clock = energy.Clock{}

	// txLen and responded must be all-zero/false between rounds. The round
	// and frame code restores them in O(touched), but a session that hit
	// its round bound leaves residue, so replay those clears first — before
	// any resizing below, while the indices still fit the previous
	// deployment's slice lengths. This keeps both backing arrays all-zero
	// across size changes.
	for _, t := range s.touched {
		s.txLen[t] = 0
	}
	s.touched = s.touched[:0]
	for _, i := range s.respondedList {
		s.responded[i] = false
	}
	s.respondedList = s.respondedList[:0]

	if cap(s.state) >= n*f {
		s.state = s.state[:n*f]
		clear(s.state)
	} else {
		s.state = make([]uint8, n*f)
	}
	s.schedCount = grow(s.schedCount, n)
	s.unknownCount = grow(s.unknownCount, n)
	s.tier1 = grow(s.tier1, n)
	s.inSystem = grow(s.inSystem, n)
	s.txOff = grow(s.txOff, n)
	s.txLen = grow(s.txLen, n)
	s.responded = grow(s.responded, n)

	// A truncated session also leaves never-transmitted pairs pending.
	s.pendTag = s.pendTag[:0]
	s.pendSlot = s.pendSlot[:0]
	s.wave = s.wave[:0]
	s.waveNext = s.waveNext[:0]
	s.busyIdx = s.busyIdx[:0]
	s.newBusyPerRound = s.newBusyPerRound[:0]
	s.checkSlotsPerRound = s.checkSlotsPerRound[:0]

	if s.known == nil || s.known.Len() != f {
		s.known = bitmap.New(f)
		s.roundBusy = bitmap.New(f)
		s.newBusy = bitmap.New(f)
	} else {
		s.known.Reset()
		s.roundBusy.Reset()
		s.newBusy.Reset()
	}

	s.loss = nil
	if cfg.LossProb > 0 {
		s.lossState = *prng.New(cfg.LossSeed)
		s.loss = &s.lossState
	}

	for i := 0; i < n; i++ {
		tier := nw.Tier[i]
		s.inSystem[i] = tier != 0
		s.tier1[i] = tier == 1
		s.schedCount[i] = 0
		if tier == 0 {
			// Tags that cannot reach the reader are outside the system
			// (§II) — out of the field of view they never hear the request,
			// and either way their data can never arrive. They hold no slot
			// state, never listen or relay, and consume no energy (the same
			// boundary sicp draws with its asleep set). Silencing their
			// whole row keeps the delivery loop branch-free.
			row := s.state[i*f : (i+1)*f]
			for j := range row {
				row[j] = slotSilenced
			}
			s.unknownCount[i] = 0
			continue
		}
		s.unknownCount[i] = int32(f)
	}
}

// dropped reports whether a reception event is lost on the unreliable
// channel.
func (s *session) dropped() bool {
	return s.loss != nil && s.loss.Float64() < s.cfg.LossProb
}

// defaultPicker is the single-slot sampled choice of §IV/§V: participate
// with probability p, then hash ID and seed into one slot.
func defaultPicker(cfg Config) SlotPicker {
	seed, p, f := cfg.Seed, cfg.Sampling, cfg.FrameSize
	return func(_ int, id uint64) []int {
		if !prng.Participates(id, seed, p) {
			return nil
		}
		return []int{prng.SlotOf(id, seed, f)}
	}
}

// seedInitialPicks applies the slot picker: round 1 is the only round in
// which tags originate information (§III-C line 7). The default picker is
// inlined so full-participation million-tag sessions do not pay one slice
// allocation per tag; custom pickers keep the slice-returning API.
func (s *session) seedInitialPicks() {
	if s.cfg.Picker == nil {
		seed, p := s.cfg.Seed, s.cfg.Sampling
		for i := 0; i < s.n; i++ {
			if !s.inSystem[i] {
				// Out-of-system tags (§II) stay silent.
				continue
			}
			id := s.cfg.id(i)
			if !prng.Participates(id, seed, p) {
				continue
			}
			s.schedule(i, prng.SlotOf(id, seed, s.f))
		}
		return
	}
	for i := 0; i < s.n; i++ {
		if !s.inSystem[i] {
			continue
		}
		for _, slot := range s.cfg.Picker(i, s.cfg.id(i)) {
			if slot < 0 || slot >= s.f {
				continue
			}
			s.schedule(i, slot)
		}
	}
}

// schedule marks (i, slot) scheduled if the slot is still unknown and
// records the transition in the pending list.
func (s *session) schedule(i, slot int) {
	if s.mark(i, slot, slotScheduled) {
		s.pendTag = append(s.pendTag, int32(i))
		s.pendSlot = append(s.pendSlot, int32(slot))
	}
}

// mark transitions tag i's slot to the given state if the slot is currently
// unknown, maintaining the counters. It reports whether the transition
// happened.
func (s *session) mark(i, slot int, st uint8) bool {
	idx := i*s.f + slot
	if s.state[idx] != slotUnknown {
		return false
	}
	s.state[idx] = st
	s.unknownCount[i]--
	if st == slotScheduled {
		s.schedCount[i]++
	}
	return true
}

func (s *session) run() *Result {
	res := &Result{Meter: s.meter}
	if t := s.cfg.Tracer; t != nil {
		t.Trace(obs.Event{
			Kind:      obs.KindSessionStart,
			Protocol:  obs.ProtoCCM,
			Reader:    s.cfg.Reader,
			FrameSize: s.f,
			Tags:      s.n,
			Tiers:     s.nw.K,
			Seed:      s.cfg.Seed,
		})
	}
	maxRounds := s.cfg.maxRounds(s.nw)
	for round := 1; round <= maxRounds; round++ {
		txTags, txBits := s.runRound(round)
		res.Rounds = round
		more := s.runCheckingFrame(round)
		if s.cfg.Trace != nil {
			s.cfg.Trace(RoundTrace{
				Round:        round,
				Transmitters: txTags,
				BitsSent:     txBits,
				NewBusy:      s.newBusyPerRound[round-1],
				KnownBusy:    s.known.Count(),
				CheckSlots:   s.checkSlotsPerRound[round-1],
				MorePending:  more,
			})
		}
		if t := s.cfg.Tracer; t != nil {
			t.Trace(obs.Event{
				Kind:         obs.KindRound,
				Protocol:     obs.ProtoCCM,
				Reader:       s.cfg.Reader,
				Round:        round,
				Transmitters: txTags,
				Bits:         int64(txBits),
				NewBusy:      s.newBusyPerRound[round-1],
				KnownBusy:    s.known.Count(),
				CheckSlots:   s.checkSlotsPerRound[round-1],
				Pending:      more,
			})
		}
		if !more {
			break // nothing pending anywhere the reader could hear
		}
	}
	res.Clock = s.clock
	res.Bitmap = s.known.Clone()
	res.NewBusyPerRound = append([]int(nil), s.newBusyPerRound...)
	res.CheckSlotsPerRound = append([]int(nil), s.checkSlotsPerRound...)
	for i := 0; i < s.n; i++ {
		if s.schedCount[i] > 0 {
			res.Truncated = true
			break
		}
	}
	if t := s.cfg.Tracer; t != nil {
		sum := s.meter.Summarize(nil)
		t.Trace(obs.Event{
			Kind:        obs.KindSessionEnd,
			Protocol:    obs.ProtoCCM,
			Reader:      s.cfg.Reader,
			Rounds:      res.Rounds,
			KnownBusy:   res.Bitmap.Count(),
			ShortSlots:  res.Clock.ShortSlots,
			LongSlots:   res.Clock.LongSlots,
			Truncated:   res.Truncated,
			AvgSentBits: sum.AvgSent,
			AvgRecvBits: sum.AvgReceived,
			MaxSentBits: sum.MaxSent,
			MaxRecvBits: sum.MaxReceived,
		})
	}
	return res
}

// runRound executes the request broadcast, the f-slot frame, and the
// indicator-vector broadcast of one round. It returns the number of
// transmitting tags and the frame bits they sent (for tracing).
func (s *session) runRound(round int) (txTags, txBits int) {
	// Reader request broadcast: one 96-bit reader slot. (The paper's energy
	// model, eq. (11), does not charge tags for receiving it; we follow
	// suit, but it does occupy air time.)
	s.clock.LongSlots++

	// Fold the pending transitions into the CSR transmit view. Pass 1
	// counts entries per tag (silenced ones included for sizing; the
	// scatter pass drops them) and collects the touched set.
	for _, t := range s.pendTag {
		if s.txLen[t] == 0 {
			s.touched = append(s.touched, t)
		}
		s.txLen[t]++
	}
	slices.Sort(s.touched)
	s.txSlots = grow(s.txSlots, len(s.pendTag))
	var off int32
	for _, t := range s.touched {
		s.txOff[t] = off
		off += s.txLen[t]
		s.txLen[t] = 0 // becomes the kept-entry cursor for pass 2
	}
	// Pass 2 captures this round's transmissions: every still-scheduled
	// slot becomes a transmitted slot. Slots silenced since they were
	// scheduled are dropped without cost. Scatter order preserves each
	// tag's discovery order.
	for k, t := range s.pendTag {
		slot := s.pendSlot[k]
		idx := int(t)*s.f + int(slot)
		if s.state[idx] != slotScheduled {
			continue
		}
		s.state[idx] = slotTransmitted
		s.schedCount[t]--
		s.txSlots[s.txOff[t]+s.txLen[t]] = slot
		s.txLen[t]++
	}
	s.pendTag = s.pendTag[:0]
	s.pendSlot = s.pendSlot[:0]

	// Monitoring charge: a tag stays awake for exactly its unknown slots
	// (§III-D: it sleeps in transmitted and silenced slots, and is busy
	// transmitting in scheduled ones).
	s.meter.AddReceivedCounts(s.unknownCount)

	// Deliver transmissions. A listener senses a busy slot iff it is
	// monitoring that slot (half duplex: a tag transmitting in the slot is
	// not). Collisions are benign: the first delivery marks the slot, later
	// deliveries find it already marked. Newly scheduled slots land back in
	// the pending list for the next round.
	s.roundBusy.Reset()
	for _, ti := range s.touched {
		cnt := s.txLen[ti]
		if cnt == 0 {
			continue
		}
		i := int(ti)
		slots := s.txSlots[s.txOff[ti] : s.txOff[ti]+cnt]
		txTags++
		txBits += len(slots)
		s.meter.AddSent(i, int64(len(slots)))
		neighbors := s.nw.Neighbors(i)
		for _, slot := range slots {
			for _, v := range neighbors {
				idx := int(v)*s.f + int(slot)
				if s.state[idx] != slotUnknown || s.dropped() {
					continue
				}
				s.state[idx] = slotScheduled
				s.unknownCount[v]--
				s.schedCount[v]++
				s.pendTag = append(s.pendTag, v)
				s.pendSlot = append(s.pendSlot, slot)
			}
			if s.tier1[i] && !s.roundBusy.Get(int(slot)) && !s.dropped() {
				s.roundBusy.Set(int(slot))
			}
		}
	}
	// Release the CSR view: txLen back to all-zero, O(touched).
	for _, t := range s.touched {
		s.txLen[t] = 0
	}
	s.touched = s.touched[:0]
	s.clock.ShortSlots += int64(s.f)

	// Record what the reader learned this round.
	s.newBusy.CopyFrom(s.roundBusy)
	s.newBusy.AndNot(s.known)
	s.newBusyPerRound = append(s.newBusyPerRound, s.newBusy.Count())
	s.known.Or(s.roundBusy)

	if t := s.cfg.Tracer; t != nil {
		t.Trace(obs.Event{
			Kind:         obs.KindFrame,
			Protocol:     obs.ProtoCCM,
			Reader:       s.cfg.Reader,
			Round:        round,
			FrameSize:    s.f,
			Slots:        int64(s.f),
			Transmitters: txTags,
			Bits:         int64(txBits),
			NewBusy:      s.newBusy.Count(),
			KnownBusy:    s.known.Count(),
		})
	}

	if s.cfg.DisableIndicatorVector {
		return txTags, txBits
	}

	// Indicator-vector broadcast: ⌈f/96⌉ reader slots; every tag in the
	// reader's one-hop coverage receives the full vector (eq. (11)'s
	// K⌈f/96⌉ term).
	segments := int64((s.f + energy.IDBits - 1) / energy.IDBits)
	s.clock.LongSlots += segments
	s.meter.AddReceivedWhere(segments*energy.IDBits, s.inSystem)
	// Tags silence the newly announced slots: monitoring stops, and any
	// still-scheduled relay of them is cancelled (repetitive replies would
	// only re-produce a busy slot the reader already has).
	s.busyIdx = s.newBusy.AppendIndices(s.busyIdx[:0])
	for _, slot := range s.busyIdx {
		for i := 0; i < s.n; i++ {
			idx := i*s.f + slot
			switch s.state[idx] {
			case slotUnknown:
				s.state[idx] = slotSilenced
				s.unknownCount[i]--
			case slotScheduled:
				s.state[idx] = slotSilenced
				s.schedCount[i]--
			}
		}
	}
	if t := s.cfg.Tracer; t != nil {
		t.Trace(obs.Event{
			Kind:     obs.KindIndicator,
			Protocol: obs.ProtoCCM,
			Reader:   s.cfg.Reader,
			Round:    round,
			Slots:    segments,
			Bits:     segments * energy.IDBits,
			Count:    s.newBusy.Count(),
		})
	}
	return txTags, txBits
}

// runCheckingFrame executes §III-E's termination probe and reports whether
// another round is needed. Tags with pending transmissions respond in C[1];
// a tag that hears a response in C[j] relays it once in C[j+1]; the reader
// stops the frame at the first busy slot it senses.
//
// Monitoring energy is settled per tag instead of per slot — a tag that
// joins the wave in C[j] listened through C[1..j] and then sleeps, a tag
// that never responds listens through every executed slot — which charges
// the exact totals of a slot-by-slot sweep in one O(n) pass. Out-of-system
// tags (§II) neither monitor the checking frame nor relay its wave; the
// inSystem mask keeps them silent and uncharged for the whole frame.
func (s *session) runCheckingFrame(round int) bool {
	lc := s.cfg.checkingFrameLen(s.nw)

	s.wave = s.wave[:0]
	for i := 0; i < s.n; i++ {
		if s.schedCount[i] > 0 {
			s.responded[i] = true
			s.respondedList = append(s.respondedList, int32(i))
			s.wave = append(s.wave, int32(i))
		}
	}

	heard := false
	slotsUsed := 0
	for j := 1; j <= lc; j++ {
		slotsUsed++
		// Transmitters pay one bit each; the reader then senses the slot.
		// (Current transmitters all carry responded=true, so the listener
		// accounting below never double-charges them — half duplex.)
		for _, u := range s.wave {
			s.meter.AddSent(int(u), 1)
		}
		for _, u := range s.wave {
			if s.tier1[u] && !s.dropped() {
				heard = true
			}
		}
		if heard {
			break
		}
		// Propagate the wave one hop: listeners adjacent to a transmitter
		// respond in the next slot. A joiner monitored C[1..j] before
		// responding, so its whole listening bill lands here.
		s.waveNext = s.waveNext[:0]
		for _, u := range s.wave {
			for _, v := range s.nw.Neighbors(int(u)) {
				if s.responded[v] || !s.inSystem[v] || s.dropped() {
					continue
				}
				s.responded[v] = true
				s.respondedList = append(s.respondedList, v)
				s.meter.AddReceived(int(v), int64(j))
				s.waveNext = append(s.waveNext, v)
			}
		}
		s.wave, s.waveNext = s.waveNext, s.wave
		if len(s.wave) == 0 {
			// The wave died out (or there never was one): the rest of the
			// frame is guaranteed silent, but the reader cannot know that,
			// so it still sits through the remaining slots. Tags keep
			// monitoring too.
			slotsUsed = lc
			break
		}
	}
	// Keep the larger backing array in wave: the swap above leaves the
	// buffers' capacities on whichever side the frame ended with, and the
	// big allocation (the initial all-pending wave) always builds in wave —
	// without this, a fresh arena re-grows the small side one frame (and
	// one session) later instead of reaching its high-water mark on the
	// first run.
	if cap(s.waveNext) > cap(s.wave) {
		s.wave, s.waveNext = s.waveNext, s.wave
	}

	// Settle the listeners that never responded: they monitored every
	// executed slot.
	for i := 0; i < s.n; i++ {
		if s.inSystem[i] && !s.responded[i] {
			s.meter.AddReceived(i, int64(slotsUsed))
		}
	}
	// Clear the frame marks in O(marked).
	for _, i := range s.respondedList {
		s.responded[i] = false
	}
	s.respondedList = s.respondedList[:0]

	s.clock.ShortSlots += int64(slotsUsed)
	s.checkSlotsPerRound = append(s.checkSlotsPerRound, slotsUsed)
	if t := s.cfg.Tracer; t != nil {
		t.Trace(obs.Event{
			Kind:     obs.KindCheck,
			Protocol: obs.ProtoCCM,
			Reader:   s.cfg.Reader,
			Round:    round,
			Slots:    int64(slotsUsed),
			Pending:  heard,
		})
	}
	return heard
}

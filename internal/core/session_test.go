package core

import (
	"testing"
	"testing/quick"

	"netags/internal/geom"
	"netags/internal/topology"
)

// lineNetwork builds a 3-tier chain: tags at x = 19 (tier 1), 24 (tier 2),
// 29 (tier 3) with r = 6 so each tag only hears its chain neighbors.
func lineNetwork(t *testing.T) *topology.Network {
	t.Helper()
	d := &geom.Deployment{
		Tags:    []geom.Point{{X: 19}, {X: 24}, {X: 29}},
		Readers: []geom.Point{{}},
		Radius:  30,
	}
	nw, err := topology.Build(d, 0, topology.PaperRanges(6))
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func diskNetwork(t testing.TB, n int, r float64, seed uint64) *topology.Network {
	t.Helper()
	d := geom.NewUniformDisk(n, 30, seed)
	nw, err := topology.Build(d, 0, topology.PaperRanges(r))
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func fixedPicker(slots map[int][]int) SlotPicker {
	return func(tagIdx int, _ uint64) []int { return slots[tagIdx] }
}

func TestSessionChainDelivery(t *testing.T) {
	nw := lineNetwork(t)
	// Each tag picks a distinct slot; the tier-3 tag's bit must take 3
	// rounds to arrive.
	cfg := Config{
		FrameSize: 16,
		Picker:    fixedPicker(map[int][]int{0: {1}, 1: {5}, 2: {9}}),
	}
	res, err := RunSession(nw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, slot := range []int{1, 5, 9} {
		if !res.Bitmap.Get(slot) {
			t.Errorf("slot %d missing from final bitmap", slot)
		}
	}
	if res.Bitmap.Count() != 3 {
		t.Errorf("bitmap has %d bits, want 3", res.Bitmap.Count())
	}
	if res.Rounds != 3 {
		t.Errorf("session took %d rounds, want 3 (tier count)", res.Rounds)
	}
	if res.Truncated {
		t.Error("session reported truncated")
	}
	// Tier-by-tier arrival: rounds deliver exactly one new bit each.
	want := []int{1, 1, 1}
	for i, w := range want {
		if res.NewBusyPerRound[i] != w {
			t.Errorf("round %d delivered %d new bits, want %d", i+1, res.NewBusyPerRound[i], w)
		}
	}
}

func TestSessionTierKArrivesInRoundK(t *testing.T) {
	// Only the tier-3 tag participates: rounds 1 and 2 deliver nothing,
	// round 3 delivers the bit.
	nw := lineNetwork(t)
	cfg := Config{
		FrameSize: 8,
		Picker:    fixedPicker(map[int][]int{2: {4}}),
	}
	res, err := RunSession(nw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Bitmap.Get(4) || res.Bitmap.Count() != 1 {
		t.Fatalf("bitmap = %v, want only slot 4", res.Bitmap)
	}
	if res.Rounds != 3 {
		t.Fatalf("rounds = %d, want 3", res.Rounds)
	}
	if got := res.NewBusyPerRound; got[0] != 0 || got[1] != 0 || got[2] != 1 {
		t.Fatalf("per-round deliveries = %v, want [0 0 1]", got)
	}
}

func TestSessionCollisionsMergeBenignly(t *testing.T) {
	// All three tags pick the same slot: the result is a single busy bit,
	// exactly as if one tag had picked it.
	nw := lineNetwork(t)
	cfg := Config{
		FrameSize: 8,
		Picker:    fixedPicker(map[int][]int{0: {3}, 1: {3}, 2: {3}}),
	}
	res, err := RunSession(nw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Bitmap.Get(3) || res.Bitmap.Count() != 1 {
		t.Fatalf("bitmap = %v, want only slot 3", res.Bitmap)
	}
}

func TestSessionEmptyParticipation(t *testing.T) {
	nw := lineNetwork(t)
	cfg := Config{FrameSize: 8, Sampling: 0}
	res, err := RunSession(nw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bitmap.Any() {
		t.Fatal("empty participation produced busy slots")
	}
	if res.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1 (single silent round)", res.Rounds)
	}
	if res.Truncated {
		t.Fatal("silent session reported truncated")
	}
}

// TestTheorem1Equivalence is the paper's central correctness claim: for the
// same tag set, seed and sampling, the CCM bitmap equals the bitmap of a
// traditional one-hop RFID system.
func TestTheorem1Equivalence(t *testing.T) {
	for _, r := range []float64{2, 4, 6, 10} {
		for seed := uint64(0); seed < 3; seed++ {
			nw := diskNetwork(t, 2000, r, seed+100)
			cfg := Config{FrameSize: 331, Seed: seed, Sampling: 0.5}
			got, err := RunSession(nw, cfg)
			if err != nil {
				t.Fatal(err)
			}
			want, err := DirectBitmap(nw, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Bitmap.Equal(want) {
				t.Errorf("r=%v seed=%d: CCM bitmap differs from traditional bitmap (%d vs %d busy)",
					r, seed, got.Bitmap.Count(), want.Count())
			}
			if got.Truncated {
				t.Errorf("r=%v seed=%d: truncated session", r, seed)
			}
		}
	}
}

// TestTheorem1FullParticipation covers the TRP setting (p = 1) where the
// bitmap is densest and relay pressure highest.
func TestTheorem1FullParticipation(t *testing.T) {
	nw := diskNetwork(t, 3000, 5, 7)
	cfg := Config{FrameSize: 977, Seed: 42, Sampling: 1}
	got, err := RunSession(nw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := DirectBitmap(nw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Bitmap.Equal(want) {
		t.Fatalf("CCM bitmap differs from traditional bitmap (%d vs %d busy)",
			got.Bitmap.Count(), want.Count())
	}
}

func TestSessionRoundsEqualTierDepthOnDisk(t *testing.T) {
	nw := diskNetwork(t, 3000, 6, 11)
	cfg := Config{FrameSize: 512, Seed: 1, Sampling: 1}
	res, err := RunSession(nw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With p = 1 every tier contributes, so the session needs exactly K
	// rounds (plus nothing: the checking frame after round K is silent).
	if res.Rounds != nw.K {
		t.Fatalf("rounds = %d, want K = %d", res.Rounds, nw.K)
	}
}

func TestIndicatorVectorStopsRelay(t *testing.T) {
	// Two tier-1 tags in range of each other: tag 0 and tag 1, both at
	// x≈19. Both pick the same slot. With the indicator vector, neither
	// relays the other's bit in round 2 (the reader silences it after
	// round 1), so the session ends after round 1's checking frame.
	d := &geom.Deployment{
		Tags:    []geom.Point{{X: 18}, {X: 19}},
		Readers: []geom.Point{{}},
		Radius:  30,
	}
	nw, err := topology.Build(d, 0, topology.PaperRanges(6))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		FrameSize: 8,
		Picker:    fixedPicker(map[int][]int{0: {2}, 1: {6}}),
	}
	res, err := RunSession(nw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1", res.Rounds)
	}
	// Each tag sent exactly its own bit (no relay of the other's slot).
	for i := 0; i < 2; i++ {
		if got := res.Meter.Sent(i); got != 1 {
			t.Errorf("tag %d sent %d bits, want 1 (indicator vector must stop relays)", i, got)
		}
	}
}

func TestAblationWithoutIndicatorVectorFloods(t *testing.T) {
	nw := diskNetwork(t, 1500, 6, 13)
	base := Config{FrameSize: 512, Seed: 5, Sampling: 1}
	withV, err := RunSession(nw, base)
	if err != nil {
		t.Fatal(err)
	}
	noV := base
	noV.DisableIndicatorVector = true
	noV.MaxRounds = 4 * nw.Ranges.CheckingFrameLen() // flooding needs slack
	withoutV, err := RunSession(nw, noV)
	if err != nil {
		t.Fatal(err)
	}
	// Same bitmap either way…
	if !withV.Bitmap.Equal(withoutV.Bitmap) {
		t.Error("ablation changed the collected bitmap")
	}
	// …but flooding costs strictly more transmissions.
	in := func(i int) bool { return nw.Tier[i] > 0 }
	sWith := withV.Meter.Summarize(in)
	sWithout := withoutV.Meter.Summarize(in)
	if sWithout.TotalSent <= sWith.TotalSent {
		t.Errorf("flooding sent %d bits <= indicator-vector %d bits; ablation should cost more",
			sWithout.TotalSent, sWith.TotalSent)
	}
}

func TestSessionTruncationReported(t *testing.T) {
	// Force MaxRounds below the tier depth: the tier-3 bit cannot arrive.
	nw := lineNetwork(t)
	cfg := Config{
		FrameSize: 8,
		Picker:    fixedPicker(map[int][]int{2: {4}}),
		MaxRounds: 2,
	}
	res, err := RunSession(nw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bitmap.Get(4) {
		t.Fatal("bit arrived despite round bound")
	}
	if !res.Truncated {
		t.Fatal("truncation not reported")
	}
}

func TestCheckingFrameTooShortTerminatesEarly(t *testing.T) {
	// With L_c = 1 the reader hears nothing in the single checking slot
	// after round 1 (the pending tag is at tier 3, two hops from any
	// tier-1 responder), so it wrongly ends the session.
	nw := lineNetwork(t)
	cfg := Config{
		FrameSize:        8,
		Picker:           fixedPicker(map[int][]int{2: {4}}),
		CheckingFrameLen: 1,
		MaxRounds:        10,
	}
	res, err := RunSession(nw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bitmap.Get(4) {
		t.Fatal("bit should not have arrived")
	}
	if !res.Truncated {
		t.Fatal("early termination must be reported as truncation")
	}
}

func TestSessionEnergyAccounting(t *testing.T) {
	// Single tier-1 tag, one pick: it sends exactly 1 frame bit plus 1
	// checking-frame response; it monitors f-1 slots in round 1 and
	// receives the indicator vector.
	d := &geom.Deployment{
		Tags:    []geom.Point{{X: 10}},
		Readers: []geom.Point{{}},
		Radius:  30,
	}
	nw, err := topology.Build(d, 0, topology.PaperRanges(6))
	if err != nil {
		t.Fatal(err)
	}
	const f = 96 // one indicator segment
	cfg := Config{FrameSize: f, Picker: fixedPicker(map[int][]int{0: {7}})}
	res, err := RunSession(nw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1", res.Rounds)
	}
	// Sent: 1 frame bit + 1 checking response (it had pending work before
	// round 1's frame ran? no — pending is consumed by the frame, so the
	// checking frame after round 1 is silent). Expect exactly 1.
	if got := res.Meter.Sent(0); got != 1 {
		t.Errorf("sent = %d bits, want 1", got)
	}
	// Received: (f-1) monitored slots in round 1 + 96-bit indicator
	// segment + L_c checking slots (the tag listens through the whole
	// silent checking frame).
	lc := int64(nw.Ranges.CheckingFrameLen())
	want := int64(f-1) + 96 + lc
	if got := res.Meter.Received(0); got != want {
		t.Errorf("received = %d bits, want %d", got, want)
	}
	// Clock: 1 request + f frame slots + 1 indicator segment + L_c
	// checking slots.
	if got, want := res.Clock.LongSlots, int64(2); got != want {
		t.Errorf("reader slots = %d, want %d", got, want)
	}
	if got, want := res.Clock.ShortSlots, int64(f)+lc; got != want {
		t.Errorf("tag slots = %d, want %d", got, want)
	}
}

func TestSessionClockFormula(t *testing.T) {
	// On a multi-tier network with p=1, the clock should track eq. (3):
	// K rounds of (f + ⌈f/96⌉ + checking slots) plus K request slots.
	nw := diskNetwork(t, 2000, 6, 17)
	const f = 512
	cfg := Config{FrameSize: f, Seed: 3, Sampling: 1}
	res, err := RunSession(nw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	k := int64(res.Rounds)
	segs := int64((f + 95) / 96)
	var check int64
	for _, c := range res.CheckSlotsPerRound {
		check += int64(c)
	}
	wantTag := k*int64(f) + check
	wantReader := k * (1 + segs)
	if res.Clock.ShortSlots != wantTag || res.Clock.LongSlots != wantReader {
		t.Fatalf("clock = %+v, want tag=%d reader=%d", res.Clock, wantTag, wantReader)
	}
}

func TestLossyChannelDegradesDelivery(t *testing.T) {
	nw := diskNetwork(t, 2000, 4, 19)
	base := Config{FrameSize: 512, Seed: 9, Sampling: 1}
	clean, err := RunSession(nw, base)
	if err != nil {
		t.Fatal(err)
	}
	lossy := base
	lossy.LossProb = 0.9
	lossy.LossSeed = 1
	degraded, err := RunSession(nw, lossy)
	if err != nil {
		t.Fatal(err)
	}
	if degraded.Bitmap.Count() >= clean.Bitmap.Count() {
		t.Errorf("90%% loss delivered %d busy bits, reliable delivered %d; loss should reduce delivery",
			degraded.Bitmap.Count(), clean.Bitmap.Count())
	}
	// The lossy bitmap must still be a subset of the truth: loss can only
	// suppress busy observations, never invent them.
	if !clean.Bitmap.ContainsAll(degraded.Bitmap) {
		t.Error("lossy bitmap contains bits absent from the reliable bitmap")
	}
}

func TestConfigValidation(t *testing.T) {
	nw := lineNetwork(t)
	bad := []Config{
		{FrameSize: 0},
		{FrameSize: -5},
		{FrameSize: 8, Sampling: -0.1},
		{FrameSize: 8, Sampling: 1.1},
		{FrameSize: 8, IDs: []uint64{1}},
		{FrameSize: 8, LossProb: -1},
		{FrameSize: 8, LossProb: 1},
		{FrameSize: 8, MaxRounds: -1},
	}
	for i, cfg := range bad {
		if _, err := RunSession(nw, cfg); err == nil {
			t.Errorf("case %d: invalid config %+v accepted", i, cfg)
		}
	}
}

func TestCustomIDsChangeSlots(t *testing.T) {
	nw := lineNetwork(t)
	a, err := RunSession(nw, Config{FrameSize: 64, Seed: 1, Sampling: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSession(nw, Config{FrameSize: 64, Seed: 1, Sampling: 1, IDs: []uint64{1001, 1002, 1003}})
	if err != nil {
		t.Fatal(err)
	}
	if a.Bitmap.Equal(b.Bitmap) {
		t.Fatal("different ID sets produced identical bitmaps (suspicious)")
	}
}

func TestOutOfRangePickerSlotsIgnored(t *testing.T) {
	nw := lineNetwork(t)
	cfg := Config{
		FrameSize: 8,
		Picker:    fixedPicker(map[int][]int{0: {-1, 3, 99}}),
	}
	res, err := RunSession(nw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bitmap.Count() != 1 || !res.Bitmap.Get(3) {
		t.Fatalf("bitmap = %v, want only slot 3", res.Bitmap)
	}
}

func TestUnreachableTagsExcluded(t *testing.T) {
	// Tag 1 is disconnected; its pick must not appear even though it
	// "transmits" into the void.
	d := &geom.Deployment{
		Tags:    []geom.Point{{X: 10}, {X: 29}},
		Readers: []geom.Point{{}},
		Radius:  30,
	}
	nw, err := topology.Build(d, 0, topology.PaperRanges(2))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{FrameSize: 8, Picker: fixedPicker(map[int][]int{0: {1}, 1: {2}})}
	res, err := RunSession(nw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bitmap.Get(2) {
		t.Fatal("unreachable tag's bit reached the reader")
	}
	if !res.Bitmap.Get(1) {
		t.Fatal("reachable tag's bit missing")
	}
	want, err := DirectBitmap(nw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Bitmap.Equal(want) {
		t.Fatal("DirectBitmap disagrees on unreachable-tag handling")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	nw := diskNetwork(t, 1000, 6, 23)
	cfg := Config{FrameSize: 256, Seed: 8, Sampling: 0.7}
	a, err := RunSession(nw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSession(nw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Bitmap.Equal(b.Bitmap) || a.Rounds != b.Rounds || a.Clock != b.Clock {
		t.Fatal("identical configs produced different sessions")
	}
	for i := 0; i < nw.N(); i++ {
		if a.Meter.Sent(i) != b.Meter.Sent(i) || a.Meter.Received(i) != b.Meter.Received(i) {
			t.Fatalf("tag %d: nondeterministic energy accounting", i)
		}
	}
}

func TestRoundTrace(t *testing.T) {
	nw := lineNetwork(t)
	var traces []RoundTrace
	cfg := Config{
		FrameSize: 16,
		Picker:    fixedPicker(map[int][]int{0: {1}, 1: {5}, 2: {9}}),
		Trace:     func(tr RoundTrace) { traces = append(traces, tr) },
	}
	res, err := RunSession(nw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != res.Rounds {
		t.Fatalf("%d traces for %d rounds", len(traces), res.Rounds)
	}
	// Round 1: all three tags transmit their own picks; the reader learns
	// one bit; more data is pending.
	if traces[0].Round != 1 || traces[0].Transmitters != 3 || traces[0].BitsSent != 3 {
		t.Fatalf("round 1 trace = %+v", traces[0])
	}
	if traces[0].NewBusy != 1 || !traces[0].MorePending {
		t.Fatalf("round 1 trace = %+v", traces[0])
	}
	// Last round: everything delivered, nothing pending.
	last := traces[len(traces)-1]
	if last.MorePending || last.KnownBusy != 3 {
		t.Fatalf("final trace = %+v", last)
	}
	// Trace data must agree with the result diagnostics.
	for i, tr := range traces {
		if tr.NewBusy != res.NewBusyPerRound[i] || tr.CheckSlots != res.CheckSlotsPerRound[i] {
			t.Fatalf("trace %d disagrees with result diagnostics", i)
		}
	}
}

// TestTheorem1Property drives the equivalence claim through testing/quick:
// random deployments, ranges, frame sizes, seeds and sampling probabilities
// must all produce a CCM bitmap identical to the one-hop bitmap.
func TestTheorem1Property(t *testing.T) {
	prop := func(seed uint64, frameRaw uint16, sampRaw, rRaw uint8) bool {
		frame := 16 + int(frameRaw)%512
		sampling := float64(sampRaw%101) / 100
		r := 2 + float64(rRaw%9) // 2..10 m
		d := geom.NewUniformDisk(300, 30, seed)
		nw, err := topology.Build(d, 0, topology.PaperRanges(r))
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		// Theorem 1 presumes a complete session; sparse random graphs can
		// have detour paths deeper than the default L_c bound, so provision
		// generously.
		cfg := Config{
			FrameSize:        frame,
			Seed:             seed,
			Sampling:         sampling,
			CheckingFrameLen: 64,
			MaxRounds:        64,
		}
		got, err := RunSession(nw, cfg)
		if err != nil {
			t.Fatalf("session: %v", err)
		}
		want, err := DirectBitmap(nw, cfg)
		if err != nil {
			t.Fatalf("direct: %v", err)
		}
		return !got.Truncated && got.Bitmap.Equal(want)
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestSessionInvariantsProperty checks structural invariants on random
// sessions: bitmap ⊆ direct bitmap is equality (no phantom bits), rounds
// within the bound, meters non-negative, and the bitmap equals the union of
// the per-round deliveries.
func TestSessionInvariantsProperty(t *testing.T) {
	prop := func(seed uint64, rRaw uint8) bool {
		r := 2 + float64(rRaw%9)
		d := geom.NewUniformDisk(200, 30, seed)
		nw, err := topology.Build(d, 0, topology.PaperRanges(r))
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		cfg := Config{FrameSize: 128, Seed: seed, Sampling: 1}
		res, err := RunSession(nw, cfg)
		if err != nil {
			t.Fatalf("session: %v", err)
		}
		if res.Rounds < 1 || res.Rounds > cfg.maxRounds(nw) {
			return false
		}
		totalNew := 0
		for _, nb := range res.NewBusyPerRound {
			totalNew += nb
		}
		if totalNew != res.Bitmap.Count() {
			return false
		}
		for i := 0; i < nw.N(); i++ {
			if res.Meter.Sent(i) < 0 || res.Meter.Received(i) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

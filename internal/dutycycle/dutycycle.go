// Package dutycycle models the sleep–wake behavior of state-free tags
// described in §II of the paper: tags sleep and wake periodically to save
// energy; after waking they listen for a reader request, which either puts
// them back to sleep or starts an operation, and which also "loosely
// re-synchronizes the tag clock". The paper prescribes that "the reader
// will time its next request a little later than the timeout period set by
// the tags to compensate for the clock drift and the clock difference at
// the tags due to broadcast delay", with the exact values "set empirically".
//
// This package makes that empirical rule checkable: given a tag sleep
// period, a listen window, and a per-tag clock-drift bound, it derives the
// feasible reader schedule and simulates whether every tag actually catches
// every request. A tag that misses a request sleeps through the whole
// operation — it is temporarily absent from the system, which biases any
// estimation or detection built on top.
package dutycycle

import (
	"fmt"

	"netags/internal/prng"
)

// Params describes the sleep–wake contract between reader and tags. Times
// are in arbitrary consistent units (say, milliseconds).
type Params struct {
	// SleepPeriod is the nominal time a tag sleeps between listen windows.
	SleepPeriod float64
	// ListenWindow is how long a tag listens after waking before giving up
	// and going back to sleep (the "timeout period set by the tags").
	ListenWindow float64
	// MaxDrift is the clock-drift bound: a tag's real sleep duration is
	// nominal × (1 + d) with d uniform in [−MaxDrift, +MaxDrift].
	MaxDrift float64
	// BroadcastDelay is the worst-case propagation/decoding delay before a
	// request reaches a tag.
	BroadcastDelay float64
}

// Validate reports whether the parameters are meaningful.
func (p Params) Validate() error {
	if p.SleepPeriod <= 0 || p.ListenWindow <= 0 {
		return fmt.Errorf("dutycycle: sleep period and listen window must be positive, got %+v", p)
	}
	if p.MaxDrift < 0 || p.MaxDrift >= 1 {
		return fmt.Errorf("dutycycle: drift bound %v outside [0,1)", p.MaxDrift)
	}
	if p.BroadcastDelay < 0 {
		return fmt.Errorf("dutycycle: negative broadcast delay")
	}
	return nil
}

// MinListenWindow returns the smallest listen window under which some
// reader schedule can reach every tag despite drift: the request must land
// after the slowest clock wakes and before the fastest clock times out, so
// the window must cover 2·SleepPeriod·MaxDrift plus the broadcast delay.
func MinListenWindow(sleepPeriod, maxDrift, broadcastDelay float64) float64 {
	return 2*sleepPeriod*maxDrift + broadcastDelay
}

// Feasible reports whether the parameters admit a schedule that reaches
// every tag.
func (p Params) Feasible() bool {
	return p.ListenWindow >= MinListenWindow(p.SleepPeriod, p.MaxDrift, p.BroadcastDelay)
}

// RequestInterval returns the paper's rule made concrete: the reader sends
// its next request SleepPeriod·(1+MaxDrift) + BroadcastDelay after the
// previous one — "a little later than the timeout period" — so that even
// the slowest-drifting tag is already awake when the request arrives.
func (p Params) RequestInterval() float64 {
	return p.SleepPeriod*(1+p.MaxDrift) + p.BroadcastDelay
}

// Outcome summarizes a simulated sequence of reader requests.
type Outcome struct {
	// Requests is the number of reader requests simulated.
	Requests int
	// AwakePerRequest[k] is the number of tags that caught request k.
	AwakePerRequest []int
	// MissedPerRequest[k] lists the tags that slept through request k —
	// those tags are temporarily outside the system for that operation.
	MissedPerRequest [][]int
	// MissedTotal counts tag-request pairs where the tag slept through.
	MissedTotal int
	// AllCaught reports whether every tag caught every request.
	AllCaught bool
}

// Simulate runs nTags tags through nRequests reader requests spaced
// interval apart. Each tag draws a fixed drift rate from the bound and
// re-synchronizes whenever it catches a request (§II: the broadcast serves
// to loosely re-synchronize tag clocks); a missed request leaves the tag's
// schedule free-running from its last synchronization.
func Simulate(p Params, nTags, nRequests int, interval float64, seed uint64) (*Outcome, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if nTags <= 0 || nRequests <= 0 {
		return nil, fmt.Errorf("dutycycle: need positive tags and requests, got %d/%d", nTags, nRequests)
	}
	if interval <= 0 {
		return nil, fmt.Errorf("dutycycle: interval %v must be positive", interval)
	}
	src := prng.New(seed)
	drift := make([]float64, nTags)
	for i := range drift {
		drift[i] = (2*src.Float64() - 1) * p.MaxDrift
	}
	// wakeAt[i] is when tag i's next listen window opens. All tags start
	// synchronized at time 0 (the operation that deployed them).
	wakeAt := make([]float64, nTags)
	for i := range wakeAt {
		wakeAt[i] = p.SleepPeriod * (1 + drift[i])
	}

	out := &Outcome{Requests: nRequests, AllCaught: true}
	for k := 1; k <= nRequests; k++ {
		reqAt := float64(k) * interval
		heardAt := reqAt + p.BroadcastDelay // worst-case arrival at the tag
		awake := 0
		var missed []int
		for i := range wakeAt {
			// Advance the tag's schedule past any windows it already
			// slept/listened through without hearing anything.
			period := p.SleepPeriod * (1 + drift[i])
			for wakeAt[i]+p.ListenWindow < heardAt {
				wakeAt[i] += period
			}
			if wakeAt[i] <= heardAt {
				// Awake and listening when the request lands: caught. The
				// broadcast re-synchronizes the tag; its next window is one
				// (drifted) period after the request.
				awake++
				wakeAt[i] = heardAt + period
			} else {
				// Still asleep: missed this operation entirely.
				missed = append(missed, i)
				out.MissedTotal++
				out.AllCaught = false
			}
		}
		out.AwakePerRequest = append(out.AwakePerRequest, awake)
		out.MissedPerRequest = append(out.MissedPerRequest, missed)
	}
	return out, nil
}

package dutycycle

import (
	"math"
	"testing"
)

func params() Params {
	return Params{
		SleepPeriod:    10000, // 10 s in ms
		ListenWindow:   150,
		MaxDrift:       0.005, // 50 ppm-class clock over 10 s → generous 0.5%
		BroadcastDelay: 5,
	}
}

func TestValidate(t *testing.T) {
	if err := params().Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := []Params{
		{SleepPeriod: 0, ListenWindow: 1},
		{SleepPeriod: 1, ListenWindow: 0},
		{SleepPeriod: 1, ListenWindow: 1, MaxDrift: -0.1},
		{SleepPeriod: 1, ListenWindow: 1, MaxDrift: 1},
		{SleepPeriod: 1, ListenWindow: 1, BroadcastDelay: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, p)
		}
	}
}

func TestMinListenWindow(t *testing.T) {
	if got := MinListenWindow(10000, 0.005, 5); math.Abs(got-105) > 1e-9 {
		t.Fatalf("MinListenWindow = %v, want 105", got)
	}
	p := params()
	if !p.Feasible() {
		t.Fatal("default params should be feasible (150 >= 105)")
	}
	p.ListenWindow = 50
	if p.Feasible() {
		t.Fatal("undersized window reported feasible")
	}
}

func TestPaperRuleCatchesEveryTag(t *testing.T) {
	// The §II rule — next request a little later than the tag timeout —
	// must reach every tag on every request, indefinitely, because each
	// caught request re-synchronizes the clocks.
	p := params()
	out, err := Simulate(p, 500, 200, p.RequestInterval(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !out.AllCaught {
		t.Fatalf("paper's schedule missed %d tag-requests", out.MissedTotal)
	}
	for k, awake := range out.AwakePerRequest {
		if awake != 500 {
			t.Fatalf("request %d caught %d/500 tags", k+1, awake)
		}
	}
}

func TestZeroDriftTightSchedule(t *testing.T) {
	p := params()
	p.MaxDrift = 0
	p.BroadcastDelay = 0
	// With perfect clocks, requests exactly one period apart always land at
	// the window opening.
	out, err := Simulate(p, 100, 50, p.SleepPeriod, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !out.AllCaught {
		t.Fatalf("zero drift missed %d", out.MissedTotal)
	}
}

func TestUndersizedWindowMissesTags(t *testing.T) {
	// Shrink the listen window below the feasibility bound and stretch the
	// drift: free-running clocks must start missing requests.
	p := params()
	p.MaxDrift = 0.05
	p.ListenWindow = 20 // far below MinListenWindow = 2·10000·0.05+5 ≈ 1005
	out, err := Simulate(p, 300, 50, p.SleepPeriod*(1+p.MaxDrift), 5)
	if err != nil {
		t.Fatal(err)
	}
	if out.AllCaught {
		t.Fatal("infeasible window missed nothing (implausible)")
	}
	if out.MissedTotal == 0 {
		t.Fatal("no misses recorded")
	}
}

func TestResyncPreventsDriftAccumulation(t *testing.T) {
	// With resynchronization, a feasible schedule works for arbitrarily
	// many requests; the same drift without resync (interval ≠ rule,
	// window barely feasible) accumulates. We check the first part here:
	// 1000 requests, all caught.
	p := params()
	out, err := Simulate(p, 50, 1000, p.RequestInterval(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if !out.AllCaught {
		t.Fatalf("long horizon missed %d despite resync", out.MissedTotal)
	}
}

func TestSimulateValidation(t *testing.T) {
	p := params()
	if _, err := Simulate(p, 0, 10, 1, 1); err == nil {
		t.Error("zero tags accepted")
	}
	if _, err := Simulate(p, 10, 0, 1, 1); err == nil {
		t.Error("zero requests accepted")
	}
	if _, err := Simulate(p, 10, 10, 0, 1); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := Simulate(Params{}, 10, 10, 1, 1); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestDeterministic(t *testing.T) {
	p := params()
	p.MaxDrift = 0.05
	p.ListenWindow = 30
	a, err := Simulate(p, 100, 20, p.SleepPeriod, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(p, 100, 20, p.SleepPeriod, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a.MissedTotal != b.MissedTotal {
		t.Fatal("simulation not deterministic")
	}
}

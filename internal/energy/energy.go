// Package energy implements the cost accounting used throughout the paper's
// evaluation (§VI-A): execution time measured in slot counts, and per-tag
// energy measured indirectly as bits sent and bits received.
//
// The bits-received metric includes idle monitoring: a tag that stays awake
// to sense a slot pays for receiving that slot's one bit whether or not
// anything was transmitted, which is exactly why CCM's sleep rules (slots
// already relayed or silenced by the indicator vector) save energy.
package energy

import "fmt"

// IDBits is the length of a tag ID in bits, per the EPC Gen2 convention the
// paper adopts (96-bit IDs; the reader packs indicator-vector segments into
// 96-bit slots too).
const IDBits = 96

// Meter records per-tag sent and received bit counts for one protocol run.
type Meter struct {
	sent []int64
	recv []int64
}

// NewMeter returns a meter for n tags.
func NewMeter(n int) *Meter {
	return &Meter{sent: make([]int64, n), recv: make([]int64, n)}
}

// N returns the number of tags tracked.
func (m *Meter) N() int { return len(m.sent) }

// AddSent charges bits of transmission energy to tag i.
func (m *Meter) AddSent(i int, bits int64) { m.sent[i] += bits }

// AddReceived charges bits of reception/monitoring energy to tag i.
func (m *Meter) AddReceived(i int, bits int64) { m.recv[i] += bits }

// AddReceivedCounts charges counts[i] received bits to every tag i at once —
// the bulk form of the per-round monitoring charge, where tag i stays awake
// for exactly its unknown slots. counts must have one entry per tracked tag.
func (m *Meter) AddReceivedCounts(counts []int32) {
	if len(counts) != len(m.recv) {
		panic(fmt.Sprintf("energy: %d counts for meter of %d tags", len(counts), len(m.recv)))
	}
	for i, c := range counts {
		m.recv[i] += int64(c)
	}
}

// AddReceivedWhere charges bits received to every tag with include[i] true —
// the bulk form of a broadcast charge over a fixed subset (e.g. the
// indicator vector reaching every in-system tag). include must have one
// entry per tracked tag.
func (m *Meter) AddReceivedWhere(bits int64, include []bool) {
	if len(include) != len(m.recv) {
		panic(fmt.Sprintf("energy: %d mask entries for meter of %d tags", len(include), len(m.recv)))
	}
	for i, in := range include {
		if in {
			m.recv[i] += bits
		}
	}
}

// Reset zeroes every counter in place, so one meter allocation can be reused
// across protocol runs (arena-style pooling).
func (m *Meter) Reset() {
	clear(m.sent)
	clear(m.recv)
}

// Sent returns the bits sent by tag i.
func (m *Meter) Sent(i int) int64 { return m.sent[i] }

// Received returns the bits received by tag i.
func (m *Meter) Received(i int) int64 { return m.recv[i] }

// Merge adds the counts of other into m (used to combine per-reader sessions
// in the multi-reader extension). The meters must track the same number of
// tags; merging meters of different sizes is a caller bug, reported as an
// error naming both sizes rather than a panic so protocol drivers can wrap
// it with context. (Contrast stats.Sample.Merge, which has no size invariant
// and cannot fail.)
func (m *Meter) Merge(other *Meter) error {
	if len(m.sent) != len(other.sent) {
		return fmt.Errorf("energy: cannot merge meter of %d tags into meter of %d tags",
			len(other.sent), len(m.sent))
	}
	for i := range m.sent {
		m.sent[i] += other.sent[i]
		m.recv[i] += other.recv[i]
	}
	return nil
}

// Summary aggregates a meter over a subset of tags.
type Summary struct {
	// Count is the number of tags included.
	Count int
	// MaxSent / MaxReceived are the worst-case per-tag costs (Tables I, II).
	MaxSent     int64
	MaxReceived int64
	// AvgSent / AvgReceived are the mean per-tag costs (Tables III, IV).
	AvgSent     float64
	AvgReceived float64
	// TotalSent / TotalReceived are network-wide sums.
	TotalSent     int64
	TotalReceived int64
}

// Summarize aggregates over the tags for which include returns true. A nil
// include means all tags. The paper reports statistics over tags that are in
// the system, so callers typically pass a reachability filter.
func (m *Meter) Summarize(include func(i int) bool) Summary {
	var s Summary
	for i := range m.sent {
		if include != nil && !include(i) {
			continue
		}
		s.Count++
		s.TotalSent += m.sent[i]
		s.TotalReceived += m.recv[i]
		if m.sent[i] > s.MaxSent {
			s.MaxSent = m.sent[i]
		}
		if m.recv[i] > s.MaxReceived {
			s.MaxReceived = m.recv[i]
		}
	}
	if s.Count > 0 {
		s.AvgSent = float64(s.TotalSent) / float64(s.Count)
		s.AvgReceived = float64(s.TotalReceived) / float64(s.Count)
	}
	return s
}

// SummarizeByTier aggregates per tier: element k of the result summarizes
// the tags with tier[i] == k (element 0 collects the unreachable ones).
// This is the view behind the paper's load-balance observation (§VI-B2:
// CCM's max per-tag cost is close to its average, across all tiers).
func (m *Meter) SummarizeByTier(tier []int16, maxTier int) []Summary {
	if len(tier) != len(m.sent) {
		panic(fmt.Sprintf("energy: %d tier entries for meter of %d tags", len(tier), len(m.sent)))
	}
	out := make([]Summary, maxTier+1)
	for k := 0; k <= maxTier; k++ {
		k := int16(k)
		out[k] = m.Summarize(func(i int) bool { return tier[i] == k })
	}
	return out
}

// Clock counts the time slots a protocol consumes, split by slot kind: short
// slots in which a tag transmits one bit (t_s) and long slots in which the
// reader transmits a 96-bit message (t_id). Fig. 4 reports the plain total;
// WeightedTime lets callers apply physical slot lengths.
type Clock struct {
	// ShortSlots counts 1-bit slots (frame slots, checking-frame slots).
	ShortSlots int64
	// LongSlots counts 96-bit reader-broadcast slots (requests,
	// indicator-vector segments, polls in SICP).
	LongSlots int64
}

// Total returns the total number of slots of either kind — the unit of
// Fig. 4.
func (c Clock) Total() int64 { return c.ShortSlots + c.LongSlots }

// WeightedTime returns the execution time when a tag slot lasts ts units and
// a reader slot lasts tid units (eq. (3) leaves these as parameters because
// the Gen2 standard does not pin them).
func (c Clock) WeightedTime(ts, tid float64) float64 {
	return float64(c.ShortSlots)*ts + float64(c.LongSlots)*tid
}

// Add accumulates another clock (e.g. per-round or per-reader costs).
func (c *Clock) Add(other Clock) {
	c.ShortSlots += other.ShortSlots
	c.LongSlots += other.LongSlots
}

package energy

import (
	"math"
	"strings"
	"testing"
)

func TestMeterBasics(t *testing.T) {
	m := NewMeter(3)
	if m.N() != 3 {
		t.Fatalf("N = %d, want 3", m.N())
	}
	m.AddSent(0, 10)
	m.AddSent(0, 5)
	m.AddReceived(2, 7)
	if m.Sent(0) != 15 {
		t.Fatalf("Sent(0) = %d, want 15", m.Sent(0))
	}
	if m.Sent(1) != 0 || m.Received(1) != 0 {
		t.Fatal("untouched tag has nonzero counts")
	}
	if m.Received(2) != 7 {
		t.Fatalf("Received(2) = %d, want 7", m.Received(2))
	}
}

func TestSummarizeAll(t *testing.T) {
	m := NewMeter(4)
	m.AddSent(0, 10)
	m.AddSent(1, 30)
	m.AddReceived(2, 100)
	m.AddReceived(3, 50)
	s := m.Summarize(nil)
	if s.Count != 4 {
		t.Fatalf("Count = %d, want 4", s.Count)
	}
	if s.MaxSent != 30 || s.MaxReceived != 100 {
		t.Fatalf("max = %d/%d, want 30/100", s.MaxSent, s.MaxReceived)
	}
	if s.TotalSent != 40 || s.TotalReceived != 150 {
		t.Fatalf("totals = %d/%d, want 40/150", s.TotalSent, s.TotalReceived)
	}
	if math.Abs(s.AvgSent-10) > 1e-12 || math.Abs(s.AvgReceived-37.5) > 1e-12 {
		t.Fatalf("avg = %v/%v, want 10/37.5", s.AvgSent, s.AvgReceived)
	}
}

func TestSummarizeFiltered(t *testing.T) {
	m := NewMeter(4)
	for i := 0; i < 4; i++ {
		m.AddSent(i, int64(i*10))
	}
	s := m.Summarize(func(i int) bool { return i%2 == 0 }) // tags 0, 2
	if s.Count != 2 {
		t.Fatalf("Count = %d, want 2", s.Count)
	}
	if s.MaxSent != 20 || s.TotalSent != 20 {
		t.Fatalf("filtered MaxSent/Total = %d/%d, want 20/20", s.MaxSent, s.TotalSent)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	m := NewMeter(2)
	s := m.Summarize(func(int) bool { return false })
	if s.Count != 0 || s.AvgSent != 0 || s.AvgReceived != 0 {
		t.Fatalf("empty summary not zero: %+v", s)
	}
}

func TestMerge(t *testing.T) {
	a, b := NewMeter(2), NewMeter(2)
	a.AddSent(0, 1)
	b.AddSent(0, 2)
	b.AddReceived(1, 9)
	if err := a.Merge(b); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if a.Sent(0) != 3 || a.Received(1) != 9 {
		t.Fatalf("merge result wrong: sent=%d recv=%d", a.Sent(0), a.Received(1))
	}
	// b unchanged.
	if b.Sent(0) != 2 {
		t.Fatal("Merge mutated the argument")
	}
}

func TestMergeSizeMismatch(t *testing.T) {
	err := NewMeter(2).Merge(NewMeter(3))
	if err == nil {
		t.Fatal("size mismatch did not return an error")
	}
	if !strings.Contains(err.Error(), "3") || !strings.Contains(err.Error(), "2") {
		t.Fatalf("error %q does not name both sizes", err)
	}
}

func TestClock(t *testing.T) {
	var c Clock
	c.ShortSlots = 100
	c.LongSlots = 5
	if c.Total() != 105 {
		t.Fatalf("Total = %d, want 105", c.Total())
	}
	if got := c.WeightedTime(1, 10); got != 150 {
		t.Fatalf("WeightedTime = %v, want 150", got)
	}
	c.Add(Clock{ShortSlots: 1, LongSlots: 2})
	if c.ShortSlots != 101 || c.LongSlots != 7 {
		t.Fatalf("Add result wrong: %+v", c)
	}
}

func TestIDBits(t *testing.T) {
	if IDBits != 96 {
		t.Fatalf("IDBits = %d, want 96 (EPC Gen2)", IDBits)
	}
}

func TestSummarizeByTier(t *testing.T) {
	m := NewMeter(4)
	m.AddSent(0, 10) // tier 1
	m.AddSent(1, 20) // tier 1
	m.AddSent(2, 40) // tier 2
	// tag 3 stays at tier 0 (unreachable)
	tiers := []int16{1, 1, 2, 0}
	got := m.SummarizeByTier(tiers, 2)
	if len(got) != 3 {
		t.Fatalf("summaries = %d, want 3", len(got))
	}
	if got[0].Count != 1 || got[0].TotalSent != 0 {
		t.Fatalf("tier 0 summary wrong: %+v", got[0])
	}
	if got[1].Count != 2 || got[1].TotalSent != 30 || got[1].MaxSent != 20 {
		t.Fatalf("tier 1 summary wrong: %+v", got[1])
	}
	if got[2].Count != 1 || got[2].TotalSent != 40 {
		t.Fatalf("tier 2 summary wrong: %+v", got[2])
	}
}

func TestSummarizeByTierSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch did not panic")
		}
	}()
	NewMeter(2).SummarizeByTier([]int16{1}, 1)
}

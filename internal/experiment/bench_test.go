package experiment

import (
	"context"
	"fmt"
	"testing"
)

// BenchmarkSweepWorkers runs one small full sweep per iteration at several
// worker counts. Results are bit-identical across counts (seeds derive from
// grid position, not execution order), so the only thing that moves is wall
// clock — the point of the benchmark. On a single-core runner the counts
// converge; the gate's tolerance absorbs that.
func BenchmarkSweepWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := Paper()
			cfg.N = 400
			cfg.Trials = 2
			cfg.RValues = []float64{4, 8}
			cfg.Protocols = []Protocol{SICP, GMLECCM}
			cfg.Workers = workers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := RunContext(context.Background(), cfg, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTrackerObserve pins the cost of the /progress bookkeeping that
// -http stacks onto every progress event.
func BenchmarkTrackerObserve(b *testing.B) {
	tr := NewTracker()
	tr.SetTotal(b.N)
	p := Progress{Sweep: "range", R: 6, Trial: 1, Trials: 2, Tiers: 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Observe(p)
	}
}

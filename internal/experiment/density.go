package experiment

import (
	"context"
	"fmt"
	"strings"
	"time"

	"netags/internal/geom"
	"netags/internal/gmle"
	"netags/internal/obs"
	"netags/internal/sicp"
	"netags/internal/stats"
	"netags/internal/topology"
	"netags/internal/trp"
)

// DensityConfig parameterizes a population sweep — an extension beyond the
// paper, which fixes n = 10,000. CCM's air time is governed by the frame
// size and tier count, not the population, while SICP's grows linearly with
// the IDs it must haul; sweeping n makes that scaling visible.
//
// Radius, Trials, Seed, and Workers come from the embedded BaseConfig;
// BaseConfig.N is ignored — NValues supplies the populations.
type DensityConfig struct {
	BaseConfig
	// NValues are the populations to sweep.
	NValues []int
	// R is the inter-tag range (paper geometry by default).
	R float64
}

// DensityRow reports one population.
type DensityRow struct {
	N int
	// GMLESlots / TRPSlots / SICPSlots are the execution times with frames
	// sized for this population.
	GMLESlots stats.Sample
	TRPSlots  stats.Sample
	SICPSlots stats.Sample
	// Tiers tracks the (density-dependent) tier count.
	Tiers stats.Sample
}

// DensityResults is the sweep outcome.
type DensityResults struct {
	Config DensityConfig
	Rows   []DensityRow
}

// densityPoint is one population with its per-n derived frame sizes.
type densityPoint struct {
	n, gmleF, trpF int
}

// densityTrial is one deployment's slot counts.
type densityTrial struct {
	tiers           int
	gmle, trp, sicp int64
}

// RunDensitySweep measures how each protocol's air time scales with the
// population.
//
// Deprecated: shim over RunDensitySweepContext; results are identical.
func RunDensitySweep(cfg DensityConfig) (*DensityResults, error) {
	return RunDensitySweepContext(context.Background(), cfg, nil)
}

// RunDensitySweepContext runs the population sweep over cfg.Workers
// goroutines. Frame sizes are re-derived per n, exactly as the paper sizes
// its frames for n = 10,000.
func RunDensitySweepContext(ctx context.Context, cfg DensityConfig, observe func(Progress)) (*DensityResults, error) {
	return RunDensitySweepPartial(ctx, cfg, nil, nil, observe)
}

// RunDensitySweepPartial is RunDensitySweepContext with resume support —
// the same contract as RunContextPartial: skipped points come back as
// zero-valued rows (only N set) and pointDone fires once per computed
// point with its fully aggregated DensityRow.
func RunDensitySweepPartial(ctx context.Context, cfg DensityConfig, skip []bool, pointDone func(PointInfo, DensityRow), observe func(Progress)) (*DensityResults, error) {
	if err := cfg.validate(false); err != nil {
		return nil, err
	}
	if len(cfg.NValues) == 0 || cfg.R <= 0 {
		return nil, fmt.Errorf("experiment: incomplete density config %+v", cfg)
	}
	points := make([]densityPoint, len(cfg.NValues))
	for i, n := range cfg.NValues {
		if n <= 0 {
			return nil, fmt.Errorf("experiment: population %d must be positive", n)
		}
		gmleF, err := gmle.FrameSizeFor(0.05, 0.95)
		if err != nil {
			return nil, err
		}
		tol := n / 200
		if tol == 0 {
			tol = 1
		}
		trpF, err := trp.FrameSizeFor(n, tol, 0.95)
		if err != nil {
			return nil, err
		}
		points[i] = densityPoint{n: n, gmleF: gmleF, trpF: trpF}
	}

	sweep := Sweep[densityPoint, densityTrial]{
		Base:   cfg.BaseConfig,
		Points: points,
		Skip:   skip,
		Key:    func(p densityPoint) uint64 { return IntKey(p.n) },
		Run: func(ctx context.Context, p densityPoint, trial int, seeds TrialSeeds) (densityTrial, error) {
			d := geom.NewUniformDisk(p.n, cfg.Radius, seeds.Deploy)
			nw, err := topology.Build(d, 0, topology.PaperRanges(cfg.R))
			if err != nil {
				return densityTrial{}, fmt.Errorf("n=%d trial %d: %w", p.n, trial, err)
			}
			gm, _, err := runProtocolSized(GMLECCM, nw, p.gmleF, gmle.SamplingFor(p.gmleF, float64(p.n)), seeds.Proto, cfg.Tracer)
			if err != nil {
				return densityTrial{}, err
			}
			tr, _, err := runProtocolSized(TRPCCM, nw, p.trpF, 1, seeds.Proto, cfg.Tracer)
			if err != nil {
				return densityTrial{}, err
			}
			si, _, err := runProtocolSized(SICP, nw, 0, 0, seeds.Proto, cfg.Tracer)
			if err != nil {
				return densityTrial{}, err
			}
			return densityTrial{tiers: nw.K, gmle: gm, trp: tr, sicp: si}, nil
		},
		Event: func(p densityPoint, trial int, dt densityTrial, elapsed time.Duration) Progress {
			return Progress{
				Sweep: "density", N: p.n, Trial: trial, Trials: cfg.Trials,
				Protocols: []Protocol{GMLECCM, TRPCCM, SICP}, Tiers: dt.tiers, Elapsed: elapsed,
			}
		},
	}
	if pointDone != nil {
		sweep.PointDone = func(p SweepPoint[densityPoint, densityTrial]) {
			pointDone(PointInfo{Index: p.Index, Seeds: p.Seeds, Elapsed: p.Elapsed},
				buildDensityRow(p.Point.n, p.Trials))
		}
	}
	grid, err := RunSweep(ctx, sweep, observe)
	if err != nil {
		return nil, err
	}

	res := &DensityResults{Config: cfg}
	for pi, p := range points {
		if skip != nil && skip[pi] {
			res.Rows = append(res.Rows, DensityRow{N: p.n})
			continue
		}
		res.Rows = append(res.Rows, buildDensityRow(p.n, grid[pi]))
	}
	return res, nil
}

// buildDensityRow folds one population's trials into its DensityRow.
func buildDensityRow(n int, trials []densityTrial) DensityRow {
	row := DensityRow{N: n}
	for _, dt := range trials {
		row.Tiers.Add(float64(dt.tiers))
		row.GMLESlots.Add(float64(dt.gmle))
		row.TRPSlots.Add(float64(dt.trp))
		row.SICPSlots.Add(float64(dt.sicp))
	}
	return row
}

// runProtocolSized runs one protocol with explicit frame parameters and
// returns its slot count.
func runProtocolSized(p Protocol, nw *topology.Network, frame int, sampling float64, seed uint64, tracer obs.Tracer) (int64, int64, error) {
	switch p {
	case GMLECCM, TRPCCM:
		r, err := runCCM(nw, frame, sampling, seed, false, tracer)
		if err != nil {
			return 0, 0, err
		}
		return r.clock.Total(), 0, nil
	case SICP:
		r, err := sicp.Collect(nw, sicp.Options{Seed: seed, Tracer: tracer})
		if err != nil {
			return 0, 0, err
		}
		return r.Clock.Total(), 0, nil
	}
	return 0, 0, fmt.Errorf("experiment: unsupported protocol %q in density sweep", p)
}

// Render prints the sweep as a table.
func (r *DensityResults) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Population sweep: execution time in slots (r=%g, %d trials, frames re-sized per n)\n",
		r.Config.R, r.Config.Trials)
	fmt.Fprintf(&b, "%8s  %6s  %12s  %12s  %12s\n", "n", "tiers", "SICP", "GMLE-CCM", "TRP-CCM")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8d  %6.1f  %12.0f  %12.0f  %12.0f\n",
			row.N, row.Tiers.Mean(), row.SICPSlots.Mean(), row.GMLESlots.Mean(), row.TRPSlots.Mean())
	}
	return b.String()
}

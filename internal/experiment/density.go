package experiment

import (
	"fmt"
	"strings"

	"netags/internal/geom"
	"netags/internal/gmle"
	"netags/internal/prng"
	"netags/internal/sicp"
	"netags/internal/stats"
	"netags/internal/topology"
	"netags/internal/trp"
)

// DensityConfig parameterizes a population sweep — an extension beyond the
// paper, which fixes n = 10,000. CCM's air time is governed by the frame
// size and tier count, not the population, while SICP's grows linearly with
// the IDs it must haul; sweeping n makes that scaling visible.
type DensityConfig struct {
	// NValues are the populations to sweep.
	NValues []int
	// Radius and R mirror Config (paper geometry by default).
	Radius float64
	R      float64
	Trials int
	Seed   uint64
}

// DensityRow reports one population.
type DensityRow struct {
	N int
	// GMLESlots / TRPSlots / SICPSlots are the execution times with frames
	// sized for this population.
	GMLESlots stats.Sample
	TRPSlots  stats.Sample
	SICPSlots stats.Sample
	// Tiers tracks the (density-dependent) tier count.
	Tiers stats.Sample
}

// DensityResults is the sweep outcome.
type DensityResults struct {
	Config DensityConfig
	Rows   []DensityRow
}

// RunDensitySweep measures how each protocol's air time scales with the
// population. Frame sizes are re-derived per n, exactly as the paper sizes
// its frames for n = 10,000.
func RunDensitySweep(cfg DensityConfig) (*DensityResults, error) {
	if len(cfg.NValues) == 0 || cfg.Radius <= 0 || cfg.R <= 0 || cfg.Trials <= 0 {
		return nil, fmt.Errorf("experiment: incomplete density config %+v", cfg)
	}
	res := &DensityResults{Config: cfg}
	seeds := prng.New(cfg.Seed)
	for _, n := range cfg.NValues {
		if n <= 0 {
			return nil, fmt.Errorf("experiment: population %d must be positive", n)
		}
		gmleF, err := gmle.FrameSizeFor(0.05, 0.95)
		if err != nil {
			return nil, err
		}
		tol := n / 200
		if tol == 0 {
			tol = 1
		}
		trpF, err := trp.FrameSizeFor(n, tol, 0.95)
		if err != nil {
			return nil, err
		}
		row := DensityRow{N: n}
		for trial := 0; trial < cfg.Trials; trial++ {
			d := geom.NewUniformDisk(n, cfg.Radius, seeds.Uint64())
			nw, err := topology.Build(d, 0, topology.PaperRanges(cfg.R))
			if err != nil {
				return nil, err
			}
			row.Tiers.Add(float64(nw.K))
			seed := seeds.Uint64()
			gm, _, err := runProtocolSized(GMLECCM, nw, gmleF, gmle.SamplingFor(gmleF, float64(n)), seed)
			if err != nil {
				return nil, err
			}
			tr, _, err := runProtocolSized(TRPCCM, nw, trpF, 1, seed)
			if err != nil {
				return nil, err
			}
			si, _, err := runProtocolSized(SICP, nw, 0, 0, seed)
			if err != nil {
				return nil, err
			}
			row.GMLESlots.Add(float64(gm))
			row.TRPSlots.Add(float64(tr))
			row.SICPSlots.Add(float64(si))
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// runProtocolSized runs one protocol with explicit frame parameters and
// returns its slot count.
func runProtocolSized(p Protocol, nw *topology.Network, frame int, sampling float64, seed uint64) (int64, int64, error) {
	switch p {
	case GMLECCM, TRPCCM:
		r, err := runCCM(nw, frame, sampling, seed, false)
		if err != nil {
			return 0, 0, err
		}
		return r.clock.Total(), 0, nil
	case SICP:
		r, err := sicp.Collect(nw, sicp.Options{Seed: seed})
		if err != nil {
			return 0, 0, err
		}
		return r.Clock.Total(), 0, nil
	}
	return 0, 0, fmt.Errorf("experiment: unsupported protocol %q in density sweep", p)
}

// Render prints the sweep as a table.
func (r *DensityResults) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Population sweep: execution time in slots (r=%g, %d trials, frames re-sized per n)\n",
		r.Config.R, r.Config.Trials)
	fmt.Fprintf(&b, "%8s  %6s  %12s  %12s  %12s\n", "n", "tiers", "SICP", "GMLE-CCM", "TRP-CCM")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8d  %6.1f  %12.0f  %12.0f  %12.0f\n",
			row.N, row.Tiers.Mean(), row.SICPSlots.Mean(), row.GMLESlots.Mean(), row.TRPSlots.Mean())
	}
	return b.String()
}

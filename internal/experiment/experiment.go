// Package experiment is the harness that regenerates every table and figure
// of the paper's evaluation (§VI): it sweeps the inter-tag range r, runs the
// three protocols over freshly sampled deployments, aggregates per-trial
// metrics, and renders the paper's tables.
// Trials are fanned out over a worker pool (see runner.go) and every
// trial's seeds are position-derived: the deployment and protocol seeds of
// trial t at sweep point p are prng.DeriveSeed(cfg.Seed, key(p), t, stream),
// not draws from a shared generator in loop order. That makes the reported
// numbers independent of scheduling — `Workers: 1` and `Workers: N` produce
// bit-identical Results — and it means inserting, skipping, or reordering
// sweep points cannot reshuffle which deployment a given (point, trial)
// gets. TestSeedDerivationPinned pins the exact derivation.
package experiment

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"netags/internal/core"
	"netags/internal/energy"
	"netags/internal/geom"
	"netags/internal/gmle"
	"netags/internal/obs"
	"netags/internal/sicp"
	"netags/internal/stats"
	"netags/internal/topology"
	"netags/internal/trp"
)

// Protocol identifies one protocol under evaluation.
type Protocol string

// The protocols of §VI-B, plus the CICP extension.
const (
	GMLECCM Protocol = "GMLE-CCM"
	TRPCCM  Protocol = "TRP-CCM"
	SICP    Protocol = "SICP"
	CICP    Protocol = "CICP"
)

// Config parameterizes a sweep. The zero value is not valid; start from
// Paper() or Quick(). N, Radius, Trials, Seed, and Workers live in the
// embedded BaseConfig shared with the other sweeps.
type Config struct {
	BaseConfig
	// RValues are the inter-tag ranges to sweep.
	RValues []float64
	// GMLEFrame / TRPFrame are the application frame sizes. GMLE's sampling
	// probability is set to 1.59·f/N as in §VI-B.
	GMLEFrame int
	TRPFrame  int
	// Protocols selects what to run; empty means the paper's three.
	Protocols []Protocol
	// ContentionWindow forwards to SICP/CICP.
	ContentionWindow int
	// DisableIndicatorVector runs the CCM protocols without §III-D
	// silencing (the flooding ablation).
	DisableIndicatorVector bool
}

// Paper returns the full §VI-A configuration: n = 10,000 tags in a 30 m
// disk, r swept 2–10 m, 100 trials.
func Paper() Config {
	return Config{
		BaseConfig: BaseConfig{
			N:      10000,
			Radius: 30,
			Trials: 100,
			Seed:   1,
		},
		RValues:   []float64{2, 3, 4, 5, 6, 7, 8, 9, 10},
		GMLEFrame: gmle.PaperFrameSize,
		TRPFrame:  trp.PaperFrameSize,
		Protocols: []Protocol{SICP, GMLECCM, TRPCCM},
	}
}

// Quick returns a scaled-down configuration for tests and smoke runs:
// paper geometry, fewer trials.
func Quick() Config {
	c := Paper()
	c.Trials = 3
	c.RValues = []float64{2, 6, 10}
	return c
}

// Metrics aggregates one protocol's per-trial observations at one r.
type Metrics struct {
	Slots       stats.Sample // execution time, total slot count (Fig. 4)
	MaxSent     stats.Sample // Table I
	MaxReceived stats.Sample // Table II
	AvgSent     stats.Sample // Table III
	AvgReceived stats.Sample // Table IV
}

// Row holds everything measured at one inter-tag range.
type Row struct {
	R     float64
	Tiers stats.Sample // Fig. 3
	// ByProtocol maps each protocol to its metrics.
	ByProtocol map[Protocol]*Metrics
}

// Results is the output of a sweep.
type Results struct {
	Config Config
	Rows   []Row
}

// Run executes the sweep. progress, if non-nil, receives one rendered line
// per completed (r, trial) pair.
//
// Deprecated: Run is a compatibility shim over RunContext. New callers
// should use RunContext, which supports cancellation and structured
// Progress events. Results are identical either way.
func Run(cfg Config, progress func(string)) (*Results, error) {
	var observe func(Progress)
	if progress != nil {
		observe = func(p Progress) { progress(p.String()) }
	}
	return RunContext(context.Background(), cfg, observe)
}

// rangeTrial is one deployment's measurements, carried out of the worker
// pool and reduced into Row accumulators in grid order afterwards.
type rangeTrial struct {
	tiers  int
	protos []protoObs // indexed like the validated protocol list
}

// protoObs is one protocol's raw observations for one trial.
type protoObs struct {
	slots                int64
	maxSent, maxReceived int64
	avgSent, avgReceived float64
}

// PointInfo identifies one completed sweep point for the per-point hooks
// of the Partial runners: its grid index, the position-derived seeds each
// trial ran with, and the summed wall time of the point's work items.
type PointInfo struct {
	Index   int
	Seeds   []TrialSeeds
	Elapsed time.Duration
}

// RunContext executes the sweep, fanning the (r, trial) grid out over
// cfg.Workers goroutines (0 = GOMAXPROCS). Results are bit-identical for
// every worker count. observe, if non-nil, receives one Progress event per
// completed trial, serialized but in completion order.
func RunContext(ctx context.Context, cfg Config, observe func(Progress)) (*Results, error) {
	return RunContextPartial(ctx, cfg, nil, nil, observe)
}

// RunContextPartial is RunContext with resume support: points whose
// skip[i] is true are not run (their Rows come back with a nil ByProtocol
// map — the caller is expected to already hold their results), and
// pointDone, if non-nil, fires once per computed point, as soon as its
// last trial lands, with the point's fully aggregated Row. Because seeds
// are position-derived and per-point aggregation reads only that point's
// trials, a Row delivered through pointDone is bit-identical to the same
// Row of an uninterrupted run — the contract checkpoint/resume builds on.
func RunContextPartial(ctx context.Context, cfg Config, skip []bool, pointDone func(PointInfo, Row), observe func(Progress)) (*Results, error) {
	if err := cfg.validate(true); err != nil {
		return nil, err
	}
	if len(cfg.RValues) == 0 {
		return nil, fmt.Errorf("experiment: no r values in config %+v", cfg)
	}
	if cfg.GMLEFrame <= 0 || cfg.TRPFrame <= 0 {
		return nil, fmt.Errorf("experiment: frame sizes must be positive")
	}
	protocols := cfg.Protocols
	if len(protocols) == 0 {
		protocols = []Protocol{SICP, GMLECCM, TRPCCM}
	}
	for _, p := range protocols {
		switch p {
		case GMLECCM, TRPCCM, SICP, CICP:
		default:
			return nil, fmt.Errorf("experiment: unknown protocol %q", p)
		}
	}

	sweep := Sweep[float64, rangeTrial]{
		Base:   cfg.BaseConfig,
		Points: cfg.RValues,
		Key:    FloatKey,
		Skip:   skip,
		Run: func(ctx context.Context, r float64, trial int, seeds TrialSeeds) (rangeTrial, error) {
			d := geom.NewUniformDisk(cfg.N, cfg.Radius, seeds.Deploy)
			nw, err := topology.Build(d, 0, topology.PaperRanges(r))
			if err != nil {
				return rangeTrial{}, fmt.Errorf("r=%v trial %d: %w", r, trial, err)
			}
			in := func(i int) bool { return nw.Tier[i] > 0 }
			tr := rangeTrial{tiers: nw.K, protos: make([]protoObs, len(protocols))}
			for pi, p := range protocols {
				clock, meter, err := runProtocol(p, nw, cfg, seeds.Proto)
				if err != nil {
					return rangeTrial{}, fmt.Errorf("r=%v trial %d %s: %w", r, trial, p, err)
				}
				sum := meter.Summarize(in)
				tr.protos[pi] = protoObs{
					slots:       clock.Total(),
					maxSent:     sum.MaxSent,
					maxReceived: sum.MaxReceived,
					avgSent:     sum.AvgSent,
					avgReceived: sum.AvgReceived,
				}
			}
			return tr, nil
		},
		Event: func(r float64, trial int, tr rangeTrial, elapsed time.Duration) Progress {
			return Progress{
				Sweep: "range", R: r, Trial: trial, Trials: cfg.Trials,
				Protocols: protocols, Tiers: tr.tiers, Elapsed: elapsed,
			}
		},
	}
	if pointDone != nil {
		sweep.PointDone = func(p SweepPoint[float64, rangeTrial]) {
			pointDone(PointInfo{Index: p.Index, Seeds: p.Seeds, Elapsed: p.Elapsed},
				buildRangeRow(p.Point, protocols, p.Trials))
		}
	}
	grid, err := RunSweep(ctx, sweep, observe)
	if err != nil {
		return nil, err
	}

	res := &Results{Config: cfg}
	for pi, r := range cfg.RValues {
		if skip != nil && skip[pi] {
			res.Rows = append(res.Rows, Row{R: r})
			continue
		}
		res.Rows = append(res.Rows, buildRangeRow(r, protocols, grid[pi]))
	}
	sort.Slice(res.Rows, func(i, j int) bool { return res.Rows[i].R < res.Rows[j].R })
	return res, nil
}

// buildRangeRow folds one point's trials (in trial order) into its Row.
// It reads nothing outside the point, so the Row is a pure function of
// (point, trials) — per-point results are content-addressable.
func buildRangeRow(r float64, protocols []Protocol, trials []rangeTrial) Row {
	row := Row{R: r, ByProtocol: make(map[Protocol]*Metrics, len(protocols))}
	for _, p := range protocols {
		row.ByProtocol[p] = &Metrics{}
	}
	for _, tr := range trials {
		row.Tiers.Add(float64(tr.tiers))
		for i, p := range protocols {
			o, m := tr.protos[i], row.ByProtocol[p]
			m.Slots.Add(float64(o.slots))
			m.MaxSent.Add(float64(o.maxSent))
			m.MaxReceived.Add(float64(o.maxReceived))
			m.AvgSent.Add(o.avgSent)
			m.AvgReceived.Add(o.avgReceived)
		}
	}
	return row
}

func runProtocol(p Protocol, nw *topology.Network, cfg Config, seed uint64) (energy.Clock, *energy.Meter, error) {
	switch p {
	case GMLECCM:
		r, err := runCCM(nw, cfg.GMLEFrame, gmle.SamplingFor(cfg.GMLEFrame, float64(cfg.N)), seed, cfg.DisableIndicatorVector, cfg.Tracer)
		if err != nil {
			return energy.Clock{}, nil, err
		}
		return r.clock, r.meter, nil
	case TRPCCM:
		r, err := runCCM(nw, cfg.TRPFrame, 1, seed, cfg.DisableIndicatorVector, cfg.Tracer)
		if err != nil {
			return energy.Clock{}, nil, err
		}
		return r.clock, r.meter, nil
	case SICP:
		r, err := sicp.Collect(nw, sicp.Options{Seed: seed, ContentionWindow: cfg.ContentionWindow, Tracer: cfg.Tracer})
		if err != nil {
			return energy.Clock{}, nil, err
		}
		return r.Clock, r.Meter, nil
	case CICP:
		r, err := sicp.CollectCICP(nw, sicp.Options{Seed: seed, ContentionWindow: cfg.ContentionWindow, Tracer: cfg.Tracer})
		if err != nil {
			return energy.Clock{}, nil, err
		}
		return r.Clock, r.Meter, nil
	}
	return energy.Clock{}, nil, fmt.Errorf("experiment: unknown protocol %q", p)
}

// runnerPool amortizes core session scratch across the sweep's worker pool:
// trials executing on the same worker reuse one arena instead of allocating
// fresh per-round state every session. Which Runner serves which trial never
// affects results — Runners are behaviorally identical to fresh state
// (simtest's TestRunnerNoStateBleed pins this) — so pooling preserves the
// package's bit-identical-across-Workers guarantee.
var runnerPool = sync.Pool{New: func() any { return core.NewRunner() }}

// runSessionPooled is core.RunSession through the worker-shared arena pool.
func runSessionPooled(nw *topology.Network, cfg core.Config) (*core.Result, error) {
	r := runnerPool.Get().(*core.Runner)
	defer runnerPool.Put(r)
	return r.Run(nw, cfg)
}

type ccmRun struct {
	clock energy.Clock
	meter *energy.Meter
}

func runCCM(nw *topology.Network, frame int, sampling float64, seed uint64, noIndicator bool, tracer obs.Tracer) (*ccmRun, error) {
	cfg := core.Config{
		FrameSize:              frame,
		Seed:                   seed,
		Sampling:               sampling,
		DisableIndicatorVector: noIndicator,
		Tracer:                 tracer,
	}
	if noIndicator {
		// Flooding needs more rounds than Algorithm 1's L_c bound: the
		// inner tags' bits keep rippling outward after the reader has
		// everything.
		cfg.MaxRounds = 4 * nw.Ranges.CheckingFrameLen()
	}
	res, err := runSessionPooled(nw, cfg)
	if err != nil {
		return nil, err
	}
	return &ccmRun{clock: res.Clock, meter: res.Meter}, nil
}

// Render helpers ------------------------------------------------------------

// RenderFig3 prints the tier count versus r (Fig. 3).
func (r *Results) RenderFig3() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 3: number of tiers (n=%d, %d trials)\n", r.Config.N, r.Config.Trials)
	fmt.Fprintf(&b, "%6s  %s\n", "r (m)", "tiers (mean ± ci95)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%6g  %.2f ± %.2f\n", row.R, row.Tiers.Mean(), row.Tiers.CI95())
	}
	return b.String()
}

// RenderFig4 prints execution time versus r for every protocol (Fig. 4).
func (r *Results) RenderFig4() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 4: execution time in slots (n=%d, %d trials)\n", r.Config.N, r.Config.Trials)
	protos := r.protocols()
	fmt.Fprintf(&b, "%6s", "r (m)")
	for _, p := range protos {
		fmt.Fprintf(&b, "  %12s", p)
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%6g", row.R)
		for _, p := range protos {
			fmt.Fprintf(&b, "  %12.0f", row.ByProtocol[p].Slots.Mean())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TableMetric selects which paper table to render.
type TableMetric int

// The four energy tables of §VI-B.
const (
	TableMaxSent TableMetric = iota + 1
	TableMaxReceived
	TableAvgSent
	TableAvgReceived
)

func (t TableMetric) String() string {
	switch t {
	case TableMaxSent:
		return "Table I: maximum number of bits sent per tag"
	case TableMaxReceived:
		return "Table II: maximum number of bits received per tag"
	case TableAvgSent:
		return "Table III: average number of bits sent per tag"
	case TableAvgReceived:
		return "Table IV: average number of bits received per tag"
	}
	return "unknown table"
}

func (m *Metrics) value(t TableMetric) float64 {
	switch t {
	case TableMaxSent:
		return m.MaxSent.Mean()
	case TableMaxReceived:
		return m.MaxReceived.Mean()
	case TableAvgSent:
		return m.AvgSent.Mean()
	case TableAvgReceived:
		return m.AvgReceived.Mean()
	}
	return 0
}

// RenderTable prints one of the paper's four energy tables: protocols as
// rows, r values as columns, exactly like the paper's layout.
func (r *Results) RenderTable(t TableMetric) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (n=%d, %d trials)\n", t, r.Config.N, r.Config.Trials)
	fmt.Fprintf(&b, "%-10s", "")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  r=%-8g", row.R)
	}
	b.WriteByte('\n')
	for _, p := range r.protocols() {
		fmt.Fprintf(&b, "%-10s", p)
		for _, row := range r.Rows {
			fmt.Fprintf(&b, "  %-10.1f", row.ByProtocol[p].value(t))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV dumps every metric in long form for external plotting.
func (r *Results) CSV() string {
	var b strings.Builder
	b.WriteString("r,protocol,metric,mean,ci95,min,max\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%g,,tiers,%g,%g,%g,%g\n",
			row.R, row.Tiers.Mean(), row.Tiers.CI95(), row.Tiers.Min(), row.Tiers.Max())
		for _, p := range r.protocols() {
			m := row.ByProtocol[p]
			named := []struct {
				name string
				s    *stats.Sample
			}{
				{"slots", &m.Slots}, {"max_sent", &m.MaxSent},
				{"max_received", &m.MaxReceived}, {"avg_sent", &m.AvgSent},
				{"avg_received", &m.AvgReceived},
			}
			for _, ns := range named {
				fmt.Fprintf(&b, "%g,%s,%s,%g,%g,%g,%g\n",
					row.R, p, ns.name, ns.s.Mean(), ns.s.CI95(), ns.s.Min(), ns.s.Max())
			}
		}
	}
	return b.String()
}

// protocols returns the protocols present in the results, in a stable order.
func (r *Results) protocols() []Protocol {
	if len(r.Rows) == 0 {
		return nil
	}
	order := []Protocol{SICP, CICP, GMLECCM, TRPCCM}
	var out []Protocol
	for _, p := range order {
		if _, ok := r.Rows[0].ByProtocol[p]; ok {
			out = append(out, p)
		}
	}
	return out
}

package experiment

import (
	"strings"
	"testing"

	"netags/internal/gmle"
	"netags/internal/trp"
)

// tinyConfig keeps unit tests fast: small population, two r values, two
// trials, all four protocols.
func tinyConfig() Config {
	c := Paper()
	c.N = 600
	c.Trials = 2
	c.RValues = []float64{4, 8}
	c.Protocols = []Protocol{SICP, CICP, GMLECCM, TRPCCM}
	return c
}

func TestRunProducesAllMetrics(t *testing.T) {
	res, err := Run(tinyConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Tiers.N() != 2 {
			t.Fatalf("r=%v: %d tier samples, want 2", row.R, row.Tiers.N())
		}
		for p, m := range row.ByProtocol {
			if m.Slots.N() != 2 || m.Slots.Mean() <= 0 {
				t.Fatalf("r=%v %s: bad slot samples", row.R, p)
			}
			if m.AvgSent.Mean() <= 0 || m.AvgReceived.Mean() <= 0 {
				t.Fatalf("r=%v %s: zero energy metrics", row.R, p)
			}
			if m.MaxSent.Mean() < m.AvgSent.Mean() {
				t.Fatalf("r=%v %s: max sent below avg sent", row.R, p)
			}
			if m.MaxReceived.Mean() < m.AvgReceived.Mean() {
				t.Fatalf("r=%v %s: max received below avg received", row.R, p)
			}
		}
	}
}

// TestPaperShapeHolds is the harness-level statement of the paper's headline
// claims on a scaled-down deployment: CCM beats SICP on every metric, and
// time decreases with r while CCM sent-bits increase with r.
func TestPaperShapeHolds(t *testing.T) {
	cfg := tinyConfig()
	cfg.N = 2500
	cfg.Protocols = []Protocol{SICP, GMLECCM, TRPCCM}
	cfg.RValues = []float64{4, 8}
	// Frame sizes must be sized for the population, exactly as the paper
	// sizes 1671/3228 for n = 10,000 (§VI-B).
	var err error
	cfg.TRPFrame, err = trp.FrameSizeFor(cfg.N, cfg.N/200, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	cfg.GMLEFrame, err = gmle.FrameSizeFor(0.05, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		s := row.ByProtocol[SICP]
		for _, p := range []Protocol{GMLECCM, TRPCCM} {
			c := row.ByProtocol[p]
			if c.Slots.Mean() >= s.Slots.Mean() {
				t.Errorf("r=%v: %s slots %.0f >= SICP %.0f", row.R, p, c.Slots.Mean(), s.Slots.Mean())
			}
			if c.AvgSent.Mean() >= s.AvgSent.Mean() {
				t.Errorf("r=%v: %s avg sent %.1f >= SICP %.1f", row.R, p, c.AvgSent.Mean(), s.AvgSent.Mean())
			}
			if c.AvgReceived.Mean() >= s.AvgReceived.Mean() {
				t.Errorf("r=%v: %s avg received %.1f >= SICP %.1f", row.R, p, c.AvgReceived.Mean(), s.AvgReceived.Mean())
			}
		}
	}
	// Fewer tiers at larger r (Fig. 3), so CCM runs faster (Fig. 4)…
	if res.Rows[0].Tiers.Mean() <= res.Rows[1].Tiers.Mean() {
		t.Error("tier count did not decrease with r")
	}
	g0 := res.Rows[0].ByProtocol[GMLECCM]
	g1 := res.Rows[1].ByProtocol[GMLECCM]
	if g0.Slots.Mean() <= g1.Slots.Mean() {
		t.Error("GMLE-CCM time did not decrease with r")
	}
	// …while per-tag relaying grows with r (Tables I/III discussion).
	if g0.AvgSent.Mean() >= g1.AvgSent.Mean() {
		t.Error("GMLE-CCM sent bits did not increase with r")
	}
	// And received bits shrink with r (Tables II/IV discussion).
	if g0.AvgReceived.Mean() <= g1.AvgReceived.Mean() {
		t.Error("GMLE-CCM received bits did not decrease with r")
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := tinyConfig()
	a, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		for p := range a.Rows[i].ByProtocol {
			if a.Rows[i].ByProtocol[p].Slots.Mean() != b.Rows[i].ByProtocol[p].Slots.Mean() {
				t.Fatalf("r=%v %s: nondeterministic", a.Rows[i].R, p)
			}
		}
	}
}

func TestRunValidation(t *testing.T) {
	base := BaseConfig{N: 10, Radius: 30, Trials: 1}
	bad := []Config{
		{},
		{BaseConfig: base, RValues: []float64{6}},                                                                             // missing frames
		{BaseConfig: base, RValues: []float64{6}, GMLEFrame: 8, TRPFrame: 8, Protocols: []Protocol{"bogus"}},                  // unknown protocol
		{BaseConfig: BaseConfig{N: 10, Radius: 30, Trials: 1, Workers: -1}, RValues: []float64{6}, GMLEFrame: 8, TRPFrame: 8}, // negative workers
	}
	for i, cfg := range bad {
		if _, err := Run(cfg, nil); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestProgressCallback(t *testing.T) {
	cfg := tinyConfig()
	cfg.RValues = []float64{6}
	cfg.Trials = 2
	var lines []string
	if _, err := Run(cfg, func(s string) { lines = append(lines, s) }); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 2 {
		t.Fatalf("progress lines = %d, want 2", len(lines))
	}
}

func TestRenderers(t *testing.T) {
	res, err := Run(tinyConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	fig3 := res.RenderFig3()
	if !strings.Contains(fig3, "Fig. 3") || !strings.Contains(fig3, "r (m)") {
		t.Errorf("Fig. 3 render missing headers:\n%s", fig3)
	}
	fig4 := res.RenderFig4()
	for _, p := range []Protocol{SICP, CICP, GMLECCM, TRPCCM} {
		if !strings.Contains(fig4, string(p)) {
			t.Errorf("Fig. 4 render missing %s:\n%s", p, fig4)
		}
	}
	for _, tm := range []TableMetric{TableMaxSent, TableMaxReceived, TableAvgSent, TableAvgReceived} {
		out := res.RenderTable(tm)
		if !strings.Contains(out, "Table") || !strings.Contains(out, "GMLE-CCM") {
			t.Errorf("table %v render broken:\n%s", tm, out)
		}
	}
	csv := res.CSV()
	if !strings.HasPrefix(csv, "r,protocol,metric,") {
		t.Error("CSV header missing")
	}
	// 1 tiers line + 4 protocols × 5 metrics per r, 2 r values, + header.
	wantLines := 1 + 2*(1+4*5)
	if got := strings.Count(csv, "\n"); got != wantLines {
		t.Errorf("CSV has %d lines, want %d", got, wantLines)
	}
}

func TestAblationConfigRuns(t *testing.T) {
	cfg := tinyConfig()
	cfg.Protocols = []Protocol{GMLECCM}
	cfg.RValues = []float64{6}
	base, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DisableIndicatorVector = true
	flood, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := base.Rows[0].ByProtocol[GMLECCM]
	f := flood.Rows[0].ByProtocol[GMLECCM]
	if f.AvgSent.Mean() <= b.AvgSent.Mean() {
		t.Errorf("flooding avg sent %.1f <= indicator-vector %.1f",
			f.AvgSent.Mean(), b.AvgSent.Mean())
	}
}

package experiment

import (
	"context"
	"fmt"
	"strings"
	"time"

	"netags/internal/core"
	"netags/internal/geom"
	"netags/internal/stats"
	"netags/internal/topology"
	"netags/internal/trp"
)

// LossConfig parameterizes the unreliable-channel sweep — an extension
// beyond the paper, which assumes every busy slot is sensed (§V's detection
// guarantee silently depends on that). Loss turns busy slots idle, which
// CCM cannot distinguish from absence: delivery degrades and TRP starts
// accusing present tags.
//
// N, Radius, Trials, Seed, and Workers come from the embedded BaseConfig.
type LossConfig struct {
	BaseConfig
	// R is the inter-tag range.
	R float64
	// LossValues are the per-reception loss probabilities to sweep.
	LossValues []float64
	// FrameSize is the TRP frame (0 = derive for N with the paper's
	// tolerance and delta).
	FrameSize int
}

// LossRow reports one loss probability.
type LossRow struct {
	Loss float64
	// Delivery is the fraction of the true busy slots that reached the
	// reader.
	Delivery stats.Sample
	// FalsePositives is the number of present-and-reachable tags accused
	// per execution (0 under a reliable channel).
	FalsePositives stats.Sample
	// ExtraRounds is the session length in rounds (loss can both shorten —
	// lost checking-frame waves — and lengthen sessions).
	Rounds stats.Sample
}

// LossResults is the sweep outcome.
type LossResults struct {
	Config LossConfig
	Rows   []LossRow
}

// lossTrial is one deployment's delivery and accusation measurements.
type lossTrial struct {
	tiers       int
	delivery    float64
	hasDelivery bool
	falsePos    float64
	rounds      float64
}

// RunLossSweep measures CCM delivery and TRP false accusations as the
// channel degrades, with nothing actually missing.
//
// Deprecated: shim over RunLossSweepContext; results are identical.
func RunLossSweep(cfg LossConfig) (*LossResults, error) {
	return RunLossSweepContext(context.Background(), cfg, nil)
}

// RunLossSweepContext runs the unreliable-channel sweep over cfg.Workers
// goroutines. The channel's coin flips draw from the trial's Aux seed
// stream, so every worker count observes the same losses.
func RunLossSweepContext(ctx context.Context, cfg LossConfig, observe func(Progress)) (*LossResults, error) {
	return RunLossSweepPartial(ctx, cfg, nil, nil, observe)
}

// RunLossSweepPartial is RunLossSweepContext with resume support — the
// same contract as RunContextPartial: skipped points come back as
// zero-valued rows (only Loss set) and pointDone fires once per computed
// point with its fully aggregated LossRow.
func RunLossSweepPartial(ctx context.Context, cfg LossConfig, skip []bool, pointDone func(PointInfo, LossRow), observe func(Progress)) (*LossResults, error) {
	if err := cfg.validate(true); err != nil {
		return nil, err
	}
	if cfg.R <= 0 || len(cfg.LossValues) == 0 {
		return nil, fmt.Errorf("experiment: incomplete loss config %+v", cfg)
	}
	for _, loss := range cfg.LossValues {
		if loss < 0 || loss >= 1 {
			return nil, fmt.Errorf("experiment: loss probability %v outside [0,1)", loss)
		}
	}

	sweep := Sweep[float64, lossTrial]{
		Base:   cfg.BaseConfig,
		Points: cfg.LossValues,
		Skip:   skip,
		Key:    FloatKey,
		Run: func(ctx context.Context, loss float64, trial int, seeds TrialSeeds) (lossTrial, error) {
			d := geom.NewUniformDisk(cfg.N, cfg.Radius, seeds.Deploy)
			nw, err := topology.Build(d, 0, topology.PaperRanges(cfg.R))
			if err != nil {
				return lossTrial{}, fmt.Errorf("loss=%v trial %d: %w", loss, trial, err)
			}
			inventory := make([]uint64, 0, nw.Reachable)
			for i := 0; i < nw.N(); i++ {
				if nw.Tier[i] > 0 {
					inventory = append(inventory, uint64(i)+1)
				}
			}
			f := cfg.FrameSize
			if f == 0 {
				tol := len(inventory) / 200
				if tol == 0 {
					tol = 1
				}
				f, err = trp.FrameSizeFor(len(inventory), tol, 0.95)
				if err != nil {
					return lossTrial{}, err
				}
			}
			cc := core.Config{
				FrameSize: f,
				Seed:      seeds.Proto,
				Sampling:  1,
				LossProb:  loss,
				LossSeed:  seeds.Aux,
				Tracer:    cfg.Tracer,
			}
			got, err := runSessionPooled(nw, cc)
			if err != nil {
				return lossTrial{}, err
			}
			truthCfg := cc
			truthCfg.LossProb = 0
			truthCfg.Tracer = nil // reference computation, not a protocol run
			truth, err := core.DirectBitmap(nw, truthCfg)
			if err != nil {
				return lossTrial{}, err
			}
			lt := lossTrial{tiers: nw.K, rounds: float64(got.Rounds)}
			if truth.Count() > 0 {
				lt.delivery = float64(got.Bitmap.Count()) / float64(truth.Count())
				lt.hasDelivery = true
			}
			plan, err := trp.NewPlan(inventory, f, seeds.Proto)
			if err != nil {
				return lossTrial{}, err
			}
			det, err := plan.Detect(got.Bitmap)
			if err != nil {
				return lossTrial{}, err
			}
			lt.falsePos = float64(len(det.Suspects))
			return lt, nil
		},
		Event: func(loss float64, trial int, lt lossTrial, elapsed time.Duration) Progress {
			return Progress{
				Sweep: "loss", R: cfg.R, Loss: loss, Trial: trial, Trials: cfg.Trials,
				Protocols: []Protocol{TRPCCM}, Tiers: lt.tiers, Elapsed: elapsed,
			}
		},
	}
	if pointDone != nil {
		sweep.PointDone = func(p SweepPoint[float64, lossTrial]) {
			pointDone(PointInfo{Index: p.Index, Seeds: p.Seeds, Elapsed: p.Elapsed},
				buildLossRow(p.Point, p.Trials))
		}
	}
	grid, err := RunSweep(ctx, sweep, observe)
	if err != nil {
		return nil, err
	}

	res := &LossResults{Config: cfg}
	for pi, loss := range cfg.LossValues {
		if skip != nil && skip[pi] {
			res.Rows = append(res.Rows, LossRow{Loss: loss})
			continue
		}
		res.Rows = append(res.Rows, buildLossRow(loss, grid[pi]))
	}
	return res, nil
}

// buildLossRow folds one loss probability's trials into its LossRow.
func buildLossRow(loss float64, trials []lossTrial) LossRow {
	row := LossRow{Loss: loss}
	for _, lt := range trials {
		if lt.hasDelivery {
			row.Delivery.Add(lt.delivery)
		}
		row.FalsePositives.Add(lt.falsePos)
		row.Rounds.Add(lt.rounds)
	}
	return row
}

// Render prints the sweep as a table.
func (r *LossResults) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Unreliable channel: CCM delivery and TRP false accusations (n=%d, r=%g, %d trials, nothing missing)\n",
		r.Config.N, r.Config.R, r.Config.Trials)
	fmt.Fprintf(&b, "%8s  %12s  %18s  %8s\n", "loss", "delivery", "false accusations", "rounds")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8.2f  %11.1f%%  %18.1f  %8.1f\n",
			row.Loss, 100*row.Delivery.Mean(), row.FalsePositives.Mean(), row.Rounds.Mean())
	}
	return b.String()
}

package experiment

import (
	"fmt"
	"strings"

	"netags/internal/core"
	"netags/internal/geom"
	"netags/internal/prng"
	"netags/internal/stats"
	"netags/internal/topology"
	"netags/internal/trp"
)

// LossConfig parameterizes the unreliable-channel sweep — an extension
// beyond the paper, which assumes every busy slot is sensed (§V's detection
// guarantee silently depends on that). Loss turns busy slots idle, which
// CCM cannot distinguish from absence: delivery degrades and TRP starts
// accusing present tags.
type LossConfig struct {
	// N, Radius, R and Trials mirror Config.
	N      int
	Radius float64
	R      float64
	Trials int
	Seed   uint64
	// LossValues are the per-reception loss probabilities to sweep.
	LossValues []float64
	// FrameSize is the TRP frame (0 = derive for N with the paper's
	// tolerance and delta).
	FrameSize int
}

// LossRow reports one loss probability.
type LossRow struct {
	Loss float64
	// Delivery is the fraction of the true busy slots that reached the
	// reader.
	Delivery stats.Sample
	// FalsePositives is the number of present-and-reachable tags accused
	// per execution (0 under a reliable channel).
	FalsePositives stats.Sample
	// ExtraRounds is the session length in rounds (loss can both shorten —
	// lost checking-frame waves — and lengthen sessions).
	Rounds stats.Sample
}

// LossResults is the sweep outcome.
type LossResults struct {
	Config LossConfig
	Rows   []LossRow
}

// RunLossSweep measures CCM delivery and TRP false accusations as the
// channel degrades, with nothing actually missing.
func RunLossSweep(cfg LossConfig) (*LossResults, error) {
	if cfg.N <= 0 || cfg.Radius <= 0 || cfg.Trials <= 0 || cfg.R <= 0 || len(cfg.LossValues) == 0 {
		return nil, fmt.Errorf("experiment: incomplete loss config %+v", cfg)
	}
	res := &LossResults{Config: cfg}
	seeds := prng.New(cfg.Seed)
	for _, loss := range cfg.LossValues {
		if loss < 0 || loss >= 1 {
			return nil, fmt.Errorf("experiment: loss probability %v outside [0,1)", loss)
		}
		row := LossRow{Loss: loss}
		for trial := 0; trial < cfg.Trials; trial++ {
			d := geom.NewUniformDisk(cfg.N, cfg.Radius, seeds.Uint64())
			nw, err := topology.Build(d, 0, topology.PaperRanges(cfg.R))
			if err != nil {
				return nil, err
			}
			inventory := make([]uint64, 0, nw.Reachable)
			for i := 0; i < nw.N(); i++ {
				if nw.Tier[i] > 0 {
					inventory = append(inventory, uint64(i)+1)
				}
			}
			f := cfg.FrameSize
			if f == 0 {
				tol := len(inventory) / 200
				if tol == 0 {
					tol = 1
				}
				f, err = trp.FrameSizeFor(len(inventory), tol, 0.95)
				if err != nil {
					return nil, err
				}
			}
			seed := seeds.Uint64()
			cc := core.Config{
				FrameSize: f,
				Seed:      seed,
				Sampling:  1,
				LossProb:  loss,
				LossSeed:  seeds.Uint64(),
			}
			got, err := core.RunSession(nw, cc)
			if err != nil {
				return nil, err
			}
			truthCfg := cc
			truthCfg.LossProb = 0
			truth, err := core.DirectBitmap(nw, truthCfg)
			if err != nil {
				return nil, err
			}
			if truth.Count() > 0 {
				row.Delivery.Add(float64(got.Bitmap.Count()) / float64(truth.Count()))
			}
			plan, err := trp.NewPlan(inventory, f, seed)
			if err != nil {
				return nil, err
			}
			det, err := plan.Detect(got.Bitmap)
			if err != nil {
				return nil, err
			}
			row.FalsePositives.Add(float64(len(det.Suspects)))
			row.Rounds.Add(float64(got.Rounds))
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the sweep as a table.
func (r *LossResults) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Unreliable channel: CCM delivery and TRP false accusations (n=%d, r=%g, %d trials, nothing missing)\n",
		r.Config.N, r.Config.R, r.Config.Trials)
	fmt.Fprintf(&b, "%8s  %12s  %18s  %8s\n", "loss", "delivery", "false accusations", "rounds")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8.2f  %11.1f%%  %18.1f  %8.1f\n",
			row.Loss, 100*row.Delivery.Mean(), row.FalsePositives.Mean(), row.Rounds.Mean())
	}
	return b.String()
}

package experiment

import (
	"strings"
	"testing"
)

func TestRunLossSweep(t *testing.T) {
	res, err := RunLossSweep(LossConfig{
		BaseConfig: BaseConfig{N: 800, Radius: 30, Trials: 3, Seed: 1},
		R:          6,
		LossValues: []float64{0, 0.3, 0.8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	// Reliable channel: full delivery, zero accusations.
	r0 := res.Rows[0]
	if r0.Delivery.Mean() != 1 {
		t.Errorf("loss=0 delivery %v, want 1", r0.Delivery.Mean())
	}
	if r0.FalsePositives.Mean() != 0 {
		t.Errorf("loss=0 false positives %v, want 0", r0.FalsePositives.Mean())
	}
	// Heavy loss: strictly worse delivery and some accusations.
	r2 := res.Rows[2]
	if r2.Delivery.Mean() >= r0.Delivery.Mean() {
		t.Error("delivery did not degrade with loss")
	}
	if r2.FalsePositives.Mean() <= 0 {
		t.Error("heavy loss produced no false accusations (implausible)")
	}
	out := res.Render()
	if !strings.Contains(out, "delivery") || !strings.Contains(out, "0.80") {
		t.Errorf("render broken:\n%s", out)
	}
}

func TestRunLossSweepValidation(t *testing.T) {
	if _, err := RunLossSweep(LossConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := RunLossSweep(LossConfig{
		BaseConfig: BaseConfig{N: 10, Radius: 30, Trials: 1},
		R:          6, LossValues: []float64{1.5},
	}); err == nil {
		t.Error("loss >= 1 accepted")
	}
}

func TestRunDensitySweep(t *testing.T) {
	res, err := RunDensitySweep(DensityConfig{
		BaseConfig: BaseConfig{Radius: 30, Trials: 2, Seed: 3},
		NValues:    []int{500, 2000},
		R:          6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	small, large := res.Rows[0], res.Rows[1]
	// SICP time grows with the population…
	if large.SICPSlots.Mean() <= small.SICPSlots.Mean() {
		t.Error("SICP time did not grow with n")
	}
	// …much faster than CCM's (frame growth only): the SICP/CCM ratio must
	// widen.
	smallRatio := small.SICPSlots.Mean() / small.TRPSlots.Mean()
	largeRatio := large.SICPSlots.Mean() / large.TRPSlots.Mean()
	if largeRatio <= smallRatio {
		t.Errorf("SICP/TRP ratio did not widen with n: %.1f -> %.1f", smallRatio, largeRatio)
	}
	if out := res.Render(); !strings.Contains(out, "Population sweep") {
		t.Errorf("render broken:\n%s", out)
	}
}

func TestRunDensitySweepValidation(t *testing.T) {
	if _, err := RunDensitySweep(DensityConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := RunDensitySweep(DensityConfig{
		BaseConfig: BaseConfig{Radius: 30, Trials: 1},
		NValues:    []int{0}, R: 6,
	}); err == nil {
		t.Error("zero population accepted")
	}
}

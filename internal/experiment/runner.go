// The deterministic parallel sweep runner. Every sweep in this package —
// the main r sweep, the population sweep, the loss sweep — is a grid of
// independent (point, trial) work items; this file fans that grid out over a
// bounded worker pool while keeping the reported numbers bit-identical to a
// sequential run.
//
// Determinism rests on two rules:
//
//  1. Seeds are position-derived, never drawn in loop order. Each work
//     item's seeds come from prng.DeriveSeed(base, pointKey, trial, stream),
//     so the schedule cannot influence which deployment a trial gets.
//  2. Aggregation is an ordered reduce. Workers write into a per-trial
//     result slice (distinct memory per item, no locks), and the caller
//     folds it into stats.Sample accumulators in grid order afterwards.
package experiment

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"netags/internal/obs"
	"netags/internal/prng"
)

// BaseConfig carries the fields shared by every sweep in this package.
// Embed it in a sweep-specific config and validate with its methods.
type BaseConfig struct {
	// N is the number of deployed tags. Sweeps that vary the population
	// (DensityConfig) ignore it.
	N int
	// Radius is the deployment disk radius in meters.
	Radius float64
	// Trials is the number of independent deployments per sweep point.
	Trials int
	// Seed makes the whole sweep reproducible: every trial's seeds are
	// derived from (Seed, point, trial), independent of execution order.
	Seed uint64
	// Workers bounds the goroutines executing work items. 0 means
	// runtime.GOMAXPROCS(0); 1 runs the sequential path in the calling
	// goroutine. Any value produces bit-identical results.
	Workers int
	// Tracer, if non-nil, receives the structured event stream of every
	// protocol run in the sweep. It MUST be safe for concurrent use (the
	// worker pool shares it; obs.JSONL, obs.Memory, and obs.Collector all
	// are) and is observe-only: attaching one never changes the reported
	// numbers. Events arrive in completion order, interleaved across
	// concurrent work items; the Reader field does not distinguish work
	// items, so deep per-trial analysis is best done at Workers: 1.
	Tracer obs.Tracer
}

// workers resolves the effective pool size.
func (c BaseConfig) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// validate checks the shared fields. Sweeps that ignore N pass needN=false.
func (c BaseConfig) validate(needN bool) error {
	if needN && c.N <= 0 {
		return fmt.Errorf("experiment: population N must be positive, got %d", c.N)
	}
	if c.Radius <= 0 {
		return fmt.Errorf("experiment: radius must be positive, got %g", c.Radius)
	}
	if c.Trials <= 0 {
		return fmt.Errorf("experiment: trials must be positive, got %d", c.Trials)
	}
	if c.Workers < 0 {
		return fmt.Errorf("experiment: workers must be >= 0, got %d", c.Workers)
	}
	return nil
}

// TrialSeeds are the position-derived seeds of one (point, trial) work
// item. Deploy seeds the deployment sampling, Proto the protocol randomness
// (request seeds, backoff draws), and Aux any extra stream a sweep needs
// (the loss sweep's channel coin flips).
type TrialSeeds struct {
	Deploy uint64
	Proto  uint64
	Aux    uint64
}

// SeedsFor derives the seeds of one work item from the sweep seed, the
// point key, and the trial index. It is exported so tests can pin the exact
// derivation: changing it silently reshuffles every reported deployment.
func SeedsFor(base, pointKey uint64, trial int) TrialSeeds {
	return TrialSeeds{
		Deploy: prng.DeriveSeed(base, pointKey, uint64(trial), 0),
		Proto:  prng.DeriveSeed(base, pointKey, uint64(trial), 1),
		Aux:    prng.DeriveSeed(base, pointKey, uint64(trial), 2),
	}
}

// FloatKey and IntKey fold sweep points into the seed derivation.
func FloatKey(v float64) uint64 { return math.Float64bits(v) }

// IntKey folds an integer sweep point into the seed derivation.
func IntKey(v int) uint64 { return uint64(v) }

// Progress is one structured progress event, emitted after a work item
// completes. It replaces the free-form func(string) callback: consumers get
// the sweep coordinates, the deployment's tier count, and the wall time
// instead of a pre-rendered line. String renders the legacy line.
type Progress struct {
	// Sweep labels the producing sweep: "range", "density", or "loss".
	Sweep string
	// R is the inter-tag range of the work item (range and loss sweeps).
	R float64
	// N is the population of the work item (density sweep; 0 otherwise).
	N int
	// Loss is the loss probability of the work item (loss sweep).
	Loss float64
	// Trial is the 0-based trial index; Trials the total per point.
	Trial  int
	Trials int
	// Protocols lists the protocols executed in this work item.
	Protocols []Protocol
	// Tiers is the tier count of the trial's deployment.
	Tiers int
	// Elapsed is the wall time the work item took.
	Elapsed time.Duration
	// Completed and Total are the sweep-wide work-item counts at the moment
	// this event was emitted (Completed includes this item). RunSweep stamps
	// them; hand-built events may leave them zero, in which case String and
	// ETA omit the sweep-level view.
	Completed int
	Total     int
	// SweepElapsed is the wall time since the sweep started, stamped by
	// RunSweep alongside Completed/Total. Unlike Elapsed (one item's cost,
	// deterministic in count) it is sweep-global and drives ETA.
	SweepElapsed time.Duration
}

// ETA extrapolates the remaining wall time from the completion rate so far:
// SweepElapsed/Completed per item times the items left. It returns 0 until
// the sweep-level fields are populated (Completed or Total zero) and 0 once
// the sweep is done.
func (p Progress) ETA() time.Duration {
	if p.Completed <= 0 || p.Total <= 0 || p.Completed >= p.Total {
		return 0
	}
	perItem := float64(p.SweepElapsed) / float64(p.Completed)
	return time.Duration(perItem * float64(p.Total-p.Completed))
}

// MarshalJSON renders the event as one JSONL-friendly object (the CLIs'
// `-progress json` mode). Zero-valued coordinates are kept: a loss sweep
// point with Loss 0 is real data, not absence.
func (p Progress) MarshalJSON() ([]byte, error) {
	protos := make([]string, len(p.Protocols))
	for i, pr := range p.Protocols {
		protos[i] = string(pr)
	}
	return json.Marshal(struct {
		Sweep          string   `json:"sweep"`
		R              float64  `json:"r,omitempty"`
		N              int      `json:"n,omitempty"`
		Loss           float64  `json:"loss"`
		Trial          int      `json:"trial"`
		Trials         int      `json:"trials"`
		Protocols      []string `json:"protocols,omitempty"`
		Tiers          int      `json:"tiers"`
		ElapsedMS      float64  `json:"elapsed_ms"`
		Completed      int      `json:"completed,omitempty"`
		Total          int      `json:"total,omitempty"`
		SweepElapsedMS float64  `json:"sweep_elapsed_ms,omitempty"`
		ETAMS          float64  `json:"eta_ms,omitempty"`
	}{
		Sweep: p.Sweep, R: p.R, N: p.N, Loss: p.Loss,
		Trial: p.Trial, Trials: p.Trials, Protocols: protos,
		Tiers: p.Tiers, ElapsedMS: float64(p.Elapsed) / float64(time.Millisecond),
		Completed: p.Completed, Total: p.Total,
		SweepElapsedMS: float64(p.SweepElapsed) / float64(time.Millisecond),
		ETAMS:          float64(p.ETA()) / float64(time.Millisecond),
	})
}

// String renders the event in the legacy progress-line format, followed by
// the sweep-wide completion count and remaining-time estimate when the
// runner stamped them ("r=6 trial 1/2 done (K=4) [3/18, eta 42s]").
func (p Progress) String() string {
	var line string
	switch p.Sweep {
	case "density":
		line = fmt.Sprintf("n=%d trial %d/%d done (K=%d)", p.N, p.Trial+1, p.Trials, p.Tiers)
	case "loss":
		line = fmt.Sprintf("loss=%g trial %d/%d done (K=%d)", p.Loss, p.Trial+1, p.Trials, p.Tiers)
	default:
		line = fmt.Sprintf("r=%g trial %d/%d done (K=%d)", p.R, p.Trial+1, p.Trials, p.Tiers)
	}
	if p.Total > 0 {
		if p.Completed >= p.Total {
			line += fmt.Sprintf(" [%d/%d, done]", p.Completed, p.Total)
		} else {
			line += fmt.Sprintf(" [%d/%d, eta %s]", p.Completed, p.Total, p.ETA().Round(100*time.Millisecond))
		}
	}
	return line
}

// Sweep describes a grid of independent work items: len(Points) ×
// Base.Trials. It is the single entry every sweep in this package adapts
// to; Run executes one work item and must be safe to call concurrently.
type Sweep[P, T any] struct {
	Base   BaseConfig
	Points []P
	// Key folds a point into the seed derivation. Distinct points should
	// map to distinct keys (FloatKey / IntKey cover the common cases).
	Key func(P) uint64
	// Run executes one work item. It must not retain or mutate shared
	// state: all randomness comes from seeds, all output is the return.
	Run func(ctx context.Context, point P, trial int, seeds TrialSeeds) (T, error)
	// Event, if non-nil, describes a completed work item as a Progress
	// event for the observer passed to RunSweep.
	Event func(point P, trial int, result T, elapsed time.Duration) Progress
	// Skip, if non-nil, marks points whose work items must not run — the
	// resume path. Skip[i] true leaves results[i] zero-valued, emits no
	// Progress events for the point, and never invokes PointDone on it.
	// Because seeds are position-derived, skipping points cannot change
	// what any other point computes.
	Skip []bool
	// PointDone, if non-nil, is invoked exactly once per computed point,
	// when the point's last trial lands. Calls are serialized (under the
	// same lock as the observer) but arrive in completion order, which
	// under parallelism is not grid order.
	PointDone func(p SweepPoint[P, T])
}

// SweepPoint is one completed grid point, delivered to Sweep.PointDone:
// the point's coordinates, its trial results in trial order, the
// position-derived seeds each trial ran with, and the summed wall time of
// the point's work items.
type SweepPoint[P, T any] struct {
	// Index is the point's position in Sweep.Points.
	Index int
	// Point is the sweep coordinate.
	Point P
	// Trials holds the point's results, indexed by trial.
	Trials []T
	// Seeds[t] are the seeds trial t ran with (re-derivable via SeedsFor;
	// carried here so checkpoints can record them without replaying the
	// derivation).
	Seeds []TrialSeeds
	// Elapsed is the sum of the point's per-item wall times — the compute
	// cost of the point, not the wall-clock span (which under parallelism
	// interleaves with other points).
	Elapsed time.Duration
}

// RunSweep executes every (point, trial) work item of s over a worker pool
// of Base.Workers goroutines and returns the results in grid order:
// out[i][t] is point i's trial t. Results are bit-identical for every
// worker count, including 1 (the sequential path). observe, if non-nil,
// receives one Progress event per completed work item; events are
// serialized but arrive in completion order, which under parallelism is not
// grid order. Points marked in s.Skip are not run (their result rows stay
// zero-valued) and do not count toward the Progress totals. The first
// error (or ctx cancellation) stops the sweep.
func RunSweep[P, T any](ctx context.Context, s Sweep[P, T], observe func(Progress)) ([][]T, error) {
	if len(s.Points) == 0 {
		return nil, fmt.Errorf("experiment: sweep has no points")
	}
	if s.Run == nil || s.Key == nil {
		return nil, fmt.Errorf("experiment: sweep needs Run and Key")
	}
	if s.Skip != nil && len(s.Skip) != len(s.Points) {
		return nil, fmt.Errorf("experiment: skip vector has %d entries for %d points", len(s.Skip), len(s.Points))
	}
	if err := s.Base.validate(false); err != nil {
		return nil, err
	}
	trials := s.Base.Trials
	results := make([][]T, len(s.Points))
	for i := range results {
		results[i] = make([]T, trials)
	}
	// active maps a dense work-item index onto the point indices left to
	// run once skipped points are removed.
	active := make([]int, 0, len(s.Points))
	for pi := range s.Points {
		if s.Skip == nil || !s.Skip[pi] {
			active = append(active, pi)
		}
	}
	if len(active) == 0 {
		return results, nil
	}
	var (
		mu        sync.Mutex // serializes observe/PointDone and the completion count
		completed int
	)
	// Per-point accounting for PointDone: outstanding trials and the summed
	// item wall time. The atomic decrement orders each trial's result write
	// before the final decrementer's reads.
	var remaining []atomic.Int64
	var pointNanos []atomic.Int64
	if s.PointDone != nil {
		remaining = make([]atomic.Int64, len(s.Points))
		pointNanos = make([]atomic.Int64, len(s.Points))
		for _, pi := range active {
			remaining[pi].Store(int64(trials))
		}
	}
	sweepStart := time.Now()
	item := func(ctx context.Context, idx int) error {
		pi, trial := active[idx/trials], idx%trials
		point := s.Points[pi]
		start := time.Now()
		out, err := s.Run(ctx, point, trial, SeedsFor(s.Base.Seed, s.Key(point), trial))
		if err != nil {
			return err
		}
		results[pi][trial] = out
		elapsed := time.Since(start)
		if observe != nil && s.Event != nil {
			ev := s.Event(point, trial, out, elapsed)
			mu.Lock()
			// Stamp the sweep-wide view under the same lock that serializes
			// observe, so Completed is monotonic in delivery order.
			completed++
			ev.Completed = completed
			ev.Total = len(active) * trials
			ev.SweepElapsed = time.Since(sweepStart)
			observe(ev)
			mu.Unlock()
		}
		if s.PointDone != nil {
			pointNanos[pi].Add(int64(elapsed))
			if remaining[pi].Add(-1) == 0 {
				seeds := make([]TrialSeeds, trials)
				for t := range seeds {
					seeds[t] = SeedsFor(s.Base.Seed, s.Key(point), t)
				}
				sp := SweepPoint[P, T]{
					Index: pi, Point: point, Trials: results[pi],
					Seeds: seeds, Elapsed: time.Duration(pointNanos[pi].Load()),
				}
				mu.Lock()
				s.PointDone(sp)
				mu.Unlock()
			}
		}
		return nil
	}
	if err := ParallelFor(ctx, s.Base.workers(), len(active)*trials, item); err != nil {
		return nil, err
	}
	return results, nil
}

// ParallelFor runs body(i) for every i in [0, n) over a pool of workers
// goroutines (0 means GOMAXPROCS). workers == 1 runs in the calling
// goroutine in index order. The first error cancels the remaining work and
// is returned; a canceled ctx surfaces as its context error.
func ParallelFor(ctx context.Context, workers, n int, body func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := body(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				if err := body(ctx, i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

package experiment

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSeedDerivationPinned pins the exact per-trial seeds produced for
// (Seed=1, r=6, trial=0..2). Seeds are position-derived — a pure function
// of (sweep seed, point, trial) — so any refactor that changes these values
// silently reshuffles every reported deployment. If this test fails, the
// derivation changed: that is a results-breaking change and must be called
// out, not absorbed.
func TestSeedDerivationPinned(t *testing.T) {
	want := []TrialSeeds{
		{0x18c6fcbb477e6b6b, 0xa62277c5745796f6, 0x8e030d5c81174ccf},
		{0x4b959c93ff02aa60, 0x5c169cafcc26b512, 0x75cba5d6d0bfa735},
		{0x644b8d2f45ae32ab, 0x79361ce2ed89dad7, 0x64816b4678e78950},
	}
	for trial, w := range want {
		got := SeedsFor(1, FloatKey(6), trial)
		if got != w {
			t.Errorf("SeedsFor(1, r=6, trial=%d) = %+v, want %+v", trial, got, w)
		}
	}
	// The streams must be pairwise distinct: Deploy, Proto, and Aux of any
	// trial, and seeds across trials and points.
	seen := map[uint64]string{}
	for _, r := range []float64{2, 6, 10} {
		for trial := 0; trial < 5; trial++ {
			s := SeedsFor(1, FloatKey(r), trial)
			for name, v := range map[string]uint64{"deploy": s.Deploy, "proto": s.Proto, "aux": s.Aux} {
				at := fmt.Sprintf("r=%g trial=%d %s", r, trial, name)
				if prev, dup := seen[v]; dup {
					t.Fatalf("seed collision: %s and %s both got %#x", prev, at, v)
				}
				seen[v] = at
			}
		}
	}
}

// TestParallelMatchesSequential is the determinism contract of the worker
// pool: Workers: 4 must produce the same Results struct as Workers: 1,
// byte for byte. Run under -race it doubles as the harness's data-race
// check (go test -race ./internal/experiment/...).
func TestParallelMatchesSequential(t *testing.T) {
	cfg := tinyConfig()
	cfg.Workers = 1
	seq, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	par, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Rows, par.Rows) {
		t.Fatalf("Workers:4 diverged from Workers:1\nseq: %+v\npar: %+v", seq.Rows, par.Rows)
	}
	// The rendered artifacts must be identical too — byte for byte.
	if seq.CSV() != par.CSV() {
		t.Fatal("CSV output differs between worker counts")
	}
	// Workers: 0 (all cores) joins the same equivalence class.
	cfg.Workers = 0
	auto, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Rows, auto.Rows) {
		t.Fatal("Workers:0 diverged from Workers:1")
	}
}

// TestDensitySweepParallelMatchesSequential extends the contract to the
// population sweep.
func TestDensitySweepParallelMatchesSequential(t *testing.T) {
	cfg := DensityConfig{
		BaseConfig: BaseConfig{Radius: 30, Trials: 2, Seed: 3, Workers: 1},
		NValues:    []int{400, 900},
		R:          6,
	}
	seq, err := RunDensitySweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	par, err := RunDensitySweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Rows, par.Rows) {
		t.Fatal("density sweep diverged between worker counts")
	}
}

// TestLossSweepParallelMatchesSequential extends the contract to the
// unreliable-channel sweep (which consumes the extra Aux seed stream).
func TestLossSweepParallelMatchesSequential(t *testing.T) {
	cfg := LossConfig{
		BaseConfig: BaseConfig{N: 500, Radius: 30, Trials: 2, Seed: 1, Workers: 1},
		R:          6,
		LossValues: []float64{0, 0.5},
	}
	seq, err := RunLossSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	par, err := RunLossSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Rows, par.Rows) {
		t.Fatal("loss sweep diverged between worker counts")
	}
}

// TestStructuredProgress checks the Progress events RunContext emits: one
// per (r, trial) work item, with the sweep coordinates and tier count
// filled in, and the legacy line format preserved by String.
func TestStructuredProgress(t *testing.T) {
	cfg := tinyConfig()
	cfg.RValues = []float64{6}
	cfg.Trials = 2
	cfg.Workers = 1
	var events []Progress
	if _, err := RunContext(context.Background(), cfg, func(p Progress) { events = append(events, p) }); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2", len(events))
	}
	for i, ev := range events {
		if ev.Sweep != "range" || ev.R != 6 || ev.Trial != i || ev.Trials != 2 {
			t.Errorf("event %d has wrong coordinates: %+v", i, ev)
		}
		if ev.Tiers <= 0 {
			t.Errorf("event %d missing tier count: %+v", i, ev)
		}
		if len(ev.Protocols) != 4 {
			t.Errorf("event %d protocols = %v", i, ev.Protocols)
		}
		if ev.Completed != i+1 || ev.Total != 2 {
			t.Errorf("event %d sweep counts = %d/%d, want %d/2", i, ev.Completed, ev.Total, i+1)
		}
		want := fmt.Sprintf("r=6 trial %d/2 done (K=%d) [%d/2", i+1, ev.Tiers, i+1)
		if !strings.HasPrefix(ev.String(), want) {
			t.Errorf("event %d renders %q, want prefix %q", i, ev.String(), want)
		}
	}
	if last := events[len(events)-1]; !strings.HasSuffix(last.String(), "[2/2, done]") {
		t.Errorf("final event renders %q, want the done marker", last.String())
	}
	// Density and loss events render their own coordinate.
	if s := (Progress{Sweep: "density", N: 500, Trial: 0, Trials: 3, Tiers: 2}).String(); !strings.HasPrefix(s, "n=500 ") {
		t.Errorf("density event renders %q", s)
	}
	if s := (Progress{Sweep: "loss", Loss: 0.5, Trial: 0, Trials: 3, Tiers: 2}).String(); !strings.HasPrefix(s, "loss=0.5 ") {
		t.Errorf("loss event renders %q", s)
	}
}

// TestRunContextCancellation: a canceled context stops the sweep and
// surfaces the context error, for both the sequential and pooled paths.
func TestRunContextCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		cfg := tinyConfig()
		cfg.Workers = workers
		if _, err := RunContext(ctx, cfg, nil); !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}

// TestParallelForError: the first body error cancels the remaining work
// and is the one returned.
func TestParallelForError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		err := ParallelFor(context.Background(), workers, 1000, func(ctx context.Context, i int) error {
			ran.Add(1)
			if i == 3 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want boom", workers, err)
		}
		if n := ran.Load(); n >= 1000 {
			t.Errorf("workers=%d: error did not stop the pool (ran %d items)", workers, n)
		}
	}
}

// TestParallelForCoverage: every index runs exactly once, whatever the
// worker count.
func TestParallelForCoverage(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		const n = 257
		counts := make([]int32, n)
		err := ParallelFor(context.Background(), workers, n, func(ctx context.Context, i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

// TestRunSweepObserverSerialized: observe callbacks never overlap, even
// with a heavily contended pool.
func TestRunSweepObserverSerialized(t *testing.T) {
	var (
		inFlight atomic.Int32
		bad      atomic.Int32
		events   int
		mu       sync.Mutex
	)
	_, err := RunSweep(context.Background(), Sweep[int, int]{
		Base:   BaseConfig{Radius: 1, Trials: 8, Workers: 8},
		Points: []int{1, 2, 3, 4},
		Key:    func(p int) uint64 { return IntKey(p) },
		Run: func(ctx context.Context, p, trial int, seeds TrialSeeds) (int, error) {
			return p * trial, nil
		},
		Event: func(p, trial, result int, elapsed time.Duration) Progress {
			return Progress{Trial: trial}
		},
	}, func(p Progress) {
		if inFlight.Add(1) != 1 {
			bad.Add(1)
		}
		time.Sleep(100 * time.Microsecond)
		inFlight.Add(-1)
		mu.Lock()
		events++
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if bad.Load() != 0 {
		t.Error("observer callbacks overlapped")
	}
	mu.Lock()
	defer mu.Unlock()
	if events != 32 {
		t.Errorf("events = %d, want 32", events)
	}
}

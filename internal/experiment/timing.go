package experiment

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"netags/internal/stats"
)

// PointTiming aggregates the wall time of one sweep point across its trials.
// It is derived purely from Progress events, so it reflects what the runner
// reported, not an independent clock.
type PointTiming struct {
	// Sweep, R, N, and Loss identify the point (the same coordinates the
	// Progress events carry).
	Sweep string
	R     float64
	N     int
	Loss  float64
	// Items is the number of completed work items observed for the point.
	Items int
	// Total is the summed work-item wall time. Under a parallel sweep this
	// is CPU-ish time, not elapsed time: items overlap.
	Total time.Duration
	// PerItem samples each item's wall time in milliseconds, so the spread
	// across trials (deployment-dependent cost) is visible.
	PerItem stats.Sample
}

// Label renders the point's coordinates ("r=15", "n=5000", "loss=0.2").
func (p *PointTiming) Label() string {
	switch p.Sweep {
	case "density":
		return fmt.Sprintf("n=%d", p.N)
	case "loss":
		return fmt.Sprintf("loss=%g", p.Loss)
	default:
		return fmt.Sprintf("r=%g", p.R)
	}
}

// Throughput is the point's completion rate in items per second of summed
// work time. It is 0 until at least one item with nonzero elapsed time has
// been observed.
func (p *PointTiming) Throughput() float64 {
	if p.Total <= 0 {
		return 0
	}
	return float64(p.Items) / p.Total.Seconds()
}

// Timing folds Progress events into per-point elapsed/throughput
// aggregates. It is safe for concurrent use, matching the runner's contract
// that observers may be called from any worker (RunSweep serializes calls,
// but Wrap makes no such assumption about its caller).
type Timing struct {
	mu     sync.Mutex
	order  []string
	points map[string]*PointTiming
}

// NewTiming returns an empty aggregator.
func NewTiming() *Timing {
	return &Timing{points: make(map[string]*PointTiming)}
}

// Observe folds one Progress event into the aggregate.
func (tm *Timing) Observe(p Progress) {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	key := fmt.Sprintf("%s|%g|%d|%g", p.Sweep, p.R, p.N, p.Loss)
	pt, ok := tm.points[key]
	if !ok {
		pt = &PointTiming{Sweep: p.Sweep, R: p.R, N: p.N, Loss: p.Loss}
		tm.points[key] = pt
		tm.order = append(tm.order, key)
	}
	pt.Items++
	pt.Total += p.Elapsed
	pt.PerItem.Add(float64(p.Elapsed) / float64(time.Millisecond))
}

// Wrap returns an observer that records each event and then forwards it to
// next (which may be nil). Pass the result as the observe argument of any
// Run*SweepContext call to collect timing without giving up progress output.
func (tm *Timing) Wrap(next func(Progress)) func(Progress) {
	return func(p Progress) {
		tm.Observe(p)
		if next != nil {
			next(p)
		}
	}
}

// Points returns the per-point aggregates in first-observed order. The
// returned values are copies; mutating them does not affect the aggregator.
func (tm *Timing) Points() []PointTiming {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	out := make([]PointTiming, 0, len(tm.order))
	for _, key := range tm.order {
		out = append(out, *tm.points[key])
	}
	return out
}

// String renders the aggregate as a table: one row per point with its item
// count, mean per-item time, and throughput.
func (tm *Timing) String() string {
	pts := tm.Points()
	if len(pts) == 0 {
		return "timing: no events observed\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s  %6s  %12s  %12s\n", "point", "items", "ms/item", "items/sec")
	for i := range pts {
		p := &pts[i]
		fmt.Fprintf(&b, "%-12s  %6d  %12.2f  %12.1f\n",
			p.Label(), p.Items, p.PerItem.Mean(), p.Throughput())
	}
	return b.String()
}

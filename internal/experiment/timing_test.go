package experiment

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTimingAggregatesPerPoint(t *testing.T) {
	tm := NewTiming()
	for trial := 0; trial < 3; trial++ {
		tm.Observe(Progress{Sweep: "range", R: 15, Trial: trial, Trials: 3,
			Elapsed: time.Duration(trial+1) * 10 * time.Millisecond})
	}
	tm.Observe(Progress{Sweep: "range", R: 25, Trial: 0, Trials: 3,
		Elapsed: 40 * time.Millisecond})

	pts := tm.Points()
	if len(pts) != 2 {
		t.Fatalf("Points() = %d points, want 2", len(pts))
	}
	p := pts[0]
	if p.Label() != "r=15" || p.Items != 3 {
		t.Fatalf("first point = %q with %d items, want r=15 with 3", p.Label(), p.Items)
	}
	if p.Total != 60*time.Millisecond {
		t.Fatalf("Total = %v, want 60ms", p.Total)
	}
	if got := p.PerItem.Mean(); got != 20 {
		t.Fatalf("PerItem mean = %g ms, want 20", got)
	}
	// 3 items in 60ms of summed work time = 50 items/sec.
	if got := p.Throughput(); got != 50 {
		t.Fatalf("Throughput = %g, want 50", got)
	}
	if pts[1].Label() != "r=25" || pts[1].Items != 1 {
		t.Fatalf("second point = %q with %d items, want r=25 with 1", pts[1].Label(), pts[1].Items)
	}
}

func TestTimingLabelsPerSweep(t *testing.T) {
	tm := NewTiming()
	tm.Observe(Progress{Sweep: "density", N: 5000, Elapsed: time.Millisecond})
	tm.Observe(Progress{Sweep: "loss", Loss: 0.2, Elapsed: time.Millisecond})
	pts := tm.Points()
	if pts[0].Label() != "n=5000" || pts[1].Label() != "loss=0.2" {
		t.Fatalf("labels = %q, %q; want n=5000, loss=0.2", pts[0].Label(), pts[1].Label())
	}
	s := tm.String()
	for _, want := range []string{"point", "items/sec", "n=5000", "loss=0.2"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestTimingWrapForwards(t *testing.T) {
	tm := NewTiming()
	var got []Progress
	obs := tm.Wrap(func(p Progress) { got = append(got, p) })
	obs(Progress{Sweep: "range", R: 10, Elapsed: 5 * time.Millisecond})
	if len(got) != 1 || got[0].R != 10 {
		t.Fatalf("wrapped observer did not forward: %+v", got)
	}
	if pts := tm.Points(); len(pts) != 1 || pts[0].Items != 1 {
		t.Fatalf("wrapped observer did not record: %+v", pts)
	}
	// nil next must be accepted.
	tm.Wrap(nil)(Progress{Sweep: "range", R: 10, Elapsed: time.Millisecond})
	if pts := tm.Points(); pts[0].Items != 2 {
		t.Fatalf("nil-next wrap did not record: %+v", pts)
	}
}

func TestTimingConcurrentObserve(t *testing.T) {
	tm := NewTiming()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tm.Observe(Progress{Sweep: "range", R: 15, Elapsed: time.Millisecond})
			}
		}()
	}
	wg.Wait()
	if pts := tm.Points(); len(pts) != 1 || pts[0].Items != 800 {
		t.Fatalf("concurrent observe lost events: %+v", pts)
	}
}

func TestTimingEmptyString(t *testing.T) {
	if s := NewTiming().String(); !strings.Contains(s, "no events") {
		t.Fatalf("empty String() = %q", s)
	}
}

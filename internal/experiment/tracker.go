package experiment

import (
	"encoding/json"
	"sync"
	"time"
)

// Tracker is a concurrency-safe live view of a running sweep, built for the
// httpserve /progress endpoint: it wraps the Progress observer exactly like
// Timing does, but keeps the sweep-level state (completed/total counts,
// wall-clock elapsed, throughput, ETA) queryable from another goroutine
// while the sweep is still running.
type Tracker struct {
	mu        sync.Mutex
	start     time.Time
	runStart  time.Time // set by MarkRunStart; anchors throughput and ETA
	total     int
	completed int
	timing    *Timing
	last      Progress
	hasLast   bool
}

// NewTracker returns an empty tracker; the elapsed clock starts now. Total
// is learned from runner-stamped Progress events, or set up front with
// SetTotal for a correct denominator before the first item completes.
func NewTracker() *Tracker {
	return &Tracker{start: time.Now(), timing: NewTiming()}
}

// SetTotal declares the sweep's work-item count (points × trials).
func (t *Tracker) SetTotal(n int) {
	t.mu.Lock()
	t.total = n
	t.mu.Unlock()
}

// MarkRunStart anchors the throughput/ETA clock at "execution begins now"
// instead of tracker construction. A served job's tracker is created at
// submission, possibly long before a worker dequeues the job — without this
// anchor the queue wait (or, on a resumed sweep, the pre-resume idle time)
// is folded into the per-item rate and the ETA overstates the remaining
// time. Idempotent: only the first call sets the anchor (Reset clears it).
func (t *Tracker) MarkRunStart() {
	t.mu.Lock()
	if t.runStart.IsZero() {
		t.runStart = time.Now()
	}
	t.mu.Unlock()
}

// Reset returns the tracker to its freshly-constructed state: counts and
// per-point timing cleared, the elapsed clock restarted. A long-lived server
// that reuses one tracker across sweeps must Reset between them, or the
// snapshot keeps reporting the previous sweep's Completed/Total (and a stale
// "done") alongside the new one's events.
func (t *Tracker) Reset() {
	t.mu.Lock()
	t.start = time.Now()
	t.runStart = time.Time{}
	t.total = 0
	t.completed = 0
	t.timing = NewTiming()
	t.last = Progress{}
	t.hasLast = false
	t.mu.Unlock()
}

// Observe folds one Progress event into the live state.
func (t *Tracker) Observe(p Progress) {
	t.mu.Lock()
	t.completed++
	if p.Total > t.total {
		t.total = p.Total
	}
	t.last = p
	t.hasLast = true
	// Capture the aggregator under the lock: Reset swaps it for a fresh one.
	timing := t.timing
	t.mu.Unlock()
	timing.Observe(p)
}

// Wrap returns an observer that records each event and forwards it to next
// (which may be nil) — the same chaining contract as Timing.Wrap, so a CLI
// can stack printer, timing table, and live tracker on one callback.
func (t *Tracker) Wrap(next func(Progress)) func(Progress) {
	return func(p Progress) {
		t.Observe(p)
		if next != nil {
			next(p)
		}
	}
}

// TrackerPoint is one sweep point's timing in a snapshot.
type TrackerPoint struct {
	// Label is the point's coordinate ("r=6", "n=5000", "loss=0.2").
	Label string `json:"label"`
	// Items is how many of the point's work items have completed.
	Items int `json:"items"`
	// MeanMS is the mean per-item wall time in milliseconds.
	MeanMS float64 `json:"mean_ms"`
	// ItemsPerSec is the point's completion rate per second of summed work
	// time (CPU-ish under parallelism).
	ItemsPerSec float64 `json:"items_per_sec"`
}

// TrackerSnapshot is one consistent view of the sweep, JSON-ready for the
// /progress endpoint.
type TrackerSnapshot struct {
	// Active reports whether a sweep has been registered (total set or at
	// least one item observed).
	Active bool `json:"active"`
	// Completed / Total count work items; Total is 0 until known.
	Completed int `json:"completed"`
	Total     int `json:"total"`
	// Done is true once every known work item has completed.
	Done bool `json:"done"`
	// ElapsedMS is wall time since the tracker was created.
	ElapsedMS float64 `json:"elapsed_ms"`
	// ETAMS extrapolates the remaining wall time from the rate so far; 0
	// until the total is known and at least one item completed.
	ETAMS float64 `json:"eta_ms"`
	// ItemsPerSec is the sweep-wide wall-clock completion rate.
	ItemsPerSec float64 `json:"items_per_sec"`
	// Points are the per-point timing aggregates, first-observed order.
	Points []TrackerPoint `json:"points,omitempty"`
	// Last echoes the most recent Progress event.
	Last *Progress `json:"last,omitempty"`
}

// Snapshot returns the current sweep state.
func (t *Tracker) Snapshot() TrackerSnapshot {
	t.mu.Lock()
	s := TrackerSnapshot{
		Active:    t.total > 0 || t.completed > 0,
		Completed: t.completed,
		Total:     t.total,
		Done:      t.total > 0 && t.completed >= t.total,
	}
	elapsed := time.Since(t.start)
	// Rate and ETA extrapolate from the run-start anchor when one was
	// marked, so time spent queued (or skipped by a checkpoint resume)
	// never inflates the per-item estimate. ElapsedMS stays wall time since
	// construction — "how long has this job existed" is a different
	// question from "how fast is it going".
	runElapsed := elapsed
	if !t.runStart.IsZero() {
		runElapsed = time.Since(t.runStart)
	}
	if t.hasLast {
		last := t.last
		s.Last = &last
	}
	timing := t.timing
	t.mu.Unlock()

	s.ElapsedMS = float64(elapsed) / float64(time.Millisecond)
	if runElapsed > 0 && s.Completed > 0 {
		s.ItemsPerSec = float64(s.Completed) / runElapsed.Seconds()
		if s.Total > s.Completed {
			perItem := float64(runElapsed) / float64(s.Completed)
			s.ETAMS = perItem * float64(s.Total-s.Completed) / float64(time.Millisecond)
		}
	}
	for _, pt := range timing.Points() {
		s.Points = append(s.Points, TrackerPoint{
			Label:       pt.Label(),
			Items:       pt.Items,
			MeanMS:      pt.PerItem.Mean(),
			ItemsPerSec: pt.Throughput(),
		})
	}
	return s
}

// ProgressJSON marshals the snapshot — the httpserve Progress source.
func (t *Tracker) ProgressJSON() ([]byte, error) {
	return json.Marshal(t.Snapshot())
}

package experiment

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTrackerEmpty(t *testing.T) {
	s := NewTracker().Snapshot()
	if s.Active || s.Done || s.Completed != 0 || s.Total != 0 || s.Last != nil {
		t.Fatalf("empty snapshot = %+v", s)
	}
}

func TestTrackerCounts(t *testing.T) {
	tr := NewTracker()
	tr.SetTotal(4)
	for i := 0; i < 3; i++ {
		tr.Observe(Progress{Sweep: "range", R: 6, Trial: i, Trials: 4,
			Elapsed: 10 * time.Millisecond})
	}
	s := tr.Snapshot()
	if !s.Active || s.Done {
		t.Errorf("mid-sweep snapshot flags wrong: %+v", s)
	}
	if s.Completed != 3 || s.Total != 4 {
		t.Errorf("counts %d/%d, want 3/4", s.Completed, s.Total)
	}
	if s.ETAMS <= 0 {
		t.Errorf("mid-sweep ETA = %g, want > 0", s.ETAMS)
	}
	if len(s.Points) != 1 || s.Points[0].Label != "r=6" || s.Points[0].Items != 3 {
		t.Errorf("points = %+v", s.Points)
	}
	if s.Last == nil || s.Last.Trial != 2 {
		t.Errorf("last = %+v", s.Last)
	}
	tr.Observe(Progress{Sweep: "range", R: 6, Trial: 3, Trials: 4})
	if s := tr.Snapshot(); !s.Done || s.ETAMS != 0 {
		t.Errorf("finished snapshot = %+v", s)
	}
}

// TestTrackerLearnsTotalFromEvents: runner-stamped Progress events carry the
// grid size, so a tracker works without SetTotal.
func TestTrackerLearnsTotalFromEvents(t *testing.T) {
	tr := NewTracker()
	tr.Observe(Progress{Sweep: "range", R: 6, Completed: 1, Total: 18})
	if s := tr.Snapshot(); s.Total != 18 || s.Completed != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestTrackerProgressJSON(t *testing.T) {
	tr := NewTracker()
	tr.SetTotal(2)
	tr.Observe(Progress{Sweep: "loss", Loss: 0.5, Trials: 2, Elapsed: time.Millisecond})
	b, err := tr.ProgressJSON()
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatalf("invalid JSON %s: %v", b, err)
	}
	for _, key := range []string{"active", "completed", "total", "done", "elapsed_ms", "eta_ms", "points", "last"} {
		if _, ok := m[key]; !ok {
			t.Errorf("snapshot JSON missing %q: %s", key, b)
		}
	}
	if m["total"] != float64(2) || m["completed"] != float64(1) {
		t.Errorf("counts wrong in %s", b)
	}
}

// TestTrackerLiveSweep wires a tracker into a real RunContext call the way
// the CLIs do and checks the final state matches the grid.
func TestTrackerLiveSweep(t *testing.T) {
	cfg := tinyConfig()
	tr := NewTracker()
	tr.SetTotal(len(cfg.RValues) * cfg.Trials)
	if _, err := RunContext(context.Background(), cfg, tr.Wrap(nil)); err != nil {
		t.Fatal(err)
	}
	s := tr.Snapshot()
	want := len(cfg.RValues) * cfg.Trials
	if s.Completed != want || s.Total != want || !s.Done {
		t.Fatalf("snapshot after sweep = %+v, want %d/%d done", s, want, want)
	}
	if len(s.Points) != len(cfg.RValues) {
		t.Errorf("got %d points, want %d", len(s.Points), len(cfg.RValues))
	}
}

// TestTrackerWrapForwards: the wrapped observer still reaches the inner one.
func TestTrackerWrapForwards(t *testing.T) {
	tr := NewTracker()
	var got []Progress
	obs := tr.Wrap(func(p Progress) { got = append(got, p) })
	obs(Progress{Sweep: "range", R: 2})
	if len(got) != 1 || got[0].R != 2 {
		t.Fatalf("forwarded events = %+v", got)
	}
	if tr.Snapshot().Completed != 1 {
		t.Fatal("tracker missed the event")
	}
}

// TestTrackerReset is the long-lived-server regression test: a tracker
// reused across sweeps must not report the previous sweep's Completed/Total
// (or a stale "done") after Reset, and the second sweep must count from
// zero exactly like a fresh tracker.
func TestTrackerReset(t *testing.T) {
	tr := NewTracker()
	tr.SetTotal(2)
	tr.Observe(Progress{Sweep: "range", R: 6, Total: 2, Completed: 1})
	tr.Observe(Progress{Sweep: "range", R: 6, Total: 2, Completed: 2})
	if s := tr.Snapshot(); !s.Done || s.Completed != 2 {
		t.Fatalf("first sweep snapshot = %+v, want 2/2 done", s)
	}

	tr.Reset()
	s := tr.Snapshot()
	if s.Active || s.Done || s.Completed != 0 || s.Total != 0 ||
		s.Last != nil || len(s.Points) != 0 {
		t.Fatalf("post-Reset snapshot not pristine: %+v", s)
	}

	// Second sweep: 3 items over a different point; no first-sweep residue.
	tr.SetTotal(3)
	for i := 0; i < 2; i++ {
		tr.Observe(Progress{Sweep: "loss", Loss: 0.2, Trial: i, Trials: 3})
	}
	s = tr.Snapshot()
	if s.Completed != 2 || s.Total != 3 || s.Done {
		t.Fatalf("second sweep snapshot = %+v, want 2/3 not done", s)
	}
	if len(s.Points) != 1 || s.Points[0].Label != "loss=0.2" || s.Points[0].Items != 2 {
		t.Fatalf("second sweep points carry residue: %+v", s.Points)
	}
	if s.Last == nil || s.Last.Sweep != "loss" {
		t.Fatalf("last event stale: %+v", s.Last)
	}
}

// TestTrackerResetConcurrent: Reset racing Observe/Snapshot must be safe
// (the timing aggregator swap is the hazard).
func TestTrackerResetConcurrent(t *testing.T) {
	tr := NewTracker()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.Observe(Progress{Sweep: "range", R: 6, Elapsed: time.Microsecond})
				tr.Snapshot()
			}
		}()
	}
	for i := 0; i < 50; i++ {
		tr.Reset()
	}
	wg.Wait()
}

func TestTrackerConcurrent(t *testing.T) {
	tr := NewTracker()
	tr.SetTotal(800)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Observe(Progress{Sweep: "range", R: 6, Elapsed: time.Microsecond})
				tr.Snapshot()
			}
		}()
	}
	wg.Wait()
	if s := tr.Snapshot(); s.Completed != 800 || !s.Done {
		t.Fatalf("snapshot = %+v", s)
	}
}

// TestProgressETA pins the extrapolation arithmetic.
func TestProgressETA(t *testing.T) {
	p := Progress{Completed: 2, Total: 6, SweepElapsed: 10 * time.Second}
	if got := p.ETA(); got != 20*time.Second {
		t.Fatalf("ETA = %v, want 20s", got)
	}
	for _, zero := range []Progress{
		{},
		{Total: 6},
		{Completed: 6, Total: 6, SweepElapsed: time.Second},
	} {
		if zero.ETA() != 0 {
			t.Errorf("ETA(%+v) = %v, want 0", zero, zero.ETA())
		}
	}
}

// TestProgressJSONSweepFields: the stamped sweep-level fields reach the
// JSONL progress encoding.
func TestProgressJSONSweepFields(t *testing.T) {
	p := Progress{Sweep: "range", R: 6, Completed: 2, Total: 6,
		SweepElapsed: 10 * time.Second}
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if m["completed"] != float64(2) || m["total"] != float64(6) {
		t.Errorf("counts missing: %s", b)
	}
	if m["eta_ms"] != float64(20000) {
		t.Errorf("eta_ms = %v, want 20000", m["eta_ms"])
	}
	if s := p.String(); !strings.Contains(s, "[2/6, eta 20s]") {
		t.Errorf("String() = %q", s)
	}
}

// TestTrackerETAExcludesPreRunDelay pins the resume-ETA fix: time spent
// before execution starts (queue wait, checkpoint load, a previous process
// having done half the work) must not dilute the throughput estimate. A
// tracker that idles 100ms, then completes points quickly, should report a
// small ETA — not one extrapolated from the idle period.
func TestTrackerETAExcludesPreRunDelay(t *testing.T) {
	tr := NewTracker()
	tr.SetTotal(4)
	time.Sleep(100 * time.Millisecond) // queue wait before the run starts
	tr.MarkRunStart()
	tr.MarkRunStart() // idempotent: second call must not move the anchor
	tr.Observe(Progress{Sweep: "range", R: 6, Trial: 0, Trials: 4})
	tr.Observe(Progress{Sweep: "range", R: 6, Trial: 1, Trials: 4})
	s := tr.Snapshot()
	if s.ElapsedMS < 100 {
		t.Fatalf("ElapsedMS = %g, want >= 100 (wall time since construction)", s.ElapsedMS)
	}
	// Without MarkRunStart the estimate would be ~(elapsed/2)*2 >= 100ms;
	// anchored at run start the two points completed in microseconds.
	if s.ETAMS >= 50 {
		t.Fatalf("ETAMS = %g, want < 50 (pre-run delay leaked into throughput)", s.ETAMS)
	}
	if s.ItemsPerSec <= 0 {
		t.Fatalf("ItemsPerSec = %g, want > 0", s.ItemsPerSec)
	}

	// Reset clears the anchor along with the counts.
	tr.Reset()
	if s := tr.Snapshot(); s.Completed != 0 || s.ETAMS != 0 {
		t.Fatalf("post-Reset snapshot = %+v", s)
	}
}

package geom

import (
	"math"

	"netags/internal/prng"
)

// Deployment is a set of tag positions around a set of reader positions.
// It is the input every protocol simulation starts from: the paper's §VI-A
// system setting is one reader at the center of a 30 m disk with n = 10,000
// uniformly placed tags.
type Deployment struct {
	// Tags holds one position per tag; the index is the tag's handle
	// throughout the repository, and tag IDs are derived from it.
	Tags []Point
	// Readers holds reader positions. Most experiments use exactly one,
	// at the origin.
	Readers []Point
	// Radius is the radius of the deployment disk, in meters.
	Radius float64
}

// NewUniformDisk places n tags uniformly in a disk of the given radius with a
// single reader at the center. The deployment is fully determined by seed.
func NewUniformDisk(n int, radius float64, seed uint64) *Deployment {
	src := prng.New(seed)
	d := &Deployment{
		Tags:    make([]Point, n),
		Readers: []Point{{}},
		Radius:  radius,
	}
	for i := range d.Tags {
		d.Tags[i] = SampleDisk(src, radius)
	}
	return d
}

// NewClusteredDisk places n tags in clusters inside a disk of the given
// radius, with a single reader at the center. Cluster centers are uniform in
// the disk; tags scatter around a uniformly chosen center with a Gaussian
// spread, re-sampled until they land inside the disk. The paper's evaluation
// assumes uniform density (its §IV-C analysis depends on it); clustered
// deployments — pallets, shelving bays — are how real warehouses look, and
// the simulation protocols run on them unchanged.
func NewClusteredDisk(n int, radius float64, clusters int, spread float64, seed uint64) *Deployment {
	if clusters <= 0 {
		clusters = 1
	}
	if spread <= 0 {
		spread = radius / 6
	}
	src := prng.New(seed)
	centers := make([]Point, clusters)
	for i := range centers {
		centers[i] = SampleDisk(src, radius)
	}
	d := &Deployment{
		Tags:    make([]Point, n),
		Readers: []Point{{}},
		Radius:  radius,
	}
	for i := range d.Tags {
		c := centers[src.Intn(clusters)]
		for {
			p := Point{
				X: c.X + gaussian(src)*spread,
				Y: c.Y + gaussian(src)*spread,
			}
			if p.Norm() <= radius {
				d.Tags[i] = p
				break
			}
		}
	}
	return d
}

// gaussian returns a standard normal draw via Box–Muller (two uniforms per
// call keeps the stream layout simple and reproducible).
func gaussian(src *prng.Source) float64 {
	u1 := src.Float64()
	for u1 == 0 {
		u1 = src.Float64()
	}
	u2 := src.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// NewUniformDiskMultiReader is NewUniformDisk with explicit reader positions
// (for the §III-G multi-reader extension).
func NewUniformDiskMultiReader(n int, radius float64, readers []Point, seed uint64) *Deployment {
	d := NewUniformDisk(n, radius, seed)
	d.Readers = make([]Point, len(readers))
	copy(d.Readers, readers)
	return d
}

// N returns the number of tags.
func (d *Deployment) N() int { return len(d.Tags) }

// Density returns tags per square meter over the deployment disk (the ρ of
// §IV-C).
func (d *Deployment) Density() float64 {
	return float64(len(d.Tags)) / DiskArea(d.Radius)
}

// Remove returns a copy of the deployment with the tags at the given indices
// removed. Missing-tag experiments use this to simulate theft or loss; the
// remaining tags keep their original indices' positions but are re-packed.
// The second return value maps new index -> original index.
func (d *Deployment) Remove(indices []int) (*Deployment, []int) {
	gone := make(map[int]bool, len(indices))
	for _, i := range indices {
		gone[i] = true
	}
	nd := &Deployment{
		Tags:    make([]Point, 0, len(d.Tags)-len(gone)),
		Readers: append([]Point(nil), d.Readers...),
		Radius:  d.Radius,
	}
	orig := make([]int, 0, cap(nd.Tags))
	for i, p := range d.Tags {
		if !gone[i] {
			nd.Tags = append(nd.Tags, p)
			orig = append(orig, i)
		}
	}
	return nd, orig
}

// Package geom supplies the plane geometry beneath the simulation and the
// paper's analytical model: uniform sampling of tag positions in a disk, and
// the circle–circle intersection areas used by eqs. (6)–(9) to count tags in
// Γ_i and Γ'_i regions.
package geom

import (
	"math"

	"netags/internal/prng"
)

// Point is a position in the plane, in meters.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared distance, for comparisons that avoid the sqrt.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Norm returns the distance from p to the origin.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// SampleDisk returns a point uniformly distributed in the disk of the given
// radius centered at the origin. It uses the inverse-CDF radius transform,
// so exactly two uniform draws are consumed per point (keeping deployments
// reproducible across refactors, unlike rejection sampling).
func SampleDisk(src *prng.Source, radius float64) Point {
	r := radius * math.Sqrt(src.Float64())
	theta := 2 * math.Pi * src.Float64()
	return Point{X: r * math.Cos(theta), Y: r * math.Sin(theta)}
}

// SampleAnnulus returns a point uniformly distributed in the annulus with the
// given inner and outer radii, centered at the origin.
func SampleAnnulus(src *prng.Source, inner, outer float64) Point {
	if inner < 0 || outer < inner {
		panic("geom: invalid annulus radii")
	}
	in2, out2 := inner*inner, outer*outer
	r := math.Sqrt(in2 + (out2-in2)*src.Float64())
	theta := 2 * math.Pi * src.Float64()
	return Point{X: r * math.Cos(theta), Y: r * math.Sin(theta)}
}

// DiskArea returns the area of a disk with radius r.
func DiskArea(r float64) float64 { return math.Pi * r * r }

// LensArea returns the area of the intersection of two disks: one of radius
// r1 centered at distance d from another of radius r2. This is the standard
// two-circular-segment ("lens") formula; the paper's eqs. (7) and (9) are
// instances of it, so we implement the general form once and derive both.
func LensArea(r1, r2, d float64) float64 {
	if r1 < 0 || r2 < 0 || d < 0 {
		panic("geom: negative argument to LensArea")
	}
	if d >= r1+r2 {
		return 0 // disjoint
	}
	small, large := math.Min(r1, r2), math.Max(r1, r2)
	if d <= large-small {
		return DiskArea(small) // one disk inside the other
	}
	// Clamp acos arguments: d near the boundary cases can push them a hair
	// outside [-1, 1] through rounding.
	cos1 := clamp((d*d + r1*r1 - r2*r2) / (2 * d * r1))
	cos2 := clamp((d*d + r2*r2 - r1*r1) / (2 * d * r2))
	a1 := math.Acos(cos1)
	a2 := math.Acos(cos2)
	// Heron-stable expression for twice the triangle area.
	s := (-d + r1 + r2) * (d + r1 - r2) * (d - r1 + r2) * (d + r1 + r2)
	if s < 0 {
		s = 0
	}
	return r1*r1*a1 + r2*r2*a2 - 0.5*math.Sqrt(s)
}

// DiskOutsideArea returns the area of the disk of radius r1 centered at
// distance d from the origin that lies OUTSIDE the disk of radius r2 centered
// at the origin. This is the "shadow zone" S_i of Fig. 2(b): the part of a
// tag's i-hop reach that pokes beyond the reader's coverage.
func DiskOutsideArea(r1, r2, d float64) float64 {
	return DiskArea(r1) - LensArea(r1, r2, d)
}

func clamp(x float64) float64 {
	if x > 1 {
		return 1
	}
	if x < -1 {
		return -1
	}
	return x
}

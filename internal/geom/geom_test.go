package geom

import (
	"math"
	"testing"

	"netags/internal/prng"
)

func TestDist(t *testing.T) {
	a, b := Point{0, 0}, Point{3, 4}
	if got := a.Dist(b); got != 5 {
		t.Fatalf("Dist = %v, want 5", got)
	}
	if got := a.Dist2(b); got != 25 {
		t.Fatalf("Dist2 = %v, want 25", got)
	}
	if got := b.Norm(); got != 5 {
		t.Fatalf("Norm = %v, want 5", got)
	}
}

func TestSampleDiskInDisk(t *testing.T) {
	src := prng.New(1)
	for i := 0; i < 10000; i++ {
		p := SampleDisk(src, 30)
		if p.Norm() > 30 {
			t.Fatalf("point %v outside disk", p)
		}
	}
}

// TestSampleDiskUniform checks that the radial CDF matches r^2/R^2: the
// fraction of points within radius r of the center must be (r/R)^2.
func TestSampleDiskUniform(t *testing.T) {
	src := prng.New(2)
	const n = 200000
	const radius = 30.0
	counts := make([]int, 3)
	cut := []float64{10, 20, 25}
	for i := 0; i < n; i++ {
		p := SampleDisk(src, radius)
		d := p.Norm()
		for j, c := range cut {
			if d <= c {
				counts[j]++
			}
		}
	}
	for j, c := range cut {
		want := (c / radius) * (c / radius)
		got := float64(counts[j]) / n
		if math.Abs(got-want) > 0.005 {
			t.Errorf("P(d<=%v) = %v, want %v", c, got, want)
		}
	}
}

func TestSampleAnnulus(t *testing.T) {
	src := prng.New(3)
	for i := 0; i < 10000; i++ {
		p := SampleAnnulus(src, 10, 20)
		d := p.Norm()
		if d < 10 || d > 20 {
			t.Fatalf("annulus point at distance %v", d)
		}
	}
}

func TestSampleAnnulusPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid annulus did not panic")
		}
	}()
	SampleAnnulus(prng.New(1), 5, 4)
}

func TestLensAreaDisjoint(t *testing.T) {
	if got := LensArea(1, 1, 3); got != 0 {
		t.Fatalf("disjoint lens area = %v, want 0", got)
	}
	if got := LensArea(1, 1, 2); got != 0 {
		t.Fatalf("tangent lens area = %v, want 0", got)
	}
}

func TestLensAreaContained(t *testing.T) {
	want := DiskArea(1)
	if got := LensArea(1, 5, 2); math.Abs(got-want) > 1e-12 {
		t.Fatalf("contained lens area = %v, want %v", got, want)
	}
	// Symmetric argument order.
	if got := LensArea(5, 1, 2); math.Abs(got-want) > 1e-12 {
		t.Fatalf("contained lens area (swapped) = %v, want %v", got, want)
	}
}

func TestLensAreaEqualCirclesHalfOverlap(t *testing.T) {
	// Two unit circles at distance 1: known closed form
	// 2*acos(1/2) - sqrt(3)/2.
	want := 2*math.Acos(0.5) - math.Sqrt(3)/2
	if got := LensArea(1, 1, 1); math.Abs(got-want) > 1e-12 {
		t.Fatalf("lens area = %v, want %v", got, want)
	}
}

func TestLensAreaSymmetric(t *testing.T) {
	for _, tc := range []struct{ r1, r2, d float64 }{
		{3, 7, 5}, {2, 2.5, 4}, {10, 4, 8},
	} {
		a := LensArea(tc.r1, tc.r2, tc.d)
		b := LensArea(tc.r2, tc.r1, tc.d)
		if math.Abs(a-b) > 1e-9 {
			t.Errorf("LensArea(%v,%v,%v) not symmetric: %v vs %v", tc.r1, tc.r2, tc.d, a, b)
		}
	}
}

// TestLensAreaMonteCarlo validates the closed form against direct sampling,
// which is exactly how the analysis package consumes it.
func TestLensAreaMonteCarlo(t *testing.T) {
	src := prng.New(7)
	for _, tc := range []struct{ r1, r2, d float64 }{
		{6, 20, 22},  // small disk poking out of a big one
		{12, 20, 15}, // heavy overlap
		{5, 5, 6},    // equal circles
	} {
		const n = 400000
		in := 0
		c1 := Point{tc.d, 0}
		for i := 0; i < n; i++ {
			p := SampleDisk(src, tc.r1)
			p.X += c1.X
			if p.Norm() <= tc.r2 {
				in++
			}
		}
		mc := DiskArea(tc.r1) * float64(in) / n
		got := LensArea(tc.r1, tc.r2, tc.d)
		if math.Abs(mc-got) > 0.02*DiskArea(tc.r1)+0.5 {
			t.Errorf("LensArea(%v,%v,%v) = %v, Monte Carlo says %v", tc.r1, tc.r2, tc.d, got, mc)
		}
	}
}

func TestDiskOutsideArea(t *testing.T) {
	// A disk fully inside another has zero outside area.
	if got := DiskOutsideArea(1, 10, 2); math.Abs(got) > 1e-12 {
		t.Fatalf("outside area = %v, want 0", got)
	}
	// A disjoint disk is fully outside.
	if got := DiskOutsideArea(1, 1, 5); math.Abs(got-DiskArea(1)) > 1e-12 {
		t.Fatalf("outside area = %v, want full disk", got)
	}
}

func TestNewUniformDisk(t *testing.T) {
	d := NewUniformDisk(500, 30, 42)
	if d.N() != 500 {
		t.Fatalf("N = %d, want 500", d.N())
	}
	if len(d.Readers) != 1 || d.Readers[0] != (Point{}) {
		t.Fatal("reader not at origin")
	}
	for _, p := range d.Tags {
		if p.Norm() > 30 {
			t.Fatalf("tag outside disk: %v", p)
		}
	}
	// Reproducible.
	d2 := NewUniformDisk(500, 30, 42)
	for i := range d.Tags {
		if d.Tags[i] != d2.Tags[i] {
			t.Fatal("deployment not reproducible for equal seeds")
		}
	}
	// Different seeds differ.
	d3 := NewUniformDisk(500, 30, 43)
	same := 0
	for i := range d.Tags {
		if d.Tags[i] == d3.Tags[i] {
			same++
		}
	}
	if same == len(d.Tags) {
		t.Fatal("different seeds produced identical deployment")
	}
}

func TestDensity(t *testing.T) {
	d := NewUniformDisk(10000, 30, 1)
	want := 10000 / (math.Pi * 900)
	if math.Abs(d.Density()-want) > 1e-9 {
		t.Fatalf("Density = %v, want %v", d.Density(), want)
	}
}

func TestRemove(t *testing.T) {
	d := NewUniformDisk(10, 30, 5)
	nd, orig := d.Remove([]int{0, 3, 9})
	if nd.N() != 7 {
		t.Fatalf("N after Remove = %d, want 7", nd.N())
	}
	if len(orig) != 7 {
		t.Fatalf("orig len = %d, want 7", len(orig))
	}
	for newIdx, oldIdx := range orig {
		if nd.Tags[newIdx] != d.Tags[oldIdx] {
			t.Fatalf("position mismatch at %d", newIdx)
		}
		if oldIdx == 0 || oldIdx == 3 || oldIdx == 9 {
			t.Fatalf("removed index %d survived", oldIdx)
		}
	}
	// Original untouched.
	if d.N() != 10 {
		t.Fatal("Remove mutated the original deployment")
	}
}

func TestRemoveDuplicateIndices(t *testing.T) {
	d := NewUniformDisk(5, 30, 5)
	nd, _ := d.Remove([]int{2, 2, 2})
	if nd.N() != 4 {
		t.Fatalf("N = %d, want 4", nd.N())
	}
}

func TestMultiReaderDeployment(t *testing.T) {
	readers := []Point{{-15, 0}, {15, 0}}
	d := NewUniformDiskMultiReader(100, 30, readers, 9)
	if len(d.Readers) != 2 {
		t.Fatalf("readers = %d, want 2", len(d.Readers))
	}
	readers[0] = Point{99, 99} // caller mutation must not leak in
	if d.Readers[0] != (Point{-15, 0}) {
		t.Fatal("reader slice aliased caller memory")
	}
}

func TestNewClusteredDisk(t *testing.T) {
	d := NewClusteredDisk(2000, 30, 5, 3, 55)
	if d.N() != 2000 {
		t.Fatalf("N = %d, want 2000", d.N())
	}
	for _, p := range d.Tags {
		if p.Norm() > 30 {
			t.Fatalf("tag outside disk: %v", p)
		}
	}
	// Reproducible.
	d2 := NewClusteredDisk(2000, 30, 5, 3, 55)
	for i := range d.Tags {
		if d.Tags[i] != d2.Tags[i] {
			t.Fatal("clustered deployment not reproducible")
		}
	}
	// Actually clustered: mean nearest-neighbor distance well below a
	// uniform deployment of the same size.
	nn := func(dep *Deployment) float64 {
		sum := 0.0
		for i, p := range dep.Tags[:200] {
			best := math.Inf(1)
			for j, q := range dep.Tags {
				if i == j {
					continue
				}
				if dd := p.Dist(q); dd < best {
					best = dd
				}
			}
			sum += best
		}
		return sum / 200
	}
	u := NewUniformDisk(2000, 30, 55)
	if nn(d) >= nn(u)*0.8 {
		t.Fatalf("clustered NN distance %.3f not well below uniform %.3f", nn(d), nn(u))
	}
}

func TestNewClusteredDiskDefaults(t *testing.T) {
	d := NewClusteredDisk(100, 30, 0, 0, 1) // degenerate params fall back
	if d.N() != 100 {
		t.Fatalf("N = %d, want 100", d.N())
	}
}

func TestGaussianMoments(t *testing.T) {
	src := prng.New(9)
	var sum, sq float64
	const n = 200000
	for i := 0; i < n; i++ {
		g := gaussian(src)
		sum += g
		sq += g * g
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("gaussian mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("gaussian variance = %v, want ~1", variance)
	}
}

package geom

// Segment is a line segment between two points — the obstacle primitive.
// The paper's introduction motivates networked tags with exactly this
// scenario: "obstacles moving in or tagged objects piling up that sometimes
// prevent signals from penetrating", leaving a reader unable to hear some
// tags directly. Walls are modeled as segments that block the weak,
// tag-originated links (tag↔tag and tag→reader); the reader's high-power
// broadcast is assumed to penetrate (the asymmetric link model of §III-A).
type Segment struct {
	A, B Point
}

// orientation returns the sign of the cross product (b−a)×(c−a): positive
// for counter-clockwise, negative for clockwise, 0 for collinear.
func orientation(a, b, c Point) int {
	v := (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	}
	return 0
}

// onSegment reports whether c, known to be collinear with the segment ab,
// lies within its bounding box.
func onSegment(a, b, c Point) bool {
	return min(a.X, b.X) <= c.X && c.X <= max(a.X, b.X) &&
		min(a.Y, b.Y) <= c.Y && c.Y <= max(a.Y, b.Y)
}

// Intersects reports whether the two segments share at least one point,
// including touching endpoints and collinear overlap.
func (s Segment) Intersects(o Segment) bool {
	d1 := orientation(s.A, s.B, o.A)
	d2 := orientation(s.A, s.B, o.B)
	d3 := orientation(o.A, o.B, s.A)
	d4 := orientation(o.A, o.B, s.B)
	if d1 != d2 && d3 != d4 {
		return true
	}
	// Collinear touching cases.
	switch {
	case d1 == 0 && onSegment(s.A, s.B, o.A):
		return true
	case d2 == 0 && onSegment(s.A, s.B, o.B):
		return true
	case d3 == 0 && onSegment(o.A, o.B, s.A):
		return true
	case d4 == 0 && onSegment(o.A, o.B, s.B):
		return true
	}
	return false
}

// Blocked reports whether the straight path from a to b crosses any of the
// obstacle segments.
func Blocked(obstacles []Segment, a, b Point) bool {
	path := Segment{A: a, B: b}
	for _, o := range obstacles {
		if path.Intersects(o) {
			return true
		}
	}
	return false
}

package geom

import (
	"testing"

	"netags/internal/prng"
)

func TestSegmentIntersectsBasic(t *testing.T) {
	cross1 := Segment{Point{-1, 0}, Point{1, 0}}
	cross2 := Segment{Point{0, -1}, Point{0, 1}}
	if !cross1.Intersects(cross2) {
		t.Fatal("crossing segments not detected")
	}
	parallel := Segment{Point{-1, 1}, Point{1, 1}}
	if cross1.Intersects(parallel) {
		t.Fatal("parallel segments reported intersecting")
	}
	disjoint := Segment{Point{5, 5}, Point{6, 6}}
	if cross1.Intersects(disjoint) {
		t.Fatal("disjoint segments reported intersecting")
	}
}

func TestSegmentTouchingEndpoint(t *testing.T) {
	a := Segment{Point{0, 0}, Point{1, 0}}
	b := Segment{Point{1, 0}, Point{2, 5}}
	if !a.Intersects(b) {
		t.Fatal("shared endpoint not detected")
	}
	c := Segment{Point{0.5, 0}, Point{0.5, 3}} // T-junction
	if !a.Intersects(c) {
		t.Fatal("T-junction not detected")
	}
}

func TestSegmentCollinearOverlap(t *testing.T) {
	a := Segment{Point{0, 0}, Point{2, 0}}
	b := Segment{Point{1, 0}, Point{3, 0}}
	if !a.Intersects(b) {
		t.Fatal("collinear overlap not detected")
	}
	c := Segment{Point{3, 0}, Point{4, 0}}
	if a.Intersects(c) {
		t.Fatal("collinear disjoint segments reported intersecting")
	}
}

func TestSegmentSymmetric(t *testing.T) {
	src := prng.New(21)
	randSeg := func() Segment {
		return Segment{
			Point{src.Float64()*20 - 10, src.Float64()*20 - 10},
			Point{src.Float64()*20 - 10, src.Float64()*20 - 10},
		}
	}
	for i := 0; i < 500; i++ {
		a, b := randSeg(), randSeg()
		if a.Intersects(b) != b.Intersects(a) {
			t.Fatalf("asymmetric intersection: %+v vs %+v", a, b)
		}
	}
}

func TestBlocked(t *testing.T) {
	wall := []Segment{{Point{0, -5}, Point{0, 5}}}
	if !Blocked(wall, Point{-3, 0}, Point{3, 0}) {
		t.Fatal("path through wall not blocked")
	}
	if Blocked(wall, Point{-3, 10}, Point{3, 10}) {
		t.Fatal("path above wall blocked")
	}
	if Blocked(nil, Point{-3, 0}, Point{3, 0}) {
		t.Fatal("no obstacles but blocked")
	}
}

package gmle

import (
	"fmt"
	"math"

	"netags/internal/core"
	"netags/internal/energy"
	"netags/internal/obs"
	"netags/internal/prng"
	"netags/internal/topology"
)

// Options configures an adaptive estimation run over a networked tag system.
type Options struct {
	// Alpha is the confidence level α (default 0.95).
	Alpha float64
	// Beta is the relative error bound β (default 0.05).
	Beta float64
	// FrameSize is the accurate-phase frame size; 0 derives it from
	// (Alpha, Beta) via FrameSizeFor.
	FrameSize int
	// ProbeFrameSize is the rough-phase frame size (default 64). The rough
	// phase halves the sampling probability until a frame shows idle slots,
	// then the accurate phase begins.
	ProbeFrameSize int
	// MaxFrames bounds the total number of frames (default 64).
	MaxFrames int
	// Seed derives the per-frame request seeds.
	Seed uint64
	// LossProb forwards the unreliable-channel extension to the sessions.
	LossProb float64
	// Tracer, if non-nil, receives the underlying CCM sessions' events plus
	// one gmle phase event per frame (Phase "probe" or "accurate").
	Tracer obs.Tracer
}

func (o *Options) setDefaults() {
	if o.Alpha == 0 {
		o.Alpha = 0.95
	}
	if o.Beta == 0 {
		o.Beta = 0.05
	}
	if o.ProbeFrameSize == 0 {
		o.ProbeFrameSize = 64
	}
	if o.MaxFrames == 0 {
		o.MaxFrames = 64
	}
}

// Outcome reports an estimation run.
type Outcome struct {
	// Estimate is the final population estimate n̂.
	Estimate float64
	// RelHalfWidth is the achieved relative confidence half-width; the run
	// converged iff RelHalfWidth ≤ Beta.
	RelHalfWidth float64
	// Converged reports whether the accuracy requirement (eq. (2)) was met
	// within MaxFrames.
	Converged bool
	// Frames is the number of frames (CCM sessions) executed, including
	// rough-phase probes.
	Frames int
	// ProbeFrames is how many of them belonged to the rough phase.
	ProbeFrames int
	// Clock accumulates execution time over all sessions.
	Clock energy.Clock
	// Meter accumulates per-tag energy over all sessions.
	Meter *energy.Meter
	// Truncated reports that at least one session ended with data still in
	// flight (checking frame shorter than the network's true tier depth),
	// which biases the estimate low.
	Truncated bool
}

// SessionRunner executes one CCM session for a config — core.RunSession
// bound to a network in the single-reader case, or a multi-reader
// OR-combining wrapper.
type SessionRunner func(cfg core.Config) (*core.Result, error)

// Estimate runs the two-phase GMLE procedure of §IV over CCM sessions: a
// rough phase that halves the sampling probability until the frame
// desaturates, then accurate frames at the optimal load, re-tuned after
// every frame, until the confidence requirement (eq. (2)) is met.
func Estimate(nw *topology.Network, opts Options) (*Outcome, error) {
	return EstimateWith(nw.N(), func(cfg core.Config) (*core.Result, error) {
		return core.RunSession(nw, cfg)
	}, opts)
}

// EstimateWith is Estimate over an arbitrary session runner; nTags sizes the
// energy meter (the number of deployed tags).
func EstimateWith(nTags int, run SessionRunner, opts Options) (*Outcome, error) {
	opts.setDefaults()
	if opts.Beta <= 0 || opts.Beta >= 1 || opts.Alpha <= 0 || opts.Alpha >= 1 {
		return nil, fmt.Errorf("gmle: beta %v and alpha %v must lie in (0,1)", opts.Beta, opts.Alpha)
	}
	accurateF := opts.FrameSize
	if accurateF == 0 {
		var err error
		accurateF, err = FrameSizeFor(opts.Beta, opts.Alpha)
		if err != nil {
			return nil, err
		}
	}

	out := &Outcome{Meter: energy.NewMeter(nTags)}
	var est Estimator
	seeds := prng.New(opts.Seed)

	runFrame := func(phase string, f int, p float64) (zeros int, err error) {
		cfg := core.Config{
			FrameSize: f,
			Seed:      seeds.Uint64(),
			Sampling:  p,
			LossProb:  opts.LossProb,
			LossSeed:  seeds.Uint64(),
			Tracer:    opts.Tracer,
		}
		res, err := run(cfg)
		if err != nil {
			return 0, err
		}
		out.Frames++
		out.Clock.Add(res.Clock)
		if err := out.Meter.Merge(res.Meter); err != nil {
			return 0, fmt.Errorf("gmle: frame %d: %w", out.Frames, err)
		}
		out.Truncated = out.Truncated || res.Truncated
		zeros = res.Bitmap.Zeros()
		if t := opts.Tracer; t != nil {
			t.Trace(obs.Event{
				Kind:      obs.KindPhase,
				Protocol:  obs.ProtoGMLE,
				Phase:     phase,
				Round:     out.Frames,
				FrameSize: f,
				Count:     zeros,
				Value:     p,
			})
		}
		return zeros, nil
	}

	// Rough phase: probe with geometrically decreasing p until the MLE is
	// finite. Saturated probes still enter the estimator — they are
	// evidence that n is large.
	p := 1.0
	nHat := math.NaN()
	for out.Frames < opts.MaxFrames {
		zeros, err := runFrame("probe", opts.ProbeFrameSize, p)
		if err != nil {
			return nil, err
		}
		if err := est.AddFrame(opts.ProbeFrameSize, p, zeros); err != nil {
			return nil, err
		}
		out.ProbeFrames++
		nHat, err = est.Estimate()
		if err == nil {
			break
		}
		if err != ErrSaturated {
			return nil, err
		}
		p /= 2
	}
	if math.IsNaN(nHat) {
		out.RelHalfWidth = math.Inf(1)
		return out, nil
	}

	// Accurate phase: frames at the optimal load for the current estimate.
	for out.Frames < opts.MaxFrames {
		out.Estimate = nHat
		out.RelHalfWidth = est.RelHalfWidth(nHat, opts.Alpha)
		if out.RelHalfWidth <= opts.Beta {
			out.Converged = true
			return out, nil
		}
		pAcc := SamplingFor(accurateF, nHat)
		zeros, err := runFrame("accurate", accurateF, pAcc)
		if err != nil {
			return nil, err
		}
		if err := est.AddFrame(accurateF, pAcc, zeros); err != nil {
			return nil, err
		}
		// The history already contains a frame with idle slots (the rough
		// phase ended on one), so the joint MLE is always finite here.
		nHat, err = est.Estimate()
		if err != nil {
			return nil, err
		}
	}
	out.Estimate = nHat
	out.RelHalfWidth = est.RelHalfWidth(nHat, opts.Alpha)
	out.Converged = out.RelHalfWidth <= opts.Beta
	return out, nil
}

// PaperSession runs the single §VI-B evaluation session: frame size 1671
// with p = 1.59·f/n configured from the known population, exactly as the
// paper does when measuring GMLE-CCM's time and energy. It returns the raw
// session result.
func PaperSession(nw *topology.Network, n int, seed uint64) (*core.Result, error) {
	cfg := core.Config{
		FrameSize: PaperFrameSize,
		Seed:      seed,
		Sampling:  SamplingFor(PaperFrameSize, float64(n)),
	}
	return core.RunSession(nw, cfg)
}

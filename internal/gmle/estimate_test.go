package gmle

import (
	"math"
	"testing"

	"netags/internal/geom"
	"netags/internal/topology"
)

func diskNetwork(t *testing.T, n int, r float64, seed uint64) *topology.Network {
	t.Helper()
	d := geom.NewUniformDisk(n, 30, seed)
	nw, err := topology.Build(d, 0, topology.PaperRanges(r))
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestEstimateConverges(t *testing.T) {
	nw := diskNetwork(t, 3000, 6, 61)
	out, err := Estimate(nw, Options{Beta: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Converged {
		t.Fatalf("estimation did not converge in %d frames", out.Frames)
	}
	n := float64(nw.Reachable)
	if math.Abs(out.Estimate-n) > 0.15*n {
		t.Fatalf("estimate %v, true population %v", out.Estimate, n)
	}
	if out.ProbeFrames == 0 {
		t.Error("rough phase ran no probes")
	}
	if out.RelHalfWidth > 0.1 {
		t.Errorf("converged with half-width %v > beta", out.RelHalfWidth)
	}
	if out.Clock.Total() == 0 {
		t.Error("clock not accumulated")
	}
	if out.Meter.Summarize(nil).TotalReceived == 0 {
		t.Error("meter not accumulated")
	}
}

// TestEstimateAccuracyAcrossTrials checks the eq. (2) requirement end to end
// over CCM: at β=10%, α=95%, the estimate should fall within ±10% of the
// true reachable population in (almost) all trials.
func TestEstimateAccuracyAcrossTrials(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-trial statistical test")
	}
	const trials = 20
	hits := 0
	for i := 0; i < trials; i++ {
		nw := diskNetwork(t, 2000, 6, uint64(200+i))
		out, err := Estimate(nw, Options{Beta: 0.1, Seed: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		n := float64(nw.Reachable)
		if math.Abs(out.Estimate-n) <= 0.1*n {
			hits++
		}
	}
	if hits < trials-3 {
		t.Fatalf("only %d/%d trials within ±10%%", hits, trials)
	}
}

func TestEstimateSmallPopulation(t *testing.T) {
	// 40 tags: the first probe frame (f=64, p=1) is already informative.
	nw := diskNetwork(t, 40, 10, 67)
	out, err := Estimate(nw, Options{Beta: 0.2, Seed: 3, MaxFrames: 40})
	if err != nil {
		t.Fatal(err)
	}
	n := float64(nw.Reachable)
	if math.Abs(out.Estimate-n) > 0.5*n+5 {
		t.Fatalf("estimate %v for population %v", out.Estimate, n)
	}
}

func TestEstimateRespectsMaxFrames(t *testing.T) {
	nw := diskNetwork(t, 3000, 6, 71)
	out, err := Estimate(nw, Options{Beta: 0.001, MaxFrames: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if out.Frames > 3 {
		t.Fatalf("ran %d frames, cap was 3", out.Frames)
	}
	if out.Converged {
		t.Fatal("cannot hit beta=0.1% in 3 frames")
	}
}

func TestEstimateOptionValidation(t *testing.T) {
	nw := diskNetwork(t, 100, 6, 73)
	for _, o := range []Options{{Beta: -0.1}, {Beta: 1.5}, {Alpha: 2}} {
		if _, err := Estimate(nw, o); err == nil {
			t.Errorf("options %+v accepted", o)
		}
	}
}

func TestPaperSession(t *testing.T) {
	nw := diskNetwork(t, 3000, 6, 79)
	res, err := PaperSession(nw, 3000, 9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bitmap.Len() != PaperFrameSize {
		t.Fatalf("frame size %d, want %d", res.Bitmap.Len(), PaperFrameSize)
	}
	// Expected busy fraction ≈ 1 - e^{-1.59·(reachable/n)} ≈ 0.80 — allow a
	// broad band.
	frac := float64(res.Bitmap.Count()) / float64(res.Bitmap.Len())
	if frac < 0.6 || frac > 0.95 {
		t.Fatalf("busy fraction %v outside the expected band", frac)
	}
}

func TestEstimateDeterministic(t *testing.T) {
	nw := diskNetwork(t, 1000, 6, 83)
	a, err := Estimate(nw, Options{Beta: 0.1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Estimate(nw, Options{Beta: 0.1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if a.Estimate != b.Estimate || a.Frames != b.Frames {
		t.Fatal("estimation not deterministic for equal seeds")
	}
}

// Package gmle implements RFID cardinality estimation (§IV): the
// generalized maximum likelihood estimator of Li et al. [28] — an enhanced
// variant of Kodialam & Nandagopal's zero-based estimator [5] — layered on
// CCM sessions so that it works over multi-hop networked tags.
//
// The estimator consumes status bitmaps. Each bitmap comes from a frame of
// f slots in which every tag independently participates with probability p
// and picks one slot uniformly; the count of idle (zero) slots is a
// sufficient statistic for the tag population n. Thanks to Theorem 1, a CCM
// session produces exactly the bitmap a traditional one-hop reader would
// see, so the math is unchanged by the multi-hop setting.
package gmle

import (
	"errors"
	"fmt"
	"math"
)

// OptimalLoad is the load factor ℓ = np/f the paper's evaluation uses when
// configuring the sampling probability (p = 1.59·f/n, §IV-A).
const OptimalLoad = 1.59

// PaperFrameSize is the accurate-phase frame size the paper derives from
// [28] for α = 95%, β = 5% with n = 10,000 (§VI-B).
const PaperFrameSize = 1671

// frame is one recorded observation.
type frame struct {
	f     int     // slots
	p     float64 // participation probability
	zeros int     // observed idle slots
}

// Estimator accumulates status-bitmap observations and produces maximum
// likelihood estimates over all of them jointly (the "G" in GMLE: frames may
// have different f and p).
type Estimator struct {
	frames []frame
}

// ErrSaturated is returned when every observed frame is fully busy, so the
// likelihood increases without bound and no finite estimate exists. Callers
// respond by probing with a smaller sampling probability.
var ErrSaturated = errors.New("gmle: all frames saturated (no idle slots)")

// ErrNoFrames is returned when Estimate is called before any observation.
var ErrNoFrames = errors.New("gmle: no frames observed")

// AddFrame records an observation: a frame of f slots run with participation
// probability p in which zeros slots stayed idle.
func (e *Estimator) AddFrame(f int, p float64, zeros int) error {
	if f <= 0 {
		return fmt.Errorf("gmle: frame size %d must be positive", f)
	}
	if p <= 0 || p > 1 {
		return fmt.Errorf("gmle: participation probability %v outside (0,1]", p)
	}
	if zeros < 0 || zeros > f {
		return fmt.Errorf("gmle: %d zeros in a %d-slot frame", zeros, f)
	}
	e.frames = append(e.frames, frame{f: f, p: p, zeros: zeros})
	return nil
}

// Frames returns the number of observations recorded.
func (e *Estimator) Frames() int { return len(e.frames) }

// scoreAt returns the derivative of the log-likelihood at population size n.
// For each frame, a slot is idle with probability q(n) = (1 − p/f)^n; the
// derivative is Σ_j c_j·[z_j − (f_j − z_j)·q_j/(1 − q_j)] with
// c_j = ln(1 − p_j/f_j) < 0. It is strictly decreasing in n, so the MLE is
// the unique root.
func (e *Estimator) scoreAt(n float64) float64 {
	s := 0.0
	for _, fr := range e.frames {
		c := math.Log1p(-fr.p / float64(fr.f))
		q := math.Exp(float64(n) * c)
		if q >= 1 {
			q = 1 - 1e-15
		}
		s += c * (float64(fr.zeros) - float64(fr.f-fr.zeros)*q/(1-q))
	}
	return s
}

// Estimate returns the maximum likelihood population size given every frame
// recorded so far. It returns ErrSaturated if no frame had an idle slot and
// ErrNoFrames before the first observation. A fully idle history yields 0.
func (e *Estimator) Estimate() (float64, error) {
	if len(e.frames) == 0 {
		return 0, ErrNoFrames
	}
	anyZero, anyBusy := false, false
	for _, fr := range e.frames {
		if fr.zeros > 0 {
			anyZero = true
		}
		if fr.zeros < fr.f {
			anyBusy = true
		}
	}
	if !anyZero {
		return 0, ErrSaturated
	}
	if !anyBusy {
		return 0, nil
	}
	// Bracket the root, then bisect. The score is positive below the MLE
	// and negative above it.
	lo, hi := 0.0, 1.0
	for e.scoreAt(hi) > 0 {
		hi *= 2
		if hi > 1e15 {
			return 0, ErrSaturated
		}
	}
	for iter := 0; iter < 200 && hi-lo > 1e-9*(1+hi); iter++ {
		mid := (lo + hi) / 2
		if e.scoreAt(mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// FisherInfo returns the Fisher information about n carried by the recorded
// frames at population size n: I(n) = Σ_j f_j·c_j²·q_j/(1 − q_j). Its
// inverse square root is the asymptotic standard deviation of the MLE.
func (e *Estimator) FisherInfo(n float64) float64 {
	info := 0.0
	for _, fr := range e.frames {
		c := math.Log1p(-fr.p / float64(fr.f))
		q := math.Exp(n * c)
		if q >= 1 {
			q = 1 - 1e-15
		}
		info += float64(fr.f) * c * c * q / (1 - q)
	}
	return info
}

// RelHalfWidth returns the half-width of the two-sided confidence interval
// at confidence level alpha, relative to the estimate n (i.e. the β such
// that Prob{n̂(1−β) ≤ n ≤ n̂(1+β)} ≈ alpha under the asymptotic normal
// approximation). It returns +Inf when the information is degenerate.
func (e *Estimator) RelHalfWidth(n, alpha float64) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	info := e.FisherInfo(n)
	if info <= 0 {
		return math.Inf(1)
	}
	return zQuantile(alpha) / (n * math.Sqrt(info))
}

// zQuantile returns the two-sided standard normal quantile: the z with
// P(|N(0,1)| ≤ z) = alpha.
func zQuantile(alpha float64) float64 {
	return math.Sqrt2 * math.Erfinv(alpha)
}

// FrameSizeFor returns the single-frame size needed to meet the accuracy
// requirement Prob{n̂(1−β) ≤ n ≤ n̂(1+β)} ≥ α at the optimal load ℓ = 1.59,
// using the delta-method variance Var(n̂)/n² = (e^ℓ − ℓ − 1)/(f·ℓ²).
//
// For α = 95%, β = 5% this yields f ≈ 1406; the paper quotes 1671 from
// [28], whose variance bound is slightly more conservative. The experiment
// harness uses the paper's literal value (PaperFrameSize) when reproducing
// §VI so that the comparison is parameter-for-parameter.
func FrameSizeFor(beta, alpha float64) (int, error) {
	if beta <= 0 || beta >= 1 || alpha <= 0 || alpha >= 1 {
		return 0, fmt.Errorf("gmle: beta %v and alpha %v must lie in (0,1)", beta, alpha)
	}
	z := zQuantile(alpha)
	l := OptimalLoad
	varFactor := math.Exp(l) - l - 1
	f := z * z * varFactor / (beta * beta * l * l)
	return int(math.Ceil(f)), nil
}

// SamplingFor returns the participation probability that puts the frame at
// the optimal load for an (estimated) population of n tags, clamped to 1.
func SamplingFor(frameSize int, n float64) float64 {
	if n <= 0 {
		return 1
	}
	p := OptimalLoad * float64(frameSize) / n
	if p > 1 {
		return 1
	}
	return p
}

package gmle

import (
	"math"
	"testing"

	"netags/internal/prng"
)

// simulateFrame draws the idle-slot count of one (f, p) frame over n tags.
func simulateFrame(src *prng.Source, n, f int, p float64) int {
	busy := make([]bool, f)
	for i := 0; i < n; i++ {
		if src.Float64() < p {
			busy[src.Intn(f)] = true
		}
	}
	zeros := 0
	for _, b := range busy {
		if !b {
			zeros++
		}
	}
	return zeros
}

func TestAddFrameValidation(t *testing.T) {
	var e Estimator
	bad := []struct {
		f     int
		p     float64
		zeros int
	}{
		{0, 0.5, 0}, {-1, 0.5, 0},
		{10, 0, 0}, {10, -0.1, 0}, {10, 1.1, 0},
		{10, 0.5, -1}, {10, 0.5, 11},
	}
	for i, c := range bad {
		if err := e.AddFrame(c.f, c.p, c.zeros); err == nil {
			t.Errorf("case %d: AddFrame(%v) accepted", i, c)
		}
	}
	if e.Frames() != 0 {
		t.Fatal("rejected frames were recorded")
	}
}

func TestEstimateErrors(t *testing.T) {
	var e Estimator
	if _, err := e.Estimate(); err != ErrNoFrames {
		t.Fatalf("err = %v, want ErrNoFrames", err)
	}
	if err := e.AddFrame(10, 1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Estimate(); err != ErrSaturated {
		t.Fatalf("err = %v, want ErrSaturated", err)
	}
}

func TestEstimateAllIdleIsZero(t *testing.T) {
	var e Estimator
	if err := e.AddFrame(100, 1, 100); err != nil {
		t.Fatal(err)
	}
	got, err := e.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("estimate = %v, want 0 for an all-idle frame", got)
	}
}

func TestEstimateSingleFrameClosedForm(t *testing.T) {
	// For one frame the MLE has the closed form n = ln(z/f)/ln(1-p/f).
	var e Estimator
	const f, p = 1000, 0.4
	const zeros = 300
	if err := e.AddFrame(f, p, zeros); err != nil {
		t.Fatal(err)
	}
	got, err := e.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	want := math.Log(float64(zeros)/f) / math.Log1p(-p/f)
	if math.Abs(got-want) > 1e-3*want {
		t.Fatalf("estimate = %v, want %v", got, want)
	}
}

func TestEstimateRecoversPopulation(t *testing.T) {
	src := prng.New(41)
	for _, n := range []int{500, 5000, 20000} {
		var e Estimator
		f := 1000
		p := SamplingFor(f, float64(n))
		for j := 0; j < 10; j++ {
			zeros := simulateFrame(src, n, f, p)
			if err := e.AddFrame(f, p, zeros); err != nil {
				t.Fatal(err)
			}
		}
		got, err := e.Estimate()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-float64(n)) > 0.08*float64(n) {
			t.Errorf("n=%d: estimate %v off by more than 8%%", n, got)
		}
	}
}

func TestEstimateMixedFrames(t *testing.T) {
	// The generalized estimator must combine frames with different (f, p).
	src := prng.New(43)
	const n = 8000
	var e Estimator
	for _, cfg := range []struct {
		f int
		p float64
	}{{64, 1}, {64, 0.05}, {1000, 0.2}, {2000, 0.4}} {
		zeros := simulateFrame(src, n, cfg.f, cfg.p)
		if err := e.AddFrame(cfg.f, cfg.p, zeros); err != nil {
			t.Fatal(err)
		}
	}
	got, err := e.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-n) > 0.15*n {
		t.Errorf("mixed-frame estimate %v, want ~%v", got, n)
	}
}

func TestFisherInfoPositive(t *testing.T) {
	var e Estimator
	if err := e.AddFrame(1000, 0.3, 400); err != nil {
		t.Fatal(err)
	}
	if info := e.FisherInfo(5000); info <= 0 {
		t.Fatalf("FisherInfo = %v, want > 0", info)
	}
	// More frames → more information.
	before := e.FisherInfo(5000)
	if err := e.AddFrame(1000, 0.3, 400); err != nil {
		t.Fatal(err)
	}
	if after := e.FisherInfo(5000); after <= before {
		t.Fatalf("information did not grow: %v -> %v", before, after)
	}
}

func TestRelHalfWidthShrinksWithFrames(t *testing.T) {
	src := prng.New(47)
	const n = 5000
	var e Estimator
	f := 1000
	p := SamplingFor(f, n)
	var prev float64 = math.Inf(1)
	for j := 0; j < 5; j++ {
		if err := e.AddFrame(f, p, simulateFrame(src, n, f, p)); err != nil {
			t.Fatal(err)
		}
		nHat, err := e.Estimate()
		if err != nil {
			t.Fatal(err)
		}
		w := e.RelHalfWidth(nHat, 0.95)
		if w >= prev {
			t.Fatalf("frame %d: half-width %v did not shrink from %v", j+1, w, prev)
		}
		prev = w
	}
}

func TestRelHalfWidthDegenerate(t *testing.T) {
	var e Estimator
	if w := e.RelHalfWidth(0, 0.95); !math.IsInf(w, 1) {
		t.Fatalf("half-width at n=0 should be +Inf, got %v", w)
	}
	if w := e.RelHalfWidth(100, 0.95); !math.IsInf(w, 1) {
		t.Fatalf("half-width with no frames should be +Inf, got %v", w)
	}
}

func TestZQuantile(t *testing.T) {
	if z := zQuantile(0.95); math.Abs(z-1.959964) > 1e-4 {
		t.Fatalf("z(0.95) = %v, want 1.96", z)
	}
	if z := zQuantile(0.99); math.Abs(z-2.575829) > 1e-4 {
		t.Fatalf("z(0.99) = %v, want 2.576", z)
	}
}

func TestFrameSizeFor(t *testing.T) {
	f, err := FrameSizeFor(0.05, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	// Delta-method bound lands near 1406; the paper's more conservative
	// derivation gives 1671. Assert the ballpark.
	if f < 1200 || f > 1800 {
		t.Fatalf("FrameSizeFor(0.05, 0.95) = %d, want ~1400", f)
	}
	// Tighter accuracy needs a (quadratically) bigger frame.
	f2, err := FrameSizeFor(0.025, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if f2 < 3*f {
		t.Fatalf("halving beta should ~quadruple f: %d -> %d", f, f2)
	}
	for _, bad := range [][2]float64{{0, 0.95}, {1, 0.95}, {0.05, 0}, {0.05, 1}} {
		if _, err := FrameSizeFor(bad[0], bad[1]); err == nil {
			t.Errorf("FrameSizeFor(%v, %v) accepted", bad[0], bad[1])
		}
	}
}

func TestSamplingFor(t *testing.T) {
	if p := SamplingFor(1671, 10000); math.Abs(p-1.59*1671/10000) > 1e-12 {
		t.Fatalf("p = %v, want paper value", p)
	}
	if p := SamplingFor(1000, 100); p != 1 {
		t.Fatalf("p = %v, want clamp to 1", p)
	}
	if p := SamplingFor(1000, 0); p != 1 {
		t.Fatalf("p = %v for n=0, want 1", p)
	}
}

// TestEstimatorCoverage is the statistical heart: the (1−β, α) requirement
// of eq. (2) should hold across repeated single-frame runs at the derived
// frame size.
func TestEstimatorCoverage(t *testing.T) {
	const n = 10000
	const trials = 120
	beta, alpha := 0.05, 0.95
	f, err := FrameSizeFor(beta, alpha)
	if err != nil {
		t.Fatal(err)
	}
	p := SamplingFor(f, n)
	src := prng.New(53)
	hits := 0
	for i := 0; i < trials; i++ {
		var e Estimator
		if err := e.AddFrame(f, p, simulateFrame(src, n, f, p)); err != nil {
			t.Fatal(err)
		}
		nHat, err := e.Estimate()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(nHat-n) <= beta*n {
			hits++
		}
	}
	// α = 95% with 120 trials: 3σ slack ≈ 6 misses below expectation.
	if hits < 102 {
		t.Fatalf("coverage %d/%d below the 95%% requirement", hits, trials)
	}
}

func TestZeroEstimate(t *testing.T) {
	// Agrees with the GMLE single-frame solution.
	var e Estimator
	const f, p, zeros = 1000, 0.4, 300
	if err := e.AddFrame(f, p, zeros); err != nil {
		t.Fatal(err)
	}
	mle, err := e.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	ze, err := ZeroEstimate(f, p, zeros)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mle-ze) > 1e-2*ze {
		t.Fatalf("ZE %v disagrees with single-frame MLE %v", ze, mle)
	}
	if _, err := ZeroEstimate(f, p, 0); err != ErrSaturated {
		t.Fatalf("saturated ZE err = %v, want ErrSaturated", err)
	}
	for _, bad := range []struct {
		f     int
		p     float64
		zeros int
	}{{0, 0.5, 1}, {10, 0, 1}, {10, 2, 1}, {10, 0.5, 11}} {
		if _, err := ZeroEstimate(bad.f, bad.p, bad.zeros); err == nil {
			t.Errorf("ZeroEstimate(%+v) accepted", bad)
		}
	}
}

package gmle

import (
	"fmt"
	"math"
)

// ZeroEstimate is the classic single-frame zero estimator of Kodialam &
// Nandagopal [5], which GMLE generalizes: from one (f, p) frame with the
// given count of idle slots, n̂ = ln(z/f) / ln(1 − p/f).
//
// It exists as a named function both as the historical baseline for the
// estimator-comparison benchmark and as a cheap closed form when only one
// frame is available. ErrSaturated is returned for a fully busy frame.
func ZeroEstimate(f int, p float64, zeros int) (float64, error) {
	if f <= 0 {
		return 0, fmt.Errorf("gmle: frame size %d must be positive", f)
	}
	if p <= 0 || p > 1 {
		return 0, fmt.Errorf("gmle: participation probability %v outside (0,1]", p)
	}
	if zeros < 0 || zeros > f {
		return 0, fmt.Errorf("gmle: %d zeros in a %d-slot frame", zeros, f)
	}
	if zeros == 0 {
		return 0, ErrSaturated
	}
	return math.Log(float64(zeros)/float64(f)) / math.Log1p(-p/float64(f)), nil
}

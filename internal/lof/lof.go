// Package lof implements the Lottery-Frame cardinality estimator of Qian et
// al. ("Cardinality estimation for large-scale RFID systems", PerCom 2008 —
// the paper's reference [2]) on top of CCM.
//
// LoF uses a different information model than GMLE: instead of one uniform
// slot, each tag hashes itself into slot j with probability 2^-(j+1) — a
// Flajolet–Martin sketch laid out as a time frame. The position of the first
// idle slot estimates log2(n). It demonstrates that CCM carries any
// bitmap-shaped protocol unchanged: only the SlotPicker differs.
//
// LoF needs only O(log n) slots per frame — far shorter frames than GMLE —
// but has a high per-frame variance (σ ≈ 1.12 bits of log2 n), so many
// frames are averaged. The estimator-comparison benchmark quantifies this
// trade against GMLE; the paper's §IV-A history (estimators mattering less
// than their surrounding machinery) is visible in the numbers.
package lof

import (
	"fmt"
	"math"
	"math/bits"

	"netags/internal/core"
	"netags/internal/energy"
	"netags/internal/obs"
	"netags/internal/prng"
	"netags/internal/topology"
)

// fmCorrection is the Flajolet–Martin bias constant φ: E[2^Z] ≈ φ·n.
const fmCorrection = 0.77351

// DefaultFrameSize comfortably holds populations up to 2^28.
const DefaultFrameSize = 32

// Picker returns the lottery slot choice: tag id lands in slot j with
// probability 2^-(j+1) (the count of trailing zeros of its hash), clamped
// to the frame.
func Picker(seed uint64, frameSize int) core.SlotPicker {
	return func(_ int, id uint64) []int {
		h := prng.HashID(id, seed)
		j := bits.TrailingZeros64(h)
		if j >= frameSize {
			j = frameSize - 1
		}
		return []int{j}
	}
}

// FirstIdle returns the index of the lowest idle slot of a frame bitmap
// (the Z statistic), or the frame length if every slot is busy.
func FirstIdle(busy func(i int) bool, frameSize int) int {
	for i := 0; i < frameSize; i++ {
		if !busy(i) {
			return i
		}
	}
	return frameSize
}

// Options configures an estimation run.
type Options struct {
	// Frames is the number of lottery frames averaged (default 32).
	Frames int
	// FrameSize is the slots per frame (default 32; must exceed
	// log2 of the population for an unbiased read).
	FrameSize int
	// Seed derives the per-frame hash seeds.
	Seed uint64
	// LossProb forwards the unreliable-channel extension.
	LossProb float64
	// Tracer, if non-nil, receives the underlying CCM sessions' events plus
	// one lof phase event per frame carrying the Z statistic.
	Tracer obs.Tracer
}

// Outcome reports an estimation run.
type Outcome struct {
	// Estimate is n̂ = 2^mean(Z) / φ.
	Estimate float64
	// MeanZ is the averaged first-idle statistic.
	MeanZ float64
	// Frames is the number of CCM sessions executed.
	Frames int
	// Clock and Meter accumulate the session costs.
	Clock energy.Clock
	Meter *energy.Meter
	// Truncated reports that at least one session ended incomplete.
	Truncated bool
}

// SessionRunner executes one CCM session for a config (see gmle's
// equivalent); it lets multi-reader callers OR-combine before LoF reads the
// sketch.
type SessionRunner func(cfg core.Config) (*core.Result, error)

// Estimate runs LoF over CCM sessions on a single-reader network.
func Estimate(nw *topology.Network, opts Options) (*Outcome, error) {
	return EstimateWith(nw.N(), func(cfg core.Config) (*core.Result, error) {
		return core.RunSession(nw, cfg)
	}, opts)
}

// EstimateWith is Estimate over an arbitrary session runner; nTags sizes
// the energy meter.
func EstimateWith(nTags int, run SessionRunner, opts Options) (*Outcome, error) {
	if opts.Frames == 0 {
		opts.Frames = 32
	}
	if opts.FrameSize == 0 {
		opts.FrameSize = DefaultFrameSize
	}
	if opts.Frames < 0 || opts.FrameSize <= 0 {
		return nil, fmt.Errorf("lof: invalid frames %d / frame size %d", opts.Frames, opts.FrameSize)
	}
	out := &Outcome{Meter: energy.NewMeter(nTags)}
	seeds := prng.New(opts.Seed)
	sumZ := 0.0
	for i := 0; i < opts.Frames; i++ {
		seed := seeds.Uint64()
		res, err := run(core.Config{
			FrameSize: opts.FrameSize,
			Seed:      seed,
			Picker:    Picker(seed, opts.FrameSize),
			LossProb:  opts.LossProb,
			LossSeed:  seeds.Uint64(),
			Tracer:    opts.Tracer,
		})
		if err != nil {
			return nil, err
		}
		out.Frames++
		out.Clock.Add(res.Clock)
		if err := out.Meter.Merge(res.Meter); err != nil {
			return nil, fmt.Errorf("lof: frame %d: %w", out.Frames, err)
		}
		out.Truncated = out.Truncated || res.Truncated
		z := FirstIdle(res.Bitmap.Get, opts.FrameSize)
		sumZ += float64(z)
		if t := opts.Tracer; t != nil {
			t.Trace(obs.Event{
				Kind:      obs.KindPhase,
				Protocol:  obs.ProtoLoF,
				Phase:     "frame",
				Round:     out.Frames,
				FrameSize: opts.FrameSize,
				Count:     z,
				Seed:      seed,
			})
		}
	}
	out.MeanZ = sumZ / float64(out.Frames)
	out.Estimate = math.Exp2(out.MeanZ) / fmCorrection
	return out, nil
}

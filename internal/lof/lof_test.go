package lof

import (
	"math"
	"testing"

	"netags/internal/geom"
	"netags/internal/topology"
)

func diskNetwork(t *testing.T, n int, r float64, seed uint64) *topology.Network {
	t.Helper()
	d := geom.NewUniformDisk(n, 30, seed)
	nw, err := topology.Build(d, 0, topology.PaperRanges(r))
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestPickerGeometric(t *testing.T) {
	pick := Picker(7, 32)
	counts := make([]int, 32)
	const draws = 200000
	for id := uint64(0); id < draws; id++ {
		slots := pick(0, id)
		if len(slots) != 1 {
			t.Fatalf("picker returned %d slots", len(slots))
		}
		counts[slots[0]]++
	}
	// Slot j should hold ≈ draws·2^-(j+1).
	for j := 0; j < 8; j++ {
		want := float64(draws) * math.Exp2(-float64(j+1))
		if math.Abs(float64(counts[j])-want) > 6*math.Sqrt(want) {
			t.Errorf("slot %d: %d picks, want ~%.0f", j, counts[j], want)
		}
	}
}

func TestPickerClamped(t *testing.T) {
	pick := Picker(7, 4)
	for id := uint64(0); id < 100000; id++ {
		if s := pick(0, id)[0]; s < 0 || s >= 4 {
			t.Fatalf("slot %d outside 4-slot frame", s)
		}
	}
}

func TestFirstIdle(t *testing.T) {
	busy := map[int]bool{0: true, 1: true, 3: true}
	if got := FirstIdle(func(i int) bool { return busy[i] }, 8); got != 2 {
		t.Fatalf("FirstIdle = %d, want 2", got)
	}
	if got := FirstIdle(func(int) bool { return true }, 8); got != 8 {
		t.Fatalf("all-busy FirstIdle = %d, want 8", got)
	}
	if got := FirstIdle(func(int) bool { return false }, 8); got != 0 {
		t.Fatalf("all-idle FirstIdle = %d, want 0", got)
	}
}

func TestEstimateBallpark(t *testing.T) {
	// FM sketches are coarse; assert a generous 0.5x–2x band.
	for _, n := range []int{500, 3000} {
		nw := diskNetwork(t, n, 6, uint64(400+n))
		out, err := Estimate(nw, Options{Seed: 9, Frames: 48})
		if err != nil {
			t.Fatal(err)
		}
		truth := float64(nw.Reachable)
		if out.Estimate < truth/2 || out.Estimate > truth*2 {
			t.Errorf("n=%d: LoF estimate %.0f outside [%.0f, %.0f]",
				n, out.Estimate, truth/2, truth*2)
		}
		if out.Frames != 48 || out.Clock.Total() == 0 {
			t.Errorf("n=%d: costs not tracked: %+v", n, out)
		}
	}
}

func TestEstimateShortFramesAreCheap(t *testing.T) {
	// The whole point of LoF: 32-slot frames, so even 48 of them cost far
	// fewer slots than one GMLE frame (1671 slots).
	nw := diskNetwork(t, 2000, 6, 401)
	out, err := Estimate(nw, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if out.Clock.Total() > 8000 {
		t.Errorf("LoF cost %d slots; expected lightweight frames", out.Clock.Total())
	}
}

func TestEstimateValidation(t *testing.T) {
	nw := diskNetwork(t, 50, 6, 402)
	if _, err := Estimate(nw, Options{Frames: -1}); err == nil {
		t.Error("negative frame count accepted")
	}
}

func TestEstimateDeterministic(t *testing.T) {
	nw := diskNetwork(t, 500, 6, 403)
	a, err := Estimate(nw, Options{Seed: 5, Frames: 8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Estimate(nw, Options{Seed: 5, Frames: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.Estimate != b.Estimate {
		t.Fatal("LoF not deterministic for equal seeds")
	}
}

package obs

import (
	"fmt"
	"io"
)

// Instrumentation bundles the observability plumbing the CLIs share: an
// optional JSONL trace file, an optional metrics collector, and optional
// CPU/heap profiles. Build one with StartInstrumentation from the flag
// values, attach Tracer() to the run, and Close it when the run is done.
type Instrumentation struct {
	tracer      Tracer
	collector   *Collector
	traceFile   *JSONLFile
	stopProfile func() error
	metricsMode string
	closed      bool
}

// StartInstrumentation opens the requested sinks. traceOut names a JSONL
// trace file ("" = none), metricsMode is "", "text", or "json", and
// cpuProfile/memProfile name pprof output files ("" = none). On error,
// anything already opened is closed.
func StartInstrumentation(traceOut, metricsMode, cpuProfile, memProfile string) (*Instrumentation, error) {
	switch metricsMode {
	case "", "text", "json":
	default:
		return nil, fmt.Errorf("obs: metrics mode %q (want text or json)", metricsMode)
	}
	in := &Instrumentation{metricsMode: metricsMode}
	if traceOut != "" {
		f, err := CreateJSONLFile(traceOut)
		if err != nil {
			return nil, err
		}
		in.traceFile = f
	}
	if metricsMode != "" {
		in.collector = NewCollector()
	}
	stop, err := StartProfiles(cpuProfile, memProfile)
	if err != nil {
		if in.traceFile != nil {
			in.traceFile.Close()
		}
		return nil, err
	}
	in.stopProfile = stop
	var sinks []Tracer
	if in.traceFile != nil {
		sinks = append(sinks, in.traceFile)
	}
	if in.collector != nil {
		sinks = append(sinks, in.collector)
	}
	in.tracer = Multi(sinks...)
	return in, nil
}

// Tracer returns the combined event sink, or nil when neither a trace file
// nor metrics were requested — so attaching it preserves the nil-tracer
// fast path.
func (in *Instrumentation) Tracer() Tracer { return in.tracer }

// WithTracer returns the combined sink extended with extra tracers (nils
// skipped), e.g. a Narrator for -trace alongside the -trace-out file.
func (in *Instrumentation) WithTracer(extra ...Tracer) Tracer {
	return Multi(append([]Tracer{in.tracer}, extra...)...)
}

// Close flushes and closes every sink: the trace file is flushed, the
// metrics summary (if requested) is rendered to w, and the profiles are
// written. The first error wins, but every sink is still closed. Close is
// idempotent — only the first call does anything, so the metrics summary is
// rendered exactly once even when a CLI both defers Close and calls it on
// its happy path.
func (in *Instrumentation) Close(w io.Writer) error {
	if in.closed {
		return nil
	}
	in.closed = true
	var first error
	keep := func(err error) {
		if first == nil && err != nil {
			first = err
		}
	}
	if in.traceFile != nil {
		keep(in.traceFile.Close())
	}
	if in.collector != nil {
		m := in.collector.Snapshot()
		switch in.metricsMode {
		case "json":
			b, err := m.MarshalJSON()
			keep(err)
			if err == nil {
				_, err = fmt.Fprintf(w, "%s\n", b)
				keep(err)
			}
		case "text":
			_, err := io.WriteString(w, m.String())
			keep(err)
		}
	}
	if in.stopProfile != nil {
		keep(in.stopProfile())
	}
	return first
}

package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

func TestStartInstrumentationRejectsBadMetricsMode(t *testing.T) {
	if _, err := StartInstrumentation("", "yaml", "", ""); err == nil ||
		!strings.Contains(err.Error(), "metrics mode") {
		t.Fatalf("invalid metrics mode accepted (err=%v)", err)
	}
}

func TestStartInstrumentationNilFastPath(t *testing.T) {
	in, err := StartInstrumentation("", "", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if in.Tracer() != nil {
		t.Error("no sinks requested but Tracer() is non-nil (breaks the nil fast path)")
	}
	if err := in.Close(os.Stderr); err != nil {
		t.Fatal(err)
	}
}

// openFDs counts this process's open file descriptors (Linux only).
func openFDs(t *testing.T) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Fatal(err)
	}
	return len(ents)
}

// TestStartInstrumentationProfileFailureClosesSinks: when the CPU profile
// cannot be started, the already-opened trace file must be closed — no fd
// may leak out of the failed constructor.
func TestStartInstrumentationProfileFailureClosesSinks(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("fd accounting uses /proc/self/fd")
	}
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.jsonl")
	badCPU := filepath.Join(dir, "no-such-dir", "cpu.pprof")
	before := openFDs(t)
	in, err := StartInstrumentation(trace, "text", badCPU, "")
	if err == nil {
		in.Close(os.Stderr)
		t.Fatal("profile start against a missing directory succeeded")
	}
	if after := openFDs(t); after != before {
		t.Errorf("fd leak: %d open before, %d after failed StartInstrumentation", before, after)
	}
}

func TestStartInstrumentationTraceFailure(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "missing", "trace.jsonl")
	if _, err := StartInstrumentation(bad, "", "", ""); err == nil {
		t.Fatal("trace file in a missing directory accepted")
	}
}

// TestInstrumentationCloseRendersOnce: the metrics summary appears exactly
// once even when Close runs twice (deferred cleanup after a happy-path
// Close is the CLIs' standard shape).
func TestInstrumentationCloseRendersOnce(t *testing.T) {
	in, err := StartInstrumentation("", "text", "", "")
	if err != nil {
		t.Fatal(err)
	}
	in.Tracer().Trace(Event{Kind: KindSessionEnd, Rounds: 2, ShortSlots: 10, LongSlots: 1})
	var buf bytes.Buffer
	if err := in.Close(&buf); err != nil {
		t.Fatal(err)
	}
	if err := in.Close(&buf); err != nil {
		t.Fatalf("second Close errored: %v", err)
	}
	if n := strings.Count(buf.String(), "metrics:"); n != 1 {
		t.Fatalf("metrics summary rendered %d times, want 1:\n%s", n, buf.String())
	}
	if !strings.Contains(buf.String(), "1 sessions") {
		t.Errorf("summary missing the collected session:\n%s", buf.String())
	}
}

func TestInstrumentationCloseJSONMode(t *testing.T) {
	in, err := StartInstrumentation("", "json", "", "")
	if err != nil {
		t.Fatal(err)
	}
	in.Tracer().Trace(Event{Kind: KindSessionEnd, Rounds: 1})
	var buf bytes.Buffer
	if err := in.Close(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), `{"sessions":1`) {
		t.Fatalf("json summary = %q", buf.String())
	}
}

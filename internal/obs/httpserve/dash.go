package httpserve

// dashHTML is the zero-dependency live dashboard served at /debug/dash: a
// single static page whose inline script polls /api/v1/timeseries and
// /api/v1/alerts and renders one SVG sparkline per series. No external
// assets, no frameworks, no build step — it must work from a binary on an
// air-gapped box through nothing but curl-visible endpoints.
const dashHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>netags dash</title>
<style>
  body { font: 13px/1.4 ui-monospace, SFMono-Regular, Menlo, monospace;
         background: #111; color: #ddd; margin: 1.5em; }
  h1 { font-size: 15px; } h1 small { color: #777; font-weight: normal; }
  #alerts { margin: .6em 0 1.2em; }
  .alert { display: inline-block; padding: .15em .6em; margin-right: .5em;
           border-radius: 3px; background: #1d3a1d; color: #9e9; }
  .alert.firing { background: #5a1d1d; color: #f99; font-weight: bold; }
  #grid { display: grid; grid-template-columns: repeat(auto-fill, minmax(320px, 1fr));
          gap: .8em; }
  .card { background: #1a1a1a; border: 1px solid #2a2a2a; border-radius: 4px;
          padding: .5em .7em; }
  .card .name { color: #8cf; }
  .card .val { float: right; color: #fff; }
  svg { width: 100%; height: 48px; display: block; margin-top: .3em; }
  polyline { fill: none; stroke: #6cf; stroke-width: 1.2; }
  .err { color: #f77; }
</style>
</head>
<body>
<h1>netags self-observation <small id="ts"></small></h1>
<div id="alerts"></div>
<div id="grid"></div>
<script>
"use strict";
function fmt(v) {
  if (!isFinite(v)) return "-";
  const a = Math.abs(v);
  if (a >= 1e9) return (v/1e9).toFixed(1) + "G";
  if (a >= 1e6) return (v/1e6).toFixed(1) + "M";
  if (a >= 1e3) return (v/1e3).toFixed(1) + "k";
  if (a === 0 || a >= 1) return v.toFixed(a >= 100 ? 0 : 2);
  return v.toPrecision(2);
}
function spark(pts) {
  if (!pts.length) return "";
  const w = 300, h = 48, pad = 2;
  let lo = Infinity, hi = -Infinity;
  for (const p of pts) { lo = Math.min(lo, p.v); hi = Math.max(hi, p.v); }
  if (hi === lo) { hi += 1; lo -= 1; }
  const t0 = pts[0].t, t1 = pts[pts.length - 1].t || t0 + 1;
  const xy = pts.map(p => {
    const x = pad + (w - 2*pad) * (t1 === t0 ? 1 : (p.t - t0) / (t1 - t0));
    const y = h - pad - (h - 2*pad) * (p.v - lo) / (hi - lo);
    return x.toFixed(1) + "," + y.toFixed(1);
  }).join(" ");
  return '<svg viewBox="0 0 ' + w + ' ' + h + '" preserveAspectRatio="none">' +
         '<polyline points="' + xy + '"/></svg>';
}
async function refresh() {
  try {
    const [tsr, alr] = await Promise.all([
      fetch("/api/v1/timeseries?since=600s").then(r => r.json()),
      fetch("/api/v1/alerts").then(r => r.ok ? r.json() : {alerts: []}),
    ]);
    const grid = document.getElementById("grid");
    grid.innerHTML = Object.keys(tsr.series).sort().map(name => {
      const pts = tsr.series[name];
      const last = pts.length ? pts[pts.length - 1].v : NaN;
      return '<div class="card"><span class="name">' + name + '</span>' +
             '<span class="val">' + fmt(last) + '</span>' + spark(pts) + '</div>';
    }).join("");
    const alerts = document.getElementById("alerts");
    alerts.innerHTML = (alr.alerts || []).map(a =>
      '<span class="alert' + (a.firing ? " firing" : "") + '">' + a.rule +
      (a.firing ? " FIRING" : " ok") + '</span>').join("") || "<span>no alert rules</span>";
    document.getElementById("ts").textContent = new Date().toLocaleTimeString();
  } catch (e) {
    document.getElementById("ts").innerHTML = '<span class="err">' + e + "</span>";
  }
}
refresh();
setInterval(refresh, 2000);
</script>
</body>
</html>
`

package httpserve

import (
	"fmt"
	"io"

	"netags/internal/obs"
	"netags/internal/stats"
)

// WriteMetrics renders a metrics snapshot in the Prometheus text exposition
// format (version 0.0.4): counters for the session/round/slot totals,
// native histograms for the power-of-two obs.Hist distributions (bucket b
// covers [2^(b−1), 2^b), so the cumulative `le` bound of bucket b is
// 2^b − 1), and gauge expansions of the stats.Sample summaries.
func WriteMetrics(w io.Writer, m obs.Metrics) {
	counter(w, "netags_sessions_total", "Completed protocol sessions.", m.Sessions)
	counter(w, "netags_truncated_sessions_total", "Sessions that ended with data still in flight.", m.TruncatedSessions)
	counter(w, "netags_rounds_total", "Protocol rounds executed.", m.Rounds)
	counter(w, "netags_short_slots_total", "Air time spent in short (1-bit) slots.", m.ShortSlots)
	counter(w, "netags_long_slots_total", "Air time spent in long (96-bit) slots.", m.LongSlots)
	counter(w, "netags_busy_slots_total", "Busy slots collected into final bitmaps.", m.BusySlots)
	histogram(w, "netags_round_new_busy_slots", "Per-round new-busy counts (the information waves of the paper's Section III).", m.Waves)
	histogram(w, "netags_check_frame_slots", "Checking-frame lengths executed per round.", m.CheckSlots)
	histogram(w, "netags_tag_sent_bits", "Per-tag or per-session-max bits sent.", m.SentHist)
	histogram(w, "netags_tag_recv_bits", "Per-tag or per-session-max bits received.", m.RecvHist)
	sample(w, "netags_sent_bits", "Bits-sent distribution summary.", m.SentBits)
	sample(w, "netags_recv_bits", "Bits-received distribution summary.", m.RecvBits)
}

func counter(w io.Writer, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

// histogram renders an obs.Hist with cumulative buckets. Buckets past the
// highest non-empty one collapse into +Inf; bucket 0 (exact zeros) keeps
// its natural le="0" bound.
func histogram(w io.Writer, name, help string, h obs.Hist) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	top := 0
	for b, c := range h.Counts {
		if c > 0 {
			top = b
		}
	}
	var cum int64
	for b := 0; b <= top; b++ {
		cum += h.Counts[b]
		// Bucket b holds integer values ≤ 2^b − 1 (and bucket 0 holds zeros).
		le := int64(0)
		if b > 0 {
			le = int64(1)<<b - 1
		}
		fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, le, cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.N)
	fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", name, h.Sum, name, h.N)
}

// sample expands a stats.Sample into _count/_mean/_min/_max/_stddev gauges,
// each its own family with its own HELP/TYPE pair.
func sample(w io.Writer, name, help string, s stats.Sample) {
	fmt.Fprintf(w, "# HELP %s_count %s\n# TYPE %s_count gauge\n%s_count %d\n",
		name, help, name, name, s.N())
	for _, g := range []struct {
		suffix string
		v      float64
	}{
		{"mean", s.Mean()}, {"min", s.Min()}, {"max", s.Max()}, {"stddev", s.StdDev()},
	} {
		fmt.Fprintf(w, "# HELP %s_%s %s (%s)\n# TYPE %s_%s gauge\n%s_%s %g\n",
			name, g.suffix, help, g.suffix, name, g.suffix, name, g.suffix, g.v)
	}
}

package httpserve

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"netags/internal/obs"
)

// expositionLine matches one Prometheus text-format sample:
// name{labels} value — labels optional, value a float, inf, or NaN.
var expositionLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_]+="[^"]*"(,[a-zA-Z_]+="[^"]*")*\})? ` +
		`(-?\d+(\.\d+)?([eE][+-]?\d+)?|[+-]?Inf|NaN)$`)

// checkExposition validates every line of a /metrics body and returns the
// parsed samples by full series name (labels included).
func checkExposition(t *testing.T, body string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	for i, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Fatalf("line %d is not valid exposition format: %q", i+1, line)
		}
		sp := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("line %d value: %v", i+1, err)
		}
		samples[line[:sp]] = v
	}
	return samples
}

func TestWriteMetricsExposition(t *testing.T) {
	c := obs.NewCollector()
	// Two sessions: rounds with waves 0, 3, and 5, one truncated end.
	c.Trace(obs.Event{Kind: obs.KindFrame, NewBusy: 0})
	c.Trace(obs.Event{Kind: obs.KindFrame, NewBusy: 3})
	c.Trace(obs.Event{Kind: obs.KindFrame, NewBusy: 5})
	c.Trace(obs.Event{Kind: obs.KindCheck, Slots: 8})
	c.Trace(obs.Event{Kind: obs.KindSessionEnd, Rounds: 3, ShortSlots: 100, LongSlots: 4,
		KnownBusy: 5, AvgSentBits: 2.5, MaxSentBits: 7})
	c.Trace(obs.Event{Kind: obs.KindSessionEnd, Rounds: 1, Truncated: true})

	var sb strings.Builder
	WriteMetrics(&sb, c.Snapshot())
	samples := checkExposition(t, sb.String())

	if samples["netags_sessions_total"] != 2 {
		t.Errorf("sessions_total = %g", samples["netags_sessions_total"])
	}
	if samples["netags_truncated_sessions_total"] != 1 {
		t.Errorf("truncated = %g", samples["netags_truncated_sessions_total"])
	}
	if samples["netags_rounds_total"] != 4 {
		t.Errorf("rounds = %g", samples["netags_rounds_total"])
	}
	if samples["netags_busy_slots_total"] != 5 {
		t.Errorf("busy slots = %g", samples["netags_busy_slots_total"])
	}
	// Wave histogram: one zero, one 3 (bucket [2,4) → le="3"), one 5
	// (bucket [4,8) → le="7"); buckets are cumulative.
	if samples[`netags_round_new_busy_slots_bucket{le="0"}`] != 1 {
		t.Errorf("le=0 bucket = %g", samples[`netags_round_new_busy_slots_bucket{le="0"}`])
	}
	if samples[`netags_round_new_busy_slots_bucket{le="3"}`] != 2 {
		t.Errorf("le=3 bucket = %g", samples[`netags_round_new_busy_slots_bucket{le="3"}`])
	}
	if samples[`netags_round_new_busy_slots_bucket{le="7"}`] != 3 {
		t.Errorf("le=7 bucket = %g", samples[`netags_round_new_busy_slots_bucket{le="7"}`])
	}
	if samples[`netags_round_new_busy_slots_bucket{le="+Inf"}`] != 3 {
		t.Errorf("+Inf bucket = %g", samples[`netags_round_new_busy_slots_bucket{le="+Inf"}`])
	}
	if samples["netags_round_new_busy_slots_sum"] != 8 || samples["netags_round_new_busy_slots_count"] != 3 {
		t.Errorf("wave sum/count = %g/%g",
			samples["netags_round_new_busy_slots_sum"], samples["netags_round_new_busy_slots_count"])
	}
	if samples["netags_sent_bits_mean"] != 1.25 { // (2.5 + 0)/2 per-session averages
		t.Errorf("sent mean = %g", samples["netags_sent_bits_mean"])
	}
}

func TestWriteMetricsEmptySnapshot(t *testing.T) {
	var sb strings.Builder
	WriteMetrics(&sb, obs.Metrics{})
	samples := checkExposition(t, sb.String())
	if samples["netags_sessions_total"] != 0 {
		t.Errorf("empty snapshot sessions = %g", samples["netags_sessions_total"])
	}
	if samples[`netags_check_frame_slots_bucket{le="+Inf"}`] != 0 {
		t.Errorf("empty histogram +Inf bucket missing or nonzero")
	}
}

// Package httpserve is the simulator's live introspection server: an
// opt-in HTTP endpoint (the CLIs' -http flag, off by default) that makes a
// long-running sweep observable while it runs instead of only after it
// exits. It serves:
//
//	/metrics             Prometheus text exposition of the live obs.Collector
//	                     snapshot, histogram buckets included
//	/progress            JSON of the running sweep (completed/total work
//	                     items, per-point timing, throughput, ETA) from an
//	                     experiment.Tracker-style source
//	/events?n=K          the most recent K events retained by an obs.Ring
//	/api/v1/timeseries   step-aligned history from a timeseries.DB
//	/api/v1/alerts       SLO burn-rate alert states from an evaluator
//	/debug/dash          zero-dependency HTML dashboard over the two above
//	/debug/pprof/        the standard runtime profiles
//
// The server is strictly observe-only: it reads snapshot copies guarded by
// the sinks' own locks and never touches simulation state, so attaching it
// cannot change any reported number, and with the flag unset none of this
// code runs at all (the nil-tracer fast path is untouched).
package httpserve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"strconv"
	"time"

	"netags/internal/obs"
	"netags/internal/obs/timeseries"
)

// Options selects which sinks the server exposes. Nil fields disable their
// endpoint (it answers 404).
type Options struct {
	// Collector backs /metrics.
	Collector *obs.Collector
	// Ring backs /events.
	Ring *obs.Ring
	// Progress backs /progress: it returns the current sweep state as JSON
	// (experiment.(*Tracker).ProgressJSON is the canonical source). Nil
	// serves {"active":false}.
	Progress func() ([]byte, error)
	// Ready backs /readyz: the endpoint answers 200 while Ready returns
	// true and 503 once it returns false (a job manager flips it during
	// graceful drain). Nil means always ready. /healthz is independent of
	// Ready: it answers 200 whenever the process can serve HTTP at all.
	Ready func() bool
	// ExtraMetrics, if non-nil, is invoked after the collector snapshot in
	// /metrics so co-mounted subsystems (the serve layer's cache and queue
	// counters) can append their own exposition families.
	ExtraMetrics func(w io.Writer)
	// Timeseries backs /api/v1/timeseries and /debug/dash: the in-process
	// metric history recorded by a timeseries.Sampler.
	Timeseries *timeseries.DB
	// Alerts backs /api/v1/alerts and the netags_alert_active family on
	// /metrics: the SLO burn-rate evaluator running on the sampler's ticks.
	Alerts *timeseries.Evaluator
	// Cluster backs /api/v1/cluster: the router's ring/breaker/admission
	// status document (cluster.(*Router).StatusJSON is the canonical
	// source). Nil answers 404.
	Cluster func() ([]byte, error)
}

// NewHandler builds the introspection mux for the options. It is exported
// separately from Start so tests can drive it with net/http/httptest.
func NewHandler(o Options) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "netags introspection\n\n/metrics\n/progress\n/events?n=K\n/api/v1/timeseries\n/api/v1/alerts\n/api/v1/cluster\n/healthz\n/readyz\n/debug/dash\n/debug/pprof/\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if o.Collector == nil && o.ExtraMetrics == nil && o.Ring == nil &&
			o.Timeseries == nil && o.Alerts == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if o.Collector != nil {
			WriteMetrics(w, o.Collector.Snapshot())
		}
		if o.ExtraMetrics != nil {
			o.ExtraMetrics(w)
		}
		if o.Ring != nil {
			writeRingMetrics(w, o.Ring)
		}
		if o.Timeseries != nil {
			writeTimeseriesMetrics(w, o.Timeseries)
		}
		if o.Alerts != nil {
			o.Alerts.WriteProm(w)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if o.Ready != nil && !o.Ready() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if o.Progress == nil {
			fmt.Fprint(w, `{"active":false}`+"\n")
			return
		}
		b, err := o.Progress()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(append(b, '\n'))
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		if o.Ring == nil {
			http.NotFound(w, r)
			return
		}
		limit := o.Ring.Cap()
		if s := r.URL.Query().Get("n"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n < 0 {
				http.Error(w, "bad n parameter", http.StatusBadRequest)
				return
			}
			limit = n
		}
		evs := o.Ring.Last(limit)
		w.Header().Set("Content-Type", "application/json")
		// The hand-rolled event encoding (obs.Event.AppendJSON) is reused so
		// the endpoint and the -trace-out JSONL stay byte-compatible per event.
		buf := make([]byte, 0, 256+64*len(evs))
		buf = append(buf, fmt.Sprintf(`{"total":%d,"returned":%d,"events":[`, o.Ring.Total(), len(evs))...)
		for i, ev := range evs {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = ev.AppendJSON(buf)
		}
		buf = append(buf, ']', '}', '\n')
		w.Write(buf)
	})
	mux.HandleFunc("/api/v1/timeseries", func(w http.ResponseWriter, r *http.Request) {
		if o.Timeseries == nil {
			http.NotFound(w, r)
			return
		}
		handleTimeseries(w, r, o.Timeseries)
	})
	mux.HandleFunc("/api/v1/alerts", func(w http.ResponseWriter, r *http.Request) {
		if o.Alerts == nil {
			http.NotFound(w, r)
			return
		}
		states := o.Alerts.States()
		firing := 0
		for _, st := range states {
			if st.Firing {
				firing++
			}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{ //nolint:errcheck
			"firing": firing,
			"alerts": states,
		})
	})
	mux.HandleFunc("/api/v1/cluster", func(w http.ResponseWriter, r *http.Request) {
		if o.Cluster == nil {
			http.NotFound(w, r)
			return
		}
		b, err := o.Cluster()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(append(b, '\n'))
	})
	mux.HandleFunc("/debug/dash", func(w http.ResponseWriter, r *http.Request) {
		if o.Timeseries == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		io.WriteString(w, dashHTML) //nolint:errcheck
	})
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	return mux
}

// Server is a running introspection server. The zero of *Server is usable:
// every method no-ops on a nil receiver, so CLIs can wire it
// unconditionally behind an optional flag.
type Server struct {
	opts Options
	ln   net.Listener
	srv  *http.Server
}

// Start listens on addr (":0" picks a free port) and serves the
// introspection endpoints in a background goroutine until Close.
func Start(addr string, o Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("httpserve: listen %s: %w", addr, err)
	}
	s := &Server{
		opts: o,
		ln:   ln,
		srv: &http.Server{
			Handler:           NewHandler(o),
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
	go s.srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Tracer returns the event sink feeding the server's collector and ring
// (nil when neither is configured, or on a nil receiver — preserving the
// nil-tracer fast path when -http is unset).
func (s *Server) Tracer() obs.Tracer {
	if s == nil {
		return nil
	}
	var sinks []obs.Tracer
	if s.opts.Collector != nil {
		sinks = append(sinks, s.opts.Collector)
	}
	if s.opts.Ring != nil {
		sinks = append(sinks, s.opts.Ring)
	}
	return obs.Multi(sinks...)
}

// Close stops listening and shuts the server down immediately.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}

// Shutdown stops accepting new connections and waits for in-flight
// requests to finish, up to ctx's deadline (then it closes hard). Like
// every other method it no-ops on a nil receiver.
func (s *Server) Shutdown(ctx context.Context) error {
	if s == nil {
		return nil
	}
	return s.srv.Shutdown(ctx)
}

package httpserve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"netags/internal/experiment"
	"netags/internal/obs"
)

var errAlways = errors.New("cluster source down")

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestServerLiveSweep is the acceptance test: a real sweep runs with the
// server's sinks attached, then /metrics parses as Prometheus exposition,
// /progress totals match the sweep grid, and /events returns the ring tail.
func TestServerLiveSweep(t *testing.T) {
	coll := obs.NewCollector()
	ring := obs.NewRing(64)
	tracker := experiment.NewTracker()
	ts := httptest.NewServer(NewHandler(Options{
		Collector: coll,
		Ring:      ring,
		Progress:  tracker.ProgressJSON,
	}))
	defer ts.Close()

	cfg := experiment.Quick()
	cfg.N = 300
	cfg.Trials = 2
	cfg.RValues = []float64{6}
	cfg.Workers = 2
	cfg.Tracer = obs.Multi(coll, ring)
	total := len(cfg.RValues) * cfg.Trials
	tracker.SetTotal(total)
	if _, err := experiment.RunContext(context.Background(), cfg, tracker.Wrap(nil)); err != nil {
		t.Fatal(err)
	}

	// /metrics: valid exposition, with the sweep's sessions counted live.
	code, body := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	samples := checkExposition(t, string(body))
	// 3 protocols × 2 trials, SICP and the two CCM runs each end a session.
	if samples["netags_sessions_total"] < 6 {
		t.Errorf("sessions_total = %g, want >= 6", samples["netags_sessions_total"])
	}
	if samples["netags_rounds_total"] <= 0 {
		t.Errorf("rounds_total = %g, want > 0", samples["netags_rounds_total"])
	}

	// /progress: totals match the grid and the sweep reads done.
	code, body = get(t, ts.URL+"/progress")
	if code != http.StatusOK {
		t.Fatalf("/progress status %d", code)
	}
	var prog struct {
		Active    bool  `json:"active"`
		Completed int   `json:"completed"`
		Total     int   `json:"total"`
		Done      bool  `json:"done"`
		Points    []any `json:"points"`
		Last      any   `json:"last"`
	}
	if err := json.Unmarshal(body, &prog); err != nil {
		t.Fatalf("/progress not JSON: %v\n%s", err, body)
	}
	if !prog.Active || !prog.Done || prog.Completed != total || prog.Total != total {
		t.Errorf("/progress = %+v, want %d/%d done", prog, total, total)
	}
	if len(prog.Points) != len(cfg.RValues) || prog.Last == nil {
		t.Errorf("/progress points/last missing: %s", body)
	}

	// /events: the most recent ring contents, JSON-parseable, tail-limited.
	code, body = get(t, ts.URL+"/events?n=5")
	if code != http.StatusOK {
		t.Fatalf("/events status %d", code)
	}
	var evs struct {
		Total    uint64           `json:"total"`
		Returned int              `json:"returned"`
		Events   []map[string]any `json:"events"`
	}
	if err := json.Unmarshal(body, &evs); err != nil {
		t.Fatalf("/events not JSON: %v\n%s", err, body)
	}
	if evs.Total != ring.Total() {
		t.Errorf("/events total = %d, ring saw %d", evs.Total, ring.Total())
	}
	if evs.Returned != 5 || len(evs.Events) != 5 {
		t.Errorf("/events returned %d/%d events, want 5", evs.Returned, len(evs.Events))
	}
	want := ring.Last(5)
	for i, ev := range evs.Events {
		if ev["kind"] != want[i].Kind.String() {
			t.Errorf("event %d kind = %v, ring has %s", i, ev["kind"], want[i].Kind)
		}
	}

	// /debug/pprof: the index responds.
	if code, _ := get(t, ts.URL+"/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", code)
	}
}

func TestServerDisabledEndpoints(t *testing.T) {
	ts := httptest.NewServer(NewHandler(Options{}))
	defer ts.Close()
	for _, path := range []string{"/metrics", "/events"} {
		if code, _ := get(t, ts.URL+path); code != http.StatusNotFound {
			t.Errorf("%s without a sink: status %d, want 404", path, code)
		}
	}
	code, body := get(t, ts.URL+"/progress")
	if code != http.StatusOK || string(body) != `{"active":false}`+"\n" {
		t.Errorf("/progress without a source: %d %q", code, body)
	}
	if code, _ := get(t, ts.URL+"/nope"); code != http.StatusNotFound {
		t.Errorf("unknown path served")
	}
	code, body = get(t, ts.URL+"/")
	if code != http.StatusOK || len(body) == 0 {
		t.Errorf("index page: %d %q", code, body)
	}
}

// TestClusterEndpoint: /api/v1/cluster proxies the configured source and
// 404s without one.
func TestClusterEndpoint(t *testing.T) {
	ts := httptest.NewServer(NewHandler(Options{
		Cluster: func() ([]byte, error) { return []byte(`{"backends":[]}`), nil },
	}))
	defer ts.Close()
	code, body := get(t, ts.URL+"/api/v1/cluster")
	if code != http.StatusOK || string(body) != `{"backends":[]}`+"\n" {
		t.Errorf("/api/v1/cluster = %d %q", code, body)
	}

	bare := httptest.NewServer(NewHandler(Options{}))
	defer bare.Close()
	if code, _ := get(t, bare.URL+"/api/v1/cluster"); code != http.StatusNotFound {
		t.Errorf("/api/v1/cluster without a source: %d, want 404", code)
	}

	broken := httptest.NewServer(NewHandler(Options{
		Cluster: func() ([]byte, error) { return nil, errAlways },
	}))
	defer broken.Close()
	if code, _ := get(t, broken.URL+"/api/v1/cluster"); code != http.StatusInternalServerError {
		t.Errorf("failing cluster source: %d, want 500", code)
	}
}

func TestServerEventsBadParam(t *testing.T) {
	ts := httptest.NewServer(NewHandler(Options{Ring: obs.NewRing(4)}))
	defer ts.Close()
	if code, _ := get(t, ts.URL+"/events?n=x"); code != http.StatusBadRequest {
		t.Errorf("bad n accepted: %d", code)
	}
	code, body := get(t, ts.URL+"/events")
	if code != http.StatusOK {
		t.Fatalf("/events status %d", code)
	}
	var evs struct {
		Events []any `json:"events"`
	}
	if err := json.Unmarshal(body, &evs); err != nil || len(evs.Events) != 0 {
		t.Errorf("empty ring events = %s (err=%v)", body, err)
	}
}

// TestHealthAndReady: /healthz is unconditional, /readyz follows the Ready
// callback — 200 while accepting, 503 once the source flips (graceful
// drain), and 200 again if it recovers.
func TestHealthAndReady(t *testing.T) {
	var ready atomic.Bool
	ready.Store(true)
	ts := httptest.NewServer(NewHandler(Options{Ready: ready.Load}))
	defer ts.Close()

	if code, body := get(t, ts.URL+"/healthz"); code != http.StatusOK || string(body) != "ok\n" {
		t.Errorf("/healthz = %d %q, want 200 ok", code, body)
	}
	if code, body := get(t, ts.URL+"/readyz"); code != http.StatusOK || string(body) != "ok\n" {
		t.Errorf("ready /readyz = %d %q, want 200 ok", code, body)
	}
	ready.Store(false)
	if code, body := get(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable || string(body) != "draining\n" {
		t.Errorf("draining /readyz = %d %q, want 503 draining", code, body)
	}
	// /healthz stays 200 through a drain: the process can still serve HTTP.
	if code, _ := get(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Errorf("/healthz during drain = %d, want 200", code)
	}
	ready.Store(true)
	if code, _ := get(t, ts.URL+"/readyz"); code != http.StatusOK {
		t.Errorf("recovered /readyz = %d, want 200", code)
	}
}

// TestHealthReadyDefaults: with no Ready source both probes answer 200.
func TestHealthReadyDefaults(t *testing.T) {
	ts := httptest.NewServer(NewHandler(Options{}))
	defer ts.Close()
	for _, path := range []string{"/healthz", "/readyz"} {
		if code, _ := get(t, ts.URL+path); code != http.StatusOK {
			t.Errorf("%s without Ready = %d, want 200", path, code)
		}
	}
}

// TestExtraMetrics: the hook appends exposition families after the
// collector snapshot, and enables /metrics even without a collector.
func TestExtraMetrics(t *testing.T) {
	extra := func(w io.Writer) {
		io.WriteString(w, "# HELP extra_total test.\n# TYPE extra_total counter\nextra_total 7\n")
	}
	ts := httptest.NewServer(NewHandler(Options{
		Collector:    obs.NewCollector(),
		ExtraMetrics: extra,
	}))
	defer ts.Close()
	code, body := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	samples := checkExposition(t, string(body))
	if samples["extra_total"] != 7 {
		t.Errorf("extra family missing: %g", samples["extra_total"])
	}
	if _, ok := samples["netags_sessions_total"]; !ok {
		t.Errorf("collector families missing alongside extra")
	}

	// Extra metrics alone are enough to enable the endpoint.
	ts2 := httptest.NewServer(NewHandler(Options{ExtraMetrics: extra}))
	defer ts2.Close()
	code, body = get(t, ts2.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics with only extras: status %d", code)
	}
	if samples := checkExposition(t, string(body)); samples["extra_total"] != 7 {
		t.Errorf("extra-only metrics body wrong: %s", body)
	}
}

// TestServerShutdown: graceful Shutdown stops the listener; nil-safe.
func TestServerShutdown(t *testing.T) {
	s, err := Start("127.0.0.1:0", Options{Collector: obs.NewCollector()})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + s.Addr() + "/metrics"); err == nil {
		t.Error("server still serving after Shutdown")
	}
	var nilSrv *Server
	if err := nilSrv.Shutdown(ctx); err != nil {
		t.Error(err)
	}
}

// TestStartServesAndCloses exercises the real listener path the CLIs use.
func TestStartServesAndCloses(t *testing.T) {
	coll := obs.NewCollector()
	s, err := Start("127.0.0.1:0", Options{Collector: coll})
	if err != nil {
		t.Fatal(err)
	}
	if s.Tracer() == nil {
		t.Fatal("server with a collector must expose a tracer")
	}
	s.Tracer().Trace(obs.Event{Kind: obs.KindSessionEnd, Rounds: 1})
	code, body := get(t, "http://"+s.Addr()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics over TCP: status %d", code)
	}
	if samples := checkExposition(t, string(body)); samples["netags_sessions_total"] != 1 {
		t.Errorf("live session not visible: %g", samples["netags_sessions_total"])
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + s.Addr() + "/metrics"); err == nil {
		t.Error("server still serving after Close")
	}
}

// TestNilServer: the nil receiver contract the CLIs rely on when -http is
// unset — every method no-ops and Tracer() preserves the nil fast path.
func TestNilServer(t *testing.T) {
	var s *Server
	if s.Tracer() != nil {
		t.Error("nil server must yield a nil tracer")
	}
	if s.Addr() != "" {
		t.Error("nil server has an address")
	}
	if err := s.Close(); err != nil {
		t.Error(err)
	}
}

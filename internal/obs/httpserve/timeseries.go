package httpserve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"netags/internal/obs"
	"netags/internal/obs/timeseries"
)

// handleTimeseries answers GET /api/v1/timeseries. Parameters:
//
//	series  comma-separated series names; empty means every series
//	since   trailing window as a Go duration ("90s") or an absolute
//	        RFC3339 timestamp; empty means everything retained
//	step    downsampling window as a Go duration; empty means the DB's
//	        native resolution (no folding beyond alignment)
//
// The response maps each requested series to its step-aligned points:
//
//	{"resolution_ms":1000,"step_ms":5000,"series":{"name":[{"t":..,"v":..,"n":..},...]}}
//
// Unknown series come back as absent keys rather than errors, so dashboards
// can poll a fixed list while the daemon warms up.
func handleTimeseries(w http.ResponseWriter, r *http.Request, db *timeseries.DB) {
	q := r.URL.Query()

	var since time.Time
	if s := q.Get("since"); s != "" {
		if d, err := time.ParseDuration(s); err == nil {
			if d < 0 {
				d = -d
			}
			since = time.Now().Add(-d)
		} else if ts, err := time.Parse(time.RFC3339, s); err == nil {
			since = ts
		} else {
			http.Error(w, "bad since parameter: want a duration (90s) or RFC3339 time", http.StatusBadRequest)
			return
		}
	}

	step := time.Duration(0)
	if s := q.Get("step"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil || d <= 0 {
			http.Error(w, "bad step parameter: want a positive duration", http.StatusBadRequest)
			return
		}
		step = d
	}

	var names []string
	if s := q.Get("series"); s != "" {
		for _, n := range strings.Split(s, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	} else {
		names = db.Names()
	}

	out := make(map[string][]timeseries.Point, len(names))
	for _, name := range names {
		if pts, ok := db.Query(name, since, step); ok {
			out[name] = pts
		}
	}
	effStep := step
	if effStep <= 0 {
		effStep = db.Resolution()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{ //nolint:errcheck
		"resolution_ms": db.Resolution().Milliseconds(),
		"step_ms":       effStep.Milliseconds(),
		"series":        out,
	})
}

// writeRingMetrics appends the event-ring occupancy families to /metrics —
// the total offered and the monotonic overwrite loss (satellite of the
// "capacity but not drop rate" gap).
func writeRingMetrics(w io.Writer, r *obs.Ring) {
	fmt.Fprintf(w, "# HELP netags_events_total Events ever offered to the in-memory event ring.\n")
	fmt.Fprintf(w, "# TYPE netags_events_total counter\n")
	fmt.Fprintf(w, "netags_events_total %d\n", r.Total())
	fmt.Fprintf(w, "# HELP netags_events_dropped_total Events evicted from the ring by overwrite.\n")
	fmt.Fprintf(w, "# TYPE netags_events_dropped_total counter\n")
	fmt.Fprintf(w, "netags_events_dropped_total %d\n", r.Dropped())
}

// writeTimeseriesMetrics appends the history engine's own occupancy, so the
// observer is itself observable.
func writeTimeseriesMetrics(w io.Writer, db *timeseries.DB) {
	st := db.Stats()
	fmt.Fprintf(w, "# HELP netags_timeseries_series Live time-series count.\n")
	fmt.Fprintf(w, "# TYPE netags_timeseries_series gauge\n")
	fmt.Fprintf(w, "netags_timeseries_series %d\n", st.Series)
	fmt.Fprintf(w, "# HELP netags_timeseries_samples Samples currently retained across series.\n")
	fmt.Fprintf(w, "# TYPE netags_timeseries_samples gauge\n")
	fmt.Fprintf(w, "netags_timeseries_samples %d\n", st.Samples)
	fmt.Fprintf(w, "# HELP netags_timeseries_dropped_total Samples evicted by ring rotation.\n")
	fmt.Fprintf(w, "# TYPE netags_timeseries_dropped_total counter\n")
	fmt.Fprintf(w, "netags_timeseries_dropped_total %d\n", st.Dropped)
}

package httpserve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"netags/internal/obs"
	"netags/internal/obs/timeseries"
)

// tsResponse mirrors the /api/v1/timeseries JSON shape.
type tsResponse struct {
	ResolutionMS int64                         `json:"resolution_ms"`
	StepMS       int64                         `json:"step_ms"`
	Series       map[string][]timeseries.Point `json:"series"`
}

func tsTestServer(t *testing.T) (*httptest.Server, *timeseries.DB, *timeseries.Evaluator) {
	t.Helper()
	db := timeseries.New(time.Second, time.Minute)
	rules := []timeseries.Rule{
		{Name: "hot", Series: "temp", Op: ">=", Value: 50, WindowS: 60},
	}
	eval := timeseries.NewEvaluator(db, rules, nil)
	ts := httptest.NewServer(NewHandler(Options{Timeseries: db, Alerts: eval}))
	t.Cleanup(ts.Close)
	return ts, db, eval
}

func getTS(t *testing.T, url string) (int, tsResponse) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body tsResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, body
}

func TestTimeseriesEndpoint(t *testing.T) {
	ts, db, _ := tsTestServer(t)
	base := time.Now().Add(-30 * time.Second)
	for i := 0; i < 20; i++ {
		at := base.Add(time.Duration(i) * time.Second)
		db.Record("temp", at, float64(i))
		db.Record("load", at, float64(i*2))
	}

	// All series, native resolution.
	code, body := getTS(t, ts.URL+"/api/v1/timeseries")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if body.ResolutionMS != 1000 || body.StepMS != 1000 {
		t.Errorf("resolution/step = %d/%d, want 1000/1000", body.ResolutionMS, body.StepMS)
	}
	if len(body.Series) != 2 || len(body.Series["temp"]) != 20 || len(body.Series["load"]) != 20 {
		t.Errorf("series = %d keys, temp=%d load=%d", len(body.Series),
			len(body.Series["temp"]), len(body.Series["load"]))
	}

	// Filter + downsample: only temp, folded into 5s means.
	code, body = getTS(t, ts.URL+"/api/v1/timeseries?series=temp&step=5s")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if body.StepMS != 5000 {
		t.Errorf("step_ms = %d, want 5000", body.StepMS)
	}
	if _, ok := body.Series["load"]; ok {
		t.Error("filtered response still contains load")
	}
	pts := body.Series["temp"]
	if len(pts) < 4 || len(pts) > 5 {
		t.Fatalf("downsampled to %d points, want 4-5", len(pts))
	}
	for _, p := range pts {
		if p.T%5000 != 0 {
			t.Errorf("point at %d not 5s-aligned", p.T)
		}
	}

	// Unknown series are absent keys, not errors.
	code, body = getTS(t, ts.URL+"/api/v1/timeseries?series=nope")
	if code != http.StatusOK || len(body.Series) != 0 {
		t.Errorf("unknown series: status %d, %d keys", code, len(body.Series))
	}

	// since as a window narrows the result.
	code, body = getTS(t, ts.URL+"/api/v1/timeseries?series=temp&since=15s")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if n := len(body.Series["temp"]); n >= 20 || n == 0 {
		t.Errorf("since=15s returned %d points, want a strict subset", n)
	}

	// Bad parameters are 400s.
	for _, q := range []string{"?since=yesterday", "?step=0s", "?step=bogus"} {
		if code, _ := getTS(t, ts.URL+"/api/v1/timeseries"+q); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", q, code)
		}
	}
}

func TestAlertsEndpoint(t *testing.T) {
	ts, db, eval := tsTestServer(t)
	getAlerts := func() (int, []timeseries.AlertState) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/api/v1/alerts")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body struct {
			Firing int                     `json:"firing"`
			Alerts []timeseries.AlertState `json:"alerts"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return body.Firing, body.Alerts
	}

	// Before any evaluation: states exist but nothing fires.
	firing, alerts := getAlerts()
	if firing != 0 || len(alerts) != 1 || alerts[0].Rule != "hot" {
		t.Fatalf("idle alerts = %d %+v", firing, alerts)
	}

	// Drive the series hot and evaluate: the endpoint reports the fire.
	now := time.Now()
	db.Record("temp", now, 80)
	eval.Evaluate(now)
	firing, alerts = getAlerts()
	if firing != 1 || !alerts[0].Firing || alerts[0].Value != 80 {
		t.Fatalf("hot alerts = %d %+v", firing, alerts)
	}
	if alerts[0].Since == "" {
		t.Error("firing alert has no since timestamp")
	}
}

func TestMetricsFamilies(t *testing.T) {
	db := timeseries.New(time.Second, time.Minute)
	ring := obs.NewRing(4)
	for i := 0; i < 6; i++ { // wrap the ring: 2 drops
		ring.Trace(obs.Event{Kind: obs.KindRound, Round: i})
	}
	now := time.Now()
	db.Record("temp", now, 80)
	rules := []timeseries.Rule{{Name: "hot", Series: "temp", Op: ">=", Value: 50, WindowS: 60}}
	eval := timeseries.NewEvaluator(db, rules, nil)
	eval.Evaluate(now)

	ts := httptest.NewServer(NewHandler(Options{Ring: ring, Timeseries: db, Alerts: eval}))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(raw)
	for _, want := range []string{
		"netags_events_total 6",
		"netags_events_dropped_total 2",
		"netags_timeseries_series 1",
		"netags_timeseries_samples 1",
		"netags_timeseries_dropped_total 0",
		`netags_alert_active{rule="hot"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestDashEndpoint(t *testing.T) {
	ts, _, _ := tsTestServer(t)
	resp, err := http.Get(ts.URL + "/debug/dash")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("Content-Type = %q", ct)
	}
	page := string(raw)
	for _, want := range []string{"/api/v1/timeseries", "/api/v1/alerts", "<svg"} {
		if !strings.Contains(page, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
}

func TestTimeseriesDisabled(t *testing.T) {
	ts := httptest.NewServer(NewHandler(Options{}))
	defer ts.Close()
	for _, path := range []string{"/api/v1/timeseries", "/api/v1/alerts", "/debug/dash"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s without wiring: status %d, want 404", path, resp.StatusCode)
		}
	}
}

package obs

import (
	"fmt"
	"math/bits"
	"strings"
	"sync"

	"netags/internal/energy"
	"netags/internal/stats"
)

// histBuckets bounds Hist at values up to 2^22 (4M) per bucket top; larger
// observations land in the last bucket.
const histBuckets = 24

// Hist is a fixed-size power-of-two histogram: bucket 0 counts zeros,
// bucket b ≥ 1 counts values in [2^(b−1), 2^b). It is a flat value type
// (mergeable, comparable-by-field, no allocations), which keeps Metrics
// cheap enough to build on every run.
type Hist struct {
	// Counts are the per-bucket observation counts.
	Counts [histBuckets]int64
	// N, Sum, Max summarize the raw observations.
	N   int64
	Sum int64
	Max int64
}

// Observe records one value. Negative values are clamped to zero.
func (h *Hist) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	b := bits.Len64(uint64(v))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.Counts[b]++
	h.N++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
}

// Merge folds another histogram into h.
func (h *Hist) Merge(o Hist) {
	for i := range h.Counts {
		h.Counts[i] += o.Counts[i]
	}
	h.N += o.N
	h.Sum += o.Sum
	if o.Max > h.Max {
		h.Max = o.Max
	}
}

// Mean returns the mean observation (0 when empty).
func (h *Hist) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.N)
}

// BucketLow returns the inclusive lower bound of bucket b.
func BucketLow(b int) int64 {
	if b == 0 {
		return 0
	}
	return 1 << (b - 1)
}

// String renders the non-empty buckets compactly: "0:3 [1,2):5 [2,4):1".
func (h *Hist) String() string {
	var sb strings.Builder
	for b, c := range h.Counts {
		if c == 0 {
			continue
		}
		if sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		if b == 0 {
			fmt.Fprintf(&sb, "0:%d", c)
		} else {
			fmt.Fprintf(&sb, "[%d,%d):%d", BucketLow(b), int64(1)<<b, c)
		}
	}
	if sb.Len() == 0 {
		return "(empty)"
	}
	return sb.String()
}

// appendJSON renders the histogram as {"n":..,"sum":..,"max":..,"mean":..,
// "buckets":{"<low>":count,...}} with empty buckets omitted.
func (h *Hist) appendJSON(b []byte) []byte {
	b = append(b, fmt.Sprintf(`{"n":%d,"sum":%d,"max":%d,"mean":%g,"buckets":{`,
		h.N, h.Sum, h.Max, h.Mean())...)
	first := true
	for bk, c := range h.Counts {
		if c == 0 {
			continue
		}
		if !first {
			b = append(b, ',')
		}
		first = false
		b = append(b, fmt.Sprintf(`"%d":%d`, BucketLow(bk), c)...)
	}
	return append(b, '}', '}')
}

// Metrics is a mergeable snapshot of what one or more protocol runs cost
// and how they converged: counters for sessions/rounds/slots, histograms
// for the per-round busy-slot waves and checking frames, and per-tag
// bits-sent/received distributions built on energy.Meter and stats.Sample.
//
// Two builders share this type with slightly different granularity:
// core.Result.MetricsFor fills the bit distributions per tag from the
// session's Meter, while the event-driven Collector (which never sees a
// Meter) fills SentBits/RecvBits with per-session averages and
// SentHist/RecvHist with per-session maxima from session_end events.
type Metrics struct {
	// Sessions, Rounds, TruncatedSessions count completed protocol
	// sessions, their total rounds, and how many ended truncated.
	Sessions          int64
	Rounds            int64
	TruncatedSessions int64
	// ShortSlots / LongSlots total the air time by slot kind.
	ShortSlots int64
	LongSlots  int64
	// BusySlots totals the final busy-slot counts of the collected bitmaps.
	BusySlots int64
	// Waves is the distribution of per-round new-busy counts — the §III
	// information waves arriving tier by tier.
	Waves Hist
	// CheckSlots is the distribution of checking-frame lengths executed.
	CheckSlots Hist
	// SentBits / RecvBits are bits-sent/received distributions (per tag or
	// per session; see the type comment).
	SentBits stats.Sample
	RecvBits stats.Sample
	// SentHist / RecvHist are the same measurements as power-of-two
	// histograms, for tail inspection.
	SentHist Hist
	RecvHist Hist
}

// AddMeter folds a meter's per-tag bit counts into the distributions,
// restricted to tags for which include returns true (nil means all).
func (m *Metrics) AddMeter(mt *energy.Meter, include func(i int) bool) {
	for i := 0; i < mt.N(); i++ {
		if include != nil && !include(i) {
			continue
		}
		sent, recv := mt.Sent(i), mt.Received(i)
		m.SentBits.Add(float64(sent))
		m.RecvBits.Add(float64(recv))
		m.SentHist.Observe(sent)
		m.RecvHist.Observe(recv)
	}
}

// Merge folds another snapshot into m.
func (m *Metrics) Merge(o *Metrics) {
	m.Sessions += o.Sessions
	m.Rounds += o.Rounds
	m.TruncatedSessions += o.TruncatedSessions
	m.ShortSlots += o.ShortSlots
	m.LongSlots += o.LongSlots
	m.BusySlots += o.BusySlots
	m.Waves.Merge(o.Waves)
	m.CheckSlots.Merge(o.CheckSlots)
	m.SentBits.Merge(o.SentBits)
	m.RecvBits.Merge(o.RecvBits)
	m.SentHist.Merge(o.SentHist)
	m.RecvHist.Merge(o.RecvHist)
}

// TotalSlots returns the total air time in slots.
func (m *Metrics) TotalSlots() int64 { return m.ShortSlots + m.LongSlots }

// String renders the snapshot as an indented text block (the CLIs'
// `-metrics text`).
func (m *Metrics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "metrics: %d sessions, %d rounds, %d truncated\n",
		m.Sessions, m.Rounds, m.TruncatedSessions)
	fmt.Fprintf(&b, "  air time: %d slots (%d short + %d long), %d busy slots collected\n",
		m.TotalSlots(), m.ShortSlots, m.LongSlots, m.BusySlots)
	fmt.Fprintf(&b, "  busy-slot waves/round: mean %.1f max %d  %s\n",
		m.Waves.Mean(), m.Waves.Max, m.Waves.String())
	fmt.Fprintf(&b, "  check slots/round:     mean %.1f max %d  %s\n",
		m.CheckSlots.Mean(), m.CheckSlots.Max, m.CheckSlots.String())
	fmt.Fprintf(&b, "  bits sent:     %s (max %d)\n", m.SentBits.String(), m.SentHist.Max)
	fmt.Fprintf(&b, "  bits received: %s (max %d)\n", m.RecvBits.String(), m.RecvHist.Max)
	return b.String()
}

// MarshalJSON renders the snapshot for machine consumers (`-metrics json`).
// stats.Sample fields are expanded to {n, mean, stddev, min, max}.
func (m *Metrics) MarshalJSON() ([]byte, error) {
	b := make([]byte, 0, 1024)
	b = append(b, fmt.Sprintf(
		`{"sessions":%d,"rounds":%d,"truncated_sessions":%d,"short_slots":%d,"long_slots":%d,"total_slots":%d,"busy_slots":%d`,
		m.Sessions, m.Rounds, m.TruncatedSessions, m.ShortSlots, m.LongSlots, m.TotalSlots(), m.BusySlots)...)
	b = append(b, `,"waves":`...)
	b = m.Waves.appendJSON(b)
	b = append(b, `,"check_slots":`...)
	b = m.CheckSlots.appendJSON(b)
	b = append(b, `,"sent_bits":`...)
	b = appendSampleJSON(b, &m.SentBits)
	b = append(b, `,"recv_bits":`...)
	b = appendSampleJSON(b, &m.RecvBits)
	b = append(b, `,"sent_hist":`...)
	b = m.SentHist.appendJSON(b)
	b = append(b, `,"recv_hist":`...)
	b = m.RecvHist.appendJSON(b)
	return append(b, '}'), nil
}

func appendSampleJSON(b []byte, s *stats.Sample) []byte {
	return append(b, fmt.Sprintf(`{"n":%d,"mean":%g,"stddev":%g,"min":%g,"max":%g}`,
		s.N(), s.Mean(), s.StdDev(), s.Min(), s.Max())...)
}

// Collector is a Tracer that reduces the event stream into a Metrics
// snapshot, for consumers that only see events (the CLIs' `-metrics` over
// sweeps). Safe for concurrent use.
type Collector struct {
	mu sync.Mutex
	m  Metrics
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Trace folds one event into the running snapshot.
func (c *Collector) Trace(ev Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch ev.Kind {
	case KindFrame:
		c.m.Waves.Observe(int64(ev.NewBusy))
	case KindCheck:
		c.m.CheckSlots.Observe(ev.Slots)
	case KindSessionEnd:
		c.m.Sessions++
		c.m.Rounds += int64(ev.Rounds)
		c.m.ShortSlots += ev.ShortSlots
		c.m.LongSlots += ev.LongSlots
		c.m.BusySlots += int64(ev.KnownBusy)
		if ev.Truncated {
			c.m.TruncatedSessions++
		}
		c.m.SentBits.Add(ev.AvgSentBits)
		c.m.RecvBits.Add(ev.AvgRecvBits)
		c.m.SentHist.Observe(ev.MaxSentBits)
		c.m.RecvHist.Observe(ev.MaxRecvBits)
	}
}

// Snapshot returns a copy of the accumulated metrics.
func (c *Collector) Snapshot() Metrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m
}

package obs

import (
	"encoding/json"
	"strings"
	"testing"

	"netags/internal/energy"
)

func TestHistBuckets(t *testing.T) {
	var h Hist
	for _, v := range []int64{0, 1, 2, 3, 4, 7, 8, 1 << 30} {
		h.Observe(v)
	}
	if h.N != 8 || h.Max != 1<<30 {
		t.Fatalf("N=%d Max=%d", h.N, h.Max)
	}
	// 0 → bucket 0; 1 → bucket 1; 2,3 → bucket 2; 4..7 → bucket 3;
	// 8 → bucket 4; 1<<30 clamps into the last bucket.
	want := map[int]int64{0: 1, 1: 1, 2: 2, 3: 2, 4: 1, histBuckets - 1: 1}
	for b, c := range h.Counts {
		if c != want[b] {
			t.Errorf("bucket %d: got %d want %d", b, c, want[b])
		}
	}
	h.Observe(-5) // clamps to zero
	if h.Counts[0] != 2 {
		t.Errorf("negative observation not clamped: %v", h.Counts[0])
	}
}

func TestHistMergeAndString(t *testing.T) {
	var a, b Hist
	a.Observe(1)
	a.Observe(10)
	b.Observe(100)
	a.Merge(b)
	if a.N != 3 || a.Sum != 111 || a.Max != 100 {
		t.Fatalf("merged %+v", a)
	}
	if s := a.String(); !strings.Contains(s, "[1,2):1") {
		t.Errorf("String() = %q", s)
	}
	var empty Hist
	if empty.String() != "(empty)" || empty.Mean() != 0 {
		t.Error("empty hist rendering")
	}
}

func TestMetricsAddMeterAndMerge(t *testing.T) {
	m := energy.NewMeter(4)
	m.AddSent(0, 10)
	m.AddReceived(0, 100)
	m.AddSent(1, 30)
	m.AddReceived(1, 300)
	m.AddSent(3, 999) // excluded below

	var a Metrics
	a.AddMeter(m, func(i int) bool { return i < 2 })
	if a.SentBits.N() != 2 || a.SentBits.Mean() != 20 {
		t.Fatalf("sent sample %v", a.SentBits)
	}
	if a.RecvBits.Mean() != 200 || a.SentHist.Max != 30 {
		t.Fatalf("distributions wrong: %v %v", a.RecvBits, a.SentHist)
	}

	b := Metrics{Sessions: 2, Rounds: 7, ShortSlots: 100, LongSlots: 10, BusySlots: 5, TruncatedSessions: 1}
	a.Merge(&b)
	if a.Sessions != 2 || a.Rounds != 7 || a.TotalSlots() != 110 || a.TruncatedSessions != 1 {
		t.Fatalf("merge wrong: %+v", a)
	}
}

func TestMetricsJSONAndText(t *testing.T) {
	var m Metrics
	m.Sessions = 1
	m.Rounds = 3
	m.ShortSlots, m.LongSlots = 50, 5
	m.Waves.Observe(4)
	m.Waves.Observe(2)
	m.CheckSlots.Observe(6)
	m.SentBits.Add(12)
	m.RecvBits.Add(120)
	m.SentHist.Observe(12)
	m.RecvHist.Observe(120)

	data, err := json.Marshal(&m)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("invalid metrics JSON %s: %v", data, err)
	}
	if decoded["sessions"] != float64(1) || decoded["total_slots"] != float64(55) {
		t.Errorf("counters wrong: %v", decoded)
	}
	waves, ok := decoded["waves"].(map[string]any)
	if !ok || waves["n"] != float64(2) || waves["mean"] != float64(3) {
		t.Errorf("waves wrong: %v", decoded["waves"])
	}
	sent, ok := decoded["sent_bits"].(map[string]any)
	if !ok || sent["mean"] != float64(12) {
		t.Errorf("sent sample wrong: %v", decoded["sent_bits"])
	}

	text := m.String()
	for _, want := range []string{"1 sessions", "3 rounds", "55 slots", "bits sent"} {
		if !strings.Contains(text, want) {
			t.Errorf("text rendering missing %q:\n%s", want, text)
		}
	}
}

func TestCollectorReducesEvents(t *testing.T) {
	c := NewCollector()
	c.Trace(Event{Kind: KindSessionStart}) // ignored
	c.Trace(Event{Kind: KindFrame, NewBusy: 5})
	c.Trace(Event{Kind: KindFrame, NewBusy: 3})
	c.Trace(Event{Kind: KindCheck, Slots: 4})
	c.Trace(Event{Kind: KindSessionEnd, Rounds: 2, KnownBusy: 8,
		ShortSlots: 260, LongSlots: 12, Truncated: true,
		AvgSentBits: 1.5, AvgRecvBits: 90, MaxSentBits: 3, MaxRecvBits: 200})
	m := c.Snapshot()
	if m.Sessions != 1 || m.Rounds != 2 || m.BusySlots != 8 || m.TruncatedSessions != 1 {
		t.Fatalf("counters %+v", m)
	}
	if m.Waves.N != 2 || m.Waves.Sum != 8 || m.CheckSlots.Sum != 4 {
		t.Fatalf("histograms %+v %+v", m.Waves, m.CheckSlots)
	}
	if m.SentBits.Mean() != 1.5 || m.SentHist.Max != 3 {
		t.Fatalf("bit stats %+v", m.SentBits)
	}
}

// Package obs is the simulator's observability layer: structured trace
// events, run-metrics snapshots, and profiling helpers.
//
// The paper's whole argument is about per-round convergence (the
// information waves of §III crossing one tier per round) and per-tag cost
// (§VI, Tables I–IV); obs makes both visible without touching the
// simulation. Protocol code emits Events through a Tracer interface; a nil
// Tracer costs nothing on the hot path — every emission site is guarded by
// a nil check and the Event is a flat value type, so a disabled tracer
// performs zero allocations and zero calls. Tracers are observe-only by
// contract: attaching one must never change simulation results (the core
// package's golden test pins this bit-for-bit).
//
// The event taxonomy (see DESIGN.md "Observability" for field semantics):
//
//	session_start   a protocol session begins (CCM, SICP/CICP)
//	frame           one f-slot CCM data frame completed
//	indicator       the §III-D indicator-vector broadcast
//	check           the §III-E checking frame
//	round           one full CCM round (frame + indicator + check)
//	session_end     a session finished, with its cost totals
//	reader_merge    a per-reader result OR-merged into a combined bitmap
//	phase           a protocol-level step (GMLE frame, TRP round, search)
//	slot_batch      a contiguous batch of slots run for one purpose (SICP)
//	job             a serve-layer job lifecycle transition (admitted, running,
//	                point completed, resumed, terminal — see internal/serve)
//	alert           an SLO alert rule transition (firing/resolved — see
//	                internal/obs/timeseries)
package obs

import "strconv"

// Kind discriminates trace events.
type Kind uint8

// The event kinds, in rough emission order within a session.
const (
	KindSessionStart Kind = iota + 1
	KindFrame
	KindIndicator
	KindCheck
	KindRound
	KindSessionEnd
	KindReaderMerge
	KindPhase
	KindSlotBatch
	KindJob
	KindAlert
)

// String returns the snake_case name used in JSONL traces.
func (k Kind) String() string {
	switch k {
	case KindSessionStart:
		return "session_start"
	case KindFrame:
		return "frame"
	case KindIndicator:
		return "indicator"
	case KindCheck:
		return "check"
	case KindRound:
		return "round"
	case KindSessionEnd:
		return "session_end"
	case KindReaderMerge:
		return "reader_merge"
	case KindPhase:
		return "phase"
	case KindSlotBatch:
		return "slot_batch"
	case KindJob:
		return "job"
	case KindAlert:
		return "alert"
	}
	return "unknown"
}

// Protocol labels for Event.Protocol. Constants so that emission sites
// never allocate a string.
const (
	ProtoCCM    = "ccm"
	ProtoSICP   = "sicp"
	ProtoCICP   = "cicp"
	ProtoGMLE   = "gmle"
	ProtoLoF    = "lof"
	ProtoTRP    = "trp"
	ProtoSearch = "search"
	// ProtoServe labels serve-layer job lifecycle events (KindJob).
	ProtoServe = "serve"
	// ProtoSLO labels alert rule transitions (KindAlert); the rule name
	// rides in Event.Phase ("<rule>:firing" / "<rule>:resolved").
	ProtoSLO = "slo"
	// ProtoCluster labels router breaker transitions (KindAlert); the
	// backend address and new state ride in Event.Phase ("<addr>:<state>").
	ProtoCluster = "cluster"
)

// Event is one structured trace record. It is a flat value type — no
// pointers, no slices — so emitting one with a nil Tracer costs nothing and
// emitting one with a live Tracer costs a stack copy. Fields not meaningful
// for a given Kind are left at their zero value and omitted from the JSONL
// encoding; consumers use jq's `// 0` defaulting (see README.md).
type Event struct {
	// Kind discriminates the record.
	Kind Kind
	// Protocol is the emitting protocol (Proto* constants).
	Protocol string
	// Phase labels phase and slot_batch events ("flood", "probe", …) and
	// carries the lifecycle stage of job events ("admitted", "running", …).
	Phase string
	// Job is the serve-layer job key a KindJob event belongs to (hex
	// SHA-256, so it never needs JSON escaping). Empty on simulator events.
	Job string
	// Reader identifies the reader (multi-reader deployments) or, for
	// CLI-level parallel runs, the caller-assigned stream.
	Reader int
	// Round is the 1-based round (CCM) or iteration (GMLE frame, TRP
	// execution, SICP flood tier) the event belongs to.
	Round int
	// FrameSize is f, the frame length in slots.
	FrameSize int
	// Slots is the air time this step consumed, in slots.
	Slots int64
	// Transmitters is the number of tags that transmitted in this step.
	Transmitters int
	// Bits is the number of tag bits transmitted in this step.
	Bits int64
	// NewBusy is the number of slots the reader first saw busy this round —
	// the information wave arriving from one more tier out.
	NewBusy int
	// KnownBusy is the reader's cumulative busy-slot count.
	KnownBusy int
	// CheckSlots is the checking-frame length executed after the round.
	CheckSlots int
	// Count is a kind-specific cardinality: slots silenced (indicator),
	// idle slots (GMLE frame), IDs collected (SICP), IDs undetermined
	// (TRP identify), IDs found (search).
	Count int
	// Pending reports whether more work follows (check frames, rounds,
	// detection executions).
	Pending bool
	// Tags is the deployment population visible to the session.
	Tags int
	// Tiers is the network tier count K.
	Tiers int
	// Rounds is the total rounds a finished session executed.
	Rounds int
	// Truncated reports a session that ended with data still in flight.
	Truncated bool
	// ShortSlots / LongSlots split a finished step's air time by slot kind.
	ShortSlots int64
	LongSlots  int64
	// Seed is the request seed of the session or round.
	Seed uint64
	// Value is a kind-specific measurement: the sampling probability of a
	// GMLE probe, the running estimate n̂, the LoF Z statistic.
	Value float64
	// AvgSentBits / AvgRecvBits / MaxSentBits / MaxRecvBits summarize the
	// per-tag energy of a finished session (session_end only).
	AvgSentBits float64
	AvgRecvBits float64
	MaxSentBits int64
	MaxRecvBits int64
}

// Tracer receives structured events from the simulator. Implementations
// must be observe-only (never influence the run) and, when shared across
// the experiment runner's worker pool, safe for concurrent use — every
// tracer in this package is.
type Tracer interface {
	Trace(Event)
}

// Multi fans events out to every non-nil tracer. It returns nil when none
// remain, so callers can unconditionally install the result and keep the
// nil-tracer fast path.
func Multi(tracers ...Tracer) Tracer {
	var live []Tracer
	for _, t := range tracers {
		if t != nil {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multiTracer(live)
}

type multiTracer []Tracer

func (m multiTracer) Trace(ev Event) {
	for _, t := range m {
		t.Trace(ev)
	}
}

// AppendJSON appends the event as one JSON object (no trailing newline).
// Zero-valued fields are omitted except Kind; the encoding is hand-rolled
// so that a JSONL tracer costs no reflection and no intermediate
// allocations beyond the caller's reused buffer.
func (e Event) AppendJSON(b []byte) []byte {
	b = append(b, `{"kind":"`...)
	b = append(b, e.Kind.String()...)
	b = append(b, '"')
	b = appendStr(b, "protocol", e.Protocol)
	b = appendStr(b, "phase", e.Phase)
	b = appendStr(b, "job", e.Job)
	b = appendInt(b, "reader", int64(e.Reader))
	b = appendInt(b, "round", int64(e.Round))
	b = appendInt(b, "frame_size", int64(e.FrameSize))
	b = appendInt(b, "slots", e.Slots)
	b = appendInt(b, "transmitters", int64(e.Transmitters))
	b = appendInt(b, "bits", e.Bits)
	b = appendInt(b, "new_busy", int64(e.NewBusy))
	b = appendInt(b, "known_busy", int64(e.KnownBusy))
	b = appendInt(b, "check_slots", int64(e.CheckSlots))
	b = appendInt(b, "count", int64(e.Count))
	b = appendBool(b, "pending", e.Pending)
	b = appendInt(b, "tags", int64(e.Tags))
	b = appendInt(b, "tiers", int64(e.Tiers))
	b = appendInt(b, "rounds", int64(e.Rounds))
	b = appendBool(b, "truncated", e.Truncated)
	b = appendInt(b, "short_slots", e.ShortSlots)
	b = appendInt(b, "long_slots", e.LongSlots)
	b = appendUint(b, "seed", e.Seed)
	b = appendFloat(b, "value", e.Value)
	b = appendFloat(b, "avg_sent_bits", e.AvgSentBits)
	b = appendFloat(b, "avg_recv_bits", e.AvgRecvBits)
	b = appendInt(b, "max_sent_bits", e.MaxSentBits)
	b = appendInt(b, "max_recv_bits", e.MaxRecvBits)
	return append(b, '}')
}

// The append helpers omit zero values; the protocol/phase strings are
// package constants and the job key is hex, so none need escaping.

func appendStr(b []byte, key, v string) []byte {
	if v == "" {
		return b
	}
	b = appendKey(b, key)
	b = append(b, '"')
	b = append(b, v...)
	return append(b, '"')
}

func appendInt(b []byte, key string, v int64) []byte {
	if v == 0 {
		return b
	}
	return strconv.AppendInt(appendKey(b, key), v, 10)
}

func appendUint(b []byte, key string, v uint64) []byte {
	if v == 0 {
		return b
	}
	return strconv.AppendUint(appendKey(b, key), v, 10)
}

func appendFloat(b []byte, key string, v float64) []byte {
	if v == 0 {
		return b
	}
	return strconv.AppendFloat(appendKey(b, key), v, 'g', -1, 64)
}

func appendBool(b []byte, key string, v bool) []byte {
	if !v {
		return b
	}
	return append(appendKey(b, key), "true"...)
}

func appendKey(b []byte, key string) []byte {
	b = append(b, ',', '"')
	b = append(b, key...)
	return append(b, '"', ':')
}

package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestEventAppendJSONOmitsZeros(t *testing.T) {
	ev := Event{Kind: KindRound, Protocol: ProtoCCM, Round: 3, NewBusy: 7}
	got := string(ev.AppendJSON(nil))
	var m map[string]any
	if err := json.Unmarshal([]byte(got), &m); err != nil {
		t.Fatalf("invalid JSON %q: %v", got, err)
	}
	if m["kind"] != "round" || m["protocol"] != "ccm" {
		t.Errorf("kind/protocol wrong in %v", m)
	}
	if m["round"] != float64(3) || m["new_busy"] != float64(7) {
		t.Errorf("payload wrong in %v", m)
	}
	if _, ok := m["known_busy"]; ok {
		t.Errorf("zero field not omitted in %v", m)
	}
}

func TestEventAppendJSONAllFields(t *testing.T) {
	ev := Event{
		Kind: KindSessionEnd, Protocol: ProtoCCM, Phase: "x", Job: "ab12", Reader: 1,
		Round: 2, FrameSize: 512, Slots: 3, Transmitters: 4, Bits: 5,
		NewBusy: 6, KnownBusy: 7, CheckSlots: 8, Count: 9, Pending: true,
		Tags: 10, Tiers: 11, Rounds: 12, Truncated: true, ShortSlots: 13,
		LongSlots: 14, Seed: 15, Value: 1.5, AvgSentBits: 2.5,
		AvgRecvBits: 3.5, MaxSentBits: 16, MaxRecvBits: 17,
	}
	var m map[string]any
	if err := json.Unmarshal(ev.AppendJSON(nil), &m); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	// 27 struct fields, all non-zero, all present.
	if len(m) != 27 {
		t.Errorf("got %d JSON fields, want 27: %v", len(m), m)
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{KindSessionStart, KindFrame, KindIndicator, KindCheck,
		KindRound, KindSessionEnd, KindReaderMerge, KindPhase, KindSlotBatch,
		KindJob}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "unknown" || seen[s] {
			t.Errorf("kind %d renders %q", k, s)
		}
		seen[s] = true
	}
	if Kind(0).String() != "unknown" {
		t.Error("zero kind should be unknown")
	}
}

func TestMultiSkipsNil(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Error("Multi of nils should be nil")
	}
	m1, m2 := NewMemory(), NewMemory()
	single := Multi(nil, m1)
	if single != m1 {
		t.Error("Multi of one should return it directly")
	}
	both := Multi(m1, nil, m2)
	both.Trace(Event{Kind: KindRound})
	if m1.Len() != 1 || m2.Len() != 1 {
		t.Errorf("fan-out failed: %d, %d", m1.Len(), m2.Len())
	}
}

func TestJSONLConcurrent(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONL(&buf)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tr.Trace(Event{Kind: KindRound, Reader: g, Round: i + 1})
			}
		}(g)
	}
	wg.Wait()
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 400 {
		t.Fatalf("got %d lines, want 400", len(lines))
	}
	for _, ln := range lines {
		if !json.Valid([]byte(ln)) {
			t.Fatalf("interleaved/corrupt line %q", ln)
		}
	}
}

func TestMemoryTracer(t *testing.T) {
	m := NewMemory()
	m.Trace(Event{Kind: KindSessionStart})
	m.Trace(Event{Kind: KindRound})
	m.Trace(Event{Kind: KindRound})
	if m.Len() != 3 {
		t.Fatalf("len %d", m.Len())
	}
	k := m.Kinds()
	if k[KindRound] != 2 || k[KindSessionStart] != 1 {
		t.Errorf("kinds %v", k)
	}
	evs := m.Events()
	evs[0].Kind = KindPhase // must not alias internal storage
	if m.Events()[0].Kind != KindSessionStart {
		t.Error("Events returned aliased storage")
	}
}

func TestNarratorOutput(t *testing.T) {
	var buf bytes.Buffer
	n := NewNarrator(&buf)
	n.Trace(Event{Kind: KindSessionStart, Protocol: ProtoCCM, FrameSize: 128, Tags: 50, Tiers: 3, Seed: 9})
	n.Trace(Event{Kind: KindRound, Round: 1, Transmitters: 12, Bits: 12, NewBusy: 5, KnownBusy: 5, CheckSlots: 4})
	n.Trace(Event{Kind: KindSessionEnd, Rounds: 1, KnownBusy: 5, ShortSlots: 132, LongSlots: 3})
	n.Trace(Event{Kind: KindPhase, Protocol: ProtoGMLE, Phase: "probe", Round: 1, Count: 60, Value: 0.5})
	out := buf.String()
	for _, want := range []string{"ccm session 1", "round", "end: 1 rounds", "gmle/probe #1"} {
		if !strings.Contains(out, want) {
			t.Errorf("narration missing %q:\n%s", want, out)
		}
	}
}

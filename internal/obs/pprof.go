package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles starts the standard pprof pair behind the CLIs'
// -cpuprofile/-memprofile flags. Either path may be empty to skip that
// profile. The returned stop function stops the CPU profile and writes the
// heap profile; callers must invoke it exactly once before exiting (the
// CLIs defer it from their run functions so profiles survive error paths).
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("obs: create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("obs: start cpu profile: %w", err)
		}
	}
	return func() error {
		var first error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				first = err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				if first == nil {
					first = fmt.Errorf("obs: create heap profile: %w", err)
				}
				return first
			}
			runtime.GC() // up-to-date allocation data, as `go test -memprofile` does
			if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
				first = fmt.Errorf("obs: write heap profile: %w", err)
			}
			if err := f.Close(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}, nil
}

package obs

import "sync"

// DefaultRingSize is the capacity NewRing uses when given a non-positive
// size — enough to hold the tail of a large sweep (a 10k-tag CCM session
// emits a few hundred events) without holding the whole run in memory.
const DefaultRingSize = 1024

// Ring is a bounded tracer that keeps only the most recent events: a
// fixed-capacity overwrite buffer, so a long sweep can stay introspectable
// (the httpserve /events endpoint tails it) at constant memory. Safe for
// concurrent use; like every tracer it is observe-only.
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	total uint64
}

// NewRing returns a ring holding the last n events (DefaultRingSize when
// n <= 0).
func NewRing(n int) *Ring {
	if n <= 0 {
		n = DefaultRingSize
	}
	return &Ring{buf: make([]Event, n)}
}

// Trace records the event, evicting the oldest one once the ring is full.
func (r *Ring) Trace(ev Event) {
	r.mu.Lock()
	r.buf[int(r.total%uint64(len(r.buf)))] = ev
	r.total++
	r.mu.Unlock()
}

// Cap returns the ring's capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Total returns how many events the ring has ever seen (retained or
// evicted).
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dropped returns how many events have been evicted by overwrite — the
// monotonic loss counter behind netags_events_dropped_total, so event loss
// under load is observable rather than inferred from Total vs Cap.
func (r *Ring) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n := uint64(len(r.buf)); r.total > n {
		return r.total - n
	}
	return 0
}

// Events returns the retained events, oldest first. The slice is a copy.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := uint64(len(r.buf))
	if r.total <= n {
		return append([]Event(nil), r.buf[:r.total]...)
	}
	start := int(r.total % n)
	out := make([]Event, 0, n)
	out = append(out, r.buf[start:]...)
	return append(out, r.buf[:start]...)
}

// Last returns the most recent k retained events, oldest first. k larger
// than the retained count returns everything.
func (r *Ring) Last(k int) []Event {
	evs := r.Events()
	if k < 0 {
		k = 0
	}
	if k < len(evs) {
		evs = evs[len(evs)-k:]
	}
	return evs
}

package obs

import (
	"sync"
	"testing"
)

func TestRingBelowCapacity(t *testing.T) {
	r := NewRing(8)
	for i := 1; i <= 3; i++ {
		r.Trace(Event{Kind: KindRound, Round: i})
	}
	if r.Total() != 3 || r.Cap() != 8 {
		t.Fatalf("total=%d cap=%d", r.Total(), r.Cap())
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events", len(evs))
	}
	for i, ev := range evs {
		if ev.Round != i+1 {
			t.Errorf("event %d has round %d", i, ev.Round)
		}
	}
}

func TestRingEvictsOldest(t *testing.T) {
	r := NewRing(4)
	for i := 1; i <= 10; i++ {
		r.Trace(Event{Kind: KindRound, Round: i})
	}
	if r.Total() != 10 {
		t.Fatalf("total=%d", r.Total())
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if ev.Round != 7+i { // oldest-first: rounds 7..10
			t.Errorf("event %d has round %d, want %d", i, ev.Round, 7+i)
		}
	}
}

func TestRingLast(t *testing.T) {
	r := NewRing(4)
	for i := 1; i <= 6; i++ {
		r.Trace(Event{Kind: KindRound, Round: i})
	}
	last := r.Last(2)
	if len(last) != 2 || last[0].Round != 5 || last[1].Round != 6 {
		t.Fatalf("Last(2) = %+v", last)
	}
	if got := r.Last(100); len(got) != 4 {
		t.Fatalf("Last(100) returned %d events", len(got))
	}
	if got := r.Last(-1); len(got) != 0 {
		t.Fatalf("Last(-1) returned %d events", len(got))
	}
}

func TestRingDefaultSize(t *testing.T) {
	if got := NewRing(0).Cap(); got != DefaultRingSize {
		t.Fatalf("default cap %d", got)
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Trace(Event{Kind: KindRound, Reader: g, Round: i})
			}
		}(g)
	}
	wg.Wait()
	if r.Total() != 1600 {
		t.Fatalf("total=%d, want 1600", r.Total())
	}
	if len(r.Events()) != 64 {
		t.Fatalf("retained %d", len(r.Events()))
	}
}

// TestRingDropped: the monotonic drop counter is 0 until the ring wraps,
// then exactly total − cap — the /metrics companion to the capacity gauge.
func TestRingDropped(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 8; i++ {
		r.Trace(Event{Kind: KindRound, Round: i})
	}
	if d := r.Dropped(); d != 0 {
		t.Fatalf("dropped before wrap = %d, want 0", d)
	}
	for i := 0; i < 5; i++ {
		r.Trace(Event{Kind: KindRound, Round: 8 + i})
	}
	if d := r.Dropped(); d != 5 {
		t.Fatalf("dropped after wrap = %d, want 5", d)
	}
}

package timeseries

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Rule is one SLO alert rule, evaluated against the DB every sampler tick.
// Two shapes share the struct, discriminated by which fields are set:
//
// Burn-rate rule (Good+Total set): over the trailing window, compute the
// error rate 1 − ΔGood/ΔTotal from two cumulative counter series, divide by
// the rule's error budget (1 − Objective), and fire when that burn rate
// reaches Burn. Burn 1 means "consuming budget exactly as fast as the SLO
// allows"; the classic multiwindow practice pairs a short window with a
// high burn threshold (see DESIGN.md "SLO burn-rate alerting").
//
// Threshold rule (Series set): fire when the window mean of a gauge series
// crosses Value in the direction of Op (">=" or "<=").
type Rule struct {
	// Name labels the rule on /api/v1/alerts, /metrics, and log lines.
	Name string `json:"name"`

	// WindowS is the trailing evaluation window in seconds. Required.
	WindowS float64 `json:"window_s"`

	// Burn-rate fields.
	Good      string  `json:"good,omitempty"`
	Total     string  `json:"total,omitempty"`
	Objective float64 `json:"objective,omitempty"`
	Burn      float64 `json:"burn,omitempty"`
	// MinTotal is the least ΔTotal the window must hold before the rule can
	// fire — no traffic, no burn (defaults to 1).
	MinTotal float64 `json:"min_total,omitempty"`

	// Threshold fields.
	Series string  `json:"series,omitempty"`
	Op     string  `json:"op,omitempty"`
	Value  float64 `json:"value,omitempty"`
}

// IsBurn reports whether the rule is a burn-rate rule (vs threshold).
func (r Rule) IsBurn() bool { return r.Good != "" || r.Total != "" }

// Validate rejects rules that could never evaluate meaningfully. Names are
// restricted to [A-Za-z0-9_.:-] because they travel as Prometheus label
// values and through the hand-rolled /events JSON encoder unescaped.
func (r Rule) Validate() error {
	if r.Name == "" {
		return fmt.Errorf("rule has no name")
	}
	for _, c := range r.Name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '_', c == '.', c == ':', c == '-':
		default:
			return fmt.Errorf("rule %q: name may only contain [A-Za-z0-9_.:-]", r.Name)
		}
	}
	if r.WindowS <= 0 {
		return fmt.Errorf("rule %q: window_s must be > 0", r.Name)
	}
	if r.IsBurn() {
		if r.Good == "" || r.Total == "" {
			return fmt.Errorf("rule %q: burn rules need both good and total series", r.Name)
		}
		if r.Series != "" {
			return fmt.Errorf("rule %q: cannot mix burn and threshold fields", r.Name)
		}
		if r.Objective <= 0 || r.Objective >= 1 {
			return fmt.Errorf("rule %q: objective must be in (0,1), got %g", r.Name, r.Objective)
		}
		if r.Burn < 0 {
			return fmt.Errorf("rule %q: burn must be >= 0", r.Name)
		}
		return nil
	}
	if r.Series == "" {
		return fmt.Errorf("rule %q: need either good/total (burn) or series (threshold)", r.Name)
	}
	switch r.Op {
	case "", ">=", "<=":
	default:
		return fmt.Errorf("rule %q: op must be \">=\" or \"<=\", got %q", r.Name, r.Op)
	}
	return nil
}

// ParseRules decodes a JSON array of rules and validates each. Duplicate
// names are rejected — the name keys alert state and the /metrics label.
func ParseRules(data []byte) ([]Rule, error) {
	var rules []Rule
	if err := json.Unmarshal(data, &rules); err != nil {
		return nil, fmt.Errorf("parse slo rules: %w", err)
	}
	seen := make(map[string]bool, len(rules))
	for _, r := range rules {
		if err := r.Validate(); err != nil {
			return nil, err
		}
		if seen[r.Name] {
			return nil, fmt.Errorf("duplicate rule name %q", r.Name)
		}
		seen[r.Name] = true
	}
	return rules, nil
}

// AlertState is one rule's externally visible state on /api/v1/alerts.
type AlertState struct {
	Rule   string `json:"rule"`
	Firing bool   `json:"firing"`
	// Since is when the rule last transitioned into its current state
	// (RFC3339); empty until the first evaluation.
	Since string `json:"since,omitempty"`
	// Value is the last measured quantity: burn rate for burn rules, the
	// window mean for threshold rules.
	Value float64 `json:"value"`
	// WindowTotal is ΔTotal over the window (burn rules only) — how much
	// traffic backed the verdict.
	WindowTotal float64 `json:"window_total,omitempty"`
}

type alertState struct {
	firing    bool
	since     time.Time
	value     float64
	winTotal  float64
	evaluated bool
}

// Evaluator runs a rule set against a DB and keeps firing/resolved state.
// Wire it to a Sampler via OnTick(e.Evaluate) so it judges each tick's
// fresh samples; transitions invoke the optional callback (ccmserve logs
// them and mirrors them into the /events ring).
type Evaluator struct {
	db           *DB
	rules        []Rule
	onTransition func(rule Rule, firing bool, measured float64)

	mu     sync.Mutex
	states []alertState
}

// NewEvaluator returns an evaluator over db. The rules must already be
// validated (ParseRules does; hand-built rule sets should call Validate).
func NewEvaluator(db *DB, rules []Rule, onTransition func(rule Rule, firing bool, measured float64)) *Evaluator {
	return &Evaluator{
		db:           db,
		rules:        rules,
		onTransition: onTransition,
		states:       make([]alertState, len(rules)),
	}
}

// Evaluate judges every rule against the window ending at now. Transitions
// fire the callback outside no locks other than the evaluator's own.
func (e *Evaluator) Evaluate(now time.Time) {
	type transition struct {
		rule     Rule
		firing   bool
		measured float64
	}
	var fired []transition

	e.mu.Lock()
	for i, r := range e.rules {
		st := &e.states[i]
		var firing bool
		var measured, winTotal float64
		if r.IsBurn() {
			firing, measured, winTotal = e.evalBurn(r, now)
		} else {
			firing, measured = e.evalThreshold(r, now)
		}
		if !st.evaluated || firing != st.firing {
			st.since = now
			if st.evaluated || firing {
				// Report the very first evaluation only if it fires;
				// "resolved" without ever firing is noise.
				fired = append(fired, transition{rule: r, firing: firing, measured: measured})
			}
		}
		st.evaluated = true
		st.firing = firing
		st.value = measured
		st.winTotal = winTotal
	}
	e.mu.Unlock()

	for _, t := range fired {
		if e.onTransition != nil {
			e.onTransition(t.rule, t.firing, t.measured)
		}
	}
}

// counterDelta returns the increase of a cumulative series over the window
// (now-window, now]: latest value minus the value at the window start. The
// start value is the newest sample at or before the window boundary; a
// series younger than the window anchors at its oldest sample. Counter
// resets (decreases) clamp to 0.
func counterDelta(samples []Sample, now time.Time, window time.Duration) (delta float64, ok bool) {
	if len(samples) == 0 {
		return 0, false
	}
	cutoff := now.Add(-window).UnixMilli()
	last := samples[len(samples)-1]
	if last.T < cutoff {
		// Series went quiet before the window opened: no activity.
		return 0, true
	}
	start := samples[0]
	for i := len(samples) - 1; i >= 0; i-- {
		if samples[i].T <= cutoff {
			start = samples[i]
			break
		}
	}
	d := last.V - start.V
	if d < 0 {
		d = 0
	}
	return d, true
}

func (e *Evaluator) evalBurn(r Rule, now time.Time) (firing bool, burn, winTotal float64) {
	window := time.Duration(r.WindowS * float64(time.Second))
	goodS, okG := e.db.Samples(r.Good)
	totalS, okT := e.db.Samples(r.Total)
	if !okG || !okT {
		return false, 0, 0
	}
	dGood, okG := counterDelta(goodS, now, window)
	dTotal, okT := counterDelta(totalS, now, window)
	if !okG || !okT {
		return false, 0, 0
	}
	minTotal := r.MinTotal
	if minTotal <= 0 {
		minTotal = 1
	}
	if dTotal < minTotal {
		return false, 0, dTotal
	}
	if dGood > dTotal {
		dGood = dTotal
	}
	errRate := 1 - dGood/dTotal
	budget := 1 - r.Objective
	burn = errRate / budget
	thresh := r.Burn
	if thresh <= 0 {
		thresh = 1
	}
	return burn >= thresh, burn, dTotal
}

func (e *Evaluator) evalThreshold(r Rule, now time.Time) (firing bool, mean float64) {
	samples, ok := e.db.Samples(r.Series)
	if !ok {
		return false, 0
	}
	cutoff := now.Add(-time.Duration(r.WindowS * float64(time.Second))).UnixMilli()
	var sum float64
	var n int
	for i := len(samples) - 1; i >= 0; i-- {
		if samples[i].T <= cutoff {
			break
		}
		sum += samples[i].V
		n++
	}
	if n == 0 {
		return false, 0
	}
	mean = sum / float64(n)
	if r.Op == "<=" {
		return mean <= r.Value, mean
	}
	return mean >= r.Value, mean
}

// States returns a snapshot of every rule's current state, sorted by rule
// name for stable output.
func (e *Evaluator) States() []AlertState {
	e.mu.Lock()
	out := make([]AlertState, len(e.rules))
	for i, r := range e.rules {
		st := e.states[i]
		out[i] = AlertState{
			Rule:        r.Name,
			Firing:      st.firing,
			Value:       st.value,
			WindowTotal: st.winTotal,
		}
		if !st.since.IsZero() {
			out[i].Since = st.since.UTC().Format(time.RFC3339)
		}
	}
	e.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Rule < out[j].Rule })
	return out
}

// FiringCount returns how many rules are currently firing.
func (e *Evaluator) FiringCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, st := range e.states {
		if st.firing {
			n++
		}
	}
	return n
}

// WriteProm writes the alert gauge family in Prometheus text exposition:
// netags_alert_active{rule="..."} is 1 while firing, 0 otherwise.
func (e *Evaluator) WriteProm(w io.Writer) {
	fmt.Fprintf(w, "# HELP netags_alert_active Whether the SLO alert rule is currently firing.\n")
	fmt.Fprintf(w, "# TYPE netags_alert_active gauge\n")
	for _, st := range e.States() {
		v := 0
		if st.Firing {
			v = 1
		}
		fmt.Fprintf(w, "netags_alert_active{rule=%q} %d\n", st.Rule, v)
	}
}

package timeseries

import (
	"strings"
	"testing"
	"time"
)

func burnRule() Rule {
	return Rule{
		Name: "e2e_burn", WindowS: 10,
		Good: "good", Total: "total",
		Objective: 0.9, Burn: 2, MinTotal: 5,
	}
}

// feedCounters records cumulative good/total readings once per second.
// ok=false seconds add failures (total rises, good doesn't).
func feedCounters(db *DB, startMS int64, seconds int, perSec float64, okRatio float64) int64 {
	var good, total float64
	t := startMS
	for i := 0; i < seconds; i++ {
		total += perSec
		good += perSec * okRatio
		db.Record("total", ms(t), total)
		db.Record("good", ms(t), good)
		t += 1000
	}
	return t
}

func TestBurnRuleFiresAndResolves(t *testing.T) {
	db := New(time.Second, time.Minute)
	var transitions []string
	ev := NewEvaluator(db, []Rule{burnRule()}, func(r Rule, firing bool, v float64) {
		state := "resolved"
		if firing {
			state = "firing"
		}
		transitions = append(transitions, r.Name+":"+state)
	})

	// Healthy traffic: 10/s, all good. Burn = 0.
	now := feedCounters(db, 0, 15, 10, 1.0)
	ev.Evaluate(ms(now))
	if got := ev.States(); got[0].Firing {
		t.Fatalf("healthy traffic fired: %+v", got)
	}
	if ev.FiringCount() != 0 {
		t.Fatalf("FiringCount = %d, want 0", ev.FiringCount())
	}

	// Overload: half the requests go bad. Error rate 0.5 / budget 0.1 =
	// burn 5 >= threshold 2 -> firing.
	now = feedCounters(db, now, 12, 10, 0.5)
	ev.Evaluate(ms(now))
	st := ev.States()[0]
	if !st.Firing {
		t.Fatalf("overload did not fire: %+v", st)
	}
	if st.Value < 4 || st.Value > 6 {
		t.Errorf("burn rate = %g, want ~5", st.Value)
	}
	if st.WindowTotal <= 0 {
		t.Errorf("window total = %g, want > 0", st.WindowTotal)
	}

	// Load drops entirely: counters go flat. Once the bad deltas age out of
	// the window the rule resolves (no traffic, no burn).
	flatEnd := now + 15_000
	var lastTotal, lastGood float64
	if s, _ := db.Samples("total"); len(s) > 0 {
		lastTotal = s[len(s)-1].V
	}
	if s, _ := db.Samples("good"); len(s) > 0 {
		lastGood = s[len(s)-1].V
	}
	for tt := now; tt < flatEnd; tt += 1000 {
		db.Record("total", ms(tt), lastTotal)
		db.Record("good", ms(tt), lastGood)
	}
	ev.Evaluate(ms(flatEnd))
	if st := ev.States()[0]; st.Firing {
		t.Fatalf("rule did not resolve after load dropped: %+v", st)
	}

	want := []string{"e2e_burn:firing", "e2e_burn:resolved"}
	if len(transitions) != 2 || transitions[0] != want[0] || transitions[1] != want[1] {
		t.Errorf("transitions = %v, want %v", transitions, want)
	}
}

func TestBurnRuleMinTotalSuppressesIdle(t *testing.T) {
	db := New(time.Second, time.Minute)
	ev := NewEvaluator(db, []Rule{burnRule()}, nil)
	// 2 requests in the window, both bad — below MinTotal 5, so no verdict.
	db.Record("total", ms(0), 0)
	db.Record("good", ms(0), 0)
	db.Record("total", ms(5000), 2)
	db.Record("good", ms(5000), 0)
	ev.Evaluate(ms(6000))
	if st := ev.States()[0]; st.Firing {
		t.Fatalf("fired below min_total: %+v", st)
	}
}

func TestThresholdRule(t *testing.T) {
	db := New(time.Second, time.Minute)
	rule := Rule{Name: "queue_sat", WindowS: 5, Series: "fill", Op: ">=", Value: 0.9}
	ev := NewEvaluator(db, []Rule{rule}, nil)

	for i := int64(0); i < 10; i++ {
		db.Record("fill", ms(i*1000), 0.2)
	}
	ev.Evaluate(ms(9000))
	if ev.States()[0].Firing {
		t.Fatal("fired at fill 0.2")
	}
	for i := int64(10); i < 16; i++ {
		db.Record("fill", ms(i*1000), 0.95)
	}
	ev.Evaluate(ms(15000))
	st := ev.States()[0]
	if !st.Firing || st.Value < 0.9 {
		t.Fatalf("saturated queue did not fire: %+v", st)
	}
}

func TestEvaluatorWriteProm(t *testing.T) {
	db := New(time.Second, time.Minute)
	rules := []Rule{
		{Name: "hot", WindowS: 5, Series: "g", Op: ">=", Value: 1},
		{Name: "cold", WindowS: 5, Series: "g", Op: "<=", Value: -1},
	}
	ev := NewEvaluator(db, rules, nil)
	db.Record("g", ms(1000), 5)
	ev.Evaluate(ms(1000))
	var sb strings.Builder
	ev.WriteProm(&sb)
	out := sb.String()
	if !strings.Contains(out, `netags_alert_active{rule="hot"} 1`) {
		t.Errorf("missing firing gauge:\n%s", out)
	}
	if !strings.Contains(out, `netags_alert_active{rule="cold"} 0`) {
		t.Errorf("missing resolved gauge:\n%s", out)
	}
}

func TestParseRules(t *testing.T) {
	good := `[
	  {"name":"burn","window_s":60,"good":"g","total":"t","objective":0.99,"burn":6},
	  {"name":"sat","window_s":30,"series":"fill","op":">=","value":0.9}
	]`
	rules, err := ParseRules([]byte(good))
	if err != nil || len(rules) != 2 {
		t.Fatalf("ParseRules: %v (%d rules)", err, len(rules))
	}
	if !rules[0].IsBurn() || rules[1].IsBurn() {
		t.Errorf("rule shapes misdetected: %+v", rules)
	}

	bad := []string{
		`[{"name":"","window_s":1,"series":"x"}]`,                                         // no name
		`[{"name":"r","series":"x"}]`,                                                     // no window
		`[{"name":"r","window_s":1}]`,                                                     // neither shape
		`[{"name":"r","window_s":1,"good":"g"}]`,                                          // burn without total
		`[{"name":"r","window_s":1,"good":"g","total":"t","objective":2}]`,                // bad objective
		`[{"name":"r","window_s":1,"series":"x","op":"!="}]`,                              // bad op
		`[{"name":"r","window_s":1,"series":"x"},{"name":"r","window_s":1,"series":"y"}]`, // dup
		`{not json`,
	}
	for _, in := range bad {
		if _, err := ParseRules([]byte(in)); err == nil {
			t.Errorf("ParseRules accepted %s", in)
		}
	}
}

func TestCollectorSourceNil(t *testing.T) {
	if CollectorSource(nil) != nil {
		t.Error("CollectorSource(nil) should be nil so NewSampler drops it")
	}
}

package timeseries

import (
	"testing"
	"time"
)

// BenchmarkTimeseriesRecord is the per-sample write path once the series
// ring exists: an RLock, a map hit, and one slot store. This is what every
// source invocation pays per series per tick.
func BenchmarkTimeseriesRecord(b *testing.B) {
	db := New(time.Second, time.Minute)
	now := time.Now()
	db.Record("bench", now, 0) // create the series outside the loop
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Record("bench", now, float64(i))
	}
}

// BenchmarkTimeseriesSample is one full sampler tick over a representative
// source set — the steady-state background cost the daemon pays once per
// resolution interval. Sources here mirror the serve deployment's scale:
// ~30 gauges/counters per pass.
func BenchmarkTimeseriesSample(b *testing.B) {
	db := New(time.Second, time.Minute)
	names := make([]string, 30)
	for i := range names {
		names[i] = "series_" + string(rune('a'+i%26)) + string(rune('0'+i/26))
	}
	src := func(rec func(name string, v float64)) {
		for _, n := range names {
			rec(n, 1)
		}
	}
	s := NewSampler(db, src)
	now := time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SampleOnce(now.Add(time.Duration(i) * time.Second))
	}
}

// BenchmarkTimeseriesQuery reads a full ring back out with 5s downsampling
// — the dashboard's per-refresh cost for one series.
func BenchmarkTimeseriesQuery(b *testing.B) {
	db := New(time.Second, 15*time.Minute)
	base := time.Now().Add(-time.Hour)
	for i := 0; i < 1024; i++ {
		db.Record("bench", base.Add(time.Duration(i)*time.Second), float64(i))
	}
	since := base.Add(512 * time.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := db.Query("bench", since, 5*time.Second); !ok {
			b.Fatal("series missing")
		}
	}
}

package timeseries

import "netags/internal/obs"

// CollectorSource returns a Source snapshotting an obs.Collector's
// simulation counters as cumulative series:
//
//	sim_sessions_total            completed protocol sessions
//	sim_rounds_total              rounds executed across sessions
//	sim_truncated_sessions_total  sessions that ended truncated
//	sim_slots_total               total air time in slots (short + long)
//	sim_busy_slots_total          busy slots collected
//	sim_waves_mean                mean per-round information-wave size
//
// The collector is read through its mutex-guarded Snapshot, so the source
// never races with live tracing and never perturbs it beyond a lock.
func CollectorSource(c *obs.Collector) Source {
	if c == nil {
		return nil
	}
	return func(rec func(name string, v float64)) {
		m := c.Snapshot()
		rec("sim_sessions_total", float64(m.Sessions))
		rec("sim_rounds_total", float64(m.Rounds))
		rec("sim_truncated_sessions_total", float64(m.TruncatedSessions))
		rec("sim_slots_total", float64(m.TotalSlots()))
		rec("sim_busy_slots_total", float64(m.BusySlots))
		rec("sim_waves_mean", m.Waves.Mean())
	}
}

package timeseries

import (
	"math"
	"runtime/metrics"
)

// The runtime/metrics names sampled by RuntimeSource, and the series each
// one feeds. Pause and latency distributions are cumulative histograms in
// the runtime; the source keeps the previous tick's counts and reports
// quantiles of the per-tick delta, so the series reflect what happened
// since the last sample rather than since process start.
const (
	rmHeapLive   = "/gc/heap/live:bytes"
	rmGoroutines = "/sched/goroutines:goroutines"
	rmGCCycles   = "/gc/cycles/total:gc-cycles"
	rmGCPauses   = "/sched/pauses/total/gc:seconds"
	rmSchedLat   = "/sched/latencies:seconds"
)

// RuntimeSource returns a Source sampling Go runtime health:
//
//	runtime_heap_live_bytes      bytes of live heap after the last GC mark
//	runtime_goroutines           current goroutine count
//	runtime_gc_cycles_total      completed GC cycles (counter)
//	runtime_gc_pause_p50_ms      GC stop-the-world pause quantiles over the
//	runtime_gc_pause_p99_ms      last tick (gap when no pauses occurred)
//	runtime_sched_latency_p50_ms goroutine scheduling latency quantiles over
//	runtime_sched_latency_p99_ms the last tick (gap when idle)
//
// Metrics missing from the running toolchain are skipped, not errors.
func RuntimeSource() Source {
	wanted := []string{rmHeapLive, rmGoroutines, rmGCCycles, rmGCPauses, rmSchedLat}
	samples := make([]metrics.Sample, len(wanted))
	for i, name := range wanted {
		samples[i].Name = name
	}
	// One probe read to drop unsupported names so steady-state ticks never
	// touch KindBad branches.
	metrics.Read(samples)
	live := samples[:0]
	for _, s := range samples {
		if s.Value.Kind() != metrics.KindBad {
			live = append(live, s)
		}
	}
	samples = live
	prev := make(map[string][]uint64, 2)

	return func(rec func(name string, v float64)) {
		metrics.Read(samples)
		for i := range samples {
			s := &samples[i]
			switch s.Name {
			case rmHeapLive:
				rec("runtime_heap_live_bytes", float64(s.Value.Uint64()))
			case rmGoroutines:
				rec("runtime_goroutines", float64(s.Value.Uint64()))
			case rmGCCycles:
				rec("runtime_gc_cycles_total", float64(s.Value.Uint64()))
			case rmGCPauses:
				h := s.Value.Float64Histogram()
				emitDeltaQuantiles(rec, h, prev, s.Name,
					"runtime_gc_pause_p50_ms", "runtime_gc_pause_p99_ms")
			case rmSchedLat:
				h := s.Value.Float64Histogram()
				emitDeltaQuantiles(rec, h, prev, s.Name,
					"runtime_sched_latency_p50_ms", "runtime_sched_latency_p99_ms")
			}
		}
	}
}

// emitDeltaQuantiles records p50/p99 (in ms) of the histogram counts added
// since the previous tick, updating the stored counts. No new observations
// ⇒ no samples recorded (the series keeps a gap instead of repeating a
// stale quantile).
func emitDeltaQuantiles(rec func(string, float64), h *metrics.Float64Histogram,
	prev map[string][]uint64, key, p50Name, p99Name string) {
	last := prev[key]
	delta := make([]uint64, len(h.Counts))
	var total uint64
	for i, c := range h.Counts {
		d := c
		if i < len(last) && last[i] <= c {
			d = c - last[i]
		}
		delta[i] = d
		total += d
	}
	// Retain the cumulative counts for next tick (reuse last's backing
	// array when the bucket layout is stable, which it is in practice).
	if len(last) == len(h.Counts) {
		copy(last, h.Counts)
	} else {
		prev[key] = append([]uint64(nil), h.Counts...)
	}
	if total == 0 {
		return
	}
	rec(p50Name, histQuantile(h, delta, total, 0.50)*1000)
	rec(p99Name, histQuantile(h, delta, total, 0.99)*1000)
}

// histQuantile returns the q-quantile (0..1) of the delta counts, in the
// histogram's native unit (seconds), using each bucket's upper bound — a
// conservative (pessimistic) estimate, which is what an alert wants.
func histQuantile(h *metrics.Float64Histogram, delta []uint64, total uint64, q float64) float64 {
	target := uint64(q * float64(total))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, d := range delta {
		cum += d
		if cum >= target {
			// Buckets[i+1] is bucket i's upper bound; the last bucket's
			// bound can be +Inf, in which case fall back to its lower bound.
			up := h.Buckets[i+1]
			if math.IsInf(up, 1) || math.IsNaN(up) {
				up = h.Buckets[i]
			}
			return up
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}

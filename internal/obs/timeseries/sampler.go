package timeseries

import (
	"sync"
	"time"
)

// Source feeds one subsystem's current values into the DB on each sampler
// tick. Implementations call rec once per series with the gauge value or
// cumulative counter reading; skipping a call leaves a gap in that series
// (gaps are preserved by downsampling, not interpolated). Sources must be
// cheap — they run on every tick — and must never mutate the subsystem
// they observe.
type Source func(rec func(name string, v float64))

// Sampler drives a set of Sources on a fixed interval (the DB resolution),
// recording every reading with a shared per-tick timestamp so windows line
// up across series, then runs the optional tick hook (the alert evaluator).
type Sampler struct {
	db      *DB
	sources []Source
	onTick  func(now time.Time)

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewSampler returns a sampler over db. Nil sources are dropped.
func NewSampler(db *DB, sources ...Source) *Sampler {
	live := make([]Source, 0, len(sources))
	for _, s := range sources {
		if s != nil {
			live = append(live, s)
		}
	}
	return &Sampler{
		db:      db,
		sources: live,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
}

// OnTick installs a hook that runs after every sampling pass with the tick
// timestamp — the alert evaluator hangs off this so rules always see the
// samples of the tick they are judging. Must be called before Start.
func (s *Sampler) OnTick(fn func(now time.Time)) { s.onTick = fn }

// SampleOnce runs every source, stamping all readings with now, then the
// tick hook. Exported so tests and benchmarks can drive the sampler
// deterministically without the goroutine.
func (s *Sampler) SampleOnce(now time.Time) {
	rec := func(name string, v float64) { s.db.Record(name, now, v) }
	for _, src := range s.sources {
		src(rec)
	}
	if s.onTick != nil {
		s.onTick(now)
	}
}

// Start launches the background sampling goroutine: one immediate pass,
// then one per DB resolution until Stop.
func (s *Sampler) Start() {
	go func() {
		defer close(s.done)
		s.SampleOnce(time.Now())
		tick := time.NewTicker(s.db.Resolution())
		defer tick.Stop()
		for {
			select {
			case t := <-tick.C:
				s.SampleOnce(t)
			case <-s.stop:
				return
			}
		}
	}()
}

// Stop halts the background goroutine and waits for it to exit. Safe to
// call more than once; Stop without Start blocks until Start's goroutine
// would have been the only waiter, so only call it after Start.
func (s *Sampler) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
}

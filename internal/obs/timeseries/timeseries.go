// Package timeseries is a dependency-free, fixed-memory time-series
// engine: named per-series ring buffers of (timestamp, value) samples with
// configurable resolution and retention, plus step-aligned downsampling for
// queries. It exists so a single ccmserve binary can answer "how did we get
// here" — queue build-ups, GC pauses, cache-hit collapse — without an
// external TSDB scraping it (see DESIGN.md "Time-series telemetry").
//
// Memory is bounded by construction: every series owns one preallocated
// ring of retention/resolution slots, and recording into a warm series
// performs zero allocations. Writers and readers never block each other for
// longer than a ring copy.
package timeseries

import (
	"math"
	"sort"
	"sync"
	"time"
)

// Defaults used by New when given non-positive values.
const (
	DefaultResolution = time.Second
	DefaultRetention  = 15 * time.Minute
)

// Ring capacity bounds: a floor so tiny retention/resolution ratios still
// hold a useful window, a ceiling so a misconfigured flag cannot ask for
// gigabytes.
const (
	minSeriesCap = 16
	maxSeriesCap = 1 << 16
)

// Sample is one recorded observation. T is unix milliseconds — small enough
// to keep the ring compact, fine enough for sub-second resolutions.
type Sample struct {
	T int64   `json:"t"`
	V float64 `json:"v"`
}

// Point is one downsampled window: T is the step-aligned window start (unix
// ms), V the mean of the window's samples, N how many samples it folds.
type Point struct {
	T int64   `json:"t"`
	V float64 `json:"v"`
	N int     `json:"n"`
}

// series is one fixed-capacity overwrite ring, oldest evicted first.
type series struct {
	mu    sync.Mutex
	buf   []Sample
	total uint64
}

func (s *series) append(sm Sample) {
	s.mu.Lock()
	s.buf[int(s.total%uint64(len(s.buf)))] = sm
	s.total++
	s.mu.Unlock()
}

// snapshot returns the retained samples oldest-first. The slice is a copy.
func (s *series) snapshot() []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := uint64(len(s.buf))
	if s.total <= n {
		return append([]Sample(nil), s.buf[:s.total]...)
	}
	start := int(s.total % n)
	out := make([]Sample, 0, n)
	out = append(out, s.buf[start:]...)
	return append(out, s.buf[:start]...)
}

func (s *series) latest() (Sample, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.total == 0 {
		return Sample{}, false
	}
	return s.buf[int((s.total-1)%uint64(len(s.buf)))], true
}

func (s *series) dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := uint64(len(s.buf)); s.total > n {
		return s.total - n
	}
	return 0
}

// DB holds every series. Series are created on first Record and never
// removed; the sampler records a fixed catalog of names, so the map reaches
// steady state after the first tick.
type DB struct {
	resolution time.Duration
	retention  time.Duration
	capPer     int

	mu     sync.RWMutex
	series map[string]*series
}

// New returns a DB whose rings each hold retention/resolution samples
// (clamped to [16, 65536]). Non-positive arguments take the defaults.
func New(resolution, retention time.Duration) *DB {
	if resolution <= 0 {
		resolution = DefaultResolution
	}
	if retention <= 0 {
		retention = DefaultRetention
	}
	capPer := int(retention / resolution)
	if capPer < minSeriesCap {
		capPer = minSeriesCap
	}
	if capPer > maxSeriesCap {
		capPer = maxSeriesCap
	}
	return &DB{
		resolution: resolution,
		retention:  retention,
		capPer:     capPer,
		series:     make(map[string]*series),
	}
}

// Resolution returns the sampling interval the DB was sized for.
func (db *DB) Resolution() time.Duration { return db.resolution }

// Retention returns the nominal history window.
func (db *DB) Retention() time.Duration { return db.retention }

// SeriesCap returns the per-series ring capacity.
func (db *DB) SeriesCap() int { return db.capPer }

// Record appends one sample to the named series, creating it on first use.
// Recording into an existing series allocates nothing.
func (db *DB) Record(name string, t time.Time, v float64) {
	db.mu.RLock()
	s := db.series[name]
	db.mu.RUnlock()
	if s == nil {
		db.mu.Lock()
		s = db.series[name]
		if s == nil {
			s = &series{buf: make([]Sample, db.capPer)}
			db.series[name] = s
		}
		db.mu.Unlock()
	}
	s.append(Sample{T: t.UnixMilli(), V: v})
}

// Names returns every series name, sorted.
func (db *DB) Names() []string {
	db.mu.RLock()
	names := make([]string, 0, len(db.series))
	for n := range db.series {
		names = append(names, n)
	}
	db.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Samples returns a copy of the named series' retained samples, oldest
// first, and whether the series exists.
func (db *DB) Samples(name string) ([]Sample, bool) {
	db.mu.RLock()
	s := db.series[name]
	db.mu.RUnlock()
	if s == nil {
		return nil, false
	}
	return s.snapshot(), true
}

// Latest returns the most recent sample of the named series.
func (db *DB) Latest(name string) (Sample, bool) {
	db.mu.RLock()
	s := db.series[name]
	db.mu.RUnlock()
	if s == nil {
		return Sample{}, false
	}
	return s.latest()
}

// Query returns the named series downsampled to step-aligned windows,
// restricted to samples at or after since (zero since means everything
// retained). A non-positive step uses the DB resolution. The second result
// reports whether the series exists.
func (db *DB) Query(name string, since time.Time, step time.Duration) ([]Point, bool) {
	samples, ok := db.Samples(name)
	if !ok {
		return nil, false
	}
	if step <= 0 {
		step = db.resolution
	}
	var sinceMS int64 = math.MinInt64
	if !since.IsZero() {
		sinceMS = since.UnixMilli()
	}
	return Downsample(samples, sinceMS, step.Milliseconds()), true
}

// Stats summarizes the DB for /metrics-style exposition.
type Stats struct {
	// Series is the number of live series.
	Series int
	// Samples is the number of samples currently retained across series.
	Samples int
	// Dropped is the monotonic count of samples evicted by ring rotation.
	Dropped uint64
}

// Stats returns current occupancy and the monotonic eviction count.
func (db *DB) Stats() Stats {
	db.mu.RLock()
	all := make([]*series, 0, len(db.series))
	for _, s := range db.series {
		all = append(all, s)
	}
	db.mu.RUnlock()
	st := Stats{Series: len(all)}
	for _, s := range all {
		s.mu.Lock()
		if n := uint64(len(s.buf)); s.total > n {
			st.Samples += len(s.buf)
			st.Dropped += s.total - n
		} else {
			st.Samples += int(s.total)
		}
		s.mu.Unlock()
	}
	return st
}

// Downsample folds samples into step-aligned windows [W, W+step) where W =
// floor(T/step)*step, dropping samples with T < since. Each output Point
// carries the window start, the mean of its samples, and the fold count;
// windows with no samples are omitted (gaps stay gaps). step is in
// milliseconds and must be positive.
//
// Samples are normally time-ordered (one sampler goroutine), but the fold
// tolerates out-of-order timestamps — a clock regression buckets the sample
// by its own timestamp into the (possibly earlier) window it belongs to,
// keeping the output sorted by window start.
func Downsample(samples []Sample, since int64, step int64) []Point {
	if step <= 0 {
		step = 1
	}
	pts := make([]Point, 0, len(samples))
	for _, sm := range samples {
		if sm.T < since {
			continue
		}
		w := alignDown(sm.T, step)
		// Fast path: the window of the running last point (in-order input).
		if n := len(pts); n > 0 && pts[n-1].T == w {
			pts[n-1].V += sm.V
			pts[n-1].N++
			continue
		}
		// Find the insertion slot; out-of-order samples are rare, so a
		// binary search over the (sorted) output is plenty.
		i := sort.Search(len(pts), func(i int) bool { return pts[i].T >= w })
		if i < len(pts) && pts[i].T == w {
			pts[i].V += sm.V
			pts[i].N++
			continue
		}
		pts = append(pts, Point{})
		copy(pts[i+1:], pts[i:])
		pts[i] = Point{T: w, V: sm.V, N: 1}
	}
	for i := range pts {
		pts[i].V /= float64(pts[i].N)
	}
	return pts
}

// alignDown floors t to a multiple of step, correctly for negative t.
func alignDown(t, step int64) int64 {
	w := t - t%step
	if t < 0 && t%step != 0 {
		w -= step
	}
	return w
}

package timeseries

import (
	"math"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"
)

func ms(t int64) time.Time { return time.UnixMilli(t) }

// TestDownsampleGolden pins the fold semantics: floor step alignment, mean
// aggregation, partial final windows, omitted empty windows, the since
// filter, empty input, and out-of-order timestamps (clock regression).
func TestDownsampleGolden(t *testing.T) {
	cases := []struct {
		name    string
		samples []Sample
		since   int64
		step    int64
		want    []Point
	}{
		{
			name: "step alignment and mean",
			samples: []Sample{
				{T: 1001, V: 2}, {T: 1500, V: 4}, // window 1000: mean 3
				{T: 2100, V: 6}, // window 2000
			},
			since: math.MinInt64, step: 1000,
			want: []Point{{T: 1000, V: 3, N: 2}, {T: 2000, V: 6, N: 1}},
		},
		{
			name: "empty windows stay gaps",
			samples: []Sample{
				{T: 0, V: 1}, {T: 5000, V: 9}, // windows 1000-4000 absent
			},
			since: math.MinInt64, step: 1000,
			want: []Point{{T: 0, V: 1, N: 1}, {T: 5000, V: 9, N: 1}},
		},
		{
			name: "partial final window included",
			samples: []Sample{
				{T: 0, V: 2}, {T: 400, V: 4}, {T: 800, V: 6},
				{T: 1000, V: 10}, // final window holds one sample so far
			},
			since: math.MinInt64, step: 1000,
			want: []Point{{T: 0, V: 4, N: 3}, {T: 1000, V: 10, N: 1}},
		},
		{
			name:    "empty series",
			samples: nil,
			since:   math.MinInt64, step: 1000,
			want: []Point{},
		},
		{
			name: "since filter drops older samples",
			samples: []Sample{
				{T: 900, V: 1}, {T: 1100, V: 3}, {T: 2100, V: 5},
			},
			since: 1000, step: 1000,
			want: []Point{{T: 1000, V: 3, N: 1}, {T: 2000, V: 5, N: 1}},
		},
		{
			name: "clock regression buckets by sample time",
			samples: []Sample{
				{T: 1100, V: 2},
				{T: 2100, V: 8},
				{T: 1200, V: 4}, // regressed: belongs to window 1000
				{T: 100, V: 6},  // regressed past the first window: new head
			},
			since: math.MinInt64, step: 1000,
			want: []Point{
				{T: 0, V: 6, N: 1},
				{T: 1000, V: 3, N: 2},
				{T: 2000, V: 8, N: 1},
			},
		},
		{
			name:    "negative timestamps floor toward -inf",
			samples: []Sample{{T: -500, V: 2}, {T: -1500, V: 4}},
			since:   math.MinInt64, step: 1000,
			want: []Point{{T: -2000, V: 4, N: 1}, {T: -1000, V: 2, N: 1}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Downsample(tc.samples, tc.since, tc.step)
			if len(got) == 0 && len(tc.want) == 0 {
				return
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("Downsample:\n got  %+v\n want %+v", got, tc.want)
			}
		})
	}
}

func TestDBRecordQueryRotation(t *testing.T) {
	db := New(time.Second, 32*time.Second) // cap 32
	if db.SeriesCap() != 32 {
		t.Fatalf("SeriesCap = %d, want 32", db.SeriesCap())
	}
	for i := int64(0); i < 100; i++ {
		db.Record("s", ms(i*1000), float64(i))
	}
	samples, ok := db.Samples("s")
	if !ok || len(samples) != 32 {
		t.Fatalf("Samples: ok=%v len=%d, want 32 retained", ok, len(samples))
	}
	if samples[0].T != 68*1000 || samples[31].T != 99*1000 {
		t.Errorf("retained window [%d,%d], want [68000,99000]", samples[0].T, samples[31].T)
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].T <= samples[i-1].T {
			t.Fatalf("snapshot out of order at %d: %v", i, samples)
		}
	}
	st := db.Stats()
	if st.Series != 1 || st.Samples != 32 || st.Dropped != 68 {
		t.Errorf("Stats = %+v, want {1 32 68}", st)
	}
	if last, ok := db.Latest("s"); !ok || last.V != 99 {
		t.Errorf("Latest = %+v ok=%v, want v=99", last, ok)
	}

	// Query with a 4s step folds 4 samples per window.
	pts, ok := db.Query("s", time.Time{}, 4*time.Second)
	if !ok || len(pts) == 0 {
		t.Fatalf("Query returned ok=%v len=%d", ok, len(pts))
	}
	if pts[len(pts)-1].T != 96*1000 || pts[len(pts)-1].N != 4 {
		t.Errorf("last point = %+v, want T=96000 N=4", pts[len(pts)-1])
	}

	if _, ok := db.Query("missing", time.Time{}, time.Second); ok {
		t.Error("Query on a missing series reported ok")
	}
}

func TestDBNames(t *testing.T) {
	db := New(0, 0)
	if db.Resolution() != DefaultResolution || db.Retention() != DefaultRetention {
		t.Fatalf("defaults not applied: %v %v", db.Resolution(), db.Retention())
	}
	db.Record("b", ms(1), 1)
	db.Record("a", ms(1), 1)
	db.Record("a", ms(2), 2)
	if got := db.Names(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("Names = %v", got)
	}
}

// TestSeriesConcurrentRotation hammers one series with a single writer and
// several readers while the ring rotates; run under -race this pins the
// locking discipline, and the sortedness/size invariants catch torn reads.
func TestSeriesConcurrentRotation(t *testing.T) {
	db := New(time.Millisecond, 64*time.Millisecond) // cap 64: rotates fast
	const writes = 20000
	const readers = 4

	var wg sync.WaitGroup
	done := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				samples, ok := db.Samples("hot")
				if !ok {
					continue
				}
				if len(samples) > db.SeriesCap() {
					t.Errorf("snapshot larger than cap: %d", len(samples))
					return
				}
				for i := 1; i < len(samples); i++ {
					if samples[i].T < samples[i-1].T {
						t.Errorf("snapshot out of order: %d before %d",
							samples[i].T, samples[i-1].T)
						return
					}
				}
				db.Query("hot", time.Time{}, 4*time.Millisecond)
				db.Stats()
				db.Names()
			}
		}()
	}

	for i := int64(0); i < writes; i++ {
		db.Record("hot", ms(i), float64(i))
	}
	close(done)
	wg.Wait()

	st := db.Stats()
	if st.Samples != 64 || st.Dropped != writes-64 {
		t.Errorf("Stats after hammer = %+v, want 64 retained, %d dropped", st, writes-64)
	}
}

func TestSamplerSampleOnce(t *testing.T) {
	db := New(time.Second, time.Minute)
	var calls int
	src := func(rec func(string, float64)) {
		calls++
		rec("x", float64(calls))
	}
	var ticks []time.Time
	s := NewSampler(db, src, nil) // nil sources are dropped
	s.OnTick(func(now time.Time) { ticks = append(ticks, now) })

	s.SampleOnce(ms(1000))
	s.SampleOnce(ms(2000))
	samples, _ := db.Samples("x")
	if len(samples) != 2 || samples[0].T != 1000 || samples[1].V != 2 {
		t.Fatalf("samples = %+v", samples)
	}
	if len(ticks) != 2 || !ticks[1].Equal(ms(2000)) {
		t.Fatalf("ticks = %v", ticks)
	}
}

func TestSamplerStartStop(t *testing.T) {
	db := New(time.Millisecond, time.Second)
	s := NewSampler(db, func(rec func(string, float64)) { rec("g", 1) })
	s.Start()
	deadline := time.After(2 * time.Second)
	for {
		if samples, ok := db.Samples("g"); ok && len(samples) >= 3 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("sampler never produced 3 samples")
		case <-time.After(5 * time.Millisecond):
		}
	}
	s.Stop()
	s.Stop() // idempotent
	n := len(mustSamples(t, db, "g"))
	time.Sleep(20 * time.Millisecond)
	if got := len(mustSamples(t, db, "g")); got != n {
		t.Errorf("sampler kept recording after Stop: %d -> %d", n, got)
	}
}

func mustSamples(t *testing.T, db *DB, name string) []Sample {
	t.Helper()
	s, ok := db.Samples(name)
	if !ok {
		t.Fatalf("series %q missing", name)
	}
	return s
}

func TestRuntimeSource(t *testing.T) {
	db := New(time.Second, time.Minute)
	s := NewSampler(db, RuntimeSource())
	runtime.GC() // /gc/heap/live and /gc/cycles are zero until a first GC
	s.SampleOnce(ms(1000))
	for _, name := range []string{"runtime_heap_live_bytes", "runtime_goroutines", "runtime_gc_cycles_total"} {
		last, ok := db.Latest(name)
		if !ok {
			t.Fatalf("runtime source recorded no %s; have %v", name, db.Names())
		}
		if last.V <= 0 {
			t.Errorf("%s = %g, want > 0", name, last.V)
		}
	}
}

package obs

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sync"
)

// JSONL writes one JSON object per event to an io.Writer. It is safe for
// concurrent use (the experiment runner shares one across its worker pool);
// events from concurrent sessions interleave whole-line, never mid-line.
// Write errors are sticky: the first one stops further output and is
// reported by Err.
type JSONL struct {
	mu  sync.Mutex
	w   io.Writer
	buf []byte
	err error
}

// NewJSONL returns a JSONL tracer over w. The caller owns w's lifecycle
// (buffering, closing); CreateJSONLFile bundles both for the common
// trace-to-file case.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{w: w}
}

// Trace encodes and writes one event.
func (t *JSONL) Trace(ev Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	t.buf = ev.AppendJSON(t.buf[:0])
	t.buf = append(t.buf, '\n')
	if _, err := t.w.Write(t.buf); err != nil {
		t.err = err
	}
}

// Err returns the first write error, if any.
func (t *JSONL) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// JSONLFile is a JSONL tracer bound to a buffered file, for the CLIs'
// -trace-out flag.
type JSONLFile struct {
	*JSONL
	f  *os.File
	bw *bufio.Writer
}

// CreateJSONLFile creates (truncating) path and returns a tracer writing
// JSONL events to it. Close flushes and reports any deferred write error.
func CreateJSONLFile(path string) (*JSONLFile, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: create trace file: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	return &JSONLFile{JSONL: NewJSONL(bw), f: f, bw: bw}, nil
}

// Close flushes and closes the trace file, surfacing the first error seen
// anywhere in the pipeline.
func (t *JSONLFile) Close() error {
	err := t.Err()
	if ferr := t.bw.Flush(); err == nil {
		err = ferr
	}
	if cerr := t.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Memory accumulates events in a slice, for tests and programmatic
// inspection. Safe for concurrent use.
type Memory struct {
	mu     sync.Mutex
	events []Event
}

// NewMemory returns an empty in-memory tracer.
func NewMemory() *Memory { return &Memory{} }

// Trace records the event.
func (t *Memory) Trace(ev Event) {
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Events returns a copy of everything recorded so far.
func (t *Memory) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// Len returns the number of recorded events.
func (t *Memory) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Kinds returns how many events of each kind were recorded.
func (t *Memory) Kinds() map[Kind]int {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[Kind]int)
	for _, ev := range t.events {
		out[ev.Kind]++
	}
	return out
}

// Narrator renders events as a human-readable convergence narrative — the
// replacement for ccmsim's old ad-hoc `-op bitmap -trace` printing, and it
// works for every operation because it consumes the shared event stream.
// Safe for concurrent use, though interleaved sessions read best with one
// narrator per stream.
type Narrator struct {
	mu       sync.Mutex
	w        io.Writer
	sessions int
}

// NewNarrator returns a narrator writing to w.
func NewNarrator(w io.Writer) *Narrator { return &Narrator{w: w} }

// Trace renders one event. Frame/indicator/check detail events are folded
// into the round row; phase and slot-batch events get one line each.
func (t *Narrator) Trace(ev Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch ev.Kind {
	case KindSessionStart:
		t.sessions++
		fmt.Fprintf(t.w, "-- %s session %d (reader %d): f=%d, %d tags, %d tiers, seed %d\n",
			ev.Protocol, t.sessions, ev.Reader, ev.FrameSize, ev.Tags, ev.Tiers, ev.Seed)
		if ev.Protocol == ProtoCCM {
			fmt.Fprintf(t.w, "%6s  %12s  %10s  %9s  %10s  %11s\n",
				"round", "transmitters", "bits sent", "new busy", "known busy", "check slots")
		}
	case KindRound:
		fmt.Fprintf(t.w, "%6d  %12d  %10d  %9d  %10d  %11d\n",
			ev.Round, ev.Transmitters, ev.Bits, ev.NewBusy, ev.KnownBusy, ev.CheckSlots)
	case KindSessionEnd:
		fmt.Fprintf(t.w, "   end: %d rounds, %d busy slots, %d slots air time (%d short + %d long), truncated=%v\n",
			ev.Rounds, ev.KnownBusy, ev.ShortSlots+ev.LongSlots, ev.ShortSlots, ev.LongSlots, ev.Truncated)
	case KindReaderMerge:
		fmt.Fprintf(t.w, "   merge: reader %d contributed %d busy slots (combined %d, %d rounds)\n",
			ev.Reader, ev.Count, ev.KnownBusy, ev.Rounds)
	case KindPhase:
		fmt.Fprintf(t.w, "   %s/%s #%d: count=%d value=%g\n",
			ev.Protocol, ev.Phase, ev.Round, ev.Count, ev.Value)
	case KindSlotBatch:
		fmt.Fprintf(t.w, "   %s/%s #%d: %d transmitters, %d slots, count=%d\n",
			ev.Protocol, ev.Phase, ev.Round, ev.Transmitters, ev.Slots, ev.Count)
	}
}

package prng

import "testing"

// refHashID and refDeriveSeed are deliberate verbatim re-statements of the
// splitmix64 mixing that HashID/DeriveSeed promise. Every stored trace,
// checked-in golden file, and cross-run comparison in this repository keys
// off these exact streams, so the contract is the bit pattern itself — any
// "refactor" that changes an output is a breaking change, and this
// differential target makes the fuzzer notice immediately.
func refHashID(id, seed uint64) uint64 {
	x := id ^ (seed * 0x9e3779b97f4a7c15)
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func refDeriveSeed(base uint64, coords ...uint64) uint64 {
	x := base ^ 0x6a09e667f3bcc909
	for _, c := range coords {
		x = refHashID(c, x)
	}
	return x
}

// FuzzDeriveSeed pins the deterministic-stream contract: seed derivation and
// hashing match the reference bit-for-bit, slot selection stays in range,
// participation honors its edge probabilities, and a Source replays exactly.
func FuzzDeriveSeed(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(0), uint64(0), uint64(1))
	f.Add(uint64(42), uint64(7), uint64(1<<63), uint64(0xdeadbeef), uint64(3228))
	f.Add(^uint64(0), ^uint64(0), uint64(1), uint64(0x9e3779b97f4a7c15), uint64(96))
	f.Fuzz(func(t *testing.T, base, a, b, id, frameBits uint64) {
		if got, want := DeriveSeed(base), refDeriveSeed(base); got != want {
			t.Fatalf("DeriveSeed(%#x) = %#x, reference %#x", base, got, want)
		}
		if got, want := DeriveSeed(base, a, b), refDeriveSeed(base, a, b); got != want {
			t.Fatalf("DeriveSeed(%#x, %#x, %#x) = %#x, reference %#x", base, a, b, got, want)
		}
		if got, want := HashID(id, base), refHashID(id, base); got != want {
			t.Fatalf("HashID(%#x, %#x) = %#x, reference %#x", id, base, got, want)
		}
		// Deriving in two steps equals deriving in one: the fold has no
		// hidden per-call state.
		if DeriveSeed(base, a, b) != refHashID(b, refHashID(a, base^0x6a09e667f3bcc909)) {
			t.Fatalf("DeriveSeed fold is not a plain left fold over HashID")
		}

		frameSize := 1 + int(frameBits%(1<<20))
		slot := SlotOf(id, base, frameSize)
		if slot < 0 || slot >= frameSize {
			t.Fatalf("SlotOf(%#x, %#x, %d) = %d out of range", id, base, frameSize, slot)
		}
		if slot != SlotOf(id, base, frameSize) {
			t.Fatal("SlotOf not deterministic")
		}

		if Participates(id, base, 0) {
			t.Fatal("Participates(p=0) = true")
		}
		if !Participates(id, base, 1) {
			t.Fatal("Participates(p=1) = false")
		}
		p := float64(a>>11) / (1 << 53)
		if Participates(id, base, p) != Participates(id, base, p) {
			t.Fatal("Participates not deterministic")
		}

		s1, s2 := New(base), New(base)
		for i := 0; i < 8; i++ {
			if s1.Uint64() != s2.Uint64() {
				t.Fatalf("Source replay diverged at draw %d", i)
			}
		}
		if v := s1.Intn(frameSize); v < 0 || v >= frameSize {
			t.Fatalf("Intn(%d) = %d out of range", frameSize, v)
		}
		if fl := s1.Float64(); fl < 0 || fl >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", fl)
		}
	})
}

// Package prng provides the deterministic pseudo-random primitives shared by
// every protocol in this repository.
//
// Two distinct needs are served:
//
//   - Source: a seedable, stream-style generator (splitmix64) used for
//     deployment sampling, trial seeds, and backoff draws. It is deliberately
//     not math/rand so that results are reproducible across Go releases.
//   - Hash-based slot selection: the paper's protocols require that a tag's
//     slot choice be a pure function of (tag ID, request seed) so the reader
//     can recompute it — TRP predicts which slots must be busy, and Theorem 1
//     relies on tags making identical choices in networked and traditional
//     systems. HashID / SlotOf implement that function.
package prng

import "math/bits"

// Source is a splitmix64 pseudo-random generator. The zero value is a valid
// generator seeded with 0; use New to seed explicitly.
//
// splitmix64 passes BigCrush, needs only 64 bits of state, and — unlike
// math/rand's generator — is trivially portable, so simulation results are
// bit-for-bit reproducible.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Uint64 returns the next value in the stream.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0, mirroring
// math/rand, because a non-positive bound is always a programming error.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn bound must be positive")
	}
	// Lemire's multiply-shift rejection method: unbiased and divisionless in
	// the common case.
	bound := uint64(n)
	threshold := -bound % bound // (2^64 - bound) % bound
	for {
		hi, lo := bits.Mul64(s.Uint64(), bound)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Split returns a new Source whose stream is independent of s for all
// practical purposes. It is used to give each tag or trial its own stream
// without correlating draws.
func (s *Source) Split() *Source {
	return New(s.Uint64() ^ 0x5851f42d4c957f2d)
}

// DeriveSeed derives the seed of an independent stream from a base seed and
// the position coordinates of a work item — typically (sweep point, trial
// index, stream index). Unlike drawing seeds from one shared Source in loop
// order, the result depends only on (base, coords): reordering, skipping, or
// parallelizing the enclosing loops cannot reshuffle which seed a given
// trial receives. The experiment harness keys every deployment and protocol
// run this way so parallel sweeps stay bit-identical to sequential ones.
func DeriveSeed(base uint64, coords ...uint64) uint64 {
	x := base ^ 0x6a09e667f3bcc909 // golden-ratio offset keeps base 0 usable
	for _, c := range coords {
		x = HashID(c, x)
	}
	return x
}

// HashID mixes a 96-bit tag ID (truncated here to 64 bits of identifier
// space, which is far beyond any simulated population) with a request seed.
// The result is a uniform 64-bit value that both the tag and the reader can
// compute independently.
func HashID(id uint64, seed uint64) uint64 {
	x := id ^ (seed * 0x9e3779b97f4a7c15)
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SlotOf returns the frame slot a tag with the given ID picks for the request
// identified by seed, in [0, frameSize). Both tags and the reader call this,
// which is what lets TRP predict busy slots.
func SlotOf(id uint64, seed uint64, frameSize int) int {
	if frameSize <= 0 {
		panic("prng: frame size must be positive")
	}
	// Multiply-shift map of the hash onto [0, frameSize): unbiased enough for
	// frame sizes that fit in 32 bits (the bias is < 2^-32).
	hi, _ := bits.Mul64(HashID(id, seed), uint64(frameSize))
	return int(hi)
}

// Participates reports whether the tag with the given ID participates in a
// sampled frame with probability p for the request identified by seed. The
// decision is independent of the slot choice (a different mix constant).
func Participates(id uint64, seed uint64, p float64) bool {
	if p >= 1 {
		return true
	}
	if p <= 0 {
		return false
	}
	h := HashID(id, seed^0xa0761d6478bd642f)
	return float64(h>>11)/(1<<53) < p
}

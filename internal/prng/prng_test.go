package prng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSourceDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: %d != %d", i, got, want)
		}
	}
}

// TestSourceStreamPinned pins the first few outputs against the canonical
// splitmix64 reference (Vigna, 2015, seed 0) so that any change to the
// generator (which would silently change every simulation result in the
// repository) fails loudly.
func TestSourceStreamPinned(t *testing.T) {
	s := New(0)
	got := []uint64{s.Uint64(), s.Uint64(), s.Uint64()}
	want := []uint64{0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("draw %d = %#x, want %#x", i, got[i], want[i])
		}
	}
}

func TestZeroValueSourceUsable(t *testing.T) {
	var s Source
	if s.Uint64() == s.Uint64() {
		t.Fatal("zero-value Source does not advance")
	}
}

func TestIntnRange(t *testing.T) {
	s := New(7)
	for _, n := range []int{1, 2, 3, 10, 97, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	const n, draws = 10, 100000
	s := New(99)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: %d draws, want ~%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(5)
	child := parent.Split()
	// The child stream must not replay the parent stream.
	a, b := parent.Uint64(), child.Uint64()
	if a == b {
		t.Fatal("split stream replays parent stream")
	}
}

func TestHashIDDeterministic(t *testing.T) {
	if HashID(17, 4) != HashID(17, 4) {
		t.Fatal("HashID not deterministic")
	}
	if HashID(17, 4) == HashID(18, 4) {
		t.Fatal("HashID collision on adjacent IDs (suspicious)")
	}
	if HashID(17, 4) == HashID(17, 5) {
		t.Fatal("HashID ignores seed")
	}
}

func TestSlotOfRangeProperty(t *testing.T) {
	f := func(id, seed uint64) bool {
		s := SlotOf(id, seed, 1671)
		return s >= 0 && s < 1671
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSlotOfUniform(t *testing.T) {
	const frame = 64
	counts := make([]int, frame)
	const draws = 64000
	for id := uint64(0); id < draws; id++ {
		counts[SlotOf(id, 12345, frame)]++
	}
	want := float64(draws) / frame
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("slot %d: %d picks, want ~%.0f", i, c, want)
		}
	}
}

func TestSlotOfPanicsOnBadFrame(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SlotOf with frameSize 0 did not panic")
		}
	}()
	SlotOf(1, 1, 0)
}

func TestParticipatesEdges(t *testing.T) {
	if !Participates(1, 2, 1.0) {
		t.Error("p=1 must always participate")
	}
	if Participates(1, 2, 0.0) {
		t.Error("p=0 must never participate")
	}
	if !Participates(1, 2, 1.5) {
		t.Error("p>1 must always participate")
	}
}

func TestParticipatesRate(t *testing.T) {
	const p, draws = 0.27, 100000
	hits := 0
	for id := uint64(0); id < draws; id++ {
		if Participates(id, 777, p) {
			hits++
		}
	}
	got := float64(hits) / draws
	if math.Abs(got-p) > 0.01 {
		t.Errorf("participation rate = %v, want ~%v", got, p)
	}
}

// TestParticipatesIndependentOfSlot guards against the participation decision
// and the slot choice sharing hash bits, which would bias the bitmap.
func TestParticipatesIndependentOfSlot(t *testing.T) {
	const frame = 16
	const draws = 200000
	joint := make([]int, frame)
	participants := 0
	for id := uint64(0); id < draws; id++ {
		if Participates(id, 9, 0.5) {
			participants++
			joint[SlotOf(id, 9, frame)]++
		}
	}
	want := float64(participants) / frame
	for i, c := range joint {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("slot %d among participants: %d, want ~%.0f", i, c, want)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkSlotOf(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = SlotOf(uint64(i), 42, 3228)
	}
}

// TestDeriveSeedPositional: the derived seed is a pure function of
// (base, coords) — repeatable, sensitive to every coordinate, and sensitive
// to coordinate order. This is what lets the experiment harness hand out
// per-trial seeds independent of loop scheduling.
func TestDeriveSeedPositional(t *testing.T) {
	a := DeriveSeed(1, 6, 0, 0)
	if a != DeriveSeed(1, 6, 0, 0) {
		t.Fatal("DeriveSeed is not deterministic")
	}
	distinct := []uint64{
		a,
		DeriveSeed(2, 6, 0, 0), // base
		DeriveSeed(1, 7, 0, 0), // point
		DeriveSeed(1, 6, 1, 0), // trial
		DeriveSeed(1, 6, 0, 1), // stream
		DeriveSeed(1, 0, 6, 0), // coordinate order
		DeriveSeed(0),          // degenerate base
	}
	seen := map[uint64]int{}
	for i, v := range distinct {
		if j, dup := seen[v]; dup {
			t.Fatalf("cases %d and %d collide on %#x", j, i, v)
		}
		seen[v] = i
	}
}

// TestDeriveSeedSpread: seeds derived for consecutive trials must not be
// correlated in their low bits (they seed splitmix64 Sources directly).
func TestDeriveSeedSpread(t *testing.T) {
	const trials = 4096
	ones := 0
	for trial := uint64(0); trial < trials; trial++ {
		ones += int(DeriveSeed(1, 6, trial, 0) & 1)
	}
	if ones < trials/2-3*32 || ones > trials/2+3*32 {
		t.Errorf("low-bit ones = %d/%d, want ~%d", ones, trials, trials/2)
	}
}

// Package search implements tag search over CCM — the third system-level
// function the paper's information model calls out (§III-B: "If each tag
// chooses multiple random slots in the time frame, we can perform tag search
// based on the bitmap", citing Zheng & Li [14] and Chen et al. [15]).
//
// The reader holds a wanted list of IDs and asks which of them are present
// in the field. Each present tag sets k hash-derived slots in the frame
// (a Bloom-filter encoding); the reader checks each wanted ID's k slots in
// the collected bitmap. An idle slot proves absence — a present tag always
// delivers its slots thanks to Theorem 1 — while an ID whose k slots are
// all busy is reported present, with a quantifiable false-positive rate
// from other tags covering its slots.
package search

import (
	"fmt"
	"math"

	"netags/internal/bitmap"
	"netags/internal/core"
	"netags/internal/energy"
	"netags/internal/obs"
	"netags/internal/prng"
	"netags/internal/topology"
)

// DefaultHashes is the Bloom encoding width used when Options.Hashes is 0.
const DefaultHashes = 3

// slotOf returns wanted/present tag id's j-th slot for the request seed.
func slotOf(id, seed uint64, j, frameSize int) int {
	return prng.SlotOf(id, seed+uint64(j)*0x9e3779b97f4a7c15, frameSize)
}

// Picker returns the multi-slot CCM picker for this application.
func Picker(seed uint64, hashes, frameSize int) core.SlotPicker {
	return func(_ int, id uint64) []int {
		slots := make([]int, hashes)
		for j := range slots {
			slots[j] = slotOf(id, seed, j, frameSize)
		}
		return slots
	}
}

// FalsePositiveRate estimates the probability that an absent wanted ID is
// reported present, with nPresent tags each setting hashes slots in an
// f-slot frame: (busy fraction)^hashes.
func FalsePositiveRate(nPresent, f, hashes int) float64 {
	if f <= 0 || hashes <= 0 {
		return 1
	}
	busy := 1 - math.Pow(1-1/float64(f), float64(nPresent*hashes))
	return math.Pow(busy, float64(hashes))
}

// FrameSizeFor returns a frame size that keeps the false-positive rate at or
// below target for a population of n tags with the given hash count.
func FrameSizeFor(n, hashes int, target float64) (int, error) {
	if n <= 0 || hashes <= 0 {
		return 0, fmt.Errorf("search: n %d and hashes %d must be positive", n, hashes)
	}
	if target <= 0 || target >= 1 {
		return 0, fmt.Errorf("search: target false-positive rate %v outside (0,1)", target)
	}
	// Invert (1 − e^{−nk/f})^k ≤ target for f.
	busy := math.Pow(target, 1/float64(hashes))
	if busy >= 1 {
		return 0, fmt.Errorf("search: unreachable target %v", target)
	}
	f := float64(n*hashes) / -math.Log1p(-busy)
	fi := int(math.Ceil(f))
	for FalsePositiveRate(n, fi, hashes) > target {
		fi += fi / 16
	}
	return fi, nil
}

// Options configures one search execution.
type Options struct {
	// FrameSize is f; 0 derives it from the present population estimate and
	// TargetFP via FrameSizeFor.
	FrameSize int
	// Hashes is the Bloom width k (default DefaultHashes).
	Hashes int
	// Seed identifies the request.
	Seed uint64
	// TargetFP is the acceptable false-positive rate when FrameSize is
	// derived (default 0.05).
	TargetFP float64
	// LossProb forwards the unreliable-channel extension.
	LossProb float64
	// LossSeed seeds the loss process.
	LossSeed uint64
	// CheckingFrameLen overrides the session's L_c bound (see core.Config);
	// deployments with detour paths deeper than the default estimate need
	// it to avoid truncation.
	CheckingFrameLen int
	// Tracer, if non-nil, receives the underlying CCM session's events plus
	// one search phase event summarizing the bitmap evaluation.
	Tracer obs.Tracer
}

// Outcome reports one search execution.
type Outcome struct {
	// Found lists wanted IDs whose slots were all busy: present, up to the
	// false-positive rate.
	Found []uint64
	// Absent lists wanted IDs with at least one idle slot: provably not in
	// the system (under a reliable channel).
	Absent []uint64
	// ExpectedFalsePositiveRate is the analytical rate for this execution.
	ExpectedFalsePositiveRate float64
	// Rounds, Clock, Meter carry the CCM session costs.
	Rounds int
	Clock  energy.Clock
	Meter  *energy.Meter
}

// Run executes one tag search: every physically present tag Bloom-encodes
// itself into the frame via CCM, and the wanted list is tested against the
// collected bitmap. presentIDs[i] is the ID of deployment tag i.
func Run(nw *topology.Network, presentIDs, wanted []uint64, opts Options) (*Outcome, error) {
	if len(presentIDs) != nw.N() {
		return nil, fmt.Errorf("search: %d present IDs for %d tags", len(presentIDs), nw.N())
	}
	if opts.Hashes == 0 {
		opts.Hashes = DefaultHashes
	}
	if opts.Hashes < 0 {
		return nil, fmt.Errorf("search: negative hash count %d", opts.Hashes)
	}
	if opts.TargetFP == 0 {
		opts.TargetFP = 0.05
	}
	f := opts.FrameSize
	if f == 0 {
		var err error
		f, err = FrameSizeFor(nw.Reachable, opts.Hashes, opts.TargetFP)
		if err != nil {
			return nil, err
		}
	}
	res, err := core.RunSession(nw, core.Config{
		FrameSize:        f,
		Seed:             opts.Seed,
		Picker:           Picker(opts.Seed, opts.Hashes, f),
		IDs:              presentIDs,
		LossProb:         opts.LossProb,
		LossSeed:         opts.LossSeed,
		CheckingFrameLen: opts.CheckingFrameLen,
		Tracer:           opts.Tracer,
	})
	if err != nil {
		return nil, err
	}
	out := &Outcome{
		ExpectedFalsePositiveRate: FalsePositiveRate(nw.Reachable, f, opts.Hashes),
		Rounds:                    res.Rounds,
		Clock:                     res.Clock,
		Meter:                     res.Meter,
	}
	out.Found, out.Absent = EvaluateObserved(opts.Tracer, res.Bitmap, wanted, opts.Seed, opts.Hashes)
	return out, nil
}

// Evaluate tests each wanted ID against a collected bitmap: all k slots busy
// means found, any idle slot means provably absent. It is exposed separately
// so that multi-reader callers can evaluate an OR-combined bitmap.
func Evaluate(bm *bitmap.Bitmap, wanted []uint64, seed uint64, hashes int) (found, absent []uint64) {
	if hashes <= 0 {
		hashes = DefaultHashes
	}
	f := bm.Len()
	for _, id := range wanted {
		present := true
		for j := 0; j < hashes; j++ {
			if !bm.Get(slotOf(id, seed, j, f)) {
				present = false
				break
			}
		}
		if present {
			found = append(found, id)
		} else {
			absent = append(absent, id)
		}
	}
	return found, absent
}

// EvaluateObserved is Evaluate plus one search phase event on t (nil t is
// exactly Evaluate): Count is the number of wanted IDs whose slots were all
// busy, Tags the size of the wanted list.
func EvaluateObserved(t obs.Tracer, bm *bitmap.Bitmap, wanted []uint64, seed uint64, hashes int) (found, absent []uint64) {
	found, absent = Evaluate(bm, wanted, seed, hashes)
	if t != nil {
		t.Trace(obs.Event{
			Kind:      obs.KindPhase,
			Protocol:  obs.ProtoSearch,
			Phase:     "evaluate",
			FrameSize: bm.Len(),
			Count:     len(found),
			Tags:      len(wanted),
			Seed:      seed,
		})
	}
	return found, absent
}

package search

import (
	"math"
	"testing"
	"testing/quick"

	"netags/internal/geom"
	"netags/internal/topology"
)

func diskNetwork(t *testing.T, n int, r float64, seed uint64) *topology.Network {
	t.Helper()
	d := geom.NewUniformDisk(n, 30, seed)
	nw, err := topology.Build(d, 0, topology.PaperRanges(r))
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func ids(n int, base uint64) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = base + uint64(i)
	}
	return out
}

func TestFalsePositiveRateShape(t *testing.T) {
	// More tags → more busy slots → higher FP; bigger frame → lower FP.
	if FalsePositiveRate(1000, 4096, 3) <= FalsePositiveRate(100, 4096, 3) {
		t.Error("FP rate not increasing in population")
	}
	if FalsePositiveRate(1000, 8192, 3) >= FalsePositiveRate(1000, 2048, 3) {
		t.Error("FP rate not decreasing in frame size")
	}
	if got := FalsePositiveRate(100, 0, 3); got != 1 {
		t.Errorf("degenerate frame should give FP 1, got %v", got)
	}
}

func TestFrameSizeFor(t *testing.T) {
	f, err := FrameSizeFor(1000, 3, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if got := FalsePositiveRate(1000, f, 3); got > 0.05 {
		t.Fatalf("derived frame %d gives FP %v > 0.05", f, got)
	}
	for _, bad := range []struct {
		n, k int
		fp   float64
	}{{0, 3, 0.05}, {10, 0, 0.05}, {10, 3, 0}, {10, 3, 1}} {
		if _, err := FrameSizeFor(bad.n, bad.k, bad.fp); err == nil {
			t.Errorf("FrameSizeFor(%+v) accepted", bad)
		}
	}
}

func TestSearchNoFalseNegatives(t *testing.T) {
	// Every wanted ID that is present and reachable must be found, for any
	// seed: present tags always deliver their slots (Theorem 1).
	nw := diskNetwork(t, 1200, 6, 301)
	present := ids(1200, 5000)
	// Want 30 present tags (pick reachable ones) and 30 absent IDs.
	var wanted []uint64
	var wantPresent []uint64
	for i := 0; len(wantPresent) < 30 && i < nw.N(); i++ {
		if nw.Tier[i] > 0 {
			wanted = append(wanted, present[i])
			wantPresent = append(wantPresent, present[i])
		}
	}
	absentIDs := ids(30, 999999)
	wanted = append(wanted, absentIDs...)

	for seed := uint64(0); seed < 3; seed++ {
		out, err := Run(nw, present, wanted, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		found := make(map[uint64]bool, len(out.Found))
		for _, id := range out.Found {
			found[id] = true
		}
		for _, id := range wantPresent {
			if !found[id] {
				t.Fatalf("seed %d: present tag %d not found", seed, id)
			}
		}
	}
}

func TestSearchFalsePositiveRateNearAnalytic(t *testing.T) {
	nw := diskNetwork(t, 1500, 6, 307)
	present := ids(1500, 5000)
	absent := ids(800, 2000000)
	out, err := Run(nw, present, absent, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	got := float64(len(out.Found)) / float64(len(absent))
	want := out.ExpectedFalsePositiveRate
	if math.Abs(got-want) > 0.05 {
		t.Fatalf("observed FP rate %v, analytic %v", got, want)
	}
	if want > 0.06 {
		t.Fatalf("derived frame should keep FP <= 5%%, analytic says %v", want)
	}
}

func TestSearchAbsentProof(t *testing.T) {
	// Absent means at least one idle slot — the absolute counts must add up.
	nw := diskNetwork(t, 500, 6, 311)
	present := ids(500, 5000)
	wanted := ids(100, 7777777)
	out, err := Run(nw, present, wanted, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Found)+len(out.Absent) != len(wanted) {
		t.Fatalf("found %d + absent %d != wanted %d", len(out.Found), len(out.Absent), len(wanted))
	}
}

func TestSearchExplicitFrameAndHashes(t *testing.T) {
	nw := diskNetwork(t, 300, 8, 313)
	present := ids(300, 100)
	out, err := Run(nw, present, present[:5], Options{Seed: 3, FrameSize: 4096, Hashes: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Found) == 0 {
		t.Fatal("no present tags found with explicit parameters")
	}
	if out.Clock.Total() == 0 || out.Rounds == 0 {
		t.Fatal("session costs missing")
	}
}

func TestSearchValidation(t *testing.T) {
	nw := diskNetwork(t, 50, 6, 317)
	if _, err := Run(nw, ids(49, 1), nil, Options{}); err == nil {
		t.Error("present-ID length mismatch accepted")
	}
	if _, err := Run(nw, ids(50, 1), nil, Options{Hashes: -1}); err == nil {
		t.Error("negative hash count accepted")
	}
}

// TestSearchNoFalseNegativesProperty drives the no-false-negative guarantee
// through testing/quick: under any geometry, seed and Bloom width, every
// present reachable tag in the wanted list is found.
func TestSearchNoFalseNegativesProperty(t *testing.T) {
	prop := func(seed uint64, rRaw, kRaw uint8) bool {
		r := 3 + float64(rRaw%8)
		hashes := 1 + int(kRaw%5)
		nw := diskNetwork(t, 300, r, seed)
		present := ids(300, 40000)
		var wanted []uint64
		for i := 0; i < nw.N() && len(wanted) < 25; i++ {
			if nw.Tier[i] > 0 {
				wanted = append(wanted, present[i])
			}
		}
		// Sparse random graphs can have detour paths deeper than the
		// default L_c; the guarantee presumes a complete session.
		out, err := Run(nw, present, wanted, Options{Seed: seed, Hashes: hashes, CheckingFrameLen: 64})
		if err != nil {
			t.Fatalf("search: %v", err)
		}
		found := make(map[uint64]bool, len(out.Found))
		for _, id := range out.Found {
			found[id] = true
		}
		for _, id := range wanted {
			if !found[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

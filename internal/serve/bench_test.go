package serve

import (
	"context"
	"fmt"
	"testing"
)

// BenchmarkServeSpecKey: the cost of content-addressing one submission
// (normalize + canonical JSON + SHA-256). This sits on every POST /jobs,
// so it must stay trivially cheap next to an actual sweep.
func BenchmarkServeSpecKey(b *testing.B) {
	spec := JobSpec{N: 10000, Trials: 5, RValues: []float64{2, 4, 6, 8, 10},
		Protocols: []string{"TRP-CCM", "SICP", "GMLE-CCM"}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := spec.Key(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeCacheGet: a hot-path cache hit under the manager's lock
// discipline (LRU refresh included).
func BenchmarkServeCacheGet(b *testing.B) {
	c := NewCache(256)
	payload := make([]byte, 4096)
	for i := 0; i < 256; i++ {
		c.Put(fmt.Sprintf("key-%03d", i), payload)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get(fmt.Sprintf("key-%03d", i%256)); !ok {
			b.Fatal("miss")
		}
	}
}

// BenchmarkServeSubmitHit: the full Submit fast path on a warm cache —
// key derivation plus the cached-result return. This is the latency a
// duplicate submission pays instead of a sweep.
func BenchmarkServeSubmitHit(b *testing.B) {
	m := NewManager(Config{Workers: 1, run: func(ctx context.Context, s JobSpec, w int, h runHooks) error {
		emitStubPoints(s, h)
		return nil
	}})
	defer m.Shutdown(context.Background())
	spec := JobSpec{N: 10000, Trials: 5, RValues: []float64{2, 4, 6, 8, 10}}
	st, _, err := m.Submit(spec, SubmitOptions{})
	if err != nil {
		b.Fatal(err)
	}
	for {
		cur, _ := m.Job(st.ID)
		if cur.State.Terminal() {
			break
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, outcome, err := m.Submit(spec, SubmitOptions{})
		if err != nil || outcome != OutcomeCached {
			b.Fatalf("submit = %v, %v", outcome, err)
		}
	}
}

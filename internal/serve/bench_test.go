package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"testing"

	"netags/internal/obs"
)

// BenchmarkServeSpecKey: the cost of content-addressing one submission
// (normalize + canonical JSON + SHA-256). This sits on every POST /jobs,
// so it must stay trivially cheap next to an actual sweep.
func BenchmarkServeSpecKey(b *testing.B) {
	spec := JobSpec{N: 10000, Trials: 5, RValues: []float64{2, 4, 6, 8, 10},
		Protocols: []string{"TRP-CCM", "SICP", "GMLE-CCM"}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := spec.Key(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeCacheGet: a hot-path cache hit under the manager's lock
// discipline (LRU refresh included).
func BenchmarkServeCacheGet(b *testing.B) {
	c := NewCache(256)
	payload := make([]byte, 4096)
	for i := 0; i < 256; i++ {
		c.Put(fmt.Sprintf("key-%03d", i), payload)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get(fmt.Sprintf("key-%03d", i%256)); !ok {
			b.Fatal("miss")
		}
	}
}

// BenchmarkServeSubmitHit: the full Submit fast path on a warm cache —
// key derivation plus the cached-result return. This is the latency a
// duplicate submission pays instead of a sweep.
func BenchmarkServeSubmitHit(b *testing.B) {
	m := NewManager(Config{Workers: 1, run: func(ctx context.Context, s JobSpec, w int, h runHooks) error {
		emitStubPoints(s, h)
		return nil
	}})
	defer m.Shutdown(context.Background())
	spec := JobSpec{N: 10000, Trials: 5, RValues: []float64{2, 4, 6, 8, 10}}
	st, _, err := m.Submit(spec, SubmitOptions{})
	if err != nil {
		b.Fatal(err)
	}
	for {
		cur, _ := m.Job(st.ID)
		if cur.State.Terminal() {
			break
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, outcome, err := m.Submit(spec, SubmitOptions{})
		if err != nil || outcome != OutcomeCached {
			b.Fatalf("submit = %v, %v", outcome, err)
		}
	}
}

// BenchmarkServePointDoneDisabled is the per-point execution hot path with
// every observability sink off: tracing disabled, no tracer, logger at the
// default (discard) level. The alloc count is the contract — the regression
// gate pins it at zero, so lifecycle tracing and structured logging cannot
// tax sweeps that did not opt in.
func BenchmarkServePointDoneDisabled(b *testing.B) {
	m := NewManager(Config{Workers: 1, TraceEventsPerJob: -1,
		run: func(ctx context.Context, s JobSpec, w int, h runHooks) error { return nil }})
	defer m.Shutdown(context.Background())
	j := &Job{ID: "bench-point-disabled", points: 1 << 30}
	row := json.RawMessage(`{"r":2,"mean_sent":42.5}`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.pointCompleted(j, PointRecord{Index: i, Label: "r=2", Row: row, ElapsedMS: 1.25})
	}
}

// BenchmarkServePointDoneEnabled is the same path with everything on:
// trace store, ring mirroring, and a debug-level JSON logger. Tracked so
// the cost of full observability stays visible and bounded, but not pinned
// to zero — this path is opt-in.
func BenchmarkServePointDoneEnabled(b *testing.B) {
	ring := obs.NewRing(1024)
	m := NewManager(Config{Workers: 1, Tracer: ring,
		Logger: slog.New(slog.NewJSONHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelDebug})),
		run:    func(ctx context.Context, s JobSpec, w int, h runHooks) error { return nil }})
	defer m.Shutdown(context.Background())
	j := &Job{ID: "bench-point-enabled", points: 1 << 30}
	row := json.RawMessage(`{"r":2,"mean_sent":42.5}`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.pointCompleted(j, PointRecord{Index: i, Label: "r=2", Row: row, ElapsedMS: 1.25})
	}
}

package serve

import (
	"container/list"
	"fmt"
	"io"
	"sync"
)

// Cache is the content-addressed result store: spec key (hex SHA-256 of the
// canonical spec JSON) → rendered result payload bytes. Eviction is LRU by
// entry count; Get and Put both refresh recency. Payloads are immutable by
// contract — callers must not mutate the returned slice — which keeps hits
// allocation-free.
//
// Because the key is a content address of a deterministic computation, the
// cache never needs invalidation: an entry can only ever be refilled with
// the same bytes.
type Cache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element

	hits      int64
	misses    int64
	evictions int64
	bytes     int64
}

type cacheEntry struct {
	key     string
	payload []byte
}

// NewCache returns a cache bounded to capacity entries. capacity <= 0 means
// unbounded (no eviction).
func NewCache(capacity int) *Cache {
	return &Cache{capacity: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the payload for key and whether it was present, updating
// recency and the hit/miss counters.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).payload, true
}

// Peek returns the payload without touching recency or the counters (the
// result endpoint uses it so serving a stored result repeatedly does not
// masquerade as cache traffic).
func (c *Cache) Peek(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	return el.Value.(*cacheEntry).payload, true
}

// Put stores the payload under key, evicting least-recently-used entries
// beyond capacity. Re-putting an existing key refreshes recency; the bytes
// are identical by the content-address contract.
func (c *Cache) Put(key string, payload []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		c.bytes += int64(len(payload)) - int64(len(e.payload))
		e.payload = payload
		return
	}
	el := c.ll.PushFront(&cacheEntry{key: key, payload: payload})
	c.items[key] = el
	c.bytes += int64(len(payload))
	for c.capacity > 0 && c.ll.Len() > c.capacity {
		back := c.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.items, e.key)
		c.bytes -= int64(len(e.payload))
		c.evictions++
	}
}

// CacheStats is a point-in-time counter snapshot.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
}

// Stats returns the current counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Entries: c.ll.Len(), Bytes: c.bytes,
	}
}

// WriteProm appends the cache counters in Prometheus text exposition
// format (the serve layer's contribution to /metrics).
func (c *Cache) WriteProm(w io.Writer) {
	s := c.Stats()
	promCounter(w, "netags_serve_cache_hits_total", "Result cache hits (submission deduplicated without execution).", s.Hits)
	promCounter(w, "netags_serve_cache_misses_total", "Result cache misses (submission needed queueing or execution).", s.Misses)
	promCounter(w, "netags_serve_cache_evictions_total", "Result cache LRU evictions.", s.Evictions)
	promGauge(w, "netags_serve_cache_entries", "Result cache resident entries.", float64(s.Entries))
	promGauge(w, "netags_serve_cache_bytes", "Result cache resident payload bytes.", float64(s.Bytes))
}

func promCounter(w io.Writer, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

func promGauge(w io.Writer, name, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
}

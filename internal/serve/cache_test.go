package serve

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestCacheBasic(t *testing.T) {
	c := NewCache(2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("a", []byte("payload-a"))
	got, ok := c.Get("a")
	if !ok || string(got) != "payload-a" {
		t.Fatalf("Get(a) = %q, %v", got, ok)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 || s.Bytes != int64(len("payload-a")) {
		t.Errorf("stats = %+v", s)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	c.Get("a") // refresh a: b is now least recently used
	c.Put("c", []byte("C"))
	if _, ok := c.Peek("b"); ok {
		t.Error("b should have been evicted")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Peek(k); !ok {
			t.Errorf("%s evicted unexpectedly", k)
		}
	}
	s := c.Stats()
	if s.Evictions != 1 || s.Entries != 2 || s.Bytes != 2 {
		t.Errorf("stats after eviction = %+v", s)
	}
}

// TestCachePeekDoesNotCount: result serving must not inflate hit/miss
// counters or disturb recency.
func TestCachePeekDoesNotCount(t *testing.T) {
	c := NewCache(2)
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	for i := 0; i < 5; i++ {
		c.Peek("a")
		c.Peek("nope")
	}
	s := c.Stats()
	if s.Hits != 0 || s.Misses != 0 {
		t.Errorf("Peek moved the counters: %+v", s)
	}
	// Recency untouched: "a" (older Put) is still the LRU victim.
	c.Put("c", []byte("C"))
	if _, ok := c.Peek("a"); ok {
		t.Error("Peek refreshed recency")
	}
}

func TestCacheUnbounded(t *testing.T) {
	c := NewCache(-1)
	for i := 0; i < 1000; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte("x"))
	}
	if s := c.Stats(); s.Entries != 1000 || s.Evictions != 0 {
		t.Errorf("unbounded cache stats = %+v", s)
	}
}

func TestCacheRePut(t *testing.T) {
	c := NewCache(2)
	c.Put("a", []byte("AA"))
	c.Put("a", []byte("AA"))
	if s := c.Stats(); s.Entries != 1 || s.Bytes != 2 {
		t.Errorf("re-put stats = %+v", s)
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", (g*7+i)%32)
				if _, ok := c.Get(k); !ok {
					c.Put(k, []byte(k))
				}
				c.Peek(k)
				c.Stats()
			}
		}(g)
	}
	wg.Wait()
	if s := c.Stats(); s.Entries > 16 {
		t.Errorf("capacity exceeded: %+v", s)
	}
}

// TestCacheWriteProm: the counters render as valid exposition families.
func TestCacheWriteProm(t *testing.T) {
	c := NewCache(1)
	c.Put("a", []byte("A"))
	c.Get("a")
	c.Get("b")
	c.Put("b", []byte("B")) // evicts a
	var sb strings.Builder
	c.WriteProm(&sb)
	out := sb.String()
	for _, want := range []string{
		"netags_serve_cache_hits_total 1",
		"netags_serve_cache_misses_total 1",
		"netags_serve_cache_evictions_total 1",
		"netags_serve_cache_entries 1",
		"netags_serve_cache_bytes 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

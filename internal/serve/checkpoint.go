// Per-point checkpointing. As a sweep runs, every completed grid point is
// appended to its job's checkpoint — in memory always, and as one NDJSON
// line per point under CheckpointDir when configured. The checkpoint is
// keyed by (job key, point index): the job key is the spec's content
// address and a point's Row is a pure function of (normalized spec, point
// index), so a checkpointed row can be trusted across process restarts —
// resuming a half-finished sweep recomputes nothing and still produces the
// byte-identical final payload.
//
// Lifecycle: entries accumulate while a job runs and are the replay source
// for /api/v1/jobs/{id}/stream (seq numbers are per-job completion order).
// When a job completes its disk file is deleted (the full result now lives
// in the content-addressed cache); a killed or canceled job keeps its file,
// and the next submission of the same spec restores it and skips the
// completed points. Forget drops everything (job-record pruning).
package serve

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// PointRecord is one completed sweep point: checkpoint line, stream event
// payload, and resume unit all at once.
type PointRecord struct {
	// Seq is the 1-based per-job completion order — the stream resume
	// cursor (Last-Event-ID).
	Seq int `json:"seq"`
	// Index is the point's position on the normalized sweep axis; together
	// with the job key it addresses the record.
	Index int `json:"index"`
	// Label is the point's coordinate ("r=6", "n=5000", "loss=0.2").
	Label string `json:"label"`
	// ElapsedMS is the summed wall time of the point's work items.
	ElapsedMS float64 `json:"elapsed_ms"`
	// Row is the point's rendered result row, exactly the bytes that will
	// appear in the final payload's row array.
	Row json.RawMessage `json:"row"`
}

// jobCheckpoint is one job's in-memory checkpoint plus its stream fan-out.
type jobCheckpoint struct {
	records []PointRecord // completion order; records[i].Seq == i+1
	have    map[int]bool  // point indices present
	file    *os.File      // open append handle (nil when memory-only)
	subs    map[int]chan PointRecord
	nextSub int
}

// Checkpoints is the store: one jobCheckpoint per job key, optionally
// mirrored to dir as <key>.ndjson. The zero value is not usable; construct
// with NewCheckpoints. Disk writes are best-effort: a failing filesystem
// degrades to memory-only checkpointing (counted in DiskErrors), it never
// fails the sweep.
type Checkpoints struct {
	dir string

	mu   sync.Mutex
	jobs map[string]*jobCheckpoint

	diskErrors atomic.Int64
	purged     atomic.Int64
}

// NewCheckpoints returns a store persisting under dir ("" = memory only).
func NewCheckpoints(dir string) *Checkpoints {
	return &Checkpoints{dir: dir, jobs: make(map[string]*jobCheckpoint)}
}

func (c *Checkpoints) path(key string) string {
	return filepath.Join(c.dir, key+".ndjson")
}

// get returns the job's checkpoint, creating it (and, with a dir, loading
// any surviving file from a previous process) on first touch. Caller holds
// c.mu.
func (c *Checkpoints) getLocked(key string) *jobCheckpoint {
	if j, ok := c.jobs[key]; ok {
		return j
	}
	j := &jobCheckpoint{have: make(map[int]bool), subs: make(map[int]chan PointRecord)}
	c.jobs[key] = j
	if c.dir != "" {
		c.loadLocked(key, j)
	}
	return j
}

// loadLocked replays a surviving checkpoint file into memory: one JSON
// record per line, duplicates and malformed lines dropped (a torn final
// line from a kill -9 costs exactly that one point), seqs renumbered to
// completion order.
func (c *Checkpoints) loadLocked(key string, j *jobCheckpoint) {
	f, err := os.Open(c.path(key))
	if err != nil {
		return // no file = nothing checkpointed
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		var rec PointRecord
		if json.Unmarshal(sc.Bytes(), &rec) != nil || rec.Index < 0 ||
			len(rec.Row) == 0 || j.have[rec.Index] {
			continue
		}
		rec.Seq = len(j.records) + 1
		j.records = append(j.records, rec)
		j.have[rec.Index] = true
	}
}

// Restore loads the checkpoint for key and returns the skip vector for a
// points-long sweep plus the number of restorable points. Out-of-range
// indices (a spec collision would be an SHA-256 break; far likelier a
// truncated axis from a changed cap) are ignored. (nil, 0) means a cold
// start.
func (c *Checkpoints) Restore(key string, points int) ([]bool, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j := c.getLocked(key)
	if len(j.records) == 0 {
		return nil, 0
	}
	skip := make([]bool, points)
	n := 0
	for _, rec := range j.records {
		if rec.Index < points && !skip[rec.Index] {
			skip[rec.Index] = true
			n++
		}
	}
	if n == 0 {
		return nil, 0
	}
	return skip, n
}

// Append records one completed point: first write per (key, index) wins —
// the exactly-once-per-point contract — later duplicates are dropped
// (stored false). The record lands in memory, on disk (best-effort), and in
// every live subscriber's channel; seq is the stamped completion number.
func (c *Checkpoints) Append(key string, rec PointRecord) (seq int, stored bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j := c.getLocked(key)
	if j.have[rec.Index] {
		return len(j.records), false
	}
	rec.Seq = len(j.records) + 1
	j.records = append(j.records, rec)
	j.have[rec.Index] = true

	if c.dir != "" {
		c.appendDiskLocked(key, j, rec)
	}
	for id, ch := range j.subs {
		select {
		case ch <- rec:
		default:
			// Lagging subscriber: drop it. The stream handler notices the
			// closed channel and re-replays from its last seen seq.
			close(ch)
			delete(j.subs, id)
		}
	}
	return rec.Seq, true
}

func (c *Checkpoints) appendDiskLocked(key string, j *jobCheckpoint, rec PointRecord) {
	if j.file == nil {
		if err := os.MkdirAll(c.dir, 0o755); err != nil {
			c.diskErrors.Add(1)
			return
		}
		f, err := os.OpenFile(c.path(key), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			c.diskErrors.Add(1)
			return
		}
		j.file = f
	}
	line, err := json.Marshal(rec)
	if err != nil {
		c.diskErrors.Add(1)
		return
	}
	if _, err := j.file.Write(append(line, '\n')); err != nil {
		c.diskErrors.Add(1)
	}
}

// Rows returns the checkpointed rows ordered by point index. ok is false
// unless every one of the points indices is present — the gate before
// assembling a final payload.
func (c *Checkpoints) Rows(key string, points int) ([]json.RawMessage, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[key]
	if !ok || len(j.records) < points {
		return nil, false
	}
	rows := make([]json.RawMessage, points)
	for _, rec := range j.records {
		if rec.Index < points {
			rows[rec.Index] = rec.Row
		}
	}
	for _, r := range rows {
		if r == nil {
			return nil, false
		}
	}
	return rows, true
}

// Count returns how many points are checkpointed for key.
func (c *Checkpoints) Count(key string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if j, ok := c.jobs[key]; ok {
		return len(j.records)
	}
	return 0
}

// Since returns the records with Seq > after, in completion order — the
// stream replay source.
func (c *Checkpoints) Since(key string, after int) []PointRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[key]
	if !ok || after >= len(j.records) {
		return nil
	}
	if after < 0 {
		after = 0
	}
	out := make([]PointRecord, len(j.records)-after)
	copy(out, j.records[after:])
	return out
}

// Watch returns the replay of records with Seq > after plus a live channel
// of subsequent appends. cancel unsubscribes (idempotent). A subscriber
// that falls more than the channel buffer behind is dropped — its channel
// closes, and it should re-Watch from the last seq it saw.
func (c *Checkpoints) Watch(key string, after int) (replay []PointRecord, ch <-chan PointRecord, cancel func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j := c.getLocked(key)
	if after < 0 {
		after = 0
	}
	if after < len(j.records) {
		replay = make([]PointRecord, len(j.records)-after)
		copy(replay, j.records[after:])
	}
	sub := make(chan PointRecord, 256)
	id := j.nextSub
	j.nextSub++
	j.subs[id] = sub
	return replay, sub, func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		if cur, ok := j.subs[id]; ok && cur == sub {
			delete(j.subs, id)
		}
	}
}

// Finish marks the job complete: the disk file is closed and removed (the
// result now lives in the content-addressed cache), while the in-memory
// records stay for stream replay until the job record is pruned.
func (c *Checkpoints) Finish(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[key]
	if !ok {
		return
	}
	c.closeFileLocked(j)
	if c.dir != "" {
		os.Remove(c.path(key))
	}
}

// Release closes the job's append handle without touching the file — the
// incomplete-job path (cancel, drain, failure), where the file IS the
// resume state for the next submission.
func (c *Checkpoints) Release(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if j, ok := c.jobs[key]; ok {
		c.closeFileLocked(j)
	}
}

// Forget drops the job's checkpoint entirely: memory, disk file, and
// subscribers (their channels close).
func (c *Checkpoints) Forget(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[key]
	if !ok {
		return
	}
	c.closeFileLocked(j)
	for _, ch := range j.subs {
		close(ch)
	}
	if c.dir != "" {
		os.Remove(c.path(key))
	}
	delete(c.jobs, key)
}

func (c *Checkpoints) closeFileLocked(j *jobCheckpoint) {
	if j.file != nil {
		j.file.Close()
		j.file = nil
	}
}

// GC purges stale checkpoint files: NDJSON files under the store's dir
// whose key has no in-memory state in this process (i.e. leftovers from
// earlier process lifetimes whose spec was never resubmitted) and whose
// last modification is older than ttl. Files belonging to jobs this
// process knows about — running, canceled-but-resumable, or finished —
// are never touched; their lifecycle (Finish/Forget) owns them. It
// returns the number of files removed and counts them in PurgedFiles.
// A non-positive ttl or a memory-only store is a no-op.
func (c *Checkpoints) GC(ttl time.Duration) int {
	if c.dir == "" || ttl <= 0 {
		return 0
	}
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return 0
	}
	cutoff := time.Now().Add(-ttl)
	purged := 0
	for _, e := range entries {
		name := e.Name()
		key, ok := strings.CutSuffix(name, ".ndjson")
		if !ok || e.IsDir() {
			continue
		}
		info, err := e.Info()
		if err != nil || info.ModTime().After(cutoff) {
			continue
		}
		c.mu.Lock()
		_, live := c.jobs[key]
		if !live {
			if os.Remove(filepath.Join(c.dir, name)) == nil {
				purged++
			}
		}
		c.mu.Unlock()
	}
	c.purged.Add(int64(purged))
	return purged
}

// CheckpointStats is a point-in-time view of the store.
type CheckpointStats struct {
	Jobs        int   `json:"jobs"`
	Points      int   `json:"points"`
	DiskErrors  int64 `json:"disk_errors"`
	PurgedFiles int64 `json:"purged_files"`
}

// Stats snapshots the store counters.
func (c *Checkpoints) Stats() CheckpointStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := CheckpointStats{
		Jobs:        len(c.jobs),
		DiskErrors:  c.diskErrors.Load(),
		PurgedFiles: c.purged.Load(),
	}
	for _, j := range c.jobs {
		s.Points += len(j.records)
	}
	return s
}

package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func rec(index int) PointRecord {
	return PointRecord{
		Index: index,
		Label: fmt.Sprintf("r=%d", index),
		Row:   json.RawMessage(fmt.Sprintf(`{"r":%d}`, index)),
	}
}

// TestCheckpointExactlyOnce: the first write per (key, index) wins;
// duplicates change nothing and seqs stay dense completion order.
func TestCheckpointExactlyOnce(t *testing.T) {
	c := NewCheckpoints("")
	c.Append("k", rec(2))
	c.Append("k", rec(0))
	c.Append("k", rec(2)) // duplicate index: dropped
	c.Append("k", rec(1))

	if n := c.Count("k"); n != 3 {
		t.Fatalf("Count = %d, want 3", n)
	}
	got := c.Since("k", 0)
	wantIdx := []int{2, 0, 1}
	for i, r := range got {
		if r.Seq != i+1 || r.Index != wantIdx[i] {
			t.Errorf("record %d = seq %d index %d, want seq %d index %d", i, r.Seq, r.Index, i+1, wantIdx[i])
		}
	}
	if more := c.Since("k", 2); len(more) != 1 || more[0].Index != 1 {
		t.Errorf("Since(2) = %+v, want the third record only", more)
	}
}

// TestCheckpointRestoreRows: Restore reports the skip vector and Rows
// orders by index, refusing while points are missing.
func TestCheckpointRestoreRows(t *testing.T) {
	c := NewCheckpoints("")
	if skip, n := c.Restore("k", 3); skip != nil || n != 0 {
		t.Fatalf("cold Restore = %v, %d", skip, n)
	}
	c.Append("k", rec(2))
	c.Append("k", rec(0))
	skip, n := c.Restore("k", 3)
	if n != 2 || !skip[0] || skip[1] || !skip[2] {
		t.Fatalf("Restore = %v, %d, want [true false true], 2", skip, n)
	}
	if _, ok := c.Rows("k", 3); ok {
		t.Fatal("Rows succeeded with a missing point")
	}
	c.Append("k", rec(1))
	rows, ok := c.Rows("k", 3)
	if !ok {
		t.Fatal("Rows failed with all points present")
	}
	for i, r := range rows {
		if string(r) != fmt.Sprintf(`{"r":%d}`, i) {
			t.Errorf("row %d = %s", i, r)
		}
	}
}

// TestCheckpointDiskRoundTrip: records written through one store are
// restored by a fresh store on the same dir — the process-restart path —
// and Finish removes the file while Release keeps it.
func TestCheckpointDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c1 := NewCheckpoints(dir)
	c1.Append("job", rec(1))
	c1.Append("job", rec(0))
	c1.Release("job")

	c2 := NewCheckpoints(dir)
	skip, n := c2.Restore("job", 3)
	if n != 2 || !skip[0] || !skip[1] || skip[2] {
		t.Fatalf("restored skip = %v, %d", skip, n)
	}
	// The reloaded records keep their payloads and renumbered seqs.
	recs := c2.Since("job", 0)
	if len(recs) != 2 || recs[0].Index != 1 || recs[1].Index != 0 {
		t.Fatalf("reloaded records = %+v", recs)
	}
	// Appending continues where the file left off.
	c2.Append("job", rec(2))
	if got := c2.Count("job"); got != 3 {
		t.Fatalf("count after continue = %d", got)
	}
	c2.Finish("job")
	if _, err := os.Stat(filepath.Join(dir, "job.ndjson")); !os.IsNotExist(err) {
		t.Errorf("Finish left the checkpoint file behind: %v", err)
	}
	// Memory survives Finish for stream replay.
	if got := c2.Count("job"); got != 3 {
		t.Errorf("memory dropped at Finish: count = %d", got)
	}
}

// TestCheckpointTornLine: a truncated final line (kill -9 mid-write) costs
// exactly that record; intact lines load.
func TestCheckpointTornLine(t *testing.T) {
	dir := t.TempDir()
	c1 := NewCheckpoints(dir)
	c1.Append("job", rec(0))
	c1.Append("job", rec(1))
	c1.Release("job")

	path := filepath.Join(dir, "job.ndjson")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	c2 := NewCheckpoints(dir)
	skip, n := c2.Restore("job", 2)
	if n != 1 || !skip[0] || skip[1] {
		t.Fatalf("after torn line: skip = %v, n = %d, want only point 0", skip, n)
	}
}

// TestCheckpointWatch: replay covers history, the live channel delivers
// appends, and cancel unsubscribes.
func TestCheckpointWatch(t *testing.T) {
	c := NewCheckpoints("")
	c.Append("k", rec(0))
	replay, ch, cancel := c.Watch("k", 0)
	defer cancel()
	if len(replay) != 1 || replay[0].Index != 0 {
		t.Fatalf("replay = %+v", replay)
	}
	c.Append("k", rec(1))
	live := <-ch
	if live.Index != 1 || live.Seq != 2 {
		t.Fatalf("live = %+v", live)
	}
	// A cursor past history replays nothing.
	replay2, _, cancel2 := c.Watch("k", 2)
	cancel2()
	if len(replay2) != 0 {
		t.Fatalf("replay past end = %+v", replay2)
	}
}

// TestCheckpointForget drops memory, disk, and closes subscribers.
func TestCheckpointForget(t *testing.T) {
	dir := t.TempDir()
	c := NewCheckpoints(dir)
	c.Append("k", rec(0))
	_, ch, _ := c.Watch("k", 0)
	c.Forget("k")
	if _, open := <-ch; open {
		t.Error("subscriber channel not closed by Forget")
	}
	if n := c.Count("k"); n != 0 {
		t.Errorf("count after Forget = %d", n)
	}
	if _, err := os.Stat(filepath.Join(dir, "k.ndjson")); !os.IsNotExist(err) {
		t.Errorf("Forget left the file: %v", err)
	}
	if s := c.Stats(); s.Jobs != 0 || s.DiskErrors != 0 {
		t.Errorf("stats after Forget = %+v", s)
	}
}

// TestCheckpointGC: only stale files whose key has no in-memory state are
// purged — a crash leftover nobody resubmitted goes, a live job's file and
// a fresh leftover stay.
func TestCheckpointGC(t *testing.T) {
	dir := t.TempDir()
	c := NewCheckpoints(dir)
	old := time.Now().Add(-2 * time.Hour)

	// Live job with an old file: retained because the key is in memory.
	c.Append("live", rec(0))
	livePath := filepath.Join(dir, "live.ndjson")
	if err := os.Chtimes(livePath, old, old); err != nil {
		t.Fatal(err)
	}
	// Stale leftover from a dead process: purged.
	stalePath := filepath.Join(dir, "stale.ndjson")
	if err := os.WriteFile(stalePath, []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(stalePath, old, old); err != nil {
		t.Fatal(err)
	}
	// Fresh leftover inside the TTL: retained.
	freshPath := filepath.Join(dir, "fresh.ndjson")
	if err := os.WriteFile(freshPath, []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A non-checkpoint file is never touched.
	otherPath := filepath.Join(dir, "README.txt")
	if err := os.WriteFile(otherPath, []byte("keep"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(otherPath, old, old); err != nil {
		t.Fatal(err)
	}

	if n := c.GC(time.Hour); n != 1 {
		t.Fatalf("GC purged %d files, want 1", n)
	}
	for _, p := range []string{livePath, freshPath, otherPath} {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("GC removed %s: %v", p, err)
		}
	}
	if _, err := os.Stat(stalePath); !os.IsNotExist(err) {
		t.Errorf("stale file survived GC: %v", err)
	}
	if s := c.Stats(); s.PurgedFiles != 1 {
		t.Errorf("PurgedFiles = %d, want 1", s.PurgedFiles)
	}

	// Disabled paths: no dir, or no TTL.
	if n := NewCheckpoints("").GC(time.Hour); n != 0 {
		t.Errorf("dirless GC purged %d", n)
	}
	if n := c.GC(0); n != 0 {
		t.Errorf("ttl-0 GC purged %d", n)
	}
}

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Client is a small helper over the jobs API — used by cmd/ccmserve's
// tests and handy for driving a remote server programmatically. The zero
// value is not usable; set BaseURL ("http://host:port").
type Client struct {
	// BaseURL is the server root, without a trailing slash.
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// APIError is a non-2xx reply from the server.
type APIError struct {
	StatusCode int
	Message    string
	// RetryAfter echoes the Retry-After header on 429 backpressure replies.
	RetryAfter string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("serve client: status %d: %s", e.StatusCode, e.Message)
}

func (c *Client) do(ctx context.Context, method, path string, body any, out any, accept ...int) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	for _, code := range accept {
		if resp.StatusCode == code {
			if out == nil {
				return nil
			}
			return json.Unmarshal(raw, out)
		}
	}
	var apiErr struct {
		Error string `json:"error"`
	}
	msg := string(raw)
	if json.Unmarshal(raw, &apiErr) == nil && apiErr.Error != "" {
		msg = apiErr.Error
	}
	return &APIError{StatusCode: resp.StatusCode, Message: msg, RetryAfter: resp.Header.Get("Retry-After")}
}

// Submit posts a job and returns the server's {id, status} reply.
func (c *Client) Submit(ctx context.Context, spec JobSpec, workers int) (SubmitResponse, error) {
	var out SubmitResponse
	err := c.do(ctx, http.MethodPost, "/jobs", SubmitRequest{Spec: spec, Workers: workers}, &out,
		http.StatusOK, http.StatusAccepted)
	return out, err
}

// Job fetches one job's status.
func (c *Client) Job(ctx context.Context, id string) (JobStatus, error) {
	var out JobStatus
	err := c.do(ctx, http.MethodGet, "/jobs/"+id, nil, &out, http.StatusOK)
	return out, err
}

// Jobs lists the server's retained job records.
func (c *Client) Jobs(ctx context.Context) ([]JobStatus, error) {
	var out struct {
		Jobs []JobStatus `json:"jobs"`
	}
	err := c.do(ctx, http.MethodGet, "/jobs", nil, &out, http.StatusOK)
	return out.Jobs, err
}

// Cancel cancels a job.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	var out JobStatus
	err := c.do(ctx, http.MethodDelete, "/jobs/"+id, nil, &out, http.StatusOK)
	return out, err
}

// Result fetches a finished job's rendered result payload. While the job
// is still queued or running it returns a nil payload with the current
// status (HTTP 202) — poll or use Wait.
func (c *Client) Result(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return raw, nil
	case http.StatusAccepted:
		return nil, nil
	}
	var apiErr struct {
		Error string `json:"error"`
	}
	msg := string(raw)
	if json.Unmarshal(raw, &apiErr) == nil && apiErr.Error != "" {
		msg = apiErr.Error
	}
	return nil, &APIError{StatusCode: resp.StatusCode, Message: msg}
}

// Wait polls the job until it reaches a terminal state (or ctx expires)
// and returns the final status. poll <= 0 defaults to 50ms.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (JobStatus, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return JobStatus{}, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-t.C:
		}
	}
}

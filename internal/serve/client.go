// Client for the versioned jobs API. Every method takes a context, non-2xx
// replies come back as typed errors (*APIError, with ErrBusy wrapping 429
// backpressure so callers can match it with errors.As and honor
// Retry-After), Stream tails a job's per-point NDJSON with transparent
// cursoring, and Await combines streaming with reconnect-on-drop so a
// flaky connection degrades to a late answer instead of an error.
package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"strconv"
	"time"
)

// BackendHeader is the response header a cluster router sets to the
// backend worker that actually answered — shard-aware error context for
// clients behind a router, absent when talking to a worker directly.
const BackendHeader = "X-CCM-Backend"

// Client is a helper over the jobs API — used by cmd/ccmserve and handy for
// driving a remote server programmatically. The zero value is not usable;
// set BaseURL ("http://host:port").
type Client struct {
	// BaseURL is the server root, without a trailing slash.
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// Logger receives the client's lifecycle logs: backpressure retries at
	// Warn, stream reconnects at Warn, terminal awaits at Info. nil discards.
	Logger *slog.Logger
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) log() *slog.Logger {
	if c.Logger != nil {
		return c.Logger
	}
	return slog.New(slog.DiscardHandler)
}

// APIError is a non-2xx reply from the server.
type APIError struct {
	StatusCode int
	// Code is the machine-matchable error code from the envelope
	// ("queue_full", "not_found", ...); empty when the server sent no
	// envelope.
	Code    string
	Message string
	// RetryAfter echoes the Retry-After header on 429 backpressure replies.
	RetryAfter string
	// Backend echoes the router's X-CCM-Backend header: which shard
	// produced the error. Empty when talking to a worker directly.
	Backend string
}

func (e *APIError) Error() string {
	via := ""
	if e.Backend != "" {
		via = " [backend " + e.Backend + "]"
	}
	if e.Code != "" {
		return fmt.Sprintf("serve client: status %d (%s)%s: %s", e.StatusCode, e.Code, via, e.Message)
	}
	return fmt.Sprintf("serve client: status %d%s: %s", e.StatusCode, via, e.Message)
}

// ErrBusy is the typed form of 429 queue backpressure: the server is full
// and said when to come back. Match with errors.As; SubmitRetry honors it
// automatically.
type ErrBusy struct {
	// RetryAfter is the server's backoff hint (0 when the header was
	// missing or unparseable — pick your own backoff).
	RetryAfter time.Duration
	Message    string
}

func (e *ErrBusy) Error() string {
	return fmt.Sprintf("serve client: server busy (retry after %s): %s", e.RetryAfter, e.Message)
}

// apiError decodes an error reply into the matching typed error.
func apiError(statusCode int, header http.Header, raw []byte) error {
	var env errorEnvelope
	msg := string(bytes.TrimSpace(raw))
	code := ""
	if json.Unmarshal(raw, &env) == nil && env.Error.Message != "" {
		msg, code = env.Error.Message, env.Error.Code
	} else {
		// Pre-envelope servers sent {"error":"msg"}.
		var legacy struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(raw, &legacy) == nil && legacy.Error != "" {
			msg = legacy.Error
		}
	}
	retryAfter := header.Get("Retry-After")
	if statusCode == http.StatusTooManyRequests {
		d := time.Duration(0)
		if secs, err := strconv.Atoi(retryAfter); err == nil && secs >= 0 {
			d = time.Duration(secs) * time.Second
		}
		return &ErrBusy{RetryAfter: d, Message: msg}
	}
	return &APIError{
		StatusCode: statusCode, Code: code, Message: msg,
		RetryAfter: retryAfter, Backend: header.Get(BackendHeader),
	}
}

func (c *Client) do(ctx context.Context, method, path string, body any, out any, accept ...int) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+APIPrefix+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	for _, code := range accept {
		if resp.StatusCode == code {
			if out == nil {
				return nil
			}
			return json.Unmarshal(raw, out)
		}
	}
	return apiError(resp.StatusCode, resp.Header, raw)
}

// Submit posts a job and returns the server's {id, status} reply. A full
// queue comes back as *ErrBusy; see SubmitRetry for the loop that waits it
// out.
func (c *Client) Submit(ctx context.Context, spec JobSpec, opts SubmitOptions) (SubmitResponse, error) {
	var out SubmitResponse
	err := c.do(ctx, http.MethodPost, "/jobs", SubmitRequest{
		Spec:     spec,
		Workers:  opts.Workers,
		Priority: opts.Priority,
		Client:   opts.Client,
	}, &out, http.StatusOK, http.StatusAccepted)
	return out, err
}

// minBackoff floors every jittered backoff so a zero draw cannot busy-spin
// the submit loop.
const minBackoff = 50 * time.Millisecond

// jitterBackoff spreads a Retry-After hint with full jitter: for a unit
// draw u in [0,1) it returns a duration in [minBackoff, max(base,
// minBackoff)]. Retry-After is the same number for every shed client, so
// sleeping it verbatim synchronizes the retries into a thundering herd at
// exactly the moment the server said it would recover; a uniform draw over
// the whole interval spreads the herd across it.
func jitterBackoff(base time.Duration, u float64) time.Duration {
	if base < minBackoff {
		base = minBackoff
	}
	d := time.Duration(u * float64(base))
	if d < minBackoff {
		d = minBackoff
	}
	if d > base {
		d = base
	}
	return d
}

// SubmitRetry submits, and on queue backpressure waits out the server's
// Retry-After hint — spread with full jitter so concurrent shed clients
// do not stampede the recovering server in lockstep — and tries again,
// until admission or ctx cancels. The wait between attempts respects ctx:
// cancellation interrupts the sleep immediately, and the returned error
// then reports how many submissions were attempted. Errors other than
// ErrBusy return as-is.
func (c *Client) SubmitRetry(ctx context.Context, spec JobSpec, opts SubmitOptions) (SubmitResponse, error) {
	for attempts := 1; ; attempts++ {
		out, err := c.Submit(ctx, spec, opts)
		var busy *ErrBusy
		if !errors.As(err, &busy) {
			return out, err
		}
		hint := busy.RetryAfter
		if hint <= 0 {
			hint = time.Second
		}
		backoff := jitterBackoff(hint, rand.Float64())
		c.log().Warn("submit backpressure; retrying",
			"attempt", attempts, "backoff", backoff.String())
		t := time.NewTimer(backoff)
		select {
		case <-ctx.Done():
			t.Stop()
			return SubmitResponse{}, fmt.Errorf("serve client: submit abandoned after %d attempt(s): %w", attempts, ctx.Err())
		case <-t.C:
		}
	}
}

// Job fetches one job's status.
func (c *Client) Job(ctx context.Context, id string) (JobStatus, error) {
	var out JobStatus
	err := c.do(ctx, http.MethodGet, "/jobs/"+id, nil, &out, http.StatusOK)
	return out, err
}

// Jobs lists the server's retained job records.
func (c *Client) Jobs(ctx context.Context) ([]JobStatus, error) {
	var out struct {
		Jobs []JobStatus `json:"jobs"`
	}
	err := c.do(ctx, http.MethodGet, "/jobs", nil, &out, http.StatusOK)
	return out.Jobs, err
}

// Cancel cancels a job. The server keeps its checkpoint: resubmitting the
// same spec resumes from the completed points.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	var out JobStatus
	err := c.do(ctx, http.MethodDelete, "/jobs/"+id, nil, &out, http.StatusOK)
	return out, err
}

// Result fetches a finished job's rendered result payload. While the job
// is still queued or running it returns a nil payload with no error
// (HTTP 202) — poll, or use Await.
func (c *Client) Result(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+APIPrefix+"/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return raw, nil
	case http.StatusAccepted:
		return nil, nil
	}
	return nil, apiError(resp.StatusCode, resp.Header, raw)
}

// Stream is an iterator over a job's per-point event stream. Use it like
// bufio.Scanner: for s.Next() { ev := s.Event() ... }; s.Err(); s.Close().
type Stream struct {
	body io.ReadCloser
	sc   *bufio.Scanner
	ev   StreamEvent
	err  error
}

// Stream opens the job's NDJSON tail starting after seq `after` (0 = from
// the beginning). The iterator yields every completed point in order and
// finally one "state" event when the job settles. It does not reconnect —
// Await layers that on top.
func (c *Client) Stream(ctx context.Context, id string, after int) (*Stream, error) {
	url := c.BaseURL + APIPrefix + "/jobs/" + id + "/stream"
	if after > 0 {
		url += "?after=" + strconv.Itoa(after)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return nil, apiError(resp.StatusCode, resp.Header, raw)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	return &Stream{body: resp.Body, sc: sc}, nil
}

// Next advances to the next event. It returns false at end of stream or on
// error; check Err afterwards.
func (s *Stream) Next() bool {
	for s.sc.Scan() {
		line := bytes.TrimSpace(s.sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if err := json.Unmarshal(line, &s.ev); err != nil {
			s.err = fmt.Errorf("serve client: bad stream event: %w", err)
			return false
		}
		return true
	}
	s.err = s.sc.Err()
	return false
}

// Event returns the current event (valid after a true Next).
func (s *Stream) Event() StreamEvent { return s.ev }

// Err returns the terminal error, nil on a clean end of stream.
func (s *Stream) Err() error { return s.err }

// Close releases the connection. Safe to call at any point and repeatedly.
func (s *Stream) Close() error { return s.body.Close() }

// Await follows the job's stream until it reaches a terminal state and
// returns the final status, invoking onPoint (when non-nil) for every point
// event. Dropped connections are tolerated: Await reconnects from the last
// seq it saw, so each point is delivered at most once and a mid-stream
// network blip costs nothing but latency. It returns early only when ctx
// cancels or the server rejects the stream (e.g. unknown job).
func (c *Client) Await(ctx context.Context, id string, onPoint func(PointRecord)) (JobStatus, error) {
	last := 0
	reconnects := 0
	for {
		st, done, err := c.awaitOnce(ctx, id, &last, onPoint)
		if done {
			if err == nil {
				c.log().Info("job await finished",
					"job", id, "state", string(st.State), "reconnects", reconnects)
			}
			return st, err
		}
		if ctx.Err() != nil {
			return JobStatus{}, ctx.Err()
		}
		// Connection dropped mid-stream; back off briefly and resume from
		// the last seq delivered. The resumed stream carries our cursor, so
		// the server marks the reconnect on the job's trace timeline.
		reconnects++
		c.log().Warn("stream dropped; reconnecting",
			"job", id, "after_seq", last, "reconnects", reconnects, "err", fmt.Sprint(err))
		t := time.NewTimer(100 * time.Millisecond)
		select {
		case <-ctx.Done():
			t.Stop()
			return JobStatus{}, ctx.Err()
		case <-t.C:
		}
	}
}

// awaitOnce follows one stream connection. done reports a definitive
// outcome (terminal state reached, or a non-retryable error); done false
// means the connection dropped and the caller should reconnect.
func (c *Client) awaitOnce(ctx context.Context, id string, last *int, onPoint func(PointRecord)) (JobStatus, bool, error) {
	s, err := c.Stream(ctx, id, *last)
	if err != nil {
		if ctx.Err() != nil {
			return JobStatus{}, true, ctx.Err()
		}
		var apiErr *APIError
		if errors.As(err, &apiErr) {
			return JobStatus{}, true, err // the server answered: not a blip
		}
		return JobStatus{}, false, err // dial/transport error: reconnect
	}
	defer s.Close()
	for s.Next() {
		ev := s.Event()
		switch ev.Event {
		case "point":
			if ev.Point != nil {
				if ev.Point.Seq > *last {
					*last = ev.Point.Seq
					if onPoint != nil {
						onPoint(*ev.Point)
					}
				}
			}
		case "state":
			if ev.State != nil && ev.State.State.Terminal() {
				return *ev.State, true, nil
			}
		}
	}
	if ctx.Err() != nil {
		return JobStatus{}, true, ctx.Err()
	}
	return JobStatus{}, false, s.Err()
}

// Wait polls the job until it reaches a terminal state (or ctx expires)
// and returns the final status. poll <= 0 defaults to 50ms. Await is the
// streaming alternative; Wait survives servers that predate /stream.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (JobStatus, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return JobStatus{}, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-t.C:
		}
	}
}

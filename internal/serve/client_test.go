package serve

import (
	"bytes"
	"context"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestSubmitRetryReportsAttempts: when the context expires while waiting
// out backpressure, the error says how many submissions were attempted.
func TestSubmitRetryReportsAttempts(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, CodeQueueFull, "queue full")
	}))
	defer srv.Close()

	var logBuf bytes.Buffer
	cl := &Client{BaseURL: srv.URL, Logger: slog.New(slog.NewTextHandler(&logBuf, nil))}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_, err := cl.SubmitRetry(ctx, testSpec(0), SubmitOptions{})
	if err == nil {
		t.Fatal("SubmitRetry succeeded against an always-busy server")
	}
	if !strings.Contains(err.Error(), "after 1 attempt") {
		t.Fatalf("error does not carry the attempt count: %v", err)
	}
	if !strings.Contains(logBuf.String(), "submit backpressure") {
		t.Fatalf("retry not logged: %q", logBuf.String())
	}
}

// TestClientNilLoggerDiscards pins that an unset Logger is safe.
func TestClientNilLoggerDiscards(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, CodeQueueFull, "queue full")
	}))
	defer srv.Close()
	cl := &Client{BaseURL: srv.URL}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := cl.SubmitRetry(ctx, testSpec(0), SubmitOptions{}); err == nil {
		t.Fatal("expected context-expiry error")
	}
}

package serve

import (
	"bytes"
	"context"
	"errors"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestSubmitRetryReportsAttempts: when the context expires while waiting
// out backpressure, the error says how many submissions were attempted.
func TestSubmitRetryReportsAttempts(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, CodeQueueFull, "queue full")
	}))
	defer srv.Close()

	var logBuf bytes.Buffer
	cl := &Client{BaseURL: srv.URL, Logger: slog.New(slog.NewTextHandler(&logBuf, nil))}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_, err := cl.SubmitRetry(ctx, testSpec(0), SubmitOptions{})
	if err == nil {
		t.Fatal("SubmitRetry succeeded against an always-busy server")
	}
	if !strings.Contains(err.Error(), "after 1 attempt") {
		t.Fatalf("error does not carry the attempt count: %v", err)
	}
	if !strings.Contains(logBuf.String(), "submit backpressure") {
		t.Fatalf("retry not logged: %q", logBuf.String())
	}
}

// TestJitterBackoffBounds pins the full-jitter envelope: for any unit
// draw, the sleep stays within [minBackoff, max(base, minBackoff)] — the
// floor stops a zero draw from busy-spinning, the ceiling honors the
// server's Retry-After as the worst case, and intermediate draws scale
// linearly so concurrent shed clients spread across the interval instead
// of stampeding at its end.
func TestJitterBackoffBounds(t *testing.T) {
	cases := []struct {
		base time.Duration
		u    float64
		want time.Duration
	}{
		{2 * time.Second, 0, minBackoff},                // floor
		{2 * time.Second, 0.25, 500 * time.Millisecond}, // linear
		{2 * time.Second, 0.5, time.Second},
		{2 * time.Second, 1, 2 * time.Second}, // ceiling = the hint
		{time.Second, 0.999, 999 * time.Millisecond},
		{0, 0.5, minBackoff},                   // degenerate hint floors
		{10 * time.Millisecond, 1, minBackoff}, // sub-floor hint clamps up
		{10 * time.Millisecond, 0, minBackoff},
	}
	for _, c := range cases {
		got := jitterBackoff(c.base, c.u)
		if got != c.want {
			t.Errorf("jitterBackoff(%s, %g) = %s, want %s", c.base, c.u, got, c.want)
		}
		if got < minBackoff {
			t.Errorf("jitterBackoff(%s, %g) = %s below the %s floor", c.base, c.u, got, minBackoff)
		}
		if ceil := max(c.base, minBackoff); got > ceil {
			t.Errorf("jitterBackoff(%s, %g) = %s above the %s ceiling", c.base, c.u, got, ceil)
		}
	}
}

// TestAPIErrorCarriesBackend: a router-proxied error reply surfaces the
// answering shard in the typed error and its message.
func TestAPIErrorCarriesBackend(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(BackendHeader, "10.0.0.7:9081")
		writeError(w, http.StatusNotFound, CodeNotFound, "no such job")
	}))
	defer srv.Close()
	cl := &Client{BaseURL: srv.URL}
	_, err := cl.Job(context.Background(), strings.Repeat("a", 64))
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("got %T %v, want *APIError", err, err)
	}
	if apiErr.Backend != "10.0.0.7:9081" {
		t.Fatalf("Backend = %q, want the routed shard", apiErr.Backend)
	}
	if !strings.Contains(apiErr.Error(), "10.0.0.7:9081") {
		t.Fatalf("error text omits the backend: %v", apiErr)
	}
}

// TestClientNilLoggerDiscards pins that an unset Logger is safe.
func TestClientNilLoggerDiscards(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, CodeQueueFull, "queue full")
	}))
	defer srv.Close()
	cl := &Client{BaseURL: srv.URL}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := cl.SubmitRetry(ctx, testSpec(0), SubmitOptions{}); err == nil {
		t.Fatal("expected context-expiry error")
	}
}

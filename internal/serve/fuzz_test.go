package serve

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// FuzzJobSpecKey proves the cache-key contract over arbitrary JSON specs:
// for any body that decodes and validates, the key is a stable content
// address — invariant under canonical-JSON round-trips, JSON field
// reordering, and repeated normalization. A violation here means two
// submissions of the same job could miss each other's cache entry (wasted
// sweeps) or, worse, distinct jobs could collide onto one entry.
func FuzzJobSpecKey(f *testing.F) {
	f.Add([]byte(`{"n":300,"trials":2,"r_values":[6]}`))
	f.Add([]byte(`{"sweep":"range","n":300,"radius":30,"trials":2,"r_values":[2,6,10],"protocols":["SICP","TRP-CCM"]}`))
	f.Add([]byte(`{"sweep":"density","trials":1,"r":6,"n_values":[100,300],"seed":9}`))
	f.Add([]byte(`{"sweep":"loss","n":200,"trials":1,"r":6,"loss_values":[0,0.3,0.6],"frame_size":512}`))
	f.Add([]byte(`{"r_values":[10,6,2],"trials":2,"n":300,"gmle_frame":64,"trp_frame":96,"contention_window":8}`))
	f.Add([]byte(`{"n":300,"trials":2,"r_values":[6],"disable_indicator_vector":true,"protocols":["CICP","SICP","CICP"]}`))
	f.Fuzz(func(t *testing.T, raw []byte) {
		var spec JobSpec
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if dec.Decode(&spec) != nil {
			return // not a spec-shaped body; nothing to assert
		}
		if spec.Validate() != nil {
			return // invalid specs never reach Key() in the service
		}

		key, err := spec.Key()
		if err != nil {
			t.Fatalf("valid spec has no key: %v\n%s", err, raw)
		}
		if len(key) != 64 || strings.ToLower(key) != key {
			t.Fatalf("key %q is not lowercase hex sha256", key)
		}

		// Canonical JSON round-trips to the same key.
		canon, err := spec.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		var rt JobSpec
		if err := json.Unmarshal(canon, &rt); err != nil {
			t.Fatalf("canonical JSON does not decode: %v\n%s", err, canon)
		}
		rtKey, err := rt.Key()
		if err != nil {
			t.Fatal(err)
		}
		if rtKey != key {
			t.Fatalf("round trip changed the key: %s -> %s\n%s", key, rtKey, canon)
		}

		// Field order cannot matter: push the body through a generic map
		// (Go re-marshals map keys sorted, i.e. in a different order than
		// the input) and decode again. UseNumber keeps uint64 seeds and
		// float axes bit-exact through the detour.
		var generic map[string]any
		gdec := json.NewDecoder(bytes.NewReader(raw))
		gdec.UseNumber()
		if err := gdec.Decode(&generic); err != nil {
			return // e.g. duplicate keys accepted by struct decode paths
		}
		reordered, err := json.Marshal(generic)
		if err != nil {
			t.Fatal(err)
		}
		var spec2 JobSpec
		if err := json.Unmarshal(reordered, &spec2); err != nil {
			t.Fatalf("reordered body does not decode: %v\n%s", err, reordered)
		}
		key2, err := spec2.Key()
		if err != nil {
			t.Fatal(err)
		}
		if key2 != key {
			t.Fatalf("field order changed the key:\n%s\n%s", raw, reordered)
		}

		// Normalization is idempotent — canonical JSON is a fixed point.
		canon2, err := spec.Normalized().CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(canon, canon2) {
			t.Fatalf("normalization is not idempotent:\n%s\n%s", canon, canon2)
		}

		// The normalized spec still validates and totals the same work.
		norm := spec.Normalized()
		if err := norm.Validate(); err != nil {
			t.Fatalf("normalized spec invalid: %v\n%s", err, canon)
		}
		if norm.TotalItems() != spec.Normalized().TotalItems() {
			t.Fatal("TotalItems unstable across normalization")
		}
	})
}

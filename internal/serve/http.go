// The HTTP face of the serve layer. NewHandler mounts the versioned jobs
// API beside the introspection endpoints (one mux, one port):
//
//	POST   /api/v1/jobs              submit a sweep job → {id, status} where
//	                                 status ∈ cached | queued | running
//	GET    /api/v1/jobs              list retained job records
//	GET    /api/v1/jobs/{id}         one job's status, progress, and ETA
//	GET    /api/v1/jobs/{id}/trace   lifecycle timeline with per-stage durations
//	GET    /api/v1/jobs/{id}/result  the rendered result JSON (202 pending)
//	GET    /api/v1/jobs/{id}/stream  NDJSON tail of per-point results;
//	                                 resume with ?after=SEQ or Last-Event-ID;
//	                                 Accept: text/event-stream switches the
//	                                 same events to SSE framing
//	DELETE /api/v1/jobs/{id}         cancel a queued or running job
//
// The unversioned /jobs... paths from earlier revisions stay mounted as
// thin aliases of the same handlers. Every error is the one envelope
// {"error":{"code":"...","message":"..."}}. Backpressure: a full queue
// answers 429 (code "queue_full") with a Retry-After header; a draining
// server answers 503 (code "draining").
//
// The mux also serves /metrics (collector snapshot + serve cache, queue,
// checkpoint, SLO-histogram, and HTTP-latency families), /progress (live
// per-job tracker view), /events, /healthz, /readyz, and /debug/pprof/ from
// internal/obs/httpserve.
//
// The whole mux sits behind one middleware wrapper (middleware.go):
// X-Request-ID injection/propagation, panic recovery, per-route/per-status
// latency histograms, and structured access logs.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"netags/internal/obs/httpserve"
)

// APIPrefix is the versioned mount point of the jobs API.
const APIPrefix = "/api/v1"

// sseHeartbeatInterval paces the ": heartbeat" comment frames on SSE
// streams. A var, not a const, so tests can shrink it.
var sseHeartbeatInterval = 15 * time.Second

// SubmitRequest is the POST /api/v1/jobs body.
type SubmitRequest struct {
	// Spec is the job to run (see JobSpec for the cache-key contract).
	Spec JobSpec `json:"spec"`
	// Workers optionally caps the job's experiment worker budget. It is an
	// execution knob, not part of the spec: it cannot change the result
	// bytes and is excluded from the cache key. 0 means the server default;
	// values above the server's per-job cap clamp to it.
	Workers int `json:"workers,omitempty"`
	// Priority selects the scheduling class: "interactive" (default) or
	// "bulk". Interactive jobs always dispatch first; use bulk for batch
	// fan-outs that should yield to humans. Not part of the cache key.
	Priority Priority `json:"priority,omitempty"`
	// Client identifies the submitter for per-client fairness within a
	// priority class. Empty defaults to the connection's remote host.
	Client string `json:"client,omitempty"`
}

// SubmitResponse is the POST /api/v1/jobs reply.
type SubmitResponse struct {
	ID     string        `json:"id"`
	Status SubmitOutcome `json:"status"`
	Job    JobStatus     `json:"job"`
}

// StreamEvent is one NDJSON line of GET /api/v1/jobs/{id}/stream. Events
// arrive in seq order: one "point" per completed sweep point, then exactly
// one "state" carrying the job's terminal status. Reconnect with
// ?after=<last seen seq> (or a Last-Event-ID header) to receive only what
// was missed.
type StreamEvent struct {
	// Seq is the cursor: the point's completion number, or for the final
	// state event the last point seq streamed.
	Seq   int    `json:"seq"`
	Event string `json:"event"` // "point" | "state"
	// Point is set on "point" events.
	Point *PointRecord `json:"point,omitempty"`
	// State is set on the final "state" event.
	State *JobStatus `json:"state,omitempty"`
}

// Error codes carried in the error envelope — stable, machine-matchable
// names for each failure class (the HTTP status is the coarse version).
const (
	CodeBadRequest = "bad_request" // malformed body, invalid spec/priority
	CodeQueueFull  = "queue_full"  // backpressure; honor Retry-After
	CodeDraining   = "draining"    // server shutting down
	CodeNotFound   = "not_found"   // unknown job id
	CodeConflict   = "conflict"    // job canceled
	CodeGone       = "gone"        // result evicted; resubmit the spec
	CodeInternal   = "internal"    // job failed or server-side error
)

// maxSpecBody bounds the POST body (a spec with full axes fits easily).
const maxSpecBody = 1 << 20

// NewHandler builds the combined mux: the jobs API under /api/v1 (with
// unversioned aliases) plus the introspection endpoints. Unset obsOpts
// fields are wired to the manager: Progress to the live job view, Ready to
// Accepting, ExtraMetrics to the cache/queue/checkpoint counters (chained
// after any caller-provided hook).
func NewHandler(m *Manager, obsOpts httpserve.Options) http.Handler {
	if obsOpts.Progress == nil {
		obsOpts.Progress = m.ProgressJSON
	}
	if obsOpts.Ready == nil {
		obsOpts.Ready = m.Accepting
	}
	if prev := obsOpts.ExtraMetrics; prev != nil {
		obsOpts.ExtraMetrics = func(w io.Writer) { prev(w); m.WriteProm(w) }
	} else {
		obsOpts.ExtraMetrics = m.WriteProm
	}

	mux := http.NewServeMux()
	mux.Handle("/", httpserve.NewHandler(obsOpts))
	// One registration per route, mounted twice: the versioned surface and
	// the legacy unversioned aliases.
	registerJobs(mux, m, APIPrefix)
	registerJobs(mux, m, "")
	return withMiddleware(mux, m.log, m.http)
}

func registerJobs(mux *http.ServeMux, m *Manager, prefix string) {
	mux.HandleFunc("POST "+prefix+"/jobs", func(w http.ResponseWriter, r *http.Request) {
		handleSubmit(m, w, r)
	})
	mux.HandleFunc("GET "+prefix+"/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, struct {
			Jobs []JobStatus `json:"jobs"`
		}{Jobs: m.Jobs()})
	})
	mux.HandleFunc("GET "+prefix+"/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := m.Job(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, CodeNotFound, "unknown job")
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET "+prefix+"/jobs/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		handleTrace(m, w, r)
	})
	mux.HandleFunc("GET "+prefix+"/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		handleResult(m, w, r)
	})
	mux.HandleFunc("GET "+prefix+"/jobs/{id}/stream", func(w http.ResponseWriter, r *http.Request) {
		handleStream(m, w, r)
	})
	mux.HandleFunc("DELETE "+prefix+"/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := m.Cancel(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, CodeNotFound, "unknown job")
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
}

func handleSubmit(m *Manager, w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBody))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	client := req.Client
	if client == "" {
		// Per-client fairness falls back to the connection's remote host.
		if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
			client = host
		} else {
			client = r.RemoteAddr
		}
	}
	st, outcome, err := m.Submit(req.Spec, SubmitOptions{
		Workers:  req.Workers,
		Priority: req.Priority,
		Client:   client,
	})
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(m)))
		writeError(w, http.StatusTooManyRequests, CodeQueueFull, err.Error())
		return
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, CodeDraining, err.Error())
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	code := http.StatusAccepted
	if outcome == OutcomeCached {
		code = http.StatusOK
	}
	writeJSON(w, code, SubmitResponse{ID: st.ID, Status: outcome, Job: st})
}

// handleTrace serves a job's lifecycle timeline. 404 covers three cases
// with one answer: unknown job, trace evicted, tracing disabled.
func handleTrace(m *Manager, w http.ResponseWriter, r *http.Request) {
	tl, ok := m.JobTrace(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound, "no trace for job (unknown, evicted, or tracing disabled)")
		return
	}
	writeJSON(w, http.StatusOK, tl)
}

func handleResult(m *Manager, w http.ResponseWriter, r *http.Request) {
	payload, st, ok := m.Result(r.PathValue("id"))
	switch {
	case !ok:
		writeError(w, http.StatusNotFound, CodeNotFound, "unknown job")
	case st.State == StateFailed:
		writeError(w, http.StatusInternalServerError, CodeInternal, "job failed: "+st.Error)
	case st.State == StateCanceled:
		writeError(w, http.StatusConflict, CodeConflict, "job canceled; resubmit the spec to resume it")
	case st.State != StateDone:
		// Still queued or running: point the client back at the status.
		writeJSON(w, http.StatusAccepted, st)
	case payload == nil:
		// Done but the payload was evicted from the cache: the content
		// address still names it — resubmitting recomputes the same bytes.
		writeError(w, http.StatusGone, CodeGone, "result evicted from cache; resubmit the spec")
	default:
		w.Header().Set("Content-Type", "application/json")
		w.Write(payload)
	}
}

// handleStream tails a job's per-point results as NDJSON. The full history
// is replayed from the checkpoint (from seq 0, or after the client's
// ?after= / Last-Event-ID cursor), then events stream live until the job
// reaches a terminal state, at which point one final "state" event closes
// the stream. Works on running, queued, and already-terminal jobs alike —
// a done job simply replays and finishes immediately.
func handleStream(m *Manager, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, known := m.Job(id)
	if !known {
		writeError(w, http.StatusNotFound, CodeNotFound, "unknown job")
		return
	}
	after := 0
	cursor := r.URL.Query().Get("after")
	if cursor == "" {
		cursor = r.Header.Get("Last-Event-ID")
	}
	if cursor != "" {
		n, err := strconv.Atoi(cursor)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, CodeBadRequest, "after/Last-Event-ID must be a non-negative integer")
			return
		}
		after = n
	}
	if after > 0 {
		// A cursor means the client is resuming a broken stream — worth a
		// mark on the job's timeline.
		m.emitJob(id, StageStreamReconnect, "", after, 0, "")
		m.log.Debug("stream reconnect",
			"job", id, "after", after, "request_id", RequestID(r.Context()))
	}

	j := m.jobRecord(id)
	var done <-chan struct{}
	if j != nil && !st.State.Terminal() {
		done = j.Done()
	} else {
		closed := make(chan struct{})
		close(closed)
		done = closed
	}

	// SSE framing is opt-in via Accept; NDJSON stays the default. Both carry
	// the same StreamEvent JSON and the same seq cursor — an SSE client's
	// automatic Last-Event-ID reconnect lands on the exact resume path the
	// NDJSON ?after= cursor uses.
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	rc.Flush() // ship the headers now; events may be a long time coming
	var emit func(ev StreamEvent) bool
	if sse {
		emit = func(ev StreamEvent) bool {
			b, err := json.Marshal(ev)
			if err != nil {
				return false
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Event, b); err != nil {
				return false
			}
			rc.Flush()
			return true
		}
	} else {
		enc := json.NewEncoder(w)
		emit = func(ev StreamEvent) bool {
			if enc.Encode(ev) != nil {
				return false
			}
			rc.Flush()
			return true
		}
	}
	// SSE gets comment-framed heartbeats so proxies and clients can tell a
	// quiet sweep from a dead connection; a nil channel (NDJSON) never
	// fires. Heartbeat write errors end the stream like any other write
	// error.
	var heartbeat <-chan time.Time
	if sse {
		tick := time.NewTicker(sseHeartbeatInterval)
		defer tick.Stop()
		heartbeat = tick.C
	}

	last := after
	ctx := r.Context()
stream:
	for {
		// Subscribe, replay what the cursor missed, then go live. A dropped
		// (lagging) subscription closes its channel; we just resubscribe
		// from the last seq we delivered — the replay fills the gap.
		replay, ch, cancel := m.ckpt.Watch(id, last)
		for _, rec := range replay {
			rec := rec
			if !emit(StreamEvent{Seq: rec.Seq, Event: "point", Point: &rec}) {
				cancel()
				return
			}
			last = rec.Seq
		}
		for {
			select {
			case rec, ok := <-ch:
				if !ok {
					cancel()
					continue stream // lagged: resubscribe and re-replay
				}
				if rec.Seq <= last {
					continue
				}
				if !emit(StreamEvent{Seq: rec.Seq, Event: "point", Point: &rec}) {
					cancel()
					return
				}
				last = rec.Seq
			case <-heartbeat:
				if _, err := io.WriteString(w, ": heartbeat\n\n"); err != nil {
					cancel()
					return
				}
				rc.Flush()
			case <-done:
				cancel()
				// Final sweep: points that completed between our last event
				// and the job settling.
				for _, rec := range m.ckpt.Since(id, last) {
					rec := rec
					if !emit(StreamEvent{Seq: rec.Seq, Event: "point", Point: &rec}) {
						return
					}
					last = rec.Seq
				}
				break stream
			case <-ctx.Done():
				cancel()
				return
			}
		}
	}
	final, _ := m.Job(id)
	emit(StreamEvent{Seq: last, Event: "state", State: &final})
}

// retryAfterSeconds is the backpressure hint on a 429: one second per job
// already waiting, floored at 1 — crude, but monotone in queue pressure.
func retryAfterSeconds(m *Manager) int {
	if n := m.Stats().QueueLen; n > 1 {
		return n
	}
	return 1
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(b, '\n'))
}

// errorEnvelope is the single error shape every handler speaks:
// {"error":{"code":"...","message":"..."}}.
type errorEnvelope struct {
	Error errorDetail `json:"error"`
}

type errorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	b, _ := json.Marshal(errorEnvelope{Error: errorDetail{Code: code, Message: msg}})
	w.Write(append(b, '\n'))
}

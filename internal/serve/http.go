// The HTTP face of the serve layer. NewHandler mounts the jobs API beside
// the PR 4 introspection endpoints (one mux, one port):
//
//	POST   /jobs              submit a sweep job → {id, status} where
//	                          status ∈ cached | queued | running
//	GET    /jobs              list retained job records
//	GET    /jobs/{id}         one job's status, progress, and ETA
//	GET    /jobs/{id}/result  the rendered result JSON (202 while pending)
//	DELETE /jobs/{id}         cancel a queued or running job
//
// plus /metrics (collector snapshot + serve cache/queue counters),
// /progress (live per-job tracker view), /events, /healthz, /readyz, and
// /debug/pprof/ from internal/obs/httpserve. Backpressure: a full queue
// answers 429 with a Retry-After header; a draining server answers 503.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"netags/internal/obs/httpserve"
)

// SubmitRequest is the POST /jobs body.
type SubmitRequest struct {
	// Spec is the job to run (see JobSpec for the cache-key contract).
	Spec JobSpec `json:"spec"`
	// Workers optionally caps the job's experiment worker budget. It is an
	// execution knob, not part of the spec: it cannot change the result
	// bytes and is excluded from the cache key. 0 means the server default;
	// values above the server's per-job cap clamp to it.
	Workers int `json:"workers,omitempty"`
}

// SubmitResponse is the POST /jobs reply.
type SubmitResponse struct {
	ID     string        `json:"id"`
	Status SubmitOutcome `json:"status"`
	Job    JobStatus     `json:"job"`
}

// maxSpecBody bounds the POST body (a spec with full axes fits easily).
const maxSpecBody = 1 << 20

// NewHandler builds the combined mux: the jobs API plus the introspection
// endpoints. Unset obsOpts fields are wired to the manager: Progress to the
// live job view, Ready to Accepting, ExtraMetrics to the cache/queue
// counters (chained after any caller-provided hook).
func NewHandler(m *Manager, obsOpts httpserve.Options) http.Handler {
	if obsOpts.Progress == nil {
		obsOpts.Progress = m.ProgressJSON
	}
	if obsOpts.Ready == nil {
		obsOpts.Ready = m.Accepting
	}
	if prev := obsOpts.ExtraMetrics; prev != nil {
		obsOpts.ExtraMetrics = func(w io.Writer) { prev(w); m.WriteProm(w) }
	} else {
		obsOpts.ExtraMetrics = m.WriteProm
	}

	mux := http.NewServeMux()
	mux.Handle("/", httpserve.NewHandler(obsOpts))

	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		var req SubmitRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBody))
		if err := dec.Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
			return
		}
		st, outcome, err := m.Submit(req.Spec, req.Workers)
		switch {
		case errors.Is(err, ErrQueueFull):
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(m)))
			httpError(w, http.StatusTooManyRequests, err.Error())
			return
		case errors.Is(err, ErrDraining):
			httpError(w, http.StatusServiceUnavailable, err.Error())
			return
		case err != nil:
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		code := http.StatusAccepted
		if outcome == OutcomeCached {
			code = http.StatusOK
		}
		writeJSON(w, code, SubmitResponse{ID: st.ID, Status: outcome, Job: st})
	})

	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, struct {
			Jobs []JobStatus `json:"jobs"`
		}{Jobs: m.Jobs()})
	})

	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := m.Job(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "unknown job")
			return
		}
		writeJSON(w, http.StatusOK, st)
	})

	mux.HandleFunc("GET /jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		payload, st, ok := m.Result(r.PathValue("id"))
		switch {
		case !ok:
			httpError(w, http.StatusNotFound, "unknown job")
		case st.State == StateFailed:
			httpError(w, http.StatusInternalServerError, "job failed: "+st.Error)
		case st.State == StateCanceled:
			httpError(w, http.StatusConflict, "job canceled")
		case st.State != StateDone:
			// Still queued or running: point the client back at the status.
			writeJSON(w, http.StatusAccepted, st)
		case payload == nil:
			// Done but the payload was evicted from the cache: the content
			// address still names it — resubmitting recomputes the same bytes.
			httpError(w, http.StatusGone, "result evicted from cache; resubmit the spec")
		default:
			w.Header().Set("Content-Type", "application/json")
			w.Write(payload)
		}
	})

	mux.HandleFunc("DELETE /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := m.Cancel(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "unknown job")
			return
		}
		writeJSON(w, http.StatusOK, st)
	})

	return mux
}

// retryAfterSeconds is the backpressure hint on a 429: one second per job
// already waiting, floored at 1 — crude, but monotone in queue pressure.
func retryAfterSeconds(m *Manager) int {
	if n := m.Stats().QueueLen; n > 1 {
		return n
	}
	return 1
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(b, '\n'))
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	b, _ := json.Marshal(struct {
		Error string `json:"error"`
	}{Error: msg})
	w.Write(append(b, '\n'))
}

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"netags/internal/obs/httpserve"
)

func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *Manager) {
	t.Helper()
	m := NewManager(cfg)
	ts := httptest.NewServer(NewHandler(m, httpserve.Options{}))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	})
	return ts, m
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// TestE2EExactlyOnce is the PR's acceptance test: two concurrent
// submissions of semantically identical specs (different JSON shapes —
// field order, explicit defaults) execute the sweep exactly once and both
// resolve to byte-identical result JSON, bit-identical to running the
// experiment layer directly. A third submission is a pure cache hit, and
// the hit/dedup/executed counters surface in /metrics.
func TestE2EExactlyOnce(t *testing.T) {
	spec := JobSpec{N: 150, Trials: 1, RValues: []float64{4, 6}, Seed: 3}
	direct, err := runSpec(context.Background(), spec, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Real execution, instrumented: count entries and hold the first run at
	// a gate so the second POST provably lands inside the singleflight
	// window.
	var execs int
	var execMu sync.Mutex
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	run := func(ctx context.Context, s JobSpec, workers int, h runHooks) error {
		execMu.Lock()
		execs++
		execMu.Unlock()
		once.Do(func() { close(started) })
		select {
		case <-release:
		case <-ctx.Done():
			return ctx.Err()
		}
		return runSpecHooked(ctx, s, workers, h)
	}
	ts, _ := newTestServer(t, Config{Workers: 2, run: run})

	// Submission A: minimal spec, defaults implied, versioned path.
	bodyA := `{"spec":{"n":150,"trials":1,"r_values":[4,6],"seed":3}}`
	respA, rawA := postJSON(t, ts.URL+"/api/v1/jobs", bodyA)
	if respA.StatusCode != http.StatusAccepted {
		t.Fatalf("POST A = %d: %s", respA.StatusCode, rawA)
	}
	var subA SubmitResponse
	if err := json.Unmarshal(rawA, &subA); err != nil {
		t.Fatal(err)
	}
	<-started // A is executing and blocked at the gate

	// Submission B: same job, different field order, defaults explicit,
	// axis reversed, protocols reordered with a duplicate — posted to the
	// legacy unversioned alias, which must land on the same handler.
	bodyB := `{"spec":{"seed":3,"r_values":[6,4],"radius":30,"sweep":"range",
		"protocols":["TRP-CCM","SICP","GMLE-CCM","SICP"],"trials":1,"n":150}}`
	respB, rawB := postJSON(t, ts.URL+"/jobs", bodyB)
	if respB.StatusCode != http.StatusAccepted {
		t.Fatalf("POST B = %d: %s", respB.StatusCode, rawB)
	}
	var subB SubmitResponse
	if err := json.Unmarshal(rawB, &subB); err != nil {
		t.Fatal(err)
	}
	if subB.ID != subA.ID {
		t.Fatalf("semantically identical specs got different jobs: %s vs %s", subA.ID, subB.ID)
	}
	if subB.Status != OutcomeRunning {
		t.Errorf("concurrent duplicate outcome = %s, want running (joined in-flight)", subB.Status)
	}

	close(release)
	cl := &Client{BaseURL: ts.URL}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	final, err := cl.Wait(ctx, subA.ID, 5*time.Millisecond)
	if err != nil || final.State != StateDone {
		t.Fatalf("wait = %+v, %v", final, err)
	}

	execMu.Lock()
	gotExecs := execs
	execMu.Unlock()
	if gotExecs != 1 {
		t.Fatalf("sweep executed %d times, want exactly once", gotExecs)
	}

	// Both submissions resolve to byte-identical JSON, and those bytes are
	// bit-identical to the direct experiment-layer run.
	res1, err := cl.Result(ctx, subA.ID)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := cl.Result(ctx, subB.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res1, res2) {
		t.Error("concurrent submissions returned different bytes")
	}
	if !bytes.Equal(res1, direct) {
		t.Errorf("service result differs from direct run:\n%s\nvs\n%s", res1, direct)
	}

	// Third submission: settled now, so a pure cache hit (HTTP 200, no
	// third execution).
	respC, rawC := postJSON(t, ts.URL+"/jobs", bodyA)
	if respC.StatusCode != http.StatusOK {
		t.Fatalf("POST C = %d: %s", respC.StatusCode, rawC)
	}
	var subC SubmitResponse
	if err := json.Unmarshal(rawC, &subC); err != nil {
		t.Fatal(err)
	}
	if subC.Status != OutcomeCached || subC.ID != subA.ID {
		t.Errorf("third submission = %s/%s, want cached/%s", subC.Status, subC.ID, subA.ID)
	}
	execMu.Lock()
	gotExecs = execs
	execMu.Unlock()
	if gotExecs != 1 {
		t.Fatalf("cache hit re-executed the sweep (execs = %d)", gotExecs)
	}

	// The counters are visible on /metrics alongside the PR 4 families.
	code, metrics := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"netags_serve_cache_hits_total 1",
		"netags_serve_jobs_executed_total 1",
		"netags_serve_jobs_deduplicated_total 1",
		"netags_serve_cache_evictions_total 0",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestHTTPJobLifecycle drives the status/list/result endpoints through the
// Client helper against a real tiny sweep.
func TestHTTPJobLifecycle(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 1})
	cl := &Client{BaseURL: ts.URL}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	sub, err := cl.Submit(ctx, JobSpec{Sweep: SweepDensity, Trials: 1, R: 6, NValues: []int{50, 100}}, SubmitOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sub.ID == "" || len(sub.ID) != 64 {
		t.Fatalf("bad job id %q", sub.ID)
	}
	if _, err := cl.Wait(ctx, sub.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	jobs, err := cl.Jobs(ctx)
	if err != nil || len(jobs) != 1 || jobs[0].ID != sub.ID {
		t.Fatalf("Jobs = %+v, %v", jobs, err)
	}
	payload, err := cl.Result(ctx, sub.ID)
	if err != nil || payload == nil {
		t.Fatalf("Result = %v, %v", payload, err)
	}
	var decoded struct {
		Key  string  `json:"key"`
		Spec JobSpec `json:"spec"`
		Rows []struct {
			N int `json:"n"`
		} `json:"density_rows"`
	}
	if err := json.Unmarshal(payload, &decoded); err != nil {
		t.Fatalf("result payload is not JSON: %v\n%s", err, payload)
	}
	if decoded.Key != sub.ID || len(decoded.Rows) != 2 {
		t.Errorf("payload = key %s, %d rows", decoded.Key, len(decoded.Rows))
	}
}

func TestHTTPBadRequests(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 1, run: stubRun(nil, nil)})

	resp, _ := postJSON(t, ts.URL+"/jobs", `{not json`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body = %d, want 400", resp.StatusCode)
	}
	resp, raw := postJSON(t, ts.URL+"/jobs", `{"spec":{"n":300}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid spec = %d, want 400", resp.StatusCode)
	}
	var env errorEnvelope
	if err := json.Unmarshal(raw, &env); err != nil || env.Error.Code != CodeBadRequest || env.Error.Message == "" {
		t.Errorf("error reply not the envelope: %s", raw)
	}

	// An invalid priority is rejected up front, same envelope.
	resp, raw = postJSON(t, ts.URL+"/api/v1/jobs",
		`{"spec":{"n":150,"trials":1,"r_values":[6]},"priority":"urgent"}`)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(raw), "priority") {
		t.Errorf("bad priority = %d %s, want 400 mentioning priority", resp.StatusCode, raw)
	}

	for _, base := range []string{"", "/api/v1"} {
		if code, raw := getBody(t, ts.URL+base+"/jobs/"+strings.Repeat("0", 64)); code != http.StatusNotFound ||
			!strings.Contains(string(raw), CodeNotFound) {
			t.Errorf("unknown job on %q = %d %s, want 404 envelope", base, code, raw)
		}
		if code, _ := getBody(t, ts.URL+base+"/jobs/"+strings.Repeat("0", 64)+"/result"); code != http.StatusNotFound {
			t.Errorf("unknown result on %q = %d, want 404", base, code)
		}
		if code, _ := getBody(t, ts.URL+base+"/jobs/"+strings.Repeat("0", 64)+"/stream"); code != http.StatusNotFound {
			t.Errorf("unknown stream on %q = %d, want 404", base, code)
		}
	}
}

// TestHTTPBackpressure: a full queue answers 429 with a Retry-After hint,
// via the typed client error.
func TestHTTPBackpressure(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	ts, _ := newTestServer(t, Config{Workers: 1, QueueDepth: 1, run: stubRun(nil, gate)})
	cl := &Client{BaseURL: ts.URL}
	ctx := context.Background()

	var busy *ErrBusy
	for i := 0; i < 8; i++ {
		_, err := cl.Submit(ctx, testSpec(i), SubmitOptions{})
		if err != nil {
			if !errors.As(err, &busy) {
				t.Fatalf("unexpected error type: %v", err)
			}
			break
		}
	}
	if busy == nil {
		t.Fatal("queue never filled")
	}
	if busy.RetryAfter <= 0 {
		t.Errorf("ErrBusy.RetryAfter = %v, want a positive backoff from Retry-After", busy.RetryAfter)
	}
}

// TestHTTPCancelAndResultStates: DELETE cancels; /result reports 202 while
// pending and 409 after cancellation.
func TestHTTPCancelAndResultStates(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	ts, m := newTestServer(t, Config{Workers: 1, QueueDepth: 4, run: stubRun(nil, gate)})
	cl := &Client{BaseURL: ts.URL}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	blocker, err := cl.Submit(ctx, testSpec(0), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, m, blocker.ID)
	queued, err := cl.Submit(ctx, testSpec(1), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// Pending result → 202 with the status body; the client maps that to
	// (nil, nil).
	payload, err := cl.Result(ctx, queued.ID)
	if err != nil || payload != nil {
		t.Fatalf("pending result = %q, %v, want nil, nil", payload, err)
	}

	st, err := cl.Cancel(ctx, queued.ID)
	if err != nil || st.State != StateCanceled {
		t.Fatalf("cancel = %+v, %v", st, err)
	}
	if _, err := cl.Result(ctx, queued.ID); err == nil {
		t.Fatal("result of canceled job did not error")
	} else {
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusConflict || apiErr.Code != CodeConflict {
			t.Errorf("canceled result error = %v, want 409/%s", err, CodeConflict)
		}
	}
}

// TestHTTPReadinessDuringDrain: /readyz flips to 503 once the manager
// starts draining, while /healthz stays 200; new submissions get 503.
func TestHTTPReadinessDuringDrain(t *testing.T) {
	m := NewManager(Config{Workers: 1, run: stubRun(nil, nil)})
	ts := httptest.NewServer(NewHandler(m, httpserve.Options{}))
	defer ts.Close()

	if code, _ := getBody(t, ts.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz before drain = %d", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if code, _ := getBody(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz during drain = %d, want 503", code)
	}
	if code, _ := getBody(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Errorf("/healthz during drain = %d, want 200", code)
	}
	resp, _ := postJSON(t, ts.URL+"/jobs", `{"spec":{"n":150,"trials":1,"r_values":[6]}}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit during drain = %d, want 503", resp.StatusCode)
	}
}

// TestHTTPMetricsAndIntrospection: the PR 4 endpoints stay mounted on the
// combined mux and the progress view reflects live jobs.
func TestHTTPMetricsAndIntrospection(t *testing.T) {
	gate := make(chan struct{})
	ts, m := newTestServer(t, Config{Workers: 1, run: stubRun(nil, gate)})
	sub, _, err := m.Submit(testSpec(0), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, m, sub.ID)

	code, raw := getBody(t, ts.URL+"/progress")
	if code != http.StatusOK || !strings.Contains(string(raw), sub.ID) {
		t.Errorf("/progress = %d, %s", code, raw)
	}
	code, raw = getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK || !strings.Contains(string(raw), "netags_serve_jobs_running 1") {
		t.Errorf("/metrics = %d missing running gauge:\n%s", code, raw)
	}
	close(gate)
}

package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"netags/internal/experiment"
	"netags/internal/obs"
)

// Submission errors the HTTP layer maps onto status codes.
var (
	// ErrQueueFull: the bounded queue is at capacity — backpressure, the
	// client should retry after Retry-After seconds (429).
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrDraining: the manager is shutting down and accepts no new work (503).
	ErrDraining = errors.New("serve: server draining")
)

// JobState is the lifecycle of a job record.
type JobState string

// The job lifecycle: Queued → Running → one of Done/Failed/Canceled.
const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Config parameterizes a Manager. The zero value is usable: every field
// has a working default.
type Config struct {
	// QueueDepth bounds the jobs waiting for a worker (default 64). A full
	// queue rejects submissions with ErrQueueFull.
	QueueDepth int
	// Workers is the pool size — how many jobs execute concurrently
	// (default 2).
	Workers int
	// JobWorkers is the per-job experiment worker budget, the cap on
	// goroutines one job's sweep may use (default GOMAXPROCS / Workers,
	// minimum 1). Bounding it per job keeps one big sweep from starving
	// the pool; results are bit-identical at any budget.
	JobWorkers int
	// CacheCapacity bounds the result cache in entries (default 256;
	// negative = unbounded).
	CacheCapacity int
	// MaxJobs bounds retained job records; the oldest terminal records are
	// pruned beyond it (default 1024). Pruned results remain served from
	// the cache until evicted.
	MaxJobs int
	// CheckpointDir, when set, persists per-point checkpoints as NDJSON
	// files under it, so a killed process resumes its half-finished sweeps
	// on the next submission of the same spec. Empty = in-memory
	// checkpoints only (resume works within one process lifetime).
	CheckpointDir string
	// Tracer, if non-nil, receives every protocol run's event stream (wire
	// the server's obs.Collector/Ring here) plus the manager's own job
	// lifecycle events (obs.KindJob) — so /events shows serve activity
	// alongside sim activity. Must be concurrency-safe.
	Tracer obs.Tracer
	// Logger receives the manager's structured logs. nil discards them;
	// per-point logs are emitted at Debug, lifecycle transitions at Info,
	// rejections at Warn — so at the default Info level the per-point
	// execution path performs no logging work beyond one Enabled check.
	Logger *slog.Logger
	// TraceEventsPerJob bounds one job's lifecycle timeline (0 = default
	// 256 events: a verbatim head plus a ring of the most recent; negative
	// disables lifecycle tracing entirely — GET /jobs/{id}/trace answers
	// 404 and the per-point path skips the store).
	TraceEventsPerJob int
	// TraceJobs bounds how many job timelines are retained (0 = 1024).
	TraceJobs int
	// CheckpointTTL, when positive and CheckpointDir is set, purges
	// checkpoint NDJSON files left by earlier process lifetimes once they
	// go unreferenced for this long — on startup and every
	// CheckpointGCInterval. Zero disables the GC.
	CheckpointTTL time.Duration
	// CheckpointGCInterval is the purge cadence (0 = TTL/4, clamped to
	// [1min, 1h]).
	CheckpointGCInterval time.Duration

	// run overrides job execution in tests. nil means runSpecHooked. The
	// contract: call h.pointDone once per non-skipped point with its row,
	// return when the sweep is complete or the context is canceled. The
	// manager assembles the payload from the checkpointed rows afterwards.
	run func(ctx context.Context, spec JobSpec, workers int, h runHooks) error
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.JobWorkers <= 0 {
		c.JobWorkers = runtime.GOMAXPROCS(0) / c.Workers
		if c.JobWorkers < 1 {
			c.JobWorkers = 1
		}
	}
	if c.CacheCapacity == 0 {
		c.CacheCapacity = 256
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	if c.CheckpointGCInterval <= 0 && c.CheckpointTTL > 0 {
		c.CheckpointGCInterval = c.CheckpointTTL / 4
		if c.CheckpointGCInterval < time.Minute {
			c.CheckpointGCInterval = time.Minute
		}
		if c.CheckpointGCInterval > time.Hour {
			c.CheckpointGCInterval = time.Hour
		}
	}
	if c.run == nil {
		c.run = runSpecHooked
	}
	return c
}

// SubmitOptions are the per-submission execution knobs. None of them can
// change the result bytes, so none is part of the spec or its cache key.
type SubmitOptions struct {
	// Workers caps the job's experiment worker budget (0 or anything above
	// the configured JobWorkers clamps to JobWorkers).
	Workers int
	// Priority is the scheduling class ("" = interactive).
	Priority Priority
	// Client identifies the submitter for per-client fairness within a
	// priority class ("" = one shared anonymous client).
	Client string
}

// Job is one submitted sweep: a spec, its content-addressed id, and the
// execution state. All mutable fields are guarded by mu; done closes when
// the job reaches a terminal state.
type Job struct {
	// ID is the spec's content address — the cache key, the checkpoint key,
	// and the stream identity. Identical specs share one job (the in-flight
	// singleflight map).
	ID   string
	Spec JobSpec // normalized

	workers  int
	priority Priority
	client   string
	points   int    // sweep-axis length (the N of "point k/N")
	skip     []bool // checkpointed points to not recompute (resume)
	resumed  int    // how many points the checkpoint restored
	tracker  *experiment.Tracker
	ctx      context.Context
	cancel   context.CancelFunc
	done     chan struct{}

	mu        sync.Mutex
	state     JobState
	err       string
	dedup     int64
	submitted time.Time
	started   time.Time
	finished  time.Time
}

// State returns the job's current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// markRunning transitions Queued → Running; it reports false if the job is
// already terminal (canceled while queued).
func (j *Job) markRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	return true
}

// finish moves the job to a terminal state exactly once.
func (j *Job) finish(state JobState, errMsg string) bool {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return false
	}
	j.state = state
	j.err = errMsg
	j.finished = time.Now()
	j.mu.Unlock()
	j.cancel() // release the context either way
	close(j.done)
	return true
}

// JobStatus is the JSON view of a job served by GET /api/v1/jobs and
// GET /api/v1/jobs/{id}.
type JobStatus struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	Sweep string   `json:"sweep"`
	// Priority is the job's scheduling class.
	Priority Priority `json:"priority,omitempty"`
	// Cached marks a status synthesized for a cache hit with no live job
	// record (the result predates this submission).
	Cached bool `json:"cached,omitempty"`
	// Deduplicated counts later submissions collapsed onto this execution.
	Deduplicated int64  `json:"deduplicated,omitempty"`
	Error        string `json:"error,omitempty"`
	// ResumedPoints counts sweep points restored from a checkpoint instead
	// of recomputed — nonzero exactly when this submission resumed an
	// interrupted run.
	ResumedPoints int    `json:"resumed_points,omitempty"`
	SubmittedAt   string `json:"submitted_at,omitempty"`
	StartedAt     string `json:"started_at,omitempty"`
	FinishedAt    string `json:"finished_at,omitempty"`
	// Progress is the per-job tracker snapshot: completed/total work
	// items, per-point timing, throughput, ETA. On a resumed job the total
	// counts only the points actually being computed.
	Progress *experiment.TrackerSnapshot `json:"progress,omitempty"`
}

func rfc3339(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(time.RFC3339Nano)
}

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	st := JobStatus{
		ID: j.ID, State: j.state, Sweep: j.Spec.Sweep,
		Priority:     j.priority,
		Deduplicated: j.dedup, Error: j.err,
		ResumedPoints: j.resumed,
		SubmittedAt:   rfc3339(j.submitted),
		StartedAt:     rfc3339(j.started),
		FinishedAt:    rfc3339(j.finished),
	}
	j.mu.Unlock()
	snap := j.tracker.Snapshot()
	st.Progress = &snap
	return st
}

// Manager owns the scheduler, the worker pool, the in-flight singleflight
// map, the per-point checkpoint store, and the result cache. Construct with
// NewManager, stop with Shutdown.
type Manager struct {
	cfg   Config
	cache *Cache
	ckpt  *Checkpoints
	sched *schedQueue
	log   *slog.Logger
	trace *TraceStore // nil when lifecycle tracing is disabled
	slo   *sloHists
	http  *httpHists
	gcOff chan struct{} // closes to stop the checkpoint GC loop

	mu       sync.Mutex
	jobs     map[string]*Job // every retained record, by id (= spec key)
	inflight map[string]*Job // queued/running only — the singleflight map
	order    []string        // submission order for GET /jobs

	draining atomic.Bool

	wg        sync.WaitGroup
	closeOnce sync.Once
	closeErr  error

	executed atomic.Int64 // sweeps actually run to completion or failure
	deduped  atomic.Int64 // submissions joined onto an in-flight job
	rejected atomic.Int64 // queue-full rejections
	resumed  atomic.Int64 // points restored from checkpoints
	running  atomic.Int64 // jobs currently executing
}

// NewManager starts cfg.Workers pool goroutines (plus, when configured, a
// checkpoint-GC loop) and returns the manager.
func NewManager(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	m := &Manager{
		cfg:      cfg,
		cache:    NewCache(cfg.CacheCapacity),
		ckpt:     NewCheckpoints(cfg.CheckpointDir),
		sched:    newSchedQueue(cfg.QueueDepth),
		log:      cfg.Logger,
		slo:      newSLOHists(),
		http:     newHTTPHists(),
		gcOff:    make(chan struct{}),
		jobs:     make(map[string]*Job),
		inflight: make(map[string]*Job),
	}
	if cfg.TraceEventsPerJob >= 0 {
		m.trace = NewTraceStore(cfg.TraceEventsPerJob, cfg.TraceJobs)
	}
	if cfg.CheckpointTTL > 0 && cfg.CheckpointDir != "" {
		if n := m.ckpt.GC(cfg.CheckpointTTL); n > 0 {
			m.log.Info("checkpoint gc: purged stale files on startup",
				"purged", n, "ttl", cfg.CheckpointTTL.String())
		}
		go m.checkpointGCLoop()
	}
	m.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go m.worker()
	}
	return m
}

// checkpointGCLoop purges stale checkpoint files every GC interval until
// Shutdown.
func (m *Manager) checkpointGCLoop() {
	t := time.NewTicker(m.cfg.CheckpointGCInterval)
	defer t.Stop()
	for {
		select {
		case <-m.gcOff:
			return
		case <-t.C:
			if n := m.ckpt.GC(m.cfg.CheckpointTTL); n > 0 {
				m.log.Info("checkpoint gc: purged stale files",
					"purged", n, "ttl", m.cfg.CheckpointTTL.String())
			}
		}
	}
}

// Trace exposes the lifecycle trace store (nil when tracing is disabled).
func (m *Manager) Trace() *TraceStore { return m.trace }

// JobTrace renders job id's lifecycle timeline; ok is false when the job is
// untraced (unknown, pruned, or tracing disabled).
func (m *Manager) JobTrace(id string) (TraceTimeline, bool) {
	return m.trace.Timeline(id)
}

// emitJob records one lifecycle transition: into the bounded trace store,
// mirrored to the configured Tracer as an obs.KindJob event (so /events
// interleaves serve activity with sim activity), both skipped when
// disabled. Count carries k, Rounds carries n.
func (m *Manager) emitJob(id, stage string, class Priority, k, n int, detail string) {
	m.trace.Append(id, TraceEvent{Stage: stage, Class: class, K: k, N: n, Detail: detail})
	if t := m.cfg.Tracer; t != nil {
		t.Trace(obs.Event{
			Kind: obs.KindJob, Protocol: obs.ProtoServe, Phase: stage,
			Job: id, Count: k, Rounds: n,
		})
	}
}

// Cache exposes the result cache (for /metrics wiring and tests).
func (m *Manager) Cache() *Cache { return m.cache }

// Checkpoints exposes the per-point checkpoint store (stream handler,
// tests).
func (m *Manager) Checkpoints() *Checkpoints { return m.ckpt }

// Accepting reports whether new submissions are admitted — the /readyz
// source; it flips false at the start of a graceful drain.
func (m *Manager) Accepting() bool {
	return !m.draining.Load()
}

// SubmitOutcome tells a client what its POST did.
type SubmitOutcome string

// Submission outcomes: served from cache, newly queued, or joined onto an
// already queued/running duplicate.
const (
	OutcomeCached  SubmitOutcome = "cached"
	OutcomeQueued  SubmitOutcome = "queued"
	OutcomeRunning SubmitOutcome = "running"
)

// Submit normalizes and validates the spec, then either serves it from the
// cache (OutcomeCached), joins it onto an in-flight duplicate
// (OutcomeQueued/OutcomeRunning, singleflight), or enqueues a new job under
// opts' priority class and client. A job whose spec matches an interrupted
// earlier run restores that run's checkpoint: the completed points are
// skipped (exactly once per point) and the status reports them as
// ResumedPoints. Errors: validation errors, ErrQueueFull (backpressure),
// ErrDraining (shutdown).
func (m *Manager) Submit(spec JobSpec, opts SubmitOptions) (JobStatus, SubmitOutcome, error) {
	norm := spec.Normalized()
	if err := norm.Validate(); err != nil {
		return JobStatus{}, "", err
	}
	if !opts.Priority.Valid() {
		return JobStatus{}, "", fmt.Errorf("serve: unknown priority %q", opts.Priority)
	}
	key, err := norm.Key()
	if err != nil {
		return JobStatus{}, "", err
	}
	workers := opts.Workers
	if workers <= 0 || workers > m.cfg.JobWorkers {
		workers = m.cfg.JobWorkers
	}

	m.mu.Lock()
	defer m.mu.Unlock()

	// Content-addressed fast path: the result already exists, byte-exact.
	// No lifecycle transition happens, so nothing lands in the trace.
	if _, ok := m.cache.Get(key); ok {
		m.log.Debug("submit served from cache", "job", key, "sweep", norm.Sweep)
		if j, ok := m.jobs[key]; ok {
			return j.Status(), OutcomeCached, nil
		}
		return JobStatus{ID: key, State: StateDone, Sweep: norm.Sweep, Cached: true}, OutcomeCached, nil
	}

	// Singleflight: a queued or running duplicate absorbs this submission.
	// A terminal job still lingering in the map (finish → settle is not
	// atomic with our lock) must not absorb it — its run is already over.
	if j, ok := m.inflight[key]; ok && !j.State().Terminal() {
		m.deduped.Add(1)
		j.mu.Lock()
		j.dedup++
		dedup := j.dedup
		state := j.state
		j.mu.Unlock()
		m.emitJob(key, StageReceived, "", 0, 0, "")
		m.emitJob(key, StageDeduplicated, "", int(dedup), 0, "")
		m.log.Debug("submit deduplicated onto in-flight job",
			"job", key, "duplicates", dedup, "state", string(state))
		out := OutcomeQueued
		if state == StateRunning {
			out = OutcomeRunning
		}
		return j.Status(), out, nil
	}

	if m.draining.Load() {
		m.emitJob(key, StageReceived, "", 0, 0, "")
		m.emitJob(key, StageRejected, "", 0, 0, CodeDraining)
		m.log.Warn("submit rejected: draining", "job", key)
		return JobStatus{}, "", ErrDraining
	}

	points := norm.PointCount()
	skip, resumed := m.ckpt.Restore(key, points)

	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		ID: key, Spec: norm, workers: workers,
		priority: opts.Priority.normalize(),
		client:   opts.Client,
		points:   points,
		skip:     skip, resumed: resumed,
		tracker: experiment.NewTracker(),
		ctx:     ctx, cancel: cancel,
		done:      make(chan struct{}),
		state:     StateQueued,
		submitted: time.Now(),
	}
	// The tracker denominator counts only the work actually ahead: resumed
	// points contribute no items.
	total := norm.TotalItems()
	if points > 0 {
		total -= resumed * (total / points)
	}
	j.tracker.SetTotal(total)

	m.emitJob(key, StageReceived, j.priority, 0, points, "")
	if err := m.sched.Push(j); err != nil {
		cancel()
		if errors.Is(err, ErrQueueFull) {
			m.rejected.Add(1)
			m.emitJob(key, StageRejected, j.priority, 0, 0, CodeQueueFull)
			m.log.Warn("submit rejected: queue full",
				"job", key, "class", string(j.priority), "client", j.client,
				"queue_depth", m.cfg.QueueDepth)
		}
		return JobStatus{}, "", err
	}
	if resumed > 0 {
		m.emitJob(key, StageCheckpointRestored, j.priority, resumed, points, "")
	}
	m.emitJob(key, StageAdmitted, j.priority, 0, points, "")
	m.log.Info("job admitted",
		"job", key, "sweep", norm.Sweep, "class", string(j.priority),
		"client", j.client, "points", points, "resumed_points", resumed)
	m.resumed.Add(int64(resumed))
	if _, known := m.jobs[key]; !known {
		m.order = append(m.order, key)
	}
	m.jobs[key] = j
	m.inflight[key] = j
	m.pruneLocked()
	return j.Status(), OutcomeQueued, nil
}

// pruneLocked drops the oldest terminal job records beyond MaxJobs, along
// with their checkpoints. Their results stay available through the cache
// until LRU eviction.
func (m *Manager) pruneLocked() {
	if len(m.jobs) <= m.cfg.MaxJobs {
		return
	}
	kept := m.order[:0]
	excess := len(m.jobs) - m.cfg.MaxJobs
	for _, id := range m.order {
		j, ok := m.jobs[id]
		if !ok {
			continue
		}
		if excess > 0 && j.State().Terminal() {
			delete(m.jobs, id)
			m.ckpt.Forget(id)
			m.trace.Forget(id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	m.order = kept
}

// worker is one pool goroutine: it pops jobs until the scheduler closes.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		j, ok := m.sched.Pop()
		if !ok {
			return
		}
		m.runJob(j)
	}
}

// runJob executes one job and settles its terminal state. Every computed
// point is checkpointed as it completes; on success the payload is
// assembled from the full checkpoint row set (restored + fresh) — one
// assembly path, so resumed and uninterrupted runs emit identical bytes.
func (m *Manager) runJob(j *Job) {
	queueWait := time.Since(j.submitted)
	if j.ctx.Err() != nil || !j.markRunning() {
		// Canceled while queued (DELETE or drain): settle and move on.
		if j.finish(StateCanceled, "canceled before execution") {
			m.finishJobObs(j, StateCanceled, "canceled before execution")
		}
		m.ckpt.Release(j.ID)
		m.settle(j)
		return
	}
	m.slo.observeQueueWait(j.priority, queueWait)
	m.emitJob(j.ID, StageScheduled, j.priority, int(ms(queueWait)), 0, "")
	m.emitJob(j.ID, StageRunning, j.priority, 0, 0, "")
	m.log.Info("job running",
		"job", j.ID, "class", string(j.priority), "queue_wait_ms", ms(queueWait),
		"workers", j.workers)
	m.running.Add(1)
	// Anchor the tracker's rate clock here: queue wait (and, on a resumed
	// job, the time before resubmission) must not dilute the /progress ETA.
	j.tracker.MarkRunStart()
	err := m.cfg.run(j.ctx, j.Spec, j.workers, runHooks{
		observe: j.tracker.Wrap(nil),
		tracer:  m.cfg.Tracer,
		skip:    j.skip,
		pointDone: func(rec PointRecord) {
			m.pointCompleted(j, rec)
		},
	})
	m.running.Add(-1)
	m.executed.Add(1)
	switch {
	case err == nil:
		m.completeJob(j)
	case j.ctx.Err() != nil:
		// The checkpoint keeps everything completed so far; the next
		// submission of this spec resumes from it.
		m.ckpt.Release(j.ID)
		msg := fmt.Sprintf("canceled: %v", err)
		if j.finish(StateCanceled, msg) {
			m.finishJobObs(j, StateCanceled, msg)
		}
	default:
		m.ckpt.Release(j.ID)
		if j.finish(StateFailed, err.Error()) {
			m.finishJobObs(j, StateFailed, err.Error())
		}
	}
	m.settle(j)
}

// pointCompleted is the per-point hot path: checkpoint the record, observe
// its compute time, and — only when the respective sink is enabled — trace
// and log the completion. With tracing disabled and logging at the default
// Info level this adds zero allocations over the checkpoint append itself
// (pinned by BenchmarkServePointDoneDisabled).
func (m *Manager) pointCompleted(j *Job, rec PointRecord) {
	seq, stored := m.ckpt.Append(j.ID, rec)
	if !stored {
		return
	}
	m.slo.observePoint(rec.ElapsedMS)
	if m.trace != nil {
		m.trace.Append(j.ID, TraceEvent{Stage: StagePointCompleted, K: seq, N: j.points})
	}
	if t := m.cfg.Tracer; t != nil {
		t.Trace(obs.Event{
			Kind: obs.KindJob, Protocol: obs.ProtoServe, Phase: StagePointCompleted,
			Job: j.ID, Count: seq, Rounds: j.points,
		})
	}
	if m.log.Enabled(context.Background(), slog.LevelDebug) {
		m.log.LogAttrs(context.Background(), slog.LevelDebug, "point completed",
			slog.String("job", j.ID), slog.Int("seq", seq), slog.Int("points", j.points),
			slog.String("label", rec.Label), slog.Float64("elapsed_ms", rec.ElapsedMS))
	}
}

// finishJobObs records a job's terminal transition: the end-to-end and
// execution SLO histograms, the terminal trace/ring event (stage drained
// when a shutdown interrupted the job), and the terminal log line.
func (m *Manager) finishJobObs(j *Job, state JobState, detail string) {
	j.mu.Lock()
	submitted, started, finished := j.submitted, j.started, j.finished
	j.mu.Unlock()
	if finished.IsZero() {
		finished = time.Now()
	}
	e2e := finished.Sub(submitted)
	m.slo.observeEndToEnd(e2e)
	var exec time.Duration
	if !started.IsZero() {
		exec = finished.Sub(started)
		m.slo.observeExec(exec)
	}
	stage := StageCompleted
	switch state {
	case StateFailed:
		stage = StageFailed
	case StateCanceled:
		stage = StageCanceled
		if m.draining.Load() {
			stage = StageDrained
		}
	}
	m.emitJob(j.ID, stage, j.priority, int(ms(e2e)), 0, detail)
	level := slog.LevelInfo
	if state == StateFailed {
		level = slog.LevelError
	}
	m.log.LogAttrs(context.Background(), level, "job "+stage,
		slog.String("job", j.ID), slog.String("class", string(j.priority)),
		slog.Int64("e2e_ms", ms(e2e)), slog.Int64("exec_ms", ms(exec)),
		slog.String("detail", detail))
}

// completeJob assembles and caches the final payload from the job's
// complete checkpoint row set, then retires the checkpoint file.
func (m *Manager) completeJob(j *Job) {
	rows, ok := m.ckpt.Rows(j.ID, j.Spec.PointCount())
	if !ok {
		m.ckpt.Release(j.ID)
		const msg = "sweep finished with missing points in checkpoint"
		if j.finish(StateFailed, msg) {
			m.finishJobObs(j, StateFailed, msg)
		}
		return
	}
	payload, err := assemblePayload(j.ID, j.Spec, rows)
	if err != nil {
		m.ckpt.Release(j.ID)
		if j.finish(StateFailed, err.Error()) {
			m.finishJobObs(j, StateFailed, err.Error())
		}
		return
	}
	m.cache.Put(j.ID, payload)
	m.ckpt.Finish(j.ID)
	if j.finish(StateDone, "") {
		m.finishJobObs(j, StateDone, "")
	}
}

// settle removes a terminal job from the singleflight map.
func (m *Manager) settle(j *Job) {
	m.mu.Lock()
	if m.inflight[j.ID] == j {
		delete(m.inflight, j.ID)
	}
	m.mu.Unlock()
}

// Job returns the record for id. When the record was pruned but the result
// is still cached, a synthetic done status is returned.
func (m *Manager) Job(id string) (JobStatus, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if ok {
		return j.Status(), true
	}
	if _, ok := m.cache.Peek(id); ok {
		return JobStatus{ID: id, State: StateDone, Cached: true}, true
	}
	return JobStatus{}, false
}

// jobRecord returns the live record for id (nil when pruned or unknown).
func (m *Manager) jobRecord(id string) *Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.jobs[id]
}

// Jobs lists every retained job record in submission order.
func (m *Manager) Jobs() []JobStatus {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		if j, ok := m.jobs[id]; ok {
			jobs = append(jobs, j)
		}
	}
	m.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	return out
}

// Result returns the rendered payload for id. ok is false when the job is
// unknown; a known-but-unfinished or evicted-result job returns ok true
// with a nil payload and its current status.
func (m *Manager) Result(id string) ([]byte, JobStatus, bool) {
	st, ok := m.Job(id)
	if !ok {
		return nil, JobStatus{}, false
	}
	if st.State != StateDone {
		return nil, st, true
	}
	payload, _ := m.cache.Peek(id)
	return payload, st, true
}

// Cancel cancels the job with the given id: a queued job settles
// immediately, a running one has its context canceled and settles when the
// sweep unwinds. Terminal jobs are left untouched. The job's checkpoint
// survives — resubmitting the spec resumes from it.
func (m *Manager) Cancel(id string) (JobStatus, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return JobStatus{}, false
	}
	if j.State() == StateQueued {
		if j.finish(StateCanceled, "canceled by request") {
			m.finishJobObs(j, StateCanceled, "canceled by request")
			m.ckpt.Release(id)
			m.settle(j)
		}
		return j.Status(), true
	}
	m.log.Info("job cancel requested", "job", id, "state", string(j.State()))
	j.cancel()
	return j.Status(), true
}

// Shutdown drains the manager gracefully: new submissions are rejected
// (Accepting flips false, /readyz answers 503), queued jobs are canceled,
// and in-flight jobs get until ctx's deadline to complete before their
// contexts are canceled. Checkpoints of interrupted jobs survive for the
// next process. It blocks until the pool exits and is idempotent:
// concurrent and repeated calls all wait for the one drain and return the
// same error (the ctx error when the deadline forced cancellation).
func (m *Manager) Shutdown(ctx context.Context) error {
	m.closeOnce.Do(func() {
		m.draining.Store(true)
		close(m.gcOff)
		m.log.Info("drain started", "queued", m.sched.Len(), "running", m.running.Load())
		m.mu.Lock()
		// Reject everything still waiting for a worker. The records stay
		// (clients polling GET /jobs/{id} see "canceled"), the scheduler
		// entries are skipped by the workers.
		for _, j := range m.inflight {
			if j.State() == StateQueued {
				if j.finish(StateCanceled, "rejected: server shutting down") {
					m.finishJobObs(j, StateCanceled, "rejected: server shutting down")
				}
			}
		}
		m.sched.Close()
		m.mu.Unlock()

		drained := make(chan struct{})
		go func() {
			m.wg.Wait()
			close(drained)
		}()
		select {
		case <-drained:
		case <-ctx.Done():
			// Timeout: cancel in-flight jobs and wait for the unwind.
			m.mu.Lock()
			for _, j := range m.inflight {
				j.cancel()
			}
			m.mu.Unlock()
			<-drained
			m.closeErr = ctx.Err()
		}
		// Settle singleflight bookkeeping for skipped queue entries.
		m.mu.Lock()
		for id, j := range m.inflight {
			if j.State().Terminal() {
				m.ckpt.Release(id)
				delete(m.inflight, id)
			}
		}
		m.mu.Unlock()
		m.log.Info("drain finished", "forced", m.closeErr != nil)
	})
	return m.closeErr
}

// ManagerStats is a point-in-time view of the queue and pool counters.
type ManagerStats struct {
	Executed      int64 `json:"executed"`
	Deduplicated  int64 `json:"deduplicated"`
	Rejected      int64 `json:"rejected"`
	ResumedPoints int64 `json:"resumed_points"`
	Running       int64 `json:"running"`
	QueueLen      int   `json:"queue_len"`
	QueueDepth    int   `json:"queue_depth"`
	Jobs          int   `json:"jobs"`
}

// Stats snapshots the manager counters.
func (m *Manager) Stats() ManagerStats {
	m.mu.Lock()
	jobs := len(m.jobs)
	m.mu.Unlock()
	return ManagerStats{
		Executed:      m.executed.Load(),
		Deduplicated:  m.deduped.Load(),
		Rejected:      m.rejected.Load(),
		ResumedPoints: m.resumed.Load(),
		Running:       m.running.Load(),
		QueueLen:      m.sched.Len(),
		QueueDepth:    m.cfg.QueueDepth,
		Jobs:          jobs,
	}
}

// WriteProm appends the cache, queue, and checkpoint counters in Prometheus
// text exposition format — wired into /metrics via httpserve's
// ExtraMetrics.
func (m *Manager) WriteProm(w io.Writer) {
	m.cache.WriteProm(w)
	s := m.Stats()
	promCounter(w, "netags_serve_jobs_executed_total", "Sweeps actually executed (cache misses that ran).", s.Executed)
	promCounter(w, "netags_serve_jobs_deduplicated_total", "Submissions collapsed onto an in-flight duplicate (singleflight).", s.Deduplicated)
	promCounter(w, "netags_serve_jobs_rejected_total", "Submissions rejected by queue backpressure.", s.Rejected)
	promCounter(w, "netags_serve_points_resumed_total", "Sweep points restored from checkpoints instead of recomputed.", s.ResumedPoints)
	promGauge(w, "netags_serve_jobs_running", "Jobs currently executing.", float64(s.Running))
	promGauge(w, "netags_serve_queue_len", "Jobs waiting for a worker.", float64(s.QueueLen))
	promGauge(w, "netags_serve_jobs_retained", "Job records retained.", float64(s.Jobs))
	cs := m.ckpt.Stats()
	promGauge(w, "netags_serve_checkpoint_jobs", "Jobs with checkpoint state retained.", float64(cs.Jobs))
	promGauge(w, "netags_serve_checkpoint_points", "Sweep points currently checkpointed.", float64(cs.Points))
	promCounter(w, "netags_serve_checkpoint_disk_errors_total", "Checkpoint disk writes that failed (degraded to memory-only).", cs.DiskErrors)
	promCounter(w, "netags_serve_checkpoint_purged_total", "Stale checkpoint files removed by the TTL garbage collector.", cs.PurgedFiles)

	// Per-class queue depth: both classes always present so dashboards can
	// plot a flat zero instead of a gap.
	classLens := m.sched.ClassLens()
	fmt.Fprintf(w, "# HELP netags_serve_queue_class_len Jobs waiting for a worker, per priority class.\n# TYPE netags_serve_queue_class_len gauge\n")
	for _, p := range []Priority{PriorityInteractive, PriorityBulk} {
		fmt.Fprintf(w, "netags_serve_queue_class_len{class=%q} %d\n", string(p), classLens[p])
	}
	// Per-client in-queue counts (fairness visibility). Series exist only
	// while the client has queued work, so cardinality is bounded by the
	// queue capacity.
	if clients := m.sched.ClientLens(); len(clients) > 0 {
		fmt.Fprintf(w, "# HELP netags_serve_queue_client_len Jobs waiting for a worker, per priority class and client.\n# TYPE netags_serve_queue_client_len gauge\n")
		for _, c := range clients {
			client := c.Client
			if client == "" {
				client = "anonymous"
			}
			fmt.Fprintf(w, "netags_serve_queue_client_len{class=%q,client=%q} %d\n", string(c.Class), client, c.N)
		}
	}
	if m.trace != nil {
		traceJobs, traceEvents := m.trace.Stats()
		promGauge(w, "netags_serve_trace_jobs", "Job lifecycle timelines retained in the trace store.", float64(traceJobs))
		promGauge(w, "netags_serve_trace_events", "Lifecycle trace events retained across all timelines.", float64(traceEvents))
		promCounter(w, "netags_serve_trace_dropped_total", "Lifecycle trace events lost to per-job tail overwrite or timeline eviction.", m.trace.Dropped())
	}
	m.slo.WriteProm(w)
	m.http.WriteProm(w)
}

// ProgressJSON renders the live view of every non-terminal job — the
// /progress source when the serve layer is mounted.
func (m *Manager) ProgressJSON() ([]byte, error) {
	m.mu.Lock()
	live := make([]*Job, 0, len(m.inflight))
	for _, id := range m.order {
		if j, ok := m.inflight[id]; ok {
			live = append(live, j)
		}
	}
	m.mu.Unlock()
	type jobProgress struct {
		ID       string                      `json:"id"`
		State    JobState                    `json:"state"`
		Sweep    string                      `json:"sweep"`
		Progress *experiment.TrackerSnapshot `json:"progress"`
	}
	out := struct {
		Active bool          `json:"active"`
		Jobs   []jobProgress `json:"jobs"`
	}{Jobs: make([]jobProgress, 0, len(live))}
	for _, j := range live {
		snap := j.tracker.Snapshot()
		st := j.State()
		if st == StateRunning {
			out.Active = true
		}
		out.Jobs = append(out.Jobs, jobProgress{ID: j.ID, State: st, Sweep: j.Spec.Sweep, Progress: &snap})
	}
	return appendNewlineJSON(out)
}

func appendNewlineJSON(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"netags/internal/experiment"
)

// testSpec returns a tiny valid range spec; vary v to vary the key.
func testSpec(v int) JobSpec {
	return JobSpec{N: 100 + v, Trials: 1, RValues: []float64{6}}
}

// emitStubPoints checkpoints one synthetic deterministic row per
// non-skipped point, as the real runner would.
func emitStubPoints(spec JobSpec, h runHooks) {
	n := spec.Normalized()
	for i := 0; i < n.PointCount(); i++ {
		if h.skip != nil && i < len(h.skip) && h.skip[i] {
			continue
		}
		if h.pointDone != nil {
			h.pointDone(PointRecord{
				Index: i,
				Label: n.PointLabel(i),
				Row:   json.RawMessage(fmt.Sprintf(`{"point":%d}`, i)),
			})
		}
	}
}

// stubRun builds a run override that emits a synthetic row per point after
// optionally blocking on a gate channel.
func stubRun(executions *atomic.Int64, gate <-chan struct{}) func(context.Context, JobSpec, int, runHooks) error {
	return func(ctx context.Context, spec JobSpec, workers int, h runHooks) error {
		if executions != nil {
			executions.Add(1)
		}
		if gate != nil {
			select {
			case <-gate:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		if h.observe != nil {
			h.observe(experiment.Progress{Sweep: spec.Sweep, Trial: 0, Trials: spec.Trials, Completed: 1, Total: spec.TotalItems()})
		}
		emitStubPoints(spec, h)
		return nil
	}
}

func waitRunning(t *testing.T, m *Manager, id string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st, ok := m.Job(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if st.State == StateRunning {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never started", id)
}

func waitTerminal(t *testing.T, m *Manager, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st, ok := m.Job(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never settled", id)
	return JobStatus{}
}

func TestManagerLifecycle(t *testing.T) {
	var execs atomic.Int64
	m := NewManager(Config{Workers: 2, run: stubRun(&execs, nil)})
	defer m.Shutdown(context.Background())

	st, outcome, err := m.Submit(testSpec(0), SubmitOptions{})
	if err != nil || outcome != OutcomeQueued {
		t.Fatalf("Submit = %v, %v, %v", st, outcome, err)
	}
	final := waitTerminal(t, m, st.ID)
	if final.State != StateDone {
		t.Fatalf("final state %s (%s)", final.State, final.Error)
	}
	payload, _, ok := m.Result(st.ID)
	if !ok || payload == nil {
		t.Fatal("result missing after done")
	}

	// Resubmission: a pure cache hit, no second execution.
	st2, outcome2, err := m.Submit(testSpec(0), SubmitOptions{})
	if err != nil || outcome2 != OutcomeCached || st2.ID != st.ID {
		t.Fatalf("resubmit = %v, %v, %v", st2, outcome2, err)
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("executions = %d, want 1", got)
	}
}

// TestManagerSingleflight: concurrent duplicate submissions collapse onto
// one execution; every submitter observes the same job id and payload.
func TestManagerSingleflight(t *testing.T) {
	var execs atomic.Int64
	gate := make(chan struct{})
	m := NewManager(Config{Workers: 2, run: stubRun(&execs, gate)})
	defer m.Shutdown(context.Background())

	const submitters = 16
	ids := make([]string, submitters)
	var wg sync.WaitGroup
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, _, err := m.Submit(testSpec(0), SubmitOptions{})
			if err != nil {
				t.Errorf("submitter %d: %v", i, err)
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	close(gate)

	for _, id := range ids[1:] {
		if id != ids[0] {
			t.Fatalf("submitters saw different ids: %s vs %s", id, ids[0])
		}
	}
	waitTerminal(t, m, ids[0])
	if got := execs.Load(); got != 1 {
		t.Fatalf("executions = %d, want 1 (singleflight)", got)
	}
	if s := m.Stats(); s.Deduplicated != submitters-1 {
		t.Errorf("deduplicated = %d, want %d", s.Deduplicated, submitters-1)
	}
	p1, _, _ := m.Result(ids[0])
	p2, _, _ := m.Result(ids[0])
	if string(p1) != string(p2) || p1 == nil {
		t.Error("payload unstable across reads")
	}
}

// TestManagerBackpressure: a full queue rejects with ErrQueueFull and
// counts the rejection.
func TestManagerBackpressure(t *testing.T) {
	gate := make(chan struct{})
	m := NewManager(Config{Workers: 1, QueueDepth: 1, run: stubRun(nil, gate)})
	defer func() { close(gate); m.Shutdown(context.Background()) }()

	// First job occupies the worker, second fills the queue slot; keep
	// submitting distinct specs until the queue is provably full.
	var err error
	for i := 0; i < 8; i++ {
		_, _, err = m.Submit(testSpec(i), SubmitOptions{})
		if err != nil {
			break
		}
	}
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("expected ErrQueueFull, got %v", err)
	}
	if s := m.Stats(); s.Rejected == 0 {
		t.Error("rejection not counted")
	}
}

// TestManagerCancelQueued: canceling a queued job settles it without
// execution.
func TestManagerCancelQueued(t *testing.T) {
	gate := make(chan struct{})
	var execs atomic.Int64
	m := NewManager(Config{Workers: 1, QueueDepth: 4, run: stubRun(&execs, gate)})
	defer m.Shutdown(context.Background())

	blocker, _, err := m.Submit(testSpec(0), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	queued, _, err := m.Submit(testSpec(1), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st, ok := m.Cancel(queued.ID)
	if !ok || st.State != StateCanceled {
		t.Fatalf("cancel queued = %v, %v", st, ok)
	}
	close(gate)
	waitTerminal(t, m, blocker.ID)
	waitTerminal(t, m, queued.ID)
	if got := execs.Load(); got != 1 {
		t.Errorf("canceled job executed (execs = %d)", got)
	}
	// A canceled job's slot is free again: resubmitting re-queues it.
	st2, outcome, err := m.Submit(testSpec(1), SubmitOptions{})
	if err != nil || outcome != OutcomeQueued {
		t.Fatalf("resubmit after cancel = %v, %v, %v", st2, outcome, err)
	}
	waitTerminal(t, m, st2.ID)
}

// TestManagerCancelRunning: canceling a running job cancels its context
// and the job settles as canceled.
func TestManagerCancelRunning(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	m := NewManager(Config{Workers: 1, run: stubRun(nil, gate)})
	defer m.Shutdown(context.Background())

	st, _, err := m.Submit(testSpec(0), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until it is actually running.
	deadline := time.Now().Add(5 * time.Second)
	for {
		cur, _ := m.Job(st.ID)
		if cur.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, ok := m.Cancel(st.ID); !ok {
		t.Fatal("cancel failed")
	}
	final := waitTerminal(t, m, st.ID)
	if final.State != StateCanceled {
		t.Fatalf("state after cancel = %s", final.State)
	}
	if _, _, ok := m.Result(st.ID); !ok {
		t.Fatal("canceled job record gone")
	}
}

// TestManagerFailedJobNotCached: failures are not memoized — a
// resubmission retries.
func TestManagerFailedJobNotCached(t *testing.T) {
	var attempts atomic.Int64
	m := NewManager(Config{Workers: 1, run: func(ctx context.Context, spec JobSpec, workers int, h runHooks) error {
		if attempts.Add(1) == 1 {
			return errors.New("transient failure")
		}
		emitStubPoints(spec, h)
		return nil
	}})
	defer m.Shutdown(context.Background())

	st, _, err := m.Submit(testSpec(0), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if final := waitTerminal(t, m, st.ID); final.State != StateFailed ||
		!strings.Contains(final.Error, "transient failure") {
		t.Fatalf("first attempt = %+v", final)
	}
	st2, outcome, err := m.Submit(testSpec(0), SubmitOptions{})
	if err != nil || outcome != OutcomeQueued {
		t.Fatalf("resubmit after failure = %v %v", outcome, err)
	}
	if final := waitTerminal(t, m, st2.ID); final.State != StateDone {
		t.Fatalf("retry = %+v", final)
	}
	if attempts.Load() != 2 {
		t.Errorf("attempts = %d, want 2", attempts.Load())
	}
}

// TestManagerShutdownGraceful is the satellite's first case: an in-flight
// job completes within the timeout and shutdown reports success.
func TestManagerShutdownGraceful(t *testing.T) {
	gate := make(chan struct{})
	m := NewManager(Config{Workers: 1, run: stubRun(nil, gate)})
	st, _, err := m.Submit(testSpec(0), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, m, st.ID)
	// Release the job shortly after the drain begins.
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(gate)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown errored: %v", err)
	}
	if final, _ := m.Job(st.ID); final.State != StateDone {
		t.Errorf("in-flight job state after drain = %s, want done", final.State)
	}
}

// TestManagerShutdownTimeout: a job that outlives the timeout is canceled,
// and the deadline error surfaces.
func TestManagerShutdownTimeout(t *testing.T) {
	gate := make(chan struct{}) // never released: the job blocks until canceled
	defer close(gate)
	m := NewManager(Config{Workers: 1, run: stubRun(nil, gate)})
	st, _, err := m.Submit(testSpec(0), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, m, st.ID)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := m.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced shutdown error = %v, want deadline exceeded", err)
	}
	if final, _ := m.Job(st.ID); final.State != StateCanceled {
		t.Errorf("in-flight job state after forced drain = %s, want canceled", final.State)
	}
}

// TestManagerShutdownRejectsQueued: queued jobs are rejected (canceled)
// at drain start and new submissions get ErrDraining.
func TestManagerShutdownRejectsQueued(t *testing.T) {
	gate := make(chan struct{})
	m := NewManager(Config{Workers: 1, QueueDepth: 4, run: stubRun(nil, gate)})

	running, _, err := m.Submit(testSpec(0), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, m, running.ID)
	queued, _, err := m.Submit(testSpec(1), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Accepting() {
		t.Fatal("manager not accepting before drain")
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(gate)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if m.Accepting() {
		t.Error("manager still accepting after drain")
	}
	if st, _ := m.Job(queued.ID); st.State != StateCanceled ||
		!strings.Contains(st.Error, "shutting down") {
		t.Errorf("queued job after drain = %+v, want canceled/rejected", st)
	}
	if st, _ := m.Job(running.ID); st.State != StateDone {
		t.Errorf("running job after drain = %s, want done", st.State)
	}
	if _, _, err := m.Submit(testSpec(2), SubmitOptions{}); !errors.Is(err, ErrDraining) {
		t.Errorf("submit during/after drain = %v, want ErrDraining", err)
	}
}

// TestManagerShutdownIdempotentConcurrent is the satellite's last case:
// many concurrent Shutdown calls all complete and agree on the error.
func TestManagerShutdownIdempotentConcurrent(t *testing.T) {
	var execs atomic.Int64
	m := NewManager(Config{Workers: 2, run: stubRun(&execs, nil)})
	if _, _, err := m.Submit(testSpec(0), SubmitOptions{}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	const callers = 8
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = m.Shutdown(ctx)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != errs[0] {
			t.Errorf("caller %d error %v differs from %v", i, err, errs[0])
		}
	}
	// And again, sequentially: still the same answer, no panic on the
	// closed queue.
	if err := m.Shutdown(ctx); err != errs[0] {
		t.Errorf("late Shutdown = %v, want %v", err, errs[0])
	}
}

// TestManagerPrune: terminal records beyond MaxJobs are pruned; their
// results stay served from the cache as synthetic statuses.
func TestManagerPrune(t *testing.T) {
	m := NewManager(Config{Workers: 1, MaxJobs: 2, run: stubRun(nil, nil)})
	defer m.Shutdown(context.Background())
	var ids []string
	for i := 0; i < 4; i++ {
		st, _, err := m.Submit(testSpec(i), SubmitOptions{})
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, m, st.ID)
		ids = append(ids, st.ID)
	}
	if got := len(m.Jobs()); got > 2 {
		t.Errorf("retained %d records, want <= 2", got)
	}
	// The pruned job's result is still addressable.
	st, ok := m.Job(ids[0])
	if !ok || st.State != StateDone || !st.Cached {
		t.Errorf("pruned job status = %+v, %v", st, ok)
	}
	if payload, _, ok := m.Result(ids[0]); !ok || payload == nil {
		t.Error("pruned job result gone")
	}
}

// TestManagerProgressJSON: the live view lists queued and running jobs
// with tracker snapshots.
func TestManagerProgressJSON(t *testing.T) {
	gate := make(chan struct{})
	m := NewManager(Config{Workers: 1, QueueDepth: 4, run: stubRun(nil, gate)})
	defer func() { close(gate); m.Shutdown(context.Background()) }()
	if _, _, err := m.Submit(testSpec(0), SubmitOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Submit(testSpec(1), SubmitOptions{}); err != nil {
		t.Fatal(err)
	}
	b, err := m.ProgressJSON()
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	for _, want := range []string{`"jobs":[`, `"state"`, `"progress"`} {
		if !strings.Contains(s, want) {
			t.Errorf("progress JSON missing %s: %s", want, s)
		}
	}
}

// TestManagerWorkersClamp: the per-job budget clamps to the configured cap.
func TestManagerWorkersClamp(t *testing.T) {
	got := make(chan int, 1)
	m := NewManager(Config{Workers: 1, JobWorkers: 3, run: func(ctx context.Context, spec JobSpec, workers int, h runHooks) error {
		got <- workers
		emitStubPoints(spec, h)
		return nil
	}})
	defer m.Shutdown(context.Background())
	st, _, err := m.Submit(testSpec(0), SubmitOptions{Workers: 100})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, st.ID)
	if w := <-got; w != 3 {
		t.Errorf("worker budget = %d, want clamp to 3", w)
	}
}

func TestManagerStatsAndProm(t *testing.T) {
	m := NewManager(Config{Workers: 1, run: stubRun(nil, nil)})
	defer m.Shutdown(context.Background())
	st, _, err := m.Submit(testSpec(0), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, st.ID)
	var sb strings.Builder
	m.WriteProm(&sb)
	out := sb.String()
	for _, want := range []string{
		"netags_serve_cache_hits_total",
		"netags_serve_jobs_executed_total 1",
		"netags_serve_queue_len 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q:\n%s", want, out)
		}
	}
	if s := m.Stats(); s.Executed != 1 || s.QueueDepth == 0 {
		t.Errorf("stats = %+v", s)
	}
}

// TestManagerRealSweepDeterminism runs a real (tiny) sweep through the
// manager and checks the payload is byte-identical to a direct runSpec
// call — the service layer adds queueing and caching, never different
// bytes. It also pins worker-budget independence at the service level.
func TestManagerRealSweepDeterminism(t *testing.T) {
	spec := JobSpec{N: 120, Trials: 2, RValues: []float64{4, 8}, Seed: 7}
	direct, err := runSpec(context.Background(), spec, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	direct2, err := runSpec(context.Background(), spec, 3, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(direct) != string(direct2) {
		t.Fatal("runSpec not worker-count independent")
	}

	m := NewManager(Config{Workers: 2})
	defer m.Shutdown(context.Background())
	st, _, err := m.Submit(spec, SubmitOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if final := waitTerminal(t, m, st.ID); final.State != StateDone {
		t.Fatalf("job = %+v", final)
	}
	payload, _, _ := m.Result(st.ID)
	if string(payload) != string(direct) {
		t.Errorf("service payload differs from direct run:\n%s\nvs\n%s", payload, direct)
	}
	// The payload embeds the job's own content address.
	if !strings.Contains(string(payload), fmt.Sprintf("%q:%q", "key", st.ID)) {
		t.Errorf("payload does not embed its key %s: %s", st.ID, payload)
	}
}

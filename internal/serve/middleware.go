// HTTP middleware for the combined serve mux: request-ID injection, panic
// recovery, per-route/per-status latency recording, and structured access
// logs. One wrapper does all four so every request pays exactly one
// ResponseWriter indirection; the writer implements Unwrap so
// http.ResponseController still reaches the underlying Flusher (the NDJSON
// stream handler depends on it).
package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"runtime/debug"
	"time"
)

// RequestIDHeader is the correlation header: echoed when the client sends
// one, generated otherwise, always present on the response and attached to
// every log line the request produces.
const RequestIDHeader = "X-Request-ID"

type requestIDKey struct{}

// RequestID returns the request's correlation id from its context ("" when
// the middleware is not mounted).
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// newRequestID returns 8 random bytes, hex-encoded.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// statusWriter records the response status (and whether the header was
// written) while delegating everything else, Unwrap included.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.status = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.status = http.StatusOK
		w.wrote = true
	}
	return w.ResponseWriter.Write(b)
}

// Unwrap lets http.ResponseController find Flush/Hijack on the wrapped
// writer.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// withMiddleware wraps next with the serving middleware stack. log must be
// non-nil (use a discard logger to silence access logs); hists may be nil
// to skip latency recording.
func withMiddleware(next http.Handler, log *slog.Logger, hists *httpHists) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rid := r.Header.Get(RequestIDHeader)
		if rid == "" {
			rid = newRequestID()
		}
		w.Header().Set(RequestIDHeader, rid)
		r = r.WithContext(context.WithValue(r.Context(), requestIDKey{}, rid))
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}

		defer func() {
			if rec := recover(); rec != nil {
				// A handler panicked. If nothing was written yet we can still
				// answer with the standard error envelope; mid-stream the
				// connection is already broken and the log is all we have.
				log.Error("handler panic",
					"request_id", rid, "method", r.Method, "path", r.URL.Path,
					"panic", rec, "stack", string(debug.Stack()))
				if !sw.wrote {
					sw.status = http.StatusInternalServerError
					writeError(sw, http.StatusInternalServerError, CodeInternal, "internal server error")
				}
			}
			elapsed := time.Since(start)
			route := r.Pattern
			if hists != nil {
				hists.observe(route, sw.status, elapsed)
			}
			if log.Enabled(r.Context(), slog.LevelInfo) {
				log.LogAttrs(r.Context(), slog.LevelInfo, "http request",
					slog.String("request_id", rid),
					slog.String("method", r.Method),
					slog.String("path", r.URL.Path),
					slog.String("route", route),
					slog.Int("status", sw.status),
					slog.Int64("elapsed_ms", ms(elapsed)),
					slog.String("remote", r.RemoteAddr))
			}
		}()
		next.ServeHTTP(sw, r)
	})
}

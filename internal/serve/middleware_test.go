package serve

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestMiddlewareRequestID(t *testing.T) {
	var seen string
	h := withMiddleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = RequestID(r.Context())
	}), slog.New(slog.DiscardHandler), nil)

	// Generated when absent.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	got := rec.Header().Get(RequestIDHeader)
	if got == "" || got != seen {
		t.Fatalf("generated id: header=%q ctx=%q", got, seen)
	}

	// Propagated when the client sends one.
	rec = httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/x", nil)
	req.Header.Set(RequestIDHeader, "client-chosen-id")
	h.ServeHTTP(rec, req)
	if rec.Header().Get(RequestIDHeader) != "client-chosen-id" || seen != "client-chosen-id" {
		t.Fatalf("propagated id: header=%q ctx=%q", rec.Header().Get(RequestIDHeader), seen)
	}
}

func TestMiddlewarePanicRecovery(t *testing.T) {
	var logBuf bytes.Buffer
	log := slog.New(slog.NewJSONHandler(&logBuf, nil))
	h := withMiddleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	}), log, nil)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	var env errorEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil || env.Error.Code != CodeInternal {
		t.Fatalf("body = %q (err %v)", rec.Body.String(), err)
	}
	if !strings.Contains(logBuf.String(), "handler panic") || !strings.Contains(logBuf.String(), "boom") {
		t.Fatalf("panic not logged: %s", logBuf.String())
	}
}

func TestMiddlewareRecordsRouteLatency(t *testing.T) {
	hists := newHTTPHists()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
	})
	h := withMiddleware(mux, slog.New(slog.DiscardHandler), hists)

	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/api/v1/jobs/abc", nil))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/nowhere-registered", nil))

	var out bytes.Buffer
	hists.WriteProm(&out)
	s := out.String()
	if !strings.Contains(s, `netags_http_request_ms_count{route="GET /api/v1/jobs/{id}",status="404"} 1`) {
		t.Fatalf("missing route series:\n%s", s)
	}
	if !strings.Contains(s, `route="other"`) {
		t.Fatalf("unmatched request not recorded as route other:\n%s", s)
	}
}

func TestMiddlewareAccessLog(t *testing.T) {
	var logBuf bytes.Buffer
	log := slog.New(slog.NewJSONHandler(&logBuf, nil))
	h := withMiddleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	}), log, nil)
	req := httptest.NewRequest("GET", "/brew", nil)
	req.Header.Set(RequestIDHeader, "rid-1")
	h.ServeHTTP(httptest.NewRecorder(), req)

	var line struct {
		Msg       string `json:"msg"`
		RequestID string `json:"request_id"`
		Method    string `json:"method"`
		Path      string `json:"path"`
		Status    int    `json:"status"`
	}
	if err := json.Unmarshal(logBuf.Bytes(), &line); err != nil {
		t.Fatalf("access log not JSON: %q (%v)", logBuf.String(), err)
	}
	if line.Msg != "http request" || line.RequestID != "rid-1" || line.Method != "GET" ||
		line.Path != "/brew" || line.Status != http.StatusTeapot {
		t.Fatalf("access log fields = %+v", line)
	}
}

// TestMiddlewarePreservesFlush pins the Unwrap contract: the NDJSON stream
// handler needs http.ResponseController to find Flush through the wrapper.
func TestMiddlewarePreservesFlush(t *testing.T) {
	flushed := false
	h := withMiddleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rc := http.NewResponseController(w)
		if err := rc.Flush(); err != nil {
			t.Errorf("Flush through middleware: %v", err)
			return
		}
		flushed = true
	}), slog.New(slog.DiscardHandler), nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if !flushed || !rec.Flushed {
		t.Fatalf("flushed=%v rec.Flushed=%v", flushed, rec.Flushed)
	}
}

func TestSLOHistsWriteProm(t *testing.T) {
	s := newSLOHists()
	s.observeQueueWait(PriorityInteractive, 3*time.Millisecond)
	s.observeQueueWait(PriorityBulk, 900*time.Millisecond)
	s.observeExec(10 * time.Millisecond)
	s.observeEndToEnd(12 * time.Millisecond)
	s.observePoint(2.5)

	var out bytes.Buffer
	s.WriteProm(&out)
	text := out.String()
	for _, want := range []string{
		`netags_serve_queue_wait_ms_count{class="bulk"} 1`,
		`netags_serve_queue_wait_ms_count{class="interactive"} 1`,
		`netags_serve_exec_ms_count 1`,
		`netags_serve_e2e_ms_count 1`,
		`netags_serve_point_ms_count 1`,
		`netags_serve_point_ms_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q in:\n%s", want, text)
		}
	}
	// 2.5 ms lands in bucket [2,4) → first cumulative bucket crossing it is
	// le="3" (2^2-1).
	if !strings.Contains(text, `netags_serve_point_ms_bucket{le="3"} 1`) {
		t.Fatalf("point observation missing from le=3 bucket:\n%s", text)
	}
}

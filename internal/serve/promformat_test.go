// A parser-backed validity check of the full /metrics exposition: every
// family declares TYPE (and HELP) exactly once before its samples, sample
// lines are well-formed, and histogram buckets are cumulative with le
// bounds ending at +Inf and agreeing with _count. This is what keeps a
// future metric addition from silently breaking Prometheus scrapes.
package serve

import (
	"bufio"
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"netags/internal/obs"
	"netags/internal/obs/httpserve"
)

var (
	helpRe = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .+$`)
	typeRe = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
	// The label block is matched greedily: label values may themselves
	// contain braces (mux patterns like "/jobs/{id}").
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(.*)\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)
	labelRe  = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)
)

type promFamily struct {
	typ     string
	help    int
	typed   int
	samples []promSample
}

type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// parseProm validates the exposition line by line and groups samples into
// families (histogram _bucket/_sum/_count samples belong to the base name).
func parseProm(t *testing.T, text string) map[string]*promFamily {
	t.Helper()
	families := map[string]*promFamily{}
	family := func(name string) *promFamily {
		f, ok := families[name]
		if !ok {
			f = &promFamily{}
			families[name] = f
		}
		return f
	}
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if m := helpRe.FindStringSubmatch(line); m != nil {
			family(m[1]).help++
			continue
		}
		if m := typeRe.FindStringSubmatch(line); m != nil {
			f := family(m[1])
			f.typed++
			f.typ = m[2]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: malformed comment %q", lineNo, line)
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: malformed sample %q", lineNo, line)
		}
		name := m[1]
		labels := map[string]string{}
		if m[3] != "" {
			for _, kv := range splitLabels(m[3]) {
				lm := labelRe.FindStringSubmatch(kv)
				if lm == nil {
					t.Fatalf("line %d: malformed label %q in %q", lineNo, kv, line)
				}
				labels[lm[1]] = lm[2]
			}
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(m[4], "+"), 64)
		if err != nil && m[4] != "NaN" && !strings.Contains(m[4], "Inf") {
			t.Fatalf("line %d: bad value %q", lineNo, m[4])
		}
		// Histogram samples group under the base family name.
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suffix)
			if trimmed != name {
				if f, ok := families[trimmed]; ok && f.typ == "histogram" {
					base = trimmed
				}
				break
			}
		}
		family(base).samples = append(family(base).samples, promSample{name: name, labels: labels, value: v})
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return families
}

// splitLabels splits `k1="v1",k2="v2"` at commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

func TestMetricsExpositionValid(t *testing.T) {
	collector := obs.NewCollector()
	ring := obs.NewRing(128)
	m := NewManager(Config{Workers: 1, Tracer: obs.Multi(collector, ring), run: stubRun(nil, nil)})
	defer m.Shutdown(context.Background())
	h := NewHandler(m, httpserve.Options{Collector: collector, Ring: ring})

	// Put real traffic through so every family has live series: two jobs
	// (one per priority class), some HTTP requests with varied statuses.
	for i, p := range []Priority{PriorityInteractive, PriorityBulk} {
		st, _, err := m.Submit(testSpec(40+i), SubmitOptions{Priority: p, Client: "fmt-test"})
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, m, st.ID)
	}
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/api/v1/jobs", nil))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/api/v1/jobs/nope", nil))

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d", rec.Code)
	}
	families := parseProm(t, rec.Body.String())

	for name, f := range families {
		if f.typed != 1 {
			t.Errorf("family %s: %d TYPE lines, want exactly 1", name, f.typed)
		}
		if f.help != 1 {
			t.Errorf("family %s: %d HELP lines, want exactly 1", name, f.help)
		}
		if len(f.samples) == 0 {
			t.Errorf("family %s: declared but has no samples", name)
		}
		if f.typ == "histogram" {
			checkHistogramFamily(t, name, f)
		}
	}

	// The families this PR promises must be present with live series.
	for _, want := range []string{
		"netags_serve_queue_wait_ms", "netags_serve_exec_ms", "netags_serve_e2e_ms",
		"netags_serve_point_ms", "netags_http_request_ms",
		"netags_serve_queue_class_len", "netags_serve_checkpoint_purged_total",
		"netags_serve_trace_jobs", "netags_serve_trace_events",
	} {
		if _, ok := families[want]; !ok {
			t.Errorf("family %s missing from /metrics", want)
		}
	}
	qw := families["netags_serve_queue_wait_ms"]
	if qw == nil {
		t.Fatal("no queue-wait family")
	}
	classes := map[string]bool{}
	for _, s := range qw.samples {
		if s.name == "netags_serve_queue_wait_ms_count" {
			classes[s.labels["class"]] = true
		}
	}
	if !classes["interactive"] || !classes["bulk"] {
		t.Errorf("queue-wait classes = %v, want interactive and bulk", classes)
	}
}

// checkHistogramFamily verifies each series' buckets are cumulative,
// nondecreasing in le order, end at le="+Inf", and match _count.
func checkHistogramFamily(t *testing.T, name string, f *promFamily) {
	t.Helper()
	type series struct {
		buckets map[float64]float64 // le → cumulative count
		count   float64
		hasCnt  bool
	}
	bySeries := map[string]*series{}
	keyOf := func(labels map[string]string) string {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			if k != "le" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		var b strings.Builder
		for _, k := range keys {
			b.WriteString(k + "=" + labels[k] + ";")
		}
		return b.String()
	}
	get := func(labels map[string]string) *series {
		k := keyOf(labels)
		s, ok := bySeries[k]
		if !ok {
			s = &series{buckets: map[float64]float64{}}
			bySeries[k] = s
		}
		return s
	}
	for _, smp := range f.samples {
		switch smp.name {
		case name + "_bucket":
			le := smp.labels["le"]
			bound := 0.0
			if le == "+Inf" {
				bound = math.Inf(1)
			} else {
				var err error
				bound, err = strconv.ParseFloat(le, 64)
				if err != nil {
					t.Errorf("family %s: bad le %q", name, le)
					continue
				}
			}
			get(smp.labels).buckets[bound] = smp.value
		case name + "_count":
			s := get(smp.labels)
			s.count = smp.value
			s.hasCnt = true
		}
	}
	for key, s := range bySeries {
		if len(s.buckets) == 0 {
			t.Errorf("family %s series %q: no buckets", name, key)
			continue
		}
		bounds := make([]float64, 0, len(s.buckets))
		for b := range s.buckets {
			bounds = append(bounds, b)
		}
		sort.Float64s(bounds)
		prev := -1.0
		for _, b := range bounds {
			if c := s.buckets[b]; c < prev {
				t.Errorf("family %s series %q: bucket le=%v count %v below previous %v", name, key, b, c, prev)
			} else {
				prev = c
			}
		}
		inf := math.Inf(1)
		infCount, ok := s.buckets[inf]
		if !ok {
			t.Errorf("family %s series %q: no le=\"+Inf\" bucket", name, key)
		}
		if !s.hasCnt {
			t.Errorf("family %s series %q: no _count sample", name, key)
		} else if ok && infCount != s.count {
			t.Errorf("family %s series %q: +Inf bucket %v != count %v", name, key, infCount, s.count)
		}
	}
}

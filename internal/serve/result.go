// Result execution and rendering. runSpec is the single bridge from a
// canonical JobSpec to the experiment package's sweeps, and the encoders
// below render each sweep's results into deterministic JSON: fixed field
// order, canonical protocol order, float64 formatting delegated to
// encoding/json (which is itself deterministic). Byte-identical payloads
// for equal specs are what make the content-addressed cache exact.
package serve

import (
	"context"
	"encoding/json"
	"fmt"

	"netags/internal/experiment"
	"netags/internal/obs"
	"netags/internal/stats"
)

// sampleJSON is the JSON view of a stats.Sample summary.
type sampleJSON struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
}

func sampleView(s *stats.Sample) sampleJSON {
	return sampleJSON{N: s.N(), Mean: s.Mean(), StdDev: s.StdDev(), Min: s.Min(), Max: s.Max()}
}

// protoMetricsJSON is one protocol's aggregates at one range point.
type protoMetricsJSON struct {
	Protocol    string     `json:"protocol"`
	Slots       sampleJSON `json:"slots"`
	MaxSent     sampleJSON `json:"max_sent"`
	MaxReceived sampleJSON `json:"max_received"`
	AvgSent     sampleJSON `json:"avg_sent"`
	AvgReceived sampleJSON `json:"avg_received"`
}

type rangeRowJSON struct {
	R         float64            `json:"r"`
	Tiers     sampleJSON         `json:"tiers"`
	Protocols []protoMetricsJSON `json:"protocols"`
}

type densityRowJSON struct {
	N         int        `json:"n"`
	Tiers     sampleJSON `json:"tiers"`
	SICPSlots sampleJSON `json:"sicp_slots"`
	GMLESlots sampleJSON `json:"gmle_slots"`
	TRPSlots  sampleJSON `json:"trp_slots"`
}

type lossRowJSON struct {
	Loss           float64    `json:"loss"`
	Delivery       sampleJSON `json:"delivery"`
	FalsePositives sampleJSON `json:"false_positives"`
	Rounds         sampleJSON `json:"rounds"`
}

// resultPayload is the JSON document served by GET /jobs/{id}/result and
// stored in the cache. Exactly one row slice is populated, matching the
// spec's sweep kind.
type resultPayload struct {
	// Key is the job's content address (also its job id).
	Key string `json:"key"`
	// Spec echoes the normalized spec the result was computed from.
	Spec JobSpec `json:"spec"`
	// Rows, one flavor per sweep kind.
	RangeRows   []rangeRowJSON   `json:"range_rows,omitempty"`
	DensityRows []densityRowJSON `json:"density_rows,omitempty"`
	LossRows    []lossRowJSON    `json:"loss_rows,omitempty"`
}

// runSpec executes the normalized spec with the given worker budget and
// returns the canonical result payload bytes. observe receives the sweep's
// Progress events (the manager wires a per-job Tracker); tracer, if
// non-nil, receives every protocol run's event stream (the server's
// /metrics collector).
func runSpec(ctx context.Context, spec JobSpec, workers int, observe func(experiment.Progress), tracer obs.Tracer) ([]byte, error) {
	n := spec.Normalized()
	if err := n.Validate(); err != nil {
		return nil, err
	}
	key, err := n.Key()
	if err != nil {
		return nil, err
	}
	base := experiment.BaseConfig{
		N:       n.N,
		Radius:  n.Radius,
		Trials:  n.Trials,
		Seed:    n.Seed,
		Workers: workers,
		Tracer:  tracer,
	}
	switch n.Sweep {
	case SweepRange:
		protos := make([]experiment.Protocol, len(n.Protocols))
		for i, p := range n.Protocols {
			protos[i] = experiment.Protocol(p)
		}
		res, err := experiment.RunContext(ctx, experiment.Config{
			BaseConfig:             base,
			RValues:                n.RValues,
			GMLEFrame:              n.GMLEFrame,
			TRPFrame:               n.TRPFrame,
			Protocols:              protos,
			ContentionWindow:       n.ContentionWindow,
			DisableIndicatorVector: n.DisableIndicatorVector,
		}, observe)
		if err != nil {
			return nil, err
		}
		return encodeRange(key, n, res)
	case SweepDensity:
		res, err := experiment.RunDensitySweepContext(ctx, experiment.DensityConfig{
			BaseConfig: base,
			NValues:    n.NValues,
			R:          n.R,
		}, observe)
		if err != nil {
			return nil, err
		}
		return encodeDensity(key, n, res)
	case SweepLoss:
		res, err := experiment.RunLossSweepContext(ctx, experiment.LossConfig{
			BaseConfig: base,
			R:          n.R,
			LossValues: n.LossValues,
			FrameSize:  n.FrameSize,
		}, observe)
		if err != nil {
			return nil, err
		}
		return encodeLoss(key, n, res)
	}
	return nil, fmt.Errorf("serve: unknown sweep kind %q", n.Sweep)
}

// encodeRange renders range-sweep results; protocols appear in the
// canonical order regardless of how the map iterates.
func encodeRange(key string, spec JobSpec, res *experiment.Results) ([]byte, error) {
	p := resultPayload{Key: key, Spec: spec}
	for _, row := range res.Rows {
		rj := rangeRowJSON{R: row.R, Tiers: sampleView(&row.Tiers)}
		for _, proto := range protocolOrder {
			m, ok := row.ByProtocol[proto]
			if !ok {
				continue
			}
			rj.Protocols = append(rj.Protocols, protoMetricsJSON{
				Protocol:    string(proto),
				Slots:       sampleView(&m.Slots),
				MaxSent:     sampleView(&m.MaxSent),
				MaxReceived: sampleView(&m.MaxReceived),
				AvgSent:     sampleView(&m.AvgSent),
				AvgReceived: sampleView(&m.AvgReceived),
			})
		}
		p.RangeRows = append(p.RangeRows, rj)
	}
	return marshalPayload(p)
}

func encodeDensity(key string, spec JobSpec, res *experiment.DensityResults) ([]byte, error) {
	p := resultPayload{Key: key, Spec: spec}
	for i := range res.Rows {
		row := &res.Rows[i]
		p.DensityRows = append(p.DensityRows, densityRowJSON{
			N:         row.N,
			Tiers:     sampleView(&row.Tiers),
			SICPSlots: sampleView(&row.SICPSlots),
			GMLESlots: sampleView(&row.GMLESlots),
			TRPSlots:  sampleView(&row.TRPSlots),
		})
	}
	return marshalPayload(p)
}

func encodeLoss(key string, spec JobSpec, res *experiment.LossResults) ([]byte, error) {
	p := resultPayload{Key: key, Spec: spec}
	for i := range res.Rows {
		row := &res.Rows[i]
		p.LossRows = append(p.LossRows, lossRowJSON{
			Loss:           row.Loss,
			Delivery:       sampleView(&row.Delivery),
			FalsePositives: sampleView(&row.FalsePositives),
			Rounds:         sampleView(&row.Rounds),
		})
	}
	return marshalPayload(p)
}

func marshalPayload(p resultPayload) ([]byte, error) {
	b, err := json.Marshal(p)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

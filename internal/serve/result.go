// Result execution and rendering. runSpecHooked is the single bridge from
// a canonical JobSpec to the experiment package's sweeps: it streams every
// completed grid point out through a hook as deterministic row JSON (fixed
// field order, canonical protocol order, float64 formatting delegated to
// encoding/json). The final payload is assembled from those per-point rows
// by assemblePayload — the same function whether the rows were computed
// just now, restored from a checkpoint, or a mix — so an interrupted-and-
// resumed sweep produces byte-identical payloads to an uninterrupted run
// by construction. Byte-identical payloads for equal specs are what make
// the content-addressed cache exact.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"netags/internal/experiment"
	"netags/internal/obs"
	"netags/internal/stats"
)

// sampleJSON is the JSON view of a stats.Sample summary.
type sampleJSON struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
}

func sampleView(s *stats.Sample) sampleJSON {
	return sampleJSON{N: s.N(), Mean: s.Mean(), StdDev: s.StdDev(), Min: s.Min(), Max: s.Max()}
}

// protoMetricsJSON is one protocol's aggregates at one range point.
type protoMetricsJSON struct {
	Protocol    string     `json:"protocol"`
	Slots       sampleJSON `json:"slots"`
	MaxSent     sampleJSON `json:"max_sent"`
	MaxReceived sampleJSON `json:"max_received"`
	AvgSent     sampleJSON `json:"avg_sent"`
	AvgReceived sampleJSON `json:"avg_received"`
}

type rangeRowJSON struct {
	R         float64            `json:"r"`
	Tiers     sampleJSON         `json:"tiers"`
	Protocols []protoMetricsJSON `json:"protocols"`
}

type densityRowJSON struct {
	N         int        `json:"n"`
	Tiers     sampleJSON `json:"tiers"`
	SICPSlots sampleJSON `json:"sicp_slots"`
	GMLESlots sampleJSON `json:"gmle_slots"`
	TRPSlots  sampleJSON `json:"trp_slots"`
}

type lossRowJSON struct {
	Loss           float64    `json:"loss"`
	Delivery       sampleJSON `json:"delivery"`
	FalsePositives sampleJSON `json:"false_positives"`
	Rounds         sampleJSON `json:"rounds"`
}

// resultPayload is the JSON document served by GET /api/v1/jobs/{id}/result
// and stored in the cache. Exactly one row slice is populated, matching the
// spec's sweep kind; rows are raw per-point JSON, the same bytes that were
// checkpointed and streamed as each point completed.
type resultPayload struct {
	// Key is the job's content address (also its job id).
	Key string `json:"key"`
	// Spec echoes the normalized spec the result was computed from.
	Spec JobSpec `json:"spec"`
	// Rows, one flavor per sweep kind.
	RangeRows   []json.RawMessage `json:"range_rows,omitempty"`
	DensityRows []json.RawMessage `json:"density_rows,omitempty"`
	LossRows    []json.RawMessage `json:"loss_rows,omitempty"`
}

// Per-point row encoders. Each renders one grid point's aggregates into
// the deterministic row JSON; protocols appear in the canonical order
// regardless of how the map iterates.

func encodeRangeRow(row experiment.Row) (json.RawMessage, error) {
	rj := rangeRowJSON{R: row.R, Tiers: sampleView(&row.Tiers)}
	for _, proto := range protocolOrder {
		m, ok := row.ByProtocol[proto]
		if !ok {
			continue
		}
		rj.Protocols = append(rj.Protocols, protoMetricsJSON{
			Protocol:    string(proto),
			Slots:       sampleView(&m.Slots),
			MaxSent:     sampleView(&m.MaxSent),
			MaxReceived: sampleView(&m.MaxReceived),
			AvgSent:     sampleView(&m.AvgSent),
			AvgReceived: sampleView(&m.AvgReceived),
		})
	}
	return json.Marshal(rj)
}

func encodeDensityRow(row experiment.DensityRow) (json.RawMessage, error) {
	return json.Marshal(densityRowJSON{
		N:         row.N,
		Tiers:     sampleView(&row.Tiers),
		SICPSlots: sampleView(&row.SICPSlots),
		GMLESlots: sampleView(&row.GMLESlots),
		TRPSlots:  sampleView(&row.TRPSlots),
	})
}

func encodeLossRow(row experiment.LossRow) (json.RawMessage, error) {
	return json.Marshal(lossRowJSON{
		Loss:           row.Loss,
		Delivery:       sampleView(&row.Delivery),
		FalsePositives: sampleView(&row.FalsePositives),
		Rounds:         sampleView(&row.Rounds),
	})
}

// runHooks carries the per-run wiring from the manager into runSpecHooked.
type runHooks struct {
	// observe receives the sweep's per-item Progress events (the manager
	// wires the job's Tracker).
	observe func(experiment.Progress)
	// tracer, if non-nil, receives every protocol run's event stream.
	tracer obs.Tracer
	// skip marks point indices already checkpointed; their work items are
	// not run (the resume path). nil means run everything.
	skip []bool
	// pointDone, if non-nil, receives each computed point's record (Seq
	// unset — the checkpoint store stamps it) as soon as the point's last
	// trial lands. Calls are serialized.
	pointDone func(rec PointRecord)
}

// runSpecHooked executes the normalized spec with the given worker budget,
// streaming every computed point out through h.pointDone. It returns no
// payload: the caller assembles one from the complete row set (checkpoint
// plus fresh points) with assemblePayload.
func runSpecHooked(ctx context.Context, spec JobSpec, workers int, h runHooks) error {
	n := spec.Normalized()
	if err := n.Validate(); err != nil {
		return err
	}
	base := experiment.BaseConfig{
		N:       n.N,
		Radius:  n.Radius,
		Trials:  n.Trials,
		Seed:    n.Seed,
		Workers: workers,
		Tracer:  h.tracer,
	}
	emit := func(encode func() (json.RawMessage, error), info experiment.PointInfo) {
		if h.pointDone == nil {
			return
		}
		row, err := encode()
		if err != nil {
			// A row that cannot marshal is a programming error; surface it
			// loudly rather than checkpointing a hole.
			panic(fmt.Sprintf("serve: encode point %d: %v", info.Index, err))
		}
		h.pointDone(PointRecord{
			Index:     info.Index,
			Label:     n.PointLabel(info.Index),
			ElapsedMS: float64(info.Elapsed) / float64(time.Millisecond),
			Row:       row,
		})
	}
	switch n.Sweep {
	case SweepRange:
		protos := make([]experiment.Protocol, len(n.Protocols))
		for i, p := range n.Protocols {
			protos[i] = experiment.Protocol(p)
		}
		_, err := experiment.RunContextPartial(ctx, experiment.Config{
			BaseConfig:             base,
			RValues:                n.RValues,
			GMLEFrame:              n.GMLEFrame,
			TRPFrame:               n.TRPFrame,
			Protocols:              protos,
			ContentionWindow:       n.ContentionWindow,
			DisableIndicatorVector: n.DisableIndicatorVector,
		}, h.skip, func(info experiment.PointInfo, row experiment.Row) {
			emit(func() (json.RawMessage, error) { return encodeRangeRow(row) }, info)
		}, h.observe)
		return err
	case SweepDensity:
		_, err := experiment.RunDensitySweepPartial(ctx, experiment.DensityConfig{
			BaseConfig: base,
			NValues:    n.NValues,
			R:          n.R,
		}, h.skip, func(info experiment.PointInfo, row experiment.DensityRow) {
			emit(func() (json.RawMessage, error) { return encodeDensityRow(row) }, info)
		}, h.observe)
		return err
	case SweepLoss:
		_, err := experiment.RunLossSweepPartial(ctx, experiment.LossConfig{
			BaseConfig: base,
			R:          n.R,
			LossValues: n.LossValues,
			FrameSize:  n.FrameSize,
		}, h.skip, func(info experiment.PointInfo, row experiment.LossRow) {
			emit(func() (json.RawMessage, error) { return encodeLossRow(row) }, info)
		}, h.observe)
		return err
	}
	return fmt.Errorf("serve: unknown sweep kind %q", n.Sweep)
}

// assemblePayload renders the final result document from the job's
// complete, index-ordered row set. It is the only payload producer:
// uninterrupted, resumed, and direct runs all funnel through it, which is
// what makes their bytes identical.
func assemblePayload(key string, spec JobSpec, rows []json.RawMessage) ([]byte, error) {
	n := spec.Normalized()
	p := resultPayload{Key: key, Spec: n}
	switch n.Sweep {
	case SweepRange:
		p.RangeRows = rows
	case SweepDensity:
		p.DensityRows = rows
	case SweepLoss:
		p.LossRows = rows
	default:
		return nil, fmt.Errorf("serve: unknown sweep kind %q", n.Sweep)
	}
	b, err := json.Marshal(p)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// runSpec executes the spec start-to-finish and returns the assembled
// payload — the direct, checkpoint-free path, used by tests as the
// byte-identity reference for everything the service layers on top.
func runSpec(ctx context.Context, spec JobSpec, workers int, observe func(experiment.Progress), tracer obs.Tracer) ([]byte, error) {
	n := spec.Normalized()
	if err := n.Validate(); err != nil {
		return nil, err
	}
	key, err := n.Key()
	if err != nil {
		return nil, err
	}
	rows := make([]json.RawMessage, n.PointCount())
	err = runSpecHooked(ctx, n, workers, runHooks{
		observe: observe,
		tracer:  tracer,
		pointDone: func(rec PointRecord) {
			if rec.Index >= 0 && rec.Index < len(rows) {
				rows[rec.Index] = rec.Row
			}
		},
	})
	if err != nil {
		return nil, err
	}
	for i, r := range rows {
		if r == nil {
			return nil, fmt.Errorf("serve: sweep finished without point %d", i)
		}
	}
	return assemblePayload(key, n, rows)
}

package serve

import (
	"bytes"
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestResumeAfterDrainByteIdentical is the PR's acceptance test: a real
// sweep is drained mid-flight at ~50% of its points, the process "restarts"
// (a new Manager on the same checkpoint dir), the spec is resubmitted, and
// the resumed job (a) recomputes none of the completed points, (b) reports
// them as ResumedPoints, and (c) produces a payload byte-identical to an
// uninterrupted run.
func TestResumeAfterDrainByteIdentical(t *testing.T) {
	spec := JobSpec{N: 130, Trials: 2, RValues: []float64{3, 4, 5, 6}, Seed: 5}
	points := spec.PointCount()
	killAt := points / 2

	direct, err := runSpec(context.Background(), spec, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()

	// Phase 1: run for real, stall after killAt points are checkpointed,
	// then force-drain. JobWorkers 1 serializes the sweep so exactly the
	// first killAt points land.
	half := make(chan struct{})
	var once sync.Once
	var completed atomic.Int64
	m1 := NewManager(Config{Workers: 1, JobWorkers: 1, CheckpointDir: dir,
		run: func(ctx context.Context, s JobSpec, w int, h runHooks) error {
			inner := h
			inner.pointDone = func(rec PointRecord) {
				h.pointDone(rec)
				if completed.Add(1) == int64(killAt) {
					once.Do(func() { close(half) })
					<-ctx.Done() // stall the sweep until the drain cancels it
				}
			}
			return runSpecHooked(ctx, s, w, inner)
		}})
	st1, _, err := m1.Submit(spec, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-half:
	case <-time.After(30 * time.Second):
		t.Fatal("sweep never reached the halfway mark")
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	m1.Shutdown(drainCtx) // deadline forces cancellation mid-sweep
	if final, _ := m1.Job(st1.ID); final.State != StateCanceled {
		t.Fatalf("drained job state = %s, want canceled", final.State)
	}

	// Phase 2: fresh manager, same checkpoint dir — the restart. Record
	// which point indices actually get recomputed.
	var recomputedMu sync.Mutex
	var recomputed []int
	m2 := NewManager(Config{Workers: 1, JobWorkers: 1, CheckpointDir: dir,
		run: func(ctx context.Context, s JobSpec, w int, h runHooks) error {
			inner := h
			inner.pointDone = func(rec PointRecord) {
				recomputedMu.Lock()
				recomputed = append(recomputed, rec.Index)
				recomputedMu.Unlock()
				h.pointDone(rec)
			}
			return runSpecHooked(ctx, s, w, inner)
		}})
	defer m2.Shutdown(context.Background())
	st2, outcome, err := m2.Submit(spec, SubmitOptions{})
	if err != nil || outcome != OutcomeQueued {
		t.Fatalf("resubmit = %v, %v, %v", st2, outcome, err)
	}
	if st2.ResumedPoints != killAt {
		t.Errorf("ResumedPoints = %d, want %d", st2.ResumedPoints, killAt)
	}
	final := waitTerminal(t, m2, st2.ID)
	if final.State != StateDone {
		t.Fatalf("resumed job = %+v", final)
	}

	recomputedMu.Lock()
	defer recomputedMu.Unlock()
	if len(recomputed) != points-killAt {
		t.Errorf("recomputed %d points %v, want only the %d unfinished ones",
			len(recomputed), recomputed, points-killAt)
	}
	for _, idx := range recomputed {
		if idx < killAt {
			t.Errorf("completed point %d was recomputed", idx)
		}
	}

	payload, _, _ := m2.Result(st2.ID)
	if !bytes.Equal(payload, direct) {
		t.Errorf("resumed payload differs from uninterrupted run:\n%s\nvs\n%s", payload, direct)
	}
}

// TestResumeAfterCancelInProcess: cancel a running job, resubmit in the
// same manager (memory checkpoints, no dir), and the resumption skips the
// checkpointed points.
func TestResumeAfterCancelInProcess(t *testing.T) {
	spec := testSpec(0)
	gate := make(chan struct{})
	var runs atomic.Int64
	m := NewManager(Config{Workers: 1, run: func(ctx context.Context, s JobSpec, w int, h runHooks) error {
		n := runs.Add(1)
		emitStubPoints(s, h) // checkpoint everything, then...
		if n == 1 {
			select { // ...block until canceled on the first attempt
			case <-gate:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		return nil
	}})
	defer func() { close(gate); m.Shutdown(context.Background()) }()

	st, _, err := m.Submit(spec, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, m, st.ID)
	m.Cancel(st.ID)
	if final := waitTerminal(t, m, st.ID); final.State != StateCanceled {
		t.Fatalf("canceled job = %+v", final)
	}

	st2, _, err := m.Submit(spec, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st2.ResumedPoints != spec.PointCount() {
		t.Errorf("ResumedPoints = %d, want all %d", st2.ResumedPoints, spec.PointCount())
	}
	if final := waitTerminal(t, m, st2.ID); final.State != StateDone {
		t.Fatalf("resumed job = %+v", final)
	}
	if payload, _, _ := m.Result(st2.ID); payload == nil {
		t.Error("resumed job has no payload")
	}
}

// TestDuplicateSubmitRacesCheckpointedJob: while a resumed job is running,
// a duplicate submission must join it (singleflight), not fork a second
// execution over the same checkpoint.
func TestDuplicateSubmitRacesCheckpointedJob(t *testing.T) {
	spec := testSpec(0)
	gate := make(chan struct{})
	var runs atomic.Int64
	m := NewManager(Config{Workers: 1, run: func(ctx context.Context, s JobSpec, w int, h runHooks) error {
		runs.Add(1)
		emitStubPoints(s, h)
		select {
		case <-gate:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}})
	defer m.Shutdown(context.Background())

	// Seed a checkpoint: cancel the first attempt mid-run.
	st, _, err := m.Submit(spec, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, m, st.ID)
	m.Cancel(st.ID)
	waitTerminal(t, m, st.ID)

	// Resubmit (resumes from the checkpoint) and race a flood of duplicates
	// against it while it runs.
	st2, _, err := m.Submit(spec, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, m, st2.ID)
	const dups = 8
	var wg sync.WaitGroup
	for i := 0; i < dups; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dup, outcome, err := m.Submit(spec, SubmitOptions{})
			if err != nil {
				t.Errorf("duplicate submit: %v", err)
				return
			}
			if dup.ID != st2.ID || outcome == OutcomeCached {
				t.Errorf("duplicate = %s/%s, want joined onto %s", dup.ID, outcome, st2.ID)
			}
		}()
	}
	wg.Wait()
	close(gate)
	if final := waitTerminal(t, m, st2.ID); final.State != StateDone {
		t.Fatalf("resumed job = %+v", final)
	}
	// Two executions total: the canceled original and the resumed one.
	if got := runs.Load(); got != 2 {
		t.Errorf("executions = %d, want 2 (no duplicate forked)", got)
	}
	if s := m.Stats(); s.Deduplicated != dups {
		t.Errorf("deduplicated = %d, want %d", s.Deduplicated, dups)
	}
}

// TestSubmitPriorityOrderViaManager: with the single worker busy, a later
// interactive job overtakes earlier bulk jobs.
func TestSubmitPriorityOrderViaManager(t *testing.T) {
	gate := make(chan struct{})
	var mu sync.Mutex
	var order []string
	m := NewManager(Config{Workers: 1, QueueDepth: 8, run: func(ctx context.Context, s JobSpec, w int, h runHooks) error {
		mu.Lock()
		key, _ := s.Key()
		order = append(order, key)
		mu.Unlock()
		select {
		case <-gate:
		case <-ctx.Done():
			return ctx.Err()
		}
		emitStubPoints(s, h)
		return nil
	}})
	defer m.Shutdown(context.Background())

	blocker, _, err := m.Submit(testSpec(0), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, m, blocker.ID)
	bulk, _, err := m.Submit(testSpec(1), SubmitOptions{Priority: PriorityBulk, Client: "batch"})
	if err != nil {
		t.Fatal(err)
	}
	inter, _, err := m.Submit(testSpec(2), SubmitOptions{Priority: PriorityInteractive, Client: "human"})
	if err != nil {
		t.Fatal(err)
	}
	if bulk.Priority != PriorityBulk || inter.Priority != PriorityInteractive {
		t.Fatalf("statuses dropped priorities: %+v %+v", bulk, inter)
	}
	close(gate)
	waitTerminal(t, m, bulk.ID)
	waitTerminal(t, m, inter.ID)

	mu.Lock()
	defer mu.Unlock()
	if len(order) != 3 || order[1] != inter.ID || order[2] != bulk.ID {
		t.Errorf("execution order = %v, want interactive %s before bulk %s", order, inter.ID, bulk.ID)
	}
}

// Priority-aware admission ahead of the worker pool. The old FIFO channel
// gave one bulk client with a burst of million-point grids the whole
// queue; schedQueue replaces it with two strict priority classes
// (interactive always dispatches before bulk) and round-robin fairness
// across clients inside each class, so an interactive 9-point sweep never
// waits behind someone else's backlog. Capacity stays globally bounded —
// a full queue is still ErrQueueFull backpressure, exactly as before.
package serve

import (
	"fmt"
	"sort"
	"sync"
)

// Priority is a job's scheduling class.
type Priority string

// The two classes: interactive dispatches strictly before bulk. The empty
// string normalizes to interactive — an unannotated submission is assumed
// to be a human waiting; callers fanning out big grids should say "bulk".
const (
	PriorityInteractive Priority = "interactive"
	PriorityBulk        Priority = "bulk"
)

// normalize maps the empty priority to the default.
func (p Priority) normalize() Priority {
	if p == "" {
		return PriorityInteractive
	}
	return p
}

// Valid reports whether p names a known class (after normalization).
func (p Priority) Valid() bool {
	switch p.normalize() {
	case PriorityInteractive, PriorityBulk:
		return true
	}
	return false
}

// classQueue is one priority class: per-client FIFOs drained round-robin.
type classQueue struct {
	byClient map[string][]*Job
	ring     []string // clients with pending jobs, in arrival order
	next     int      // ring cursor
}

func newClassQueue() *classQueue {
	return &classQueue{byClient: make(map[string][]*Job)}
}

func (q *classQueue) push(j *Job) {
	client := j.client
	if _, ok := q.byClient[client]; !ok {
		q.ring = append(q.ring, client)
	}
	q.byClient[client] = append(q.byClient[client], j)
}

// pop dequeues the head of the next client's FIFO, advancing the
// round-robin cursor, or returns nil when the class is empty.
func (q *classQueue) pop() *Job {
	if len(q.ring) == 0 {
		return nil
	}
	if q.next >= len(q.ring) {
		q.next = 0
	}
	client := q.ring[q.next]
	fifo := q.byClient[client]
	j := fifo[0]
	if len(fifo) == 1 {
		delete(q.byClient, client)
		q.ring = append(q.ring[:q.next], q.ring[q.next+1:]...)
		if q.next >= len(q.ring) {
			q.next = 0
		}
	} else {
		q.byClient[client] = fifo[1:]
		q.next++
	}
	return j
}

// schedQueue is the bounded two-class scheduler the worker pool pulls
// from. Push never blocks (a full queue errors); Pop blocks until a job or
// close-and-drained.
type schedQueue struct {
	mu       sync.Mutex
	cond     *sync.Cond
	capacity int
	size     int
	closed   bool
	classes  map[Priority]*classQueue
}

func newSchedQueue(capacity int) *schedQueue {
	q := &schedQueue{
		capacity: capacity,
		classes: map[Priority]*classQueue{
			PriorityInteractive: newClassQueue(),
			PriorityBulk:        newClassQueue(),
		},
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push enqueues j under its priority and client. It reports ErrQueueFull
// at capacity and ErrDraining after Close.
func (q *schedQueue) Push(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrDraining
	}
	if q.size >= q.capacity {
		return ErrQueueFull
	}
	class, ok := q.classes[j.priority.normalize()]
	if !ok {
		return fmt.Errorf("serve: unknown priority %q", j.priority)
	}
	class.push(j)
	q.size++
	q.cond.Signal()
	return nil
}

// Pop blocks until a job is available — interactive before bulk, clients
// round-robin within a class — or until the queue is closed and drained
// (ok false, the worker-exit signal).
func (q *schedQueue) Pop() (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.size > 0 {
			for _, p := range []Priority{PriorityInteractive, PriorityBulk} {
				if j := q.classes[p].pop(); j != nil {
					q.size--
					return j, true
				}
			}
		}
		if q.closed {
			return nil, false
		}
		q.cond.Wait()
	}
}

// Close stops admissions; Pops drain the remaining jobs, then report done.
func (q *schedQueue) Close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// Len returns the number of queued jobs.
func (q *schedQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// ClassLens returns the queued-job count per priority class — the /metrics
// per-class queue-depth gauges.
func (q *schedQueue) ClassLens() map[Priority]int {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(map[Priority]int, len(q.classes))
	for p, class := range q.classes {
		n := 0
		for _, fifo := range class.byClient {
			n += len(fifo)
		}
		out[p] = n
	}
	return out
}

// clientQueueLen is one (class, client) in-queue count.
type clientQueueLen struct {
	Class  Priority
	Client string
	N      int
}

// ClientLens returns the queued-job count per (class, client), sorted for
// deterministic exposition — the fairness-visibility gauges. Cardinality is
// bounded by the queue capacity (a client with nothing queued has no
// entry).
func (q *schedQueue) ClientLens() []clientQueueLen {
	q.mu.Lock()
	out := make([]clientQueueLen, 0, 8)
	for p, class := range q.classes {
		for client, fifo := range class.byClient {
			out = append(out, clientQueueLen{Class: p, Client: client, N: len(fifo)})
		}
	}
	q.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Class != out[j].Class {
			return out[i].Class < out[j].Class
		}
		return out[i].Client < out[j].Client
	})
	return out
}

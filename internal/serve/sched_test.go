package serve

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func schedJob(id string, p Priority, client string) *Job {
	ctx, cancel := context.WithCancel(context.Background())
	return &Job{ID: id, priority: p.normalize(), client: client,
		ctx: ctx, cancel: cancel, done: make(chan struct{}), state: StateQueued}
}

func popID(t *testing.T, q *schedQueue) string {
	t.Helper()
	j, ok := q.Pop()
	if !ok {
		t.Fatal("Pop reported closed")
	}
	return j.ID
}

// TestSchedPriorityOrder: every queued interactive job dispatches before
// any bulk job, regardless of arrival order.
func TestSchedPriorityOrder(t *testing.T) {
	q := newSchedQueue(8)
	q.Push(schedJob("b1", PriorityBulk, "x"))
	q.Push(schedJob("i1", PriorityInteractive, "x"))
	q.Push(schedJob("b2", PriorityBulk, "x"))
	q.Push(schedJob("i2", "", "x")) // empty = interactive

	want := []string{"i1", "i2", "b1", "b2"}
	for _, w := range want {
		if got := popID(t, q); got != w {
			t.Fatalf("pop order got %s, want %s", got, w)
		}
	}
}

// TestSchedClientFairness: within a class, clients are served round-robin —
// a client with a deep backlog cannot starve a client with one job.
func TestSchedClientFairness(t *testing.T) {
	q := newSchedQueue(16)
	for i := 0; i < 6; i++ {
		q.Push(schedJob(fmt.Sprintf("hog-%d", i), PriorityBulk, "hog"))
	}
	q.Push(schedJob("small-0", PriorityBulk, "small"))

	// The small client's single job must dispatch second, not seventh.
	first, second := popID(t, q), popID(t, q)
	if first != "hog-0" || second != "small-0" {
		t.Fatalf("pop order = %s, %s; want hog-0 then small-0", first, second)
	}
	// Remaining pops drain the hog in FIFO order.
	for i := 1; i < 6; i++ {
		if got := popID(t, q); got != fmt.Sprintf("hog-%d", i) {
			t.Fatalf("drain pop %d = %s", i, got)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain", q.Len())
	}
}

// TestSchedCapacityAndClose: capacity bounds the whole queue across
// classes; Close rejects pushes and lets Pops drain.
func TestSchedCapacityAndClose(t *testing.T) {
	q := newSchedQueue(2)
	if err := q.Push(schedJob("a", PriorityInteractive, "c")); err != nil {
		t.Fatal(err)
	}
	if err := q.Push(schedJob("b", PriorityBulk, "c")); err != nil {
		t.Fatal(err)
	}
	if err := q.Push(schedJob("c", PriorityInteractive, "c")); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-capacity push = %v, want ErrQueueFull", err)
	}
	q.Close()
	if err := q.Push(schedJob("d", PriorityInteractive, "c")); !errors.Is(err, ErrDraining) {
		t.Fatalf("push after close = %v, want ErrDraining", err)
	}
	if got := popID(t, q); got != "a" {
		t.Fatalf("drain pop = %s", got)
	}
	if got := popID(t, q); got != "b" {
		t.Fatalf("drain pop = %s", got)
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on closed empty queue reported a job")
	}
}

// TestSchedPopBlocksUntilPush: a blocked Pop wakes on Push.
func TestSchedPopBlocksUntilPush(t *testing.T) {
	q := newSchedQueue(4)
	got := make(chan string, 1)
	go func() {
		j, ok := q.Pop()
		if ok {
			got <- j.ID
		} else {
			got <- ""
		}
	}()
	q.Push(schedJob("wake", PriorityBulk, "c"))
	if id := <-got; id != "wake" {
		t.Fatalf("blocked Pop got %q", id)
	}
}

// TestPriorityValid covers the accepted class names.
func TestPriorityValid(t *testing.T) {
	for _, p := range []Priority{"", PriorityInteractive, PriorityBulk} {
		if !p.Valid() {
			t.Errorf("priority %q should be valid", p)
		}
	}
	if Priority("urgent").Valid() {
		t.Error("unknown priority accepted")
	}
}

package serve

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"netags/internal/obs/httpserve"
)

// Server binds a Manager and the combined handler to a TCP listener —
// what cmd/ccmserve runs. Close drains gracefully: readiness flips first
// (load balancers stop routing), queued jobs are rejected, in-flight jobs
// get ShutdownTimeout to finish, then the HTTP server itself drains.
type Server struct {
	m       *Manager
	ln      net.Listener
	srv     *http.Server
	timeout time.Duration

	closeOnce sync.Once
	closeErr  error
}

// StartServer listens on addr (":0" picks a free port) and serves the jobs
// API plus introspection endpoints until Close. shutdownTimeout bounds the
// graceful drain (0 means 10s).
func StartServer(addr string, m *Manager, obsOpts httpserve.Options, shutdownTimeout time.Duration) (*Server, error) {
	if shutdownTimeout <= 0 {
		shutdownTimeout = 10 * time.Second
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	s := &Server{
		m:       m,
		ln:      ln,
		timeout: shutdownTimeout,
		srv: &http.Server{
			Handler:           NewHandler(m, obsOpts),
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
	go s.srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Manager returns the job manager the server fronts.
func (s *Server) Manager() *Manager { return s.m }

// Close drains the manager (bounded by the shutdown timeout) and then the
// HTTP server. It is idempotent and safe to call concurrently: every call
// waits for the one drain and returns the same error (non-nil when the
// timeout forced in-flight jobs to cancel).
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		ctx, cancel := context.WithTimeout(context.Background(), s.timeout)
		defer cancel()
		s.closeErr = s.m.Shutdown(ctx)
		if err := s.srv.Shutdown(ctx); err != nil {
			// The drain consumed the budget: close the remaining
			// connections hard rather than hanging forever.
			s.srv.Close()
			if s.closeErr == nil {
				s.closeErr = err
			}
		}
	})
	return s.closeErr
}

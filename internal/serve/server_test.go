package serve

import (
	"context"
	"net/http"
	"sync"
	"testing"
	"time"

	"netags/internal/obs/httpserve"
)

// TestServerEndToEnd boots a real listener via StartServer and runs one
// tiny job through the wire with the client helper.
func TestServerEndToEnd(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	srv, err := StartServer("127.0.0.1:0", m, httpserve.Options{}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl := &Client{BaseURL: "http://" + srv.Addr()}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	sub, err := cl.Submit(ctx, JobSpec{N: 100, Trials: 1, RValues: []float64{6}}, SubmitOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	st, err := cl.Wait(ctx, sub.ID, 5*time.Millisecond)
	if err != nil || st.State != StateDone {
		t.Fatalf("wait = %+v, %v", st, err)
	}
	payload, err := cl.Result(ctx, sub.ID)
	if err != nil || payload == nil {
		t.Fatalf("result = %v, %v", payload, err)
	}
	if srv.Manager() != m {
		t.Error("Manager() accessor broken")
	}
}

// TestServerCloseIdempotentConcurrent: many goroutines racing Close all
// return, agree on the result, and the listener is actually down after.
func TestServerCloseIdempotentConcurrent(t *testing.T) {
	m := NewManager(Config{Workers: 1, run: stubRun(nil, nil)})
	srv, err := StartServer("127.0.0.1:0", m, httpserve.Options{}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	const callers = 8
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = srv.Close()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != errs[0] {
			t.Errorf("caller %d: %v differs from %v", i, err, errs[0])
		}
	}
	if err := srv.Close(); err != errs[0] {
		t.Errorf("late Close = %v, want %v", err, errs[0])
	}
	cl := http.Client{Timeout: time.Second}
	if _, err := cl.Get("http://" + addr + "/healthz"); err == nil {
		t.Error("listener still serving after Close")
	}
}

// TestServerCloseDrainsInFlight: a running job completes before Close
// returns when it fits inside the shutdown budget.
func TestServerCloseDrainsInFlight(t *testing.T) {
	gate := make(chan struct{})
	m := NewManager(Config{Workers: 1, run: stubRun(nil, gate)})
	srv, err := StartServer("127.0.0.1:0", m, httpserve.Options{}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	st, _, err := m.Submit(testSpec(0), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, m, st.ID)
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(gate)
	}()
	if err := srv.Close(); err != nil {
		t.Fatalf("Close = %v", err)
	}
	if final, _ := m.Job(st.ID); final.State != StateDone {
		t.Errorf("in-flight job after Close = %s, want done", final.State)
	}
}

// SLO histograms for the serving layer. Every latency an operator would
// page on is recorded into internal/obs's power-of-two Hist (bucket b
// counts values in [2^(b−1), 2^b) — observations here are milliseconds, so
// the buckets run 0, 1 ms, 2 ms, 4 ms, … ~70 min) and exported on /metrics
// as Prometheus histograms with cumulative le buckets:
//
//	netags_serve_queue_wait_ms{class=...}   submission → worker dequeue
//	netags_serve_exec_ms                    worker dequeue → terminal state
//	netags_serve_e2e_ms                     submission → terminal state
//	netags_serve_point_ms                   one grid point's compute time
//	netags_http_request_ms{route=,status=}  HTTP handler latency (middleware)
//
// Observe is a mutex-guarded array increment — no allocation — so the
// per-point hot path can record unconditionally.
package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"netags/internal/obs"
)

// sloHists aggregates the serving-layer latency distributions.
type sloHists struct {
	mu               sync.Mutex
	queueWaitByClass map[Priority]*obs.Hist
	exec             obs.Hist
	e2e              obs.Hist
	point            obs.Hist
}

func newSLOHists() *sloHists {
	return &sloHists{queueWaitByClass: map[Priority]*obs.Hist{
		PriorityInteractive: {},
		PriorityBulk:        {},
	}}
}

func ms(d time.Duration) int64 { return int64(d / time.Millisecond) }

func (s *sloHists) observeQueueWait(class Priority, d time.Duration) {
	s.mu.Lock()
	if h, ok := s.queueWaitByClass[class.normalize()]; ok {
		h.Observe(ms(d))
	}
	s.mu.Unlock()
}

func (s *sloHists) observeExec(d time.Duration) {
	s.mu.Lock()
	s.exec.Observe(ms(d))
	s.mu.Unlock()
}

func (s *sloHists) observeEndToEnd(d time.Duration) {
	s.mu.Lock()
	s.e2e.Observe(ms(d))
	s.mu.Unlock()
}

func (s *sloHists) observePoint(elapsedMS float64) {
	s.mu.Lock()
	s.point.Observe(int64(elapsedMS))
	s.mu.Unlock()
}

// WriteProm renders the SLO families in Prometheus text exposition format.
func (s *sloHists) WriteProm(w io.Writer) {
	s.mu.Lock()
	queueWait := make(map[string]obs.Hist, len(s.queueWaitByClass))
	for class, h := range s.queueWaitByClass {
		queueWait[string(class)] = *h
	}
	exec, e2e, point := s.exec, s.e2e, s.point
	s.mu.Unlock()

	promLabeledHists(w, "netags_serve_queue_wait_ms",
		"Milliseconds a job waited between submission and worker dequeue, per priority class.",
		"class", queueWait)
	promHist(w, "netags_serve_exec_ms", "Milliseconds a job spent executing (worker dequeue to terminal state).", exec)
	promHist(w, "netags_serve_e2e_ms", "End-to-end milliseconds from submission to terminal state.", e2e)
	promHist(w, "netags_serve_point_ms", "Milliseconds of compute per completed sweep point.", point)
}

// routeStatus keys one HTTP latency series. Struct-keyed so recording a
// request allocates nothing after the first hit of a (route, status) pair.
type routeStatus struct {
	route  string
	status int
}

// httpHists aggregates per-route/per-status handler latency, fed by the
// middleware in middleware.go. Route label cardinality is bounded by the
// mux's registered patterns; unmatched requests record as route "other".
type httpHists struct {
	mu sync.Mutex
	m  map[routeStatus]*obs.Hist
}

func newHTTPHists() *httpHists { return &httpHists{m: make(map[routeStatus]*obs.Hist)} }

func (h *httpHists) observe(route string, status int, d time.Duration) {
	if route == "" {
		route = "other"
	}
	key := routeStatus{route: route, status: status}
	h.mu.Lock()
	hist, ok := h.m[key]
	if !ok {
		hist = &obs.Hist{}
		h.m[key] = hist
	}
	hist.Observe(ms(d))
	h.mu.Unlock()
}

// WriteProm renders the HTTP latency family with route/status labels.
func (h *httpHists) WriteProm(w io.Writer) {
	h.mu.Lock()
	series := make(map[string]obs.Hist, len(h.m))
	for key, hist := range h.m {
		series[fmt.Sprintf("route=%q,status=\"%d\"", key.route, key.status)] = *hist
	}
	h.mu.Unlock()
	if len(series) == 0 {
		return
	}
	promLabeledHistsRaw(w, "netags_http_request_ms",
		"HTTP handler latency in milliseconds, by mux route and status code.", series)
}

// promHist renders one unlabeled obs.Hist as a Prometheus histogram with
// cumulative buckets (same bucket contract as httpserve's exposition:
// bucket b holds integer values ≤ 2^b − 1, bucket 0 exact zeros).
func promHist(w io.Writer, name, help string, h obs.Hist) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	promHistSeries(w, name, "", h)
}

// promLabeledHists renders one histogram family with a single label across
// several series, HELP/TYPE emitted exactly once.
func promLabeledHists(w io.Writer, name, help, label string, byValue map[string]obs.Hist) {
	series := make(map[string]obs.Hist, len(byValue))
	for v, h := range byValue {
		series[fmt.Sprintf("%s=%q", label, v)] = h
	}
	promLabeledHistsRaw(w, name, help, series)
}

// promLabeledHistsRaw is promLabeledHists with pre-rendered label sets
// (`k1="v1",k2="v2"`). Series render in sorted label order so the
// exposition is deterministic.
func promLabeledHistsRaw(w io.Writer, name, help string, series map[string]obs.Hist) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	keys := make([]string, 0, len(series))
	for k := range series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		promHistSeries(w, name, k, series[k])
	}
}

// promHistSeries writes one series' cumulative buckets, sum, and count.
// labels is either empty or a pre-rendered `k="v"` list without braces.
func promHistSeries(w io.Writer, name, labels string, h obs.Hist) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	top := 0
	for b, c := range h.Counts {
		if c > 0 {
			top = b
		}
	}
	var cum int64
	for b := 0; b <= top; b++ {
		cum += h.Counts[b]
		le := int64(0)
		if b > 0 {
			le = int64(1)<<b - 1
		}
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"%d\"} %d\n", name, labels, sep, le, cum)
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, h.N)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", name, h.Sum, name, h.N)
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %d\n%s_count{%s} %d\n", name, labels, h.Sum, name, labels, h.N)
	}
}

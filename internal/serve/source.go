// Serve-layer feed for the time-series engine. TimeseriesSource snapshots
// the manager's gauges and SLO counters once per sampler tick; the SLO
// histograms are re-expressed as cumulative good/total counter pairs at
// fixed latency thresholds so a burn-rate rule can window them (a
// Prometheus-style `rate(bucket)/rate(count)` without Prometheus).
//
// The source reads the same mutex-guarded snapshots /metrics does — nothing
// here touches a hot path, and with the sampler off none of this code runs
// (BenchmarkServePointDoneDisabled pins the disabled cost at zero
// allocations).
package serve

import (
	"netags/internal/obs"
	"netags/internal/obs/timeseries"
)

// SLO latency thresholds (milliseconds) at which the good-event counters
// are cut. Power-of-two-minus-one so they coincide exactly with the
// histogram bucket bounds the /metrics exposition already publishes.
const (
	sloFastMS = 1<<10 - 1 // ~1s
	sloMidMS  = 1<<12 - 1 // ~4s
	sloSlowMS = 1<<14 - 1 // ~16s
)

// goodCount sums the histogram buckets whose upper bound is <= leMS —
// observations known to be at or under the threshold.
func goodCount(h obs.Hist, leMS int64) float64 {
	var n int64
	for b := range h.Counts {
		top := int64(0)
		if b > 0 {
			top = int64(1)<<b - 1
		}
		if top > leMS {
			break
		}
		n += h.Counts[b]
	}
	return float64(n)
}

// snapshot copies the SLO histograms under the lock for off-hot-path
// consumers (the timeseries source).
func (s *sloHists) snapshot() (exec, e2e, point obs.Hist) {
	s.mu.Lock()
	exec, e2e, point = s.exec, s.e2e, s.point
	s.mu.Unlock()
	return
}

// totals sums request and 5xx counts across every route/status series.
func (h *httpHists) totals() (total, errors int64) {
	h.mu.Lock()
	for key, hist := range h.m {
		total += hist.N
		if key.status >= 500 {
			errors += hist.N
		}
	}
	h.mu.Unlock()
	return
}

// TimeseriesSource returns a sampler source feeding the manager's state
// into a timeseries.DB. Series it records each tick:
//
//	gauges:   serve_queue_len, serve_queue_fill, serve_queue_interactive_len,
//	          serve_queue_bulk_len, serve_jobs_running, serve_cache_hit_ratio,
//	          serve_cache_entries, serve_cache_bytes
//	counters: serve_jobs_executed_total, serve_jobs_deduplicated_total,
//	          serve_jobs_rejected_total, serve_points_resumed_total,
//	          serve_cache_hits_total, serve_cache_misses_total
//	SLO:      slo_e2e_total + slo_e2e_good_{1s,4s,16s},
//	          slo_point_total + slo_point_good_{1s,4s},
//	          slo_http_total + slo_http_good_total + slo_http_errors_total
func (m *Manager) TimeseriesSource() timeseries.Source {
	return func(rec func(name string, v float64)) {
		s := m.Stats()
		rec("serve_queue_len", float64(s.QueueLen))
		if s.QueueDepth > 0 {
			rec("serve_queue_fill", float64(s.QueueLen)/float64(s.QueueDepth))
		}
		classLens := m.sched.ClassLens()
		rec("serve_queue_interactive_len", float64(classLens[PriorityInteractive]))
		rec("serve_queue_bulk_len", float64(classLens[PriorityBulk]))
		rec("serve_jobs_running", float64(s.Running))
		rec("serve_jobs_executed_total", float64(s.Executed))
		rec("serve_jobs_deduplicated_total", float64(s.Deduplicated))
		rec("serve_jobs_rejected_total", float64(s.Rejected))
		rec("serve_points_resumed_total", float64(s.ResumedPoints))

		cs := m.cache.Stats()
		rec("serve_cache_hits_total", float64(cs.Hits))
		rec("serve_cache_misses_total", float64(cs.Misses))
		rec("serve_cache_entries", float64(cs.Entries))
		rec("serve_cache_bytes", float64(cs.Bytes))
		if lookups := cs.Hits + cs.Misses; lookups > 0 {
			rec("serve_cache_hit_ratio", float64(cs.Hits)/float64(lookups))
		}

		_, e2e, point := m.slo.snapshot()
		rec("slo_e2e_total", float64(e2e.N))
		rec("slo_e2e_good_1s", goodCount(e2e, sloFastMS))
		rec("slo_e2e_good_4s", goodCount(e2e, sloMidMS))
		rec("slo_e2e_good_16s", goodCount(e2e, sloSlowMS))
		rec("slo_point_total", float64(point.N))
		rec("slo_point_good_1s", goodCount(point, sloFastMS))
		rec("slo_point_good_4s", goodCount(point, sloMidMS))

		httpTotal, httpErrs := m.http.totals()
		rec("slo_http_total", float64(httpTotal))
		rec("slo_http_good_total", float64(httpTotal-httpErrs))
		rec("slo_http_errors_total", float64(httpErrs))
	}
}

// DefaultSLORules is the rule set ccmserve installs when -slo-rules is not
// given: burn-rate rules over the latency SLOs above plus a queue
// saturation threshold. Windows are short enough to flip within a load test
// yet long enough to ignore a single slow sweep; see DESIGN.md "SLO
// burn-rate alerting" for how the numbers were picked.
func DefaultSLORules() []timeseries.Rule {
	return []timeseries.Rule{
		{
			// 90% of jobs end-to-end under ~4s; fire at 2x budget burn.
			Name: "job_e2e_burn", WindowS: 120,
			Good: "slo_e2e_good_4s", Total: "slo_e2e_total",
			Objective: 0.90, Burn: 2, MinTotal: 5,
		},
		{
			// 95% of sweep points compute under ~1s.
			Name: "point_latency_burn", WindowS: 120,
			Good: "slo_point_good_1s", Total: "slo_point_total",
			Objective: 0.95, Burn: 2, MinTotal: 20,
		},
		{
			// 99% of HTTP requests do not 5xx.
			Name: "http_error_burn", WindowS: 120,
			Good: "slo_http_good_total", Total: "slo_http_total",
			Objective: 0.99, Burn: 2, MinTotal: 10,
		},
		{
			// Sustained queue occupancy >= 90% of capacity means backpressure
			// rejections are imminent.
			Name: "queue_saturation", WindowS: 60,
			Series: "serve_queue_fill", Op: ">=", Value: 0.9,
		},
	}
}

package serve

import (
	"context"
	"testing"
	"time"

	"netags/internal/obs/timeseries"
)

// TestTimeseriesSourceSeries: the manager's sampler source emits the full
// serve-layer series set — queue, jobs, cache, and the SLO counter pairs
// the default burn-rate rules reference — with sane values after one job.
func TestTimeseriesSourceSeries(t *testing.T) {
	ts, m := newTestServer(t, Config{Workers: 1, run: stubRun(nil, nil)})
	cl := &Client{BaseURL: ts.URL}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	sub, err := cl.Submit(ctx, streamSpec(), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Wait(ctx, sub.ID, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	got := map[string]float64{}
	m.TimeseriesSource()(func(name string, v float64) {
		if _, dup := got[name]; dup {
			t.Errorf("series %q recorded twice in one pass", name)
		}
		got[name] = v
	})

	for _, name := range []string{
		"serve_queue_len", "serve_queue_fill",
		"serve_queue_interactive_len", "serve_queue_bulk_len",
		"serve_jobs_running", "serve_jobs_executed_total",
		"serve_jobs_deduplicated_total", "serve_jobs_rejected_total",
		"serve_points_resumed_total",
		"serve_cache_hits_total", "serve_cache_misses_total",
		"serve_cache_entries", "serve_cache_bytes",
		"slo_e2e_total", "slo_e2e_good_1s", "slo_e2e_good_4s", "slo_e2e_good_16s",
		"slo_point_total", "slo_point_good_1s", "slo_point_good_4s",
		"slo_http_total", "slo_http_good_total", "slo_http_errors_total",
	} {
		if _, ok := got[name]; !ok {
			t.Errorf("series %q missing", name)
		}
	}
	if got["serve_jobs_executed_total"] != 1 {
		t.Errorf("serve_jobs_executed_total = %g, want 1", got["serve_jobs_executed_total"])
	}
	if got["slo_e2e_total"] != 1 {
		t.Errorf("slo_e2e_total = %g, want 1", got["slo_e2e_total"])
	}
	if good, total := got["slo_e2e_good_4s"], got["slo_e2e_total"]; good > total {
		t.Errorf("good %g > total %g", good, total)
	}
	if got["slo_http_good_total"]+got["slo_http_errors_total"] != got["slo_http_total"] {
		t.Errorf("http good %g + errors %g != total %g",
			got["slo_http_good_total"], got["slo_http_errors_total"], got["slo_http_total"])
	}
}

// TestDefaultSLORulesValid: every built-in rule validates, names are
// unique, and each series a rule references is one TimeseriesSource emits.
func TestDefaultSLORulesValid(t *testing.T) {
	_, m := newTestServer(t, Config{Workers: 1, run: stubRun(nil, nil)})
	emitted := map[string]bool{}
	m.TimeseriesSource()(func(name string, v float64) { emitted[name] = true })

	rules := DefaultSLORules()
	if len(rules) == 0 {
		t.Fatal("no default rules")
	}
	seen := map[string]bool{}
	for _, r := range rules {
		if err := r.Validate(); err != nil {
			t.Errorf("rule %q invalid: %v", r.Name, err)
		}
		if seen[r.Name] {
			t.Errorf("duplicate rule name %q", r.Name)
		}
		seen[r.Name] = true
		for _, s := range []string{r.Good, r.Total, r.Series} {
			if s != "" && !emitted[s] {
				t.Errorf("rule %q references series %q that TimeseriesSource never emits", r.Name, s)
			}
		}
	}
}

// TestTimeseriesSourceFeedsEvaluator: wiring the source into a DB and the
// default rules through an evaluator must work end to end — the idle
// manager stays quiet (no rule fires with no traffic).
func TestTimeseriesSourceFeedsEvaluator(t *testing.T) {
	_, m := newTestServer(t, Config{Workers: 1, run: stubRun(nil, nil)})
	db := timeseries.New(10*time.Millisecond, time.Minute)
	eval := timeseries.NewEvaluator(db, DefaultSLORules(), nil)
	sampler := timeseries.NewSampler(db, m.TimeseriesSource())
	now := time.Now()
	for i := 0; i < 5; i++ {
		sampler.SampleOnce(now.Add(time.Duration(i) * 10 * time.Millisecond))
	}
	eval.Evaluate(now.Add(50 * time.Millisecond))
	if n := eval.FiringCount(); n != 0 {
		t.Fatalf("idle manager fired %d rules: %+v", n, eval.States())
	}
}

// Package serve is the simulation-as-a-service layer: it accepts sweep
// jobs over HTTP, executes them on a bounded worker pool built on
// experiment.RunSweep, and memoizes the rendered result JSON in a
// content-addressed LRU cache.
//
// The whole design leans on the determinism pinned since PR 1: a job spec
// fully determines its result bytes (seeds are position-derived, aggregation
// is an ordered reduce, the JSON encoder is canonical), so the SHA-256 of
// the spec's canonical serialization is a sound cache key — two semantically
// equal specs hash identically, and a cache hit is byte-exact, not merely
// statistically equivalent. An in-flight singleflight map extends the same
// idea to time: duplicate concurrent submissions collapse onto one
// execution and all of them read the same payload.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"netags/internal/experiment"
	"netags/internal/gmle"
	"netags/internal/trp"
)

// Spec size caps: a service accepting jobs from the network must bound the
// computation a single POST can demand. These are generous for real studies
// (the paper's full evaluation is 9 points × 100 trials at n = 10,000) while
// keeping a hostile spec from parking the pool for hours.
const (
	// MaxPoints bounds the sweep axis length.
	MaxPoints = 4096
	// MaxTrials bounds trials per point.
	MaxTrials = 100000
	// MaxWorkItems bounds points × trials.
	MaxWorkItems = 1 << 20
	// MaxPopulation bounds the tag population per deployment.
	MaxPopulation = 1 << 20
)

// Sweep kinds accepted by JobSpec.Sweep.
const (
	SweepRange   = "range"
	SweepDensity = "density"
	SweepLoss    = "loss"
)

// JobSpec is the canonical description of one sweep job. It mirrors the
// experiment package's three sweep configs (range, density, loss) flattened
// into a single JSON-friendly shape; the selected Sweep decides which axis
// fields are read.
//
// The cache-key contract: Key() is the SHA-256 of the normalized spec's
// canonical JSON, and the normalized spec contains exactly the fields the
// computation reads. Fields the selected sweep ignores are cleared by
// Normalize, defaults are materialized, and the range axis is sorted (range
// results are order-independent: rows are sorted by r and per-point seeds
// derive from the point value, not its index). Consequently specs that
// differ only in JSON field order, explicit-zero versus omitted fields,
// ignored fields, or range-axis order hash identically. Execution knobs that
// cannot change the result — the per-job worker budget — are deliberately
// not part of the spec (determinism at any worker count is pinned by the
// experiment package's tests).
type JobSpec struct {
	// Sweep selects the sweep kind: "range" (default), "density", "loss".
	Sweep string `json:"sweep,omitempty"`
	// N is the tag population (range and loss sweeps; the density sweep
	// ignores it in favor of NValues).
	N int `json:"n,omitempty"`
	// Radius is the deployment disk radius in meters (0 = the paper's 30).
	Radius float64 `json:"radius,omitempty"`
	// Trials is the number of independent deployments per sweep point.
	Trials int `json:"trials,omitempty"`
	// Seed is the sweep seed every trial's seeds derive from.
	Seed uint64 `json:"seed,omitempty"`

	// RValues is the range sweep's axis of inter-tag ranges.
	RValues []float64 `json:"r_values,omitempty"`
	// Protocols selects what the range sweep runs (empty = the paper's
	// SICP, GMLE-CCM, TRP-CCM). Order and duplicates are canonicalized away.
	Protocols []string `json:"protocols,omitempty"`
	// GMLEFrame / TRPFrame are the range sweep's application frame sizes
	// (0 = the paper's defaults).
	GMLEFrame int `json:"gmle_frame,omitempty"`
	TRPFrame  int `json:"trp_frame,omitempty"`
	// ContentionWindow forwards to SICP/CICP (0 = their default).
	ContentionWindow int `json:"contention_window,omitempty"`
	// DisableIndicatorVector runs the CCM protocols without §III-D
	// silencing (the flooding ablation).
	DisableIndicatorVector bool `json:"disable_indicator_vector,omitempty"`

	// NValues is the density sweep's axis of populations.
	NValues []int `json:"n_values,omitempty"`
	// R is the inter-tag range of the density and loss sweeps.
	R float64 `json:"r,omitempty"`

	// LossValues is the loss sweep's axis of loss probabilities.
	LossValues []float64 `json:"loss_values,omitempty"`
	// FrameSize is the loss sweep's TRP frame (0 = derive per deployment).
	FrameSize int `json:"frame_size,omitempty"`
}

// protocolOrder is the canonical protocol ordering used for normalization
// and result rendering (matching the experiment package's render order).
var protocolOrder = []experiment.Protocol{
	experiment.SICP, experiment.CICP, experiment.GMLECCM, experiment.TRPCCM,
}

// Normalized returns the canonical form of the spec: defaults materialized,
// ignored fields cleared, protocol set and range axis canonically ordered.
// It does not validate; Key and Validate both start from this form.
func (s JobSpec) Normalized() JobSpec {
	n := s
	if n.Sweep == "" {
		n.Sweep = SweepRange
	}
	if n.Radius == 0 {
		n.Radius = 30 // the paper's deployment disk
	}
	switch n.Sweep {
	case SweepRange:
		if len(n.Protocols) == 0 {
			n.Protocols = []string{string(experiment.SICP), string(experiment.GMLECCM), string(experiment.TRPCCM)}
		}
		n.Protocols = canonicalProtocols(n.Protocols)
		if n.GMLEFrame == 0 {
			n.GMLEFrame = gmle.PaperFrameSize
		}
		if n.TRPFrame == 0 {
			n.TRPFrame = trp.PaperFrameSize
		}
		// Range rows are sorted by r and seeds are position-derived from the
		// point value, so axis order cannot change the result: sort it.
		n.RValues = append([]float64(nil), n.RValues...)
		sort.Float64s(n.RValues)
		// Fields the range sweep never reads.
		n.NValues, n.R, n.LossValues, n.FrameSize = nil, 0, nil, 0
	case SweepDensity:
		// The density sweep ignores N and every range/loss-only knob.
		n.N = 0
		n.RValues, n.Protocols = nil, nil
		n.GMLEFrame, n.TRPFrame, n.ContentionWindow = 0, 0, 0
		n.DisableIndicatorVector = false
		n.LossValues, n.FrameSize = nil, 0
		n.NValues = append([]int(nil), n.NValues...)
	case SweepLoss:
		n.RValues, n.Protocols = nil, nil
		n.GMLEFrame, n.TRPFrame, n.ContentionWindow = 0, 0, 0
		n.DisableIndicatorVector = false
		n.NValues = nil
		n.LossValues = append([]float64(nil), n.LossValues...)
	}
	return n
}

// canonicalProtocols dedupes and orders a protocol list into the canonical
// render order. Unknown names sort last (alphabetically) so normalization
// stays total; Validate rejects them afterwards.
func canonicalProtocols(in []string) []string {
	seen := map[string]bool{}
	var known, unknown []string
	for _, p := range in {
		if seen[p] {
			continue
		}
		seen[p] = true
		found := false
		for _, kp := range protocolOrder {
			if p == string(kp) {
				found = true
				break
			}
		}
		if found {
			known = append(known, p)
		} else {
			unknown = append(unknown, p)
		}
	}
	out := make([]string, 0, len(known)+len(unknown))
	for _, kp := range protocolOrder {
		for _, p := range known {
			if p == string(kp) {
				out = append(out, p)
			}
		}
	}
	sort.Strings(unknown)
	return append(out, unknown...)
}

// Validate checks the normalized spec. It reports the first problem found.
func (s JobSpec) Validate() error {
	n := s.Normalized()
	if n.Trials <= 0 {
		return fmt.Errorf("serve: trials must be positive, got %d", n.Trials)
	}
	if n.Trials > MaxTrials {
		return fmt.Errorf("serve: trials %d exceeds cap %d", n.Trials, MaxTrials)
	}
	if n.Radius <= 0 {
		return fmt.Errorf("serve: radius must be positive, got %g", n.Radius)
	}
	var points int
	switch n.Sweep {
	case SweepRange:
		points = len(n.RValues)
		if points == 0 {
			return fmt.Errorf("serve: range sweep needs r_values")
		}
		for _, r := range n.RValues {
			if !(r > 0) || r > 1e6 {
				return fmt.Errorf("serve: inter-tag range %g out of range", r)
			}
		}
		if n.N <= 0 || n.N > MaxPopulation {
			return fmt.Errorf("serve: population n must be in [1, %d], got %d", MaxPopulation, n.N)
		}
		for _, p := range n.Protocols {
			switch experiment.Protocol(p) {
			case experiment.SICP, experiment.CICP, experiment.GMLECCM, experiment.TRPCCM:
			default:
				return fmt.Errorf("serve: unknown protocol %q", p)
			}
		}
		if n.GMLEFrame <= 0 || n.TRPFrame <= 0 {
			return fmt.Errorf("serve: frame sizes must be positive")
		}
		if n.ContentionWindow < 0 {
			return fmt.Errorf("serve: contention window must be >= 0, got %d", n.ContentionWindow)
		}
	case SweepDensity:
		points = len(n.NValues)
		if points == 0 {
			return fmt.Errorf("serve: density sweep needs n_values")
		}
		for _, v := range n.NValues {
			if v <= 0 || v > MaxPopulation {
				return fmt.Errorf("serve: population %d out of [1, %d]", v, MaxPopulation)
			}
		}
		if !(n.R > 0) || n.R > 1e6 {
			return fmt.Errorf("serve: inter-tag range %g out of range", n.R)
		}
	case SweepLoss:
		points = len(n.LossValues)
		if points == 0 {
			return fmt.Errorf("serve: loss sweep needs loss_values")
		}
		for _, l := range n.LossValues {
			if l < 0 || l >= 1 {
				return fmt.Errorf("serve: loss probability %g outside [0,1)", l)
			}
		}
		if n.N <= 0 || n.N > MaxPopulation {
			return fmt.Errorf("serve: population n must be in [1, %d], got %d", MaxPopulation, n.N)
		}
		if !(n.R > 0) || n.R > 1e6 {
			return fmt.Errorf("serve: inter-tag range %g out of range", n.R)
		}
		if n.FrameSize < 0 {
			return fmt.Errorf("serve: frame size must be >= 0, got %d", n.FrameSize)
		}
	default:
		return fmt.Errorf("serve: unknown sweep kind %q", n.Sweep)
	}
	if points > MaxPoints {
		return fmt.Errorf("serve: %d sweep points exceed cap %d", points, MaxPoints)
	}
	if items := points * n.Trials; items > MaxWorkItems {
		return fmt.Errorf("serve: %d work items exceed cap %d", items, MaxWorkItems)
	}
	return nil
}

// TotalItems returns the job's work-item count (points × trials) on the
// normalized spec — the tracker's denominator.
func (s JobSpec) TotalItems() int {
	return s.PointCount() * s.Normalized().Trials
}

// PointCount returns the normalized spec's sweep-axis length — the number
// of grid points, and the denominator of the per-point checkpoint.
func (s JobSpec) PointCount() int {
	n := s.Normalized()
	switch n.Sweep {
	case SweepRange:
		return len(n.RValues)
	case SweepDensity:
		return len(n.NValues)
	case SweepLoss:
		return len(n.LossValues)
	}
	return 0
}

// PointLabel renders point i's coordinate on the normalized axis ("r=6",
// "n=5000", "loss=0.2") — the human-readable half of a checkpoint entry.
func (s JobSpec) PointLabel(i int) string {
	n := s.Normalized()
	switch n.Sweep {
	case SweepRange:
		if i >= 0 && i < len(n.RValues) {
			return fmt.Sprintf("r=%g", n.RValues[i])
		}
	case SweepDensity:
		if i >= 0 && i < len(n.NValues) {
			return fmt.Sprintf("n=%d", n.NValues[i])
		}
	case SweepLoss:
		if i >= 0 && i < len(n.LossValues) {
			return fmt.Sprintf("loss=%g", n.LossValues[i])
		}
	}
	return fmt.Sprintf("point=%d", i)
}

// CanonicalJSON renders the normalized spec in its stable serialization:
// encoding/json over a fixed struct (declaration-order fields, omitempty on
// everything optional), which is deterministic byte-for-byte.
func (s JobSpec) CanonicalJSON() ([]byte, error) {
	return json.Marshal(s.Normalized())
}

// Key returns the content address of the spec: the hex SHA-256 of its
// canonical JSON. It does not validate — call Validate before trusting a
// key to be executable.
func (s JobSpec) Key() (string, error) {
	b, err := s.CanonicalJSON()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

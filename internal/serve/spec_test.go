package serve

import (
	"encoding/json"
	"strings"
	"testing"
)

func mustKey(t *testing.T, s JobSpec) string {
	t.Helper()
	k, err := s.Key()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// TestSpecKeyDefaultsVsExplicit: the cache-key contract — a spec written
// with explicit defaults hashes identically to one relying on them.
func TestSpecKeyDefaultsVsExplicit(t *testing.T) {
	minimal := JobSpec{N: 300, Trials: 2, RValues: []float64{6}}
	explicit := JobSpec{
		Sweep:     SweepRange,
		N:         300,
		Radius:    30,
		Trials:    2,
		Seed:      0,
		RValues:   []float64{6},
		Protocols: []string{"SICP", "GMLE-CCM", "TRP-CCM"},
	}
	if mustKey(t, minimal) != mustKey(t, explicit) {
		t.Errorf("explicit defaults changed the key:\n%s\n%s",
			mustJSON(t, minimal.Normalized()), mustJSON(t, explicit.Normalized()))
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestSpecKeyFieldOrder: JSON field order cannot matter — both orderings
// decode to the same spec, hence the same key.
func TestSpecKeyFieldOrder(t *testing.T) {
	a := `{"sweep":"range","n":300,"trials":2,"r_values":[6,2]}`
	b := `{"r_values":[6,2],"trials":2,"n":300,"sweep":"range"}`
	var sa, sb JobSpec
	if err := json.Unmarshal([]byte(a), &sa); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(b), &sb); err != nil {
		t.Fatal(err)
	}
	if mustKey(t, sa) != mustKey(t, sb) {
		t.Error("field order changed the key")
	}
}

// TestSpecKeyRangeAxisOrder: range rows are sorted and per-point seeds are
// position-derived, so axis order is canonicalized away.
func TestSpecKeyRangeAxisOrder(t *testing.T) {
	a := JobSpec{N: 300, Trials: 2, RValues: []float64{6, 2, 10}}
	b := JobSpec{N: 300, Trials: 2, RValues: []float64{10, 6, 2}}
	if mustKey(t, a) != mustKey(t, b) {
		t.Error("range axis order changed the key")
	}
	// Loss axis order, by contrast, is preserved: rows render in axis order.
	la := JobSpec{Sweep: SweepLoss, N: 300, Trials: 2, R: 6, LossValues: []float64{0, 0.2}}
	lb := JobSpec{Sweep: SweepLoss, N: 300, Trials: 2, R: 6, LossValues: []float64{0.2, 0}}
	if mustKey(t, la) == mustKey(t, lb) {
		t.Error("loss axis order must be significant (rows render in axis order)")
	}
}

// TestSpecKeyIgnoredFields: fields the selected sweep never reads are
// cleared by normalization and cannot perturb the key.
func TestSpecKeyIgnoredFields(t *testing.T) {
	plain := JobSpec{Sweep: SweepDensity, Trials: 2, R: 6, NValues: []int{100, 200}}
	noisy := plain
	noisy.N = 5000                     // density ignores N
	noisy.GMLEFrame = 77               // range-only
	noisy.LossValues = []float64{0.5}  // loss-only
	noisy.FrameSize = 12               // loss-only
	noisy.Protocols = []string{"SICP"} // range-only
	if mustKey(t, plain) != mustKey(t, noisy) {
		t.Error("ignored fields perturbed the density key")
	}
}

// TestSpecKeyProtocolSet: protocol order and duplicates canonicalize away;
// a genuinely different set yields a different key.
func TestSpecKeyProtocolSet(t *testing.T) {
	a := JobSpec{N: 300, Trials: 2, RValues: []float64{6}, Protocols: []string{"TRP-CCM", "SICP", "SICP"}}
	b := JobSpec{N: 300, Trials: 2, RValues: []float64{6}, Protocols: []string{"SICP", "TRP-CCM"}}
	c := JobSpec{N: 300, Trials: 2, RValues: []float64{6}, Protocols: []string{"SICP"}}
	if mustKey(t, a) != mustKey(t, b) {
		t.Error("protocol order/duplicates changed the key")
	}
	if mustKey(t, a) == mustKey(t, c) {
		t.Error("different protocol sets must differ")
	}
}

// TestSpecKeyDistinguishes: every semantic field must reach the hash.
func TestSpecKeyDistinguishes(t *testing.T) {
	base := JobSpec{N: 300, Trials: 2, RValues: []float64{6}}
	variants := []func(*JobSpec){
		func(s *JobSpec) { s.N = 301 },
		func(s *JobSpec) { s.Trials = 3 },
		func(s *JobSpec) { s.Seed = 1 },
		func(s *JobSpec) { s.Radius = 25 },
		func(s *JobSpec) { s.RValues = []float64{7} },
		func(s *JobSpec) { s.GMLEFrame = 64 },
		func(s *JobSpec) { s.TRPFrame = 64 },
		func(s *JobSpec) { s.ContentionWindow = 8 },
		func(s *JobSpec) { s.DisableIndicatorVector = true },
	}
	baseKey := mustKey(t, base)
	for i, mutate := range variants {
		v := base
		v.RValues = append([]float64(nil), base.RValues...)
		mutate(&v)
		if mustKey(t, v) == baseKey {
			t.Errorf("variant %d did not change the key", i)
		}
	}
}

// TestSpecKeyRoundTrip: canonical JSON decodes back to a spec with the
// same key (the fuzz target's core property, pinned here on a fixture).
func TestSpecKeyRoundTrip(t *testing.T) {
	for _, s := range []JobSpec{
		{N: 300, Trials: 2, RValues: []float64{2, 6}},
		{Sweep: SweepDensity, Trials: 2, R: 6, NValues: []int{100, 300}},
		{Sweep: SweepLoss, N: 200, Trials: 1, R: 6, LossValues: []float64{0, 0.3}, Seed: 42},
	} {
		canon, err := s.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		var rt JobSpec
		if err := json.Unmarshal(canon, &rt); err != nil {
			t.Fatalf("canonical JSON does not round-trip: %v\n%s", err, canon)
		}
		if mustKey(t, s) != mustKey(t, rt) {
			t.Errorf("round trip changed the key for %s", canon)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	valid := []JobSpec{
		{N: 300, Trials: 2, RValues: []float64{6}},
		{Sweep: SweepDensity, Trials: 1, R: 6, NValues: []int{50}},
		{Sweep: SweepLoss, N: 100, Trials: 1, R: 6, LossValues: []float64{0.5}},
		{N: 300, Trials: 2, RValues: []float64{6}, Protocols: []string{"CICP"}},
	}
	for i, s := range valid {
		if err := s.Validate(); err != nil {
			t.Errorf("valid spec %d rejected: %v", i, err)
		}
	}
	invalid := []struct {
		name string
		s    JobSpec
	}{
		{"no axis", JobSpec{N: 300, Trials: 2}},
		{"zero trials", JobSpec{N: 300, RValues: []float64{6}}},
		{"negative radius", JobSpec{N: 300, Trials: 2, Radius: -1, RValues: []float64{6}}},
		{"zero population", JobSpec{Trials: 2, RValues: []float64{6}}},
		{"unknown sweep", JobSpec{Sweep: "wat", N: 300, Trials: 2}},
		{"unknown protocol", JobSpec{N: 300, Trials: 2, RValues: []float64{6}, Protocols: []string{"ALOHA"}}},
		{"negative r", JobSpec{N: 300, Trials: 2, RValues: []float64{-6}}},
		{"NaN r", JobSpec{N: 300, Trials: 2, RValues: []float64{nan()}}},
		{"loss of 1", JobSpec{Sweep: SweepLoss, N: 100, Trials: 1, R: 6, LossValues: []float64{1}}},
		{"density zero pop", JobSpec{Sweep: SweepDensity, Trials: 1, R: 6, NValues: []int{0}}},
		{"too many trials", JobSpec{N: 300, Trials: MaxTrials + 1, RValues: []float64{6}}},
		{"work item cap", JobSpec{N: 300, Trials: MaxTrials, RValues: manyPoints(64)}},
		{"population cap", JobSpec{N: MaxPopulation + 1, Trials: 1, RValues: []float64{6}}},
	}
	for _, tc := range invalid {
		if err := tc.s.Validate(); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

func nan() float64 {
	var z float64
	return z / z
}

func manyPoints(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i + 1)
	}
	return out
}

// TestSpecTotalItems: the tracker denominator is points × trials.
func TestSpecTotalItems(t *testing.T) {
	s := JobSpec{N: 300, Trials: 5, RValues: []float64{2, 6, 10}}
	if got := s.TotalItems(); got != 15 {
		t.Errorf("TotalItems = %d, want 15", got)
	}
}

// TestSpecKeyIsHex: keys are lowercase hex SHA-256 (64 chars) — stable
// enough to live in URLs.
func TestSpecKeyIsHex(t *testing.T) {
	k := mustKey(t, JobSpec{N: 300, Trials: 2, RValues: []float64{6}})
	if len(k) != 64 || strings.ToLower(k) != k {
		t.Errorf("key %q is not lowercase hex sha256", k)
	}
}

package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

// sseFrame is one parsed Server-Sent Events frame.
type sseFrame struct {
	id      string
	event   string
	data    string
	comment bool
}

// readSSEFrame reads one frame (terminated by a blank line) off r. Comment
// lines (": ...") arrive as their own frames so heartbeats are observable.
func readSSEFrame(r *bufio.Reader) (sseFrame, error) {
	var f sseFrame
	seen := false
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return f, err
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if seen {
				return f, nil
			}
		case strings.HasPrefix(line, ":"):
			f.comment = true
			seen = true
		case strings.HasPrefix(line, "id: "):
			f.id = line[len("id: "):]
			seen = true
		case strings.HasPrefix(line, "event: "):
			f.event = line[len("event: "):]
			seen = true
		case strings.HasPrefix(line, "data: "):
			f.data = line[len("data: "):]
			seen = true
		}
	}
}

// sseGet opens a stream request with the SSE Accept header.
func sseGet(ctx context.Context, t *testing.T, url string, lastEventID string) *http.Response {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("stream status = %d", resp.StatusCode)
	}
	return resp
}

// TestStreamSSEFraming: with Accept: text/event-stream the stream speaks
// SSE — id:/event:/data: frames, text/event-stream content type — and the
// data payloads match the NDJSON event schema.
func TestStreamSSEFraming(t *testing.T) {
	step := make(chan struct{}, 8)
	ts, _ := newTestServer(t, Config{Workers: 1, run: steppedRun(step)})
	cl := &Client{BaseURL: ts.URL}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	sub, err := cl.Submit(ctx, streamSpec(), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	resp := sseGet(ctx, t, ts.URL+"/api/v1/jobs/"+sub.ID+"/stream", "")
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q, want text/event-stream", ct)
	}

	r := bufio.NewReader(resp.Body)
	for i := 0; i < 2; i++ {
		step <- struct{}{}
		f, err := readSSEFrame(r)
		if err != nil {
			t.Fatal(err)
		}
		if f.id != fmt.Sprint(i+1) || f.event != "point" {
			t.Fatalf("frame %d = %+v, want id %d event point", i, f, i+1)
		}
		var ev StreamEvent
		if err := json.Unmarshal([]byte(f.data), &ev); err != nil {
			t.Fatalf("frame %d data not JSON: %v", i, err)
		}
		if ev.Point == nil || ev.Point.Index != i || ev.Seq != i+1 {
			t.Fatalf("frame %d payload = %+v", i, ev)
		}
	}

	// Finish the job: the last two points and then the terminal state frame.
	step <- struct{}{}
	step <- struct{}{}
	var final sseFrame
	for {
		f, err := readSSEFrame(r)
		if err != nil {
			t.Fatal(err)
		}
		if f.event == "state" {
			final = f
			break
		}
	}
	var ev StreamEvent
	if err := json.Unmarshal([]byte(final.data), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.State == nil || ev.State.State != StateDone {
		t.Fatalf("final frame = %+v, want done state", ev)
	}
}

// TestStreamSSEResume: Last-Event-ID resumes exactly like ?after= — only
// events past the cursor replay, then the state frame closes the stream.
func TestStreamSSEResume(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 1, run: stubRun(nil, nil)})
	cl := &Client{BaseURL: ts.URL}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	sub, err := cl.Submit(ctx, streamSpec(), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Wait(ctx, sub.ID, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	resp := sseGet(ctx, t, ts.URL+"/api/v1/jobs/"+sub.ID+"/stream", "2")
	defer resp.Body.Close()
	r := bufio.NewReader(resp.Body)
	var ids []string
	for {
		f, err := readSSEFrame(r)
		if err != nil {
			t.Fatal(err)
		}
		if f.comment {
			continue
		}
		ids = append(ids, f.id)
		if f.event == "state" {
			break
		}
	}
	// streamSpec has 4 points: cursor 2 leaves point frames 3, 4, then state.
	if len(ids) != 3 || ids[0] != "3" || ids[1] != "4" {
		t.Errorf("resumed frame ids = %v, want [3 4 <state>]", ids)
	}
}

// TestStreamSSEHeartbeat: an idle SSE stream emits comment frames at the
// heartbeat interval so proxies and clients know the connection is alive.
func TestStreamSSEHeartbeat(t *testing.T) {
	old := sseHeartbeatInterval
	sseHeartbeatInterval = 20 * time.Millisecond
	defer func() { sseHeartbeatInterval = old }()

	step := make(chan struct{}, 8)
	ts, _ := newTestServer(t, Config{Workers: 1, run: steppedRun(step)})
	cl := &Client{BaseURL: ts.URL}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	sub, err := cl.Submit(ctx, streamSpec(), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	resp := sseGet(ctx, t, ts.URL+"/api/v1/jobs/"+sub.ID+"/stream", "")
	defer resp.Body.Close()

	// No points ever complete, so the only traffic is heartbeats.
	r := bufio.NewReader(resp.Body)
	f, err := readSSEFrame(r)
	if err != nil {
		t.Fatal(err)
	}
	if !f.comment {
		t.Fatalf("expected heartbeat comment frame, got %+v", f)
	}

	// Unblock the job so server shutdown isn't stuck on the worker.
	for i := 0; i < 4; i++ {
		step <- struct{}{}
	}
}

// TestStreamDefaultStaysNDJSON: without the SSE Accept header the stream
// keeps its original NDJSON framing and content type.
func TestStreamDefaultStaysNDJSON(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 1, run: stubRun(nil, nil)})
	cl := &Client{BaseURL: ts.URL}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	sub, err := cl.Submit(ctx, streamSpec(), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Wait(ctx, sub.ID, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + sub.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	lines := 0
	for sc.Scan() {
		var ev StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d not NDJSON: %v", lines, err)
		}
		lines++
	}
	if lines != 5 { // 4 points + state
		t.Errorf("NDJSON lines = %d, want 5", lines)
	}
}

package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"
	"time"
)

// steppedRun returns a run override that emits one point per receive on
// step, so tests control exactly when each point completes.
func steppedRun(step <-chan struct{}) func(context.Context, JobSpec, int, runHooks) error {
	return func(ctx context.Context, spec JobSpec, workers int, h runHooks) error {
		n := spec.Normalized()
		for i := 0; i < n.PointCount(); i++ {
			if h.skip != nil && i < len(h.skip) && h.skip[i] {
				continue
			}
			select {
			case <-step:
			case <-ctx.Done():
				return ctx.Err()
			}
			h.pointDone(PointRecord{
				Index: i,
				Label: n.PointLabel(i),
				Row:   json.RawMessage(fmt.Sprintf(`{"point":%d}`, i)),
			})
		}
		return nil
	}
}

func streamSpec() JobSpec {
	return JobSpec{N: 100, Trials: 1, RValues: []float64{3, 4, 5, 6}}
}

// TestStreamLiveThenReconnect: a client follows a running job's stream,
// drops the connection halfway, reconnects with ?after=<cursor>, and
// receives exactly the missed events plus the final state — no duplicates,
// no gaps.
func TestStreamLiveThenReconnect(t *testing.T) {
	step := make(chan struct{}, 8)
	ts, _ := newTestServer(t, Config{Workers: 1, run: steppedRun(step)})
	cl := &Client{BaseURL: ts.URL}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	sub, err := cl.Submit(ctx, streamSpec(), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// First connection: watch the first two points arrive live.
	s1, err := cl.Stream(ctx, sub.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	last := 0
	for i := 0; i < 2; i++ {
		step <- struct{}{}
		if !s1.Next() {
			t.Fatalf("stream ended early: %v", s1.Err())
		}
		ev := s1.Event()
		if ev.Event != "point" || ev.Seq != i+1 || ev.Point == nil || ev.Point.Index != i {
			t.Fatalf("event %d = %+v", i, ev)
		}
		last = ev.Seq
	}
	s1.Close() // dropped connection

	// Finish the job while nobody is connected.
	step <- struct{}{}
	step <- struct{}{}

	// Reconnect from the cursor: only seq 3, 4, then the state event.
	s2, err := cl.Stream(ctx, sub.ID, last)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	var seqs []int
	var final *JobStatus
	for s2.Next() {
		ev := s2.Event()
		switch ev.Event {
		case "point":
			seqs = append(seqs, ev.Seq)
		case "state":
			final = ev.State
		}
		if final != nil {
			break
		}
	}
	if s2.Err() != nil {
		t.Fatal(s2.Err())
	}
	if len(seqs) != 2 || seqs[0] != 3 || seqs[1] != 4 {
		t.Errorf("reconnect seqs = %v, want [3 4]", seqs)
	}
	if final == nil || final.State != StateDone {
		t.Errorf("final state event = %+v, want done", final)
	}
}

// TestStreamDoneJobReplays: streaming an already-finished job replays the
// full history and closes with the state event immediately.
func TestStreamDoneJobReplays(t *testing.T) {
	ts, m := newTestServer(t, Config{Workers: 1, run: stubRun(nil, nil)})
	cl := &Client{BaseURL: ts.URL}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	sub, err := cl.Submit(ctx, streamSpec(), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, sub.ID)

	s, err := cl.Stream(ctx, sub.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	points := 0
	sawState := false
	for s.Next() {
		switch s.Event().Event {
		case "point":
			points++
		case "state":
			sawState = true
		}
		if sawState {
			break
		}
	}
	if points != streamSpec().PointCount() || !sawState {
		t.Errorf("done-job stream replayed %d points, state %v", points, sawState)
	}
}

// TestAwaitDeliversPointsAndFinalState: Await follows the stream to the
// terminal status, invoking onPoint once per point.
func TestAwaitDeliversPointsAndFinalState(t *testing.T) {
	step := make(chan struct{}, 8)
	ts, _ := newTestServer(t, Config{Workers: 1, run: steppedRun(step)})
	cl := &Client{BaseURL: ts.URL}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	spec := streamSpec()
	sub, err := cl.Submit(ctx, spec, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < spec.PointCount(); i++ {
		step <- struct{}{}
	}
	var got []int
	final, err := cl.Await(ctx, sub.ID, func(rec PointRecord) {
		got = append(got, rec.Index)
	})
	if err != nil || final.State != StateDone {
		t.Fatalf("Await = %+v, %v", final, err)
	}
	if len(got) != spec.PointCount() {
		t.Fatalf("Await delivered %d points %v", len(got), got)
	}
	for i, idx := range got {
		if idx != i {
			t.Errorf("point order %v", got)
		}
	}
}

// TestAwaitUnknownJobErrors: Await surfaces a 404 as a typed APIError
// instead of reconnect-looping forever.
func TestAwaitUnknownJobErrors(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 1, run: stubRun(nil, nil)})
	cl := &Client{BaseURL: ts.URL}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err := cl.Await(ctx, "0000000000000000000000000000000000000000000000000000000000000000", nil)
	if err == nil {
		t.Fatal("Await on unknown job succeeded")
	}
}

// Job lifecycle tracing. Every job carries a timestamped timeline of its
// state transitions — received → admitted(class)/deduplicated/rejected →
// scheduled → running → point_completed k/N (with checkpoint_restored when
// a resume skipped work) → completed/failed/canceled/drained — in a bounded
// in-memory TraceStore keyed by job key. GET /api/v1/jobs/{id}/trace
// renders the timeline with per-stage durations, which is what turns "this
// job was slow" into "this job waited 40 s in the bulk queue behind three
// other clients, then ran in 2 s".
//
// Bounds: the store keeps at most maxJobs job timelines (oldest evicted
// first) and at most headCap+tailCap events per job. A long sweep keeps its
// first headCap events (the lifecycle head: received, admitted, restored,
// scheduled, running — the part that explains scheduling) verbatim and the
// most recent tailCap events in a ring, with an explicit dropped count in
// between, so memory stays constant no matter how many points a job has.
//
// The per-point append path is allocation-free once a job's trace exists:
// events are flat values written into preallocated buffers, stage names are
// package constants, and the k/N detail is stored as integers and only
// formatted at render time.
package serve

import (
	"sync"
	"time"
)

// Lifecycle stages recorded in a job trace (TraceEvent.Stage). These are
// also the Phase of the mirrored obs.KindJob events on /events.
const (
	StageReceived           = "received"            // submission arrived (post-validation)
	StageAdmitted           = "admitted"            // enqueued under a priority class
	StageDeduplicated       = "deduplicated"        // a later duplicate joined this job
	StageRejected           = "rejected"            // submission bounced (queue_full, draining)
	StageCheckpointRestored = "checkpoint_restored" // resume: K of N points skipped
	StageScheduled          = "scheduled"           // a worker dequeued the job
	StageRunning            = "running"             // sweep execution began
	StagePointCompleted     = "point_completed"     // one grid point landed (K of N)
	StageStreamReconnect    = "stream_reconnect"    // a client re-attached with a cursor
	StageCompleted          = "completed"           // terminal: payload assembled + cached
	StageFailed             = "failed"              // terminal: sweep error
	StageCanceled           = "canceled"            // terminal: DELETE or pre-run cancel
	StageDrained            = "drained"             // terminal: shutdown interrupted it
)

// TraceEvent is one timestamped lifecycle transition. It is a flat value
// type so the hot-path append is a struct copy into a preallocated buffer.
type TraceEvent struct {
	// Seq is the 1-based per-job event number (gaps mark dropped events).
	Seq int
	// T is the transition time.
	T time.Time
	// Stage is one of the Stage* constants.
	Stage string
	// Class is the scheduling class, set on admitted/scheduled events.
	Class Priority
	// K and N carry stage cardinality: points done / total points on
	// point_completed, points restored / total on checkpoint_restored,
	// duplicates so far on deduplicated, resume cursor on stream_reconnect.
	K, N int
	// Detail is a short free-form annotation (rejection reason, error).
	// Hot-path emitters pass "" or a constant; it never carries per-point
	// formatted text.
	Detail string
}

// Default trace store bounds; see Config.TraceEventsPerJob / TraceJobs.
const (
	defaultTraceHead = 32   // verbatim head events per job
	defaultTraceTail = 224  // ring of most recent events per job
	defaultTraceJobs = 1024 // job timelines retained
)

// jobTrace is one job's bounded timeline: the first len(head) events
// verbatim plus a ring of the most recent tail events.
type jobTrace struct {
	head  []TraceEvent // first events, up to cap(head)
	tail  []TraceEvent // ring buffer of later events
	total int          // events ever appended (Seq of the last one)
}

// TraceStore is the bounded lifecycle trace store, keyed by job key.
// Construct with NewTraceStore; a nil *TraceStore is valid and disables
// tracing (every method no-ops), preserving the zero-cost path.
type TraceStore struct {
	headCap int
	tailCap int
	maxJobs int

	mu      sync.Mutex
	jobs    map[string]*jobTrace
	order   []string // insertion order, for eviction
	dropped int64    // monotonic: events lost to tail overwrite or timeline eviction
}

// NewTraceStore returns a store keeping at most eventsPerJob events per job
// (0 = default 256) across at most maxJobs jobs (0 = default 1024).
func NewTraceStore(eventsPerJob, maxJobs int) *TraceStore {
	head, tail := defaultTraceHead, defaultTraceTail
	if eventsPerJob > 0 {
		head = eventsPerJob / 8
		if head < 1 {
			head = 1
		}
		tail = eventsPerJob - head
		if tail < 1 {
			tail = 1
		}
	}
	if maxJobs <= 0 {
		maxJobs = defaultTraceJobs
	}
	return &TraceStore{
		headCap: head,
		tailCap: tail,
		maxJobs: maxJobs,
		jobs:    make(map[string]*jobTrace),
	}
}

// Append records one lifecycle event for job id, stamping Seq and (when
// ev.T is zero) the time. Allocation-free once the job's trace buffers
// exist; no-op on a nil store.
func (s *TraceStore) Append(id string, ev TraceEvent) {
	if s == nil {
		return
	}
	if ev.T.IsZero() {
		ev.T = time.Now()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		j = &jobTrace{head: make([]TraceEvent, 0, s.headCap)}
		s.jobs[id] = j
		s.order = append(s.order, id)
		s.evictLocked()
	}
	j.total++
	ev.Seq = j.total
	if len(j.head) < cap(j.head) {
		j.head = append(j.head, ev)
		return
	}
	if j.tail == nil {
		j.tail = make([]TraceEvent, s.tailCap)
	}
	if j.total-cap(j.head) > len(j.tail) {
		s.dropped++ // the slot below overwrites a still-retained event
	}
	j.tail[(j.total-cap(j.head)-1)%len(j.tail)] = ev
}

// evictLocked drops the oldest job timelines beyond maxJobs, counting their
// retained events as dropped.
func (s *TraceStore) evictLocked() {
	for len(s.jobs) > s.maxJobs && len(s.order) > 0 {
		if j, ok := s.jobs[s.order[0]]; ok {
			n := j.total
			if max := cap(j.head) + s.tailCap; n > max {
				n = max
			}
			s.dropped += int64(n)
		}
		delete(s.jobs, s.order[0])
		s.order = s.order[1:]
	}
}

// Dropped returns the monotonic count of trace events lost to per-job tail
// overwrite or whole-timeline eviction — the drop-rate companion to the
// capacity gauges on /metrics. Forget (deliberate job pruning) does not
// count: it is bookkeeping, not loss under load.
func (s *TraceStore) Dropped() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Forget drops job id's timeline (job-record pruning).
func (s *TraceStore) Forget(id string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.jobs[id]; !ok {
		return
	}
	delete(s.jobs, id)
	for i, k := range s.order {
		if k == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

// Events returns job id's retained timeline in Seq order plus the number of
// events dropped between the head and the tail. ok is false for an
// untraced job (or a nil store).
func (s *TraceStore) Events(id string) (evs []TraceEvent, dropped int, ok bool) {
	if s == nil {
		return nil, 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	j, found := s.jobs[id]
	if !found {
		return nil, 0, false
	}
	evs = append(evs, j.head...)
	if j.tail != nil {
		ringed := j.total - cap(j.head)
		keep := ringed
		if keep > len(j.tail) {
			keep = len(j.tail)
		}
		for i := ringed - keep; i < ringed; i++ {
			evs = append(evs, j.tail[i%len(j.tail)])
		}
		dropped = ringed - keep
	}
	return evs, dropped, true
}

// TraceTimelineEvent is the JSON view of one lifecycle event in
// GET /api/v1/jobs/{id}/trace.
type TraceTimelineEvent struct {
	Seq   int    `json:"seq"`
	Time  string `json:"t"` // RFC 3339, UTC
	Stage string `json:"stage"`
	// Class is the scheduling class on admitted/scheduled/terminal events.
	Class Priority `json:"class,omitempty"`
	// K/N carry stage cardinality (see TraceEvent.K); on scheduled events K
	// is the queue wait in milliseconds.
	K      int    `json:"k,omitempty"`
	N      int    `json:"n,omitempty"`
	Detail string `json:"detail,omitempty"`
	// SincePrevMS is the gap to the previous retained event — the per-stage
	// duration an operator reads the timeline for. Across a dropped-events
	// gap it still measures real elapsed time.
	SincePrevMS float64 `json:"since_prev_ms"`
}

// TraceTimeline is one job's rendered lifecycle timeline.
type TraceTimeline struct {
	Job    string               `json:"job"`
	Events []TraceTimelineEvent `json:"events"`
	// DroppedEvents counts mid-timeline events evicted by the per-job bound
	// (Seq gaps mark where).
	DroppedEvents int `json:"dropped_events,omitempty"`
	// Summary durations derived from the event timestamps: received →
	// scheduled, running → terminal, first → last event.
	QueueWaitMS float64 `json:"queue_wait_ms"`
	ExecMS      float64 `json:"exec_ms"`
	TotalMS     float64 `json:"total_ms"`
}

func msF(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Timeline renders job id's retained events with per-stage durations. ok is
// false for an untraced job or a nil (disabled) store.
func (s *TraceStore) Timeline(id string) (TraceTimeline, bool) {
	evs, dropped, ok := s.Events(id)
	if !ok {
		return TraceTimeline{}, false
	}
	tl := TraceTimeline{Job: id, DroppedEvents: dropped, Events: make([]TraceTimelineEvent, len(evs))}
	var received, scheduled, running, terminal time.Time
	for i, ev := range evs {
		out := TraceTimelineEvent{
			Seq: ev.Seq, Time: ev.T.UTC().Format(time.RFC3339Nano),
			Stage: ev.Stage, Class: ev.Class, K: ev.K, N: ev.N, Detail: ev.Detail,
		}
		if i > 0 {
			out.SincePrevMS = msF(ev.T.Sub(evs[i-1].T))
		}
		tl.Events[i] = out
		switch ev.Stage {
		case StageReceived:
			if received.IsZero() {
				received = ev.T
			}
		case StageScheduled:
			scheduled = ev.T
		case StageRunning:
			running = ev.T
		case StageCompleted, StageFailed, StageCanceled, StageDrained:
			terminal = ev.T
		}
	}
	if !received.IsZero() && !scheduled.IsZero() {
		tl.QueueWaitMS = msF(scheduled.Sub(received))
	}
	if !running.IsZero() && !terminal.IsZero() {
		tl.ExecMS = msF(terminal.Sub(running))
	}
	if len(evs) > 1 {
		tl.TotalMS = msF(evs[len(evs)-1].T.Sub(evs[0].T))
	}
	return tl, true
}

// Stats is a point-in-time view of the store, for /metrics.
func (s *TraceStore) Stats() (jobs, events int) {
	if s == nil {
		return 0, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.jobs {
		n := j.total
		if max := cap(j.head) + s.tailCap; n > max {
			n = max
		}
		events += n
	}
	return len(s.jobs), events
}

package serve

import (
	"context"
	"strings"
	"testing"
	"time"

	"netags/internal/obs"
)

func TestTraceStoreNilIsDisabled(t *testing.T) {
	var s *TraceStore
	s.Append("x", TraceEvent{Stage: StageReceived}) // must not panic
	s.Forget("x")
	if _, _, ok := s.Events("x"); ok {
		t.Fatal("nil store reported events")
	}
	if _, ok := s.Timeline("x"); ok {
		t.Fatal("nil store reported a timeline")
	}
	if jobs, events := s.Stats(); jobs != 0 || events != 0 {
		t.Fatalf("nil store stats = %d/%d", jobs, events)
	}
}

func TestTraceStoreHeadTailBounds(t *testing.T) {
	// 16 events per job → head 2, tail 14.
	s := NewTraceStore(16, 0)
	const total = 50
	for i := 0; i < total; i++ {
		s.Append("job", TraceEvent{Stage: StagePointCompleted, K: i + 1})
	}
	evs, dropped, ok := s.Events("job")
	if !ok {
		t.Fatal("job untraced")
	}
	if len(evs) != 16 {
		t.Fatalf("retained %d events, want 16", len(evs))
	}
	if dropped != total-16 {
		t.Fatalf("dropped = %d, want %d", dropped, total-16)
	}
	// Head is verbatim: Seq 1, 2. Tail is the most recent 14: Seq 37..50.
	if evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Fatalf("head seqs = %d,%d, want 1,2", evs[0].Seq, evs[1].Seq)
	}
	for i, ev := range evs[2:] {
		if want := total - 14 + 1 + i; ev.Seq != want {
			t.Fatalf("tail[%d].Seq = %d, want %d", i, ev.Seq, want)
		}
	}
}

func TestTraceStoreShortJobKeepsEverything(t *testing.T) {
	s := NewTraceStore(0, 0) // defaults: 32 head + 224 tail
	stages := []string{StageReceived, StageAdmitted, StageScheduled, StageRunning, StageCompleted}
	for _, st := range stages {
		s.Append("job", TraceEvent{Stage: st})
	}
	evs, dropped, _ := s.Events("job")
	if len(evs) != len(stages) || dropped != 0 {
		t.Fatalf("got %d events (%d dropped), want %d/0", len(evs), dropped, len(stages))
	}
	for i, ev := range evs {
		if ev.Stage != stages[i] || ev.Seq != i+1 {
			t.Fatalf("event %d = %q seq %d", i, ev.Stage, ev.Seq)
		}
	}
}

func TestTraceStoreEvictionAndForget(t *testing.T) {
	s := NewTraceStore(8, 2)
	s.Append("a", TraceEvent{Stage: StageReceived})
	s.Append("b", TraceEvent{Stage: StageReceived})
	s.Append("c", TraceEvent{Stage: StageReceived}) // evicts a
	if _, _, ok := s.Events("a"); ok {
		t.Fatal("oldest job survived eviction")
	}
	if _, _, ok := s.Events("b"); !ok {
		t.Fatal("second job evicted too early")
	}
	s.Forget("b")
	if _, _, ok := s.Events("b"); ok {
		t.Fatal("Forget left the timeline behind")
	}
	if jobs, _ := s.Stats(); jobs != 1 {
		t.Fatalf("stats jobs = %d, want 1", jobs)
	}
}

func TestTraceTimelineDurations(t *testing.T) {
	s := NewTraceStore(0, 0)
	base := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	at := func(ms int) time.Time { return base.Add(time.Duration(ms) * time.Millisecond) }
	s.Append("job", TraceEvent{Stage: StageReceived, T: at(0)})
	s.Append("job", TraceEvent{Stage: StageAdmitted, Class: PriorityBulk, T: at(1), N: 3})
	s.Append("job", TraceEvent{Stage: StageScheduled, Class: PriorityBulk, T: at(40), K: 40})
	s.Append("job", TraceEvent{Stage: StageRunning, T: at(41)})
	s.Append("job", TraceEvent{Stage: StagePointCompleted, T: at(50), K: 1, N: 3})
	s.Append("job", TraceEvent{Stage: StageCompleted, T: at(90)})

	tl, ok := s.Timeline("job")
	if !ok {
		t.Fatal("no timeline")
	}
	if tl.QueueWaitMS != 40 {
		t.Fatalf("queue_wait_ms = %v, want 40", tl.QueueWaitMS)
	}
	if tl.ExecMS != 49 {
		t.Fatalf("exec_ms = %v, want 49", tl.ExecMS)
	}
	if tl.TotalMS != 90 {
		t.Fatalf("total_ms = %v, want 90", tl.TotalMS)
	}
	if tl.Events[0].SincePrevMS != 0 {
		t.Fatalf("first since_prev_ms = %v, want 0", tl.Events[0].SincePrevMS)
	}
	if tl.Events[2].SincePrevMS != 39 {
		t.Fatalf("scheduled since_prev_ms = %v, want 39", tl.Events[2].SincePrevMS)
	}
	if got := tl.Events[1].Class; got != PriorityBulk {
		t.Fatalf("admitted class = %q", got)
	}
	if !strings.HasPrefix(tl.Events[0].Time, "2026-08-07T12:00:00") {
		t.Fatalf("timestamp = %q", tl.Events[0].Time)
	}
}

// TestManagerTraceLifecycle drives a real job through the manager and
// checks its timeline plus the mirrored obs.KindJob events in a Ring.
func TestManagerTraceLifecycle(t *testing.T) {
	ring := obs.NewRing(256)
	m := NewManager(Config{Workers: 1, Tracer: ring, run: stubRun(nil, nil)})
	defer m.Shutdown(context.Background())

	st, _, err := m.Submit(testSpec(1), SubmitOptions{Priority: PriorityBulk, Client: "cli-a"})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, st.ID)

	tl, ok := m.JobTrace(st.ID)
	if !ok {
		t.Fatal("no trace for completed job")
	}
	var stages []string
	for _, ev := range tl.Events {
		stages = append(stages, ev.Stage)
	}
	for _, want := range []string{StageReceived, StageAdmitted, StageScheduled, StageRunning, StagePointCompleted, StageCompleted} {
		found := false
		for _, s := range stages {
			if s == want {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("timeline missing stage %q: %v", want, stages)
		}
	}
	// The mirrored ring events carry the job id and the same stages.
	sawJob := false
	for _, ev := range ring.Events() {
		if ev.Kind == obs.KindJob && ev.Job == st.ID && ev.Phase == StageCompleted {
			sawJob = true
		}
	}
	if !sawJob {
		t.Fatal("ring missing mirrored completed event")
	}
}

func TestManagerTraceDisabled(t *testing.T) {
	m := NewManager(Config{Workers: 1, TraceEventsPerJob: -1, run: stubRun(nil, nil)})
	defer m.Shutdown(context.Background())
	st, _, err := m.Submit(testSpec(2), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, st.ID)
	if m.Trace() != nil {
		t.Fatal("trace store exists despite TraceEventsPerJob=-1")
	}
	if _, ok := m.JobTrace(st.ID); ok {
		t.Fatal("JobTrace answered with tracing disabled")
	}
}

// TestTraceStoreDropped: the monotonic drop counter covers both loss modes
// — per-job tail overwrite and whole-timeline eviction — while deliberate
// Forget stays uncounted.
func TestTraceStoreDropped(t *testing.T) {
	// 16 events per job → head 2, tail 14; overwrite starts at event 17.
	s := NewTraceStore(16, 2)
	if s.Dropped() != 0 {
		t.Fatalf("fresh store dropped = %d", s.Dropped())
	}
	for i := 0; i < 50; i++ {
		s.Append("a", TraceEvent{Stage: StagePointCompleted, K: i + 1})
	}
	if got := s.Dropped(); got != 34 { // events 17..50 each overwrite one
		t.Fatalf("tail-overwrite dropped = %d, want 34", got)
	}

	// Third job evicts "a", whose 16 retained events count as dropped.
	s.Append("b", TraceEvent{Stage: StageReceived})
	s.Append("c", TraceEvent{Stage: StageReceived})
	if got := s.Dropped(); got != 34+16 {
		t.Fatalf("post-eviction dropped = %d, want 50", got)
	}

	// Forget is bookkeeping, not loss.
	s.Forget("b")
	if got := s.Dropped(); got != 50 {
		t.Fatalf("post-Forget dropped = %d, want 50", got)
	}

	var nilStore *TraceStore
	if nilStore.Dropped() != 0 {
		t.Fatal("nil store dropped != 0")
	}
}

package sicp

import (
	"fmt"

	"netags/internal/energy"
	"netags/internal/obs"
	"netags/internal/prng"
	"netags/internal/topology"
)

// CollectCICP runs the Contention-based ID Collection Protocol, SICP's
// sibling from [16]. The tree phase is identical; the collection phase
// replaces parent tokens with sibling contention: all children of a parent
// that still hold data contend for the channel by drawing backoff slots in
// the contention window, and when two or more draw the same minimum slot
// their ID messages collide at the parent and must be retransmitted. The
// paper notes SICP outperforms CICP; the extra collided transmissions are
// exactly why, and the benchmark suite reproduces that gap.
func CollectCICP(nw *topology.Network, opts Options) (*Result, error) {
	opts.setDefaults()
	if opts.IDs != nil && len(opts.IDs) != nw.N() {
		return nil, fmt.Errorf("sicp: %d IDs for %d tags", len(opts.IDs), nw.N())
	}
	if opts.ContentionWindow < 2 {
		return nil, fmt.Errorf("sicp: CICP needs a contention window >= 2, got %d", opts.ContentionWindow)
	}
	c := &collector{
		nw:    nw,
		opts:  opts,
		proto: obs.ProtoCICP,
		src:   prng.New(opts.Seed),
		meter: energy.NewMeter(nw.N()),
	}
	c.sessionStart()
	c.buildTree()
	c.collectContention()
	c.sessionEnd()
	return &Result{
		Collected: c.collected,
		Clock:     c.clock,
		Meter:     c.meter,
		TreeDepth: c.depth,
	}, nil
}

// collectContention drains the tree bottom-up. For each parent (processed in
// post-order so children always finish before their parent contends at the
// next level), the children race: every contention round each remaining
// child draws a slot in [0, W); the holders of the minimum draw transmit,
// and unless the minimum is unique the messages collide and are retried.
func (c *collector) collectContention() {
	n := c.nw.N()
	buffered := make([][]uint64, n)
	for i := 0; i < n; i++ {
		if c.parent[i] != parentNone {
			buffered[i] = append(buffered[i], c.id(i))
		}
	}

	// Post-order over the whole forest.
	var post []int32
	stack := make([]int32, 0, n)
	visited := make([]bool, n)
	for _, root := range c.order {
		stack = append(stack, root)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			if !visited[u] {
				visited[u] = true
				stack = append(stack, c.children[u]...)
				continue
			}
			stack = stack[:len(stack)-1]
			post = append(post, u)
		}
	}
	// The stack-based traversal above visits children after re-examining
	// the parent, producing a valid post-order (every child precedes its
	// parent because children are pushed above it).

	// Group the post-order by parent and run the contention race per
	// sibling group, in the order groups complete.
	start := c.clock
	for _, u := range post {
		if len(c.children[u]) > 0 {
			c.race(c.children[u], buffered)
		}
		// u itself uploads once its own group's turn comes; tier-1 tags
		// form the reader's group below.
	}
	c.race(c.order, buffered)
	c.batch("collect", 1, 0, len(c.collected), start)
}

// race resolves one sibling group: members repeatedly contend until each has
// uploaded its buffer to the shared parent. The window follows binary
// exponential backoff — it doubles after every collision — because with a
// fixed small window a large sibling group (the reader can have thousands of
// tier-1 children) would collide forever. It stays at its grown size for the
// rest of the group: halving after each success would re-pay the collision
// ladder for every single upload.
func (c *collector) race(group []int32, buffered [][]uint64) {
	remaining := append([]int32(nil), group...)
	w := c.opts.ContentionWindow
	const maxWindow = 1 << 16
	for len(remaining) > 0 {
		// Each round every remaining child draws a backoff slot; the
		// minimal draw(s) transmit first.
		minSlot := w
		var winners []int32
		for _, ch := range remaining {
			d := c.src.Intn(w)
			if d < minSlot {
				minSlot, winners = d, winners[:0]
			}
			if d == minSlot {
				winners = append(winners, ch)
			}
		}
		c.clock.ShortSlots += int64(minSlot)
		if len(winners) > 1 {
			// Collision: every winner burns one full ID message that no
			// one can decode, then the round repeats with a wider window.
			for _, ch := range winners {
				c.transmit(int(ch))
			}
			if w < maxWindow {
				w *= 2
			}
			continue
		}
		ch := winners[0]
		c.uploadContended(ch, buffered)
		for i, r := range remaining {
			if r == ch {
				remaining = append(remaining[:i], remaining[i+1:]...)
				break
			}
		}
	}
}

// uploadContended sends a child's buffer to its parent and puts it to sleep.
// There is no token (contention replaces the parent's coordination), but
// every message must be acknowledged: without an ack a contender cannot know
// whether its transmission collided, which is precisely how collisions are
// detected here.
func (c *collector) uploadContended(u int32, buffered [][]uint64) {
	p := c.parent[u]
	for _, id := range buffered[u] {
		c.backoff()
		c.transmit(int(u))
		if p == parentReader {
			c.collected = append(c.collected, id)
			// The reader's ack: one long slot, decoded by the uploader.
			c.clock.LongSlots++
			c.cumLong++
			c.meter.AddReceived(int(u), energy.IDBits-1)
		} else {
			buffered[p] = append(buffered[p], id)
			c.transmit(int(p))
		}
	}
	buffered[u] = nil
	c.sleep(u)
}

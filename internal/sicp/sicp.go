// Package sicp implements the baseline the paper compares against (§VI-A):
// the Serialized ID Collection Protocol for state-free networked tags from
// Chen et al. [16], plus its contention-based sibling CICP.
//
// The paper only sketches SICP ("a system-wide broadcast to establish a
// spanning tree for routing, then CSMA to relay IDs hop by hop to the
// reader"), so this package reconstructs it — see DESIGN.md "Substitutions"
// for the modeling choices. The reconstruction:
//
//  1. Tree phase. The reader's 96-bit collection request floods outward.
//     Each tag rebroadcasts it exactly once after a CSMA backoff; a tag's
//     parent is the upstream neighbor whose rebroadcast it heard first. The
//     reader's own broadcast reaches only tier-1 tags (per §VI-A, SICP's
//     reader↔tag range is r', unlike CCM's one-hop R coverage).
//  2. Collection phase. Strictly serialized post-order DFS over the tree:
//     a parent hands a 96-bit token to each child in turn; the child uploads
//     every ID buffered from its own subtree (96 bits each, preceded by a
//     CSMA backoff); the parent closes the exchange with a 96-bit ack and
//     the child goes to sleep. The reader's tier-1 children self-serialize
//     by carrier sense instead of receiving reader tokens.
//
// Energy model: a tag is awake from the reader's request until its own
// upload is complete — under CSMA it cannot sleep earlier because it does
// not know when its turn comes. While awake it carrier-senses every slot
// (1 bit per short backoff slot, 1 bit per long slot it cannot decode) and
// fully receives every 96-bit message transmitted by a neighbor. Time
// model: each message occupies one long (96-bit) slot; each backoff burns
// its drawn number of short slots.
package sicp

import (
	"fmt"

	"netags/internal/energy"
	"netags/internal/obs"
	"netags/internal/prng"
	"netags/internal/topology"
)

// Options configures a collection run.
type Options struct {
	// Seed drives the CSMA backoff draws (and nothing else: the protocol is
	// otherwise deterministic given the topology).
	Seed uint64
	// ContentionWindow is the CSMA window W: each transmission is preceded
	// by a uniform backoff in [0, W) short slots. Default 8.
	ContentionWindow int
	// IDs assigns per-tag identifiers; nil means tag i carries uint64(i)+1.
	IDs []uint64
	// Tracer, if non-nil, receives session and slot-batch events (one batch
	// per flood tier and per collection unit). Observe-only.
	Tracer obs.Tracer
}

func (o *Options) setDefaults() {
	if o.ContentionWindow == 0 {
		o.ContentionWindow = 8
	}
}

// Result reports one collection run.
type Result struct {
	// Collected lists every tag ID delivered to the reader.
	Collected []uint64
	// Clock is the total air time.
	Clock energy.Clock
	// Meter is the per-tag energy.
	Meter *energy.Meter
	// TreeDepth is the depth of the spanning tree (≥ the tier count).
	TreeDepth int
}

// Collect runs SICP over the network and returns the IDs gathered by the
// reader, with full time and energy accounting.
func Collect(nw *topology.Network, opts Options) (*Result, error) {
	opts.setDefaults()
	if opts.IDs != nil && len(opts.IDs) != nw.N() {
		return nil, fmt.Errorf("sicp: %d IDs for %d tags", len(opts.IDs), nw.N())
	}
	if opts.ContentionWindow < 1 {
		return nil, fmt.Errorf("sicp: contention window %d must be >= 1", opts.ContentionWindow)
	}
	c := &collector{
		nw:    nw,
		opts:  opts,
		proto: obs.ProtoSICP,
		src:   prng.New(opts.Seed),
		meter: energy.NewMeter(nw.N()),
	}
	c.sessionStart()
	c.buildTree()
	c.collect()
	c.sessionEnd()
	return &Result{
		Collected: c.collected,
		Clock:     c.clock,
		Meter:     c.meter,
		TreeDepth: c.depth,
	}, nil
}

type collector struct {
	nw    *topology.Network
	opts  Options
	proto string // obs.ProtoSICP or obs.ProtoCICP, for event labeling
	src   *prng.Source

	meter *energy.Meter
	clock energy.Clock

	parent   []int32 // parent tag of each tag; -1 = reader, -2 = none
	children [][]int32
	order    []int32 // tier-1 tags in flood order (reader's children)
	depth    int

	asleep    []bool
	collected []uint64

	// Cumulative air-time counters for the awake-sensing charge: cumShort
	// is the total short-slot bits elapsed, cumLong the number of long
	// slots. A tag's idle-sensing cost is the delta between its sleep time
	// and its wake time (all in-system tags wake at the request).
	cumShort int64
	cumLong  int64
}

const (
	parentReader int32 = -1
	parentNone   int32 = -2
)

// sessionStart emits the session_start event for the run.
func (c *collector) sessionStart() {
	if t := c.opts.Tracer; t != nil {
		t.Trace(obs.Event{
			Kind:     obs.KindSessionStart,
			Protocol: c.proto,
			Tags:     c.nw.N(),
			Tiers:    c.nw.K,
			Seed:     c.opts.Seed,
		})
	}
}

// sessionEnd emits the session_end event; Rounds carries the tree depth
// (the protocol's analog of CCM's round count) and Count the IDs collected.
func (c *collector) sessionEnd() {
	if t := c.opts.Tracer; t != nil {
		sum := c.meter.Summarize(nil)
		t.Trace(obs.Event{
			Kind:        obs.KindSessionEnd,
			Protocol:    c.proto,
			Rounds:      c.depth,
			Count:       len(c.collected),
			ShortSlots:  c.clock.ShortSlots,
			LongSlots:   c.clock.LongSlots,
			AvgSentBits: sum.AvgSent,
			AvgRecvBits: sum.AvgReceived,
			MaxSentBits: sum.MaxSent,
			MaxRecvBits: sum.MaxReceived,
		})
	}
}

// batch emits one slot_batch event covering the clock interval since
// startClock: Slots is the air time consumed, Transmitters the tags that
// sent in it, Count a phase-specific progress figure.
func (c *collector) batch(phase string, round, transmitters, count int, startClock energy.Clock) {
	if t := c.opts.Tracer; t != nil {
		t.Trace(obs.Event{
			Kind:         obs.KindSlotBatch,
			Protocol:     c.proto,
			Phase:        phase,
			Round:        round,
			Transmitters: transmitters,
			Slots:        c.clock.Total() - startClock.Total(),
			Count:        count,
		})
	}
}

func (c *collector) id(i int) uint64 {
	if c.opts.IDs != nil {
		return c.opts.IDs[i]
	}
	return uint64(i) + 1
}

// backoff draws a CSMA backoff and charges it to the clock as short slots.
func (c *collector) backoff() {
	b := int64(c.src.Intn(c.opts.ContentionWindow))
	c.clock.ShortSlots += b
	c.cumShort += b
}

// transmit models one 96-bit message from tag u: one long slot on the air
// and 96 bits of TX energy for u. Awake neighbors decode the message; their
// 96-bit reception is charged as 95 bits here plus the 1-bit carrier-sense
// charge every awake tag pays for the slot at sleep time.
func (c *collector) transmit(u int) {
	c.clock.LongSlots++
	c.cumLong++
	c.meter.AddSent(u, energy.IDBits)
	for _, v := range c.nw.Neighbors(u) {
		if !c.asleep[v] {
			c.meter.AddReceived(int(v), energy.IDBits-1)
		}
	}
}

// sleep retires tag u: it stops sensing and is charged for every slot it
// stayed awake (1 bit each), minus the long slots it spent transmitting
// itself (half duplex: no reception during its own transmissions).
func (c *collector) sleep(u int32) {
	idle := c.cumShort + c.cumLong - c.meter.Sent(int(u))/energy.IDBits
	if idle > 0 {
		c.meter.AddReceived(int(u), idle)
	}
	c.asleep[u] = true
}

// buildTree floods the collection request tier by tier and establishes
// parent pointers. Within a tier, rebroadcast order is randomized by the
// backoff draws (CSMA), and a tag adopts the first upstream transmitter it
// heard.
func (c *collector) buildTree() {
	n := c.nw.N()
	c.parent = make([]int32, n)
	c.children = make([][]int32, n)
	c.asleep = make([]bool, n)
	for i := range c.parent {
		c.parent[i] = parentNone
		// Tags that cannot reach the reader never hear the request (their
		// entire neighborhood is unreachable too) and stay asleep.
		c.asleep[i] = c.nw.Tier[i] == 0
	}

	// The reader's request: one long slot, received by tier-1 tags (the
	// 96th bit of their reception comes from the carrier-sense charge at
	// sleep time, as for every decoded message).
	c.clock.LongSlots++
	c.cumLong++
	for i := 0; i < n; i++ {
		if c.nw.Tier[i] == 1 {
			c.parent[i] = parentReader
			c.meter.AddReceived(i, energy.IDBits-1)
		}
	}

	// Tier-by-tier rebroadcast: every tag forwards the request exactly once
	// after a CSMA backoff. Intra-tier order is randomized (the backoff
	// race). Each deeper tag adopts one uniformly chosen upstream neighbor
	// as parent: reception jitter decides which rebroadcast a given
	// listener locks onto first, and modeling it as a uniform choice keeps
	// the tree's branching factor realistic instead of letting the
	// globally-first transmitter of a tier claim its whole range.
	maxTier := c.nw.K
	for tier := 1; tier <= maxTier; tier++ {
		start := c.clock
		members := make([]int32, 0, 64)
		for i := 0; i < n; i++ {
			if int(c.nw.Tier[i]) == tier {
				members = append(members, int32(i))
			}
		}
		// Fisher–Yates with the run's source.
		for i := len(members) - 1; i > 0; i-- {
			j := c.src.Intn(i + 1)
			members[i], members[j] = members[j], members[i]
		}
		for _, u := range members {
			c.backoff()
			c.transmit(int(u))
		}
		c.batch("flood", tier, len(members), len(members), start)
	}
	for i := 0; i < n; i++ {
		if c.nw.Tier[i] < 2 {
			continue
		}
		upstream := make([]int32, 0, 8)
		for _, v := range c.nw.Neighbors(i) {
			if c.nw.Tier[v] == c.nw.Tier[i]-1 {
				upstream = append(upstream, v)
			}
		}
		// Reachable tags at tier ≥ 2 always have an upstream neighbor (BFS
		// invariant).
		c.parent[i] = upstream[c.src.Intn(len(upstream))]
	}

	// Materialize children lists and the reader's child order; compute
	// depth.
	for i := 0; i < n; i++ {
		switch c.parent[i] {
		case parentReader:
			c.order = append(c.order, int32(i))
		case parentNone:
			// Unreachable tag: outside the system.
		default:
			p := c.parent[i]
			c.children[p] = append(c.children[p], int32(i))
		}
	}
	for i := 0; i < n; i++ {
		if c.parent[i] == parentNone {
			continue
		}
		d := 1
		for p := c.parent[i]; p != parentReader; p = c.parent[p] {
			d++
		}
		if d > c.depth {
			c.depth = d
		}
	}
}

// collect walks the tree in post-order. Each tag uploads its subtree's IDs
// to its parent in one serialized exchange and then sleeps.
func (c *collector) collect() {
	// buffered[u] holds the IDs tag u must upload: its own plus everything
	// its children delivered.
	n := c.nw.N()
	buffered := make([][]uint64, n)
	for i := 0; i < n; i++ {
		if c.parent[i] != parentNone {
			buffered[i] = append(buffered[i], c.id(i))
		}
	}

	// Iterative post-order DFS (the tree can be thousands deep at small r).
	walk := func(u int32) {
		type frame struct {
			u     int32
			child int
		}
		stack := []frame{{u: u}}
		for len(stack) > 0 {
			top := &stack[len(stack)-1]
			if top.child < len(c.children[top.u]) {
				ch := c.children[top.u][top.child]
				top.child++
				// Token from parent to child: backoff + one message.
				c.backoff()
				c.transmit(int(top.u))
				stack = append(stack, frame{u: ch})
				continue
			}
			// All children done: upload to parent, then sleep.
			c.upload(top.u, buffered)
			stack = stack[:len(stack)-1]
		}
	}
	for si, t1 := range c.order {
		// Reader children self-serialize by carrier sense: one contention
		// backoff before each subtree starts.
		start := c.clock
		collectedBefore := len(c.collected)
		c.backoff()
		walk(t1)
		c.batch("subtree", si+1, 0, len(c.collected)-collectedBefore, start)
	}
}

// upload sends tag u's buffered IDs to its parent (or the reader) and puts
// u to sleep after the closing ack.
func (c *collector) upload(u int32, buffered [][]uint64) {
	p := c.parent[u]
	for _, id := range buffered[u] {
		c.backoff()
		c.transmit(int(u))
		if p == parentReader {
			c.collected = append(c.collected, id)
		} else {
			buffered[p] = append(buffered[p], id)
		}
	}
	buffered[u] = nil
	// Closing ack from the parent tells it the child's subtree is complete.
	// The reader needs no ack — it is the sink and observes the data
	// directly — so its children simply sleep after their last message.
	if p != parentReader {
		c.backoff()
		c.transmit(int(p))
	}
	c.sleep(u)
}

package sicp

import (
	"sort"
	"testing"
	"testing/quick"

	"netags/internal/geom"
	"netags/internal/topology"
)

func diskNetwork(t *testing.T, n int, r float64, seed uint64) *topology.Network {
	t.Helper()
	d := geom.NewUniformDisk(n, 30, seed)
	nw, err := topology.Build(d, 0, topology.PaperRanges(r))
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

// reachableIDs returns the sorted IDs of all in-system tags.
func reachableIDs(nw *topology.Network, ids []uint64) []uint64 {
	var out []uint64
	for i := 0; i < nw.N(); i++ {
		if nw.Tier[i] > 0 {
			if ids != nil {
				out = append(out, ids[i])
			} else {
				out = append(out, uint64(i)+1)
			}
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

func assertCollectsAll(t *testing.T, nw *topology.Network, got, ids []uint64) {
	t.Helper()
	want := reachableIDs(nw, ids)
	g := append([]uint64(nil), got...)
	sort.Slice(g, func(a, b int) bool { return g[a] < g[b] })
	if len(g) != len(want) {
		t.Fatalf("collected %d IDs, want %d", len(g), len(want))
	}
	for i := range want {
		if g[i] != want[i] {
			t.Fatalf("collected[%d] = %d, want %d", i, g[i], want[i])
		}
	}
}

func TestCollectGathersEveryReachableID(t *testing.T) {
	for _, r := range []float64{2, 4, 6, 10} {
		nw := diskNetwork(t, 1500, r, 201)
		res, err := Collect(nw, Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		assertCollectsAll(t, nw, res.Collected, nil)
	}
}

func TestCollectCustomIDs(t *testing.T) {
	nw := diskNetwork(t, 500, 6, 203)
	ids := make([]uint64, nw.N())
	for i := range ids {
		ids[i] = uint64(i)*7 + 99
	}
	res, err := Collect(nw, Options{Seed: 2, IDs: ids})
	if err != nil {
		t.Fatal(err)
	}
	assertCollectsAll(t, nw, res.Collected, ids)
}

func TestCollectExcludesUnreachable(t *testing.T) {
	d := &geom.Deployment{
		Tags:    []geom.Point{{X: 10}, {X: 29}},
		Readers: []geom.Point{{}},
		Radius:  30,
	}
	nw, err := topology.Build(d, 0, topology.PaperRanges(2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Collect(nw, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Collected) != 1 || res.Collected[0] != 1 {
		t.Fatalf("collected %v, want only tag 0's ID", res.Collected)
	}
	// The unreachable tag spends no energy: it never hears the request.
	if res.Meter.Sent(1) != 0 || res.Meter.Received(1) != 0 {
		t.Fatalf("unreachable tag charged energy: sent=%d recv=%d",
			res.Meter.Sent(1), res.Meter.Received(1))
	}
}

func TestCollectAccounting(t *testing.T) {
	nw := diskNetwork(t, 1000, 6, 207)
	res, err := Collect(nw, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	in := func(i int) bool { return nw.Tier[i] > 0 }
	s := res.Meter.Summarize(in)
	// Every reachable tag sends at least its flood rebroadcast + its own ID.
	if s.TotalSent < int64(nw.Reachable)*2*96 {
		t.Fatalf("total sent %d below the 2-messages-per-tag floor", s.TotalSent)
	}
	// Reception dominates transmission (promiscuous overhearing).
	if s.TotalReceived <= s.TotalSent {
		t.Fatalf("received %d <= sent %d; overhearing should dominate", s.TotalReceived, s.TotalSent)
	}
	// Long slots: one per message = TotalSent/96 plus the reader's request.
	if got, want := res.Clock.LongSlots, s.TotalSent/96+1; got != want {
		t.Fatalf("long slots = %d, want %d", got, want)
	}
	if res.Clock.ShortSlots == 0 {
		t.Fatal("no backoff slots recorded")
	}
	if res.TreeDepth < nw.K {
		t.Fatalf("tree depth %d below tier count %d", res.TreeDepth, nw.K)
	}
}

func TestCollectDeterministic(t *testing.T) {
	nw := diskNetwork(t, 800, 6, 209)
	a, err := Collect(nw, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Collect(nw, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.Clock != b.Clock || len(a.Collected) != len(b.Collected) {
		t.Fatal("SICP not deterministic for equal seeds")
	}
	c, err := Collect(nw, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if a.Clock == c.Clock {
		t.Log("note: different seeds produced identical clocks (possible but unlikely)")
	}
	// Different seeds still collect the same ID set.
	assertCollectsAll(t, nw, c.Collected, nil)
}

func TestCollectOptionValidation(t *testing.T) {
	nw := diskNetwork(t, 50, 6, 211)
	if _, err := Collect(nw, Options{IDs: make([]uint64, 3)}); err == nil {
		t.Error("ID length mismatch accepted")
	}
	if _, err := Collect(nw, Options{ContentionWindow: -1}); err == nil {
		t.Error("negative contention window accepted")
	}
}

func TestCICPGathersEveryReachableID(t *testing.T) {
	nw := diskNetwork(t, 1200, 6, 213)
	res, err := CollectCICP(nw, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	assertCollectsAll(t, nw, res.Collected, nil)
}

func TestCICPCostsMoreThanSICP(t *testing.T) {
	// The paper states SICP works better than CICP ([16], §VI-A). Token
	// passing trades the tokens CICP saves for the collisions and widened
	// contention windows CICP pays, so CICP must lose on air time.
	nw := diskNetwork(t, 1500, 6, 215)
	s, err := Collect(nw, Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	c, err := CollectCICP(nw, Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if c.Clock.Total() <= s.Clock.Total() {
		t.Errorf("CICP took %d slots <= SICP's %d; contention should cost air time",
			c.Clock.Total(), s.Clock.Total())
	}
	// And collisions waste transmissions: CICP's collided messages must
	// show up as nonzero extra sent bits beyond its useful payload
	// (flood + data + acks = SICP's sent minus SICP's tokens).
	in := func(i int) bool { return nw.Tier[i] > 0 }
	sSum, cSum := s.Meter.Summarize(in), c.Meter.Summarize(in)
	if cSum.TotalSent == 0 || sSum.TotalSent == 0 {
		t.Fatal("no transmissions recorded")
	}
}

func TestCICPValidation(t *testing.T) {
	nw := diskNetwork(t, 50, 6, 217)
	if _, err := CollectCICP(nw, Options{ContentionWindow: 1}); err == nil {
		t.Error("window of 1 accepted for CICP (would livelock)")
	}
	if _, err := CollectCICP(nw, Options{IDs: make([]uint64, 1)}); err == nil {
		t.Error("ID length mismatch accepted")
	}
}

func TestEmptyNetwork(t *testing.T) {
	d := &geom.Deployment{Readers: []geom.Point{{}}, Radius: 30}
	nw, err := topology.Build(d, 0, topology.PaperRanges(6))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Collect(nw, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Collected) != 0 {
		t.Fatal("collected IDs from an empty network")
	}
	cres, err := CollectCICP(nw, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cres.Collected) != 0 {
		t.Fatal("CICP collected IDs from an empty network")
	}
}

// TestCollectCompletenessProperty drives the exactly-once collection claim
// through testing/quick: random deployments and ranges, both protocols.
func TestCollectCompletenessProperty(t *testing.T) {
	prop := func(seed uint64, rRaw uint8, contention bool) bool {
		r := 2 + float64(rRaw%9)
		nw := func() *topology.Network {
			d := geom.NewUniformDisk(250, 30, seed)
			n, err := topology.Build(d, 0, topology.PaperRanges(r))
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			return n
		}()
		var res *Result
		var err error
		if contention {
			res, err = CollectCICP(nw, Options{Seed: seed})
		} else {
			res, err = Collect(nw, Options{Seed: seed})
		}
		if err != nil {
			t.Fatalf("collect: %v", err)
		}
		// Exactly the reachable IDs, each exactly once.
		want := map[uint64]bool{}
		for i := 0; i < nw.N(); i++ {
			if nw.Tier[i] > 0 {
				want[uint64(i)+1] = true
			}
		}
		if len(res.Collected) != len(want) {
			return false
		}
		seen := map[uint64]bool{}
		for _, id := range res.Collected {
			if !want[id] || seen[id] {
				return false
			}
			seen[id] = true
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

package simtest

import (
	"testing"

	"netags/internal/core"
	"netags/internal/energy"
	"netags/internal/geom"
	"netags/internal/topology"
)

// sessionClockInvariant checks the exact air-time accounting: short slots are
// the f-slot frames plus the checking slots; long slots are one request plus
// ⌈f/96⌉ indicator segments per round (unless the indicator is disabled).
func sessionClockInvariant(t *testing.T, sc *Scenario, cfg core.Config, res *core.Result) {
	t.Helper()
	short := int64(res.Rounds * cfg.FrameSize)
	for _, cs := range res.CheckSlotsPerRound {
		short += int64(cs)
	}
	long := int64(res.Rounds)
	if !cfg.DisableIndicatorVector {
		long += int64(res.Rounds) * int64((cfg.FrameSize+energy.IDBits-1)/energy.IDBits)
	}
	if res.Clock.ShortSlots != short || res.Clock.LongSlots != long {
		t.Errorf("%v seed %#x: clock %+v, want short %d long %d",
			sc.Shape, sc.Seed, res.Clock, short, long)
	}
}

// TestCCMTheorem1Differential is the paper's central claim as a property:
// on every generated scenario and config, a reliable-channel CCM session
// completes untruncated and delivers exactly core.DirectBitmap — the OR of
// picks a collision-free single-hop reader would see.
func TestCCMTheorem1Differential(t *testing.T) {
	ForEach(t, 0x7e01, func(t *testing.T, sc *Scenario) {
		cfg := sc.NewConfig(sc.Source(1))
		res, err := core.RunSession(sc.Network, cfg)
		if err != nil {
			t.Fatalf("%v seed %#x: %v", sc.Shape, sc.Seed, err)
		}
		want, err := core.DirectBitmap(sc.Network, cfg)
		if err != nil {
			t.Fatalf("%v seed %#x: direct: %v", sc.Shape, sc.Seed, err)
		}
		if res.Truncated {
			t.Errorf("%v seed %#x: session truncated despite MaxRounds=K+2 (K=%d, rounds=%d)",
				sc.Shape, sc.Seed, sc.Network.K, res.Rounds)
		}
		if !res.Bitmap.Equal(want) {
			t.Errorf("%v seed %#x: bitmap %v != direct %v", sc.Shape, sc.Seed, res.Bitmap, want)
		}
		totalNew := 0
		for _, nb := range res.NewBusyPerRound {
			totalNew += nb
		}
		if totalNew != res.Bitmap.Count() {
			t.Errorf("%v seed %#x: per-round deliveries sum to %d, bitmap has %d",
				sc.Shape, sc.Seed, totalNew, res.Bitmap.Count())
		}
		sessionClockInvariant(t, sc, cfg, res)
	})
}

// TestCCMReplayDeterminism runs every generated session twice and demands
// bit-identical results — the property every "same seed → same run"
// debugging workflow in this repository rests on.
func TestCCMReplayDeterminism(t *testing.T) {
	ForEach(t, 0x7e02, func(t *testing.T, sc *Scenario) {
		cfg := sc.NewConfig(sc.Source(2))
		cfg.LossProb = 0.3 // determinism must hold on the lossy channel too
		cfg.LossSeed = sc.Seed
		a, err := core.RunSession(sc.Network, cfg)
		if err != nil {
			t.Fatalf("%v seed %#x: %v", sc.Shape, sc.Seed, err)
		}
		b, err := core.RunSession(sc.Network, cfg)
		if err != nil {
			t.Fatalf("%v seed %#x: %v", sc.Shape, sc.Seed, err)
		}
		if !a.Bitmap.Equal(b.Bitmap) || a.Rounds != b.Rounds || a.Clock != b.Clock || a.Truncated != b.Truncated {
			t.Fatalf("%v seed %#x: replay diverged", sc.Shape, sc.Seed)
		}
		for i := 0; i < a.Meter.N(); i++ {
			if a.Meter.Sent(i) != b.Meter.Sent(i) || a.Meter.Received(i) != b.Meter.Received(i) {
				t.Fatalf("%v seed %#x: tag %d meter diverged on replay", sc.Shape, sc.Seed, i)
			}
		}
	})
}

// TestCCMSoundnessUnderLoss checks the lossy channel can only lose
// information, never invent it: whatever the loss rate, the collected bitmap
// is a subset of the direct bitmap, and the structural invariants hold.
func TestCCMSoundnessUnderLoss(t *testing.T) {
	ForEach(t, 0x7e03, func(t *testing.T, sc *Scenario) {
		src := sc.Source(3)
		cfg := sc.NewConfig(src)
		cfg.LossProb = 0.9 * src.Float64()
		cfg.LossSeed = src.Uint64()
		res, err := core.RunSession(sc.Network, cfg)
		if err != nil {
			t.Fatalf("%v seed %#x: %v", sc.Shape, sc.Seed, err)
		}
		want, err := core.DirectBitmap(sc.Network, cfg)
		if err != nil {
			t.Fatalf("%v seed %#x: direct: %v", sc.Shape, sc.Seed, err)
		}
		if !want.ContainsAll(res.Bitmap) {
			t.Errorf("%v seed %#x: lossy bitmap has phantom bits (loss %.2f)",
				sc.Shape, sc.Seed, cfg.LossProb)
		}
		for i := 0; i < res.Meter.N(); i++ {
			if res.Meter.Sent(i) < 0 || res.Meter.Received(i) < 0 {
				t.Fatalf("%v seed %#x: tag %d negative meter", sc.Shape, sc.Seed, i)
			}
		}
		sessionClockInvariant(t, sc, cfg, res)
	})
}

// TestCCMOutOfSystemTagsInert checks §II's boundary: tags that cannot reach
// the reader are outside the system. They must consume no energy, transmit
// nothing, and their presence must not change what the in-system tags and
// the reader experience — deleting them from the deployment yields the
// byte-identical session.
func TestCCMOutOfSystemTagsInert(t *testing.T) {
	ForEach(t, 0x7e04, func(t *testing.T, sc *Scenario) {
		nw := sc.Network
		if nw.Reachable == nw.N() {
			return // nothing out of system in this scenario
		}
		src := sc.Source(4)
		cfg := sc.NewConfig(src)
		// Pin IDs by original index so the repacked deployment below keeps
		// each physical tag's identity (the default idx+1 IDs would shift).
		if cfg.IDs == nil {
			ids := make([]uint64, nw.N())
			for i := range ids {
				ids[i] = uint64(i) + 1
			}
			cfg.IDs = ids
		}
		res, err := core.RunSession(nw, cfg)
		if err != nil {
			t.Fatalf("%v seed %#x: %v", sc.Shape, sc.Seed, err)
		}
		for i := 0; i < nw.N(); i++ {
			if nw.Tier[i] != 0 {
				continue
			}
			if s, r := res.Meter.Sent(i), res.Meter.Received(i); s != 0 || r != 0 {
				t.Errorf("%v seed %#x: out-of-system tag %d metered sent=%d recv=%d",
					sc.Shape, sc.Seed, i, s, r)
			}
		}

		// Re-run on the deployment with the out-of-system tags deleted.
		var gone []int
		for i := 0; i < nw.N(); i++ {
			if nw.Tier[i] == 0 {
				gone = append(gone, i)
			}
		}
		trimmed, orig := sc.Deployment.Remove(gone)
		tnw, err := buildLike(sc, trimmed)
		if err != nil {
			t.Fatalf("%v seed %#x: trimmed build: %v", sc.Shape, sc.Seed, err)
		}
		tcfg := cfg
		tcfg.IDs = make([]uint64, len(orig))
		for ni, oi := range orig {
			tcfg.IDs[ni] = cfg.IDs[oi]
		}
		tres, err := core.RunSession(tnw, tcfg)
		if err != nil {
			t.Fatalf("%v seed %#x: trimmed session: %v", sc.Shape, sc.Seed, err)
		}
		if !tres.Bitmap.Equal(res.Bitmap) || tres.Rounds != res.Rounds ||
			tres.Truncated != res.Truncated || tres.Clock != res.Clock {
			t.Errorf("%v seed %#x: deleting %d out-of-system tags changed the session "+
				"(rounds %d→%d, truncated %v→%v)", sc.Shape, sc.Seed, len(gone),
				res.Rounds, tres.Rounds, res.Truncated, tres.Truncated)
		}
		for ni, oi := range orig {
			if tres.Meter.Sent(ni) != res.Meter.Sent(oi) || tres.Meter.Received(ni) != res.Meter.Received(oi) {
				t.Errorf("%v seed %#x: in-system tag %d energy changed when out-of-system tags were deleted",
					sc.Shape, sc.Seed, oi)
				break
			}
		}
	})
}

// buildLike rebuilds a network for a modified deployment under the
// scenario's ranges and obstacles.
func buildLike(sc *Scenario, d *geom.Deployment) (*topology.Network, error) {
	return topology.BuildObstructed(d, 0, sc.Ranges, sc.Obstacles)
}

package simtest

import (
	"math"
	"testing"

	"netags/internal/core"
	"netags/internal/geom"
	"netags/internal/gmle"
	"netags/internal/lof"
	"netags/internal/prng"
	"netags/internal/topology"
)

// estimatorFixture builds the fixed multi-hop network the statistical
// contract tests run on, and returns the number of reachable tags — the n
// the estimators are supposed to recover.
func estimatorFixture(t *testing.T, n int) (*topology.Network, int) {
	t.Helper()
	d := geom.NewUniformDisk(n, 30, prng.DeriveSeed(0xe57f1e, uint64(n)))
	nw, err := topology.Build(d, 0, topology.PaperRanges(6))
	if err != nil {
		t.Fatal(err)
	}
	reach := 0
	for _, tier := range nw.Tier {
		if tier > 0 {
			reach++
		}
	}
	if reach < n/2 {
		t.Fatalf("fixture degenerate: only %d of %d tags reachable", reach, n)
	}
	return nw, reach
}

// TestGMLEStatisticalContract holds the estimator to its own advertised
// statistics over CCM sessions: across many independent single-frame
// estimates the mean relative error stays near zero (consistency) and the
// spread agrees with the Fisher-information prediction within a factor —
// catching both a broken likelihood (spread too wide) and accidental reuse
// of randomness across trials (spread too narrow). The trial count is fixed
// (not NumScenarios) because the bounds below are calibrated to it.
func TestGMLEStatisticalContract(t *testing.T) {
	const trials = 200
	nw, reach := estimatorFixture(t, 400)
	f := 128
	p := gmle.SamplingFor(f, float64(reach))

	var joint gmle.Estimator
	sum, sumSq := 0.0, 0.0
	for i := 0; i < trials; i++ {
		res, err := core.RunSession(nw, core.Config{
			FrameSize: f,
			Seed:      prng.DeriveSeed(0x6e57, uint64(i)),
			Sampling:  p,
		})
		if err != nil {
			t.Fatal(err)
		}
		zeros := f - res.Bitmap.Count()
		var single gmle.Estimator
		if err := single.AddFrame(f, p, zeros); err != nil {
			t.Fatal(err)
		}
		if err := joint.AddFrame(f, p, zeros); err != nil {
			t.Fatal(err)
		}
		est, err := single.Estimate()
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		rel := est/float64(reach) - 1
		sum += rel
		sumSq += rel * rel
	}
	mean := sum / trials
	std := math.Sqrt(sumSq/trials - mean*mean)

	// Predicted single-frame relative std from the Fisher information.
	var one gmle.Estimator
	if err := one.AddFrame(f, p, 0); err != nil {
		t.Fatal(err)
	}
	predicted := 1 / (float64(reach) * math.Sqrt(one.FisherInfo(float64(reach))))
	t.Logf("n=%d trials=%d: mean rel err %+.4f, rel std %.4f (Fisher predicts %.4f)",
		reach, trials, mean, std, predicted)

	// Mean of `trials` draws has std ≈ predicted/√trials; 4σ plus a small
	// bias allowance keeps this deterministic-seed check meaningful.
	if limit := 4*predicted/math.Sqrt(trials) + 0.01; math.Abs(mean) > limit {
		t.Errorf("single-frame estimates biased: mean rel err %+.4f exceeds %.4f", mean, limit)
	}
	if std > 1.5*predicted || std < predicted/1.5 {
		t.Errorf("single-frame spread %.4f disagrees with Fisher prediction %.4f", std, predicted)
	}

	est, err := joint.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(est/float64(reach) - 1); rel > 0.02 {
		t.Errorf("joint estimate over %d frames off by %.2f%% (n̂=%.1f, n=%d)",
			trials, 100*rel, est, reach)
	}
}

// TestLoFStatisticalContract: the lottery-frame estimator, averaged over
// frames, must land within a modest factor of the true reachable count at
// several population sizes. Its per-frame σ is ≈1.12 bits of log2 n, so with
// 64 frames the mean-Z std is ≈0.14 bits — a factor-1.5 band is ≈4σ wide on
// top of the FM correction's small-n bias.
func TestLoFStatisticalContract(t *testing.T) {
	for _, n := range []int{60, 400, 1500} {
		nw, reach := estimatorFixture(t, n)
		out, err := lof.Estimate(nw, lof.Options{
			Frames:    64,
			FrameSize: 32,
			Seed:      prng.DeriveSeed(0x10f, uint64(n)),
		})
		if err != nil {
			t.Fatal(err)
		}
		if out.Truncated {
			t.Fatalf("n=%d: lof session truncated", n)
		}
		ratio := out.Estimate / float64(reach)
		t.Logf("n=%d reach=%d: estimate %.1f (ratio %.3f, meanZ %.2f)", n, reach, out.Estimate, ratio, out.MeanZ)
		if ratio < 1/1.5 || ratio > 1.5 {
			t.Errorf("n=%d: LoF estimate %.1f outside factor-1.5 band of %d", n, out.Estimate, reach)
		}
	}
}

// TestLossMonotoneDegradation: raising the loss probability can only degrade
// collection. Exactly at zero loss the bitmap equals the direct one; as loss
// grows the mean collected-slot count over many independent runs must be
// non-increasing (per-run monotonicity is not guaranteed — different loss
// draws are different sample paths — so the property is stated on means,
// with a small slack for averaging noise).
func TestLossMonotoneDegradation(t *testing.T) {
	const runs = 40
	nw, _ := estimatorFixture(t, 300)
	cfg := core.Config{FrameSize: 256, Sampling: 1}

	losses := []float64{0, 0.15, 0.3, 0.5, 0.7, 0.9}
	means := make([]float64, len(losses))
	for li, loss := range losses {
		sum := 0
		for r := 0; r < runs; r++ {
			c := cfg
			c.Seed = prng.DeriveSeed(0x105e, uint64(r))
			c.LossProb = loss
			c.LossSeed = prng.DeriveSeed(0xbad, uint64(li), uint64(r))
			res, err := core.RunSession(nw, c)
			if err != nil {
				t.Fatal(err)
			}
			if loss == 0 {
				direct, err := core.DirectBitmap(nw, c)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Bitmap.Equal(direct) {
					t.Fatalf("run %d: zero-loss session differs from direct bitmap", r)
				}
			}
			sum += res.Bitmap.Count()
		}
		means[li] = float64(sum) / runs
	}
	t.Logf("mean busy slots across loss grid %v: %v", losses, means)
	slack := 0.01 * float64(cfg.FrameSize)
	for i := 1; i < len(means); i++ {
		if means[i] > means[i-1]+slack {
			t.Errorf("mean busy count rose from %.1f to %.1f as loss grew %.2f→%.2f",
				means[i-1], means[i], losses[i-1], losses[i])
		}
	}
	if means[len(means)-1] >= means[0] {
		t.Errorf("heavy loss (%.2f) did not degrade collection at all: %.1f vs %.1f",
			losses[len(losses)-1], means[len(means)-1], means[0])
	}
}

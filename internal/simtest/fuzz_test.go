package simtest

import (
	"testing"

	"netags/internal/core"
	"netags/internal/prng"
)

// FuzzSession throws fuzzer-chosen scenarios and session configs at the full
// CCM stack and holds every run to the invariants the property suites pin:
// bit-identical replay, soundness against the direct bitmap (with equality
// and guaranteed termination on the reliable channel), the air-time clock
// identity, and inert out-of-system tags.
func FuzzSession(f *testing.F) {
	f.Add(uint64(1), uint16(32), uint16(0), uint16(0))
	f.Add(uint64(0xda53caa1dd258d4), uint16(128), uint16(1), uint16(0))
	f.Add(uint64(7), uint16(8), uint16(2), uint16(431))
	f.Add(uint64(0xfeedface), uint16(299), uint16(5), uint16(900))
	f.Fuzz(func(t *testing.T, seed uint64, frameBits, styleBits, lossBits uint16) {
		sc := NewScenario(seed)
		k := sc.Network.K
		cfg := core.Config{
			FrameSize:        1 + int(frameBits)%300,
			Seed:             prng.DeriveSeed(seed, uint64(styleBits)),
			CheckingFrameLen: k + 2,
			MaxRounds:        k + 2,
			LossProb:         float64(lossBits%950) / 1000,
			LossSeed:         prng.DeriveSeed(seed, uint64(lossBits)),
		}
		switch styleBits % 3 {
		case 0:
			cfg.Sampling = 1
		case 1:
			cfg.Sampling = 0.05 + 0.9*float64(styleBits%64)/64
		case 2:
			cfg.Sampling = 1
			cfg.IDs = RandomIDs(sc.Source(uint64(styleBits)), sc.Network.N())
		}

		res, err := core.RunSession(sc.Network, cfg)
		if err != nil {
			t.Fatalf("seed %#x: %v", seed, err)
		}
		again, err := core.RunSession(sc.Network, cfg)
		if err != nil {
			t.Fatalf("seed %#x: replay: %v", seed, err)
		}
		if !again.Bitmap.Equal(res.Bitmap) || again.Rounds != res.Rounds ||
			again.Truncated != res.Truncated || again.Clock != res.Clock {
			t.Fatalf("seed %#x: replay diverged", seed)
		}

		direct, err := core.DirectBitmap(sc.Network, cfg)
		if err != nil {
			t.Fatalf("seed %#x: direct: %v", seed, err)
		}
		if !direct.ContainsAll(res.Bitmap) {
			t.Fatalf("seed %#x: session reported a slot no reachable tag picked", seed)
		}
		if cfg.LossProb == 0 {
			if res.Truncated {
				t.Fatalf("seed %#x: truncated on a reliable channel with L_c = K+2", seed)
			}
			if !res.Bitmap.Equal(direct) {
				t.Fatalf("seed %#x: Theorem 1 violated on a reliable channel", seed)
			}
		}

		sessionClockInvariant(t, sc, cfg, res)
		for i := 0; i < sc.Network.N(); i++ {
			if res.Meter.Sent(i) < 0 || res.Meter.Received(i) < 0 {
				t.Fatalf("seed %#x: tag %d negative meter", seed, i)
			}
			if sc.Network.Tier[i] == 0 && (res.Meter.Sent(i) != 0 || res.Meter.Received(i) != 0) {
				t.Fatalf("seed %#x: out-of-system tag %d metered", seed, i)
			}
		}
	})
}

package simtest

import (
	"fmt"
	"math"

	"netags/internal/core"
	"netags/internal/geom"
	"netags/internal/prng"
	"netags/internal/topology"
)

// Shape enumerates the generator families. Each family targets a failure
// mode the uniform-disk fixtures cannot reach: deep relay chains, hub stars,
// disconnected clusters (reachable and not), everything-in-one-tier blobs,
// and deployments that spill past the reader's field of view.
type Shape uint8

const (
	// ShapeUniform is a uniform disk whose radius may exceed the reader's
	// broadcast range, so some tags sit outside the field of view.
	ShapeUniform Shape = iota
	// ShapeClustered groups tags in Gaussian clumps (warehouse pallets).
	ShapeClustered
	// ShapeChain is a single relay chain marching away from the reader.
	ShapeChain
	// ShapeStar is several chains sharing the reader as hub.
	ShapeStar
	// ShapeDisconnected is a reachable core plus clusters severed from it.
	ShapeDisconnected
	// ShapeSingleTier puts every tag inside the tag-to-reader range.
	ShapeSingleTier
	// ShapeDeepChain shrinks the tag-to-tag range to maximize tier depth.
	ShapeDeepChain

	numShapes
)

// String names the shape for failure messages.
func (s Shape) String() string {
	switch s {
	case ShapeUniform:
		return "uniform"
	case ShapeClustered:
		return "clustered"
	case ShapeChain:
		return "chain"
	case ShapeStar:
		return "star"
	case ShapeDisconnected:
		return "disconnected"
	case ShapeSingleTier:
		return "single-tier"
	case ShapeDeepChain:
		return "deep-chain"
	}
	return fmt.Sprintf("shape(%d)", uint8(s))
}

// NewScenario generates the scenario identified by seed: shape, ranges,
// deployment, obstacles, and the derived network are all pure functions of
// the seed.
func NewScenario(seed uint64) *Scenario {
	src := prng.New(prng.DeriveSeed(seed, 0x5ce9a410))
	return build(seed, Shape(src.Intn(int(numShapes))), src)
}

// NewScenarioShape is NewScenario with the family pinned — for minimized
// regression tests that must stay in the shape that exposed a bug.
func NewScenarioShape(seed uint64, shape Shape) *Scenario {
	src := prng.New(prng.DeriveSeed(seed, 0x5ce9a410))
	src.Intn(int(numShapes)) // discard the shape draw to keep streams aligned
	return build(seed, shape, src)
}

func build(seed uint64, shape Shape, src *prng.Source) *Scenario {
	sc := &Scenario{Seed: seed, Shape: shape}
	sc.Ranges = topology.Ranges{
		ReaderToTag: 10 + 30*src.Float64(),
	}
	sc.Ranges.TagToReader = sc.Ranges.ReaderToTag * (0.25 + 0.7*src.Float64())
	sc.Ranges.TagToTag = 1 + 11*src.Float64()

	switch shape {
	case ShapeUniform:
		n := src.Intn(121)
		// Up to 1.5×R: tags beyond the broadcast range exist but are
		// outside the system.
		radius := sc.Ranges.ReaderToTag * (0.4 + 1.1*src.Float64())
		sc.Deployment = geom.NewUniformDisk(n, radius, src.Uint64())
	case ShapeClustered:
		n := src.Intn(121)
		clusters := 1 + src.Intn(5)
		spread := sc.Ranges.TagToTag * (0.5 + 2*src.Float64())
		radius := sc.Ranges.ReaderToTag * (0.5 + 0.8*src.Float64())
		sc.Deployment = geom.NewClusteredDisk(n, radius, clusters, spread, src.Uint64())
	case ShapeChain:
		sc.Deployment = chain(src, sc.Ranges, 1+src.Intn(45))
	case ShapeStar:
		d := &geom.Deployment{Readers: []geom.Point{{}}}
		rays := 2 + src.Intn(4)
		for ray := 0; ray < rays; ray++ {
			arm := chain(src, sc.Ranges, 1+src.Intn(15))
			d.Tags = append(d.Tags, arm.Tags...)
			d.Radius = math.Max(d.Radius, arm.Radius)
		}
		sc.Deployment = d
	case ShapeDisconnected:
		sc.Deployment = disconnected(src, sc.Ranges)
	case ShapeSingleTier:
		n := src.Intn(81)
		radius := 0.95 * sc.Ranges.TagToReader
		sc.Deployment = geom.NewUniformDisk(n, radius, src.Uint64())
	case ShapeDeepChain:
		sc.Ranges.TagToTag = 0.5 + 1.5*src.Float64()
		sc.Deployment = chain(src, sc.Ranges, 10+src.Intn(51))
	}

	// Occasionally drop wall segments across the deployment: obstacles
	// block the weak tag-originated links but not the reader's broadcast.
	if src.Float64() < 0.2 {
		walls := 1 + src.Intn(2)
		for w := 0; w < walls; w++ {
			sc.Obstacles = append(sc.Obstacles, geom.Segment{
				A: geom.SampleDisk(src, sc.Ranges.ReaderToTag),
				B: geom.SampleDisk(src, sc.Ranges.ReaderToTag),
			})
		}
	}

	nw, err := topology.BuildObstructed(sc.Deployment, 0, sc.Ranges, sc.Obstacles)
	if err != nil {
		// The generator only emits valid ranges and reader indices, so a
		// build error is itself a bug worth failing loudly on.
		panic(fmt.Sprintf("simtest: seed %#x: %v", seed, err))
	}
	sc.Network = nw
	return sc
}

// chain lays count tags along one ray from the reader, spaced within the
// tag-to-tag range so consecutive tags can relay, starting inside the
// tag-to-reader range so the chain is rooted at tier 1. Long chains march
// straight out of the field of view.
func chain(src *prng.Source, rg topology.Ranges, count int) *geom.Deployment {
	step := rg.TagToTag * (0.5 + 0.45*src.Float64())
	start := rg.TagToReader * (0.3 + 0.5*src.Float64())
	angle := 2 * math.Pi * src.Float64()
	cos, sin := math.Cos(angle), math.Sin(angle)
	d := &geom.Deployment{Readers: []geom.Point{{}}}
	for i := 0; i < count; i++ {
		dist := start + float64(i)*step
		d.Tags = append(d.Tags, geom.Point{X: dist * cos, Y: dist * sin})
		d.Radius = dist
	}
	return d
}

// disconnected builds a reachable core inside the tag-to-reader range plus
// 1–3 satellite clusters whose centers sit at least two tag-to-tag ranges
// beyond the core, so no relay path can bridge the gap. Satellites may fall
// inside the field of view (unreachable but broadcast-covered) or beyond it.
func disconnected(src *prng.Source, rg topology.Ranges) *geom.Deployment {
	coreRadius := 0.6 * rg.TagToReader
	d := geom.NewUniformDisk(2+src.Intn(30), coreRadius, src.Uint64())
	clusters := 1 + src.Intn(3)
	for c := 0; c < clusters; c++ {
		satRadius := 0.8 * rg.TagToTag
		gap := coreRadius + 2*rg.TagToTag + satRadius
		dist := gap + src.Float64()*rg.ReaderToTag
		angle := 2 * math.Pi * src.Float64()
		center := geom.Point{X: dist * math.Cos(angle), Y: dist * math.Sin(angle)}
		for i, n := 0, 1+src.Intn(8); i < n; i++ {
			p := geom.SampleDisk(src, satRadius)
			d.Tags = append(d.Tags, geom.Point{X: center.X + p.X, Y: center.Y + p.Y})
		}
		d.Radius = math.Max(d.Radius, dist+satRadius)
	}
	return d
}

// NewConfig draws a randomized session config for the scenario from src:
// frame size, request seed, and one of four participation styles (full,
// sampled, multi-slot picker, or explicit random IDs). Termination bounds
// are provisioned from the network's true tier depth so a correct session
// can always complete; the channel is reliable (LossProb 0) because the
// exact oracles need it. Callers set LossProb afterwards when testing the
// unreliable extension.
func (sc *Scenario) NewConfig(src *prng.Source) core.Config {
	f := 1 + src.Intn(256)
	cfg := core.Config{
		FrameSize:        f,
		Seed:             src.Uint64(),
		Sampling:         1,
		CheckingFrameLen: sc.Network.K + 2,
		MaxRounds:        sc.Network.K + 2,
	}
	switch src.Intn(4) {
	case 0:
		// Full participation.
	case 1:
		cfg.Sampling = src.Float64()
	case 2:
		cfg.Picker = MultiSlotPicker(cfg.Seed, f, 1+src.Intn(3))
	case 3:
		cfg.IDs = RandomIDs(src, sc.Network.N())
	}
	return cfg
}

// MultiSlotPicker returns a pure k-slot picker (Bloom-style tag search):
// tag id occupies k hash-derived slots. Like every SlotPicker it depends
// only on (id, seed), never on the tag index.
func MultiSlotPicker(seed uint64, frameSize, k int) core.SlotPicker {
	return func(_ int, id uint64) []int {
		slots := make([]int, k)
		for j := range slots {
			slots[j] = prng.SlotOf(id, seed+uint64(j)*0x9e37, frameSize)
		}
		return slots
	}
}

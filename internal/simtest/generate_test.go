package simtest

import "testing"

// TestScenarioDeterminism pins the replay contract: the same seed always
// rebuilds the identical scenario, down to every tag position and tier.
func TestScenarioDeterminism(t *testing.T) {
	for _, seed := range ScenarioSeeds(0xdead, NumScenarios()) {
		a, b := NewScenario(seed), NewScenario(seed)
		if a.Shape != b.Shape || a.Ranges != b.Ranges {
			t.Fatalf("seed %#x: shape/ranges differ between builds", seed)
		}
		if len(a.Deployment.Tags) != len(b.Deployment.Tags) {
			t.Fatalf("seed %#x: tag counts differ", seed)
		}
		for i := range a.Deployment.Tags {
			if a.Deployment.Tags[i] != b.Deployment.Tags[i] {
				t.Fatalf("seed %#x: tag %d position differs", seed, i)
			}
		}
		for i := range a.Network.Tier {
			if a.Network.Tier[i] != b.Network.Tier[i] {
				t.Fatalf("seed %#x: tag %d tier differs", seed, i)
			}
		}
		if a.Network.K != b.Network.K || a.Network.Reachable != b.Network.Reachable {
			t.Fatalf("seed %#x: K/Reachable differ", seed)
		}
	}
}

// TestScenarioShapeCoverage checks the generator actually exercises every
// family within one property's scenario budget.
func TestScenarioShapeCoverage(t *testing.T) {
	seen := make(map[Shape]int)
	for _, seed := range ScenarioSeeds(0xbeef, NumScenarios()) {
		seen[NewScenario(seed).Shape]++
	}
	for s := Shape(0); s < numShapes; s++ {
		if seen[s] == 0 {
			t.Errorf("shape %v never generated in %d scenarios", s, NumScenarios())
		}
	}
}

// TestScenarioShapePinned checks NewScenarioShape replays a scenario inside
// its family with the rest of the stream aligned to NewScenario's.
func TestScenarioShapePinned(t *testing.T) {
	for _, seed := range ScenarioSeeds(0xfeed, 32) {
		want := NewScenario(seed)
		got := NewScenarioShape(seed, want.Shape)
		if got.Ranges != want.Ranges || len(got.Deployment.Tags) != len(want.Deployment.Tags) {
			t.Fatalf("seed %#x: NewScenarioShape diverged from NewScenario", seed)
		}
	}
}

// TestTopologyMatchesBruteForce is the differential oracle for
// topology.Build: the grid-bucketed adjacency plus BFS must agree with an
// O(n²) recomputation from raw geometry on every generated scenario.
func TestTopologyMatchesBruteForce(t *testing.T) {
	ForEach(t, 0x70b0, func(t *testing.T, sc *Scenario) {
		want := BruteTiers(sc.Deployment, 0, sc.Ranges, sc.Obstacles)
		nw := sc.Network
		reach, maxTier := 0, int16(0)
		for i, w := range want {
			if nw.Tier[i] != w {
				t.Errorf("%v seed %#x: tag %d tier %d, brute force says %d",
					sc.Shape, sc.Seed, i, nw.Tier[i], w)
			}
			if w > 0 {
				reach++
			}
			if w > maxTier {
				maxTier = w
			}
		}
		if nw.Reachable != reach {
			t.Errorf("%v seed %#x: Reachable %d, brute force says %d", sc.Shape, sc.Seed, nw.Reachable, reach)
		}
		if nw.K != int(maxTier) {
			t.Errorf("%v seed %#x: K %d, brute force says %d", sc.Shape, sc.Seed, nw.K, maxTier)
		}
	})
}

// TestTopologyAdjacencySymmetric checks the CSR adjacency is symmetric and
// honors the tag-to-tag range on generated scenarios.
func TestTopologyAdjacencySymmetric(t *testing.T) {
	ForEach(t, 0xad1a, func(t *testing.T, sc *Scenario) {
		nw := sc.Network
		r2 := sc.Ranges.TagToTag * sc.Ranges.TagToTag
		for i := 0; i < nw.N(); i++ {
			for _, j := range nw.Neighbors(i) {
				if sc.Deployment.Tags[i].Dist2(sc.Deployment.Tags[int(j)]) > r2 {
					t.Fatalf("%v seed %#x: neighbor %d->%d beyond range", sc.Shape, sc.Seed, i, j)
				}
				back := false
				for _, k := range nw.Neighbors(int(j)) {
					if int(k) == i {
						back = true
						break
					}
				}
				if !back {
					t.Fatalf("%v seed %#x: link %d->%d not symmetric", sc.Shape, sc.Seed, i, j)
				}
			}
		}
	})
}

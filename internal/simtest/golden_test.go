package simtest

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"netags/internal/core"
)

// goldenCase is one pinned session: a scenario seed plus a config variant.
// The variants cover every structurally distinct session path: the reliable
// default, the lossy channel (which exercises the PRNG draw order of the
// delivery and checking-frame loops), the flooding ablation, and a
// round-bounded truncated run that ends with state still pending.
type goldenCase struct {
	name    string
	seed    uint64
	variant string
}

func goldenCases() []goldenCase {
	var cases []goldenCase
	for _, seed := range []uint64{
		0x7e05_0001, 0x7e05_0002, 0x7e05_0003, 0x7e05_0004,
		0x7e05_0005, 0x7e05_0006, 0x7e05_0007, 0x7e05_0008,
	} {
		for _, variant := range []string{"reliable", "lossy", "no-indicator", "truncated"} {
			cases = append(cases, goldenCase{
				name:    fmt.Sprintf("seed%#x/%s", seed, variant),
				seed:    seed,
				variant: variant,
			})
		}
	}
	return cases
}

// run executes the case's session and returns its Result.
func (gc goldenCase) run(t *testing.T) (*Scenario, *core.Result) {
	t.Helper()
	sc := NewScenario(gc.seed)
	cfg := sc.NewConfig(sc.Source(5))
	switch gc.variant {
	case "reliable":
	case "lossy":
		cfg.LossProb = 0.25
		cfg.LossSeed = gc.seed
	case "no-indicator":
		cfg.DisableIndicatorVector = true
		cfg.MaxRounds = 4 * (sc.Network.K + 2)
		cfg.CheckingFrameLen = sc.Network.K + 2
	case "truncated":
		cfg.MaxRounds = 1
	default:
		t.Fatalf("unknown variant %q", gc.variant)
	}
	res, err := core.RunSession(sc.Network, cfg)
	if err != nil {
		t.Fatalf("%s: %v", gc.name, err)
	}
	return sc, res
}

// fingerprint hashes every observable facet of a Result: the bitmap, the
// round count, the slot clock, the truncation flag, both per-round
// diagnostic series, and the full per-tag energy meter. Any behavioral
// divergence in the session kernel lands in this hash.
func fingerprint(res *core.Result) string {
	h := sha256.New()
	fmt.Fprintf(h, "bitmap n=%d:", res.Bitmap.Len())
	res.Bitmap.ForEach(func(i int) { fmt.Fprintf(h, " %d", i) })
	fmt.Fprintf(h, "\nrounds=%d truncated=%v clock=%d/%d\n",
		res.Rounds, res.Truncated, res.Clock.ShortSlots, res.Clock.LongSlots)
	fmt.Fprintf(h, "newbusy=%v check=%v\n", res.NewBusyPerRound, res.CheckSlotsPerRound)
	for i := 0; i < res.Meter.N(); i++ {
		fmt.Fprintf(h, "tag %d sent=%d recv=%d\n", i, res.Meter.Sent(i), res.Meter.Received(i))
	}
	return hex.EncodeToString(h.Sum(nil))
}

const goldenPath = "testdata/session_golden.json"

// TestSessionResultGolden pins byte-identical Result output across session
// kernel refactors: the golden hashes were generated from the pre-arena
// [][]int32 implementation, so the pooled CSR path must reproduce every
// bitmap bit, clock tick, diagnostic series, and per-tag energy count
// exactly. Regenerate deliberately with UPDATE_SESSION_GOLDEN=1 only when a
// semantic change is intended.
func TestSessionResultGolden(t *testing.T) {
	got := make(map[string]string)
	for _, gc := range goldenCases() {
		_, res := gc.run(t)
		got[gc.name] = fingerprint(res)
	}

	if os.Getenv("UPDATE_SESSION_GOLDEN") == "1" {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden fingerprints to %s", len(got), goldenPath)
		return
	}

	buf, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with UPDATE_SESSION_GOLDEN=1): %v", err)
	}
	want := make(map[string]string)
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Errorf("golden file has %d entries, test produced %d", len(want), len(got))
	}
	for name, wantHash := range want {
		if got[name] != wantHash {
			t.Errorf("%s: fingerprint %s != golden %s (session output diverged)",
				name, got[name], wantHash)
		}
	}
}

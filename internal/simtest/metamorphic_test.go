package simtest

import (
	"math"
	"testing"

	"netags/internal/bitmap"
	"netags/internal/core"
	"netags/internal/geom"
	"netags/internal/topology"
)

// TestMetamorphicRelabeling: permuting the tag indices (carrying each
// physical tag's ID along) is a pure renaming — the collected bitmap, round
// count, truncation flag, air time, and each physical tag's energy must not
// change. Slot choice depends only on (ID, seed), never on the index.
func TestMetamorphicRelabeling(t *testing.T) {
	ForEach(t, 0x3e1a, func(t *testing.T, sc *Scenario) {
		n := sc.Network.N()
		if n < 2 {
			return
		}
		src := sc.Source(20)
		cfg := sc.NewConfig(src)
		cfg.Picker = nil // pickers are exercised elsewhere; IDs carry identity here
		if cfg.IDs == nil {
			cfg.IDs = RandomIDs(src, n)
		}
		res, err := core.RunSession(sc.Network, cfg)
		if err != nil {
			t.Fatalf("%v seed %#x: %v", sc.Shape, sc.Seed, err)
		}

		// Fisher–Yates permutation of the deployment, IDs riding along.
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		for i := n - 1; i > 0; i-- {
			j := src.Intn(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
		pd := &geom.Deployment{
			Tags:    make([]geom.Point, n),
			Readers: append([]geom.Point(nil), sc.Deployment.Readers...),
			Radius:  sc.Deployment.Radius,
		}
		pcfg := cfg
		pcfg.IDs = make([]uint64, n)
		for ni, oi := range perm {
			pd.Tags[ni] = sc.Deployment.Tags[oi]
			pcfg.IDs[ni] = cfg.IDs[oi]
		}
		pnw, err := buildLike(sc, pd)
		if err != nil {
			t.Fatalf("%v seed %#x: permuted build: %v", sc.Shape, sc.Seed, err)
		}
		pres, err := core.RunSession(pnw, pcfg)
		if err != nil {
			t.Fatalf("%v seed %#x: permuted session: %v", sc.Shape, sc.Seed, err)
		}
		if !pres.Bitmap.Equal(res.Bitmap) || pres.Rounds != res.Rounds ||
			pres.Truncated != res.Truncated || pres.Clock != res.Clock {
			t.Errorf("%v seed %#x: relabeling changed the session (rounds %d→%d)",
				sc.Shape, sc.Seed, res.Rounds, pres.Rounds)
		}
		for ni, oi := range perm {
			if pres.Meter.Sent(ni) != res.Meter.Sent(oi) || pres.Meter.Received(ni) != res.Meter.Received(oi) {
				t.Errorf("%v seed %#x: relabeling changed physical tag %d's energy", sc.Shape, sc.Seed, oi)
				break
			}
		}
	})
}

// TestMetamorphicUnreachableAddition: appending a tag that is isolated from
// everything (far outside the broadcast range and every tag's relay range)
// must leave the session untouched.
func TestMetamorphicUnreachableAddition(t *testing.T) {
	ForEach(t, 0x3e1b, func(t *testing.T, sc *Scenario) {
		src := sc.Source(21)
		cfg := sc.NewConfig(src)
		res, err := core.RunSession(sc.Network, cfg)
		if err != nil {
			t.Fatalf("%v seed %#x: %v", sc.Shape, sc.Seed, err)
		}

		// Place the stray far beyond everything: the deployment's extent
		// plus broadcast and relay ranges, times ten.
		far := 10 * (sc.Deployment.Radius + sc.Ranges.ReaderToTag + sc.Ranges.TagToTag + 1)
		angle := 2 * math.Pi * src.Float64()
		ad := &geom.Deployment{
			Tags: append(append([]geom.Point(nil), sc.Deployment.Tags...),
				geom.Point{X: far * math.Cos(angle), Y: far * math.Sin(angle)}),
			Readers: append([]geom.Point(nil), sc.Deployment.Readers...),
			Radius:  far,
		}
		acfg := cfg
		if cfg.IDs != nil {
			acfg.IDs = append(append([]uint64(nil), cfg.IDs...), ^uint64(0))
		}
		anw, err := buildLike(sc, ad)
		if err != nil {
			t.Fatalf("%v seed %#x: augmented build: %v", sc.Shape, sc.Seed, err)
		}
		if anw.Tier[anw.N()-1] != 0 {
			t.Fatalf("%v seed %#x: stray tag unexpectedly reachable", sc.Shape, sc.Seed)
		}
		ares, err := core.RunSession(anw, acfg)
		if err != nil {
			t.Fatalf("%v seed %#x: augmented session: %v", sc.Shape, sc.Seed, err)
		}
		if !ares.Bitmap.Equal(res.Bitmap) || ares.Rounds != res.Rounds ||
			ares.Truncated != res.Truncated || ares.Clock != res.Clock {
			t.Errorf("%v seed %#x: adding an unreachable tag changed the session", sc.Shape, sc.Seed)
		}
		for i := 0; i < sc.Network.N(); i++ {
			if ares.Meter.Sent(i) != res.Meter.Sent(i) || ares.Meter.Received(i) != res.Meter.Received(i) {
				t.Errorf("%v seed %#x: adding an unreachable tag changed tag %d's energy", sc.Shape, sc.Seed, i)
				break
			}
		}
	})
}

// TestMetamorphicMultiReaderOr: eq. (1)'s composition law. Running one
// session per reader and OR-combining must equal RunMultiSession's combined
// bitmap, and on a reliable channel the combination equals the union of the
// per-reader direct bitmaps.
func TestMetamorphicMultiReaderOr(t *testing.T) {
	ForEach(t, 0x3e1c, func(t *testing.T, sc *Scenario) {
		src := sc.Source(22)
		// Re-home the deployment with 2–3 readers: the original at the
		// center plus extras dropped inside the deployment extent.
		d := &geom.Deployment{
			Tags:    sc.Deployment.Tags,
			Readers: []geom.Point{{}},
			Radius:  sc.Deployment.Radius,
		}
		extra := 1 + src.Intn(2)
		for k := 0; k < extra; k++ {
			d.Readers = append(d.Readers, geom.SampleDisk(src, math.Max(d.Radius, 1)))
		}
		cfg := sc.NewConfig(src)
		cfg.CheckingFrameLen = 0 // resolved per reader below
		cfg.MaxRounds = 0
		mres, err := core.RunMultiSession(d, sc.Ranges, cfg)
		if err != nil {
			t.Fatalf("%v seed %#x: multi: %v", sc.Shape, sc.Seed, err)
		}

		want := bitmap.New(cfg.FrameSize)
		orDirect := bitmap.New(cfg.FrameSize)
		for ri := range d.Readers {
			nw, err := topology.Build(d, ri, sc.Ranges)
			if err != nil {
				t.Fatalf("%v seed %#x: reader %d: %v", sc.Shape, sc.Seed, ri, err)
			}
			rcfg := cfg
			rcfg.Reader = ri
			res, err := core.RunSession(nw, rcfg)
			if err != nil {
				t.Fatalf("%v seed %#x: reader %d: %v", sc.Shape, sc.Seed, ri, err)
			}
			want.Or(res.Bitmap)
			direct, err := core.DirectBitmap(nw, rcfg)
			if err != nil {
				t.Fatalf("%v seed %#x: reader %d direct: %v", sc.Shape, sc.Seed, ri, err)
			}
			orDirect.Or(direct)
			if res.Truncated {
				// Default L_c can undershoot a pathological detour; give the
				// combination law a pass only when every session completed.
				return
			}
		}
		if !mres.Bitmap.Equal(want) {
			t.Errorf("%v seed %#x: multi-reader bitmap != OR of per-reader sessions", sc.Shape, sc.Seed)
		}
		if !mres.Bitmap.Equal(orDirect) {
			t.Errorf("%v seed %#x: multi-reader bitmap != union of direct bitmaps", sc.Shape, sc.Seed)
		}
	})
}

package simtest

import (
	"netags/internal/geom"
	"netags/internal/topology"
)

// BruteTiers recomputes every tag's tier straight from the deployment
// geometry: O(n²) pairwise distance tests and a plain BFS, sharing no code
// with topology's grid bucketing or CSR adjacency. It is the differential
// oracle topology.Build is held to.
//
// The rules restate §III-A/§III-C independently: a tag is in the field of
// view iff it is within ReaderToTag of the reader (obstacles do not block
// the reader's high-power broadcast); tier 1 additionally needs the weak
// tag→reader link — within TagToReader and not blocked; tier k+1 tags are
// field-of-view tags within TagToTag (and unblocked) of a tier-k tag.
func BruteTiers(d *geom.Deployment, readerIdx int, rg topology.Ranges, obstacles []geom.Segment) []int16 {
	n := len(d.Tags)
	reader := d.Readers[readerIdx]
	tier := make([]int16, n)
	inFoV := make([]bool, n)
	var queue []int
	for i, p := range d.Tags {
		dist := p.Dist(reader)
		inFoV[i] = dist <= rg.ReaderToTag
		if dist <= rg.TagToReader && inFoV[i] && !geom.Blocked(obstacles, p, reader) {
			tier[i] = 1
			queue = append(queue, i)
		}
	}
	// Squared distances for tag↔tag links, plain distance for the reader:
	// the same comparison forms topology uses, so borderline floating-point
	// cases cannot produce spurious oracle disagreement.
	linked := func(i, j int) bool {
		return d.Tags[i].Dist2(d.Tags[j]) <= rg.TagToTag*rg.TagToTag &&
			!geom.Blocked(obstacles, d.Tags[i], d.Tags[j])
	}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for v := 0; v < n; v++ {
			if v == u || tier[v] != 0 || !inFoV[v] || !linked(u, v) {
				continue
			}
			tier[v] = tier[u] + 1
			queue = append(queue, v)
		}
	}
	return tier
}

// BruteReachableIDs returns the set of IDs the reader must be able to
// collect: one entry per tag with a brute-force tier > 0, under the id
// assignment id(i). It is the ground truth for SICP/CICP collection.
func BruteReachableIDs(sc *Scenario, id func(i int) uint64) map[uint64]bool {
	tiers := BruteTiers(sc.Deployment, 0, sc.Ranges, sc.Obstacles)
	want := make(map[uint64]bool)
	for i, t := range tiers {
		if t > 0 {
			want[id(i)] = true
		}
	}
	return want
}

package simtest

import (
	"testing"

	"netags/internal/core"
)

// TestRunnerNoStateBleed holds the pooled Runner to the fresh-state path:
// running many different scenarios back-to-back through ONE Runner must
// produce Results byte-identical (full fingerprint: bitmap, rounds, clock,
// truncation, diagnostics, per-tag energy) to fresh RunSession calls.
//
// The config rotation is chosen to leave maximal dirt in the arena between
// runs: lossy sessions leave the loss PRNG mid-stream, and round-bounded
// sessions end with pending transmissions, live touched/responded marks, and
// non-empty CSR scratch. Scenario sizes and frame sizes vary, so the arena
// also grows and shrinks across the sequence.
func TestRunnerNoStateBleed(t *testing.T) {
	runner := core.NewRunner()
	for i, seed := range ScenarioSeeds(0xb1eed, 80) {
		sc := NewScenario(seed)
		cfg := sc.NewConfig(sc.Source(11))
		switch i % 3 {
		case 1:
			cfg.LossProb = 0.3
			cfg.LossSeed = seed
		case 2:
			cfg.MaxRounds = 1 // usually truncates: pending state stays behind
		}
		pooled, err := runner.Run(sc.Network, cfg)
		if err != nil {
			t.Fatalf("scenario %#x: pooled run: %v", seed, err)
		}
		fresh, err := core.RunSession(sc.Network, cfg)
		if err != nil {
			t.Fatalf("scenario %#x: fresh run: %v", seed, err)
		}
		if got, want := fingerprint(pooled), fingerprint(fresh); got != want {
			t.Fatalf("scenario %#x (variant %d): pooled Runner diverged from fresh state:\npooled %s\nfresh  %s\nreplay with simtest.NewScenario(%#x)",
				seed, i%3, got, want, seed)
		}
	}
}

package simtest

import (
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"netags/internal/core"
	"netags/internal/geom"
	"netags/internal/topology"
)

// The scale tier runs the differential oracles at deployment sizes the
// regular suite never reaches (10^4–10^6 tags). It is opt-in — `make
// test-scale` sets CCM_SCALE=1 — so tier-1 stays fast; CI runs it as a
// separate job with -timeout headroom.

func requireScale(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("scale tier skipped in -short")
	}
	if os.Getenv("CCM_SCALE") != "1" {
		t.Skip("scale tier disabled; run via `make test-scale` (CCM_SCALE=1)")
	}
}

// scaleNetwork builds the constant-density deployment the scale tier and the
// core benchmarks share: the disk area grows with n, so every size has the
// same local structure (~44 tag neighbors, ~11 tiers, L_c = 22).
func scaleNetwork(tb testing.TB, n int) *topology.Network {
	tb.Helper()
	radius := 300 * math.Sqrt(float64(n)/1e6)
	d := geom.NewUniformDisk(n, radius, 0x5ca1e)
	nw, err := topology.Build(d, 0, topology.Ranges{
		ReaderToTag: radius,
		TagToReader: radius - 20,
		TagToTag:    2,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return nw
}

// scaleConfig mirrors the core scale benchmarks: sampling scales inversely
// with n (~200 participants at every size) so the 256-slot frame never
// saturates in round 1 and outer-ring bits must relay tier by tier.
func scaleConfig(n int, seed uint64) core.Config {
	return core.Config{FrameSize: 256, Seed: seed, Sampling: 200 / float64(n)}
}

// TestScaleTierOracle holds the grid-bucketed tier builder to the O(n²)
// brute-force oracle at sizes where a bucketing bug (cell size, border
// handling) would actually bite. BruteTiers is quadratic, which caps this
// test's sizes below the session differentials'.
func TestScaleTierOracle(t *testing.T) {
	requireScale(t)
	for _, n := range []int{10_000, 30_000} {
		nw := scaleNetwork(t, n)
		want := BruteTiers(nw.Deployment, 0, nw.Ranges, nil)
		for i, w := range want {
			if nw.Tier[i] != w {
				t.Fatalf("n=%d: tag %d tier %d, brute-force oracle says %d", n, i, nw.Tier[i], w)
			}
		}
	}
}

// TestScaleSessionMatchesDirect runs pooled sessions at 10^4 and 10^5 tags
// and holds the final bitmap to DirectBitmap (Theorem 1), exactly.
func TestScaleSessionMatchesDirect(t *testing.T) {
	requireScale(t)
	runner := core.NewRunner()
	for _, n := range []int{10_000, 100_000} {
		nw := scaleNetwork(t, n)
		for seed := uint64(1); seed <= 3; seed++ {
			cfg := scaleConfig(n, seed)
			res, err := runner.Run(nw, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Truncated {
				t.Fatalf("n=%d seed=%d: session truncated", n, seed)
			}
			want, err := core.DirectBitmap(nw, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Bitmap.Equal(want) {
				t.Fatalf("n=%d seed=%d: session bitmap diverges from DirectBitmap", n, seed)
			}
		}
	}
}

// TestScaleMillionTagSmoke is the north-star check: one million tags through
// the pooled kernel, twice (to exercise arena reuse at full scale), matching
// DirectBitmap exactly and staying inside explicit duration and heap
// budgets. The budgets are deliberately loose — an order of magnitude over
// the measured ~0.7 s/session and ~350 MB live heap — so they catch
// asymptotic regressions (an accidental O(n) alloc per round, a retained
// per-round slice) rather than machine-speed noise.
func TestScaleMillionTagSmoke(t *testing.T) {
	requireScale(t)
	const n = 1_000_000
	nw := scaleNetwork(t, n)
	runner := core.NewRunner()
	for seed := uint64(1); seed <= 2; seed++ {
		cfg := scaleConfig(n, seed)
		start := time.Now()
		res, err := runner.Run(nw, cfg)
		if err != nil {
			t.Fatal(err)
		}
		elapsed := time.Since(start)
		if res.Truncated {
			t.Fatalf("seed=%d: million-tag session truncated after %d rounds", seed, res.Rounds)
		}
		want, err := core.DirectBitmap(nw, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Bitmap.Equal(want) {
			t.Fatalf("seed=%d: million-tag bitmap diverges from DirectBitmap", seed)
		}
		if budget := 120 * time.Second; elapsed > budget {
			t.Errorf("seed=%d: session took %v, budget %v", seed, elapsed, budget)
		}
		t.Logf("seed=%d: %d rounds, %d busy slots, %v", seed, res.Rounds, res.Bitmap.Count(), elapsed)
	}
	// Measure the live footprint while the network and warm arena are still
	// reachable (KeepAlive below — without it the GC is free to collect both
	// before ReadMemStats and the budget check measures nothing).
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if budget := uint64(1500 << 20); ms.HeapAlloc > budget {
		t.Errorf("live heap after GC: %d MiB, budget %d MiB (arena or topology retaining too much)",
			ms.HeapAlloc>>20, budget>>20)
	}
	t.Logf("live heap after GC: %d MiB", ms.HeapAlloc>>20)
	runtime.KeepAlive(nw)
	runtime.KeepAlive(runner)
}

package simtest

import (
	"testing"

	"netags/internal/sicp"
)

// checkCollection holds one SICP/CICP run to the brute-force ground truth:
// the reader collects exactly the reachable tags' IDs, each exactly once.
func checkCollection(t *testing.T, sc *Scenario, proto string, res *sicp.Result, ids []uint64) {
	t.Helper()
	want := BruteReachableIDs(sc, func(i int) uint64 { return ids[i] })
	got := make(map[uint64]bool, len(res.Collected))
	for _, id := range res.Collected {
		if got[id] {
			t.Errorf("%s %v seed %#x: ID %#x collected twice", proto, sc.Shape, sc.Seed, id)
		}
		got[id] = true
		if !want[id] {
			t.Errorf("%s %v seed %#x: collected %#x, which is not reachable", proto, sc.Shape, sc.Seed, id)
		}
	}
	for id := range want {
		if !got[id] {
			t.Errorf("%s %v seed %#x: reachable ID %#x never collected", proto, sc.Shape, sc.Seed, id)
		}
	}
	if res.TreeDepth != sc.Network.K {
		// Parents always sit exactly one tier up, so the spanning tree is
		// exactly as deep as the tier structure.
		t.Errorf("%s %v seed %#x: tree depth %d, tier count %d", proto, sc.Shape, sc.Seed, res.TreeDepth, sc.Network.K)
	}
	for i := 0; i < res.Meter.N(); i++ {
		if res.Meter.Sent(i) < 0 || res.Meter.Received(i) < 0 {
			t.Fatalf("%s %v seed %#x: tag %d negative meter", proto, sc.Shape, sc.Seed, i)
		}
		if sc.Network.Tier[i] == 0 && (res.Meter.Sent(i) != 0 || res.Meter.Received(i) != 0) {
			t.Errorf("%s %v seed %#x: out-of-system tag %d metered", proto, sc.Shape, sc.Seed, i)
		}
	}
}

// TestSICPCollectsReachableSet is the differential oracle for the SICP
// baseline: serialized tree collection must deliver exactly the brute-force
// reachable set on every generated scenario.
func TestSICPCollectsReachableSet(t *testing.T) {
	ForEach(t, 0x51c0, func(t *testing.T, sc *Scenario) {
		src := sc.Source(10)
		ids := RandomIDs(src, sc.Network.N())
		res, err := sicp.Collect(sc.Network, sicp.Options{
			Seed:             src.Uint64(),
			ContentionWindow: 1 + src.Intn(16),
			IDs:              ids,
		})
		if err != nil {
			t.Fatalf("%v seed %#x: %v", sc.Shape, sc.Seed, err)
		}
		checkCollection(t, sc, "sicp", res, ids)
	})
}

// TestCICPCollectsReachableSet holds the contention-based sibling to the
// same ground truth: collisions cost time and energy but never data.
func TestCICPCollectsReachableSet(t *testing.T) {
	ForEach(t, 0xc1c0, func(t *testing.T, sc *Scenario) {
		src := sc.Source(11)
		ids := RandomIDs(src, sc.Network.N())
		res, err := sicp.CollectCICP(sc.Network, sicp.Options{
			Seed:             src.Uint64(),
			ContentionWindow: 2 + src.Intn(15),
			IDs:              ids,
		})
		if err != nil {
			t.Fatalf("%v seed %#x: %v", sc.Shape, sc.Seed, err)
		}
		checkCollection(t, sc, "cicp", res, ids)
	})
}

// TestSICPReplayDeterminism pins that a collection run is a pure function of
// (network, options): CSMA draws come only from the seeded source.
func TestSICPReplayDeterminism(t *testing.T) {
	ForEach(t, 0x51c1, func(t *testing.T, sc *Scenario) {
		opts := sicp.Options{Seed: sc.Seed, ContentionWindow: 8}
		a, err := sicp.Collect(sc.Network, opts)
		if err != nil {
			t.Fatalf("%v seed %#x: %v", sc.Shape, sc.Seed, err)
		}
		b, err := sicp.Collect(sc.Network, opts)
		if err != nil {
			t.Fatalf("%v seed %#x: %v", sc.Shape, sc.Seed, err)
		}
		if a.Clock != b.Clock || len(a.Collected) != len(b.Collected) {
			t.Fatalf("%v seed %#x: replay diverged", sc.Shape, sc.Seed)
		}
		for i := range a.Collected {
			if a.Collected[i] != b.Collected[i] {
				t.Fatalf("%v seed %#x: replay diverged at collected[%d]", sc.Shape, sc.Seed, i)
			}
		}
	})
}

// Package simtest is the property-based correctness harness for the whole
// simulator: deterministic random scenario generators, brute-force
// differential oracles, and shared helpers for metamorphic and fuzz tests.
//
// The paper's central claim (Theorem 1: a CCM session delivers exactly the
// OR-of-picks bitmap a collision-free single-hop reader would see) and the
// protocol-equivalence results against SICP must hold on *every* topology,
// not just the hand-built fixtures the unit tests use. This package generates
// adversarial deployments automatically — chains, stars, disconnected
// clusters, single-tier blobs, tier-depth extremes, deployments that spill
// past the reader's field of view — and holds each subsystem to an executable
// oracle on all of them.
//
// # Determinism and replay
//
// Every generated artifact is a pure function of one uint64 seed:
// NewScenario(seed) always returns the same deployment, ranges, obstacles,
// and derived network, and the session configs drawn from a scenario's
// Source are equally pinned. A property failure therefore reports a single
// seed; paste it into NewScenario (or NewScenarioShape, to pin the family)
// in a regression test to replay the exact failing topology forever. The
// per-scenario seeds themselves come from prng.DeriveSeed(base, i), so the
// i-th scenario of a run never depends on how many properties ran before it.
package simtest

import (
	"testing"

	"netags/internal/geom"
	"netags/internal/prng"
	"netags/internal/topology"
)

// Scenario is one generated test topology: a deployment, the range model,
// optional obstacles, and the derived network for reader 0.
type Scenario struct {
	// Seed reproduces the scenario: NewScenario(Seed) rebuilds it exactly.
	Seed uint64
	// Shape is the generator family the scenario was drawn from.
	Shape Shape
	// Ranges is the (randomized) asymmetric link model.
	Ranges topology.Ranges
	// Obstacles holds the wall segments (usually empty).
	Obstacles []geom.Segment
	// Deployment is the generated tag/reader placement.
	Deployment *geom.Deployment
	// Network is the derived structure for reader 0.
	Network *topology.Network
}

// Source returns a fresh random stream derived from the scenario seed and a
// purpose tag, for drawing configs or IDs without perturbing the scenario
// itself. Distinct purposes get independent streams.
func (sc *Scenario) Source(purpose uint64) *prng.Source {
	return prng.New(prng.DeriveSeed(sc.Seed, 0xc0ffee, purpose))
}

// NumScenarios returns the per-property scenario budget: 200 in -short mode
// (the acceptance floor), more otherwise.
func NumScenarios() int {
	if testing.Short() {
		return 200
	}
	return 300
}

// ScenarioSeeds returns count scenario seeds derived from base. Seeds are
// position-derived (prng.DeriveSeed), so seed i is the same no matter how
// many other properties consumed randomness before this one.
func ScenarioSeeds(base uint64, count int) []uint64 {
	seeds := make([]uint64, count)
	for i := range seeds {
		seeds[i] = prng.DeriveSeed(base, uint64(i))
	}
	return seeds
}

// ForEach runs fn once per generated scenario, NumScenarios() of them,
// with seeds derived from base. Properties report failures through t with
// the scenario seed so any failure replays from one number.
func ForEach(t *testing.T, base uint64, fn func(t *testing.T, sc *Scenario)) {
	t.Helper()
	for _, seed := range ScenarioSeeds(base, NumScenarios()) {
		fn(t, NewScenario(seed))
		if t.Failed() {
			t.Fatalf("property failed; replay with simtest.NewScenario(%#x)", seed)
		}
	}
}

// RandomIDs draws n distinct non-zero tag IDs from src.
func RandomIDs(src *prng.Source, n int) []uint64 {
	ids := make([]uint64, 0, n)
	seen := make(map[uint64]bool, n)
	for len(ids) < n {
		id := src.Uint64()
		if id == 0 || seen[id] {
			continue
		}
		seen[id] = true
		ids = append(ids, id)
	}
	return ids
}

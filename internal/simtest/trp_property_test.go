package simtest

import (
	"testing"

	"netags/internal/prng"
	"netags/internal/trp"
)

// suspectSet folds a suspect list into a set, failing on duplicates.
func suspectSet(t *testing.T, sc *Scenario, ids []uint64) map[uint64]bool {
	t.Helper()
	set := make(map[uint64]bool, len(ids))
	for _, id := range ids {
		if set[id] {
			t.Errorf("%v seed %#x: suspect %#x reported twice", sc.Shape, sc.Seed, id)
		}
		set[id] = true
	}
	return set
}

// TestTRPAccusationsExact holds missing-tag detection to the exact
// set-difference oracle: on a reliable channel, the suspect list is exactly
// the inventory IDs whose slot no reachable present tag occupies — no more
// (every accusation is provable) and no less (every provable absence is
// accused). Removed tags, present-but-unreachable tags, and hash collisions
// between missing and present tags are all decided by the same rule.
func TestTRPAccusationsExact(t *testing.T) {
	ForEach(t, 0x7690, func(t *testing.T, sc *Scenario) {
		n := sc.Network.N()
		src := sc.Source(30)
		inventory := RandomIDs(src, n)
		// Remove a random subset — sometimes nobody, sometimes everybody.
		gone := make([]int, 0, n)
		for i := 0; i < n; i++ {
			if src.Float64() < 0.25 {
				gone = append(gone, i)
			}
		}
		present, orig := sc.Deployment.Remove(gone)
		pnw, err := buildLike(sc, present)
		if err != nil {
			t.Fatalf("%v seed %#x: present build: %v", sc.Shape, sc.Seed, err)
		}
		presentIDs := make([]uint64, len(orig))
		for ni, oi := range orig {
			presentIDs[ni] = inventory[oi]
		}
		f := 32 + src.Intn(480)
		seed := src.Uint64()
		out, err := trp.Run(pnw, inventory, presentIDs, trp.Options{
			FrameSize:        f,
			Seed:             seed,
			CheckingFrameLen: pnw.K + 2,
		})
		if err != nil {
			t.Fatalf("%v seed %#x: trp: %v", sc.Shape, sc.Seed, err)
		}

		// Brute-force oracle, independent of core and trp internals.
		tiers := BruteTiers(present, 0, sc.Ranges, sc.Obstacles)
		busy := make(map[int]bool)
		for i, id := range presentIDs {
			if tiers[i] > 0 {
				busy[prng.SlotOf(id, seed, f)] = true
			}
		}
		want := make(map[uint64]bool)
		for _, id := range inventory {
			if !busy[prng.SlotOf(id, seed, f)] {
				want[id] = true
			}
		}

		got := suspectSet(t, sc, out.Suspects)
		for id := range got {
			if !want[id] {
				t.Errorf("%v seed %#x: tag %#x accused but its slot is provably busy", sc.Shape, sc.Seed, id)
			}
		}
		for id := range want {
			if !got[id] {
				t.Errorf("%v seed %#x: tag %#x provably absent but not accused", sc.Shape, sc.Seed, id)
			}
		}
		if out.Missing != (len(want) > 0) {
			t.Errorf("%v seed %#x: Missing=%v with %d provable absences", sc.Shape, sc.Seed, out.Missing, len(want))
		}
		// presentIDs ⊆ inventory, so no busy slot can be unexpected.
		if len(out.UnexpectedBusy) != 0 {
			t.Errorf("%v seed %#x: %d unexpected busy slots on a clean inventory", sc.Shape, sc.Seed, len(out.UnexpectedBusy))
		}
	})
}

// TestTRPLossOnlyAddsAccusations: the lossy channel can erase busy slots but
// never invent them, so the reliable run's suspect set is a subset of any
// lossy run's with the same request. (This is why TRP's "provably absent"
// guarantee is stated for the reliable channel only.)
func TestTRPLossOnlyAddsAccusations(t *testing.T) {
	ForEach(t, 0x7691, func(t *testing.T, sc *Scenario) {
		n := sc.Network.N()
		src := sc.Source(31)
		inventory := RandomIDs(src, n)
		presentIDs := inventory // nobody actually missing: every accusation is loss- or reach-induced
		opts := trp.Options{
			FrameSize:        32 + src.Intn(480),
			Seed:             src.Uint64(),
			CheckingFrameLen: sc.Network.K + 2,
		}
		reliable, err := trp.Run(sc.Network, inventory, presentIDs, opts)
		if err != nil {
			t.Fatalf("%v seed %#x: reliable: %v", sc.Shape, sc.Seed, err)
		}
		opts.LossProb = 0.1 + 0.8*src.Float64()
		opts.LossSeed = src.Uint64()
		lossy, err := trp.Run(sc.Network, inventory, presentIDs, opts)
		if err != nil {
			t.Fatalf("%v seed %#x: lossy: %v", sc.Shape, sc.Seed, err)
		}
		got := suspectSet(t, sc, lossy.Suspects)
		for _, id := range reliable.Suspects {
			if !got[id] {
				t.Errorf("%v seed %#x: loss %.2f masked reliable accusation of %#x",
					sc.Shape, sc.Seed, opts.LossProb, id)
			}
		}
	})
}

// TestTRPFrameSizingMeetsRequirement checks the analytical frame sizing
// against its own exact probability form over a grid: the returned f meets
// requirement (14) and is not trivially oversized (f−1 misses it, i.e. the
// size is minimal).
func TestTRPFrameSizingMeetsRequirement(t *testing.T) {
	for _, n := range []int{100, 1000, 10000} {
		for _, m := range []int{1, 5, 50} {
			for _, delta := range []float64{0.9, 0.95, 0.99} {
				if m >= n {
					continue
				}
				f, err := trp.FrameSizeFor(n, m, delta)
				if err != nil {
					t.Fatalf("n=%d m=%d delta=%v: %v", n, m, delta, err)
				}
				if p := trp.DetectionProbability(n, m, f); p < delta {
					t.Errorf("n=%d m=%d delta=%v: f=%d detects with %v < delta", n, m, delta, f, p)
				}
				if f > 1 {
					if p := trp.DetectionProbability(n, m, f-1); p >= delta {
						t.Errorf("n=%d m=%d delta=%v: f=%d not minimal (f-1 already meets delta)", n, m, delta, f)
					}
				}
			}
		}
	}
}

// Package stats provides the small summary statistics the experiment
// harness aggregates across simulation trials (the paper averages every
// reported number over 100 independent deployments).
package stats

import (
	"fmt"
	"math"
)

// Sample accumulates observations with Welford's online algorithm, so a
// million trials cost O(1) memory and no catastrophic cancellation.
type Sample struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// Merge folds another sample into s, as if every observation recorded in o
// had been Added to s. It uses Chan et al.'s parallel variance combination,
// so per-worker aggregates can be reduced without replaying observations.
// Merging in a fixed order is deterministic, but the floating-point result
// can differ in the last bits from a single sequential Add stream; callers
// that need bit-identical aggregates should Add per-trial values in a fixed
// order instead (as the experiment harness does). Unlike energy.Meter.Merge,
// Merge has no size invariant and cannot fail — any two samples combine.
func (s *Sample) Merge(o Sample) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = o
		return
	}
	n := s.n + o.n
	delta := o.mean - s.mean
	s.m2 += o.m2 + delta*delta*float64(s.n)*float64(o.n)/float64(n)
	s.mean += delta * float64(o.n) / float64(n)
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.n = n
}

// N returns the number of observations.
func (s *Sample) N() int { return s.n }

// Mean returns the sample mean (0 with no observations).
func (s *Sample) Mean() float64 { return s.mean }

// Min and Max return the observed extremes (0 with no observations).
func (s *Sample) Min() float64 { return s.min }

// Max returns the largest observation.
func (s *Sample) Max() float64 { return s.max }

// Variance returns the unbiased sample variance.
func (s *Sample) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Sample) StdDev() float64 { return math.Sqrt(s.Variance()) }

// StdErr returns the standard error of the mean.
func (s *Sample) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// CI95 returns the half-width of a normal-approximation 95% confidence
// interval on the mean.
func (s *Sample) CI95() float64 { return 1.96 * s.StdErr() }

// String renders "mean ± ci95" with adaptive precision.
func (s *Sample) String() string {
	return fmt.Sprintf("%.4g ± %.2g", s.Mean(), s.CI95())
}

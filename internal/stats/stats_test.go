package stats

import (
	"math"
	"testing"

	"netags/internal/prng"
)

func TestEmptySample(t *testing.T) {
	var s Sample
	if s.N() != 0 || s.Mean() != 0 || s.Variance() != 0 || s.StdErr() != 0 {
		t.Fatal("empty sample not all-zero")
	}
}

func TestSingleObservation(t *testing.T) {
	var s Sample
	s.Add(7)
	if s.Mean() != 7 || s.Min() != 7 || s.Max() != 7 {
		t.Fatalf("mean/min/max = %v/%v/%v, want 7", s.Mean(), s.Min(), s.Max())
	}
	if s.Variance() != 0 {
		t.Fatal("single observation has nonzero variance")
	}
}

func TestKnownMoments(t *testing.T) {
	var s Sample
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.Mean() != 5 {
		t.Fatalf("mean = %v, want 5", s.Mean())
	}
	// Sample variance of that classic set is 32/7.
	if math.Abs(s.Variance()-32.0/7) > 1e-12 {
		t.Fatalf("variance = %v, want %v", s.Variance(), 32.0/7)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v, want 2/9", s.Min(), s.Max())
	}
}

func TestNegativeValues(t *testing.T) {
	var s Sample
	s.Add(-5)
	s.Add(5)
	if s.Mean() != 0 || s.Min() != -5 || s.Max() != 5 {
		t.Fatalf("mean/min/max = %v/%v/%v", s.Mean(), s.Min(), s.Max())
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	src := prng.New(3)
	var small, large Sample
	for i := 0; i < 10; i++ {
		small.Add(src.Float64())
	}
	for i := 0; i < 1000; i++ {
		large.Add(src.Float64())
	}
	if large.CI95() >= small.CI95() {
		t.Fatalf("CI95 did not shrink: %v -> %v", small.CI95(), large.CI95())
	}
}

func TestWelfordMatchesNaive(t *testing.T) {
	src := prng.New(5)
	var s Sample
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = src.Float64()*100 - 50
		s.Add(xs[i])
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	varSum := 0.0
	for _, x := range xs {
		varSum += (x - mean) * (x - mean)
	}
	naiveVar := varSum / float64(len(xs)-1)
	if math.Abs(s.Mean()-mean) > 1e-9 {
		t.Fatalf("mean = %v, naive %v", s.Mean(), mean)
	}
	if math.Abs(s.Variance()-naiveVar) > 1e-9 {
		t.Fatalf("variance = %v, naive %v", s.Variance(), naiveVar)
	}
}

func TestString(t *testing.T) {
	var s Sample
	s.Add(1)
	s.Add(3)
	if got := s.String(); got == "" {
		t.Fatal("empty String")
	}
}

// TestMerge: folding two samples must agree with Adding every observation
// to one sample, up to floating-point reassociation.
func TestMerge(t *testing.T) {
	src := prng.New(7)
	var all, left, right Sample
	for i := 0; i < 1000; i++ {
		x := src.Float64()*10 - 5
		all.Add(x)
		if i < 400 {
			left.Add(x)
		} else {
			right.Add(x)
		}
	}
	merged := left
	merged.Merge(right)
	if merged.N() != all.N() {
		t.Fatalf("merged n = %d, want %d", merged.N(), all.N())
	}
	if math.Abs(merged.Mean()-all.Mean()) > 1e-12 {
		t.Errorf("merged mean %v, sequential %v", merged.Mean(), all.Mean())
	}
	if math.Abs(merged.Variance()-all.Variance()) > 1e-9 {
		t.Errorf("merged variance %v, sequential %v", merged.Variance(), all.Variance())
	}
	if merged.Min() != all.Min() || merged.Max() != all.Max() {
		t.Errorf("merged extremes (%v, %v), sequential (%v, %v)",
			merged.Min(), merged.Max(), all.Min(), all.Max())
	}
}

// TestMergeEmpty: merging with an empty sample is the identity, in both
// directions.
func TestMergeEmpty(t *testing.T) {
	var empty, s Sample
	s.Add(2)
	s.Add(4)
	before := s
	s.Merge(empty)
	if s != before {
		t.Error("merging an empty sample changed the receiver")
	}
	empty.Merge(s)
	if empty != s {
		t.Error("merging into an empty sample did not copy")
	}
}

// Command benchjson converts `go test -bench` output on stdin into a JSON
// document on stdout (the Makefile's bench target pipes through it to write
// BENCH_observability.json). Each benchmark line is kept verbatim in "raw",
// so `jq -r '.benchmarks[].raw'` reconstructs a benchstat-compatible input,
// alongside the parsed ns/op, B/op, and allocs/op. Repeated -count runs are
// rolled up into per-benchmark summary statistics in "summary".
//
// The compare subcommand turns the document into a regression gate:
//
//	go test -bench=. -benchmem -count=3 ./... \
//	    | benchjson compare -baseline BENCH_observability.json
//
// reads fresh benchmark output on stdin, aggregates it the same way, and
// exits 1 when any benchmark's mean ns/op or allocs/op regressed beyond the
// tolerance relative to the committed baseline (exit 2 on usage/parse
// errors, so CI can tell "slower" from "broken").
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
)

// benchLine matches the fixed prefix of a benchmark result line; the metric
// pairs ("67264 ns/op", "20 allocs/op") are picked up separately.
var (
	benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)
	metric    = regexp.MustCompile(`([\d.]+)\s+(\S+)`)
	// cpuSuffix is the trailing -N that `go test` appends to benchmark names
	// when GOMAXPROCS != 1; stripped when grouping runs into summaries so a
	// baseline recorded on one machine compares against another.
	cpuSuffix = regexp.MustCompile(`-\d+$`)
)

type result struct {
	Name string `json:"name"`
	Iter int64  `json:"iterations"`
	// NsPerOp, BytesPerOp, and AllocsPerOp are 0 when the line did not
	// report that metric.
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	Raw         string  `json:"raw"`
}

// stat aggregates one metric across a benchmark's repeated -count runs.
type stat struct {
	Mean float64 `json:"mean"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

func newStat(vs []float64) stat {
	s := stat{Min: vs[0], Max: vs[0]}
	for _, v := range vs {
		s.Mean += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean /= float64(len(vs))
	return s
}

// summary is the per-benchmark rollup: all runs sharing a normalized name
// (the -GOMAXPROCS suffix stripped) reduced to mean/min/max per metric.
type summary struct {
	Name        string `json:"name"`
	Runs        int    `json:"runs"`
	NsPerOp     stat   `json:"ns_per_op"`
	BytesPerOp  stat   `json:"bytes_per_op"`
	AllocsPerOp stat   `json:"allocs_per_op"`
}

type document struct {
	// Goos/Goarch/Pkg/CPU echo the go test preamble when present.
	Goos       string    `json:"goos,omitempty"`
	Goarch     string    `json:"goarch,omitempty"`
	Pkg        string    `json:"pkg,omitempty"`
	CPU        string    `json:"cpu,omitempty"`
	Benchmarks []result  `json:"benchmarks"`
	Summary    []summary `json:"summary,omitempty"`
}

func main() {
	args := os.Args[1:]
	if len(args) > 0 && args[0] == "compare" {
		ok, err := runCompare(args[1:], os.Stdin, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		if !ok {
			os.Exit(1)
		}
		return
	}
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(in io.Reader, out io.Writer) error {
	doc, err := parse(in)
	if err != nil {
		return err
	}
	doc.Summary = summarize(doc.Benchmarks)
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// parse reads `go test -bench` output into a document (without summaries).
func parse(in io.Reader) (document, error) {
	var doc document
	preamble := map[string]*string{
		"goos: ": &doc.Goos, "goarch: ": &doc.Goarch,
		"pkg: ": &doc.Pkg, "cpu: ": &doc.CPU,
	}
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		line := sc.Text()
		for prefix, dst := range preamble {
			if len(line) > len(prefix) && line[:len(prefix)] == prefix {
				*dst = line[len(prefix):]
			}
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iter, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return doc, fmt.Errorf("line %q: %w", line, err)
		}
		r := result{Name: m[1], Iter: iter, Raw: line}
		for _, pair := range metric.FindAllStringSubmatch(m[3], -1) {
			v, err := strconv.ParseFloat(pair[1], 64)
			if err != nil {
				continue
			}
			switch pair[2] {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			}
		}
		doc.Benchmarks = append(doc.Benchmarks, r)
	}
	if err := sc.Err(); err != nil {
		return doc, err
	}
	if len(doc.Benchmarks) == 0 {
		return doc, fmt.Errorf("no benchmark lines on stdin")
	}
	return doc, nil
}

// normalize strips the -GOMAXPROCS suffix so runs of the same benchmark on
// differently-sized machines group under one summary name.
func normalize(name string) string {
	return cpuSuffix.ReplaceAllString(name, "")
}

// summarize groups results by normalized name, preserving first-seen order.
func summarize(bs []result) []summary {
	type acc struct{ ns, bytes, allocs []float64 }
	byName := map[string]*acc{}
	var order []string
	for _, b := range bs {
		name := normalize(b.Name)
		a := byName[name]
		if a == nil {
			a = &acc{}
			byName[name] = a
			order = append(order, name)
		}
		a.ns = append(a.ns, b.NsPerOp)
		a.bytes = append(a.bytes, b.BytesPerOp)
		a.allocs = append(a.allocs, b.AllocsPerOp)
	}
	out := make([]summary, 0, len(order))
	for _, name := range order {
		a := byName[name]
		out = append(out, summary{
			Name:        name,
			Runs:        len(a.ns),
			NsPerOp:     newStat(a.ns),
			BytesPerOp:  newStat(a.bytes),
			AllocsPerOp: newStat(a.allocs),
		})
	}
	return out
}

// runCompare implements the `compare` subcommand: fresh bench output on in,
// the committed baseline JSON named by -baseline. Returns ok=false when a
// regression beyond tolerance was found (the caller exits 1), an error for
// usage or parse failures (exit 2).
func runCompare(args []string, in io.Reader, out io.Writer) (bool, error) {
	fs := flag.NewFlagSet("benchjson compare", flag.ContinueOnError)
	var (
		baseline = fs.String("baseline", "", "baseline JSON document written by benchjson (required)")
		tol      = fs.Float64("tolerance", 0.30, "allowed fractional increase of mean ns/op over the baseline")
		allocTol = fs.Float64("alloc-tolerance", 0.10, "allowed fractional increase of mean allocs/op over the baseline")
	)
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return false, err
	}
	if *baseline == "" {
		return false, fmt.Errorf("compare: -baseline is required")
	}
	baseDoc, err := readBaseline(*baseline)
	if err != nil {
		return false, err
	}
	cur, err := parse(in)
	if err != nil {
		return false, err
	}
	return compare(out, baseDoc, summarize(cur.Benchmarks), *tol, *allocTol), nil
}

// readBaseline loads a benchjson document and ensures it carries summaries
// (documents written before the rollup existed only have raw benchmarks).
func readBaseline(path string) ([]summary, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc document
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	if len(doc.Summary) > 0 {
		return doc.Summary, nil
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("baseline %s: no benchmarks", path)
	}
	return summarize(doc.Benchmarks), nil
}

// compare prints one verdict row per benchmark and reports overall success.
// A benchmark regresses when its mean ns/op exceeds the baseline mean by
// more than tol, or its mean allocs/op exceeds the baseline by more than
// allocTol plus half an allocation (the absolute slack keeps a 0→0.33
// flicker on a zero-alloc baseline from tripping the relative check).
func compare(out io.Writer, base, cur []summary, tol, allocTol float64) bool {
	curBy := map[string]summary{}
	for _, s := range cur {
		curBy[s.Name] = s
	}
	baseNames := map[string]bool{}
	ok := true
	for _, b := range base {
		baseNames[b.Name] = true
		c, found := curBy[b.Name]
		if !found {
			fmt.Fprintf(out, "warn  %-50s missing from current run\n", b.Name)
			continue
		}
		verdict := "ok   "
		nsLimit := b.NsPerOp.Mean * (1 + tol)
		allocLimit := b.AllocsPerOp.Mean*(1+allocTol) + 0.5
		if c.NsPerOp.Mean > nsLimit || c.AllocsPerOp.Mean > allocLimit {
			verdict = "FAIL "
			ok = false
		}
		fmt.Fprintf(out, "%s %-50s ns/op %10.0f -> %10.0f (%+6.1f%%, limit %+.0f%%)  allocs %6.1f -> %6.1f\n",
			verdict, b.Name,
			b.NsPerOp.Mean, c.NsPerOp.Mean, 100*delta(b.NsPerOp.Mean, c.NsPerOp.Mean), 100*tol,
			b.AllocsPerOp.Mean, c.AllocsPerOp.Mean)
	}
	for _, c := range cur {
		if !baseNames[c.Name] {
			fmt.Fprintf(out, "new   %-50s ns/op %10.0f  allocs %6.1f (not in baseline)\n",
				c.Name, c.NsPerOp.Mean, c.AllocsPerOp.Mean)
		}
	}
	if ok {
		fmt.Fprintf(out, "bench-compare: %d benchmarks within tolerance (ns/op +%.0f%%, allocs +%.0f%%)\n",
			len(base), 100*tol, 100*allocTol)
	} else {
		fmt.Fprintln(out, "bench-compare: regression detected")
	}
	return ok
}

func delta(base, cur float64) float64 {
	if base == 0 {
		return 0
	}
	return (cur - base) / base
}
